(* Quickstart: run the full CRAT pipeline on one application.

     dune exec examples/quickstart.exe [-- APP]

   Steps shown:
   1. build the application's PTX kernel (SSA, infinite registers);
   2. analyze resource usage (MaxReg/MinReg/MaxTLP/ShmSize — Table 1);
   3. find OptTLP by profiling, prune the design space, allocate
      registers per candidate and pick the best TPSC;
   4. compare the resulting build against the MaxTLP and OptTLP
      baselines on the timing simulator. *)

let () =
  let abbr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "KMN" in
  let app =
    try Workloads.Suite.find abbr
    with Not_found ->
      Format.eprintf "unknown application %s; known: %s@." abbr
        (String.concat " " Workloads.Suite.abbrs);
      exit 1
  in
  let cfg = Gpusim.Config.fermi in
  Format.printf "=== CRAT quickstart: %a ===@.@." Workloads.App.pp app;

  (* 1. the kernel as the front end emits it *)
  let kernel = Workloads.App.kernel app in
  Format.printf "kernel: %d PTX instructions, %d virtual registers@."
    (Ptx.Kernel.instr_count kernel)
    (Ptx.Reg.Set.cardinal (Ptx.Kernel.registers kernel));

  (* 2. resource analysis *)
  let resource = Crat.Resource.analyze cfg app in
  Format.printf "analysis: %a@.@." Crat.Resource.pp resource;

  (* 3. the CRAT plan (one engine shared by every evaluation below;
        pass ~jobs to fan simulations over multiple domains) *)
  let engine = Crat.Engine.create () in
  let plan = Crat.Optimizer.plan engine cfg app in
  Format.printf "%a@." Crat.Optimizer.pp_plan plan;

  (* 4. head-to-head on the simulator *)
  let max_tlp = Crat.Baselines.max_tlp engine cfg app () in
  let opt_tlp = Crat.Baselines.opt_tlp engine cfg app () in
  let crat, _ = Crat.Baselines.crat engine cfg app () in
  let show (e : Crat.Baselines.evaluated) =
    Format.printf
      "  %-8s reg=%2d TLP=%d  %9d cycles  (%.2fx vs MaxTLP)  L1 hit %.2f@."
      e.Crat.Baselines.label e.Crat.Baselines.reg e.Crat.Baselines.tlp
      (Crat.Baselines.cycles e)
      (Crat.Baselines.speedup_over ~baseline:max_tlp e)
      (Gpusim.Stats.l1_hit_rate e.Crat.Baselines.stats)
  in
  Format.printf "simulated on %s:@." cfg.Gpusim.Config.name;
  show max_tlp;
  show opt_tlp;
  show crat;
  Format.printf "@.CRAT speedup over OptTLP: %.3fx@."
    (Crat.Baselines.speedup_over ~baseline:opt_tlp crat)
