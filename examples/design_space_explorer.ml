(* Design-space exploration (the paper's Figure 2 / motivating example).

     dune exec examples/design_space_explorer.exe [-- APP]

   Prints the (register per-thread, TLP) surface for one application:
   each stair register count is allocated and simulated at every
   feasible TLP, normalised to the MaxTLP baseline. The staircase shape
   of Figure 11 and the pruning decisions are shown alongside. *)

let () =
  let abbr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "CFD" in
  let app = Workloads.Suite.find abbr in
  let cfg = Gpusim.Config.fermi in
  let resource = Crat.Resource.analyze cfg app in
  Format.printf "design space for %s on %s@." app.Workloads.App.app_name
    cfg.Gpusim.Config.name;
  Format.printf "%a@.@." Crat.Resource.pp resource;

  (* the staircase: rightmost point of each stair (Fig. 11) *)
  let stairs = Crat.Design_space.stairs cfg resource in
  Format.printf "staircase:";
  List.iter (fun p -> Format.printf " %a" Crat.Design_space.pp_point p) stairs;
  Format.printf "@.";
  let engine = Crat.Engine.create () in
  let pr =
    Crat.Opttlp.profile engine cfg app ~max_tlp:resource.Crat.Resource.max_tlp ()
  in
  let pruned = Crat.Design_space.prune cfg resource ~opt_tlp:pr.Crat.Opttlp.opt_tlp in
  Format.printf "OptTLP=%d -> %d candidate(s) after pruning:@."
    pr.Crat.Opttlp.opt_tlp (List.length pruned);
  List.iter (fun p -> Format.printf "  %a@." Crat.Design_space.pp_point p) pruned;
  Format.printf "@.";

  (* the full surface, normalised to MaxTLP (Fig. 2) *)
  let points = Crat.Experiments.fig2 engine cfg app in
  let regs =
    List.sort_uniq compare (List.map (fun p -> p.Crat.Experiments.reg2) points)
  in
  let tlps =
    List.sort_uniq compare (List.map (fun p -> p.Crat.Experiments.tlp2) points)
  in
  Format.printf "speedup vs MaxTLP (rows: registers; columns: TLP)@.";
  Format.printf "%6s" "reg";
  List.iter (fun t -> Format.printf " %6s" (Printf.sprintf "TLP%d" t)) tlps;
  Format.printf "@.";
  List.iter
    (fun reg ->
       Format.printf "%6d" reg;
       List.iter
         (fun tlp ->
            match
              List.find_opt
                (fun p ->
                   p.Crat.Experiments.reg2 = reg && p.Crat.Experiments.tlp2 = tlp)
                points
            with
            | Some p -> Format.printf " %6.2f" p.Crat.Experiments.speedup_vs_max
            | None -> Format.printf " %6s" "-")
         tlps;
       Format.printf "@.")
    regs;
  let best =
    List.fold_left
      (fun acc p ->
         if p.Crat.Experiments.speedup_vs_max > acc.Crat.Experiments.speedup_vs_max
         then p
         else acc)
      (List.hd points) points
  in
  Format.printf "@.best point: reg=%d TLP=%d (%.2fx vs MaxTLP)@."
    best.Crat.Experiments.reg2 best.Crat.Experiments.tlp2
    best.Crat.Experiments.speedup_vs_max
