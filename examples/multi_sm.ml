(* Whole-GPU simulation: several SMs stepping against one shared
   L2/interconnect/DRAM, with blocks dispatched globally.

     dune exec examples/multi_sm.exe [-- APP]

   Shows weak scaling (work per SM held constant): compute-bound kernels
   scale almost linearly in aggregate IPC, while the shared memory
   system charges a growing contention tax. *)

let () =
  let abbr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "KMN" in
  let app = Workloads.Suite.find abbr in
  let base = Gpusim.Config.fermi in
  (* the single-SM experiments model one SM's share of DRAM bandwidth;
     a whole-GPU run exposes the full pipe *)
  let cfg =
    { base with
      Gpusim.Config.dram_bytes_per_cycle =
        base.Gpusim.Config.dram_bytes_per_cycle * base.Gpusim.Config.num_sms
    }
  in
  let input = Workloads.App.default_input app in
  let kernel =
    (Regalloc.Allocator.allocate ~block_size:app.Workloads.App.block_size
       ~reg_limit:app.Workloads.App.default_regs (Workloads.App.kernel app))
      .Regalloc.Allocator.kernel
  in
  Format.printf "weak scaling for %s (%d blocks per SM, TLP 2)@.@."
    app.Workloads.App.app_name input.Workloads.App.num_blocks;
  Format.printf "%5s %10s %9s %10s %12s@." "SMs" "cycles" "IPC" "L2 reads" "DRAM bytes";
  List.iter
    (fun sms ->
       let grid = sms * input.Workloads.App.num_blocks in
       let big_input = { input with Workloads.App.num_blocks = grid } in
       let mem = Workloads.App.memory app big_input in
       let r =
         Gpusim.Gpu.run ~sms cfg
           (Gpusim.Launch.make ~kernel
              ~block_size:app.Workloads.App.block_size ~num_blocks:grid
              ~tlp_limit:2
              ~params:(Workloads.App.params app big_input)
              mem)
       in
       Format.printf "%5d %10d %9.2f %10d %12d@." sms r.Gpusim.Gpu.total_cycles
         (Gpusim.Gpu.aggregate_ipc r) r.Gpusim.Gpu.l2.Gpusim.Cache.reads
         r.Gpusim.Gpu.dram_bytes)
    [ 1; 2; 4; 8; 15 ]
