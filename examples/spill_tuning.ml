(* Register-spilling exploration (the paper's Figure 8 / Section 5.3).

     dune exec examples/spill_tuning.exe [-- APP]

   Demonstrates, for one register-hungry application:
   - how the spill volume grows as the per-thread register limit shrinks
     (Chaitin-Briggs vs the linear-scan reference, Fig. 12);
   - what Algorithm 1 does: sub-stack split, gains, knapsack choice;
   - the performance effect of spilling to shared memory vs local
     memory, and of spilling high- vs low-frequency variables. *)

let () =
  let abbr = if Array.length Sys.argv > 1 then Sys.argv.(1) else "FDTD" in
  let app = Workloads.Suite.find abbr in
  let cfg = Gpusim.Config.fermi in
  let kernel = Workloads.App.kernel app in
  let block_size = app.Workloads.App.block_size in
  Format.printf "spill tuning for %s (block=%d)@.@." app.Workloads.App.app_name
    block_size;

  (* spill volume vs register limit, two allocators *)
  Format.printf "%5s %14s %14s %8s@." "reg" "CB spill-B" "LS spill-B" "insts";
  List.iter
    (fun reg ->
       let cb = Regalloc.Allocator.allocate ~block_size ~reg_limit:reg kernel in
       let ls =
         Regalloc.Allocator.allocate ~strategy:Regalloc.Allocator.Linear_scan
           ~block_size ~reg_limit:reg kernel
       in
       Format.printf "%5d %14d %14d %8d@." reg
         (Regalloc.Allocator.spill_bytes cb)
         (Regalloc.Allocator.spill_bytes ls)
         (Ptx.Kernel.instr_count cb.Regalloc.Allocator.kernel))
    [ 24; 32; 40; 48; 56; 63 ];
  Format.printf "@.";

  (* Algorithm 1 internals at a tight limit *)
  let reg_limit = 32 in
  let local = Regalloc.Allocator.allocate ~block_size ~reg_limit kernel in
  let spilled = List.map (fun (p : Regalloc.Spill.placement) -> p.Regalloc.Spill.reg) local.Regalloc.Allocator.spilled in
  let flow = Cfg.Flow.of_kernel kernel in
  let du = Cfg.Defuse.compute flow in
  let gain r =
    match Ptx.Reg.Map.find_opt r du with
    | Some s -> float_of_int (s.Cfg.Defuse.n_defs + s.Cfg.Defuse.n_uses)
    | None -> 0.
  in
  Format.printf "at reg=%d: %d spilled variables@." reg_limit (List.length spilled);
  let subs = Regalloc.Shared_spill.split ~gain spilled in
  Format.printf "Algorithm 1 sub-stacks (type, regs, bytes/thread, gain):@.";
  List.iter
    (fun (s : Regalloc.Shared_spill.substack) ->
       Format.printf "  %-5s %2d regs %4dB %6.0f@."
         (Ptx.Types.scalar_to_string s.Regalloc.Shared_spill.sty)
         (List.length s.Regalloc.Shared_spill.sregs)
         s.Regalloc.Shared_spill.bytes_per_thread s.Regalloc.Shared_spill.gain)
    subs;
  Format.printf "@.";

  (* performance: local-only vs Algorithm 1 vs inverted spill choice *)
  let resource = Crat.Resource.analyze cfg app in
  let tlp =
    Gpusim.Occupancy.max_tlp cfg (Crat.Resource.usage_at resource ~regs:reg_limit)
  in
  let spare =
    Gpusim.Occupancy.spare_shared_bytes cfg
      (Crat.Resource.usage_at resource ~regs:reg_limit)
      ~tlp
  in
  let input = Workloads.App.default_input app in
  let run name shared_policy spill_preference =
    let a =
      Regalloc.Allocator.allocate ~shared_policy ~spill_preference ~block_size
        ~reg_limit kernel
    in
    let launch =
      Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~tlp ~input ()
    in
    let st = Gpusim.Sm.run cfg launch in
    Format.printf "  %-44s %9d cycles (local %d, shared %d accesses)@." name
      st.Gpusim.Stats.cycles
      (Gpusim.Stats.local_accesses st)
      (st.Gpusim.Stats.shared_load_lanes + st.Gpusim.Stats.shared_store_lanes)
  in
  Format.printf "simulated at reg=%d, TLP=%d (spare shared: %dB/block):@."
    reg_limit tlp spare;
  run "spill to local memory only" `Off `Cheap_first;
  run "Algorithm 1 (low-frequency vars to shared)" (`Spare spare) `Cheap_first;
  run "inverted choice (high-frequency spilled)" (`Spare spare) `Expensive_first
