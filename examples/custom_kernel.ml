(* Bring your own kernel: parse PTX text, allocate registers at several
   limits, execute on the emulator and inspect the spill code.

     dune exec examples/custom_kernel.exe

   This is the path an external user would take to apply CRAT's
   allocator to a kernel that does not come from the built-in workload
   suite. The kernel below computes out[i] = a*inp[i] + b over a small
   grid with a per-thread loop, written directly in the PTX subset. *)

let source =
  {|.entry saxpy_ish (
  .param .u64 inp,
  .param .u64 out,
  .param .u32 n
)
{
  .reg .u32 %r0, %r1, %r2, %r3, %r4, %r5, %r6, %r20;
  .reg .f32 %r10, %r11, %r12;
  .reg .u64 %d0, %d1, %d2, %d3;
  .reg .pred %p0;
  mov.u32 %r0, %tid.x;
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mad.lo.u32 %r3, %r1, %r2, %r0;
  ld.param.u64 %d0, [inp];
  ld.param.u64 %d1, [out];
  mov.f32 %r10, 0;
  mov.u32 %r4, 0;
Lloop:
  setp.ge.u32 %p0, %r4, 4;
  @%p0 bra Ldone;
  mad.lo.u32 %r20, %r4, %r2, %r3;
  and.u32 %r5, %r20, 1023;
  mul.lo.u32 %r6, %r5, 4;
  cvt.u64.u32 %d2, %r6;
  add.u64 %d3, %d0, %d2;
  ld.global.f32 %r11, [%d3];
  mad.lo.f32 %r10, %r11, 2.0, %r10;
  add.u32 %r4, %r4, 1;
  bra Lloop;
Ldone:
  mul.lo.u32 %r6, %r3, 4;
  cvt.u64.u32 %d2, %r6;
  add.u64 %d3, %d1, %d2;
  add.f32 %r12, %r10, 1.0;
  st.global.f32 [%d3], %r12;
  ret;
}|}

let run_kernel kernel =
  let mem = Gpusim.Memory.create () in
  Gpusim.Memory.write_f32_array mem ~base:0x1000_0000L
    (Array.init 1024 (fun i -> float_of_int (i mod 10)));
  Gpusim.Emulator.run
    (Gpusim.Launch.make ~kernel ~block_size:64 ~num_blocks:2
       ~params:
         [ ("inp", Gpusim.Value.I 0x1000_0000L)
         ; ("out", Gpusim.Value.I 0x2000_0000L)
         ; ("n", Gpusim.Value.of_int 1024)
         ]
       mem);
  Gpusim.Memory.read_f32_array mem ~base:0x2000_0000L 128

let () =
  let kernel = Ptx.Parser.parse_kernel_exn source in
  Format.printf "parsed %s: %d instructions, demand %d register units@.@."
    kernel.Ptx.Kernel.name
    (Ptx.Kernel.instr_count kernel)
    (Ptx.Kernel.register_demand kernel);
  let reference = run_kernel kernel in
  Format.printf "emulated: out[0..7] =";
  Array.iteri (fun i v -> if i < 8 then Format.printf " %.1f" v) reference;
  Format.printf "@.@.";
  List.iter
    (fun lim ->
       match Regalloc.Allocator.allocate ~block_size:64 ~reg_limit:lim kernel with
       | a ->
         let after = run_kernel a.Regalloc.Allocator.kernel in
         let same = ref true in
         Array.iteri (fun i v -> if v <> after.(i) then same := false) reference;
         Format.printf
           "reg_limit=%2d: %2d units used, %d spilled, %3d instrs, semantics %s@."
           lim a.Regalloc.Allocator.units_used
           (List.length a.Regalloc.Allocator.spilled)
           (Ptx.Kernel.instr_count a.Regalloc.Allocator.kernel)
           (if !same then "preserved" else "BROKEN")
       | exception Failure msg ->
         (* below the feasible minimum: the kernel's 64-bit address
            registers plus spill infrastructure no longer fit *)
         Format.printf "reg_limit=%2d: infeasible (%s)@." lim msg)
    [ 16; 12; 11; 10 ];
  Format.printf "@.allocated kernel at reg_limit=11 (with spill code):@.";
  let tight = Regalloc.Allocator.allocate ~block_size:64 ~reg_limit:11 kernel in
  print_string (Ptx.Printer.kernel_to_string tight.Regalloc.Allocator.kernel)
