(* Canonical Stats.t fingerprint over the synthetic workload suite.

   Runs every workload through the cycle-level SM simulator — both the
   default-register kernel and a register-allocated variant with
   local/shared spill code — and prints every Stats.t field in a fixed
   textual format. Two builds of the simulator are semantics-equivalent
   iff their fingerprints are byte-identical, which is how the
   predecoded/unboxed fast path is validated against the reference
   interpreter (see DESIGN.md).

   Usage: dune exec bench/statdump.exe [-- --blocks N] [--tlp T,T,...] *)

let fermi = Gpusim.Config.fermi

let pp_stats name (st : Gpusim.Stats.t) =
  Printf.printf
    "%s cycles=%d wi=%d ti=%d issue=%d sb=%d memc=%d bar=%d idle=%d replay=%d \
     gld=%d gst=%d lld=%d lst=%d sld=%d sst=%d bankc=%d gseg=%d lseg=%d \
     l1r=%d l1rh=%d l1w=%d l1wh=%d l1rf=%d l1wb=%d l1f=%d \
     l2r=%d l2rh=%d l2w=%d l2wh=%d l2rf=%d l2wb=%d l2f=%d \
     dram=%d blocks=%d maxblk=%d sfu=%d alu=%d\n"
    name st.Gpusim.Stats.cycles st.warp_instrs st.thread_instrs st.issue_cycles
    st.stall_scoreboard st.stall_mem_congestion st.stall_barrier st.stall_idle
    st.lsu_replay_cycles st.global_load_lanes st.global_store_lanes
    st.local_load_lanes st.local_store_lanes st.shared_load_lanes
    st.shared_store_lanes st.shared_bank_conflicts st.global_segments
    st.local_segments st.l1.Gpusim.Cache.reads st.l1.Gpusim.Cache.read_hits
    st.l1.Gpusim.Cache.writes st.l1.Gpusim.Cache.write_hits
    st.l1.Gpusim.Cache.reserve_fails st.l1.Gpusim.Cache.writebacks
    st.l1.Gpusim.Cache.fills st.l2.Gpusim.Cache.reads
    st.l2.Gpusim.Cache.read_hits st.l2.Gpusim.Cache.writes
    st.l2.Gpusim.Cache.write_hits st.l2.Gpusim.Cache.reserve_fails
    st.l2.Gpusim.Cache.writebacks st.l2.Gpusim.Cache.fills st.dram_bytes
    st.blocks_completed st.max_concurrent_blocks st.sfu_instrs st.alu_instrs

let fingerprint ~blocks ~tlps (app : Workloads.App.t) =
  let input =
    { (Workloads.App.default_input app) with Workloads.App.num_blocks = blocks }
  in
  List.iter
    (fun tlp ->
       let launch = Workloads.App.launch app ~tlp ~input () in
       let st = Gpusim.Sm.run fermi launch in
       pp_stats (Printf.sprintf "%s/default/tlp%d" app.Workloads.App.abbr tlp) st;
       (* allocated kernel with a tight register budget: exercises the
          local-spill (and, with spare shared, shared-spill) paths *)
       let alloc =
         Regalloc.Allocator.allocate
           ~block_size:app.Workloads.App.block_size
           ~shared_policy:(`Spare 512) ~reg_limit:20
           (Workloads.App.kernel app)
       in
       let launch =
         Workloads.App.launch app ~kernel:alloc.Regalloc.Allocator.kernel ~tlp
           ~input ()
       in
       let st = Gpusim.Sm.run fermi launch in
       pp_stats (Printf.sprintf "%s/r20/tlp%d" app.Workloads.App.abbr tlp) st)
    tlps

let () =
  let blocks = ref 2 in
  let tlps = ref [ 1; 3 ] in
  let spec =
    [ ("--blocks", Arg.Set_int blocks, "N blocks per workload (default 2)")
    ; ( "--tlp"
      , Arg.String
          (fun s ->
             tlps := List.map int_of_string (String.split_on_char ',' s))
      , "T,T TLP limits to sweep (default 1,3)" )
    ]
  in
  Arg.parse spec (fun _ -> ()) "bench/statdump.exe [--blocks N] [--tlp T,T]";
  List.iter
    (fun app -> fingerprint ~blocks:!blocks ~tlps:!tlps app)
    Workloads.Suite.all
