(* BENCH_PR6 harness: the fig13 headline sweep re-run per register-file
   backend (PTX single-file vs machine ISA with split vector/scalar
   files), plus a per-app scalarization table over the whole suite:
   spill-free vector limit under each backend, scalar footprint,
   scalarized register count and the occupancy each backend reaches at
   its own spill-free point.

     dune exec bench/backendbench.exe                  # print JSON
     dune exec bench/backendbench.exe -- BENCH_PR6.json

   (make bench-backend writes BENCH_PR6.json at the repo root.) *)

module A = Regalloc.Allocator

let fermi = Gpusim.Config.fermi

type sweep =
  { backend : Machine.Backend.t
  ; wall_s : float
  ; rows : Crat.Experiments.fig13_row list
  ; geo_max : float
  ; geo_crat_local : float
  ; geo_crat : float
  }

let run_sweep backend =
  let engine = Crat.Engine.create () in
  let t0 = Unix.gettimeofday () in
  let rows, _ =
    Crat.Experiments.fig13 ~backend engine fermi Workloads.Suite.sensitive
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let geo f = Crat.Experiments.geomean (List.map f rows) in
  { backend
  ; wall_s
  ; rows
  ; geo_max = geo (fun (r : Crat.Experiments.fig13_row) -> r.s_max)
  ; geo_crat_local = geo (fun r -> r.s_crat_local)
  ; geo_crat = geo (fun r -> r.s_crat)
  }

let row_json (r : Crat.Experiments.fig13_row) =
  Printf.sprintf
    {|        {"abbr": "%s", "s_max": %.4f, "s_crat_local": %.4f, "s_crat": %.4f}|}
    r.abbr r.s_max r.s_crat_local r.s_crat

let sweep_json s =
  Printf.sprintf
    {|    {"backend": "%s", "wall_s": %.3f,
     "geomean_vs_opt": {"max_tlp": %.4f, "crat_local": %.4f, "crat": %.4f},
     "rows": [
%s
     ]}|}
    (Machine.Backend.to_string s.backend)
    s.wall_s s.geo_max s.geo_crat_local s.geo_crat
    (String.concat ",\n" (List.map row_json s.rows))

(* scalarization on (machine) vs off (ptx), per app: the register-file
   split's whole payoff in one table *)
let scal_json (a : Workloads.App.t) =
  let rp = Crat.Resource.analyze fermi a in
  let rm = Crat.Resource.analyze ~backend:Machine.Backend.Machine fermi a in
  let k = Workloads.App.kernel a in
  let alloc =
    A.allocate
      ~scalar:(Machine.Scalarize.predicate ~block_size:a.Workloads.App.block_size k)
      ~scalar_limit:Machine.Backend.default_scalar_limit
      ~block_size:a.Workloads.App.block_size
      ~reg_limit:rm.Crat.Resource.max_reg k
  in
  let tlp_at (r : Crat.Resource.t) =
    Gpusim.Occupancy.max_tlp fermi
      (Crat.Resource.usage_at r ~regs:r.Crat.Resource.max_reg)
  in
  Printf.sprintf
    {|    {"abbr": "%s", "max_reg_ptx": %d, "max_reg_machine": %d, "sregs_per_warp": %d, "scalarized": %d, "tlp_at_max_reg_ptx": %d, "tlp_at_max_reg_machine": %d}|}
    a.Workloads.App.abbr rp.Crat.Resource.max_reg rm.Crat.Resource.max_reg
    rm.Crat.Resource.sregs_per_warp alloc.A.scalarized (tlp_at rp) (tlp_at rm)

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  let sweeps =
    List.map
      (fun b ->
        let s = run_sweep b in
        Printf.eprintf "backend=%s: %.1fs  geomean crat=%.3f\n%!"
          (Machine.Backend.to_string b) s.wall_s s.geo_crat;
        s)
      Machine.Backend.all
  in
  let scal = List.map scal_json Workloads.Suite.all in
  let json =
    Printf.sprintf
      {|{
  "description": "fig13 headline sweep (fermi, resource-sensitive apps) per register-file backend, plus scalarization on/off statistics across the full suite: spill-free vector limit under each backend, per-warp scalar footprint, registers moved to the scalar file, and the occupancy each backend reaches at its own spill-free point.",
  "command": "dune exec bench/backendbench.exe -- BENCH_PR6.json",
  "backends": [
%s
  ],
  "scalarization": [
%s
  ]
}
|}
      (String.concat ",\n" (List.map sweep_json sweeps))
      (String.concat ",\n" scal)
  in
  match out with
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    close_out oc;
    Printf.eprintf "wrote %s\n%!" path
  | None -> print_string json
