(* BENCH_PR10 harness: the crat daemon hammered with the workload suite
   from N forked client processes, cold store vs warm store.

   Four cells, each with its own daemon lifecycle:

     cold_c1  fresh store, 1 client runs the suite (records everything)
     warm_c1  new daemon process on the same store, same client run
     cold_c4  fresh store, 4 concurrent clients each run the full suite
              (rotated app order, so they claim different launches and
              dedup the rest against each other)
     warm_c4  new daemon process on that store, 4 concurrent clients

   Every client fingerprints the Stats.t it received (sorted by app, so
   rotation does not matter): all fingerprints across all cells must be
   bit-identical, proving store answers equal cold simulation. Warm
   cells must answer >= 90% of points without functional execution.
   cold_c4 vs cold_c1 wall-clock is the N-client scaling headline; it is
   asserted only on multi-core hosts (one domain per concurrent client
   batch cannot beat serial on a single core) and the core count is
   recorded in the JSON.

     dune exec bench/servebench.exe                    # full suite
     dune exec bench/servebench.exe -- BENCH_PR10.json
     dune exec bench/servebench.exe -- --smoke BENCH_PR10.json  # CI subset
*)

let smoke_apps = [ "BFS"; "KMN"; "GAU"; "LUD"; "PATH"; "ESP" ]

let rotate n l =
  let len = List.length l in
  if len = 0 then []
  else begin
    let n = n mod len in
    let front = List.filteri (fun i _ -> i >= n) l in
    let back = List.filteri (fun i _ -> i < n) l in
    front @ back
  end

(* ---------- one client process ---------- *)

(* Runs the whole point list through the daemon and reports
   (wall_s, fingerprint): the fingerprint digests every (abbr, Stats.t)
   pair in app order, so it is invariant under rotation and completion
   order. *)
let client_run ~socket abbrs =
  match Serve.Client.connect_retry ~socket () with
  | Error e -> Error e
  | Ok c ->
    Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
    let points = List.map (fun a -> Serve.Protocol.point a) abbrs in
    let t0 = Unix.gettimeofday () in
    (match Serve.Client.simulate c points with
     | Error e -> Error e
     | Ok stats ->
       let wall = Unix.gettimeofday () -. t0 in
       let pairs =
         List.sort compare
           (List.mapi (fun i a -> (a, stats.(i))) abbrs)
       in
       let fp = Digest.to_hex (Digest.string (Marshal.to_string pairs [])) in
       Ok (wall, fp))

(* ---------- daemon + client process plumbing ---------- *)

let start_daemon ~socket ~store =
  match Unix.fork () with
  | 0 ->
    (try Serve.Daemon.run ~socket ~store_dir:store ~jobs:1 () with _ -> ());
    Stdlib.exit 0
  | pid -> pid

let stop_daemon ~socket pid =
  (match Serve.Client.connect_retry ~socket ~attempts:20 () with
   | Ok c ->
     ignore (Serve.Client.shutdown c);
     Serve.Client.close c
   | Error _ -> (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ()));
  ignore (Unix.waitpid [] pid)

(* Fork [clients] processes; each runs the suite with a rotated app
   order and leaves "wall fingerprint" in its own result file. *)
let run_clients ~socket ~dir ~clients abbrs =
  let result_file i = Filename.concat dir (Printf.sprintf "client%d.out" i) in
  let t0 = Unix.gettimeofday () in
  let pids =
    List.init clients (fun i ->
      match Unix.fork () with
      | 0 ->
        let rotated = rotate (i * (List.length abbrs / max 1 clients)) abbrs in
        let status =
          match client_run ~socket rotated with
          | Ok (wall, fp) ->
            Out_channel.with_open_text (result_file i) (fun oc ->
              Printf.fprintf oc "%.6f %s\n" wall fp);
            0
          | Error e ->
            prerr_endline ("client error: " ^ e);
            1
        in
        Stdlib.exit status
      | pid -> pid)
  in
  let ok =
    List.for_all
      (fun pid -> snd (Unix.waitpid [] pid) = Unix.WEXITED 0)
      pids
  in
  let wall = Unix.gettimeofday () -. t0 in
  if not ok then failwith "a client process failed";
  let per_client =
    List.init clients (fun i ->
      In_channel.with_open_text (result_file i) (fun ic ->
        Scanf.sscanf (Option.get (In_channel.input_line ic)) "%f %s"
          (fun w fp -> (w, fp))))
  in
  (wall, per_client)

(* ---------- cells ---------- *)

type cell =
  { label : string
  ; clients : int
  ; wall_s : float
  ; fingerprints : string list
  ; hit_rate : float
  ; stats : Serve.Protocol.server_stats
  }

let run_cell ~label ~dir ~store ~clients abbrs =
  let socket = Filename.concat dir (label ^ ".sock") in
  let pid = start_daemon ~socket ~store in
  Fun.protect ~finally:(fun () ->
    if
      (try Unix.kill pid 0; true with Unix.Unix_error _ -> false)
    then stop_daemon ~socket pid)
  @@ fun () ->
  (* wait for the daemon before starting the clock *)
  (match Serve.Client.connect_retry ~socket () with
   | Ok c -> Serve.Client.close c
   | Error e -> failwith ("daemon did not come up: " ^ e));
  let wall, per_client = run_clients ~socket ~dir ~clients abbrs in
  let stats =
    match Serve.Client.connect_retry ~socket ~attempts:20 () with
    | Error e -> failwith ("stats connection failed: " ^ e)
    | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match Serve.Client.server_stats c with
       | Ok s -> s
       | Error e -> failwith ("stats request failed: " ^ e))
  in
  stop_daemon ~socket pid;
  let c =
    { label
    ; clients
    ; wall_s = wall
    ; fingerprints = List.map snd per_client
    ; hit_rate = Serve.Protocol.hit_rate stats
    ; stats
    }
  in
  Printf.eprintf "%-8s clients=%d: %.2fs, hit rate %.3f, %d dedup hit(s)\n%!"
    label clients wall c.hit_rate stats.Serve.Protocol.dedup_hits;
  c

let cell_json c =
  let s = c.stats in
  Printf.sprintf
    {|    {"label": "%s", "clients": %d, "wall_s": %.3f, "hit_rate": %.4f,
     "fingerprints": [%s],
     "daemon": {"points": %d, "dedup_hits": %d, "sim_runs": %d, "sim_hits": %d,
                "trace_records": %d, "trace_replays": %d,
                "store_entries": %d, "store_bytes": %d, "store_hits": %d,
                "store_misses": %d, "store_evictions": %d}}|}
    c.label c.clients c.wall_s c.hit_rate
    (String.concat ", "
       (List.map (fun f -> Printf.sprintf "\"%s\"" f) c.fingerprints))
    s.Serve.Protocol.points s.Serve.Protocol.dedup_hits
    s.Serve.Protocol.sim_runs s.Serve.Protocol.sim_hits
    s.Serve.Protocol.trace_records s.Serve.Protocol.trace_replays
    s.Serve.Protocol.store_entries s.Serve.Protocol.store_bytes
    s.Serve.Protocol.store_hits s.Serve.Protocol.store_misses
    s.Serve.Protocol.store_evictions

let () =
  let smoke = Array.exists (( = ) "--smoke") Sys.argv in
  let out =
    Array.to_list Sys.argv |> List.tl
    |> List.find_opt (fun a -> a <> "--smoke")
  in
  let abbrs = if smoke then smoke_apps else Workloads.Suite.abbrs in
  let cores = Domain.recommended_domain_count () in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "servebench-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let store1 = Filename.concat dir "store-c1" in
  let store4 = Filename.concat dir "store-c4" in
  (* lets, not a list literal: cell order is load-bearing (cold before
     warm on each store) and list elements evaluate right-to-left *)
  let cold_c1 = run_cell ~label:"cold_c1" ~dir ~store:store1 ~clients:1 abbrs in
  let warm_c1 = run_cell ~label:"warm_c1" ~dir ~store:store1 ~clients:1 abbrs in
  let cold_c4 = run_cell ~label:"cold_c4" ~dir ~store:store4 ~clients:4 abbrs in
  let warm_c4 = run_cell ~label:"warm_c4" ~dir ~store:store4 ~clients:4 abbrs in
  let cells = [ cold_c1; warm_c1; cold_c4; warm_c4 ] in
  let find l = List.find (fun c -> c.label = l) cells in
  let fingerprints = List.concat_map (fun c -> c.fingerprints) cells in
  let identical =
    match fingerprints with
    | [] -> false
    | f :: rest -> List.for_all (( = ) f) rest
  in
  let warm_ok =
    (find "warm_c1").hit_rate >= 0.9 && (find "warm_c4").hit_rate >= 0.9
  in
  let speedup = (find "cold_c1").wall_s /. (find "cold_c4").wall_s in
  let json =
    Printf.sprintf
      {|{
  "description": "crat daemon under N forked client processes, cold vs warm persistent store. Each client runs the %s suite; fingerprints digest every Stats.t received (app order), so equal fingerprints mean store/replay answers are bit-identical to cold simulation. warm cells restart the daemon process on the recorded store.",
  "command": "dune exec bench/servebench.exe -- %sBENCH_PR10.json",
  "cores": %d,
  "apps": %d,
  "speedup_c4_over_c1_cold": %.2f,
  "warm_hit_rate_c1": %.4f,
  "warm_hit_rate_c4": %.4f,
  "fingerprints_identical": %b,
  "cells": [
%s
  ]
}
|}
      (if smoke then "smoke" else "full")
      (if smoke then "--smoke " else "")
      cores (List.length abbrs) speedup (find "warm_c1").hit_rate
      (find "warm_c4").hit_rate identical
      (String.concat ",\n" (List.map cell_json cells))
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc json;
     close_out oc
   | None -> print_string json);
  Printf.eprintf
    "cores=%d speedup(c4/c1 cold)=%.2fx warm hit rates %.3f/%.3f identical=%b\n%!"
    cores speedup (find "warm_c1").hit_rate (find "warm_c4").hit_rate identical;
  if not identical then begin
    prerr_endline "FAIL: fingerprints differ across cells";
    exit 1
  end;
  if not warm_ok then begin
    prerr_endline "FAIL: warm-store hit rate below 0.9";
    exit 1
  end;
  if cores > 1 && speedup < 1.0 then begin
    prerr_endline "FAIL: 4 clients slower than 1 on a multi-core host";
    exit 1
  end
