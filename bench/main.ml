(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (default mode), or times the library's hot paths and
   scaled-down experiments with Bechamel (--bechamel).

   Usage:
     dune exec bench/main.exe                 # all experiments, full size
     dune exec bench/main.exe -- --fast       # reduced app sets
     dune exec bench/main.exe -- --only fig13,tab1
     dune exec bench/main.exe -- --jobs 4     # fan simulations over 4 domains
     dune exec bench/main.exe -- --json out.json  # machine-readable run report
     dune exec bench/main.exe -- --backend machine --only fig13
     dune exec bench/main.exe -- --bechamel   # Bechamel timings *)

let fermi = Gpusim.Config.fermi
let kepler = Gpusim.Config.kepler

type ctx =
  { engine : Crat.Engine.t
  ; backend : Machine.Backend.t  (** register-file model of the fig13 family *)
  ; sensitive : Workloads.App.t list
  ; insensitive : Workloads.App.t list
  ; input_apps : Workloads.App.t list  (** fig18 *)
  }

let full_ctx ?(backend = Machine.Backend.Ptx) engine =
  { engine
  ; backend
  ; sensitive = Workloads.Suite.sensitive
  ; insensitive = Workloads.Suite.insensitive
  ; input_apps = [ Workloads.Suite.find "CFD"; Workloads.Suite.find "BLK" ]
  }

let fast_ctx ?(backend = Machine.Backend.Ptx) engine =
  { engine
  ; backend
  ; sensitive =
      List.map Workloads.Suite.find [ "CFD"; "KMN"; "FDTD"; "STM"; "BLK" ]
  ; insensitive = List.map Workloads.Suite.find [ "PATH"; "GAU"; "BFS" ]
  ; input_apps = [ Workloads.Suite.find "BLK" ]
  }

let fmt = Format.std_formatter

(* fig13 and its companions share one set of comparisons *)
let comparisons = ref None

let get_comparisons ctx =
  match !comparisons with
  | Some c -> c
  | None ->
    let _, comps =
      Crat.Experiments.fig13 ~backend:ctx.backend ctx.engine fermi ctx.sensitive
    in
    comparisons := Some comps;
    comps

let experiments : (string * string * (ctx -> unit)) list =
  [ ( "tab2"
    , "Table 2: simulated configuration"
    , fun _ ->
        Format.fprintf fmt "Table 2: simulated GPGPU-Sim-like configuration@.%a@."
          Gpusim.Config.pp fermi )
  ; ( "tab3"
    , "Table 3: applications"
    , fun _ -> Format.fprintf fmt "Table 3: applications@.%a@." Workloads.Suite.pp_table () )
  ; ( "tab1"
    , "Table 1: resource-usage parameters"
    , fun ctx ->
        Crat.Experiments.pp_tab1 fmt
          (Crat.Experiments.tab1 ctx.engine fermi ctx.sensitive) )
  ; ( "fig1"
    , "Fig 1: throttling benefit and register waste"
    , fun ctx ->
        Crat.Experiments.pp_fig1 fmt
          (Crat.Experiments.fig1 ctx.engine fermi ctx.sensitive) )
  ; ( "fig2"
    , "Fig 2: (reg, TLP) design space for CFD"
    , fun ctx ->
        Crat.Experiments.pp_fig2 fmt
          (Crat.Experiments.fig2 ctx.engine fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig3"
    , "Fig 3: selected design points for CFD"
    , fun ctx ->
        Crat.Experiments.pp_fig3 fmt
          (Crat.Experiments.fig3 ctx.engine fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig5"
    , "Fig 5: throttling impact on the L1"
    , fun ctx ->
        Crat.Experiments.pp_fig5 fmt
          (Crat.Experiments.fig5 ctx.engine fermi ctx.sensitive) )
  ; ( "fig6"
    , "Fig 6: registers vs TLP and instruction count (CFD)"
    , fun ctx ->
        Crat.Experiments.pp_fig6 fmt
          (Crat.Experiments.fig6 ctx.engine fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig7"
    , "Fig 7: register vs shared-memory utilization"
    , fun ctx ->
        Crat.Experiments.pp_fig7 fmt
          (Crat.Experiments.fig7 fermi (ctx.sensitive @ ctx.insensitive)) )
  ; ( "fig8"
    , "Fig 8: FDTD register/shared exploration"
    , fun ctx ->
        Crat.Experiments.pp_fig8 fmt
          (Crat.Experiments.fig8 ctx.engine fermi (Workloads.Suite.find "FDTD")) )
  ; ( "fig11"
    , "Fig 11: design-space staircase and pruning (CFD)"
    , fun ctx ->
        Crat.Experiments.pp_fig11 fmt
          (Crat.Experiments.fig11 ctx.engine fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig12"
    , "Fig 12: spill-bytes validation (CFD)"
    , fun ctx ->
        Crat.Experiments.pp_fig12 fmt
          (Crat.Experiments.fig12 ctx.engine fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig13"
    , "Fig 13: headline performance comparison"
    , fun ctx ->
        let rows, comps =
          Crat.Experiments.fig13 ~backend:ctx.backend ctx.engine fermi
            ctx.sensitive
        in
        comparisons := Some comps;
        Crat.Experiments.pp_fig13 fmt rows )
  ; ( "fig14"
    , "Fig 14: selected TLP"
    , fun ctx -> Crat.Experiments.pp_fig14 fmt (Crat.Experiments.fig14 (get_comparisons ctx)) )
  ; ( "fig15"
    , "Fig 15: register utilization"
    , fun ctx ->
        Crat.Experiments.pp_fig15 fmt
          (Crat.Experiments.fig15 fermi (get_comparisons ctx)) )
  ; ( "fig16"
    , "Fig 16: local-memory access reduction"
    , fun ctx -> Crat.Experiments.pp_fig16 fmt (Crat.Experiments.fig16 (get_comparisons ctx)) )
  ; ( "fig17"
    , "Fig 17: Kepler-like scalability"
    , fun ctx ->
        let rows, _ =
          Crat.Experiments.fig13 ~backend:ctx.backend ctx.engine kepler
            ctx.sensitive
        in
        Format.fprintf fmt "Fig 17: Kepler-like architecture@.";
        Crat.Experiments.pp_fig13 fmt rows )
  ; ( "fig18"
    , "Fig 18: input sensitivity"
    , fun ctx ->
        Crat.Experiments.pp_fig18 fmt
          (Crat.Experiments.fig18 ctx.engine fermi ctx.input_apps) )
  ; ( "fig19"
    , "Fig 19: resource-insensitive applications"
    , fun ctx ->
        let rows, _ =
          Crat.Experiments.fig13 ~backend:ctx.backend ctx.engine fermi
            ctx.insensitive
        in
        Format.fprintf fmt "Fig 19: resource-insensitive applications@.";
        Crat.Experiments.pp_fig13 fmt rows )
  ; ( "fig20"
    , "Fig 20: CRAT-profile vs CRAT-static"
    , fun ctx ->
        Crat.Experiments.pp_fig20 fmt
          (Crat.Experiments.fig20 ctx.engine fermi ctx.sensitive) )
  ; ( "energy"
    , "Energy: CRAT vs OptTLP"
    , fun ctx -> Crat.Experiments.pp_energy fmt (Crat.Experiments.energy (get_comparisons ctx)) )
  ; ( "overhead"
    , "Overhead: profiling vs static analysis"
    , fun ctx ->
        Crat.Experiments.pp_overhead fmt
          (Crat.Experiments.overhead ctx.engine fermi ctx.sensitive) )
  ; ( "dyn-tlp"
    , "Baseline: online DynCTA-style throttling"
    , fun ctx ->
        Crat.Experiments.pp_dynamic_tlp fmt
          (Crat.Experiments.dynamic_tlp ctx.engine fermi
             (List.map Workloads.Suite.find [ "KMN"; "STM"; "SPMV"; "CFD" ])) )
  ; ( "ext-bypass"
    , "Extension: CRAT + static L1 bypassing (CFD)"
    , fun ctx ->
        Crat.Experiments.pp_extension_bypass fmt
          (Crat.Experiments.extension_bypass ctx.engine fermi
             (Workloads.Suite.find "CFD")) )
  ; ( "abl-sched"
    , "Ablation: GTO vs LRR warp scheduling"
    , fun ctx ->
        Crat.Experiments.pp_ablation_scheduler fmt
          (Crat.Experiments.ablation_scheduler ctx.engine fermi
             (List.map Workloads.Suite.find [ "CFD"; "KMN"; "STM" ])) )
  ; ( "abl-chunk"
    , "Ablation: Algorithm 1 sub-stack granularity"
    , fun ctx ->
        Crat.Experiments.pp_ablation_chunk fmt
          (Crat.Experiments.ablation_chunk ctx.engine fermi
             (Workloads.Suite.find "STE") ~reg:40) )
  ; ( "gpu-scale"
    , "Multi-SM scaling (KMN, shared memory system)"
    , fun ctx ->
        Crat.Experiments.pp_gpu_scaling fmt
          (Crat.Experiments.gpu_scaling ctx.engine fermi
             (Workloads.Suite.find "KMN") ~tlp:2) )
  ; ( "abl-alloc"
    , "Ablation: allocator extensions (coalescing, remat)"
    , fun ctx ->
        Crat.Experiments.pp_ablation_allocator fmt
          (Crat.Experiments.ablation_allocator ctx.engine fermi
             (Workloads.Suite.find "CFD") ~reg:48) )
  ; ( "abl-type"
    , "Ablation: type-affine colouring (register waste)"
    , fun ctx ->
        Crat.Experiments.pp_ablation_type_strict fmt
          (Crat.Experiments.ablation_type_strict (ctx.sensitive @ ctx.insensitive)) )
  ]

(* ---------- Bechamel mode ---------- *)

let bechamel_mode () =
  let open Bechamel in
  let open Toolkit in
  let mini = List.map Workloads.Suite.find [ "PATH"; "GAU" ] in
  let cfd = Workloads.Suite.find "CFD" in
  let cfd_kernel = Workloads.App.kernel cfd in
  let cfd_flow = Cfg.Flow.of_kernel cfd_kernel in
  let cfd_live = Cfg.Liveness.compute cfd_flow in
  let small = Workloads.Suite.find "PATH" in
  let small_input = Workloads.App.default_input small in
  let test name f = Test.make ~name (Staged.stage f) in
  (* one Test.make per table/figure (scaled-down app set) plus the
     library's hot paths; a fresh engine per run keeps iterations
     identical (no warm cache from the previous run) *)
  let tests =
    [ test "tab1" (fun () ->
        ignore (Crat.Experiments.tab1 (Crat.Engine.create ()) fermi mini))
    ; test "fig1" (fun () ->
        ignore (Crat.Experiments.fig1 (Crat.Engine.create ()) fermi mini))
    ; test "fig5" (fun () ->
        ignore (Crat.Experiments.fig5 (Crat.Engine.create ()) fermi mini))
    ; test "fig6" (fun () ->
        ignore (Crat.Experiments.fig6 (Crat.Engine.create ()) fermi small))
    ; test "fig12" (fun () ->
        ignore (Crat.Experiments.fig12 (Crat.Engine.create ()) fermi small))
    ; test "fig13" (fun () ->
        ignore (Crat.Experiments.fig13 (Crat.Engine.create ()) fermi mini))
    ; test "liveness" (fun () -> ignore (Cfg.Liveness.compute cfd_flow))
    ; test "interference" (fun () ->
        ignore (Regalloc.Interference.build cfd_flow cfd_live))
    ; test "allocate-cfd-r32" (fun () ->
        ignore
          (Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:32 cfd_kernel))
    ; test "knapsack-64x12k" (fun () ->
        let values = Array.init 64 (fun i -> float_of_int ((i * 37) mod 97)) in
        let weights = Array.init 64 (fun i -> 128 + (i * 93 mod 1024)) in
        ignore (Regalloc.Shared_spill.knapsack ~values ~weights ~capacity:12288))
    ; test "ptx-roundtrip" (fun () ->
        ignore (Ptx.Parser.parse_kernel_exn (Ptx.Printer.kernel_to_string cfd_kernel)))
    ; test "static-opttlp" (fun () ->
        ignore (Crat.Opttlp.estimate_static fermi small ~max_tlp:8 ()))
    ; test "sim-small" (fun () ->
        let launch =
          Workloads.App.launch small ~tlp:2
            ~input:{ small_input with Workloads.App.num_blocks = 2 } ()
        in
        ignore (Gpusim.Sm.run fermi launch))
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 3.0) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg_b instances (Test.make_grouped ~name:"crat" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
       let ns =
         match Analyze.OLS.estimates result with
         | Some (e :: _) -> e
         | Some [] | None -> nan
       in
       Printf.printf "%-28s %14.0f ns/run\n" name ns)
    results

(* ---------- driver ---------- *)

let () =
  let bechamel = ref false in
  let fast = ref false in
  let only = ref [] in
  let jobs = ref 1 in
  let json = ref "" in
  let replay = ref true in
  let backend = ref Machine.Backend.Ptx in
  let spec =
    [ ("--bechamel", Arg.Set bechamel, " run Bechamel timing benchmarks")
    ; ("--fast", Arg.Set fast, " reduced application sets")
    ; ( "--only"
      , Arg.String (fun s -> only := String.split_on_char ',' s)
      , "IDS comma-separated experiment ids (e.g. fig13,tab1)" )
    ; ( "--jobs"
      , Arg.Set_int jobs
      , "N fan independent allocations/simulations over N domains (default 1)" )
    ; ( "--json"
      , Arg.Set_string json
      , "FILE write a machine-readable run report (per-experiment wall clock \
         and engine statistics)" )
    ; ( "--replay"
      , Arg.Set replay
      , " record each launch's trace once and replay it across timing \
         points (default)" )
    ; ( "--no-replay"
      , Arg.Clear replay
      , " run every simulation cold through the functional front-end" )
    ; ( "--backend"
      , Arg.Symbol
          ( List.map Machine.Backend.to_string Machine.Backend.all
          , fun s ->
              match Machine.Backend.of_string s with
              | Some b -> backend := b
              | None -> raise (Arg.Bad ("unknown backend " ^ s)) )
      , " register-file model for the fig13 sweep family (default ptx)" )
    ]
  in
  Arg.parse spec
    (fun _ -> ())
    "bench/main.exe [--bechamel] [--fast] [--only ids] [--jobs N] \
     [--json file] [--replay|--no-replay] [--backend ptx|machine]";
  if !jobs < 1 then begin
    prerr_endline "bench: --jobs must be >= 1";
    exit 2
  end;
  (* fail on an unwritable report path now, not after the whole run *)
  if !json <> "" then begin
    match Crat.Report.probe !json with
    | Ok () -> ()
    | Error msg ->
      Printf.eprintf "bench: cannot write --json report: %s\n" msg;
      exit 2
  end;
  List.iter
    (fun id ->
       if not (List.exists (fun (id', _, _) -> id' = id) experiments) then begin
         Printf.eprintf "bench: unknown experiment id %S (see --help)\n" id;
         exit 2
       end)
    !only;
  if !bechamel then bechamel_mode ()
  else begin
    let engine = Crat.Engine.create ~jobs:!jobs ~replay:!replay () in
    let ctx =
      if !fast then fast_ctx ~backend:!backend engine
      else full_ctx ~backend:!backend engine
    in
    let wanted (id, _, _) = !only = [] || List.mem id !only in
    let t_all = Unix.gettimeofday () in
    let records = ref [] in
    List.iter
      (fun ((id, descr, run) as e) ->
         if wanted e then begin
           let before = Crat.Engine.report engine in
           let t0 = Unix.gettimeofday () in
           Format.fprintf fmt "==== %s: %s ====@." id descr;
           run ctx;
           let wall = Unix.gettimeofday () -. t0 in
           let after = Crat.Engine.report engine in
           let d f = f after - f before in
           records :=
             { Crat.Report.id
             ; descr
             ; wall_s = wall
             ; job_wall_s =
                 after.Crat.Engine.job_wall -. before.Crat.Engine.job_wall
             ; sim_runs = d (fun r -> r.Crat.Engine.sim_runs)
             ; sim_hits = d (fun r -> r.Crat.Engine.sim_hits)
             ; alloc_runs = d (fun r -> r.Crat.Engine.alloc_runs)
             ; alloc_hits = d (fun r -> r.Crat.Engine.alloc_hits)
             ; max_queue_depth = after.Crat.Engine.max_queue_depth
             ; batches = d (fun r -> r.Crat.Engine.batches)
             }
             :: !records;
           Format.fprintf fmt "(%.1fs)@.@." wall
         end)
      experiments;
    let total_s = Unix.gettimeofday () -. t_all in
    let report = Crat.Engine.report engine in
    Format.fprintf fmt "total %.1fs; %a@." total_s Crat.Engine.pp_report report;
    if !json <> "" then begin
      (* sanitized replay of every workload's default launch: the
         static/dynamic discharge counts ride the JSON report so CI can
         track how much instrumentation the bounds proofs elide *)
      let san =
        List.fold_left
          (fun acc (app : Workloads.App.t) ->
             let dyn = Crat.Sanitize.validate app in
             let d = dyn.Crat.Sanitize.report.Verify.Sanitize.discharge in
             let c = dyn.Crat.Sanitize.counters in
             { Crat.Report.apps = acc.Crat.Report.apps + 1
             ; accesses = acc.Crat.Report.accesses + d.Verify.Sanitize.total
             ; proven = acc.Crat.Report.proven + d.Verify.Sanitize.safe
             ; residual = acc.Crat.Report.residual + d.Verify.Sanitize.residual
             ; san_seen = acc.Crat.Report.san_seen + Gpusim.Sancheck.seen c
             ; san_checked =
                 acc.Crat.Report.san_checked + Gpusim.Sancheck.checked c
             ; san_violations =
                 acc.Crat.Report.san_violations + Gpusim.Sancheck.violations c
             })
          { Crat.Report.apps = 0
          ; accesses = 0
          ; proven = 0
          ; residual = 0
          ; san_seen = 0
          ; san_checked = 0
          ; san_violations = 0
          }
          Workloads.Suite.all
      in
      Format.fprintf fmt
        "sanitizer: %d/%d static accesses proven over %d apps; %d/%d dynamic \
         checks paid, %d violation(s)@."
        san.Crat.Report.proven san.Crat.Report.accesses san.Crat.Report.apps
        san.Crat.Report.san_checked san.Crat.Report.san_seen
        san.Crat.Report.san_violations;
      Crat.Report.write !json
        { Crat.Report.jobs = !jobs
        ; total_wall_s = total_s
        ; engine = report
        ; sanitizer = Some san
        ; experiments = List.rev !records
        };
      Format.fprintf fmt "wrote %s@." !json
    end
  end
