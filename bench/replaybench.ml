(* BENCH_PR5 harness: the fig13 sweep family (fig13 fermi/sensitive,
   fig17 kepler/sensitive, fig19 fermi/insensitive) timed with the
   trace-replay cache on vs off, at jobs=1 and jobs=4.

   Each cell runs on a fresh engine (no cross-cell cache reuse) and
   fingerprints every Stats.t it produced, so the JSON both proves the
   speedup and that replayed statistics are bit-identical to cold
   simulation at either parallelism.

     dune exec bench/replaybench.exe                  # print JSON
     dune exec bench/replaybench.exe -- BENCH_PR5.json

   (make bench-perf writes BENCH_PR5.json at the repo root.) *)

let fermi = Gpusim.Config.fermi
let kepler = Gpusim.Config.kepler

(* every simulated answer of one comparison, as pure data: the
   fingerprint is a digest of the marshalled list, so two cells agree
   iff every Stats.t field agrees bit-for-bit *)
let essence (c : Crat.Experiments.comparison) =
  ( c.Crat.Experiments.app.Workloads.App.abbr
  , List.map
      (fun (e : Crat.Baselines.evaluated) ->
        (e.Crat.Baselines.label, e.Crat.Baselines.reg, e.Crat.Baselines.tlp,
         e.Crat.Baselines.stats))
      [ c.Crat.Experiments.max_tlp
      ; c.Crat.Experiments.opt_tlp
      ; c.Crat.Experiments.crat_local
      ; c.Crat.Experiments.crat
      ] )

type cell =
  { jobs : int
  ; replay : bool
  ; wall_s : float
  ; fingerprint : string
  ; report : Crat.Engine.report
  }

let run_cell ~jobs ~replay =
  let engine = Crat.Engine.create ~jobs ~replay () in
  let t0 = Unix.gettimeofday () in
  let sweep =
    List.map
      (fun (cfg, apps) -> snd (Crat.Experiments.fig13 engine cfg apps))
      [ (fermi, Workloads.Suite.sensitive)    (* fig13 *)
      ; (kepler, Workloads.Suite.sensitive)   (* fig17 *)
      ; (fermi, Workloads.Suite.insensitive)  (* fig19 *)
      ]
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let fingerprint =
    Digest.to_hex
      (Digest.string (Marshal.to_string (List.map (List.map essence) sweep) []))
  in
  { jobs; replay; wall_s; fingerprint; report = Crat.Engine.report engine }

let cell_json c =
  let r = c.report in
  Printf.sprintf
    {|    {"jobs": %d, "replay": %b, "wall_s": %.3f, "fingerprint": "%s",
     "engine": {"sim_runs": %d, "sim_hits": %d, "trace_records": %d, "trace_replays": %d,
                "alloc_runs": %d, "alloc_hits": %d, "job_wall_s": %.3f}}|}
    c.jobs c.replay c.wall_s c.fingerprint r.Crat.Engine.sim_runs
    r.Crat.Engine.sim_hits r.Crat.Engine.trace_records
    r.Crat.Engine.trace_replays r.Crat.Engine.alloc_runs
    r.Crat.Engine.alloc_hits r.Crat.Engine.job_wall

(* one small sweep per mode before timing anything: the first work a
   fresh process does pays for heap growth and lazy initialisation, and
   must not be billed to whichever cell happens to run first *)
let warmup () =
  let apps = List.map Workloads.Suite.find [ "CFD"; "BLK" ] in
  List.iter
    (fun replay ->
      let engine = Crat.Engine.create ~replay () in
      ignore (Crat.Experiments.fig13 engine fermi apps))
    [ true; false ];
  Printf.eprintf "warmup done\n%!"

let () =
  let out = if Array.length Sys.argv > 1 then Some Sys.argv.(1) else None in
  warmup ();
  let cells =
    List.map
      (fun (jobs, replay) ->
        let c = run_cell ~jobs ~replay in
        Printf.eprintf "jobs=%d replay=%b: %.1fs  %s\n%!" jobs replay c.wall_s
          c.fingerprint;
        c)
      [ (1, true); (1, false); (4, true); (4, false) ]
  in
  let find j r = List.find (fun c -> c.jobs = j && c.replay = r) cells in
  let speedup j = (find j false).wall_s /. (find j true).wall_s in
  let identical =
    List.for_all (fun c -> c.fingerprint = (find 1 true).fingerprint) cells
  in
  let json =
    Printf.sprintf
      {|{
  "description": "fig13 sweep family (fig13 fermi/sensitive + fig17 kepler/sensitive + fig19 fermi/insensitive) with the trace-driven replay cache on vs off. Each cell is a fresh engine; the fingerprint digests every Stats.t produced, so equal fingerprints mean replayed statistics are bit-identical to cold simulation.",
  "command": "dune exec bench/replaybench.exe -- BENCH_PR5.json",
  "speedup_jobs1": %.2f,
  "speedup_jobs4": %.2f,
  "fingerprints_identical": %b,
  "cells": [
%s
  ]
}
|}
      (speedup 1) (speedup 4) identical
      (String.concat ",\n" (List.map cell_json cells))
  in
  (match out with
   | Some path ->
     let oc = open_out path in
     output_string oc json;
     close_out oc
   | None -> print_string json);
  Printf.eprintf "speedup jobs=1: %.2fx, jobs=4: %.2fx, identical: %b\n%!"
    (speedup 1) (speedup 4) identical;
  if not identical then exit 1
