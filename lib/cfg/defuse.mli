(** Def/use statistics per virtual register, optionally weighted by loop
    depth. Drives spill-candidate selection (paper Section 2.2: variables
    with long live ranges and low access frequency are cheap spills). *)

type stats =
  { n_defs : int
  ; n_uses : int
  ; weighted : float
      (** sum over occurrences of [10^min(depth, 4)] — estimated dynamic
          access frequency *)
  }

val compute : ?weight:(int -> float) -> Flow.t -> stats Ptx.Reg.Map.t
(** [weight i] is the estimated dynamic execution count of instruction
    index [i]. Defaults to the historical [10^min(depth, 4)] loop-depth
    heuristic; pass a provider backed by proven trip counts (e.g.
    [Absint.Trip.weight_provider]) to sharpen spill-gain estimates. *)

val access_frequency : Flow.t -> Ptx.Reg.t -> float
(** [weighted] for one register; 0 if the register does not occur. *)
