(** Classic backward liveness analysis over virtual registers.

    This is the analysis CRAT uses both to find [MaxReg] (the pressure
    needed to hold all variables, Section 4.1) and to build live ranges
    for the interference graph (Section 5.1). *)

type t =
  { live_in : Ptx.Reg.Set.t array  (** per instruction index *)
  ; live_out : Ptx.Reg.Set.t array
  }

val compute : Flow.t -> t

val block_use_def : Flow.t -> Flow.block -> Ptx.Reg.Set.t * Ptx.Reg.Set.t
(** Block-level [(use, def)]: registers read before any write in the
    block, and registers written — the transfer-function ingredients,
    exported so forward dataflow passes (lib/verify) can reuse them. *)

val pressure_at : Ptx.Reg.Set.t -> int
(** Register-file units (32-bit registers) occupied by a live set;
    predicates cost nothing. *)

val max_pressure : t -> int
(** MaxLive: the maximum of {!pressure_at} over all program points
    (live-in and live-out of every instruction). *)

val live_ranges : Flow.t -> t -> (Ptx.Reg.t * (int * int)) list
(** For each register, the (first, last) instruction index at which it is
    live or defined — a conservative interval view used for reporting. *)
