(** Natural-loop detection from back edges; provides the loop-nesting
    depth used to weight spill costs (a spill inside a loop is paid every
    iteration). *)

val depths : Flow.t -> int array
(** Loop-nesting depth per block (0 = not in any loop). *)

val instr_depths : Flow.t -> int array
(** Loop-nesting depth per instruction index. *)

val back_edges : Flow.t -> (int * int) list
(** Edges (u, v) with v dominating u. *)

val natural_loop : Flow.t -> int * int -> bool array
(** Membership mask of the natural loop of a back edge [(u, v)]: [v]
    plus every block reaching [u] without passing through [v]. *)
