type stats =
  { n_defs : int
  ; n_uses : int
  ; weighted : float
  }

let empty = { n_defs = 0; n_uses = 0; weighted = 0. }

let default_weight (flow : Flow.t) =
  let depths = Loops.instr_depths flow in
  fun i -> 10. ** float_of_int (min depths.(i) 4)

let compute ?weight (flow : Flow.t) =
  let weight =
    match weight with
    | Some w -> w
    | None -> default_weight flow
  in
  let m = ref Ptx.Reg.Map.empty in
  let bump r f =
    let s = Option.value ~default:empty (Ptx.Reg.Map.find_opt r !m) in
    m := Ptx.Reg.Map.add r (f s) !m
  in
  Flow.iter_instrs flow (fun i ins ->
    let w = weight i in
    List.iter
      (fun r -> bump r (fun s -> { s with n_defs = s.n_defs + 1; weighted = s.weighted +. w }))
      (Ptx.Instr.defs ins);
    List.iter
      (fun r -> bump r (fun s -> { s with n_uses = s.n_uses + 1; weighted = s.weighted +. w }))
      (Ptx.Instr.uses ins));
  !m

let access_frequency flow r =
  match Ptx.Reg.Map.find_opt r (compute flow) with
  | Some s -> s.weighted
  | None -> 0.
