(** Instructions of the PTX subset.

    The subset covers everything the paper's listings use (mov, mul.lo,
    add, ld/st in every state space, bra, bar.sync) plus the arithmetic,
    comparison, select and convert operations required by the synthetic
    workloads. Instructions are fully typed; like real PTX, an instruction
    of type [t] only operates on registers of width-compatible types
    (Section 5.2 of the paper relies on this type-sensitivity). *)

type operand =
  | Oreg of Reg.t
  | Oimm of int64  (** integer immediate *)
  | Ofimm of float  (** floating-point immediate *)
  | Ospecial of Reg.special  (** built-in register read *)
  | Osym of string  (** address of a declared array (e.g. a spill stack) *)
  | Oparam of string  (** kernel parameter, used with [ld.param] *)

(** A memory address: base plus a constant byte offset. PTX has no
    displacement mode for [local]/[shared] symbols with register bases, so
    the allocator materialises bases into registers (paper, Listing 4). *)
type address =
  { base : operand
  ; offset : int
  }

type binop =
  | Add
  | Sub
  | Mul_lo  (** low half of the product, PTX [mul.lo] *)
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr

type unop =
  | Neg
  | Not
  | Abs
  | Sqrt
  | Rcp
  | Ex2
  | Lg2

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Mov of Types.scalar * Reg.t * operand
  | Binop of binop * Types.scalar * Reg.t * operand * operand
  | Mad of Types.scalar * Reg.t * operand * operand * operand
      (** [d = a * b + c], PTX [mad.lo] / [fma] *)
  | Unop of unop * Types.scalar * Reg.t * operand
  | Cvt of Types.scalar * Types.scalar * Reg.t * operand
      (** [Cvt (dst_ty, src_ty, d, a)] *)
  | Setp of cmp * Types.scalar * Reg.t * operand * operand
      (** destination is a predicate register *)
  | Selp of Types.scalar * Reg.t * operand * operand * Reg.t
      (** [d = p ? a : b]; last field is the predicate *)
  | Ld of Types.space * Types.scalar * Reg.t * address
  | St of Types.space * Types.scalar * address * operand
  | Bra of string  (** unconditional branch to a label *)
  | Bra_pred of Reg.t * bool * string
      (** [Bra_pred (p, sense, l)]: branch to [l] when [p = sense] *)
  | Bar_sync  (** block-wide barrier, PTX [bar.sync 0] *)
  | Ret

val operand_regs : operand -> Reg.t list
val address_regs : address -> Reg.t list

val defs : t -> Reg.t list
(** Registers written by the instruction. *)

val uses : t -> Reg.t list
(** Registers read by the instruction (including address bases and branch
    predicates). *)

val is_control : t -> bool
(** Branches and [Ret]. *)

val is_barrier : t -> bool

val branch_target : t -> string option
(** Label targeted by a branch, if any. *)

val falls_through : t -> bool
(** Whether control may continue to the next statement. *)

val is_load : t -> bool
val is_store : t -> bool

val mem_space : t -> Types.space option
(** State space accessed by a load or store. *)

val map_regs : (Reg.t -> Reg.t) -> t -> t
(** Rewrite every register occurrence; used by the allocator to substitute
    physical for virtual registers. *)

val map_def : (Reg.t -> Reg.t) -> t -> t
(** Rewrite only the destination register (if any), leaving source
    occurrences untouched — needed when a register is both read and
    written by one instruction and the two positions must get different
    spill temporaries. *)

(** Latency/issue classification used by the timing model and by the
    static segment analysis of Section 4.1. *)
type op_class =
  | Alu  (** simple integer / single-precision op *)
  | Alu_heavy  (** div/rem/f64 and similar multi-cycle ops *)
  | Sfu  (** special-function unit: sqrt, rcp, ex2, lg2 *)
  | Mem_global
  | Mem_local
  | Mem_shared
  | Mem_const_param
  | Ctrl
  | Barrier

val classify : t -> op_class
val equal : t -> t -> bool
val binop_to_string : binop -> string
val unop_to_string : unop -> string
val cmp_to_string : cmp -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val pp_operand : Format.formatter -> operand -> unit
