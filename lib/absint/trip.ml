open Ptx

type loop =
  { back_edge : int * int
  ; header : int
  ; members : bool array
  ; exits : int list
  ; trips : int option
  }

let cap = 1 lsl 22

(* the single in-loop self-update [x := x op imm] of register x, if any *)
type induction =
  { ireg : Reg.t
  ; iop : Instr.binop
  ; ity : Types.scalar
  ; istep : int64
  ; iblk : int
  ; iidx : int
  }

let find_inductions (flow : Cfg.Flow.t) members =
  let def_counts : int Reg.Tbl.t = Reg.Tbl.create 16 in
  let candidates = ref [] in
  Array.iter
    (fun (b : Cfg.Flow.block) ->
       if members.(b.Cfg.Flow.bid) then
         for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
           let ins = flow.Cfg.Flow.instrs.(i) in
           List.iter
             (fun r ->
                Reg.Tbl.replace def_counts r
                  (1 + Option.value ~default:0 (Reg.Tbl.find_opt def_counts r)))
             (Instr.defs ins);
           match ins with
           | Instr.Binop
               ( ((Instr.Add | Instr.Sub | Instr.Shl | Instr.Shr) as op)
               , ty
               , d
               , Instr.Oreg s
               , Instr.Oimm step )
             when Reg.equal d s && not (Types.is_float ty) ->
             candidates :=
               { ireg = d
               ; iop = op
               ; ity = ty
               ; istep = step
               ; iblk = b.Cfg.Flow.bid
               ; iidx = i
               }
               :: !candidates
           | _ -> ()
         done)
    flow.Cfg.Flow.blocks;
  ( List.filter
      (fun c -> Reg.Tbl.find_opt def_counts c.ireg = Some 1)
      !candidates
  , fun r -> Option.value ~default:0 (Reg.Tbl.find_opt def_counts r) )

(* the last definition of [p] in block [e] strictly before [at]; must be
   a setp for the test to be recognised *)
let reaching_setp (flow : Cfg.Flow.t) (e : Cfg.Flow.block) p ~at =
  let rec scan i =
    if i < e.Cfg.Flow.first then None
    else
      match flow.Cfg.Flow.instrs.(i) with
      | Instr.Setp (cmp, ty, d, a, b) when Reg.equal d p -> Some (i, cmp, ty, a, b)
      | ins when List.exists (Reg.equal p) (Instr.defs ins) -> None
      | _ -> scan (i - 1)
  in
  scan (at - 1)

let singleton_operand an ~at op =
  match Dom.Itv.singleton (Analysis.operand_at an at op).Dom.itv with
  | Some n -> Some (Int64.of_int n)
  | None -> None

let prove_trips an flow members header =
  let inductions, def_count = find_inductions flow members in
  let exits =
    Array.to_list flow.Cfg.Flow.blocks
    |> List.filter_map (fun (b : Cfg.Flow.block) ->
      if
        members.(b.Cfg.Flow.bid)
        && List.exists (fun s -> not members.(s)) b.Cfg.Flow.succs
      then Some b.Cfg.Flow.bid
      else None)
  in
  let proven =
    match exits with
    | [ e ] -> begin
      let eb = flow.Cfg.Flow.blocks.(e) in
      match flow.Cfg.Flow.instrs.(eb.Cfg.Flow.last) with
      | Instr.Bra_pred (p, sense, lbl) -> begin
        match reaching_setp flow eb p ~at:eb.Cfg.Flow.last with
        | None -> None
        | Some (setp_idx, cmp, sty, a, b) ->
          (* which side is the induction register? *)
          let pick =
            List.find_opt
              (fun ind ->
                 a = Instr.Oreg ind.ireg || b = Instr.Oreg ind.ireg)
              inductions
          in
          Option.bind pick (fun ind ->
            let other, x_on_left =
              if a = Instr.Oreg ind.ireg then (b, true) else (a, false)
            in
            (* the bound must be loop-invariant and pinned to a constant *)
            let invariant =
              match other with
              | Instr.Oreg r -> def_count r = 0
              | Instr.Oimm _ | Instr.Ospecial _ -> true
              | _ -> false
            in
            if not invariant then None
            else
              Option.bind (singleton_operand an ~at:setp_idx other)
                (fun bound ->
                   (* initial value: join over entry edges *)
                   let hb = flow.Cfg.Flow.blocks.(header) in
                   let x0v =
                     List.fold_left
                       (fun acc pr ->
                          if members.(pr) then acc
                          else
                            let v =
                              match
                                Reg.Map.find_opt ind.ireg
                                  (Analysis.out_state an pr)
                              with
                              | Some v -> v
                              | None -> Dom.top
                            in
                            match acc with
                            | None -> Some v
                            | Some a -> Some (Dom.join a v)
                       )
                       None hb.Cfg.Flow.preds
                   in
                   Option.bind
                     (match x0v with
                      | Some v -> Dom.Itv.singleton v.Dom.itv
                      | None -> None)
                     (fun x0 ->
                        (* head-test (test dominates increment) or
                           tail-test (increment dominates test)? *)
                        let dom = Cfg.Dominance.dominators flow in
                        let order =
                          if e = ind.iblk then
                            if ind.iidx < setp_idx then `Tail else `Unknown
                          else if Cfg.Dominance.dominates dom e ind.iblk then `Head
                          else if Cfg.Dominance.dominates dom ind.iblk e then `Tail
                          else `Unknown
                        in
                        if order = `Unknown then None
                        else begin
                          let taken_blk =
                            flow.Cfg.Flow.block_of_instr.(Cfg.Flow.target_index
                                                            flow lbl)
                          in
                          let exit_on = if members.(taken_blk) then not sense else sense in
                          let test x =
                            let xa, xb =
                              if x_on_left then (Gpusim.Value.I x, Gpusim.Value.I bound)
                              else (Gpusim.Value.I bound, Gpusim.Value.I x)
                            in
                            Gpusim.Value.compare_values cmp sty xa xb = exit_on
                          in
                          let step x =
                            Gpusim.Value.to_bits
                              (Gpusim.Value.binop ind.iop ind.ity
                                 (Gpusim.Value.I x) (Gpusim.Value.I ind.istep))
                          in
                          let x = ref (Int64.of_int x0) in
                          let t = ref 0 in
                          let result = ref None in
                          (match order with
                           | `Head ->
                             let continue = ref true in
                             while !continue do
                               if test !x then begin
                                 result := Some !t;
                                 continue := false
                               end
                               else if !t >= cap then continue := false
                               else begin
                                 x := step !x;
                                 incr t
                               end
                             done
                           | `Tail ->
                             let continue = ref true in
                             while !continue do
                               x := step !x;
                               incr t;
                               if test !x then begin
                                 result := Some !t;
                                 continue := false
                               end
                               else if !t >= cap then continue := false
                             done
                           | `Unknown -> ());
                          !result
                        end)))
      end
      | _ -> None
    end
    | _ -> None
  in
  (exits, proven)

let loops an =
  let flow = Analysis.flow an in
  Cfg.Loops.back_edges flow
  |> List.map (fun ((_, v) as be) ->
    let members = Cfg.Loops.natural_loop flow be in
    let exits, trips = prove_trips an flow members v in
    { back_edge = be; header = v; members; exits; trips })

let instr_trips ls (flow : Cfg.Flow.t) i =
  let b = flow.Cfg.Flow.block_of_instr.(i) in
  List.fold_left
    (fun (prod, unproven) l ->
       if not l.members.(b) then (prod, unproven)
       else
         match l.trips with
         | Some t ->
           let t = max t 1 in
           (Some (Option.value ~default:1 prod * t), unproven)
         | None -> (prod, unproven + 1))
    (None, 0) ls

let weight_provider an =
  let flow = Analysis.flow an in
  let ls = loops an in
  let w =
    Array.init (Cfg.Flow.num_instrs flow) (fun i ->
      let proven, unproven = instr_trips ls flow i in
      float_of_int (Option.value ~default:1 proven)
      *. (10. ** float_of_int (min unproven 4)))
  in
  fun i -> w.(i)
