type t =
  { block_pressure : int array
  ; maxlive : int
  ; hot_block : int
  }

let compute (flow : Cfg.Flow.t) =
  let lv = Cfg.Liveness.compute flow in
  let nb = Cfg.Flow.num_blocks flow in
  let block_pressure = Array.make nb 0 in
  Array.iter
    (fun (b : Cfg.Flow.block) ->
       let p = ref 0 in
       for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
         p := max !p (Cfg.Liveness.pressure_at lv.Cfg.Liveness.live_in.(i));
         p := max !p (Cfg.Liveness.pressure_at lv.Cfg.Liveness.live_out.(i))
       done;
       block_pressure.(b.Cfg.Flow.bid) <- !p)
    flow.Cfg.Flow.blocks;
  let maxlive = ref 0 and hot = ref 0 in
  Array.iteri
    (fun b p ->
       if p > !maxlive then begin
         maxlive := p;
         hot := b
       end)
    block_pressure;
  { block_pressure; maxlive = !maxlive; hot_block = !hot }
