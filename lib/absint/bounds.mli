(** Static memory-safety bounds: the proving half of the hybrid
    sanitizer.

    Classifies every shared, local and param access of an analysed
    kernel against the exact segment extents of {!Gpusim.Image}'s
    loader layout — shared symbols, the per-thread local frame, the
    parameter bank, and (through [private_strides]) the TLP-dependent
    per-thread sub-stacks of the shared spill region — using the
    reduced product the analysis already carries: an access is proven
    by its affine-in-tid/ctaid form swept over the realized thread and
    block ids, or by its interval, whichever is sharper.

    Global and const accesses are out of scope: their extent is the
    paged global memory itself, which has no static bound here.

    Each in-scope access gets a {!verdict} plus the
    {!Gpusim.Sancheck.bound} that backs it, so {!mask} can compile the
    result into a per-pc check mask: proven-safe accesses discharge
    their dynamic check, unprovable ones keep it, proven-OOB ones keep
    it armed so the interpreters contain the damage. *)

type verdict =
  | Safe  (** every realized lane access stays inside its segment *)
  | Oob  (** every realized lane access escapes its segment *)
  | Unknown  (** not provable either way: the dynamic check remains *)

type access =
  { pc : int  (** flat instruction index *)
  ; space : Ptx.Types.space  (** [Shared], [Local] or [Param] *)
  ; width : int
  ; store : bool
  ; verdict : verdict
  ; bound : Gpusim.Sancheck.bound option
      (** the extent backing the verdict; [None] for param accesses,
          which have no dynamic residue *)
  ; reason : string  (** deterministic human-readable justification *)
  }

type t =
  { accesses : access list  (** ascending by pc *)
  ; shared_bytes : int  (** declared shared segment bytes per block *)
  ; local_frame : int  (** per-thread local frame bytes *)
  ; num_instrs : int
  }

val analyze : ?private_strides:(string * int) list -> Analysis.t -> t
(** [private_strides] names shared symbols with per-thread sub-stack
    semantics (the allocator's [SpillShm]) and their per-thread byte
    stride: accesses are then held to the executing thread's own
    sub-stack, not just the symbol extent. *)

val counts : t -> int * int * int
(** [(safe, oob, unknown)] over the in-scope accesses. *)

val mask : ?force:bool -> t -> Gpusim.Sancheck.t
(** Compile the verdicts into the interpreters' per-pc check mask. *)
