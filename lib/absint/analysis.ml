(* Forward abstract interpretation over Cfg.Flow.

   The interval component models the raw 64-bit register contents viewed
   as a signed int64 (Value.to_bits). Sub-64-bit operations first pass
   their operands through the type's signed/unsigned view (mirroring
   Value.as_signed_bits / as_unsigned_bits) and re-truncate the result;
   64-bit operations can wrap mod 2^64, so any step whose concrete
   result might escape the int64 range degrades the interval to top —
   the affine form, which lives in the mod-2^64 ring, survives wraps. *)

open Ptx

type state = Dom.v Reg.Map.t

type ctx =
  { cflow : Cfg.Flow.t
  ; cblock_size : int
  ; cnum_blocks : int option
  ; cwarp_size : int
  ; cparams : (string * int64) list
  ; shared_offsets : (string * int) list
        (** resolved shared-array offsets, mirroring the loader *)
  ; local_syms : string list
  }

type t =
  { ctx : ctx
  ; instr_in : state array
  ; block_out : state option array
  ; div_block : bool array
  }

let flow t = t.ctx.cflow
let block_size t = t.ctx.cblock_size
let num_blocks t = t.ctx.cnum_blocks
let in_state t i = t.instr_in.(i)
let out_state t b = Option.value t.block_out.(b) ~default:Reg.Map.empty
let divergent_block t b = t.div_block.(b)

let lookup st r =
  match Reg.Map.find_opt r st with
  | Some v -> v
  | None -> Dom.top

(* ---------- state lattice ---------- *)

let state_equal = Reg.Map.equal Dom.equal

let state_merge f a b =
  Reg.Map.merge
    (fun _ x y ->
       match (x, y) with
       | Some x, Some y -> Some (f x y)
       | _ -> None)
    a b

let state_join = state_merge Dom.join
let state_widen = state_merge Dom.widen

(* keys present only in [refined] refine top: sound for a decreasing
   iteration, but only their interval is trusted *)
let state_narrow old refined =
  Reg.Map.merge
    (fun _ o r ->
       match (o, r) with
       | Some o, Some r -> Some (Dom.narrow o r)
       | Some o, None -> Some o
       | None, Some r -> Some (Dom.narrow Dom.top r)
       | None, None -> None)
    old refined

(* ---------- operand evaluation ---------- *)

let imm_value (n : int64) =
  if Int64.equal (Int64.of_int (Int64.to_int n)) n then Dom.const (Int64.to_int n)
  else { Dom.top with Dom.uni = true }

let nonneg_unbounded = Dom.Itv.range 0 max_int

let eval_operand_ ctx st = function
  | Instr.Oreg r -> lookup st r
  | Instr.Oimm n -> imm_value n
  | Instr.Ofimm _ -> { Dom.top with Dom.uni = true }
  | Instr.Ospecial sp -> begin
    let bs = ctx.cblock_size and ws = ctx.cwarp_size in
    match sp with
    | Reg.Tid_x ->
      { Dom.itv = Dom.Itv.range 0 (max 0 (bs - 1))
      ; aff = Dom.aff_tid
      ; uni = bs <= 1
      }
    | Reg.Ctaid_x ->
      { Dom.itv =
          (match ctx.cnum_blocks with
           | Some nb when nb >= 1 -> Dom.Itv.range 0 (nb - 1)
           | _ -> nonneg_unbounded)
      ; aff = Dom.aff_ctaid
      ; uni = true
      }
    | Reg.Ntid_x -> Dom.const bs
    | Reg.Nctaid_x ->
      (match ctx.cnum_blocks with
       | Some nb -> Dom.const nb
       | None -> { Dom.itv = Dom.Itv.range 1 max_int; aff = Dom.aff_opaque; uni = true })
    | Reg.Tid_y | Reg.Ctaid_y -> Dom.const 0
    | Reg.Ntid_y | Reg.Nctaid_y -> Dom.const 1
    | Reg.Laneid ->
      { Dom.itv = Dom.Itv.range 0 (max 0 (min bs ws - 1))
      ; aff = Dom.aff_opaque
      ; uni = bs <= 1
      }
    | Reg.Warpid ->
      if bs <= ws then Dom.const 0
      else
        { Dom.itv = Dom.Itv.range 0 ((bs - 1) / max 1 ws)
        ; aff = Dom.aff_opaque
        ; uni = false
        }
  end
  | Instr.Osym s -> begin
    match List.assoc_opt s ctx.shared_offsets with
    | Some off ->
      (* a shared symbol evaluates to its (small, deterministic) layout
         offset, so the interval is exact and U32 address arithmetic on
         it keeps the affine form alive *)
      { Dom.itv = Dom.Itv.const off; aff = Dom.aff_sym (Dom.Sym s); uni = true }
    | None ->
    if List.mem s ctx.local_syms then
      (* local symbols resolve to per-thread addresses *)
      { Dom.itv = nonneg_unbounded; aff = Dom.aff_sym (Dom.Sym s); uni = false }
    else Dom.top
  end
  | Instr.Oparam _ -> { Dom.top with Dom.uni = true }

(* ---------- transfer ---------- *)

let is64 = function
  | Types.U64 | Types.S64 | Types.B64 -> true
  | _ -> false

let itv_fin (i : Dom.Itv.t) = i.Dom.Itv.lo <> min_int && i.Dom.Itv.hi <> max_int
let itv_nonneg (i : Dom.Itv.t) = i.Dom.Itv.lo >= 0

(* the signed/unsigned view a sub-64-bit operation takes of its operand
   (Value.as_signed_bits / as_unsigned_bits) *)
let view_range ~signed ty =
  if is64 ty then Dom.Itv.top
  else if signed then
    let w = Types.width_bytes ty * 8 in
    Dom.Itv.range (-(1 lsl (w - 1))) ((1 lsl (w - 1)) - 1)
  else
    let w = Types.width_bytes ty * 8 in
    Dom.Itv.range 0 ((1 lsl w) - 1)

let cast_view ~signed ty (v : Dom.v) =
  if is64 ty then v
  else
    let rng = view_range ~signed ty in
    if Dom.Itv.subset v.Dom.itv rng then v
    else { v with Dom.itv = rng; aff = Dom.aff_opaque }

let cast_in ty v = cast_view ~signed:(Types.is_signed ty) ty v

let binop_itv op ty (a : Dom.Itv.t) (b : Dom.Itv.t) =
  let signed = Types.is_signed ty in
  let w64 = is64 ty in
  (* 64-bit add/sub/mul/shl wrap mod 2^64: trust the interval only when
     every bound involved is finite (finite native bounds cannot
     overflow int64 undetected — the saturating ops flag it) *)
  let guard_wrap r =
    if (not w64) || (itv_fin a && itv_fin b && itv_fin r) then r else Dom.Itv.top
  in
  match op with
  | Instr.Add -> guard_wrap (Dom.Itv.add a b)
  | Instr.Sub -> guard_wrap (Dom.Itv.sub a b)
  | Instr.Mul_lo -> guard_wrap (Dom.Itv.mul a b)
  | Instr.Shl -> guard_wrap (Dom.Itv.shl a b)
  | Instr.Div ->
    if signed || (itv_nonneg a && itv_nonneg b) then Dom.Itv.div a b
    else Dom.Itv.top
  | Instr.Rem ->
    if signed || (itv_nonneg a && itv_nonneg b) then Dom.Itv.rem a b
    else Dom.Itv.top
  | Instr.Min ->
    if signed || (itv_nonneg a && itv_nonneg b) then Dom.Itv.min_ a b
    else Dom.Itv.top
  | Instr.Max ->
    if signed || (itv_nonneg a && itv_nonneg b) then Dom.Itv.max_ a b
    else Dom.Itv.top
  | Instr.And -> Dom.Itv.logand a b
  | Instr.Or -> Dom.Itv.logor a b
  | Instr.Xor -> Dom.Itv.logxor a b
  | Instr.Shr -> Dom.Itv.shr ~signed a b

let binop_aff op (va : Dom.v) (vb : Dom.v) =
  match op with
  | Instr.Add -> Dom.aff_add va.Dom.aff vb.Dom.aff
  | Instr.Sub -> Dom.aff_sub va.Dom.aff vb.Dom.aff
  | Instr.Mul_lo -> Dom.aff_mul va.Dom.aff vb.Dom.aff
  | Instr.Shl -> begin
    match Dom.Itv.singleton vb.Dom.itv with
    | Some c when c >= 0 && c < 62 -> Dom.aff_scale va.Dom.aff (1 lsl c)
    | _ -> Dom.aff_opaque
  end
  | _ -> Dom.aff_opaque

let apply_binop op ty va vb =
  if Types.is_float ty then
    Dom.truncate ty { Dom.top with Dom.uni = va.Dom.uni && vb.Dom.uni }
  else
    let a = cast_in ty va and b = cast_in ty vb in
    Dom.truncate ty
      { Dom.itv = binop_itv op ty a.Dom.itv b.Dom.itv
      ; aff = binop_aff op a b
      ; uni = va.Dom.uni && vb.Dom.uni
      }

let apply_unop op ty (va : Dom.v) =
  match op with
  | Instr.Sqrt | Instr.Rcp | Instr.Ex2 | Instr.Lg2 ->
    Dom.truncate ty { Dom.top with Dom.uni = va.Dom.uni }
  | Instr.Neg | Instr.Not | Instr.Abs ->
    if Types.is_float ty then Dom.truncate ty { Dom.top with Dom.uni = va.Dom.uni }
    else
      (* integer unops take the signed view of the operand *)
      let a = cast_view ~signed:true ty va in
      let itv, aff =
        match op with
        | Instr.Neg ->
          ( (if is64 ty && a.Dom.itv.Dom.Itv.lo = min_int then Dom.Itv.top
             else Dom.Itv.neg a.Dom.itv)
          , Dom.aff_scale a.Dom.aff (-1) )
        | Instr.Not ->
          (Dom.Itv.lognot a.Dom.itv, Dom.aff_sub (Dom.aff_const (-1)) a.Dom.aff)
        | _ ->
          (* Abs; |int64 min| wraps to itself *)
          ( (if is64 ty && a.Dom.itv.Dom.Itv.lo = min_int then Dom.Itv.top
             else Dom.Itv.abs_ a.Dom.itv)
          , Dom.aff_opaque )
      in
      Dom.truncate ty { Dom.itv = itv; aff; uni = va.Dom.uni }

let apply_cvt ~dst ~src (va : Dom.v) =
  if Types.is_float src || Types.is_float dst then
    Dom.truncate dst { Dom.top with Dom.uni = va.Dom.uni }
  else Dom.truncate dst (cast_in src va)

let apply_load ctx space ty addr (va_base : Dom.v) =
  match space with
  | Types.Param -> begin
    match addr.Instr.base with
    | Instr.Oparam p when addr.Instr.offset = 0 -> begin
      match List.assoc_opt p ctx.cparams with
      | Some v -> Dom.truncate ty (imm_value v)
      | None ->
        { Dom.itv = Dom.type_range ty; aff = Dom.aff_sym (Dom.Param p); uni = true }
    end
    | _ -> { Dom.itv = Dom.type_range ty; aff = Dom.aff_opaque; uni = true }
  end
  | Types.Const ->
    { Dom.itv = Dom.type_range ty; aff = Dom.aff_opaque; uni = va_base.Dom.uni }
  | _ -> { Dom.itv = Dom.type_range ty; aff = Dom.aff_opaque; uni = false }

let transfer_instr ctx ~div st ins =
  let ev op = eval_operand_ ctx st op in
  let def r v =
    Reg.Map.add r { v with Dom.uni = v.Dom.uni && not div } st
  in
  match ins with
  | Instr.Mov (ty, d, a) -> def d (Dom.truncate ty (ev a))
  | Instr.Binop (op, ty, d, a, b) -> def d (apply_binop op ty (ev a) (ev b))
  | Instr.Mad (ty, d, a, b, c) ->
    let m = apply_binop Instr.Mul_lo ty (ev a) (ev b) in
    def d (apply_binop Instr.Add ty m (ev c))
  | Instr.Unop (op, ty, d, a) -> def d (apply_unop op ty (ev a))
  | Instr.Cvt (dt, src, d, a) -> def d (apply_cvt ~dst:dt ~src (ev a))
  | Instr.Setp (_, _, d, a, b) ->
    let va = ev a and vb = ev b in
    def d
      { Dom.itv = Dom.Itv.range 0 1
      ; aff = Dom.aff_opaque
      ; uni = va.Dom.uni && vb.Dom.uni
      }
  | Instr.Selp (ty, d, a, b, p) ->
    let va = ev a and vb = ev b and vp = lookup st p in
    let j = Dom.join va vb in
    def d
      (Dom.truncate ty { j with Dom.uni = va.Dom.uni && vb.Dom.uni && vp.Dom.uni })
  | Instr.Ld (space, ty, d, addr) ->
    def d (apply_load ctx space ty addr (ev addr.Instr.base))
  | Instr.St _ | Instr.Bra _ | Instr.Bra_pred _ | Instr.Bar_sync | Instr.Ret -> st

(* ---------- control dependence (post-dominator tree walk) ---------- *)

let compute_control_deps (flow : Cfg.Flow.t) pd =
  let nb = Cfg.Flow.num_blocks flow in
  let deps = Array.make nb [] in
  Array.iter
    (fun (b : Cfg.Flow.block) ->
       match b.Cfg.Flow.succs with
       | [] | [ _ ] -> ()
       | succs ->
         let stop = Cfg.Dominance.idom pd b.Cfg.Flow.bid in
         List.iter
           (fun s ->
              let rec walk x steps =
                if steps > nb then ()
                else if Some x = stop then ()
                else begin
                  if not (List.mem b.Cfg.Flow.bid deps.(x)) then
                    deps.(x) <- b.Cfg.Flow.bid :: deps.(x);
                  match Cfg.Dominance.idom pd x with
                  | None -> ()
                  | Some p -> walk p (steps + 1)
                end
              in
              walk s 0)
           succs)
    flow.Cfg.Flow.blocks;
  deps

(* ---------- driver ---------- *)

let run ?(block_size = 128) ?num_blocks ?(warp_size = 32) ?(params = []) flow =
  let k = flow.Cfg.Flow.kernel in
  let syms space =
    List.filter_map
      (fun d ->
         if d.Kernel.dspace = space then Some d.Kernel.dname else None)
      k.Kernel.decls
  in
  (* shared symbols resolve to concrete offsets at the sequential
     aligned layout both interpreters load at, so the singletons below
     are exact *)
  let shared_offsets, _ = Gpusim.Image.layout_decls k.Kernel.decls Types.Shared in
  let ctx =
    { cflow = flow
    ; cblock_size = block_size
    ; cnum_blocks = num_blocks
    ; cwarp_size = warp_size
    ; cparams = params
    ; shared_offsets
    ; local_syms = syms Types.Local
    }
  in
  let nb = Cfg.Flow.num_blocks flow in
  let ni = Cfg.Flow.num_instrs flow in
  let instr_in = Array.make ni Reg.Map.empty in
  let block_in : state option array = Array.make nb None in
  let block_out : state option array = Array.make nb None in
  let div_block = Array.make nb false in
  let headers =
    Cfg.Loops.back_edges flow |> List.map snd |> List.sort_uniq compare
  in
  let in_changes = Array.make nb 0 in
  let pd = Cfg.Dominance.post_dominators flow in
  let cdeps = compute_control_deps flow pd in
  let transfer_block (b : Cfg.Flow.block) in_st =
    let st = ref in_st in
    for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
      instr_in.(i) <- !st;
      st :=
        transfer_instr ctx ~div:div_block.(b.Cfg.Flow.bid) !st
          flow.Cfg.Flow.instrs.(i)
    done;
    !st
  in
  let join_preds (b : Cfg.Flow.block) =
    if b.Cfg.Flow.bid = 0 then Some Reg.Map.empty
    else
      List.fold_left
        (fun acc p ->
           match (acc, block_out.(p)) with
           | None, o -> o
           | a, None -> a
           | Some a, Some o -> Some (state_join a o))
        None b.Cfg.Flow.preds
  in
  (* is the branch terminating block [d] taken divergently? *)
  let branch_divergent d =
    let blk = flow.Cfg.Flow.blocks.(d) in
    match flow.Cfg.Flow.instrs.(blk.Cfg.Flow.last) with
    | Instr.Bra_pred (p, _, _) ->
      not (lookup instr_in.(blk.Cfg.Flow.last) p).Dom.uni
    | _ -> false
  in
  let sweep = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr sweep;
    Array.iter
      (fun (b : Cfg.Flow.block) ->
         match join_preds b with
         | None -> ()
         | Some joined ->
           let bid = b.Cfg.Flow.bid in
           let in' =
             match block_in.(bid) with
             | Some old
               when (List.mem bid headers && in_changes.(bid) >= 2)
                    || !sweep > 64 ->
               state_widen old (state_join old joined)
             | Some old -> state_join old joined
             | None -> joined
           in
           let in_dirty =
             match block_in.(bid) with
             | Some old -> not (state_equal old in')
             | None -> true
           in
           if in_dirty then begin
             block_in.(bid) <- Some in';
             in_changes.(bid) <- in_changes.(bid) + 1
           end;
           let out = transfer_block b in' in
           let out_dirty =
             match block_out.(bid) with
             | Some old -> not (state_equal old out)
             | None -> true
           in
           if out_dirty then block_out.(bid) <- Some out;
           if in_dirty || out_dirty then changed := true)
      flow.Cfg.Flow.blocks;
    (* divergence feedback: a block control-dependent on a divergently
       taken branch executes with a partial warp *)
    for x = 0 to nb - 1 do
      if (not div_block.(x)) && List.exists branch_divergent cdeps.(x) then begin
        div_block.(x) <- true;
        changed := true
      end
    done
  done;
  (* two decreasing passes recover bounds the widening destroyed *)
  for _ = 1 to 2 do
    Array.iter
      (fun (b : Cfg.Flow.block) ->
         match (block_in.(b.Cfg.Flow.bid), join_preds b) with
         | Some old, Some joined ->
           let in' = state_narrow old joined in
           block_in.(b.Cfg.Flow.bid) <- Some in';
           block_out.(b.Cfg.Flow.bid) <- Some (transfer_block b in')
         | _ -> ())
      flow.Cfg.Flow.blocks
  done;
  { ctx; instr_in; block_out; div_block }

let eval_operand t st op = eval_operand_ t.ctx st op
let value_at t i r = lookup t.instr_in.(i) r
let operand_at t i op = eval_operand_ t.ctx t.instr_in.(i) op

let address_at t i (addr : Instr.address) =
  let v = operand_at t i addr.Instr.base in
  let off = addr.Instr.offset in
  { Dom.itv =
      (if itv_fin v.Dom.itv then Dom.Itv.add v.Dom.itv (Dom.Itv.const off)
       else Dom.Itv.top)
  ; aff = Dom.aff_add v.Dom.aff (Dom.aff_const off)
  ; uni = v.Dom.uni
  }
