(** MAXLIVE-style per-block register pressure, in 32-bit register-file
    units (predicates are free, 64-bit registers cost two units). *)

type t =
  { block_pressure : int array  (** max pressure inside each block *)
  ; maxlive : int
  ; hot_block : int  (** block attaining [maxlive] *)
  }

val compute : Cfg.Flow.t -> t
