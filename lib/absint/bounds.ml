open Ptx

type verdict =
  | Safe
  | Oob
  | Unknown

type access =
  { pc : int
  ; space : Types.space
  ; width : int
  ; store : bool
  ; verdict : verdict
  ; bound : Gpusim.Sancheck.bound option
  ; reason : string
  }

type t =
  { accesses : access list
  ; shared_bytes : int
  ; local_frame : int
  ; num_instrs : int
  }

(* Keep the delta arithmetic far away from native-int overflow; address
   strides beyond this are opaque anyway. *)
let coeff_sane c = abs c <= 0x3FFF_FFFF

(* Range of [base + tid*t + cta*c] over tid in [0, bs) and ctaid in
   [0, nb); [None] when the ctaid coefficient matters but the grid size
   is unknown. *)
let delta_range ~bs ~nb (a : Dom.aff) =
  if not (coeff_sane a.Dom.tid && coeff_sane a.Dom.cta && coeff_sane a.Dom.base)
  then None
  else begin
    let span c lo hi = if c >= 0 then (c * lo, c * hi) else (c * hi, c * lo) in
    let tl, th = span a.Dom.tid 0 (max 0 (bs - 1)) in
    match (a.Dom.cta, nb) with
    | 0, _ -> Some (a.Dom.base + tl, a.Dom.base + th)
    | c, Some nb when nb >= 1 ->
      let cl, ch = span c 0 (nb - 1) in
      Some (a.Dom.base + tl + cl, a.Dom.base + th + ch)
    | _ -> None
  end

let itv_lo (i : Dom.Itv.t) = i.Dom.Itv.lo
let itv_hi (i : Dom.Itv.t) = i.Dom.Itv.hi
let fin_lo i = itv_lo i <> min_int
let fin_hi i = itv_hi i <> max_int

(* Uniform deltas (no tid/ctaid term) are realized by every executing
   lane, so an escape is a fault on any execution, divergent or not.
   Non-uniform escapes are only proven when the whole range misses the
   extent. *)
let classify_delta ~dmin ~dmax ~width ~lo ~hi ~uniform =
  if dmin >= lo && dmax + width <= hi then Safe
  else if dmin >= hi || dmax + width <= lo || uniform then Oob
  else Unknown

let classify_shared ~bs ~nb ~shared_bytes ~offsets ~sizes ~strides (av : Dom.v)
    ~width =
  let itv = av.Dom.itv in
  let seg = Gpusim.Sancheck.Segment { lo = 0; hi = shared_bytes } in
  let sym =
    match Dom.decl_sym av.Dom.aff with
    | Some s when List.mem_assoc s offsets -> Some s
    | _ -> None
  in
  match sym with
  | Some s -> begin
    let off_s = List.assoc s offsets in
    let size_s = List.assoc s sizes in
    let a = av.Dom.aff in
    match List.assoc_opt s strides with
    | Some ps when ps > 0 ->
      (* TLP-dependent spill region: the segment is the executing
         thread's own sub-stack *)
      let pt = Gpusim.Sancheck.Per_thread { base = off_s; stride = ps } in
      if a.Dom.cta = 0 && a.Dom.tid = ps && coeff_sane a.Dom.base then
        if a.Dom.base >= 0 && a.Dom.base + width <= ps then
          ( Safe
          , Some pt
          , Printf.sprintf
              "slot [%d,%d) of the thread's %dB %s sub-stack" a.Dom.base
              (a.Dom.base + width) ps s )
        else
          ( Oob
          , Some pt
          , Printf.sprintf
              "offset %d escapes the thread's %dB %s sub-stack: corrupts a \
               neighbouring thread's spill slots"
              a.Dom.base ps s )
      else
        ( Unknown
        , Some pt
        , Printf.sprintf
            "address is not tid*%d-affine into %s: per-thread sub-stack \
             containment not provable"
            ps s )
    | _ -> begin
      let sym_bound =
        Gpusim.Sancheck.Segment { lo = off_s; hi = off_s + size_s }
      in
      let sym_extent = Printf.sprintf "%s [%d,%d)" s off_s (off_s + size_s) in
      (* the interval is absolute (the symbol offset is a singleton), so
         a guard-narrowed interval can prove safety when the affine
         sweep over all tids cannot *)
      let itv_safe =
        fin_lo itv && fin_hi itv && itv_lo itv >= off_s
        && itv_hi itv + width <= off_s + size_s
      in
      let unknown why =
        if itv_safe then
          ( Safe
          , Some sym_bound
          , Printf.sprintf "offset interval [%d,%d) inside %s" (itv_lo itv)
              (itv_hi itv + width) sym_extent )
        else (Unknown, Some sym_bound, why)
      in
      match delta_range ~bs ~nb a with
      | Some (dmin, dmax) -> begin
        match
          classify_delta ~dmin ~dmax ~width ~lo:0 ~hi:size_s
            ~uniform:(a.Dom.tid = 0 && a.Dom.cta = 0)
        with
        | Safe ->
          ( Safe
          , Some sym_bound
          , Printf.sprintf "footprint [%d,%d) inside %s" dmin (dmax + width)
              sym_extent )
        | Oob ->
          ( Oob
          , Some sym_bound
          , Printf.sprintf "footprint [%d,%d) escapes %s" dmin (dmax + width)
              sym_extent )
        | Unknown ->
          unknown
            (Printf.sprintf "footprint [%d,%d) may escape %s" dmin
               (dmax + width) sym_extent)
      end
      | None ->
        unknown
          (Printf.sprintf "offset into %s not statically bounded" sym_extent)
    end
  end
  | None ->
    (* no provable symbol base: hold the absolute offset interval to the
       whole shared segment *)
    if
      fin_lo itv && fin_hi itv && itv_lo itv >= 0
      && itv_hi itv + width <= shared_bytes
    then
      ( Safe
      , Some seg
      , Printf.sprintf "offset interval [%d,%d) inside the %dB shared segment"
          (itv_lo itv) (itv_hi itv + width) shared_bytes )
    else if
      (fin_lo itv && itv_lo itv >= shared_bytes)
      || (fin_hi itv && itv_hi itv + width <= 0)
    then
      ( Oob
      , Some seg
      , Printf.sprintf "offset interval outside the %dB shared segment"
          shared_bytes )
    else
      ( Unknown
      , Some seg
      , Printf.sprintf
          "address not a provable affine form or bounded interval (%dB \
           shared segment)"
          shared_bytes )

let classify_local ~bs ~nb ~frame ~offsets ~sizes (av : Dom.v) ~width =
  let frame_bound = Gpusim.Sancheck.Segment { lo = 0; hi = frame } in
  let sym =
    match Dom.decl_sym av.Dom.aff with
    | Some s when List.mem_assoc s offsets -> Some s
    | _ -> None
  in
  match sym with
  | Some s -> begin
    let off_s = List.assoc s offsets in
    let size_s = List.assoc s sizes in
    let a = av.Dom.aff in
    match delta_range ~bs ~nb a with
    | Some (dmin, dmax) ->
      if dmin >= 0 && dmax + width <= size_s then
        ( Safe
        , Some (Gpusim.Sancheck.Segment { lo = off_s; hi = off_s + size_s })
        , Printf.sprintf "footprint [%d,%d) inside local %s [%d,%d)" dmin
            (dmax + width) s off_s (off_s + size_s) )
      else begin
        let v =
          classify_delta ~dmin:(off_s + dmin) ~dmax:(off_s + dmax) ~width
            ~lo:0 ~hi:frame
            ~uniform:(a.Dom.tid = 0 && a.Dom.cta = 0)
        in
        let why =
          match v with
          | Safe ->
            Printf.sprintf
              "footprint [%d,%d) inside the %dB local frame" (off_s + dmin)
              (off_s + dmax + width) frame
          | Oob ->
            Printf.sprintf
              "footprint [%d,%d) escapes the %dB local frame" (off_s + dmin)
              (off_s + dmax + width) frame
          | Unknown ->
            Printf.sprintf
              "footprint [%d,%d) may escape the %dB local frame"
              (off_s + dmin) (off_s + dmax + width) frame
        in
        (v, Some frame_bound, why)
      end
    | None ->
      ( Unknown
      , Some frame_bound
      , Printf.sprintf "offset from local %s not statically bounded" s )
  end
  | None ->
    ( Unknown
    , Some frame_bound
    , Printf.sprintf
        "address is not a provable offset from a local symbol (%dB frame)"
        frame )

let classify_param (k : Kernel.t) (addr : Instr.address) ~width =
  match addr.Instr.base with
  | Instr.Oparam p -> begin
    match List.assoc_opt p k.Kernel.params with
    | Some pty ->
      let pw = Types.width_bytes pty in
      if addr.Instr.offset = 0 && width <= pw then
        (Safe, None, Printf.sprintf "reads the %dB parameter entry %s" pw p)
      else
        ( Oob
        , None
        , Printf.sprintf
            "offset %d / width %d escapes the %dB parameter entry %s"
            addr.Instr.offset width pw p )
    | None -> (Oob, None, Printf.sprintf "unknown parameter %s" p)
  end
  | Instr.Oreg _ | Instr.Oimm _ | Instr.Ofimm _ | Instr.Ospecial _
  | Instr.Osym _ ->
    (Oob, None, "ld.param base is not a parameter")

let analyze ?(private_strides = []) an =
  let flow = Analysis.flow an in
  let k = flow.Cfg.Flow.kernel in
  let bs = Analysis.block_size an in
  let nb = Analysis.num_blocks an in
  let shared_offsets, shared_bytes =
    Gpusim.Image.layout_decls k.Kernel.decls Types.Shared
  in
  let local_offsets, local_frame =
    Gpusim.Image.layout_decls k.Kernel.decls Types.Local
  in
  let sizes space =
    List.filter_map
      (fun (d : Kernel.decl) ->
         if d.Kernel.dspace = space then
           Some (d.Kernel.dname, Kernel.decl_bytes d)
         else None)
      k.Kernel.decls
  in
  let shared_sizes = sizes Types.Shared in
  let local_sizes = sizes Types.Local in
  let accesses = ref [] in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    let record space ty addr ~store =
      let width = Types.width_bytes ty in
      let verdict, bound, reason =
        match space with
        | Types.Shared ->
          classify_shared ~bs ~nb ~shared_bytes ~offsets:shared_offsets
            ~sizes:shared_sizes ~strides:private_strides
            (Analysis.address_at an i addr)
            ~width
        | Types.Local ->
          classify_local ~bs ~nb ~frame:local_frame ~offsets:local_offsets
            ~sizes:local_sizes
            (Analysis.address_at an i addr)
            ~width
        | Types.Param -> classify_param k addr ~width
        | Types.Global | Types.Const | Types.Reg -> assert false
      in
      accesses :=
        { pc = i; space; width; store; verdict; bound; reason } :: !accesses
    in
    match ins with
    | Instr.Ld (((Types.Shared | Types.Local | Types.Param) as sp), ty, _, addr)
      ->
      record sp ty addr ~store:false
    | Instr.St (((Types.Shared | Types.Local) as sp), ty, addr, _) ->
      record sp ty addr ~store:true
    | _ -> ());
  { accesses = List.rev !accesses
  ; shared_bytes
  ; local_frame
  ; num_instrs = Cfg.Flow.num_instrs flow
  }

let counts t =
  List.fold_left
    (fun (s, o, u) a ->
       match a.verdict with
       | Safe -> (s + 1, o, u)
       | Oob -> (s, o + 1, u)
       | Unknown -> (s, o, u + 1))
    (0, 0, 0) t.accesses

let mask ?force t =
  let claims =
    List.filter_map
      (fun a ->
         match a.bound with
         | None -> None
         | Some b ->
           let c =
             match a.verdict with
             | Safe -> Gpusim.Sancheck.Proven_safe b
             | Oob -> Gpusim.Sancheck.Proven_oob b
             | Unknown -> Gpusim.Sancheck.Residual b
           in
           Some (a.pc, c))
      t.accesses
  in
  Gpusim.Sancheck.make ?force ~num_instrs:t.num_instrs claims
