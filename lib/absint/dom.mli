(** Abstract domains for the PTX abstract interpreter.

    Three cooperating views of a register's value:

    - {!Itv}: integer intervals over the [Value.to_int64] semantics of a
      register (finite native ints, with [min_int]/[max_int] standing
      for the infinities). Sound for integer-typed values; floats are
      always top.
    - affine forms [base + tid*%tid.x + cta*%ctaid.x (+ symbol)] over
      the 2^64 ring, generalising the old [Verify.Affine] forms with a
      ctaid coefficient and symbolic parameter bases.
    - a uniformity bit: [true] means every thread of the block observes
      the same value at that program point. *)

module Itv : sig
  type t = private
    { lo : int  (** [min_int] = -oo *)
    ; hi : int  (** [max_int] = +oo *)
    }

  val top : t
  val const : int -> t
  val range : int -> int -> t
  (** [range lo hi] with saturation; [lo > hi] is an error. *)

  val is_top : t -> bool
  val singleton : t -> int option
  val contains : t -> int64 -> bool
  val subset : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  (** [widen old new]: keep stable bounds, push moving ones to oo. *)

  val narrow : t -> t -> t
  (** [narrow old refined]: refine only infinite bounds of [old]. *)

  val equal : t -> t -> bool

  (* transfer helpers; all saturating and sound for the int64 value
     semantics *)
  val add : t -> t -> t
  val sub : t -> t -> t
  val neg : t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val rem : t -> t -> t
  val min_ : t -> t -> t
  val max_ : t -> t -> t
  val abs_ : t -> t
  val lognot : t -> t
  val logand : t -> t -> t
  val logor : t -> t -> t
  val logxor : t -> t -> t
  val shl : t -> t -> t
  val shr : signed:bool -> t -> t -> t
  val pp : Format.formatter -> t -> unit
end

(** Base symbol of an affine form. [Sym] is a declared array (shared or
    local); [Param] is the runtime value of a kernel parameter (used for
    global pointer bases). *)
type base =
  | Sym of string
  | Param of string

type aff =
  { sym : base option
  ; tid : int  (** coefficient of [%tid.x] *)
  ; cta : int  (** coefficient of [%ctaid.x] *)
  ; base : int
  ; exact : bool
      (** when true the value is [sym + tid*%tid.x + cta*%ctaid.x + base]
          modulo 2^64 *)
  }

val aff_opaque : aff
val aff_const : int -> aff
val aff_sym : base -> aff
val aff_tid : aff
val aff_ctaid : aff
val aff_equal : aff -> aff -> bool
val aff_join : aff -> aff -> aff
val aff_add : aff -> aff -> aff
val aff_sub : aff -> aff -> aff
val aff_scale : aff -> int -> aff
val aff_mul : aff -> aff -> aff

val decl_sym : aff -> string option
(** [Some s] when the form is exact with a declared-array base. *)

(** The product value: interval x affine x uniformity. *)
type v =
  { itv : Itv.t
  ; aff : aff
  ; uni : bool
  }

val top : v
val top_uniform : v
val const : int -> v
val join : v -> v -> v
val widen : v -> v -> v
val narrow : v -> v -> v
val equal : v -> v -> bool
val pp : Format.formatter -> v -> unit

val type_range : Ptx.Types.scalar -> Itv.t
(** Interval of representable [to_int64] values of the type; unbounded
    for the 64-bit types. *)

val truncate : Ptx.Types.scalar -> v -> v
(** Abstract counterpart of [Value.truncate]: values that provably fit
    the type pass through; otherwise the interval widens to the type
    range and, for sub-64-bit types, the affine form dies (a 64-bit
    wrap is absorbed by the mod-2^64 form semantics). *)
