(** Provable loop trip counts.

    A loop (one natural loop per back edge) gets a proven trip count when
    it has a single recognisable induction register (one in-loop
    definition of the shape [x := x op imm]), a unique exit block whose
    conditional branch tests [x] against a loop-invariant value the
    abstract interpretation pins to a constant, and a provable initial
    value on loop entry. The count is then obtained by running the exact
    [Value] semantics of the induction update until the exit condition
    fires (capped), so wrap-around and signed/unsigned comparison
    subtleties match the simulator by construction. *)

type loop =
  { back_edge : int * int
  ; header : int  (** block id *)
  ; members : bool array  (** per-block membership *)
  ; exits : int list  (** in-loop blocks with an out-edge *)
  ; trips : int option
        (** proven number of body executions for every entry; [Some 0]
            means the loop provably never runs *)
  }

val loops : Analysis.t -> loop list

val instr_trips : loop list -> Cfg.Flow.t -> int -> int option * int
(** For instruction [i]: the product of proven trip counts of enclosing
    loops (None when [i] is in no proven loop) and the number of
    enclosing loops with no proven count. *)

val weight_provider : Analysis.t -> int -> float
(** Estimated dynamic execution frequency of instruction [i]: the
    product of proven trip counts of enclosing loops (each clamped to at
    least 1), times the [10^depth] heuristic for enclosing loops whose
    count could not be proven (capped at [10^4] combined, matching the
    historical {!Cfg.Defuse} weight). Reduces exactly to the heuristic
    when nothing is provable. *)
