(* Abstract domains: intervals (saturating native ints with
   min_int/max_int as the infinities), affine forms in tid/ctaid over
   the 2^64 ring, and a uniformity bit. *)

module Itv = struct
  type t =
    { lo : int
    ; hi : int
    }

  let ninf = min_int
  let pinf = max_int
  let top = { lo = ninf; hi = pinf }
  let is_top t = t.lo = ninf && t.hi = pinf
  let const n = { lo = n; hi = n }

  let range lo hi =
    if lo > hi then invalid_arg "Itv.range";
    { lo; hi }

  let is_fin x = x <> ninf && x <> pinf

  let singleton t = if t.lo = t.hi && is_fin t.lo then Some t.lo else None

  let contains t (x : int64) =
    (t.lo = ninf || Int64.compare (Int64.of_int t.lo) x <= 0)
    && (t.hi = pinf || Int64.compare x (Int64.of_int t.hi) <= 0)

  let subset a b = a.lo >= b.lo && a.hi <= b.hi
  let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

  let widen old next =
    { lo = (if next.lo < old.lo then ninf else old.lo)
    ; hi = (if next.hi > old.hi then pinf else old.hi)
    }

  (* standard interval narrowing: only refine infinite bounds *)
  let narrow old refined =
    { lo = (if old.lo = ninf then refined.lo else old.lo)
    ; hi = (if old.hi = pinf then refined.hi else old.hi)
    }

  let equal a b = a.lo = b.lo && a.hi = b.hi

  (* saturating bound arithmetic *)
  let sat_add a b =
    if a = ninf || b = ninf then ninf
    else if a = pinf || b = pinf then pinf
    else
      let s = a + b in
      if a > 0 && b > 0 && s < 0 then pinf
      else if a < 0 && b < 0 && s >= 0 then ninf
      else s

  let sat_neg a = if a = ninf then pinf else if a = pinf then ninf else -a

  let sat_mul a b =
    if a = 0 || b = 0 then 0
    else if not (is_fin a && is_fin b) then
      if a < 0 <> (b < 0) then ninf else pinf
    else
      let p = a * b in
      if p / b <> a then if a < 0 <> (b < 0) then ninf else pinf else p

  let add a b = { lo = sat_add a.lo b.lo; hi = sat_add a.hi b.hi }
  let neg a = { lo = sat_neg a.hi; hi = sat_neg a.lo }
  let sub a b = add a (neg b)

  let mul a b =
    let c1 = sat_mul a.lo b.lo
    and c2 = sat_mul a.lo b.hi
    and c3 = sat_mul a.hi b.lo
    and c4 = sat_mul a.hi b.hi in
    { lo = min (min c1 c2) (min c3 c4); hi = max (max c1 c2) (max c3 c4) }

  let magnitude a =
    if not (is_fin a.lo && is_fin a.hi) then pinf else max (abs a.lo) (abs a.hi)

  (* truncated division; x/0 = 0 in the Value semantics *)
  let div a b =
    match singleton b with
    | Some c when c <> 0 && is_fin a.lo && is_fin a.hi ->
      let q1 = a.lo / c and q2 = a.hi / c in
      { lo = min q1 q2; hi = max q1 q2 }
    | _ ->
      let m = magnitude a in
      { lo = sat_neg m; hi = m }

  (* truncated remainder: sign follows the dividend; x rem 0 = 0 *)
  let rem a b =
    let m =
      let mb = magnitude b in
      let bound = if mb = pinf then pinf else max 0 (mb - 1) in
      min (magnitude a) bound
    in
    { lo = (if a.lo < 0 then sat_neg m else 0); hi = (if a.hi > 0 then m else 0) }

  let min_ a b = { lo = min a.lo b.lo; hi = min a.hi b.hi }
  let max_ a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }

  let abs_ a =
    if a.lo >= 0 then a
    else if a.hi <= 0 then neg a
    else { lo = 0; hi = max (sat_neg a.lo) a.hi }

  (* lognot x = -x - 1 exactly *)
  let lognot a = sub (const (-1)) a

  let logand a b =
    if a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = min a.hi b.hi } else top

  (* smallest 2^k - 1 >= n *)
  let up_mask n =
    if n = pinf then pinf
    else begin
      let m = ref 1 in
      while !m - 1 < n && !m > 0 do
        m := !m lsl 1
      done;
      if !m <= 0 then pinf else !m - 1
    end

  let logor a b =
    if a.lo >= 0 && b.lo >= 0 then
      { lo = max a.lo b.lo; hi = up_mask (max a.hi b.hi) }
    else top

  let logxor a b =
    if a.lo >= 0 && b.lo >= 0 then { lo = 0; hi = up_mask (max a.hi b.hi) }
    else top

  let shl a b =
    if b.lo >= 0 && b.hi <= 61 then
      mul a { lo = 1 lsl b.lo; hi = 1 lsl b.hi }
    else top

  (* arithmetic shift; sound for the value semantics only when the
     operand is known non-negative or the type is signed *)
  let shr ~signed a b =
    if b.lo < 0 || b.hi > 63 then top
    else if (not signed) && a.lo < 0 then top
    else begin
      let sh x s = if is_fin x then x asr s else x in
      let c1 = sh a.lo b.lo
      and c2 = sh a.lo b.hi
      and c3 = sh a.hi b.lo
      and c4 = sh a.hi b.hi in
      { lo = min (min c1 c2) (min c3 c4); hi = max (max c1 c2) (max c3 c4) }
    end

  let pp fmt t =
    let b fmt x =
      if x = ninf then Format.pp_print_string fmt "-oo"
      else if x = pinf then Format.pp_print_string fmt "+oo"
      else Format.pp_print_int fmt x
    in
    Format.fprintf fmt "[%a,%a]" b t.lo b t.hi
end

type base =
  | Sym of string
  | Param of string

type aff =
  { sym : base option
  ; tid : int
  ; cta : int
  ; base : int
  ; exact : bool
  }

let aff_opaque = { sym = None; tid = 0; cta = 0; base = 0; exact = false }

(* Coefficients are kept well inside the native-int range so that form
   arithmetic (performed below with an explicit overflow check) can
   never wrap silently; a form whose coefficients would escape the cap
   degrades to opaque instead of lying. *)
let aff_cap = 1 lsl 40
let aff_fits n = n >= -aff_cap && n <= aff_cap

let aff_norm f =
  if (not f.exact) || (aff_fits f.tid && aff_fits f.cta && aff_fits f.base)
  then f
  else aff_opaque

let aff_const n =
  if aff_fits n then { sym = None; tid = 0; cta = 0; base = n; exact = true }
  else aff_opaque

let aff_sym s = { sym = Some s; tid = 0; cta = 0; base = 0; exact = true }
let aff_tid = { sym = None; tid = 1; cta = 0; base = 0; exact = true }
let aff_ctaid = { sym = None; tid = 0; cta = 1; base = 0; exact = true }

let aff_equal a b =
  a.exact && b.exact && a.sym = b.sym && a.tid = b.tid && a.cta = b.cta
  && a.base = b.base

let aff_join a b = if aff_equal a b then a else aff_opaque

let aff_add a b =
  if not (a.exact && b.exact) then aff_opaque
  else
    match (a.sym, b.sym) with
    | Some _, Some _ -> aff_opaque
    | s, None | None, s ->
      aff_norm
        { sym = s
        ; tid = a.tid + b.tid
        ; cta = a.cta + b.cta
        ; base = a.base + b.base
        ; exact = true
        }

let aff_sub a b =
  if not (a.exact && b.exact) || b.sym <> None then aff_opaque
  else
    aff_norm
      { a with
        tid = a.tid - b.tid
      ; cta = a.cta - b.cta
      ; base = a.base - b.base
      }

(* multiply with an Int64 intermediate: capped inputs times capped
   inputs can overflow a native int, so check before narrowing back *)
let mul_chk a b =
  let p = Int64.mul (Int64.of_int a) (Int64.of_int b) in
  if
    Int64.compare p (Int64.of_int aff_cap) <= 0
    && Int64.compare (Int64.of_int (-aff_cap)) p <= 0
  then Some (Int64.to_int p)
  else None

let aff_scale a c =
  if not a.exact || a.sym <> None then aff_opaque
  else
    match (mul_chk a.tid c, mul_chk a.cta c, mul_chk a.base c) with
    | Some tid, Some cta, Some base -> { a with tid; cta; base }
    | _ -> aff_opaque

let aff_mul a b =
  if not (a.exact && b.exact) then aff_opaque
  else if a.sym = None && a.tid = 0 && a.cta = 0 then aff_scale b a.base
  else if b.sym = None && b.tid = 0 && b.cta = 0 then aff_scale a b.base
  else aff_opaque

let decl_sym f =
  match f.sym with
  | Some (Sym s) when f.exact -> Some s
  | _ -> None

type v =
  { itv : Itv.t
  ; aff : aff
  ; uni : bool
  }

let top = { itv = Itv.top; aff = aff_opaque; uni = false }
let top_uniform = { top with uni = true }
let const n = { itv = Itv.const n; aff = aff_const n; uni = true }

let join a b =
  { itv = Itv.join a.itv b.itv; aff = aff_join a.aff b.aff; uni = a.uni && b.uni }

let widen a b =
  { itv = Itv.widen a.itv b.itv; aff = aff_join a.aff b.aff; uni = a.uni && b.uni }

let narrow a b =
  { itv = Itv.narrow a.itv b.itv; aff = a.aff; uni = a.uni }

let equal a b =
  Itv.equal a.itv b.itv
  && a.aff = b.aff
  && a.uni = b.uni

let pp fmt v =
  Format.fprintf fmt "%a%s%s" Itv.pp v.itv
    (if v.aff.exact then
       Printf.sprintf " aff(%s%d*tid+%d*cta+%d)"
         (match v.aff.sym with
          | Some (Sym s) -> s ^ "+"
          | Some (Param p) -> "param:" ^ p ^ "+"
          | None -> "")
         v.aff.tid v.aff.cta v.aff.base
     else "")
    (if v.uni then " uni" else "")

let type_range (ty : Ptx.Types.scalar) =
  match ty with
  | Ptx.Types.Pred -> Itv.range 0 1
  | Ptx.Types.B8 -> Itv.range 0 255
  | Ptx.Types.U16 | Ptx.Types.B16 -> Itv.range 0 65535
  | Ptx.Types.S16 -> Itv.range (-32768) 32767
  | Ptx.Types.U32 | Ptx.Types.B32 -> Itv.range 0 0xFFFFFFFF
  | Ptx.Types.S32 -> Itv.range (-0x80000000) 0x7FFFFFFF
  | Ptx.Types.U64 | Ptx.Types.S64 | Ptx.Types.B64 | Ptx.Types.F32
  | Ptx.Types.F64 ->
    Itv.top

let truncate ty v =
  let rng = type_range ty in
  match ty with
  | Ptx.Types.U64 | Ptx.Types.S64 | Ptx.Types.B64 ->
    (* a 64-bit truncation is the identity on bits; the affine form is
       already mod-2^64, so it survives a potential wrap. Saturated
       interval bounds stand for the infinities and stay sound. *)
    v
  | Ptx.Types.F32 | Ptx.Types.F64 -> { v with itv = Itv.top; aff = aff_opaque }
  | _ ->
    if Itv.subset v.itv rng then v
    else { v with itv = rng; aff = aff_opaque }
