(** Abstract interpretation over a {!Cfg.Flow} CFG.

    A forward worklist fixpoint over the {!Dom} product domain
    (interval x affine-in-tid/ctaid x uniformity), with widening at the
    natural-loop headers followed by a bounded narrowing pass, and a
    block-divergence feedback loop through post-dominator control
    dependence (a definition in a divergently-executed block is never
    uniform). Per-instruction entry states are retained for queries. *)

type state = Dom.v Ptx.Reg.Map.t
(** Abstract register file; a register absent from the map is top. *)

type t

val run :
  ?block_size:int ->
  ?num_blocks:int ->
  ?warp_size:int ->
  ?params:(string * int64) list ->
  Cfg.Flow.t ->
  t
(** [block_size] defaults to 128 and bounds [%tid.x]; [num_blocks]
    bounds [%ctaid.x] when known; [params] gives concrete values of
    kernel parameters when analysing a specific launch. *)

val flow : t -> Cfg.Flow.t
val block_size : t -> int

val num_blocks : t -> int option
(** The grid size the analysis was specialised to, when known. *)

val in_state : t -> int -> state
(** Abstract state on entry to instruction [i]. *)

val out_state : t -> int -> state
(** Abstract state on exit of block [b]. *)

val value_at : t -> int -> Ptx.Reg.t -> Dom.v
(** Abstract value of register [r] as observed by instruction [i]. *)

val operand_at : t -> int -> Ptx.Instr.operand -> Dom.v
val address_at : t -> int -> Ptx.Instr.address -> Dom.v

val divergent_block : t -> int -> bool
(** May block [b] execute with a partially-active warp? *)

val eval_operand : t -> state -> Ptx.Instr.operand -> Dom.v
(** Evaluate an operand under an explicit state (used by derived
    analyses that simulate along a path). *)
