open Ptx

type mem_class =
  | Coalesced of int
  | Strided of int * int
  | Scattered

type mem =
  { pc : int
  ; space : Types.space
  ; width : int
  ; store : bool
  ; addr : Dom.v
  ; cls : mem_class
  ; seg_bound : int option
  ; bank_bound : int option
  ; divergent : bool
  ; depth : int
  }

type branch =
  { bpc : int
  ; uniform : bool
  ; bdepth : int
  }

type t =
  { mems : mem list
  ; branches : branch list
  }

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* distinct L1 lines touched by W lane addresses in arithmetic
   progression of byte stride s, worst-case base alignment *)
let seg_bound_of_stride ~warp ~line s =
  let s = abs s in
  let span = (warp - 1) * s in
  min warp (((span + line - 1) / line) + 1)

let sym_space (k : Kernel.t) s =
  List.find_map
    (fun d -> if d.Kernel.dname = s then Some d.Kernel.dspace else None)
    k.Kernel.decls

let classify_global ~warp ~line (k : Kernel.t) (addr : Dom.v) =
  let a = addr.Dom.aff in
  let sym_ok =
    match a.Dom.sym with
    | None | Some (Dom.Param _) -> true
    | Some (Dom.Sym s) -> sym_space k s = Some Types.Global
  in
  if a.Dom.exact && sym_ok then begin
    let b = seg_bound_of_stride ~warp ~line a.Dom.tid in
    if b <= 2 then (Coalesced b, Some b) else (Strided (a.Dom.tid, b), Some b)
  end
  else (Scattered, None)

(* local memory is interleaved by the loader (Image.remap_local): a
   per-thread frame slot that is constant across the warp becomes a
   stride-4 access after remapping *)
let classify_local (k : Kernel.t) (addr : Dom.v) ~warp ~line =
  let a = addr.Dom.aff in
  match a.Dom.sym with
  | Some (Dom.Sym s)
    when a.Dom.exact && a.Dom.tid = 0 && a.Dom.cta = 0
         && sym_space k s = Some Types.Local ->
    let b = seg_bound_of_stride ~warp ~line 4 in
    (Coalesced b, Some b)
  | _ -> (Scattered, None)

let bank_bound ~warp ~banks (k : Kernel.t) (addr : Dom.v) =
  let a = addr.Dom.aff in
  let sym_ok =
    match a.Dom.sym with
    | None -> true
    | Some (Dom.Sym s) -> sym_space k s = Some Types.Shared
    | Some (Dom.Param _) -> false
  in
  if a.Dom.exact && sym_ok && a.Dom.tid mod 4 = 0 then begin
    let sw = a.Dom.tid / 4 in
    if sw = 0 then Some 1
    else
      let g = gcd (abs sw) banks in
      Some (min warp (((warp * g) + banks - 1) / banks))
  end
  else None

let collect ?(warp_size = 32) ?(line = 128) ?(banks = 32) an =
  let flow = Analysis.flow an in
  let k = flow.Cfg.Flow.kernel in
  let depths = Cfg.Loops.instr_depths flow in
  let mems = ref [] and branches = ref [] in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    let record space ty addr ~store =
      let av = Analysis.address_at an i addr in
      let cls, seg_bound, bank_bound_ =
        match space with
        | Types.Global ->
          let c, b = classify_global ~warp:warp_size ~line k av in
          (c, b, None)
        | Types.Local ->
          let c, b = classify_local k av ~warp:warp_size ~line in
          (c, b, None)
        | Types.Shared ->
          let bb = bank_bound ~warp:warp_size ~banks k av in
          let c =
            match bb with
            | Some d when d <= 1 -> Coalesced 1
            | _ -> if av.Dom.aff.Dom.exact then Strided (av.Dom.aff.Dom.tid, warp_size) else Scattered
          in
          (c, None, bb)
        | _ -> (Scattered, None, None)
      in
      mems :=
        { pc = i
        ; space
        ; width = Types.width_bytes ty
        ; store
        ; addr = av
        ; cls
        ; seg_bound
        ; bank_bound = bank_bound_
        ; divergent = Analysis.divergent_block an flow.Cfg.Flow.block_of_instr.(i)
        ; depth = depths.(i)
        }
        :: !mems
    in
    match ins with
    | Instr.Ld (((Types.Global | Types.Local | Types.Shared) as sp), ty, _, addr)
      ->
      record sp ty addr ~store:false
    | Instr.St (((Types.Global | Types.Local | Types.Shared) as sp), ty, addr, _)
      ->
      record sp ty addr ~store:true
    | Instr.Bra_pred (p, _, _) ->
      branches :=
        { bpc = i
        ; uniform = (Analysis.value_at an i p).Dom.uni
        ; bdepth = depths.(i)
        }
        :: !branches
    | _ -> ());
  { mems = List.rev !mems; branches = List.rev !branches }
