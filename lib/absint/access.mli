(** Per-access memory classification and branch uniformity.

    The segment bound mirrors {!Gpusim.Sm.coalesce} (distinct L1-line
    indices over the warp's lane base addresses); the bank-conflict
    degree mirrors {!Gpusim.Sm.bank_conflict_degree} (max distinct
    4-byte words mapping to one bank). Every bound is a worst-case over
    base alignment, so a dynamic counter can never exceed it. *)

type mem_class =
  | Coalesced of int
      (** proven: at most [n] L1-line segments per warp access *)
  | Strided of int * int  (** exact per-lane byte stride, segment bound *)
  | Scattered  (** no proof; up to one segment per active lane *)

type mem =
  { pc : int
  ; space : Ptx.Types.space
  ; width : int
  ; store : bool
  ; addr : Dom.v  (** abstract address *)
  ; cls : mem_class
  ; seg_bound : int option
        (** proven max segments (global/local); [None] = no claim *)
  ; bank_bound : int option
        (** proven max bank-conflict degree (shared); [None] = no claim *)
  ; divergent : bool  (** access sits in a possibly-divergent block *)
  ; depth : int  (** loop-nesting depth *)
  }

type branch =
  { bpc : int
  ; uniform : bool  (** proven: the warp never splits at this branch *)
  ; bdepth : int
  }

type t =
  { mems : mem list
  ; branches : branch list
  }

val collect : ?warp_size:int -> ?line:int -> ?banks:int -> Analysis.t -> t
(** Defaults match {!Gpusim.Config.fermi}: warp 32, 128-byte L1 lines,
    32 shared-memory banks. *)
