module RSet = Ptx.Reg.Set
module RMap = Ptx.Reg.Map

type result =
  { assignment : int RMap.t
  ; spilled : Ptx.Reg.t list
  ; colors_used : int
  ; type_waste : int
  }

let color ?(type_strict = true) ?(member = fun _ -> true) ~graph ~cls ~k
    ~spill_cost () =
  let nodes = List.filter member (Interference.nodes_of_class graph cls) in
  let node_set = RSet.of_list nodes in
  (* degrees restricted to the remaining subgraph *)
  let remaining = ref node_set in
  let deg = Ptx.Reg.Tbl.create 64 in
  List.iter
    (fun r ->
       let d =
         RSet.cardinal (RSet.inter (Interference.neighbors graph r) node_set)
       in
       Ptx.Reg.Tbl.replace deg r d)
    nodes;
  let stack = ref [] in
  let remove r =
    remaining := RSet.remove r !remaining;
    RSet.iter
      (fun n ->
         if RSet.mem n !remaining then
           Ptx.Reg.Tbl.replace deg n (Ptx.Reg.Tbl.find deg n - 1))
      (Interference.neighbors graph r);
    stack := r :: !stack
  in
  (* simplify: low-degree nodes first; otherwise a cheap potential spill *)
  while not (RSet.is_empty !remaining) do
    let low =
      RSet.fold
        (fun r acc ->
           match acc with
           | Some _ -> acc
           | None -> if Ptx.Reg.Tbl.find deg r < k then Some r else None)
        !remaining None
    in
    match low with
    | Some r -> remove r
    | None ->
      let candidate =
        RSet.fold
          (fun r acc ->
             let c = spill_cost r in
             if c = infinity then acc
             else
               let d = float_of_int (max 1 (Ptx.Reg.Tbl.find deg r)) in
               let metric = c /. d in
               match acc with
               | Some (_, best) when best <= metric -> acc
               | Some _ | None -> Some (r, metric))
          !remaining None
      in
      (match candidate with
       | Some (r, _) -> remove r
       | None ->
         failwith
           (Printf.sprintf
              "Coloring: cannot colour class with k=%d; all remaining nodes \
               unspillable"
              k))
  done;
  (* select, optimistically *)
  let assignment = ref RMap.empty in
  let spilled = ref [] in
  let color_ty : (int, Ptx.Types.scalar) Hashtbl.t = Hashtbl.create 16 in
  let colors_used = ref 0 in
  let type_waste = ref 0 in
  List.iter
    (fun r ->
       let used =
         RSet.fold
           (fun n acc ->
              match RMap.find_opt n !assignment with
              | Some c -> c :: acc
              | None -> acc)
           (Interference.neighbors graph r)
           []
       in
       let ty = Ptx.Reg.ty r in
       let free c = not (List.mem c used) in
       let binding_matches c =
         match Hashtbl.find_opt color_ty c with
         | Some t -> Ptx.Types.equal_scalar t ty
         | None -> false
       in
       let unbound c = not (Hashtbl.mem color_ty c) in
       let find pred =
         let rec loop c = if c >= k then None else if free c && pred c then Some c else loop (c + 1) in
         loop 0
       in
       let choice =
         if type_strict then
           (* prefer a colour of our own type, then a fresh one; reuse a
              differently-typed colour only as a last resort (the paper's
              "register waste" shows up as extra colours used) *)
           match find binding_matches with
           | Some c -> Some c
           | None ->
             (match find unbound with
              | Some c -> Some c
              | None ->
                (match find (fun _ -> true) with
                 | Some c ->
                   incr type_waste;
                   Some c
                 | None -> None))
         else find (fun _ -> true)
       in
       match choice with
       | Some c ->
         assignment := RMap.add r c !assignment;
         Hashtbl.replace color_ty c ty;
         colors_used := max !colors_used (c + 1)
       | None ->
         if spill_cost r = infinity then
           failwith "Coloring: unspillable node could not be coloured"
         else spilled := r :: !spilled)
    !stack;
  { assignment = !assignment
  ; spilled = List.rev !spilled
  ; colors_used = !colors_used
  ; type_waste = !type_waste
  }
