(** Linear-scan register allocation (Poletto & Sarkar) over conservative
    live intervals. Used as the independent reference allocator for the
    spill-volume validation experiment (paper Figure 12): two different
    algorithms should agree on spill bytes except near tight limits. *)

val color :
  ?member:(Ptx.Reg.t -> bool)
  -> flow:Cfg.Flow.t
  -> live:Cfg.Liveness.t
  -> cls:Ptx.Types.reg_class
  -> k:int
  -> spill_cost:(Ptx.Reg.t -> float)
  -> unit
  -> Coloring.result
(** Same contract as {!Coloring.color}, including the [member]
    partition filter: registers mapped to colours [0..k-1], overflow
    spilled (never an unspillable register, i.e. one whose cost is
    [infinity]). *)
