(** Chaitin-Briggs graph colouring with optimistic spilling for one
    register class.

    Briggs' refinement: a node of high degree is pushed as a *potential*
    spill and only becomes an *actual* spill if, at select time, all [k]
    colours are taken by coloured neighbours.

    PTX type-strictness (paper Section 5.2): the paper's allocator
    prefers not to reuse a physical register for a variable of a
    different scalar type, which wastes registers relative to nvcc.
    With [~type_strict:true] (the default, matching CRAT) a node picks,
    in order: a free colour already bound to its type, a free unbound
    colour, and only then — counted in [type_waste] — a free colour of
    another type. Strictness therefore inflates [colors_used] (the
    paper's register waste) but never causes extra spills. *)

type result =
  { assignment : int Ptx.Reg.Map.t  (** register -> colour (physical id) *)
  ; spilled : Ptx.Reg.t list  (** actual spills, in selection order *)
  ; colors_used : int
  ; type_waste : int
      (** cross-type colour reuses that the paper's allocator would have
          preferred to avoid *)
  }

val color :
  ?type_strict:bool
  -> ?member:(Ptx.Reg.t -> bool)
  -> graph:Interference.t
  -> cls:Ptx.Types.reg_class
  -> k:int
  -> spill_cost:(Ptx.Reg.t -> float)
  -> unit
  -> result
(** Colour the subgraph of class [cls] with at most [k] colours.
    [member] (default: everything) restricts the node set further than
    the class alone — the backend-parametric allocator colours the
    vector and scalar partitions of one class as two independent
    subproblems against separate budgets. Nodes outside the subproblem
    never constrain a colour (colours are per register file).
    [spill_cost r = infinity] marks [r] unspillable (spill infrastructure
    registers); unspillable nodes are never chosen as spill candidates.
    @raise Failure if colouring is impossible because every uncoloured
    node is unspillable. *)
