type placement =
  { reg : Ptx.Reg.t
  ; space : Ptx.Types.space
  ; offset : int
  }

type spec =
  { placements : placement list
  ; local_bytes : int
  ; shared_bytes_per_thread : int
  ; remat : (Ptx.Reg.t * Ptx.Instr.operand) list
  }

let align_up x a = (x + a - 1) / a * a

let layout ?(remat = fun _ -> None) ~to_shared regs =
  let remats, regs =
    List.partition_map
      (fun r ->
         match remat r with
         | Some op -> Either.Left (r, op)
         | None -> Either.Right r)
      regs
  in
  let shared_regs, local_regs = List.partition to_shared regs in
  let width r = Ptx.Types.width_bytes (Ptx.Reg.ty r) in
  let by_width rs =
    List.sort (fun a b -> compare (width b, Ptx.Reg.id a) (width a, Ptx.Reg.id b)) rs
  in
  let assign space rs =
    let off = ref 0 in
    let ps =
      List.map
        (fun r ->
           let w = width r in
           let o = align_up !off w in
           off := o + w;
           { reg = r; space; offset = o })
        (by_width rs)
    in
    (ps, align_up !off 8)
  in
  let local_ps, local_bytes = assign Ptx.Types.Local local_regs in
  let shared_ps, shared_bytes = assign Ptx.Types.Shared shared_regs in
  (* pad the per-thread shared stride to an odd word count so that
     consecutive threads' slots fall into different banks (the classic
     shared-memory padding trick; without it a stride that is a multiple
     of the bank count serialises the whole warp) *)
  let shared_bytes =
    if shared_bytes > 0 && shared_bytes / 4 mod 2 = 0 then shared_bytes + 4
    else shared_bytes
  in
  { placements = local_ps @ shared_ps
  ; local_bytes
  ; shared_bytes_per_thread = shared_bytes
  ; remat = remats
  }

type stats =
  { num_local : int
  ; num_shared : int
  ; num_other : int
  ; num_remat : int
  }

let local_stack_sym = "SpillStack"
let shared_stack_sym = "SpillShm"

(* Recover the per-thread byte stride of the shared spill sub-stacks
   from an allocated kernel: the decl was emitted as
   [bytes_per_thread * block_size] B8 elements. *)
let shared_stride_of_kernel ~block_size (k : Ptx.Kernel.t) =
  if block_size <= 0 then None
  else
    List.find_map
      (fun (d : Ptx.Kernel.decl) ->
         if
           d.Ptx.Kernel.dname = shared_stack_sym
           && d.Ptx.Kernel.dspace = Ptx.Types.Shared
         then begin
           let bytes = Ptx.Kernel.decl_bytes d in
           if bytes mod block_size = 0 && bytes / block_size > 0 then
             Some (shared_stack_sym, bytes / block_size)
           else None
         end
         else None)
      k.Ptx.Kernel.decls

let apply ~block_size (k : Ptx.Kernel.t) (spec : spec) =
  let placements = spec.placements in
  if placements = [] && spec.remat = [] then
    (k, { num_local = 0; num_shared = 0; num_other = 0; num_remat = 0 })
  else begin
    let find r =
      List.find_opt (fun p -> Ptx.Reg.equal p.reg r) placements
    in
    let next = ref (Ptx.Kernel.fresh_reg_base k) in
    let fresh ty =
      let r = Ptx.Reg.make !next ty in
      incr next;
      r
    in
    let has_local = List.exists (fun p -> p.space = Ptx.Types.Local) placements in
    let has_shared = List.exists (fun p -> p.space = Ptx.Types.Shared) placements in
    let n_local = ref 0 and n_shared = ref 0 and n_other = ref 0 in
    let n_remat = ref 0 in
    let remat_of r =
      List.find_opt (fun (r', _) -> Ptx.Reg.equal r r') spec.remat
    in
    (* entry setup: materialise base addresses *)
    let base_local = if has_local then Some (fresh Ptx.Types.U64) else None in
    let base_shared = if has_shared then Some (fresh Ptx.Types.U64) else None in
    let setup = ref [] in
    let emit_setup i =
      incr n_other;
      setup := Ptx.Kernel.I i :: !setup
    in
    (match base_local with
     | Some d ->
       emit_setup (Ptx.Instr.Mov (Ptx.Types.U64, d, Ptx.Instr.Osym local_stack_sym))
     | None -> ());
    (match base_shared with
     | Some d ->
       let tid = fresh Ptx.Types.U32 in
       emit_setup (Ptx.Instr.Mov (Ptx.Types.U32, tid, Ptx.Instr.Ospecial Ptx.Reg.Tid_x));
       let off32 = fresh Ptx.Types.U32 in
       emit_setup
         (Ptx.Instr.Binop
            ( Ptx.Instr.Mul_lo, Ptx.Types.U32, off32, Ptx.Instr.Oreg tid
            , Ptx.Instr.Oimm (Int64.of_int spec.shared_bytes_per_thread) ));
       let off64 = fresh Ptx.Types.U64 in
       emit_setup (Ptx.Instr.Cvt (Ptx.Types.U64, Ptx.Types.U32, off64, Ptx.Instr.Oreg off32));
       let base = fresh Ptx.Types.U64 in
       emit_setup (Ptx.Instr.Mov (Ptx.Types.U64, base, Ptx.Instr.Osym shared_stack_sym));
       emit_setup
         (Ptx.Instr.Binop
            (Ptx.Instr.Add, Ptx.Types.U64, d, Ptx.Instr.Oreg base, Ptx.Instr.Oreg off64))
     | None -> ());
    let addr_of p =
      let base =
        match p.space with
        | Ptx.Types.Local -> Option.get base_local
        | Ptx.Types.Shared -> Option.get base_shared
        | Ptx.Types.Reg | Ptx.Types.Global | Ptx.Types.Param | Ptx.Types.Const ->
          invalid_arg "Spill: placement space must be local or shared"
      in
      { Ptx.Instr.base = Ptx.Instr.Oreg base; offset = p.offset }
    in
    let count_access p =
      match p.space with
      | Ptx.Types.Local -> incr n_local
      | Ptx.Types.Shared -> incr n_shared
      | Ptx.Types.Reg | Ptx.Types.Global | Ptx.Types.Param | Ptx.Types.Const -> ()
    in
    let rewrite_instr ins =
      (* a rematerialised register's (unique) defining instruction is
         dropped entirely: its value is recomputed at each use *)
      let defs0 = Ptx.Instr.defs ins in
      if List.exists (fun r -> remat_of r <> None) defs0 then []
      else begin
      let uses = Ptx.Instr.uses ins in
      let remat_uses =
        List.sort_uniq Ptx.Reg.compare
          (List.filter (fun r -> remat_of r <> None) uses)
      in
      let remat_loads, remat_map =
        List.fold_left
          (fun (ls, m) r ->
             let _, op = Option.get (remat_of r) in
             let tmp = fresh (Ptx.Reg.ty r) in
             incr n_remat;
             ( Ptx.Kernel.I (Ptx.Instr.Mov (Ptx.Reg.ty r, tmp, op)) :: ls
             , Ptx.Reg.Map.add r tmp m ))
          ([], Ptx.Reg.Map.empty) remat_uses
      in
      let spilled_uses =
        List.sort_uniq Ptx.Reg.compare (List.filter_map (fun r ->
          match find r with
          | Some _ -> Some r
          | None -> None)
          uses)
      in
      let loads, use_map =
        List.fold_left
          (fun (ls, m) r ->
             let p = Option.get (find r) in
             let tmp = fresh (Ptx.Reg.ty r) in
             count_access p;
             ( Ptx.Kernel.I (Ptx.Instr.Ld (p.space, Ptx.Reg.ty r, tmp, addr_of p)) :: ls
             , Ptx.Reg.Map.add r tmp m ))
          ([], Ptx.Reg.Map.empty) spilled_uses
      in
      let defs = Ptx.Instr.defs ins in
      let stores, def_map =
        List.fold_left
          (fun (ss, m) r ->
             match find r with
             | None -> (ss, m)
             | Some p ->
               let tmp = fresh (Ptx.Reg.ty r) in
               count_access p;
               ( Ptx.Kernel.I
                   (Ptx.Instr.St (p.space, Ptx.Reg.ty r, addr_of p, Ptx.Instr.Oreg tmp))
                 :: ss
               , Ptx.Reg.Map.add r tmp m ))
          ([], Ptx.Reg.Map.empty) defs
      in
      (* rewrite the def position first (it may coincide with a use, e.g. a
         loop induction register), then the remaining use occurrences *)
      let ins' =
        Ptx.Instr.map_def
          (fun r ->
             match Ptx.Reg.Map.find_opt r def_map with
             | Some t -> t
             | None -> r)
          ins
      in
      let ins'' =
        Ptx.Instr.map_regs
          (fun r ->
             match Ptx.Reg.Map.find_opt r use_map with
             | Some t -> t
             | None ->
               (match Ptx.Reg.Map.find_opt r remat_map with
                | Some t -> t
                | None -> r))
          ins'
      in
      List.rev remat_loads @ List.rev loads
      @ [ Ptx.Kernel.I ins'' ]
      @ List.rev stores
      end
    in
    let body =
      Array.to_list k.body
      |> List.concat_map (function
        | Ptx.Kernel.L l -> [ Ptx.Kernel.L l ]
        | Ptx.Kernel.I i -> rewrite_instr i)
    in
    let decls = ref k.decls in
    if has_local then
      decls :=
        !decls
        @ [ { Ptx.Kernel.dname = local_stack_sym
            ; dspace = Ptx.Types.Local
            ; delem = Ptx.Types.B8
            ; dcount = spec.local_bytes
            ; dalign = 8
            } ];
    if has_shared then
      decls :=
        !decls
        @ [ { Ptx.Kernel.dname = shared_stack_sym
            ; dspace = Ptx.Types.Shared
            ; delem = Ptx.Types.B8
            ; dcount = spec.shared_bytes_per_thread * block_size
            ; dalign = 8
            } ];
    let k' =
      { k with
        Ptx.Kernel.decls = !decls
      ; body = Array.of_list (List.rev !setup @ body)
      }
    in
    (match Ptx.Kernel.validate k' with
     | Ok () -> ()
     | Error msg -> invalid_arg ("Spill.apply produced invalid kernel: " ^ msg));
    ( k'
    , { num_local = !n_local
      ; num_shared = !n_shared
      ; num_other = !n_other
      ; num_remat = !n_remat
      } )
  end

let infra_registers orig spilled =
  let o = Ptx.Kernel.registers orig in
  Ptx.Reg.Set.diff (Ptx.Kernel.registers spilled) o
