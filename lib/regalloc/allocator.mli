(** Top-level register allocator: the paper's "register allocation"
    component (Figure 9). Given a per-thread register limit, it performs
    live-range analysis, builds the interference graph, colours it
    (Chaitin-Briggs by default), inserts spill code for the overflow, and
    — when a spare-shared-memory budget is supplied — runs the Algorithm 1
    optimization to host profitable sub-stacks in shared memory.

    Spilling follows the classic iterate-to-fixpoint structure: spill code
    introduces short-lived temporaries, so the original kernel is re-spilled
    with the cumulative spill set and re-coloured until colouring
    succeeds. *)

type strategy =
  | Chaitin_briggs
  | Linear_scan

(** Shared-memory spilling policy. [`Spare bytes] gives the spare shared
    memory per thread block that spilling may consume without lowering
    the TLP (computed by the CRAT driver from [ShmSize], TLP and the
    hardware shared-memory size). *)
type shared_policy =
  [ `Off
  | `Spare of int
  | `Spare_inverted of int
      (** ablation: run Algorithm 1 with inverted gains, i.e. prefer the
          *least* beneficial sub-stacks — the paper's Figure 8 "spill the
          high-frequency variable" counter-example *)
  ]

type t =
  { kernel : Ptx.Kernel.t
      (** allocated kernel: physical registers, spill code inserted *)
  ; original : Ptx.Kernel.t
  ; virtual_kernel : Ptx.Kernel.t
      (** the post-spill kernel, still on virtual registers — the input
          of the final colouring, kept so an independent auditor
          (lib/verify) can re-derive live ranges and re-check the
          assignment *)
  ; assignment : Ptx.Reg.t Ptx.Reg.Map.t
      (** virtual register -> physical register, covering every register
          of [virtual_kernel]; [kernel] is exactly [virtual_kernel] under
          this substitution *)
  ; block_size : int  (** the launch block size the spill layout assumed *)
  ; reg_limit : int  (** the requested per-thread limit, in 32-bit units *)
  ; units_used : int
      (** {b vector-file} 32-bit register units actually occupied per
          thread *)
  ; pred_used : int
  ; scalar_limit : int
      (** per-warp scalar-file budget in units; 0 = the scalar file was
          disabled (PTX backend), every value lives in the vector file *)
  ; scalar_units_used : int
      (** scalar-file units occupied per warp *)
  ; scalarized : int
      (** virtual registers placed in the scalar file *)
  ; spilled : Spill.placement list
  ; stats : Spill.stats  (** static inserted-instruction counts *)
  ; weighted_local : float
      (** loop-weighted estimate of dynamic local-memory spill accesses *)
  ; weighted_shared : float
  ; spill_local_bytes : int  (** per-thread local spill stack *)
  ; spill_shared_bytes_per_block : int
  ; rounds : int  (** colouring rounds until fixpoint *)
  }

val scalar_color_base : t -> int
(** First physical id of the scalar file (= [reg_limit]): scalar-file
    colours are offset past the vector budget so the two files never
    share an id within a class. *)

val is_scalar_phys : t -> Ptx.Reg.t -> bool
(** Is this {e physical} (allocated) register in the scalar file? *)

val allocate :
  ?strategy:strategy
  -> ?type_strict:bool
  -> ?shared_policy:shared_policy
  -> ?spill_preference:[ `Cheap_first | `Expensive_first ]
  -> ?shared_chunk:int
  -> ?coalesce:bool
  -> ?remat:bool
  -> ?weight_provider:(Cfg.Flow.t -> int -> float)
  -> ?scalar:(Ptx.Reg.t -> bool)
  -> ?scalar_limit:int
  -> block_size:int
  -> reg_limit:int
  -> Ptx.Kernel.t
  -> t
(** [spill_preference] selects which variables the colouring sacrifices
    first: [`Cheap_first] (default) spills low-access-frequency, long
    live ranges — the paper's var2; [`Expensive_first] inverts the
    heuristic (the paper's Figure 8 var1 counter-example).
    [coalesce] (default false) runs conservative Briggs copy coalescing
    as a pre-pass; [remat] (default false) rematerialises single-def
    constant/built-in moves instead of spilling them. Both are
    extensions over the paper's allocator, measured by the
    [abl-coalesce] ablation benchmark.
    [weight_provider], given the flow graph of the kernel being
    costed, returns per-instruction execution-frequency estimates used
    in place of the [10^depth] heuristic for spill-cost and
    shared-sub-stack gain estimation (Algorithm 1); wire it to
    [Absint.Trip.weight_provider] for trip-count-proven weights.
    [scalar] with [scalar_limit > 0] (units, at least 8) enables the
    split register-class interface of the machine backend: virtual
    registers the predicate classifies (e.g. proven warp-uniform by
    [Machine.Scalarize]) are coloured against the per-warp scalar
    budget instead of the per-thread vector budget, with their physical
    ids offset by [reg_limit] (see {!scalar_color_base}). Predicates
    and registers introduced by spilling always stay vector-side;
    scalar-partition overflow spills like any other register.
    @raise Failure when [reg_limit] is below the feasible minimum (a few
    registers are needed to execute any instruction plus the spill
    infrastructure). *)

val spill_bytes : t -> int
(** Total spill traffic footprint in bytes (sum over placements of the
    spilled width times its static access count) — the Figure 12 metric. *)
