module RMap = Ptx.Reg.Map

type interval =
  { reg : Ptx.Reg.t
  ; start : int
  ; stop : int
  }

let color ?(member = fun _ -> true) ~flow ~live ~cls ~k ~spill_cost () =
  let ranges = Cfg.Liveness.live_ranges flow live in
  let intervals =
    List.filter_map
      (fun (r, (lo, hi)) ->
         if Ptx.Types.reg_class (Ptx.Reg.ty r) = cls && member r then
           Some { reg = r; start = lo; stop = hi }
         else None)
      ranges
    |> List.sort (fun a b -> compare (a.start, a.stop) (b.start, b.stop))
  in
  let free = ref (List.init k (fun i -> i)) in
  let active = ref [] in
  (* active: (interval, colour), sorted by increasing stop *)
  let assignment = ref RMap.empty in
  let spilled = ref [] in
  let colors_used = ref 0 in
  let expire point =
    let expired, still = List.partition (fun (iv, _) -> iv.stop < point) !active in
    List.iter (fun (_, c) -> free := c :: !free) expired;
    active := still
  in
  let insert_active iv c =
    let rec ins = function
      | [] -> [ (iv, c) ]
      | ((iv', _) as hd) :: tl when iv'.stop <= iv.stop -> hd :: ins tl
      | rest -> (iv, c) :: rest
    in
    active := ins !active
  in
  List.iter
    (fun iv ->
       expire iv.start;
       match !free with
       | c :: rest ->
         free := rest;
         assignment := RMap.add iv.reg c !assignment;
         colors_used := max !colors_used (c + 1);
         insert_active iv c
       | [] ->
         (* no free register: evict the furthest-ending spillable active
            interval if that helps (or if the current interval must not
            spill); otherwise spill the current interval *)
         let furthest_active =
           List.rev !active
           |> List.find_opt (fun (a, _) -> spill_cost a.reg < infinity)
         in
         let steal (a, c) =
           spilled := a.reg :: !spilled;
           assignment := RMap.remove a.reg !assignment;
           active := List.filter (fun (x, _) -> not (Ptx.Reg.equal x.reg a.reg)) !active;
           assignment := RMap.add iv.reg c !assignment;
           insert_active iv c
         in
         (match furthest_active with
          | Some ((a, _) as ac) when a.stop > iv.stop || spill_cost iv.reg = infinity ->
            steal ac
          | Some _ | None ->
            if spill_cost iv.reg = infinity then
              failwith "Linear_scan: unspillable interval with no register"
            else spilled := iv.reg :: !spilled))
    intervals;
  { Coloring.assignment = !assignment
  ; spilled = List.rev !spilled
  ; colors_used = !colors_used
  ; type_waste = 0
  }
