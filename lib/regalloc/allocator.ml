module RSet = Ptx.Reg.Set
module RMap = Ptx.Reg.Map

type strategy =
  | Chaitin_briggs
  | Linear_scan

type shared_policy =
  [ `Off
  | `Spare of int
  | `Spare_inverted of int
  ]

type t =
  { kernel : Ptx.Kernel.t
  ; original : Ptx.Kernel.t
  ; virtual_kernel : Ptx.Kernel.t
  ; assignment : Ptx.Reg.t RMap.t
  ; block_size : int
  ; reg_limit : int
  ; units_used : int
  ; pred_used : int
  ; scalar_limit : int
  ; scalar_units_used : int
  ; scalarized : int
  ; spilled : Spill.placement list
  ; stats : Spill.stats
  ; weighted_local : float
  ; weighted_shared : float
  ; spill_local_bytes : int
  ; spill_shared_bytes_per_block : int
  ; rounds : int
  }

let scalar_color_base t = t.reg_limit

let is_scalar_phys t r =
  t.scalar_limit > 0
  && Ptx.Types.reg_class (Ptx.Reg.ty r) <> Ptx.Types.Cpred
  && Ptx.Reg.id r >= t.reg_limit

let max_rounds = 16

(* registers defined exactly once by a constant or built-in-register
   move can be rematerialised instead of spilled *)
let remat_candidates k =
  let defs_count = Ptx.Reg.Tbl.create 64 in
  let sources = Ptx.Reg.Tbl.create 64 in
  List.iter
    (fun ins ->
       List.iter
         (fun r ->
            Ptx.Reg.Tbl.replace defs_count r
              (1 + Option.value ~default:0 (Ptx.Reg.Tbl.find_opt defs_count r)))
         (Ptx.Instr.defs ins);
       match ins with
       | Ptx.Instr.Mov (_, d, ((Ptx.Instr.Oimm _ | Ptx.Instr.Ofimm _ | Ptx.Instr.Ospecial _) as op)) ->
         Ptx.Reg.Tbl.replace sources d op
       | _ -> ())
    (Ptx.Kernel.instrs k);
  fun r ->
    match (Ptx.Reg.Tbl.find_opt defs_count r, Ptx.Reg.Tbl.find_opt sources r) with
    | Some 1, Some op -> Some op
    | _ -> None

let allocate ?(strategy = Chaitin_briggs) ?(type_strict = true)
    ?(shared_policy = `Off) ?(spill_preference = `Cheap_first) ?shared_chunk
    ?(coalesce = false) ?(remat = false) ?weight_provider
    ?(scalar = fun _ -> false) ?(scalar_limit = 0) ~block_size ~reg_limit
    k =
  if scalar_limit < 0 then invalid_arg "Allocator: scalar_limit must be >= 0";
  if scalar_limit > 0 && scalar_limit < 8 then
    invalid_arg "Allocator: a scalar file needs at least 8 units";
  (* optional pre-pass: conservative copy coalescing on the input *)
  let k =
    if not coalesce then k
    else begin
      let flow = Cfg.Flow.of_kernel k in
      let live = Cfg.Liveness.compute flow in
      let graph = Interference.build flow live in
      let k_of = function
        | Ptx.Types.Cpred -> 1024
        | Ptx.Types.C32 -> max 4 (reg_limit - 10)
        | Ptx.Types.C64 -> 5
      in
      let aliases =
        Coalesce.build_aliases ~graph ~flow ~k_of ~protected:Ptx.Reg.Set.empty
      in
      fst (Coalesce.apply k aliases)
    end
  in
  let remat_fn = if remat then remat_candidates k else fun _ -> None in
  let du_weight flow = Option.map (fun wp -> wp flow) weight_provider in
  let orig_flow = Cfg.Flow.of_kernel k in
  let orig_defuse = Cfg.Defuse.compute ?weight:(du_weight orig_flow) orig_flow in
  let weighted_gain r =
    match RMap.find_opt r orig_defuse with
    | Some s -> s.Cfg.Defuse.weighted
    | None -> 0.
  in
  let static_accesses r =
    match RMap.find_opt r orig_defuse with
    | Some s -> s.Cfg.Defuse.n_defs + s.Cfg.Defuse.n_uses
    | None -> 0
  in
  let cumulative = ref RSet.empty in
  let rec round i =
    if i > max_rounds then
      failwith "Allocator: spilling did not reach a fixpoint";
    let spills = RSet.elements !cumulative in
    (* Algorithm 1 decides which sub-stacks move to shared memory; the
       gain of a sub-stack is the number of spill accesses it absorbs. *)
    let to_shared =
      match shared_policy with
      | `Off -> fun _ -> false
      | `Spare bytes ->
        (* with a trip-count-backed weight provider the gain of a
           sub-stack is its estimated dynamic access count, not the
           static occurrence count *)
        let gain =
          match weight_provider with
          | Some _ -> weighted_gain
          | None -> fun r -> float_of_int (static_accesses r)
        in
        let f =
          Shared_spill.optimize ?chunk:shared_chunk ~gain ~block_size
            ~spare_shm_bytes:bytes spills
        in
        (* shared spilling needs an extra 64-bit base register plus
           per-thread address setup; decline it when the absorbed
           traffic would not pay for that infrastructure *)
        let absorbed =
          List.fold_left
            (fun acc r -> if f r then acc + static_accesses r else acc)
            0 spills
        in
        if absorbed < 16 then fun _ -> false else f
      | `Spare_inverted bytes ->
        Shared_spill.optimize ?chunk:shared_chunk
          ~gain:(fun r -> 1. /. (1. +. float_of_int (static_accesses r)))
          ~block_size ~spare_shm_bytes:bytes spills
    in
    let spec = Spill.layout ~remat:remat_fn ~to_shared spills in
    let k', stats = Spill.apply ~block_size k spec in
    let flow = Cfg.Flow.of_kernel k' in
    let live = Cfg.Liveness.compute flow in
    let graph = Interference.build flow live in
    let infra = Spill.infra_registers k k' in
    let defuse' = Cfg.Defuse.compute ?weight:(du_weight flow) flow in
    let cost r =
      if RSet.mem r infra then infinity
      else
        let w =
          match RMap.find_opt r defuse' with
          | Some s -> s.Cfg.Defuse.weighted
          | None -> 0.
        in
        match spill_preference with
        | `Cheap_first -> w
        | `Expensive_first -> 1. /. (1. +. w)
    in
    (* the scalar partition: caller-classified registers move to the
       per-warp scalar file, colouring against [scalar_limit] instead of
       [reg_limit]. Spill temporaries and other registers born inside
       this round's rewrite are never in the caller's set, so they fall
       to the vector file, as does everything when scalar_limit = 0. *)
    let is_scalar r =
      scalar_limit > 0
      && Ptx.Types.reg_class (Ptx.Reg.ty r) <> Ptx.Types.Cpred
      && scalar r
    in
    let is_vector r = not (is_scalar r) in
    let color_class ?member cls kcolors =
      match strategy with
      | Chaitin_briggs ->
        Coloring.color ~type_strict ?member ~graph ~cls ~k:kcolors
          ~spill_cost:cost ()
      | Linear_scan ->
        Linear_scan.color ?member ~flow ~live ~cls ~k:kcolors ~spill_cost:cost
          ()
    in
    let need64 = Interference.max_live graph live Ptx.Types.C64 in
    (* linear scan works on conservative whole-range intervals, which
       overlap more than true liveness: give it head-room *)
    let need64 =
      match strategy with
      | Chaitin_briggs -> need64
      | Linear_scan -> need64 + 2
    in
    let k64 =
      if (2 * need64) + 4 <= reg_limit then need64
      else begin
        (* forcing 64-bit spills: the class still needs room for the
           spill-stack base registers (up to 2) plus the operand/result
           temporaries of one rewritten 64-bit instruction *)
        let floor64 = min need64 5 in
        max floor64 ((reg_limit - 4) / 2)
      end
    in
    let r64 = color_class ~member:is_vector Ptx.Types.C64 k64 in
    let k32 = reg_limit - (2 * r64.Coloring.colors_used) in
    if k32 < 3 then
      failwith
        (Printf.sprintf "Allocator: reg_limit %d too small (needs %d 64-bit regs)"
           reg_limit r64.Coloring.colors_used);
    let r32 = color_class ~member:is_vector Ptx.Types.C32 k32 in
    let rp = color_class Ptx.Types.Cpred 1024 in
    let empty_result =
      { Coloring.assignment = RMap.empty
      ; spilled = []
      ; colors_used = 0
      ; type_waste = 0
      }
    in
    let s64, s32 =
      if scalar_limit = 0 then (empty_result, empty_result)
      else begin
        let s64 =
          color_class ~member:is_scalar Ptx.Types.C64 (scalar_limit / 2)
        in
        let ks32 = scalar_limit - (2 * s64.Coloring.colors_used) in
        let s32 = color_class ~member:is_scalar Ptx.Types.C32 (max ks32 0) in
        (s64, s32)
      end
    in
    let new_spills =
      r64.Coloring.spilled @ r32.Coloring.spilled @ s64.Coloring.spilled
      @ s32.Coloring.spilled
    in
    if new_spills = [] then begin
      (* finalize: substitute physical registers for virtual ones.
         Scalar-file colours are offset by [reg_limit], so physical ids
         partition cleanly: id < reg_limit is a vector register, id >=
         reg_limit a scalar one (per class; predicates untouched). *)
      let lookup r =
        let asg, base =
          match Ptx.Types.reg_class (Ptx.Reg.ty r) with
          | Ptx.Types.C64 ->
            if is_scalar r then (s64.Coloring.assignment, reg_limit)
            else (r64.Coloring.assignment, 0)
          | Ptx.Types.C32 ->
            if is_scalar r then (s32.Coloring.assignment, reg_limit)
            else (r32.Coloring.assignment, 0)
          | Ptx.Types.Cpred -> (rp.Coloring.assignment, 0)
        in
        match RMap.find_opt r asg with
        | Some c -> Ptx.Reg.make (base + c) (Ptx.Reg.ty r)
        | None -> r
      in
      let allocated = Ptx.Kernel.map_instrs (Ptx.Instr.map_regs lookup) k' in
      let assignment =
        RSet.fold
          (fun r acc -> RMap.add r (lookup r) acc)
          (Ptx.Kernel.registers k') RMap.empty
      in
      let weighted space =
        List.fold_left
          (fun acc (p : Spill.placement) ->
             if Ptx.Types.equal_space p.space space then acc +. weighted_gain p.reg
             else acc)
          0. spec.placements
      in
      { kernel = allocated
      ; original = k
      ; virtual_kernel = k'
      ; assignment
      ; block_size
      ; reg_limit
      ; units_used = r32.Coloring.colors_used + (2 * r64.Coloring.colors_used)
      ; pred_used = rp.Coloring.colors_used
      ; scalar_limit
      ; scalar_units_used =
          s32.Coloring.colors_used + (2 * s64.Coloring.colors_used)
      ; scalarized =
          RMap.cardinal s32.Coloring.assignment
          + RMap.cardinal s64.Coloring.assignment
      ; spilled = spec.placements
      ; stats
      ; weighted_local = weighted Ptx.Types.Local
      ; weighted_shared = weighted Ptx.Types.Shared
      ; spill_local_bytes = spec.local_bytes
      ; spill_shared_bytes_per_block = spec.shared_bytes_per_thread * block_size
      ; rounds = i
      }
    end
    else begin
      List.iter (fun r -> cumulative := RSet.add r !cumulative) new_spills;
      round (i + 1)
    end
  in
  round 1

let spill_bytes t =
  let orig_flow = Cfg.Flow.of_kernel t.original in
  let du = Cfg.Defuse.compute orig_flow in
  List.fold_left
    (fun acc (p : Spill.placement) ->
       let accesses =
         match RMap.find_opt p.reg du with
         | Some s -> s.Cfg.Defuse.n_defs + s.Cfg.Defuse.n_uses
         | None -> 0
       in
       acc + (accesses * Ptx.Types.width_bytes (Ptx.Reg.ty p.reg)))
    0 t.spilled
