(** Spill-code insertion (paper Section 5.1, Listing 4).

    Spilled registers live in a per-thread spill stack. The stack is
    split between [Local] memory (the default) and [Shared] memory (when
    the optimization of Algorithm 1 selects a sub-stack). A 64-bit
    addressing register per region holds the base address, since symbol
    bases must be materialised; the shared base additionally embeds a
    per-thread offset of [tid.x * bytes_per_thread]. *)

type placement =
  { reg : Ptx.Reg.t
  ; space : Ptx.Types.space  (** [Local] or [Shared] *)
  ; offset : int  (** byte offset inside the per-thread region *)
  }

type spec =
  { placements : placement list
  ; local_bytes : int  (** per-thread local spill-stack bytes *)
  ; shared_bytes_per_thread : int
  ; remat : (Ptx.Reg.t * Ptx.Instr.operand) list
      (** rematerialised registers: no stack slot; each use re-executes
          [mov tmp, operand] instead of a reload (Briggs-style
          rematerialisation — constants and built-in register reads are
          cheaper to recompute than to reload) *)
  }

val layout :
  ?remat:(Ptx.Reg.t -> Ptx.Instr.operand option)
  -> to_shared:(Ptx.Reg.t -> bool)
  -> Ptx.Reg.t list
  -> spec
(** Assign each spilled register a region and an aligned offset.
    Registers are grouped by width (widest first) so offsets respect
    natural alignment. Registers for which [remat] returns a source
    operand get no slot and are listed in [spec.remat] instead. *)

(** Static counts of inserted instructions, the inputs to the
    [Spill_cost] term of TPSC (Section 6). *)
type stats =
  { num_local : int  (** inserted [ld/st.local] *)
  ; num_shared : int  (** inserted [ld/st.shared] *)
  ; num_other : int  (** address-computation instructions *)
  ; num_remat : int  (** rematerialisation moves inserted *)
  }

val local_stack_sym : string
(** Name of the per-thread local spill-stack symbol ([SpillStack]). *)

val shared_stack_sym : string
(** Name of the block-wide shared spill-stack symbol ([SpillShm]);
    address analyses (lib/verify) recognise the per-thread sub-stack
    addressing pattern through it. *)

val shared_stride_of_kernel :
  block_size:int -> Ptx.Kernel.t -> (string * int) option
(** [(shared_stack_sym, bytes_per_thread)] when the kernel carries an
    allocator-emitted shared spill stack sized for [block_size] threads;
    the sanitizer holds accesses through it to the executing thread's
    own sub-stack. *)

val apply : block_size:int -> Ptx.Kernel.t -> spec -> Ptx.Kernel.t * stats
(** Rewrite the kernel: every use of a spilled register loads it into a
    fresh temporary first; every def stores it back afterwards.
    [block_size] sizes the shared spill array ([bytes_per_thread *
    block_size]). The result validates. *)

val infra_registers : Ptx.Kernel.t -> Ptx.Kernel.t -> Ptx.Reg.Set.t
(** Registers present in the rewritten kernel but not the original —
    spill temporaries and base registers; these must never be re-spilled
    (their {!Coloring} cost is infinite). *)
