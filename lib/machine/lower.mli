(** Lowering: from an allocated (physical-register) PTX kernel to the
    machine ISA.

    The input is predecoded through {!Gpusim.Image.prepare} — body
    flattened, labels resolved, reconvergence points computed, and
    shared/local symbols laid out — then translated 1:1: machine
    instruction [i] implements flattened PTX instruction [i], branch
    labels become absolute indices, shared symbols become immediate
    offsets, parameters and local symbols become constant-bank indices.

    Register mapping packs each file densely in 32-bit units: the
    64-bit colours of a file occupy the aligned pairs
    [0..2*n64), and the 32-bit colours follow at [2*n64 + c]. The
    vector/scalar split of the allocation (physical ids below/above
    {!Regalloc.Allocator.scalar_color_base}) maps to the [Vector] and
    [Scalar] files; predicates map index-for-index to the [Pred] file.

    Because the mapping is a bijection on storage locations and the
    translation is 1:1, the machine program and the allocated PTX
    kernel are isomorphic — {!Exec} matches {!Gpusim.Refinterp}
    bit-for-bit (the differential test), which is what lets the timing
    simulator keep running the PTX form while the study sweeps
    machine-backend allocations. *)

type t =
  { name : string
  ; code : Isa.insn array
  ; encoded : int64 array
      (** fixed-width binary form, [4 * Array.length code] words *)
  ; reconv : int array  (** per-pc reconvergence table (from the image) *)
  ; params : string array  (** constant-bank slot -> parameter name *)
  ; image : Gpusim.Image.t
      (** the predecoded allocated-PTX image this was lowered from;
          carries the local-frame layout and address-interleaving rules
          {!Exec} must reproduce *)
  ; alloc : Regalloc.Allocator.t
  ; vector_units : int  (** vector units spanned per thread *)
  ; scalar_units : int  (** scalar units spanned per warp *)
  ; pred_count : int
  }

val run : Regalloc.Allocator.t -> t
(** @raise Invalid_argument when the allocation references a parameter
    or symbol the kernel does not declare (allocated kernels from
    {!Regalloc.Allocator.allocate} never do). *)

val map_reg : Regalloc.Allocator.t -> n64v:int -> n64s:int -> Ptx.Reg.t -> Isa.reg
(** The physical-PTX-register to machine-register mapping used by
    [run], exposed so the independent auditor can re-derive it;
    [n64v]/[n64s] are the 64-bit colour counts of the two files (see
    {!count64}). *)

val count64 : Regalloc.Allocator.t -> int * int
(** [(n64v, n64s)]: 64-bit colour count of the vector and scalar files,
    derived from the allocated kernel's register set. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing. *)
