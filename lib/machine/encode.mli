(** Fixed-width binary encoding of the machine ISA.

    Every instruction encodes to exactly {!width_bytes} bytes — four
    64-bit words: one packed control word (opcode, sub-operation, types,
    destination register, operand-slot kinds) followed by three operand
    payload words (a 64-bit immediate always fits its own word, so no
    instruction needs a second encoding form). [decode] is a strict
    inverse: it rejects unknown opcodes, malformed operand kinds and
    out-of-range fields rather than guessing, which is what makes the
    encode/decode roundtrip a meaningful audit (code V604). *)

val width_bytes : int
(** 32: one 256-bit word per instruction. *)

val encode : Isa.insn -> int64 array
(** Always returns 4 words. *)

val decode : int64 array -> Isa.insn
(** @raise Failure on a malformed word. *)

val encode_program : Isa.insn array -> int64 array
(** Concatenated encodings, [4 * length] words. *)

val decode_program : int64 array -> Isa.insn array
