let width_bytes = 32

(* ---------- field dictionaries ---------- *)

let scalar_code (t : Ptx.Types.scalar) =
  match t with
  | Ptx.Types.U16 -> 0
  | Ptx.Types.U32 -> 1
  | Ptx.Types.U64 -> 2
  | Ptx.Types.S16 -> 3
  | Ptx.Types.S32 -> 4
  | Ptx.Types.S64 -> 5
  | Ptx.Types.F32 -> 6
  | Ptx.Types.F64 -> 7
  | Ptx.Types.B8 -> 8
  | Ptx.Types.B16 -> 9
  | Ptx.Types.B32 -> 10
  | Ptx.Types.B64 -> 11
  | Ptx.Types.Pred -> 12

let scalar_of_code = function
  | 0 -> Ptx.Types.U16
  | 1 -> Ptx.Types.U32
  | 2 -> Ptx.Types.U64
  | 3 -> Ptx.Types.S16
  | 4 -> Ptx.Types.S32
  | 5 -> Ptx.Types.S64
  | 6 -> Ptx.Types.F32
  | 7 -> Ptx.Types.F64
  | 8 -> Ptx.Types.B8
  | 9 -> Ptx.Types.B16
  | 10 -> Ptx.Types.B32
  | 11 -> Ptx.Types.B64
  | 12 -> Ptx.Types.Pred
  | c -> failwith (Printf.sprintf "Machine.Encode: bad scalar code %d" c)

let space_code (s : Ptx.Types.space) =
  match s with
  | Ptx.Types.Reg -> 0
  | Ptx.Types.Local -> 1
  | Ptx.Types.Shared -> 2
  | Ptx.Types.Global -> 3
  | Ptx.Types.Param -> 4
  | Ptx.Types.Const -> 5

let space_of_code = function
  | 0 -> Ptx.Types.Reg
  | 1 -> Ptx.Types.Local
  | 2 -> Ptx.Types.Shared
  | 3 -> Ptx.Types.Global
  | 4 -> Ptx.Types.Param
  | 5 -> Ptx.Types.Const
  | c -> failwith (Printf.sprintf "Machine.Encode: bad space code %d" c)

let special_code (s : Ptx.Reg.special) =
  match s with
  | Ptx.Reg.Tid_x -> 0
  | Ptx.Reg.Tid_y -> 1
  | Ptx.Reg.Ctaid_x -> 2
  | Ptx.Reg.Ctaid_y -> 3
  | Ptx.Reg.Ntid_x -> 4
  | Ptx.Reg.Ntid_y -> 5
  | Ptx.Reg.Nctaid_x -> 6
  | Ptx.Reg.Nctaid_y -> 7
  | Ptx.Reg.Laneid -> 8
  | Ptx.Reg.Warpid -> 9

let special_of_code = function
  | 0 -> Ptx.Reg.Tid_x
  | 1 -> Ptx.Reg.Tid_y
  | 2 -> Ptx.Reg.Ctaid_x
  | 3 -> Ptx.Reg.Ctaid_y
  | 4 -> Ptx.Reg.Ntid_x
  | 5 -> Ptx.Reg.Ntid_y
  | 6 -> Ptx.Reg.Nctaid_x
  | 7 -> Ptx.Reg.Nctaid_y
  | 8 -> Ptx.Reg.Laneid
  | 9 -> Ptx.Reg.Warpid
  | c -> failwith (Printf.sprintf "Machine.Encode: bad special code %d" c)

let binop_code (o : Ptx.Instr.binop) =
  match o with
  | Ptx.Instr.Add -> 0
  | Ptx.Instr.Sub -> 1
  | Ptx.Instr.Mul_lo -> 2
  | Ptx.Instr.Div -> 3
  | Ptx.Instr.Rem -> 4
  | Ptx.Instr.Min -> 5
  | Ptx.Instr.Max -> 6
  | Ptx.Instr.And -> 7
  | Ptx.Instr.Or -> 8
  | Ptx.Instr.Xor -> 9
  | Ptx.Instr.Shl -> 10
  | Ptx.Instr.Shr -> 11

let binop_of_code = function
  | 0 -> Ptx.Instr.Add
  | 1 -> Ptx.Instr.Sub
  | 2 -> Ptx.Instr.Mul_lo
  | 3 -> Ptx.Instr.Div
  | 4 -> Ptx.Instr.Rem
  | 5 -> Ptx.Instr.Min
  | 6 -> Ptx.Instr.Max
  | 7 -> Ptx.Instr.And
  | 8 -> Ptx.Instr.Or
  | 9 -> Ptx.Instr.Xor
  | 10 -> Ptx.Instr.Shl
  | 11 -> Ptx.Instr.Shr
  | c -> failwith (Printf.sprintf "Machine.Encode: bad binop code %d" c)

let unop_code (o : Ptx.Instr.unop) =
  match o with
  | Ptx.Instr.Neg -> 0
  | Ptx.Instr.Not -> 1
  | Ptx.Instr.Abs -> 2
  | Ptx.Instr.Sqrt -> 3
  | Ptx.Instr.Rcp -> 4
  | Ptx.Instr.Ex2 -> 5
  | Ptx.Instr.Lg2 -> 6

let unop_of_code = function
  | 0 -> Ptx.Instr.Neg
  | 1 -> Ptx.Instr.Not
  | 2 -> Ptx.Instr.Abs
  | 3 -> Ptx.Instr.Sqrt
  | 4 -> Ptx.Instr.Rcp
  | 5 -> Ptx.Instr.Ex2
  | 6 -> Ptx.Instr.Lg2
  | c -> failwith (Printf.sprintf "Machine.Encode: bad unop code %d" c)

let cmp_code (c : Ptx.Instr.cmp) =
  match c with
  | Ptx.Instr.Eq -> 0
  | Ptx.Instr.Ne -> 1
  | Ptx.Instr.Lt -> 2
  | Ptx.Instr.Le -> 3
  | Ptx.Instr.Gt -> 4
  | Ptx.Instr.Ge -> 5

let cmp_of_code = function
  | 0 -> Ptx.Instr.Eq
  | 1 -> Ptx.Instr.Ne
  | 2 -> Ptx.Instr.Lt
  | 3 -> Ptx.Instr.Le
  | 4 -> Ptx.Instr.Gt
  | 5 -> Ptx.Instr.Ge
  | c -> failwith (Printf.sprintf "Machine.Encode: bad cmp code %d" c)

let file_code (f : Isa.file) =
  match f with
  | Isa.Vector -> 0
  | Isa.Scalar -> 1
  | Isa.Pred -> 2

let file_of_code = function
  | 0 -> Isa.Vector
  | 1 -> Isa.Scalar
  | 2 -> Isa.Pred
  | c -> failwith (Printf.sprintf "Machine.Encode: bad file code %d" c)

(* ---------- register packing: file(2) | idx(14) | ty(4) = 20 bits ---------- *)

let pack_reg (r : Isa.reg) =
  if r.Isa.idx < 0 || r.Isa.idx >= 1 lsl 14 then
    failwith
      (Printf.sprintf "Machine.Encode: register index %d out of range" r.Isa.idx);
  (file_code r.Isa.file lsl 18) lor (r.Isa.idx lsl 4)
  lor scalar_code r.Isa.ty

let unpack_reg bits =
  { Isa.file = file_of_code ((bits lsr 18) land 0x3)
  ; idx = (bits lsr 4) land 0x3fff
  ; ty = scalar_of_code (bits land 0xf)
  }

(* ---------- operand slots ---------- *)

(* Slot kinds, 4 bits each in word 0; payloads are full 64-bit words. *)
let k_none = 0
and k_reg = 1
and k_imm = 2
and k_fimm = 3
and k_spec = 4
and k_param = 5
and k_loc = 6
and k_target = 7
and k_offset = 8

type slot =
  | S_none
  | S_src of Isa.src
  | S_reg of Isa.reg
  | S_target of int
  | S_offset of int

let slot_kind_payload = function
  | S_none -> (k_none, 0L)
  | S_src (Isa.Rsrc r) -> (k_reg, Int64.of_int (pack_reg r))
  | S_src (Isa.Imm i) -> (k_imm, i)
  | S_src (Isa.Fimm f) -> (k_fimm, Int64.bits_of_float f)
  | S_src (Isa.Spec s) -> (k_spec, Int64.of_int (special_code s))
  | S_src (Isa.Param i) -> (k_param, Int64.of_int i)
  | S_src (Isa.Loc off) -> (k_loc, Int64.of_int off)
  | S_reg r -> (k_reg, Int64.of_int (pack_reg r))
  | S_target t -> (k_target, Int64.of_int t)
  | S_offset o -> (k_offset, Int64.of_int o)

let src_of_slot kind payload =
  if kind = k_reg then Isa.Rsrc (unpack_reg (Int64.to_int payload))
  else if kind = k_imm then Isa.Imm payload
  else if kind = k_fimm then Isa.Fimm (Int64.float_of_bits payload)
  else if kind = k_spec then Isa.Spec (special_of_code (Int64.to_int payload))
  else if kind = k_param then Isa.Param (Int64.to_int payload)
  else if kind = k_loc then Isa.Loc (Int64.to_int payload)
  else failwith (Printf.sprintf "Machine.Encode: slot kind %d is not a source" kind)

let reg_of_slot kind payload =
  if kind = k_reg then unpack_reg (Int64.to_int payload)
  else failwith (Printf.sprintf "Machine.Encode: slot kind %d is not a register" kind)

let int_of_slot expect kind payload =
  if kind = expect then Int64.to_int payload
  else failwith (Printf.sprintf "Machine.Encode: unexpected slot kind %d" kind)

(* ---------- opcodes ---------- *)

let op_mov = 1
and op_binop = 2
and op_mad = 3
and op_unop = 4
and op_cvt = 5
and op_setp = 6
and op_selp = 7
and op_ld = 8
and op_st = 9
and op_bra = 10
and op_bra_pred = 11
and op_bar = 12
and op_exit = 13

(* word 0: opcode(6) @0 | subop(6) @6 | ty1(4) @12 | ty2(4) @16
   | dest(20) @20 | slot kinds(3 x 4) @40 *)
let pack_word0 ~opcode ~subop ~ty1 ~ty2 ~dest slots =
  let kinds =
    List.mapi (fun i s -> fst (slot_kind_payload s) lsl (40 + (4 * i))) slots
  in
  let bits =
    opcode lor (subop lsl 6) lor (ty1 lsl 12) lor (ty2 lsl 16)
    lor (dest lsl 20)
    lor List.fold_left ( lor ) 0 kinds
  in
  Int64.of_int bits

let fields_of_word0 w =
  let bits = Int64.to_int w in
  ( bits land 0x3f
  , (bits lsr 6) land 0x3f
  , (bits lsr 12) land 0xf
  , (bits lsr 16) land 0xf
  , (bits lsr 20) land 0xfffff
  , [ (bits lsr 40) land 0xf; (bits lsr 44) land 0xf; (bits lsr 48) land 0xf ] )

let build ~opcode ?(subop = 0) ?(ty1 = 0) ?(ty2 = 0) ?dest slots =
  let dest_bits =
    match dest with
    | Some r -> pack_reg r
    | None -> 0
  in
  let slots3 =
    match slots with
    | [ _; _; _ ] -> slots
    | _ ->
      let pad = List.init (3 - List.length slots) (fun _ -> S_none) in
      slots @ pad
  in
  let w0 = pack_word0 ~opcode ~subop ~ty1 ~ty2 ~dest:dest_bits slots3 in
  let payloads = List.map (fun s -> snd (slot_kind_payload s)) slots3 in
  Array.of_list (w0 :: payloads)

let encode (ins : Isa.insn) =
  match ins with
  | Isa.Mov (ty, d, a) ->
    build ~opcode:op_mov ~ty1:(scalar_code ty) ~dest:d [ S_src a ]
  | Isa.Binop (op, ty, d, a, b) ->
    build ~opcode:op_binop ~subop:(binop_code op) ~ty1:(scalar_code ty) ~dest:d
      [ S_src a; S_src b ]
  | Isa.Mad (ty, d, a, b, c) ->
    build ~opcode:op_mad ~ty1:(scalar_code ty) ~dest:d
      [ S_src a; S_src b; S_src c ]
  | Isa.Unop (op, ty, d, a) ->
    build ~opcode:op_unop ~subop:(unop_code op) ~ty1:(scalar_code ty) ~dest:d
      [ S_src a ]
  | Isa.Cvt (dt, st, d, a) ->
    build ~opcode:op_cvt ~ty1:(scalar_code dt) ~ty2:(scalar_code st) ~dest:d
      [ S_src a ]
  | Isa.Setp (c, ty, d, a, b) ->
    build ~opcode:op_setp ~subop:(cmp_code c) ~ty1:(scalar_code ty) ~dest:d
      [ S_src a; S_src b ]
  | Isa.Selp (ty, d, a, b, p) ->
    build ~opcode:op_selp ~ty1:(scalar_code ty) ~dest:d
      [ S_src a; S_src b; S_reg p ]
  | Isa.Ld (sp, ty, d, a) ->
    build ~opcode:op_ld ~ty1:(scalar_code ty) ~ty2:(space_code sp) ~dest:d
      [ S_src a.Isa.abase; S_offset a.Isa.aoffset ]
  | Isa.St (sp, ty, a, v) ->
    build ~opcode:op_st ~ty1:(scalar_code ty) ~ty2:(space_code sp)
      [ S_src a.Isa.abase; S_offset a.Isa.aoffset; S_src v ]
  | Isa.Bra t -> build ~opcode:op_bra [ S_target t ]
  | Isa.Bra_pred (p, sense, t) ->
    build ~opcode:op_bra_pred
      ~subop:(if sense then 1 else 0)
      [ S_reg p; S_target t ]
  | Isa.Bar -> build ~opcode:op_bar []
  | Isa.Exit -> build ~opcode:op_exit []

let decode (words : int64 array) =
  if Array.length words <> 4 then
    failwith "Machine.Encode.decode: expected 4 words";
  let opcode, subop, ty1, ty2, dest_bits, kinds = fields_of_word0 words.(0) in
  let kind i = List.nth kinds i in
  let payload i = words.(i + 1) in
  let src i = src_of_slot (kind i) (payload i) in
  let reg i = reg_of_slot (kind i) (payload i) in
  let target i = int_of_slot k_target (kind i) (payload i) in
  let offset i = int_of_slot k_offset (kind i) (payload i) in
  let none i =
    if kind i <> k_none then
      failwith "Machine.Encode.decode: unexpected populated slot"
  in
  let dest () = unpack_reg dest_bits in
  if opcode = op_mov then begin
    none 1;
    none 2;
    Isa.Mov (scalar_of_code ty1, dest (), src 0)
  end
  else if opcode = op_binop then begin
    none 2;
    Isa.Binop (binop_of_code subop, scalar_of_code ty1, dest (), src 0, src 1)
  end
  else if opcode = op_mad then
    Isa.Mad (scalar_of_code ty1, dest (), src 0, src 1, src 2)
  else if opcode = op_unop then begin
    none 1;
    none 2;
    Isa.Unop (unop_of_code subop, scalar_of_code ty1, dest (), src 0)
  end
  else if opcode = op_cvt then begin
    none 1;
    none 2;
    Isa.Cvt (scalar_of_code ty1, scalar_of_code ty2, dest (), src 0)
  end
  else if opcode = op_setp then begin
    none 2;
    Isa.Setp (cmp_of_code subop, scalar_of_code ty1, dest (), src 0, src 1)
  end
  else if opcode = op_selp then
    Isa.Selp (scalar_of_code ty1, dest (), src 0, src 1, reg 2)
  else if opcode = op_ld then begin
    none 2;
    Isa.Ld
      ( space_of_code ty2
      , scalar_of_code ty1
      , dest ()
      , { Isa.abase = src 0; aoffset = offset 1 } )
  end
  else if opcode = op_st then
    Isa.St
      ( space_of_code ty2
      , scalar_of_code ty1
      , { Isa.abase = src 0; aoffset = offset 1 }
      , src 2 )
  else if opcode = op_bra then begin
    none 1;
    none 2;
    Isa.Bra (target 0)
  end
  else if opcode = op_bra_pred then begin
    none 2;
    Isa.Bra_pred (reg 0, subop land 1 = 1, target 1)
  end
  else if opcode = op_bar then begin
    none 0;
    none 1;
    none 2;
    Isa.Bar
  end
  else if opcode = op_exit then begin
    none 0;
    none 1;
    none 2;
    Isa.Exit
  end
  else failwith (Printf.sprintf "Machine.Encode.decode: bad opcode %d" opcode)

let encode_program code =
  Array.concat (Array.to_list (Array.map encode code))

let decode_program words =
  let n = Array.length words in
  if n mod 4 <> 0 then
    failwith "Machine.Encode.decode_program: length not a multiple of 4";
  Array.init (n / 4) (fun i -> decode (Array.sub words (4 * i) 4))
