module RSet = Ptx.Reg.Set

(* The ALU-only forms a scalar unit can execute, plus parameter loads
   (a constant-bank read on real hardware). Memory loads are excluded
   even when their address is uniform: the loaded value's uniformity
   depends on memory contents, which the abstract domain does not
   track. *)
let eligible_form (ins : Ptx.Instr.t) =
  match ins with
  | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _ | Ptx.Instr.Unop _
  | Ptx.Instr.Cvt _ -> true
  | Ptx.Instr.Ld (Ptx.Types.Param, _, _, _) -> true
  | Ptx.Instr.Ld _ | Ptx.Instr.St _ | Ptx.Instr.Setp _ | Ptx.Instr.Selp _
  | Ptx.Instr.Bra _ | Ptx.Instr.Bra_pred _ | Ptx.Instr.Bar_sync
  | Ptx.Instr.Ret -> false

let source_operands (ins : Ptx.Instr.t) =
  match ins with
  | Ptx.Instr.Mov (_, _, a) | Ptx.Instr.Unop (_, _, _, a)
  | Ptx.Instr.Cvt (_, _, _, a) -> [ a ]
  | Ptx.Instr.Binop (_, _, _, a, b) -> [ a; b ]
  | Ptx.Instr.Mad (_, _, a, b, c) -> [ a; b; c ]
  | Ptx.Instr.Ld (_, _, _, addr) -> [ addr.Ptx.Instr.base ]
  | Ptx.Instr.Setp _ | Ptx.Instr.Selp _ | Ptx.Instr.St _ | Ptx.Instr.Bra _
  | Ptx.Instr.Bra_pred _ | Ptx.Instr.Bar_sync | Ptx.Instr.Ret -> []

let run ?(block_size = 128) k =
  let flow = Cfg.Flow.of_kernel k in
  let an = Absint.Analysis.run ~block_size flow in
  (* defs of each non-predicate register *)
  let defs : (int * Ptx.Instr.t) list Ptx.Reg.Tbl.t = Ptx.Reg.Tbl.create 64 in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    List.iter
      (fun d ->
         if Ptx.Types.reg_class (Ptx.Reg.ty d) <> Ptx.Types.Cpred then
           Ptx.Reg.Tbl.replace defs d
             ((i, ins) :: Option.value ~default:[] (Ptx.Reg.Tbl.find_opt defs d)))
      (Ptx.Instr.defs ins));
  let def_ok (i, ins) =
    eligible_form ins
    && (not
          (Absint.Analysis.divergent_block an flow.Cfg.Flow.block_of_instr.(i)))
    && List.for_all
         (fun op -> (Absint.Analysis.operand_at an i op).Absint.Dom.uni)
         (source_operands ins)
    (* predicate sources never feed the scalar file *)
    && List.for_all
         (fun r -> Ptx.Types.reg_class (Ptx.Reg.ty r) <> Ptx.Types.Cpred)
         (Ptx.Instr.uses ins)
  in
  let candidates =
    Ptx.Reg.Tbl.fold
      (fun r ds acc -> if List.for_all def_ok ds then RSet.add r acc else acc)
      defs RSet.empty
  in
  (* greatest fixpoint: a scalar instruction may only read scalar
     registers, so drop any candidate computed from a non-candidate *)
  let sources_in set (_, ins) =
    List.for_all (fun r -> RSet.mem r set) (Ptx.Instr.uses ins)
  in
  let rec refine set =
    let set' =
      RSet.filter
        (fun r ->
           List.for_all (sources_in set)
             (Option.value ~default:[] (Ptx.Reg.Tbl.find_opt defs r)))
        set
    in
    if RSet.equal set' set then set else refine set'
  in
  refine candidates

let predicate ?block_size k =
  let set = run ?block_size k in
  fun r -> RSet.mem r set
