(** The SASS-like machine ISA: a finite, fixed-width instruction set
    with three architectural register files.

    Unlike PTX — an infinite virtual register set with symbolic labels
    and named parameters — a machine instruction addresses physical
    storage directly: a {b vector} file of per-thread 32-bit units, a
    {b scalar} file of per-warp units (one copy per warp, holding
    values the compiler proved warp-uniform), and a {b predicate} file.
    Branches target absolute instruction indices; shared-memory symbols
    are resolved to immediate offsets at lowering time; the remaining
    symbolic residue (kernel parameters, per-thread local frames) is
    addressed through small constant-bank indices.

    64-bit values occupy an aligned pair of units, mirroring SASS
    register pairs; {!reg.idx} is always the first unit of the pair. *)

(** Architectural register file. *)
type file =
  | Vector  (** per-thread units; budgeted by the per-thread limit *)
  | Scalar  (** per-warp units; holds proven warp-uniform values *)
  | Pred  (** per-thread predicate bits *)

type reg =
  { file : file
  ; idx : int
      (** first 32-bit unit of the register ([Pred]: predicate index) *)
  ; ty : Ptx.Types.scalar
      (** operating type of this access; 64-bit types occupy units
          [idx] and [idx + 1] *)
  }

(** An instruction source. Symbolic PTX operands are gone: shared
    symbols became immediates, parameters and local symbols are indexed
    constant-bank reads. *)
type src =
  | Rsrc of reg
  | Imm of int64
  | Fimm of float
  | Spec of Ptx.Reg.special  (** special-register read port *)
  | Param of int  (** constant-bank slot: kernel parameter index *)
  | Loc of int
      (** per-thread local-frame symbol: byte offset into the frame *)

type addr =
  { abase : src
  ; aoffset : int  (** constant byte displacement *)
  }

(** Machine instructions. The operation set mirrors the PTX subset
    one-for-one (lowering is 1:1), but every register is physical and
    every branch target is an absolute instruction index. *)
type insn =
  | Mov of Ptx.Types.scalar * reg * src
  | Binop of Ptx.Instr.binop * Ptx.Types.scalar * reg * src * src
  | Mad of Ptx.Types.scalar * reg * src * src * src
  | Unop of Ptx.Instr.unop * Ptx.Types.scalar * reg * src
  | Cvt of Ptx.Types.scalar * Ptx.Types.scalar * reg * src
  | Setp of Ptx.Instr.cmp * Ptx.Types.scalar * reg * src * src
  | Selp of Ptx.Types.scalar * reg * src * src * reg
  | Ld of Ptx.Types.space * Ptx.Types.scalar * reg * addr
  | St of Ptx.Types.space * Ptx.Types.scalar * addr * src
  | Bra of int
  | Bra_pred of reg * bool * int
  | Bar
  | Exit

val units : reg -> int
(** Register-file units occupied: 2 for 64-bit types, 1 otherwise
    (predicates count 1 in their own file). *)

val equal_reg : reg -> reg -> bool
val equal_insn : insn -> insn -> bool

val defs : insn -> reg list
val uses : insn -> reg list
(** Registers read, including address bases and branch predicates. *)

val succs : insn -> pc:int -> code_len:int -> int list
(** Successor instruction indices of the instruction at [pc]. *)

val file_to_string : file -> string
val reg_name : reg -> string
(** SASS-like spelling: [R4] (vector), [SR2] (scalar), [P0]
    (predicate); 64-bit accesses show the pair, e.g. [R4:R5]. *)

val pp_reg : Format.formatter -> reg -> unit
val pp_src : Format.formatter -> src -> unit
val pp_insn : Format.formatter -> insn -> unit
val insn_to_string : insn -> string
