type file =
  | Vector
  | Scalar
  | Pred

type reg =
  { file : file
  ; idx : int
  ; ty : Ptx.Types.scalar
  }

type src =
  | Rsrc of reg
  | Imm of int64
  | Fimm of float
  | Spec of Ptx.Reg.special
  | Param of int
  | Loc of int

type addr =
  { abase : src
  ; aoffset : int
  }

type insn =
  | Mov of Ptx.Types.scalar * reg * src
  | Binop of Ptx.Instr.binop * Ptx.Types.scalar * reg * src * src
  | Mad of Ptx.Types.scalar * reg * src * src * src
  | Unop of Ptx.Instr.unop * Ptx.Types.scalar * reg * src
  | Cvt of Ptx.Types.scalar * Ptx.Types.scalar * reg * src
  | Setp of Ptx.Instr.cmp * Ptx.Types.scalar * reg * src * src
  | Selp of Ptx.Types.scalar * reg * src * src * reg
  | Ld of Ptx.Types.space * Ptx.Types.scalar * reg * addr
  | St of Ptx.Types.space * Ptx.Types.scalar * addr * src
  | Bra of int
  | Bra_pred of reg * bool * int
  | Bar
  | Exit

let units r =
  match Ptx.Types.reg_class r.ty with
  | Ptx.Types.C64 -> 2
  | Ptx.Types.C32 | Ptx.Types.Cpred -> 1

let equal_reg a b =
  a.file = b.file && a.idx = b.idx && Ptx.Types.equal_scalar a.ty b.ty

let equal_src a b =
  match (a, b) with
  | Rsrc x, Rsrc y -> equal_reg x y
  | Imm x, Imm y -> Int64.equal x y
  | Fimm x, Fimm y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Spec x, Spec y -> Ptx.Reg.equal_special x y
  | Param x, Param y -> x = y
  | Loc x, Loc y -> x = y
  | (Rsrc _ | Imm _ | Fimm _ | Spec _ | Param _ | Loc _), _ -> false

let equal_addr a b = equal_src a.abase b.abase && a.aoffset = b.aoffset

let equal_insn a b =
  match (a, b) with
  | Mov (t1, d1, s1), Mov (t2, d2, s2) ->
    Ptx.Types.equal_scalar t1 t2 && equal_reg d1 d2 && equal_src s1 s2
  | Binop (o1, t1, d1, a1, b1), Binop (o2, t2, d2, a2, b2) ->
    o1 = o2 && Ptx.Types.equal_scalar t1 t2 && equal_reg d1 d2
    && equal_src a1 a2 && equal_src b1 b2
  | Mad (t1, d1, a1, b1, c1), Mad (t2, d2, a2, b2, c2) ->
    Ptx.Types.equal_scalar t1 t2 && equal_reg d1 d2 && equal_src a1 a2
    && equal_src b1 b2 && equal_src c1 c2
  | Unop (o1, t1, d1, s1), Unop (o2, t2, d2, s2) ->
    o1 = o2 && Ptx.Types.equal_scalar t1 t2 && equal_reg d1 d2
    && equal_src s1 s2
  | Cvt (d1t, s1t, d1, s1), Cvt (d2t, s2t, d2, s2) ->
    Ptx.Types.equal_scalar d1t d2t && Ptx.Types.equal_scalar s1t s2t
    && equal_reg d1 d2 && equal_src s1 s2
  | Setp (c1, t1, d1, a1, b1), Setp (c2, t2, d2, a2, b2) ->
    c1 = c2 && Ptx.Types.equal_scalar t1 t2 && equal_reg d1 d2
    && equal_src a1 a2 && equal_src b1 b2
  | Selp (t1, d1, a1, b1, p1), Selp (t2, d2, a2, b2, p2) ->
    Ptx.Types.equal_scalar t1 t2 && equal_reg d1 d2 && equal_src a1 a2
    && equal_src b1 b2 && equal_reg p1 p2
  | Ld (sp1, t1, d1, a1), Ld (sp2, t2, d2, a2) ->
    Ptx.Types.equal_space sp1 sp2 && Ptx.Types.equal_scalar t1 t2
    && equal_reg d1 d2 && equal_addr a1 a2
  | St (sp1, t1, a1, v1), St (sp2, t2, a2, v2) ->
    Ptx.Types.equal_space sp1 sp2 && Ptx.Types.equal_scalar t1 t2
    && equal_addr a1 a2 && equal_src v1 v2
  | Bra t1, Bra t2 -> t1 = t2
  | Bra_pred (p1, s1, t1), Bra_pred (p2, s2, t2) ->
    equal_reg p1 p2 && s1 = s2 && t1 = t2
  | Bar, Bar -> true
  | Exit, Exit -> true
  | ( ( Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Ld _
      | St _ | Bra _ | Bra_pred _ | Bar | Exit )
    , _ ) -> false

let src_regs = function
  | Rsrc r -> [ r ]
  | Imm _ | Fimm _ | Spec _ | Param _ | Loc _ -> []

let addr_regs a = src_regs a.abase

let defs = function
  | Mov (_, d, _)
  | Binop (_, _, d, _, _)
  | Mad (_, d, _, _, _)
  | Unop (_, _, d, _)
  | Cvt (_, _, d, _)
  | Setp (_, _, d, _, _)
  | Selp (_, d, _, _, _)
  | Ld (_, _, d, _) -> [ d ]
  | St _ | Bra _ | Bra_pred _ | Bar | Exit -> []

let uses = function
  | Mov (_, _, a) | Unop (_, _, _, a) | Cvt (_, _, _, a) -> src_regs a
  | Binop (_, _, _, a, b) | Setp (_, _, _, a, b) -> src_regs a @ src_regs b
  | Mad (_, _, a, b, c) -> src_regs a @ src_regs b @ src_regs c
  | Selp (_, _, a, b, p) -> src_regs a @ src_regs b @ [ p ]
  | Ld (_, _, _, a) -> addr_regs a
  | St (_, _, a, v) -> addr_regs a @ src_regs v
  | Bra _ -> []
  | Bra_pred (p, _, _) -> [ p ]
  | Bar | Exit -> []

let succs ins ~pc ~code_len =
  let next = if pc + 1 < code_len then [ pc + 1 ] else [] in
  match ins with
  | Bra t -> [ t ]
  | Bra_pred (_, _, t) -> if List.mem t next then next else t :: next
  | Exit -> []
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Ld _ | St _
  | Bar -> next

let file_to_string = function
  | Vector -> "vector"
  | Scalar -> "scalar"
  | Pred -> "pred"

let reg_name r =
  let prefix =
    match r.file with
    | Vector -> "R"
    | Scalar -> "SR"
    | Pred -> "P"
  in
  if units r = 2 then Printf.sprintf "%s%d:%s%d" prefix r.idx prefix (r.idx + 1)
  else Printf.sprintf "%s%d" prefix r.idx

let pp_reg fmt r = Format.pp_print_string fmt (reg_name r)

let pp_src fmt = function
  | Rsrc r -> pp_reg fmt r
  | Imm i -> Format.fprintf fmt "%Ld" i
  | Fimm f -> Format.fprintf fmt "%h" f
  | Spec s -> Format.pp_print_string fmt (Ptx.Reg.special_to_string s)
  | Param i -> Format.fprintf fmt "c[param][%d]" i
  | Loc off -> Format.fprintf fmt "c[local][%d]" off

let pp_addr fmt a =
  if a.aoffset = 0 then Format.fprintf fmt "[%a]" pp_src a.abase
  else Format.fprintf fmt "[%a+%d]" pp_src a.abase a.aoffset

let ts = Ptx.Types.scalar_to_string

let pp_insn fmt = function
  | Mov (ty, d, a) -> Format.fprintf fmt "MOV.%s %a, %a" (ts ty) pp_reg d pp_src a
  | Binop (op, ty, d, a, b) ->
    let name =
      match op with
      | Ptx.Instr.Add -> "ADD"
      | Ptx.Instr.Sub -> "SUB"
      | Ptx.Instr.Mul_lo -> "MUL"
      | Ptx.Instr.Div -> "DIV"
      | Ptx.Instr.Rem -> "REM"
      | Ptx.Instr.Min -> "MIN"
      | Ptx.Instr.Max -> "MAX"
      | Ptx.Instr.And -> "AND"
      | Ptx.Instr.Or -> "OR"
      | Ptx.Instr.Xor -> "XOR"
      | Ptx.Instr.Shl -> "SHL"
      | Ptx.Instr.Shr -> "SHR"
    in
    Format.fprintf fmt "%s.%s %a, %a, %a" name (ts ty) pp_reg d pp_src a pp_src b
  | Mad (ty, d, a, b, c) ->
    Format.fprintf fmt "MAD.%s %a, %a, %a, %a" (ts ty) pp_reg d pp_src a
      pp_src b pp_src c
  | Unop (op, ty, d, a) ->
    let name =
      match op with
      | Ptx.Instr.Neg -> "NEG"
      | Ptx.Instr.Not -> "NOT"
      | Ptx.Instr.Abs -> "ABS"
      | Ptx.Instr.Sqrt -> "SQRT"
      | Ptx.Instr.Rcp -> "RCP"
      | Ptx.Instr.Ex2 -> "EX2"
      | Ptx.Instr.Lg2 -> "LG2"
    in
    Format.fprintf fmt "%s.%s %a, %a" name (ts ty) pp_reg d pp_src a
  | Cvt (dt, st, d, a) ->
    Format.fprintf fmt "CVT.%s.%s %a, %a" (ts dt) (ts st) pp_reg d pp_src a
  | Setp (c, ty, d, a, b) ->
    let name =
      match c with
      | Ptx.Instr.Eq -> "EQ"
      | Ptx.Instr.Ne -> "NE"
      | Ptx.Instr.Lt -> "LT"
      | Ptx.Instr.Le -> "LE"
      | Ptx.Instr.Gt -> "GT"
      | Ptx.Instr.Ge -> "GE"
    in
    Format.fprintf fmt "ISETP.%s.%s %a, %a, %a" name (ts ty) pp_reg d pp_src a
      pp_src b
  | Selp (ty, d, a, b, p) ->
    Format.fprintf fmt "SEL.%s %a, %a, %a, %a" (ts ty) pp_reg d pp_src a
      pp_src b pp_reg p
  | Ld (sp, ty, d, a) ->
    Format.fprintf fmt "LD.%s.%s %a, %a"
      (Ptx.Types.space_to_string sp)
      (ts ty) pp_reg d pp_addr a
  | St (sp, ty, a, v) ->
    Format.fprintf fmt "ST.%s.%s %a, %a"
      (Ptx.Types.space_to_string sp)
      (ts ty) pp_addr a pp_src v
  | Bra t -> Format.fprintf fmt "BRA %d" t
  | Bra_pred (p, sense, t) ->
    Format.fprintf fmt "@%s%a BRA %d" (if sense then "" else "!") pp_reg p t
  | Bar -> Format.pp_print_string fmt "BAR.SYNC"
  | Exit -> Format.pp_print_string fmt "EXIT"

let insn_to_string i = Format.asprintf "%a" pp_insn i
