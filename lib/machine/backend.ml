type t =
  | Ptx
  | Machine

let all = [ Ptx; Machine ]

let to_string = function
  | Ptx -> "ptx"
  | Machine -> "machine"

let of_string = function
  | "ptx" -> Some Ptx
  | "machine" -> Some Machine
  | _ -> None

let default_scalar_limit = 64
