(** The backend axis of the CRAT study.

    [Ptx] is the original configuration: allocation targets a single
    per-thread register file and the machine layers below this library
    are unused. [Machine] lowers every allocation to the SASS-like ISA
    with split vector/scalar register files: warp-uniform values proven
    by {!Scalarize} are coloured against a per-warp scalar budget,
    freeing vector registers — and therefore TLP — at the same
    per-thread limit. *)

type t =
  | Ptx
  | Machine

val all : t list

val to_string : t -> string
(** ["ptx"] / ["machine"] — the CLI and benchmark spelling. *)

val of_string : string -> t option

val default_scalar_limit : int
(** Per-warp scalar-file budget in 32-bit units used when the [Machine]
    backend does not specify one (64 units = 32 scalar 64-bit values
    per warp, a SASS-like SGPR file size). *)
