(* Port of Gpusim.Refinterp over the machine ISA. The SIMT control
   machinery is kept structurally identical (same reconvergence-stack
   normalisation, same barrier scheduling loop) so that any behavioural
   difference between the two executors is attributable to the
   register-file model, not to the driver. *)

module V = Gpusim.Value

type launch_ctx =
  { prog : Lower.t
  ; global : Gpusim.Memory.t
  ; params : (string * V.t) list
  ; block_size : int
  ; num_blocks : int
  ; san : Gpusim.Sancheck.runtime option
  }

type block_ctx =
  { launch : launch_ctx
  ; ctaid : int
  ; shared : Gpusim.Memory.t
  ; nwarps : int
  }

type stack_entry =
  { mutable next_pc : int
  ; reconv_pc : int
  ; mask : int
  }

type warp =
  { block : block_ctx
  ; wid : int
  ; base_tid : int
  ; nlanes : int
  ; vregs : (int, V.t array) Hashtbl.t  (** vector file: per-lane *)
  ; pregs : (int, V.t array) Hashtbl.t  (** predicate file: per-lane *)
  ; sregs : (int, V.t) Hashtbl.t  (** scalar file: one copy per warp *)
  ; mutable stack : stack_entry list
  ; mutable done_ : bool
  }

let full_mask n = (1 lsl n) - 1

let make_block launch ~ctaid ~warp_size =
  if launch.block_size <= 0 || launch.block_size mod warp_size <> 0 then
    invalid_arg "Machine.Exec: block size must be a multiple of warp size";
  let nwarps = launch.block_size / warp_size in
  let block = { launch; ctaid; shared = Gpusim.Memory.create (); nwarps } in
  let warps =
    List.init nwarps (fun w ->
      { block
      ; wid = w
      ; base_tid = w * warp_size
      ; nlanes = warp_size
      ; vregs = Hashtbl.create 64
      ; pregs = Hashtbl.create 8
      ; sregs = Hashtbl.create 16
      ; stack = [ { next_pc = 0; reconv_pc = -1; mask = full_mask warp_size } ]
      ; done_ = false
      })
  in
  (block, warps)

let is_done w = w.done_

let tos w =
  match w.stack with
  | e :: _ -> e
  | [] -> failwith "Machine.Exec: empty SIMT stack"

let normalize w =
  let rec loop () =
    match w.stack with
    | e :: (_ :: _ as rest) when e.next_pc = e.reconv_pc ->
      w.stack <- rest;
      loop ()
    | _ :: _ | [] -> ()
  in
  loop ()

let lane_file w (r : Isa.reg) =
  let tbl =
    match r.Isa.file with
    | Isa.Pred -> w.pregs
    | Isa.Vector | Isa.Scalar -> w.vregs
  in
  match Hashtbl.find_opt tbl r.Isa.idx with
  | Some a -> a
  | None ->
    let a = Array.make w.nlanes V.zero in
    Hashtbl.replace tbl r.Isa.idx a;
    a

let read_reg w (r : Isa.reg) lane =
  match r.Isa.file with
  | Isa.Scalar ->
    Option.value ~default:V.zero (Hashtbl.find_opt w.sregs r.Isa.idx)
  | Isa.Vector | Isa.Pred -> (lane_file w r).(lane)

let set_reg w (r : Isa.reg) lane v =
  let v = V.truncate r.Isa.ty v in
  match r.Isa.file with
  | Isa.Scalar -> Hashtbl.replace w.sregs r.Isa.idx v
  | Isa.Vector | Isa.Pred -> (lane_file w r).(lane) <- v

let global_tid w lane =
  (w.block.ctaid * w.block.launch.block_size) + w.base_tid + lane

let eval_special w lane (s : Ptx.Reg.special) =
  let v =
    match s with
    | Ptx.Reg.Tid_x -> w.base_tid + lane
    | Ptx.Reg.Tid_y -> 0
    | Ptx.Reg.Ctaid_x -> w.block.ctaid
    | Ptx.Reg.Ctaid_y -> 0
    | Ptx.Reg.Ntid_x -> w.block.launch.block_size
    | Ptx.Reg.Ntid_y -> 1
    | Ptx.Reg.Nctaid_x -> w.block.launch.num_blocks
    | Ptx.Reg.Nctaid_y -> 1
    | Ptx.Reg.Laneid -> lane
    | Ptx.Reg.Warpid -> w.wid
  in
  V.of_int v

let param_value w idx =
  let prog = w.block.launch.prog in
  if idx < 0 || idx >= Array.length prog.Lower.params then
    invalid_arg (Printf.sprintf "Machine.Exec: bad parameter slot %d" idx);
  let name = prog.Lower.params.(idx) in
  match List.assoc_opt name w.block.launch.params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Machine.Exec: unbound parameter %s" name)

let eval w lane (s : Isa.src) =
  match s with
  | Isa.Rsrc r -> read_reg w r lane
  | Isa.Imm i -> V.I i
  | Isa.Fimm f -> V.F f
  | Isa.Spec sp -> eval_special w lane sp
  | Isa.Param idx -> param_value w idx
  | Isa.Loc off ->
    V.I
      (Gpusim.Image.local_addr w.block.launch.prog.Lower.image
         ~global_tid:(global_tid w lane) ~sym_offset:off)

let addr_of w lane (a : Isa.addr) =
  Int64.add (V.to_int64 (eval w lane a.Isa.abase)) (Int64.of_int a.Isa.aoffset)

type exec =
  | E_op
  | E_barrier
  | E_exit

(* Sanitizer probes, mirroring {!Gpusim.Refinterp}. Lowering preserves
   flat instruction indices 1:1, so the PTX-derived mask applies to the
   machine code unchanged. A violating load yields zero instead of
   reading; a violating store is dropped. *)

let san_shared w ~pc ~lane ~width a =
  match w.block.launch.san with
  | None -> true
  | Some rt ->
    Gpusim.Sancheck.check rt ~pc ~lane ~tid:(w.base_tid + lane) ~width ~rel:a

let san_local w ~pc ~lane ~width naive =
  match w.block.launch.san with
  | None -> true
  | Some rt ->
    let image = w.block.launch.prog.Lower.image in
    let rel =
      Int64.sub naive
        (Int64.add Gpusim.Image.local_base
           (Int64.of_int
              (global_tid w lane * image.Gpusim.Image.local_frame_bytes)))
    in
    Gpusim.Sancheck.check rt ~pc ~lane ~tid:(w.base_tid + lane) ~width ~rel

let iter_active mask nlanes f =
  for lane = 0 to nlanes - 1 do
    if mask land (1 lsl lane) <> 0 then f lane
  done

let last_active mask nlanes =
  let r = ref (-1) in
  for lane = 0 to nlanes - 1 do
    if mask land (1 lsl lane) <> 0 then r := lane
  done;
  !r

(* Write [compute lane] into [d] for every active lane — except when
   [d] is scalar: a scalar-file instruction issues {e once} for the
   warp, so the computation runs a single time (for the last active
   lane, whose sources a sound scalarization has proven warp-uniform).
   Running it per lane would re-read the freshly written destination on
   read-modify-write forms like [ADD SRn, SRn, 1] and increment once
   per lane instead of once per warp. *)
let exec_op w mask (d : Isa.reg) compute =
  match d.Isa.file with
  | Isa.Scalar ->
    let lane = last_active mask w.nlanes in
    if lane >= 0 then set_reg w d lane (compute lane)
  | Isa.Vector | Isa.Pred ->
    iter_active mask w.nlanes (fun l -> set_reg w d l (compute l))

let step w =
  if w.done_ then invalid_arg "Machine.Exec.step: warp already done";
  normalize w;
  let e = tos w in
  let this_pc = e.next_pc in
  let prog = w.block.launch.prog in
  let code = prog.Lower.code in
  if this_pc >= Array.length code then begin
    w.done_ <- true;
    E_exit
  end
  else begin
    let ins = code.(this_pc) in
    let mask = e.mask in
    e.next_pc <- this_pc + 1;
    let result =
      match ins with
      | Isa.Mov (ty, d, a) ->
        exec_op w mask d (fun l -> V.truncate ty (eval w l a));
        E_op
      | Isa.Binop (op, ty, d, a, b) ->
        exec_op w mask d (fun l -> V.binop op ty (eval w l a) (eval w l b));
        E_op
      | Isa.Mad (ty, d, a, b, c) ->
        exec_op w mask d (fun l ->
          V.mad ty (eval w l a) (eval w l b) (eval w l c));
        E_op
      | Isa.Unop (op, ty, d, a) ->
        exec_op w mask d (fun l -> V.unop op ty (eval w l a));
        E_op
      | Isa.Cvt (dt, st, d, a) ->
        exec_op w mask d (fun l -> V.convert ~dst:dt ~src:st (eval w l a));
        E_op
      | Isa.Setp (c, ty, d, a, b) ->
        exec_op w mask d (fun l ->
          let r = V.compare_values c ty (eval w l a) (eval w l b) in
          V.I (if r then 1L else 0L));
        E_op
      | Isa.Selp (ty, d, a, b, p) ->
        exec_op w mask d (fun l ->
          let pv = read_reg w p l in
          V.truncate ty (if V.to_bool pv then eval w l a else eval w l b));
        E_op
      | Isa.Ld (Ptx.Types.Param, ty, d, a) ->
        (match a.Isa.abase with
         | Isa.Param idx ->
           exec_op w mask d (fun l ->
             ignore l;
             V.truncate ty (param_value w idx))
         | Isa.Rsrc _ | Isa.Imm _ | Isa.Fimm _ | Isa.Spec _ | Isa.Loc _ ->
           invalid_arg "Machine.Exec: ld.param requires a constant-bank base");
        E_op
      | Isa.Ld (Ptx.Types.Const, ty, d, a) ->
        exec_op w mask d (fun l ->
          Gpusim.Memory.read w.block.launch.global (addr_of w l a) ty);
        E_op
      | Isa.Ld (Ptx.Types.Shared, ty, d, a) ->
        let width = Ptx.Types.width_bytes ty in
        exec_op w mask d (fun l ->
          let ad = addr_of w l a in
          if san_shared w ~pc:this_pc ~lane:l ~width ad then
            Gpusim.Memory.read w.block.shared ad ty
          else V.truncate ty V.zero);
        E_op
      | Isa.Ld (((Ptx.Types.Global | Ptx.Types.Local) as sp), ty, d, a) ->
        let width = Ptx.Types.width_bytes ty in
        exec_op w mask d (fun l ->
          let ad = addr_of w l a in
          match sp with
          | Ptx.Types.Local ->
            if san_local w ~pc:this_pc ~lane:l ~width ad then
              let ad =
                Gpusim.Image.remap_local prog.Lower.image
                  ~global_tid:(global_tid w l) ad
              in
              Gpusim.Memory.read w.block.launch.global ad ty
            else V.truncate ty V.zero
          | Ptx.Types.Global | Ptx.Types.Shared | Ptx.Types.Reg
          | Ptx.Types.Param | Ptx.Types.Const ->
            Gpusim.Memory.read w.block.launch.global ad ty);
        E_op
      | Isa.Ld ((Ptx.Types.Reg as sp), _, _, _) ->
        invalid_arg
          (Printf.sprintf "Machine.Exec: ld.%s unsupported"
             (Ptx.Types.space_to_string sp))
      | Isa.St (Ptx.Types.Shared, ty, a, v) ->
        let width = Ptx.Types.width_bytes ty in
        iter_active mask w.nlanes (fun l ->
          let ad = addr_of w l a in
          if san_shared w ~pc:this_pc ~lane:l ~width ad then
            Gpusim.Memory.write w.block.shared ad ty (eval w l v));
        E_op
      | Isa.St (((Ptx.Types.Global | Ptx.Types.Local) as sp), ty, a, v) ->
        let width = Ptx.Types.width_bytes ty in
        iter_active mask w.nlanes (fun l ->
          let ad = addr_of w l a in
          match sp with
          | Ptx.Types.Local ->
            if san_local w ~pc:this_pc ~lane:l ~width ad then
              let ad =
                Gpusim.Image.remap_local prog.Lower.image
                  ~global_tid:(global_tid w l) ad
              in
              Gpusim.Memory.write w.block.launch.global ad ty (eval w l v)
          | Ptx.Types.Global | Ptx.Types.Shared | Ptx.Types.Reg
          | Ptx.Types.Param | Ptx.Types.Const ->
            Gpusim.Memory.write w.block.launch.global ad ty (eval w l v));
        E_op
      | Isa.St ((Ptx.Types.Reg | Ptx.Types.Param | Ptx.Types.Const), _, _, _)
        -> invalid_arg "Machine.Exec: unsupported store space"
      | Isa.Bra t ->
        e.next_pc <- t;
        E_op
      | Isa.Bra_pred (p, sense, target) ->
        let taken = ref 0 in
        iter_active mask w.nlanes (fun lane ->
          let pv = V.to_bool (read_reg w p lane) in
          if pv = sense then taken := !taken lor (1 lsl lane));
        let fall = mask land lnot !taken in
        if !taken = 0 then () (* next_pc already pc+1 *)
        else if fall = 0 then e.next_pc <- target
        else begin
          let reconv = prog.Lower.reconv.(this_pc) in
          e.next_pc <- reconv;
          w.stack <-
            { next_pc = target; reconv_pc = reconv; mask = !taken }
            :: { next_pc = this_pc + 1; reconv_pc = reconv; mask = fall }
            :: w.stack
        end;
        E_op
      | Isa.Bar -> E_barrier
      | Isa.Exit ->
        if List.length w.stack > 1 then
          failwith "Machine.Exec: divergent exit is not supported";
        w.done_ <- true;
        E_exit
    in
    normalize w;
    result
  end

let run_block lctx ~ctaid ~warp_size =
  let _block, warps = make_block lctx ~ctaid ~warp_size in
  let warps = Array.of_list warps in
  let waiting = Array.make (Array.length warps) false in
  let all_done () = Array.for_all is_done warps in
  let progress = ref true in
  while (not (all_done ())) && !progress do
    progress := false;
    Array.iteri
      (fun i w ->
         if (not (is_done w)) && not waiting.(i) then begin
           let stop = ref false in
           while not !stop do
             match step w with
             | E_barrier ->
               waiting.(i) <- true;
               stop := true;
               progress := true
             | E_exit ->
               stop := true;
               progress := true
             | E_op -> progress := true
           done
         end)
      warps;
    let live_blocked = ref true in
    Array.iteri
      (fun i w ->
         if (not (is_done w)) && not waiting.(i) then live_blocked := false)
      warps;
    if !live_blocked then Array.iteri (fun i _ -> waiting.(i) <- false) warps
  done;
  if not (all_done ()) then failwith "Machine.Exec: barrier deadlock"

let run ?sanitize (prog : Lower.t) (l : Gpusim.Launch.t) =
  let lctx =
    { prog
    ; global = l.Gpusim.Launch.memory
    ; params = l.Gpusim.Launch.params
    ; block_size = l.Gpusim.Launch.block_size
    ; num_blocks = l.Gpusim.Launch.num_blocks
    ; san = sanitize
    }
  in
  for ctaid = 0 to l.Gpusim.Launch.num_blocks - 1 do
    run_block lctx ~ctaid ~warp_size:l.Gpusim.Launch.warp_size
  done
