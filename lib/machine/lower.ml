module A = Regalloc.Allocator

type t =
  { name : string
  ; code : Isa.insn array
  ; encoded : int64 array
  ; reconv : int array
  ; params : string array
  ; image : Gpusim.Image.t
  ; alloc : Regalloc.Allocator.t
  ; vector_units : int
  ; scalar_units : int
  ; pred_count : int
  }

(* 64-bit colour counts per file: colours are dense from 0 (colors_used
   = max colour + 1 and the max colour is assigned to some register of
   the kernel), so 1 + max id over the file's C64 registers re-derives
   the count from the allocated kernel alone. *)
let count64 (a : A.t) =
  Ptx.Reg.Set.fold
    (fun r ((n64v, n64s) as acc) ->
       match Ptx.Types.reg_class (Ptx.Reg.ty r) with
       | Ptx.Types.C64 ->
         if A.is_scalar_phys a r then
           (n64v, max n64s (Ptx.Reg.id r - A.scalar_color_base a + 1))
         else (max n64v (Ptx.Reg.id r + 1), n64s)
       | Ptx.Types.C32 | Ptx.Types.Cpred -> acc)
    (Ptx.Kernel.registers a.A.kernel)
    (0, 0)

let map_reg (a : A.t) ~n64v ~n64s (r : Ptx.Reg.t) =
  let ty = Ptx.Reg.ty r in
  let id = Ptx.Reg.id r in
  match Ptx.Types.reg_class ty with
  | Ptx.Types.Cpred -> { Isa.file = Isa.Pred; idx = id; ty }
  | Ptx.Types.C64 ->
    if A.is_scalar_phys a r then
      { Isa.file = Isa.Scalar; idx = 2 * (id - A.scalar_color_base a); ty }
    else { Isa.file = Isa.Vector; idx = 2 * id; ty }
  | Ptx.Types.C32 ->
    if A.is_scalar_phys a r then
      { Isa.file = Isa.Scalar
      ; idx = (2 * n64s) + (id - A.scalar_color_base a)
      ; ty
      }
    else { Isa.file = Isa.Vector; idx = (2 * n64v) + id; ty }

let run (a : A.t) =
  let kernel = a.A.kernel in
  let image = Gpusim.Image.prepare kernel in
  let flow = image.Gpusim.Image.flow in
  let n64v, n64s = count64 a in
  let reg = map_reg a ~n64v ~n64s in
  let params = Array.of_list (List.map fst kernel.Ptx.Kernel.params) in
  let param_index p =
    let rec find i =
      if i >= Array.length params then
        invalid_arg (Printf.sprintf "Machine.Lower: unknown parameter %s" p)
      else if String.equal params.(i) p then i
      else find (i + 1)
    in
    find 0
  in
  let src (op : Ptx.Instr.operand) =
    match op with
    | Ptx.Instr.Oreg r -> Isa.Rsrc (reg r)
    | Ptx.Instr.Oimm i -> Isa.Imm i
    | Ptx.Instr.Ofimm f -> Isa.Fimm f
    | Ptx.Instr.Ospecial s -> Isa.Spec s
    | Ptx.Instr.Oparam p -> Isa.Param (param_index p)
    | Ptx.Instr.Osym s ->
      (* shared symbols resolve to block-relative immediate offsets;
         local symbols stay symbolic constant-bank reads because their
         address is per-thread *)
      (match List.assoc_opt s image.Gpusim.Image.shared_offsets with
       | Some off -> Isa.Imm (Int64.of_int off)
       | None ->
         (match List.assoc_opt s image.Gpusim.Image.local_offsets with
          | Some off -> Isa.Loc off
          | None ->
            invalid_arg (Printf.sprintf "Machine.Lower: unknown symbol %s" s)))
  in
  let addr (ad : Ptx.Instr.address) =
    { Isa.abase = src ad.Ptx.Instr.base; aoffset = ad.Ptx.Instr.offset }
  in
  let target l = Cfg.Flow.target_index flow l in
  let lower_insn (ins : Ptx.Instr.t) =
    match ins with
    | Ptx.Instr.Mov (ty, d, x) -> Isa.Mov (ty, reg d, src x)
    | Ptx.Instr.Binop (op, ty, d, x, y) ->
      Isa.Binop (op, ty, reg d, src x, src y)
    | Ptx.Instr.Mad (ty, d, x, y, z) ->
      Isa.Mad (ty, reg d, src x, src y, src z)
    | Ptx.Instr.Unop (op, ty, d, x) -> Isa.Unop (op, ty, reg d, src x)
    | Ptx.Instr.Cvt (dt, st, d, x) -> Isa.Cvt (dt, st, reg d, src x)
    | Ptx.Instr.Setp (c, ty, d, x, y) ->
      Isa.Setp (c, ty, reg d, src x, src y)
    | Ptx.Instr.Selp (ty, d, x, y, p) ->
      Isa.Selp (ty, reg d, src x, src y, reg p)
    | Ptx.Instr.Ld (sp, ty, d, ad) -> Isa.Ld (sp, ty, reg d, addr ad)
    | Ptx.Instr.St (sp, ty, ad, v) -> Isa.St (sp, ty, addr ad, src v)
    | Ptx.Instr.Bra l -> Isa.Bra (target l)
    | Ptx.Instr.Bra_pred (p, sense, l) ->
      Isa.Bra_pred (reg p, sense, target l)
    | Ptx.Instr.Bar_sync -> Isa.Bar
    | Ptx.Instr.Ret -> Isa.Exit
  in
  let code = Array.map lower_insn flow.Cfg.Flow.instrs in
  (* unit spans per file, from the machine code itself *)
  let span file =
    Array.fold_left
      (fun acc ins ->
         List.fold_left
           (fun acc (r : Isa.reg) ->
              if r.Isa.file = file then max acc (r.Isa.idx + Isa.units r)
              else acc)
           acc
           (Isa.defs ins @ Isa.uses ins))
      0 code
  in
  { name = kernel.Ptx.Kernel.name
  ; code
  ; encoded = Encode.encode_program code
  ; reconv = Array.copy image.Gpusim.Image.reconv
  ; params
  ; image
  ; alloc = a
  ; vector_units = span Isa.Vector
  ; scalar_units = span Isa.Scalar
  ; pred_count = span Isa.Pred
  }

let pp fmt t =
  Format.fprintf fmt "%s: %d insns (%d B), V=%d units, S=%d units, P=%d@."
    t.name (Array.length t.code)
    (Array.length t.encoded * 8)
    t.vector_units t.scalar_units t.pred_count;
  Array.iteri
    (fun i ins -> Format.fprintf fmt "  /*%04d*/ %a@." i Isa.pp_insn ins)
    t.code
