(** Scalarization: decide which virtual registers may live in the
    per-warp scalar file.

    The claim a scalar register embodies is warp-uniformity: one
    architectural copy per warp must be indistinguishable from 32
    per-lane copies. The pass derives that claim from {!Absint}'s
    proven block-level uniformity (block-uniform implies warp-uniform),
    then closes it under the machine's structural constraints — a
    scalar-ALU instruction can only read scalar registers, so a value
    is only scalarized when every register it is computed from is too.

    A virtual register is scalarizable iff every definition of it:
    - is a pure ALU form ([mov]/[binop]/[mad]/[unop]/[cvt]) or a
      parameter load — never a memory load, whose value the analysis
      cannot prove uniform;
    - sits in a block that can never execute with a partially-active
      warp ({!Absint.Analysis.divergent_block} is false), so the
      once-per-warp write is architecturally equivalent to the
      per-lane writes;
    - has every source operand proven uniform at that program point,
      with every non-predicate register source itself scalarizable
      (greatest-fixpoint refinement).

    Predicates are never scalarized: they stay in the predicate file. *)

val run : ?block_size:int -> Ptx.Kernel.t -> Ptx.Reg.Set.t
(** The scalarizable virtual registers of the (pre-allocation) kernel.
    [block_size] (default 128) parameterises the uniformity analysis
    exactly as in {!Absint.Analysis.run}. *)

val predicate : ?block_size:int -> Ptx.Kernel.t -> Ptx.Reg.t -> bool
(** [run] packaged as the membership predicate
    {!Regalloc.Allocator.allocate} expects. *)
