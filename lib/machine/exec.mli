(** Functional executor for lowered machine programs.

    A faithful port of {!Gpusim.Refinterp}'s SIMT machinery (per-warp
    reconvergence stacks, barrier-scheduled round-robin across warps)
    over the machine register files:

    - {b vector} and {b predicate} registers hold one value per lane;
    - {b scalar} registers hold {e one value per warp} — a write
      executes once for the warp, so the executor is only equivalent to
      the per-lane reference semantics when the written value really is
      warp-uniform. Unsound scalarization therefore shows up as a
      memory-level divergence from {!Gpusim.Refinterp}, which is
      exactly what the differential test checks.

    The launch's [kernel] field is ignored; the program carries its own
    code. Geometry, parameters and memory come from the launch, so the
    same {!Gpusim.Launch.t} drives both executors. *)

val run : ?sanitize:Gpusim.Sancheck.runtime -> Lower.t -> Gpusim.Launch.t -> unit
(** Execute every block to completion, mutating the launch's memory —
    the machine-ISA counterpart of {!Gpusim.Refinterp.run}.

    [sanitize] arms the hybrid sanitizer: lowering preserves flat
    instruction indices, so a mask compiled from the PTX kernel applies
    to the machine code unchanged. Violating shared/local lanes are
    suppressed (loads read zero, stores are dropped) and recorded in
    the runtime's counters.
    @raise Failure on a divergent [EXIT] or a barrier deadlock, like
    the reference interpreter. *)
