(* On-disk layout:

     DIR/MANIFEST                       "<kind> <key> <size> <atime>\n" per entry
     DIR/tmp/<pid>.<seq>                in-flight writes (cleaned at open)
     DIR/objects/<kind>/<k2>/<key>      one file per entry, k2 = key[0..1]

   Entry file = header line + payload:

     CRATSTORE1 <md5-hex-of-payload> <payload-bytes>\n<payload>

   The header makes every entry self-verifying, so the manifest is pure
   advice (sizes + LRU recency) and the directory scan at open is the
   ground truth. Access times are a logical clock (a per-store counter),
   not wall time, so LRU order survives marshalling through the manifest
   and never goes backwards. *)

let magic = "CRATSTORE1"
let default_budget = 512 * 1024 * 1024

type entry =
  { ekind : string
  ; ekey : string
  ; size : int  (** whole file size: header + payload *)
  ; mutable atime : int
  ; mutable pins : int
  }

type stats =
  { entries : int
  ; bytes : int
  ; budget : int
  ; hits : int
  ; misses : int
  ; puts : int
  ; evictions : int
  ; corrupt : int
  }

type t =
  { root : string
  ; budget : int
  ; lock : Mutex.t
  ; index : (string * string, entry) Hashtbl.t
  ; mutable total : int
  ; mutable clock : int
  ; mutable tmp_seq : int
  ; mutable dirty : int  (* index changes since the last manifest save *)
  ; mutable closed : bool
  ; mutable hits : int
  ; mutable misses : int
  ; mutable puts : int
  ; mutable evictions : int
  ; mutable corrupt : int
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let check_open t = if t.closed then invalid_arg "Store: store is closed"

(* keys become file names verbatim, so restrict them to a safe alphabet
   and ban a leading '.' (which would admit "." and ".." and let a name
   escape objects/); the engine's keys are hex digests and always pass *)
let check_name what s =
  let ok c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.'
  in
  if s = "" || s.[0] = '.' || not (String.for_all ok s) then
    invalid_arg (Printf.sprintf "Store: invalid %s %S" what s)

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let ( / ) = Filename.concat
let objects_dir t = t.root / "objects"
let tmp_dir t = t.root / "tmp"
let manifest_path t = t.root / "MANIFEST"

let entry_path t ~kind ~key =
  let shard = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  objects_dir t / kind / shard / key

(* ---------- manifest ---------- *)

let write_file_atomic t path contents =
  let tmp = tmp_dir t / Printf.sprintf "%d.m%d" (Unix.getpid ()) t.tmp_seq in
  t.tmp_seq <- t.tmp_seq + 1;
  let oc = open_out_bin tmp in
  output_string oc contents;
  flush oc;
  (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
  close_out oc;
  Sys.rename tmp path

(* caller holds the lock *)
let save_manifest t =
  let b = Buffer.create 4096 in
  Hashtbl.iter
    (fun _ e -> Printf.bprintf b "%s %s %d %d\n" e.ekind e.ekey e.size e.atime)
    t.index;
  write_file_atomic t (manifest_path t) (Buffer.contents b);
  t.dirty <- 0

(* The manifest is advisory (sizes + LRU recency; the directory scan at
   open is the ground truth), so it need not be rewritten — O(entries)
   of disk I/O — on every put. Persist it every so many index changes;
   {!sync}, {!gc} and {!close} always save. *)
let manifest_save_interval = 32

(* caller holds the lock *)
let save_manifest_debounced t =
  if t.dirty >= manifest_save_interval then save_manifest t

let load_manifest path =
  let tbl = Hashtbl.create 64 in
  (if Sys.file_exists path then
     try
       In_channel.with_open_bin path (fun ic ->
         try
           while true do
             match String.split_on_char ' ' (input_line ic) with
             | [ kind; key; _size; atime ] ->
               (match int_of_string_opt atime with
                | Some a -> Hashtbl.replace tbl (kind, key) a
                | None -> ())
             | _ -> ()
           done
         with End_of_file -> ())
     with Sys_error _ -> ());
  tbl

(* ---------- open ---------- *)

let scan t recency =
  let objects = objects_dir t in
  Array.iter
    (fun kind ->
       let kdir = objects / kind in
       if Sys.is_directory kdir then
         Array.iter
           (fun shard ->
              let sdir = kdir / shard in
              if Sys.is_directory sdir then
                Array.iter
                  (fun key ->
                     let path = sdir / key in
                     match Unix.stat path with
                     | { Unix.st_kind = Unix.S_REG; st_size; _ } ->
                       let atime =
                         Option.value ~default:0
                           (Hashtbl.find_opt recency (kind, key))
                       in
                       Hashtbl.replace t.index (kind, key)
                         { ekind = kind; ekey = key; size = st_size; atime
                         ; pins = 0 };
                       t.total <- t.total + st_size;
                       if atime >= t.clock then t.clock <- atime + 1
                     | _ | (exception Unix.Unix_error _) -> ())
                  (Sys.readdir sdir))
           (Sys.readdir kdir))
    (Sys.readdir objects)

let open_ ?(budget = default_budget) root =
  let t =
    { root
    ; budget
    ; lock = Mutex.create ()
    ; index = Hashtbl.create 256
    ; total = 0
    ; clock = 1
    ; tmp_seq = 0
    ; dirty = 0
    ; closed = false
    ; hits = 0
    ; misses = 0
    ; puts = 0
    ; evictions = 0
    ; corrupt = 0
    }
  in
  mkdir_p (objects_dir t);
  mkdir_p (tmp_dir t);
  (* a writer killed mid-write leaves its temp file behind; entries are
     only ever visible post-rename, so stale temps are pure garbage *)
  Array.iter
    (fun f -> try Sys.remove (tmp_dir t / f) with Sys_error _ -> ())
    (Sys.readdir (tmp_dir t));
  scan t (load_manifest (manifest_path t));
  t

let dir t = t.root
let budget t = t.budget
let bytes t = locked t (fun () -> t.total)

(* ---------- read path ---------- *)

(* Read and verify one entry file; caller holds the lock (or a pin). *)
let read_verified path =
  match
    In_channel.with_open_bin path (fun ic ->
      let header = input_line ic in
      match String.split_on_char ' ' header with
      | [ m; md5; len ] when m = magic ->
        (match int_of_string_opt len with
         | Some n when n >= 0 ->
           let payload = really_input_string ic n in
           (* the header line consumed the trailing '\n'; any extra
              bytes mean a torn or overwritten file *)
           if
             In_channel.pos ic = In_channel.length ic
             && Digest.to_hex (Digest.string payload) = md5
           then Some payload
           else None
         | _ -> None)
      | _ -> None)
  with
  | v -> v
  | exception (Sys_error _ | End_of_file) -> None

let drop_entry t e =
  Hashtbl.remove t.index (e.ekind, e.ekey);
  t.total <- t.total - e.size;
  try Sys.remove (entry_path t ~kind:e.ekind ~key:e.ekey)
  with Sys_error _ -> ()

let find_locked t ~kind ~key =
  match Hashtbl.find_opt t.index (kind, key) with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some e ->
    e.atime <- t.clock;
    t.clock <- t.clock + 1;
    Some e

let get_general t ~kind ~key ~pin f =
  check_name "kind" kind;
  check_name "key" key;
  let entry =
    locked t (fun () ->
      check_open t;
      match find_locked t ~kind ~key with
      | None -> None
      | Some e ->
        if pin then e.pins <- e.pins + 1;
        Some e)
  in
  match entry with
  | None -> None
  | Some e ->
    let unpin () =
      if pin then locked t (fun () -> e.pins <- e.pins - 1)
    in
    Fun.protect ~finally:unpin (fun () ->
      match read_verified (entry_path t ~kind ~key) with
      | Some payload ->
        locked t (fun () -> t.hits <- t.hits + 1);
        Some (f payload)
      | None ->
        (* checksum or length mismatch: disk-level corruption. Drop the
           entry so the key reads as a clean miss from now on. *)
        locked t (fun () ->
          t.corrupt <- t.corrupt + 1;
          t.misses <- t.misses + 1;
          match Hashtbl.find_opt t.index (kind, key) with
          | Some e' when e'.pins <= (if pin then 1 else 0) -> drop_entry t e'
          | _ -> ());
        None)

let get t ~kind ~key = get_general t ~kind ~key ~pin:false Fun.id
let with_entry t ~kind ~key f = get_general t ~kind ~key ~pin:true f

let mem t ~kind ~key =
  check_name "kind" kind;
  check_name "key" key;
  locked t (fun () ->
    check_open t;
    Hashtbl.mem t.index (kind, key))

(* ---------- write path, GC ---------- *)

(* caller holds the lock *)
let enforce_budget t =
  if t.total > t.budget then begin
    let victims =
      Hashtbl.fold (fun _ e acc -> if e.pins = 0 then e :: acc else acc) t.index []
      |> List.sort (fun a b -> compare a.atime b.atime)
    in
    let rec go = function
      | _ when t.total <= t.budget -> ()
      | [] -> ()  (* everything left is pinned by an in-progress read *)
      | e :: rest ->
        drop_entry t e;
        t.evictions <- t.evictions + 1;
        go rest
    in
    go victims
  end

let put t ~kind ~key payload =
  check_name "kind" kind;
  check_name "key" key;
  let already =
    locked t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.index (kind, key) with
      | Some e ->
        (* immutable content-addressed entries: refresh recency only *)
        e.atime <- t.clock;
        t.clock <- t.clock + 1;
        true
      | None -> false)
  in
  if not already then begin
    let header =
      Printf.sprintf "%s %s %d\n" magic
        (Digest.to_hex (Digest.string payload))
        (String.length payload)
    in
    let size = String.length header + String.length payload in
    let path = entry_path t ~kind ~key in
    mkdir_p (Filename.dirname path);
    (* write + fsync + rename outside the lock: the tmp name is unique
       (pid + per-store sequence), so concurrent puts never collide and
       readers of other keys are not serialized behind disk I/O. Two
       racing puts of the same key rename identical content-addressed
       files over each other, which is harmless. *)
    let tmp =
      locked t (fun () ->
        let n = t.tmp_seq in
        t.tmp_seq <- t.tmp_seq + 1;
        tmp_dir t / Printf.sprintf "%d.%d" (Unix.getpid ()) n)
    in
    let oc = open_out_bin tmp in
    output_string oc header;
    output_string oc payload;
    flush oc;
    (* fsync before rename: after a crash the entry either exists
       whole or not at all, never as an empty or torn file *)
    (try Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> ());
    close_out oc;
    Sys.rename tmp path;
    locked t (fun () ->
      (match Hashtbl.find_opt t.index (kind, key) with
       | Some e ->
         (* a concurrent put of the same key beat us to the index;
            count the entry's size once and refresh its recency *)
         e.atime <- t.clock
       | None ->
         Hashtbl.replace t.index (kind, key)
           { ekind = kind
           ; ekey = key
           ; size
           ; atime = t.clock
           ; pins = 0
           };
         t.total <- t.total + size);
      t.clock <- t.clock + 1;
      t.puts <- t.puts + 1;
      t.dirty <- t.dirty + 1;
      enforce_budget t;
      save_manifest_debounced t)
  end

let delete t ~kind ~key =
  check_name "kind" kind;
  check_name "key" key;
  locked t (fun () ->
    check_open t;
    match Hashtbl.find_opt t.index (kind, key) with
    | Some e -> drop_entry t e
    | None -> ())

let gc t =
  locked t (fun () ->
    check_open t;
    enforce_budget t;
    save_manifest t)

(* ---------- typed helpers ---------- *)

let put_value t ~kind ~key v = put t ~kind ~key (Marshal.to_string v [])

let get_value t ~kind ~key =
  match get t ~kind ~key with
  | None -> None
  | Some s -> ( try Some (Marshal.from_string s 0) with Failure _ -> None)

(* ---------- observability, lifecycle ---------- *)

let stats t =
  locked t (fun () ->
    { entries = Hashtbl.length t.index
    ; bytes = t.total
    ; budget = t.budget
    ; hits = t.hits
    ; misses = t.misses
    ; puts = t.puts
    ; evictions = t.evictions
    ; corrupt = t.corrupt
    })

let sync t =
  locked t (fun () ->
    check_open t;
    save_manifest t)

let close t =
  locked t (fun () ->
    if not t.closed then begin
      save_manifest t;
      t.closed <- true;
      Hashtbl.reset t.index;
      t.total <- 0
    end)
