(** Crash-safe, content-addressed on-disk store.

    The engine's caches (launch traces, allocations, statistics, sweep
    reports) are keyed by structural content digests, but until now they
    died with the process. This module gives those keys a durable home:
    a directory of immutable entries addressed by [(kind, key)], where
    [kind] namespaces the value family (["trace"], ["stats"], ["alloc"],
    ["report"]) and [key] is the engine's existing hex digest.

    Durability discipline:
    - Writes are atomic: an entry is streamed to [tmp/] inside the store
      directory, fsynced, and [rename]d into place. A writer killed
      mid-write leaves at most a stale temp file, which the next
      {!open_} removes; a reader can never observe a torn entry.
    - Every entry carries a self-describing header (format magic,
      payload MD5, payload length). {!get} verifies both before
      returning; a corrupt entry (disk fault, truncation) is deleted and
      reported as absent rather than returned.
    - A [MANIFEST] file records per-entry sizes and logical access
      times. It is advisory: {!open_} reconciles it against a directory
      scan, so deleting or corrupting the manifest loses only LRU
      recency, never data.

    Budget: the summed on-disk entry bytes are bounded by a byte budget;
    inserting past it evicts least-recently-used entries first. An entry
    pinned by an in-progress {!with_entry} read is never evicted.

    All operations are thread-safe (one internal mutex). One process
    owns a store directory at a time; concurrent opens of the same
    directory are not coordinated. *)

type t

type stats =
  { entries : int
  ; bytes : int  (** summed on-disk entry bytes (headers included) *)
  ; budget : int
  ; hits : int
  ; misses : int
  ; puts : int
  ; evictions : int
  ; corrupt : int  (** entries dropped by checksum/length verification *)
  }

val default_budget : int
(** 512 MiB. *)

val open_ : ?budget:int -> string -> t
(** Open (creating if needed) the store rooted at a directory: remove
    stale temp files, scan the entries on disk, and fold in the
    manifest's recency data. [budget] (default {!default_budget}) is the
    byte budget enforced by {!put}/{!gc}.
    @raise Sys_error when the directory cannot be created. *)

val dir : t -> string
val budget : t -> int
val bytes : t -> int

val put : t -> kind:string -> key:string -> string -> unit
(** Insert a payload under [(kind, key)] via tmp-file + atomic rename,
    then evict LRU entries until the byte budget holds again. Entries
    are immutable: a [put] over an existing key only refreshes its
    recency (content-addressed keys make the payload identical by
    construction). *)

val get : t -> kind:string -> key:string -> string option
(** Fetch and verify a payload; refreshes the entry's recency. Returns
    [None] for absent entries and for entries that fail header
    verification (which are deleted). *)

val mem : t -> kind:string -> key:string -> bool

val with_entry : t -> kind:string -> key:string -> (string -> 'a) -> 'a option
(** Like {!get}, but the entry is pinned for the duration of the
    callback: concurrent {!put}/{!gc} budget enforcement will not evict
    it (or delete its file) until the callback returns. *)

val delete : t -> kind:string -> key:string -> unit

val gc : t -> unit
(** Evict least-recently-used unpinned entries until the byte budget
    holds, then persist the manifest. *)

val put_value : t -> kind:string -> key:string -> 'a -> unit
(** [put] of [Marshal.to_string v]. The value must be closure-free. *)

val get_value : t -> kind:string -> key:string -> 'a option
(** [get] plus unmarshalling. Type-unsafe like [Marshal.from_string]:
    only read a [(kind, key)] with the type that was written there —
    content-addressed keys make cross-type aliasing vanishingly
    unlikely, and the header checksum rejects torn payloads. Returns
    [None] when absent or when unmarshalling fails. *)

val stats : t -> stats
val sync : t -> unit
(** Persist the manifest now. {!gc} and {!close} always persist it;
    {!put} persists it every few dozen insertions (it is advisory —
    sizes and LRU recency — so rewriting it on every put would only
    serialize the write-through hot path behind O(entries) disk I/O). *)

val close : t -> unit
(** [sync] and drop the in-memory index; further use raises
    [Invalid_argument]. *)
