(** Per-side symbolic execution of a PTX kernel.

    Executes one kernel from a segment start (entry or a loop-header
    cutpoint) to the next {e event} — an observable store, a barrier, a
    conditional branch, arrival at a cutpoint, or return — updating a
    symbolic register file and (on allocated kernels) a spill-slot
    environment. The co-execution driver ({!Check}) advances two sides
    in lockstep and matches their event streams. *)

module RMap : Map.S with type key = int

type slot_key =
  | Lslot of int  (** byte offset inside the local spill stack *)
  | Sslot of int  (** byte offset inside the per-thread shared sub-stack *)

module SMap : Map.S with type key = slot_key

type side =
  { kernel : Ptx.Kernel.t
  ; flow : Cfg.Flow.t
  ; an : Absint.Analysis.t
  ; live : Cfg.Liveness.t
  ; shared_off : (string * int) list
  ; local_off : (string * int) list
  ; param_tag : (string * bool) list
  ; headers : (int * string) list  (** loop-header instr index -> label *)
  ; spill : spill_ctx option  (** present when the kernel carries spill decls *)
  }

and spill_ctx =
  { local_bytes : int  (** extent of the [SpillStack] decl, 0 if absent *)
  ; shared_stride : int  (** per-thread bytes of [SpillShm], 0 if absent *)
  }

exception Unsupported of string

val make_side : ?block_size:int -> ?num_blocks:int -> Ptx.Kernel.t -> side
(** @raise Unsupported when a loop header carries no label (cutpoints
    could not be aligned across sides). *)

val reg_key : Ptx.Reg.t -> int
(** Storage key of a register — width class and id, exactly the aliasing
    the interpreter's register files implement. *)

type state =
  { regs : Term.t RMap.t
  ; slots : Term.t SMap.t
  ; lhazy : bool  (** an unprovable local store may have clobbered slots *)
  ; shazy : bool  (** likewise for the shared sub-stack *)
  ; pc : int
  }

val entry_state : state

type store_ev =
  { sspace : Ptx.Types.space
  ; sty : Ptx.Types.scalar
  ; saddr : Term.t
  ; saff : Absint.Dom.aff
  ; ssing : int option
  ; svalue : Term.t
  ; vaff : Absint.Dom.aff
  ; vsing : int option
  ; may_alias_spill : bool
  }

type branch_ev =
  { cond : Term.t
  ; cond_sing : int option
  ; sense : bool
  ; label : string
  ; target_pc : int
  ; fall_pc : int
  ; decided : bool option
  }

type event =
  | Ev_store of store_ev
  | Ev_barrier
  | Ev_branch of branch_ev
  | Ev_cut of string  (** arrived at the loop header with this label *)
  | Ev_ret
  | Ev_stuck of string

val advance :
  side ->
  version:int ->
  fuel:int ref ->
  fresh:(Ptx.Types.scalar -> Term.t) ->
  first:bool ->
  state ->
  state * event
(** Run from [state.pc] to the next event. [first] suppresses the
    cutpoint check at the segment's own starting pc. After [Ev_store] /
    [Ev_barrier] the returned state's [pc] is already past the
    instruction; after [Ev_branch] the driver picks [target_pc] or
    [fall_pc]; after [Ev_cut] the pc is the header itself. *)

val slot_key_of : Regalloc.Spill.placement -> slot_key

val havoc_slots :
  (slot_key -> Term.t) -> Regalloc.Spill.placement list -> Term.t SMap.t
(** Fresh-variable slot environment over the recorded placements. *)
