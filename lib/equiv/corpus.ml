open Ptx

type subject =
  | Opt_pair of
      { block_size : int
      ; left : Kernel.t
      ; right : Kernel.t
      }
  | Allocation of Regalloc.Allocator.t

type case =
  { label : string
  ; expect : string
  ; subject : subject
  }

let r id ty = Reg.make id ty
let i x = Kernel.I x

(* E201 on the optimisation edge: a copy of [a] is propagated into the
   store even though [a] is redefined between the copy and the use. The
   correct kernel writes the pre-clobber value 1; the miscompile writes
   the clobbering value 2. *)
let copyprop_clobber () =
  let a = r 0 Types.U32
  and b = r 1 Types.U32
  and out = r 2 Types.U64 in
  let body store_src =
    [| i (Instr.Mov (Types.U32, a, Instr.Oimm 1L))
     ; i (Instr.Mov (Types.U32, b, Instr.Oreg a))
     ; i (Instr.Mov (Types.U32, a, Instr.Oimm 2L))
     ; i
         (Instr.Ld
            ( Types.Param, Types.U64, out
            , { Instr.base = Instr.Oparam "out"; offset = 0 } ))
     ; i
         (Instr.St
            ( Types.Global, Types.U32
            , { Instr.base = Instr.Oreg out; offset = 0 }
            , Instr.Oreg store_src ))
     ; i Instr.Ret
    |]
  in
  let mk name store_src =
    { Kernel.name; params = [ ("out", Types.U64) ]; decls = []
    ; body = body store_src
    }
  in
  Opt_pair
    { block_size = 64
    ; left = mk "copyprop_clobber" b
    ; right = mk "copyprop_clobber" a
    }

(* E201 on the allocation edge: two spilled 32-bit ranges are placed on
   the same local stack slot while both are live, so the reload of the
   first spilled value observes the second. The forged record claims
   the allocation is the identity plus those two spills. *)
let spill_clash () =
  let v0 = r 0 Types.U32
  and v1 = r 1 Types.U32
  and out = r 3 Types.U64 in
  let original =
    { Kernel.name = "spill_clash"
    ; params = [ ("out", Types.U64) ]
    ; decls = []
    ; body =
        [| i (Instr.Mov (Types.U32, v0, Instr.Oimm 11L))
         ; i (Instr.Mov (Types.U32, v1, Instr.Oimm 22L))
         ; i
             (Instr.Ld
                ( Types.Param, Types.U64, out
                , { Instr.base = Instr.Oparam "out"; offset = 0 } ))
         ; i
             (Instr.St
                ( Types.Global, Types.U32
                , { Instr.base = Instr.Oreg out; offset = 0 }
                , Instr.Oreg v0 ))
         ; i
             (Instr.St
                ( Types.Global, Types.U32
                , { Instr.base = Instr.Oreg out; offset = 4 }
                , Instr.Oreg v1 ))
         ; i Instr.Ret
        |]
    }
  in
  let rb = r 10 Types.U64
  and t0 = r 11 Types.U32
  and t1 = r 12 Types.U32
  and u0 = r 13 Types.U32
  and u1 = r 14 Types.U32 in
  let sym = Regalloc.Spill.local_stack_sym in
  let allocated =
    { Kernel.name = "spill_clash"
    ; params = [ ("out", Types.U64) ]
    ; decls =
        [ { Kernel.dname = sym
          ; dspace = Types.Local
          ; delem = Types.B8
          ; dcount = 8
          ; dalign = 8
          }
        ]
    ; body =
        [| i (Instr.Mov (Types.U64, rb, Instr.Osym sym))
         ; i (Instr.Mov (Types.U32, t0, Instr.Oimm 11L))
         ; i
             (Instr.St
                ( Types.Local, Types.U32
                , { Instr.base = Instr.Oreg rb; offset = 0 }
                , Instr.Oreg t0 ))
         ; i (Instr.Mov (Types.U32, t1, Instr.Oimm 22L))
         ; i
             (* the clash: v1 spills onto v0's still-live slot *)
             (Instr.St
                ( Types.Local, Types.U32
                , { Instr.base = Instr.Oreg rb; offset = 0 }
                , Instr.Oreg t1 ))
         ; i
             (Instr.Ld
                ( Types.Param, Types.U64, out
                , { Instr.base = Instr.Oparam "out"; offset = 0 } ))
         ; i
             (Instr.Ld
                ( Types.Local, Types.U32, u0
                , { Instr.base = Instr.Oreg rb; offset = 0 } ))
         ; i
             (Instr.St
                ( Types.Global, Types.U32
                , { Instr.base = Instr.Oreg out; offset = 0 }
                , Instr.Oreg u0 ))
         ; i
             (Instr.Ld
                ( Types.Local, Types.U32, u1
                , { Instr.base = Instr.Oreg rb; offset = 0 } ))
         ; i
             (Instr.St
                ( Types.Global, Types.U32
                , { Instr.base = Instr.Oreg out; offset = 4 }
                , Instr.Oreg u1 ))
         ; i Instr.Ret
        |]
    }
  in
  let assignment =
    List.fold_left
      (fun acc v -> Reg.Map.add v v acc)
      Reg.Map.empty [ out ]
  in
  Allocation
    { Regalloc.Allocator.kernel = allocated
    ; original
    ; virtual_kernel = allocated
    ; assignment
    ; block_size = 64
    ; reg_limit = 4
    ; units_used = 4
    ; pred_used = 0
    ; scalar_limit = 0
    ; scalar_units_used = 0
    ; scalarized = 0
    ; spilled =
        [ { Regalloc.Spill.reg = v0; space = Types.Local; offset = 0 }
        ; { Regalloc.Spill.reg = v1; space = Types.Local; offset = 0 }
        ]
    ; stats = { num_local = 2; num_shared = 0; num_other = 0; num_remat = 0 }
    ; weighted_local = 2.
    ; weighted_shared = 0.
    ; spill_local_bytes = 8
    ; spill_shared_bytes_per_block = 0
    ; rounds = 1
    }

let cases () =
  [ { label = "copyprop-clobber"
    ; expect = "E201"
    ; subject = copyprop_clobber ()
    }
  ; { label = "spill-clash"; expect = "E201"; subject = spill_clash () }
  ]

let outcome_of c =
  match c.subject with
  | Opt_pair { block_size; left; right } ->
    Check.check_opt ~block_size ~left ~right ()
  | Allocation a -> Check.check_alloc a

let runners c =
  match c.subject with
  | Opt_pair { left; right; _ } ->
    (Witness.Run_kernel left, Witness.Run_kernel right)
  | Allocation a ->
    ( Witness.Run_kernel a.Regalloc.Allocator.original
    , Witness.Run_kernel a.Regalloc.Allocator.kernel )
