(** Concrete counterexample search and replay.

    A refutation is only ever reported with a witness input on which the
    two sides of the edge {e demonstrably} diverge under the reference
    interpreter (or the machine executor, for the lowering edge): the
    static mismatch seeds a differential fuzzing pass, and a failed
    search downgrades the verdict to unknown rather than refuted. *)

type runner =
  | Run_kernel of Ptx.Kernel.t
  | Run_machine of Machine.Lower.t

type t =
  { block_size : int
  ; num_blocks : int
  ; params : (string * Gpusim.Value.t) list
  ; mem_words : (int64 * int64) list
      (** initial-memory seeding: (address, 32-bit pattern) pairs *)
  ; descr : string  (** first observed divergence *)
  }

val kernel_of : runner -> Ptx.Kernel.t

val search :
  left:runner ->
  right:runner ->
  block_size:int ->
  ?num_blocks:int ->
  ?trials:int ->
  ?salt:int ->
  params_ty:(string * Ptx.Types.scalar) list ->
  seeds:(string * int64 list) list ->
  unit ->
  t option
(** Differential search over sampled launches; integer parameters draw
    from a boundary pool extended with path-constraint [seeds], 64-bit
    parameters become distinct buffer bases with seeded contents.
    Deterministic for a given [salt]. *)

val replay : left:runner -> right:runner -> t -> string option
(** Re-run both sides on exactly the witness input; [Some descr] when
    the final global memories (below the local-heap base) differ. *)

val pp_params : Format.formatter -> (string * Gpusim.Value.t) list -> unit
