(** Symbolic translation validation of the three transformation edges.

    Each check co-executes the two sides of an edge in lockstep over the
    {!Term} language, cutting at loop headers ({!Sym.side.headers}) with
    havoc'd symbolic stores tied together by the edge's register
    correspondence — identity on live ranges for the optimisation edge,
    the allocator's recorded [assignment] plus spill-slot environment for
    the allocation edge, and the machine register map (per-pc, no
    cutpoints needed: lowering is 1:1) for the lowering edge.

    A static match proves the edge ([Proved]); any static failure falls
    back to path-constraint-seeded differential fuzzing, and only a
    concretely replayed divergence refutes ([Refuted]) — everything else
    is [Unknown], never a false refutation. *)

type verdict =
  | Proved
  | Refuted of Witness.t
  | Unknown of string

type outcome =
  { edge : string  (** ["opt"], ["alloc"] or ["lower"] *)
  ; kernel : string
  ; verdict : verdict
  ; cuts : int  (** cutpoints processed (entry included) *)
  ; paths : int  (** symbolic paths explored *)
  ; obligations : int  (** term-equality obligations discharged *)
  ; detail : string  (** static failure description, [""] when proved *)
  }

val check_opt :
  block_size:int ->
  ?num_blocks:int ->
  left:Ptx.Kernel.t ->
  right:Ptx.Kernel.t ->
  unit ->
  outcome
(** Pre-opt vs post-opt kernel (the {!Ptxopt.Pipeline} edge). *)

val check_alloc : Regalloc.Allocator.t -> outcome
(** [original] vs [kernel]: colouring renames and spill code, matched
    modulo [assignment] and the recorded spill placements. *)

val check_lower : Machine.Lower.t -> outcome
(** Allocated PTX vs lowered machine code, matched per-pc through the
    inverse of {!Machine.Lower.map_reg}. *)

val pp_outcome : Format.formatter -> outcome -> unit
