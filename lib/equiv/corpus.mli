(** Deliberate miscompilations that the validator must refute.

    Each case is a transformation edge whose right side is wrong in a
    way real pipeline bugs are wrong — a copy propagated across a
    clobber of its source, two spilled ranges folded onto one stack
    slot — and each must come back [Refuted] with a concrete witness
    that replays as a genuine divergence. *)

type subject =
  | Opt_pair of
      { block_size : int
      ; left : Ptx.Kernel.t
      ; right : Ptx.Kernel.t
      }
  | Allocation of Regalloc.Allocator.t

type case =
  { label : string
  ; expect : string  (** E-code the validator must report, e.g. ["E201"] *)
  ; subject : subject
  }

val cases : unit -> case list

val outcome_of : case -> Check.outcome

val runners : case -> Witness.runner * Witness.runner
(** The two concrete executables of the case's edge, for replay. *)
