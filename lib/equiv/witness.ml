open Ptx
module V = Gpusim.Value

type runner =
  | Run_kernel of Kernel.t
  | Run_machine of Machine.Lower.t

type t =
  { block_size : int
  ; num_blocks : int
  ; params : (string * V.t) list
  ; mem_words : (int64 * int64) list
  ; descr : string
  }

(* splitmix64: deterministic sampling, independent of any global state *)
let mix z =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix2 b c =
  mix (Int64.add (Int64.of_int b) (Int64.mul 1000003L (Int64.of_int c)))

let mix3 a b c = mix (Int64.logxor (mix (Int64.of_int a)) (mix2 b c))

let kernel_of = function
  | Run_kernel k -> k
  | Run_machine m -> m.Machine.Lower.image.Gpusim.Image.kernel

let exec runner launch =
  match runner with
  | Run_kernel _ -> Gpusim.Refinterp.run launch
  | Run_machine m -> Machine.Exec.run m launch

(* Observable result: written, non-zero global words below the
   per-thread local heap (local memory is backing store for spills and
   frames — not part of the kernel's observable output — and shared
   segments are per-block scratch discarded at block end). *)
let final_words mem =
  Gpusim.Memory.fold
    (fun addr v acc ->
      if Int64.unsigned_compare addr Gpusim.Image.local_base < 0 then
        let bits = V.to_bits v in
        if bits <> 0L then (addr, bits) :: acc else acc
      else acc)
    mem []
  |> List.sort compare

let run_side runner ~block_size ~num_blocks ~params mem =
  let launch =
    Gpusim.Launch.make ~params ~kernel:(kernel_of runner) ~block_size
      ~num_blocks mem
  in
  match exec runner launch with
  | () -> Ok (final_words mem)
  | exception e -> Error (Printexc.to_string e)

let diff_words l r =
  let rec go l r =
    match (l, r) with
    | [], [] -> None
    | (a, x) :: _, [] -> Some (Printf.sprintf "left wrote [%Ld]=%Ld, right did not" a x)
    | [], (a, x) :: _ -> Some (Printf.sprintf "right wrote [%Ld]=%Ld, left did not" a x)
    | (a1, x1) :: tl1, (a2, x2) :: tl2 ->
      if a1 = a2 && Int64.equal x1 x2 then go tl1 tl2
      else if a1 = a2 then
        Some (Printf.sprintf "[%Ld]: left %Ld, right %Ld" a1 x1 x2)
      else if Int64.unsigned_compare a1 a2 < 0 then
        Some (Printf.sprintf "left wrote [%Ld]=%Ld, right did not" a1 x1)
      else Some (Printf.sprintf "right wrote [%Ld]=%Ld, left did not" a2 x2)
  in
  go l r

let try_input ~left ~right ~block_size ~num_blocks ~params ~mem_words =
  let mem_of () =
    let m = Gpusim.Memory.create () in
    List.iter (fun (a, bits) -> Gpusim.Memory.store_bits m a ~isf:false bits)
      mem_words;
    m
  in
  match
    ( run_side left ~block_size ~num_blocks ~params (mem_of ())
    , run_side right ~block_size ~num_blocks ~params (mem_of ()) )
  with
  | Ok wl, Ok wr -> diff_words wl wr
  | _ -> None (* a raising execution is not a semantic divergence *)

let int_pool ~block_size seeds =
  seeds
  @ [ 0L; 1L; 2L; 3L; 4L; 7L; 8L; 15L; 16L; 31L; 32L; 33L; 63L; 64L; 100L
    ; 127L; 128L
    ; Int64.of_int block_size
    ; Int64.of_int (block_size - 1)
    ]

let float_pool = [ 0.0; 1.0; 2.0; -1.0; 0.5; 3.25 ]

let buffer_words = 256

let sample_input ~salt ~trial ~block_size ~params_ty ~seeds =
  let params = ref [] and mem_words = ref [] in
  List.iteri
    (fun j (p, ty) ->
      let v =
        match ty with
        | Types.U64 | Types.B64 | Types.S64 ->
          (* treat as a buffer pointer: distinct bases, seeded contents *)
          let base = Int64.of_int (0x10000 + (j * buffer_words * 8 * 2)) in
          for w = 0 to buffer_words - 1 do
            let bits =
              Int64.logand (mix3 salt trial ((j * buffer_words) + w))
                0xFFFFFFFFL
            in
            mem_words :=
              (Int64.add base (Int64.of_int (w * 4)), bits) :: !mem_words
          done;
          V.I base
        | ty when Types.is_float ty ->
          let pool = float_pool in
          let n = List.length pool in
          V.F (List.nth pool ((trial + j) mod n))
        | _ ->
          let pool =
            int_pool ~block_size
              (match List.assoc_opt p seeds with
               | Some s -> s
               | None -> [])
          in
          let n = List.length pool in
          if trial < 2 * n then V.I (List.nth pool ((trial + (j * 5)) mod n))
          else V.I (Int64.logand (mix3 salt trial j) 0x1FFL)
      in
      params := (p, v) :: !params)
    params_ty;
  (List.rev !params, List.rev !mem_words)

let search ~left ~right ~block_size ?(num_blocks = 1) ?(trials = 48)
    ?(salt = 0) ~params_ty ~seeds () =
  let rec go trial =
    if trial >= trials then None
    else
      let params, mem_words =
        sample_input ~salt ~trial ~block_size ~params_ty ~seeds
      in
      match
        try_input ~left ~right ~block_size ~num_blocks ~params ~mem_words
      with
      | Some descr ->
        Some { block_size; num_blocks; params; mem_words; descr }
      | None -> go (trial + 1)
  in
  go 0

let replay ~left ~right (w : t) =
  try_input ~left ~right ~block_size:w.block_size ~num_blocks:w.num_blocks
    ~params:w.params ~mem_words:w.mem_words

let pp_params fmt params =
  Format.fprintf fmt "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       (fun f (p, v) -> Format.fprintf f "%s=%a" p V.pp v))
    params
