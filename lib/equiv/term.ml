open Ptx
module V = Gpusim.Value
module Dom = Absint.Dom

type lspace =
  | LGlobal
  | LShared
  | LLocal

type t =
  | Cst of int64 * bool
  | Var of int * Types.scalar
  | Special of Reg.special
  | ParamV of string * bool
  | SymLocal of string
  | Bin of Instr.binop * Types.scalar * t * t
  | Un of Instr.unop * Types.scalar * t
  | MadT of Types.scalar * t * t * t
  | CmpT of Instr.cmp * Types.scalar * t * t
  | SelT of Types.scalar * t * t * t
  | CvtT of Types.scalar * Types.scalar * t
  | Trunc of Types.scalar * t
  | Load of load

and load =
  { lsp : lspace
  ; lty : Types.scalar
  ; ver : int
  ; addr : t
  ; laff : Dom.aff
  ; lsing : int option
  }

let rec tag = function
  | Cst (_, f) -> f
  | Var (_, ty) -> Types.is_float ty
  | Special _ -> false
  | ParamV (_, f) -> f
  | SymLocal _ -> false
  | Bin (_, ty, _, _) | Un (_, ty, _) | MadT (ty, _, _, _) -> Types.is_float ty
  | CmpT _ -> false
  | SelT (ty, _, _, _) -> Types.is_float ty
  | CvtT (dst, _, _) -> Types.is_float dst
  | Trunc (ty, t) ->
    (* [of_bits ty] after truncation: tagged per the target type, except
       that truncation to a float type of a float value keeps the tag
       (it is one anyway) — so simply the target's tag. *)
    ignore (tag t);
    Types.is_float ty
  | Load { lty; _ } -> Types.is_float lty

let cst i = Cst (i, false)
let cst_int i = Cst (Int64.of_int i, false)
let fcst f = Cst (Int64.bits_of_float f, true)

(* Value footprint: what we statically know about the patterns a term can
   take, used to collapse no-op truncations. [Fp_ty ty] means "pattern is
   a fixpoint of [truncate_bits ty ~isf:false]" (every register write and
   memory store truncates, so stored patterns satisfy their type's
   invariant). *)
type footprint =
  | Fp_ty of Types.scalar
  | Fp_bool  (** 0 or 1 *)
  | Fp_nonneg31  (** non-negative, < 2^31 (launch specials) *)
  | Fp_any

let footprint = function
  | Cst _ -> Fp_any (* constants are folded directly, never queried *)
  | Var (_, ty) -> Fp_ty ty
  | Special _ -> Fp_nonneg31
  | ParamV _ -> Fp_any
  | SymLocal _ -> Fp_any
  | Bin (_, ty, _, _) | Un (_, ty, _) | MadT (ty, _, _, _) -> Fp_ty ty
  | CmpT _ -> Fp_bool
  | SelT (ty, _, _, _) -> Fp_ty ty
  | CvtT (dst, _, _) -> Fp_ty dst
  | Trunc (ty, _) -> Fp_ty ty
  | Load { lty; _ } -> Fp_ty lty

let int_width = function
  | Types.U16 | Types.S16 | Types.B16 -> 2
  | Types.U32 | Types.S32 | Types.B32 -> 4
  | Types.U64 | Types.S64 | Types.B64 -> 8
  | Types.B8 -> 1
  | Types.Pred -> 1
  | Types.F32 | Types.F64 -> 8

(* Would [truncate_bits ty] provably leave the term's pattern (and tag)
   unchanged? *)
let fits ty t =
  match ty with
  | Types.U64 | Types.S64 | Types.B64 -> not (tag t)
  | Types.F64 -> tag t
  | Types.F32 -> footprint t = Fp_ty Types.F32
  | Types.Pred -> (
    match footprint t with
    | Fp_bool | Fp_ty Types.Pred -> true
    | _ -> false)
  | _ -> (
    (* sub-64-bit integer target *)
    let w = int_width ty and signed = Types.is_signed ty in
    match footprint t with
    | Fp_bool -> true
    | Fp_ty Types.Pred -> true
    | Fp_nonneg31 -> w >= 4
    | Fp_ty ty' when (not (Types.is_float ty')) && ty' <> Types.Pred ->
      let w' = int_width ty' and signed' = Types.is_signed ty' in
      if signed then (signed' && w' <= w) || ((not signed') && w' < w)
      else (not signed') && w' <= w
    | _ -> false)

let mk_trunc ty t =
  match t with
  | Cst (bits, f) -> Cst (V.truncate_bits ty ~isf:f bits, Types.is_float ty)
  | _ ->
    if fits ty t && Types.is_float ty = tag t then t
    else if fits ty t then Trunc (ty, t) (* pattern same, tag flips *)
    else Trunc (ty, t)

let mk_bin op ty a b =
  match (a, b) with
  | Cst (x, _), Cst (y, _) when not (Types.is_float ty) ->
    Cst (V.binop_bits op ty x y, false)
  | Cst (x, _), Cst (y, _) -> Cst (V.binop_bits op ty x y, true)
  | _, Cst (0L, false)
    when op = Instr.Add && (ty = Types.U64 || ty = Types.S64 || ty = Types.B64)
         && not (tag a) ->
    (* x + 0 over a 64-bit ring is the identity on patterns *)
    a
  | _ -> Bin (op, ty, a, b)

let mk_un op ty a =
  match a with
  | Cst (x, _) -> Cst (V.unop_bits op ty x, Types.is_float ty)
  | _ -> Un (op, ty, a)

let mk_mad ty a b c =
  match (a, b, c) with
  | Cst (x, _), Cst (y, _), Cst (z, _) ->
    Cst (V.mad_bits ty x y z, Types.is_float ty)
  | _ -> MadT (ty, a, b, c)

let mk_cmp cmp ty a b =
  match (a, b) with
  | Cst (x, _), Cst (y, _) ->
    Cst ((if V.compare_bits cmp ty x y then 1L else 0L), false)
  | _ -> CmpT (cmp, ty, a, b)

let mk_sel ty c a b =
  match c with
  | Cst (bits, f) ->
    if V.to_bool_bits ~isf:f bits then mk_trunc ty a else mk_trunc ty b
  | _ -> SelT (ty, c, mk_trunc ty a, mk_trunc ty b)

let mk_cvt ~dst ~src t =
  match t with
  | Cst (bits, _) -> Cst (V.convert_bits ~dst ~src bits, Types.is_float dst)
  | _ -> CvtT (dst, src, t)

let to_i64 t =
  if not (tag t) then Some t
  else
    match t with
    | Cst (bits, true) -> Some (Cst (Int64.of_float (Int64.float_of_bits bits), false))
    | _ -> None

let decided = function
  | Cst (bits, f) -> Some (V.to_bool_bits ~isf:f bits)
  | _ -> None

(* A local-frame symbol base denotes a different absolute address on each
   side once spill decls change the frame size, so exact-affine equality
   of two [Sym]-based forms is only meaningful relative to the symbol
   base — which is precisely the reading both Local-space addresses and
   Shared-space addresses need (shared offsets of common symbols agree
   across sides because new decls are appended). Callers degrade affine
   views that mix spaces before they reach a term. *)
let aff_exact_equal (a : Dom.aff) (b : Dom.aff) =
  a.Dom.exact && b.Dom.exact && Dom.aff_equal a b

let rec equal t1 t2 =
  match (t1, t2) with
  | Cst (a, fa), Cst (b, fb) -> Int64.equal a b && fa = fb
  | Var (i, _), Var (j, _) -> i = j
  | Special a, Special b -> a = b
  | ParamV (a, fa), ParamV (b, fb) -> String.equal a b && fa = fb
  | SymLocal a, SymLocal b -> String.equal a b
  | Bin (o1, ty1, a1, b1), Bin (o2, ty2, a2, b2) ->
    o1 = o2 && Types.equal_scalar ty1 ty2 && equal a1 a2 && equal b1 b2
  | Un (o1, ty1, a1), Un (o2, ty2, a2) ->
    o1 = o2 && Types.equal_scalar ty1 ty2 && equal a1 a2
  | MadT (ty1, a1, b1, c1), MadT (ty2, a2, b2, c2) ->
    Types.equal_scalar ty1 ty2 && equal a1 a2 && equal b1 b2 && equal c1 c2
  | CmpT (c1, ty1, a1, b1), CmpT (c2, ty2, a2, b2) ->
    c1 = c2 && Types.equal_scalar ty1 ty2 && equal a1 a2 && equal b1 b2
  | SelT (ty1, c1, a1, b1), SelT (ty2, c2, a2, b2) ->
    Types.equal_scalar ty1 ty2 && equal c1 c2 && equal a1 a2 && equal b1 b2
  | CvtT (d1, s1, a1), CvtT (d2, s2, a2) ->
    Types.equal_scalar d1 d2 && Types.equal_scalar s1 s2 && equal a1 a2
  | Trunc (ty1, a1), Trunc (ty2, a2) ->
    Types.equal_scalar ty1 ty2 && equal a1 a2
  | Load l1, Load l2 ->
    l1.lsp = l2.lsp
    && Types.equal_scalar l1.lty l2.lty
    && l1.ver = l2.ver
    && (equal l1.addr l2.addr
       || aff_exact_equal l1.laff l2.laff
       || match (l1.lsing, l2.lsing) with
          | Some a, Some b -> a = b
          | _ -> false)
  | _ -> false

let vars_of t =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec go = function
    | Var (i, ty) ->
      if not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        acc := (i, ty) :: !acc
      end
    | Cst _ | Special _ | ParamV _ | SymLocal _ -> ()
    | Bin (_, _, a, b) | CmpT (_, _, a, b) ->
      go a;
      go b
    | Un (_, _, a) | CvtT (_, _, a) | Trunc (_, a) -> go a
    | MadT (_, a, b, c) | SelT (_, a, b, c) ->
      go a;
      go b;
      go c
    | Load { addr; _ } -> go addr
  in
  go t;
  List.rev !acc

let lspace_to_string = function
  | LGlobal -> "global"
  | LShared -> "shared"
  | LLocal -> "local"

let rec pp fmt = function
  | Cst (bits, false) -> Format.fprintf fmt "%Ld" bits
  | Cst (bits, true) -> Format.fprintf fmt "%gf" (Int64.float_of_bits bits)
  | Var (i, ty) -> Format.fprintf fmt "h%d:%s" i (Types.scalar_to_string ty)
  | Special s -> Format.fprintf fmt "%%%s" (Reg.special_to_string s)
  | ParamV (p, _) -> Format.fprintf fmt "param(%s)" p
  | SymLocal s -> Format.fprintf fmt "&local(%s)" s
  | Bin (op, ty, a, b) ->
    Format.fprintf fmt "(%s.%s %a %a)" (Instr.binop_to_string op)
      (Types.scalar_to_string ty) pp a pp b
  | Un (op, ty, a) ->
    Format.fprintf fmt "(%s.%s %a)" (Instr.unop_to_string op)
      (Types.scalar_to_string ty) pp a
  | MadT (ty, a, b, c) ->
    Format.fprintf fmt "(mad.%s %a %a %a)" (Types.scalar_to_string ty) pp a
      pp b pp c
  | CmpT (c, ty, a, b) ->
    Format.fprintf fmt "(setp.%s.%s %a %a)" (Instr.cmp_to_string c)
      (Types.scalar_to_string ty) pp a pp b
  | SelT (ty, c, a, b) ->
    Format.fprintf fmt "(selp.%s %a %a %a)" (Types.scalar_to_string ty) pp c
      pp a pp b
  | CvtT (dst, src, a) ->
    Format.fprintf fmt "(cvt.%s.%s %a)" (Types.scalar_to_string dst)
      (Types.scalar_to_string src) pp a
  | Trunc (ty, a) ->
    Format.fprintf fmt "(trunc.%s %a)" (Types.scalar_to_string ty) pp a
  | Load { lsp; lty; ver; addr; _ } ->
    Format.fprintf fmt "mem%d.%s.%s[%a]" ver (lspace_to_string lsp)
      (Types.scalar_to_string lty) pp addr

let to_string t = Format.asprintf "%a" pp t
