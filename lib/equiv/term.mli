(** Shared bitvector term language for the translation validator.

    A term denotes the 64-bit {e bit pattern} a register or memory slot
    holds in [Refinterp]'s value model, together with a statically-known
    float tag (the [F]/[I] boxing of {!Gpusim.Value}). Terms range over
    kernel parameters, the launch specials ([%tid.x], [%ctaid.x], ...),
    uninterpreted per-thread local-frame bases, havoc variables
    introduced at loop cutpoints, and versioned initial-memory loads.

    Tags are static by construction: registers carry the float tag of
    their declared class, parameters that of their declared type, and a
    [Load] term denotes the pattern {e after} truncation to the load
    type — so the only tag-sensitive operation of the interpreter
    (predicate truncation of an [F]-tagged value) never meets an
    unknown tag. *)

type lspace =
  | LGlobal  (** global heap (also [Const], which reads the same memory) *)
  | LShared  (** block-shared segment, addresses segment-relative *)
  | LLocal   (** per-thread local frame, addresses relative to the naive
                 symbol base ([SymLocal]) *)

type t =
  | Cst of int64 * bool  (** bit pattern + float tag *)
  | Var of int * Ptx.Types.scalar
      (** cutpoint havoc variable; the scalar is the register type whose
          store invariant the variable inherits *)
  | Special of Ptx.Reg.special
  | ParamV of string * bool
      (** raw parameter pattern; tag from the declared parameter type *)
  | SymLocal of string
      (** naive (pre-remap) base address of a local symbol for the
          current thread — uninterpreted, identical across both sides *)
  | Bin of Ptx.Instr.binop * Ptx.Types.scalar * t * t
  | Un of Ptx.Instr.unop * Ptx.Types.scalar * t
  | MadT of Ptx.Types.scalar * t * t * t
  | CmpT of Ptx.Instr.cmp * Ptx.Types.scalar * t * t  (** 1 or 0 *)
  | SelT of Ptx.Types.scalar * t * t * t  (** selp: cond, then, else *)
  | CvtT of Ptx.Types.scalar * Ptx.Types.scalar * t  (** dst, src *)
  | Trunc of Ptx.Types.scalar * t
  | Load of load

and load =
  { lsp : lspace
  ; lty : Ptx.Types.scalar
  ; ver : int  (** memory version: bumped at each store / barrier *)
  ; addr : t
  ; laff : Absint.Dom.aff  (** affine view of the address, for matching *)
  ; lsing : int option  (** concrete address when the interval is a point *)
  }

val tag : t -> bool
(** Statically-known float tag of the denoted value. *)

val cst : int64 -> t
val cst_int : int -> t
val fcst : float -> t

(* Smart constructors: fold constants through the interpreter's own
   arithmetic kernels ({!Gpusim.Value.binop_bits} and friends) so a
   folded term is bit-identical to the dynamic result. *)

val mk_bin : Ptx.Instr.binop -> Ptx.Types.scalar -> t -> t -> t
val mk_un : Ptx.Instr.unop -> Ptx.Types.scalar -> t -> t
val mk_mad : Ptx.Types.scalar -> t -> t -> t -> t
val mk_cmp : Ptx.Instr.cmp -> Ptx.Types.scalar -> t -> t -> t
val mk_sel : Ptx.Types.scalar -> t -> t -> t -> t
val mk_cvt : dst:Ptx.Types.scalar -> src:Ptx.Types.scalar -> t -> t
val mk_trunc : Ptx.Types.scalar -> t -> t
(** Collapses truncations that provably cannot change the pattern
    (same-type, 64-bit targets, value-range subsumption). *)

val to_i64 : t -> t option
(** Term denoting [Value.to_int64] of the value: the pattern itself for
    integer-tagged terms, a folded conversion for float constants,
    [None] (symbolic float) otherwise. *)

val decided : t -> bool option
(** [Some b] when the term is a constant whose boolean reading is [b]. *)

val equal : t -> t -> bool
(** Structural equality (constants compare pattern and tag; loads
    compare space, type, version and address, the latter structurally or
    through exact affine / singleton views). *)

val vars_of : t -> (int * Ptx.Types.scalar) list
(** Havoc variables occurring in the term, deduplicated. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
