open Ptx
module A = Absint.Analysis
module Dom = Absint.Dom

module RMap = Map.Make (Int)

type slot_key =
  | Lslot of int
  | Sslot of int

module SMap = Map.Make (struct
  type t = slot_key

  let compare = compare
end)

type side =
  { kernel : Kernel.t
  ; flow : Cfg.Flow.t
  ; an : A.t
  ; live : Cfg.Liveness.t
  ; shared_off : (string * int) list
  ; local_off : (string * int) list
  ; param_tag : (string * bool) list
  ; headers : (int * string) list
  ; spill : spill_ctx option
  }

and spill_ctx =
  { local_bytes : int
  ; shared_stride : int
  }

exception Unsupported of string

let reg_key r =
  let cls =
    match Types.reg_class (Reg.ty r) with
    | Types.Cpred -> 0
    | Types.C32 -> 1
    | Types.C64 -> 2
  in
  (cls lsl 24) lor Reg.id r

let decl_extents decls space =
  List.filter_map
    (fun (d : Kernel.decl) ->
      if d.Kernel.dspace = space then
        Some (d.Kernel.dname, Kernel.decl_bytes d)
      else None)
    decls

let make_side ?block_size ?num_blocks (k : Kernel.t) =
  let flow = Cfg.Flow.of_kernel k in
  let an = A.run ?block_size ?num_blocks flow in
  let live = Cfg.Liveness.compute flow in
  let shared_off, _ = Gpusim.Image.layout_decls k.Kernel.decls Types.Shared in
  let local_off, _ = Gpusim.Image.layout_decls k.Kernel.decls Types.Local in
  let headers =
    Cfg.Loops.back_edges flow
    |> List.map (fun (_, v) -> flow.Cfg.Flow.blocks.(v).Cfg.Flow.first)
    |> List.sort_uniq compare
    |> List.map (fun idx ->
         match
           List.find_opt (fun (_, i) -> i = idx) flow.Cfg.Flow.label_index
         with
         | Some (l, _) -> (idx, l)
         | None -> raise (Unsupported "unlabelled loop header"))
  in
  let local_bytes =
    match List.assoc_opt Regalloc.Spill.local_stack_sym
            (decl_extents k.Kernel.decls Types.Local)
    with
    | Some b -> b
    | None -> 0
  in
  let shared_stride =
    match
      Regalloc.Spill.shared_stride_of_kernel
        ~block_size:(A.block_size an) k
    with
    | Some (_, stride) -> stride
    | None -> 0
  in
  let spill =
    if local_bytes > 0 || shared_stride > 0 then
      Some { local_bytes; shared_stride }
    else None
  in
  { kernel = k
  ; flow
  ; an
  ; live
  ; shared_off
  ; local_off
  ; param_tag =
      List.map (fun (p, ty) -> (p, Types.is_float ty)) k.Kernel.params
  ; headers
  ; spill
  }

type state =
  { regs : Term.t RMap.t
  ; slots : Term.t SMap.t
  ; lhazy : bool
  ; shazy : bool
  ; pc : int
  }

let entry_state =
  { regs = RMap.empty; slots = SMap.empty; lhazy = false; shazy = false; pc = 0 }

type store_ev =
  { sspace : Types.space
  ; sty : Types.scalar
  ; saddr : Term.t
  ; saff : Dom.aff
  ; ssing : int option
  ; svalue : Term.t
  ; vaff : Dom.aff
  ; vsing : int option
  ; may_alias_spill : bool
  }

type branch_ev =
  { cond : Term.t
  ; cond_sing : int option
  ; sense : bool
  ; label : string
  ; target_pc : int
  ; fall_pc : int
  ; decided : bool option
  }

type event =
  | Ev_store of store_ev
  | Ev_barrier
  | Ev_branch of branch_ev
  | Ev_cut of string
  | Ev_ret
  | Ev_stuck of string

exception Stuck_exc of string

let stuck fmt = Format.kasprintf (fun m -> raise (Stuck_exc m)) fmt

(* Read a register's term, preferring an interval-singleton fact from the
   abstract interpretation: for non-float registers the stored pattern
   equals the [to_int64] value, so a proven singleton pins the pattern
   exactly (this is what makes [Intfold]'s rewrites provable). *)
let eval_reg side (regs : Term.t RMap.t) i r =
  let t =
    match RMap.find_opt (reg_key r) regs with
    | Some t -> t
    | None -> Term.cst 0L (* registers zero-initialise *)
  in
  if Types.is_float (Reg.ty r) then t
  else
    match t with
    | Term.Cst _ -> t
    | _ -> (
      match Dom.Itv.singleton (A.value_at side.an i r).Dom.itv with
      | Some c -> Term.cst_int c
      | None -> t)

let eval_special side = function
  | Reg.Tid_y | Reg.Ctaid_y -> Term.cst 0L
  | Reg.Ntid_y | Reg.Nctaid_y -> Term.cst 1L
  | Reg.Ntid_x -> Term.cst_int (A.block_size side.an)
  | Reg.Nctaid_x as s -> (
    match A.num_blocks side.an with
    | Some n -> Term.cst_int n
    | None -> Term.Special s)
  | s -> Term.Special s

let eval_operand side regs i = function
  | Instr.Oreg r -> eval_reg side regs i r
  | Instr.Oimm x -> Term.cst x
  | Instr.Ofimm f -> Term.fcst f
  | Instr.Ospecial s -> eval_special side s
  | Instr.Osym s -> (
    match List.assoc_opt s side.shared_off with
    | Some off -> Term.cst_int off
    | None -> (
      match List.assoc_opt s side.local_off with
      | Some _ -> Term.SymLocal s
      | None -> stuck "unknown symbol %s" s))
  | Instr.Oparam p -> (
    match List.assoc_opt p side.param_tag with
    | Some f -> Term.ParamV (p, f)
    | None -> stuck "unknown parameter %s" p)

(* The address actually dereferenced: [to_int64 base + offset]. *)
let addr_term side regs i (a : Instr.address) =
  let base = eval_operand side regs i a.Instr.base in
  match Term.to_i64 base with
  | Some b -> Term.mk_bin Instr.Add Types.U64 b (Term.cst_int a.Instr.offset)
  | None -> stuck "float-valued address base"

(* Affine view of an address, degraded when the form's base symbol is
   meaningless for the space (a declared-array base inside a Global
   address would compare naive per-side addresses that legitimately
   differ once decls change). *)
let addr_dom side i (a : Instr.address) space =
  let v = A.address_at side.an i a in
  let aff = v.Dom.aff in
  let aff =
    match (space, aff.Dom.sym) with
    | (Types.Global | Types.Const), Some (Dom.Sym _) -> Dom.aff_opaque
    | _ -> aff
  in
  (aff, Dom.Itv.singleton v.Dom.itv)

let slot_of side i (a : Instr.address) ty space =
  match side.spill with
  | None -> None
  | Some sp -> (
    let f = (A.address_at side.an i a).Dom.aff in
    let w = Types.width_bytes ty in
    match (space, Dom.decl_sym f) with
    | Types.Local, Some s
      when String.equal s Regalloc.Spill.local_stack_sym
           && f.Dom.tid = 0 && f.Dom.cta = 0 && f.Dom.base >= 0
           && f.Dom.base + w <= sp.local_bytes ->
      Some (Lslot f.Dom.base)
    | Types.Shared, Some s
      when String.equal s Regalloc.Spill.shared_stack_sym
           && f.Dom.tid = sp.shared_stride && f.Dom.cta = 0
           && f.Dom.base >= 0 && f.Dom.base + w <= sp.shared_stride ->
      Some (Sslot f.Dom.base)
    | _ -> None)

(* May an (unrecognised) store into this space clobber the spill stack?
   Safe only when it provably stays inside the extent of some other
   declared array. *)
let store_alias_risk side i (a : Instr.address) w space =
  match side.spill with
  | None -> false
  | Some sp ->
    let relevant, stack_sym, extents =
      match space with
      | Types.Local ->
        ( sp.local_bytes > 0
        , Regalloc.Spill.local_stack_sym
        , decl_extents side.kernel.Kernel.decls Types.Local )
      | Types.Shared ->
        ( sp.shared_stride > 0
        , Regalloc.Spill.shared_stack_sym
        , decl_extents side.kernel.Kernel.decls Types.Shared )
      | _ -> (false, "", [])
    in
    if not relevant then false
    else
      let f = (A.address_at side.an i a).Dom.aff in
      (match Dom.decl_sym f with
       | Some s when not (String.equal s stack_sym) -> (
         match List.assoc_opt s extents with
         | Some e -> not (f.Dom.base >= 0 && f.Dom.base + w <= e)
         | None -> true)
       | _ -> true)

let lspace_of = function
  | Types.Global | Types.Const -> Term.LGlobal
  | Types.Shared -> Term.LShared
  | Types.Local -> Term.LLocal
  | _ -> stuck "load from unsupported space"

(* Pattern a memory read of [ty] yields, given the stored term: the
   interpreter truncates with the stored tag only for predicate loads;
   float loads are tag-insensitive; an integer load of a float-tagged
   slot is the one combination we cannot express. *)
let mem_read_trunc ty t =
  if (not (Term.tag t)) || Types.is_float ty || ty = Types.Pred then
    Term.mk_trunc ty t
  else stuck "integer reload of a float-tagged slot"

let advance side ~version ~fuel ~fresh ~first (st : state) =
  let regs = ref st.regs
  and slots = ref st.slots
  and lhazy = ref st.lhazy
  and shazy = ref st.shazy
  and pc = ref st.pc in
  let state_at p =
    { regs = !regs; slots = !slots; lhazy = !lhazy; shazy = !shazy; pc = p }
  in
  let n = Cfg.Flow.num_instrs side.flow in
  let write d t = regs := RMap.add (reg_key d) (Term.mk_trunc (Reg.ty d) t) !regs in
  let slot_read key hazy =
    match SMap.find_opt key !slots with
    | Some t -> t
    | None ->
      let t =
        (* clobbered region: unknown but fixed until the next hazard *)
        if hazy then fresh Types.B64
        else Term.cst 0L
      in
      slots := SMap.add key t !slots;
      t
  in
  try
    let rec step started =
      if !pc >= n then (state_at !pc, Ev_ret)
      else if (not (first && not started)) && List.mem_assoc !pc side.headers
      then (state_at !pc, Ev_cut (List.assoc !pc side.headers))
      else begin
        decr fuel;
        if !fuel <= 0 then (state_at !pc, Ev_stuck "step budget exhausted")
        else begin
          let i = !pc in
          let ev = eval_operand side !regs i in
          match side.flow.Cfg.Flow.instrs.(i) with
          | Instr.Mov (ty, d, a) ->
            write d (Term.mk_trunc ty (ev a));
            incr pc;
            step true
          | Instr.Binop (op, ty, d, a, b) ->
            write d (Term.mk_bin op ty (ev a) (ev b));
            incr pc;
            step true
          | Instr.Mad (ty, d, a, b, c) ->
            write d (Term.mk_mad ty (ev a) (ev b) (ev c));
            incr pc;
            step true
          | Instr.Unop (op, ty, d, a) ->
            write d (Term.mk_un op ty (ev a));
            incr pc;
            step true
          | Instr.Cvt (dst, src, d, a) ->
            write d (Term.mk_cvt ~dst ~src (ev a));
            incr pc;
            step true
          | Instr.Setp (c, ty, d, a, b) ->
            write d (Term.mk_cmp c ty (ev a) (ev b));
            incr pc;
            step true
          | Instr.Selp (ty, d, a, b, p) ->
            write d (Term.mk_sel ty (eval_reg side !regs i p) (ev a) (ev b));
            incr pc;
            step true
          | Instr.Ld (Types.Param, ty, d, a) -> (
            match a.Instr.base with
            | Instr.Oparam _ ->
              write d (Term.mk_trunc ty (ev a.Instr.base));
              incr pc;
              step true
            | _ -> stuck "ld.param with a non-parameter base")
          | Instr.Ld (space, ty, d, a) -> (
            match slot_of side i a ty space with
            | Some key ->
              let hazy =
                match key with
                | Lslot _ -> !lhazy
                | Sslot _ -> !shazy
              in
              write d (mem_read_trunc ty (slot_read key hazy));
              incr pc;
              step true
            | None ->
              let addr = addr_term side !regs i a
              and laff, lsing = addr_dom side i a space in
              write d
                (Term.Load
                   { lsp = lspace_of space
                   ; lty = ty
                   ; ver = version
                   ; addr
                   ; laff
                   ; lsing
                   });
              incr pc;
              step true)
          | Instr.St (space, ty, a, v) -> (
            let value = Term.mk_trunc ty (ev v) in
            match slot_of side i a ty space with
            | Some key ->
              slots := SMap.add key value !slots;
              incr pc;
              step true
            | None ->
              let saddr = addr_term side !regs i a
              and saff, ssing = addr_dom side i a space in
              let vv = A.operand_at side.an i v in
              let risk =
                store_alias_risk side i a (Types.width_bytes ty) space
              in
              if risk then begin
                match space with
                | Types.Local -> lhazy := true
                | Types.Shared -> shazy := true
                | _ -> ()
              end;
              incr pc;
              ( state_at !pc
              , Ev_store
                  { sspace = space
                  ; sty = ty
                  ; saddr
                  ; saff
                  ; ssing
                  ; svalue = value
                  ; vaff = vv.Dom.aff
                  ; vsing = Dom.Itv.singleton vv.Dom.itv
                  ; may_alias_spill = risk
                  } ))
          | Instr.Bra l ->
            pc := Cfg.Flow.target_index side.flow l;
            step true
          | Instr.Bra_pred (p, sense, l) ->
            let cond = eval_reg side !regs i p in
            let cv = A.value_at side.an i p in
            ( state_at !pc
            , Ev_branch
                { cond
                ; cond_sing = Dom.Itv.singleton cv.Dom.itv
                ; sense
                ; label = l
                ; target_pc = Cfg.Flow.target_index side.flow l
                ; fall_pc = !pc + 1
                ; decided = Term.decided cond
                } )
          | Instr.Bar_sync ->
            incr pc;
            (state_at !pc, Ev_barrier)
          | Instr.Ret -> (state_at !pc, Ev_ret)
        end
      end
    in
    step false
  with
  | Stuck_exc m -> (state_at !pc, Ev_stuck m)
  | Invalid_argument m -> (state_at !pc, Ev_stuck m)
  | Not_found -> (state_at !pc, Ev_stuck "unresolved label")

let slot_key_of (p : Regalloc.Spill.placement) =
  match p.Regalloc.Spill.space with
  | Types.Shared -> Sslot p.Regalloc.Spill.offset
  | _ -> Lslot p.Regalloc.Spill.offset

let havoc_slots fresh placements =
  List.fold_left
    (fun m (p : Regalloc.Spill.placement) ->
      let key = slot_key_of p in
      SMap.add key (fresh key) m)
    SMap.empty placements
