open Ptx
module Dom = Absint.Dom
module A = Absint.Analysis

type verdict =
  | Proved
  | Refuted of Witness.t
  | Unknown of string

type outcome =
  { edge : string
  ; kernel : string
  ; verdict : verdict
  ; cuts : int
  ; paths : int
  ; obligations : int
  ; detail : string
  }

exception Mismatch of string
exception Give_up of string

let mismatch fmt = Format.kasprintf (fun m -> raise (Mismatch m)) fmt
let give_up fmt = Format.kasprintf (fun m -> raise (Give_up m)) fmt

(* ------------------------------------------------------------------ *)
(* Correspondence of a left register at a cutpoint                    *)

type corr =
  | Same
  | Alloc of Regalloc.Allocator.t

type loc =
  | In_reg of Reg.t
  | In_slot of Sym.slot_key
  | Unconstrained

let locate corr v =
  match corr with
  | Same -> In_reg v
  | Alloc a -> (
    match
      List.find_opt
        (fun (p : Regalloc.Spill.placement) ->
          Reg.equal p.Regalloc.Spill.reg v)
        a.Regalloc.Allocator.spilled
    with
    | Some pl -> In_slot (Sym.slot_key_of pl)
    | None -> (
      match Reg.Map.find_opt v a.Regalloc.Allocator.assignment with
      | Some p -> In_reg p
      | None -> Unconstrained))

(* ------------------------------------------------------------------ *)
(* Driver context                                                     *)

type ctx =
  { l : Sym.side
  ; r : Sym.side
  ; corr : corr
  ; var_ctr : int ref
  ; seeds : (string * int64 list) list ref
  ; cuts : int ref
  ; paths : int ref
  ; obligations : int ref
  ; max_paths : int
  ; max_fuel : int
  }

let fresh ctx ty =
  incr ctx.var_ctr;
  Term.Var (!(ctx.var_ctr), ty)

(* Equality of two side's denotations: structural term equality, or a
   shared interval singleton, or matching exact affine forms. Affine
   forms whose base is a declared-array symbol denote per-side naive
   addresses; they are trusted for addresses of the matching space
   (where the relative reading is the semantics) but not for stored
   values. *)
let value_aff_usable (a : Dom.aff) =
  match a.Dom.sym with
  | Some (Dom.Sym _) -> false
  | _ -> true

let eq_terms ?(addr = false) ctx (t1, (a1 : Dom.aff), s1) (t2, a2, s2) =
  incr ctx.obligations;
  Term.equal t1 t2
  || (match (s1, s2) with
     | Some c1, Some c2 ->
       c1 = c2 && (not (Term.tag t1)) && not (Term.tag t2)
     | _ -> false)
  || (a1.Dom.exact && a2.Dom.exact && Dom.aff_equal a1 a2
     && (addr || (value_aff_usable a1 && value_aff_usable a2))
     && (not (Term.tag t1))
     && not (Term.tag t2))

let term_of_regs regs r =
  match Sym.RMap.find_opt (Sym.reg_key r) regs with
  | Some t -> t
  | None -> Term.cst 0L

let reg_dom side i r =
  let v = A.value_at side.Sym.an i r in
  let aff =
    if Types.is_float (Reg.ty r) then Dom.aff_opaque else v.Dom.aff
  in
  let sing =
    if Types.is_float (Reg.ty r) then None else Dom.Itv.singleton v.Dom.itv
  in
  (aff, sing)

(* ------------------------------------------------------------------ *)
(* Path-constraint seeds for the fuzzing fallback                     *)

let rec param_root = function
  | Term.ParamV (p, _) -> Some p
  | Term.Trunc (_, t) | Term.CvtT (_, _, t) | Term.Un (_, _, t) ->
    param_root t
  | Term.Bin (_, _, t, Term.Cst _) | Term.Bin (_, _, Term.Cst _, t) ->
    param_root t
  | _ -> None

let record_seed ctx cond =
  match cond with
  | Term.CmpT (_, _, x, Term.Cst (c, false))
  | Term.CmpT (_, _, Term.Cst (c, false), x) -> (
    match param_root x with
    | Some p ->
      let prev =
        match List.assoc_opt p !(ctx.seeds) with
        | Some s -> s
        | None -> []
      in
      ctx.seeds :=
        (p, [ Int64.pred c; c; Int64.succ c ] @ prev)
        :: List.remove_assoc p !(ctx.seeds)
    | None -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Cutpoint states                                                    *)

let header_pc side lbl =
  try Cfg.Flow.target_index side.Sym.flow lbl
  with Not_found -> mismatch "loop header %s missing on one side" lbl

(* Havoc value for a left register: pin to an interval singleton when
   either side's analysis proves one at the header (the arrival checks
   justify propagating it to the other side), otherwise a fresh
   variable shared by both sides of the correspondence. *)
let havoc_value ctx i_l v alt =
  if Types.is_float (Reg.ty v) then fresh ctx (Reg.ty v)
  else
    match Dom.Itv.singleton (A.value_at ctx.l.Sym.an i_l v).Dom.itv with
    | Some c -> Term.cst_int c
    | None -> (
      match alt with
      | Some c -> Term.cst_int c
      | None -> fresh ctx (Reg.ty v))

let cut_states ctx lbl =
  let i_l = header_pc ctx.l lbl and i_r = header_pc ctx.r lbl in
  let ll = ctx.l.Sym.live.Cfg.Liveness.live_in.(i_l)
  and lr = ctx.r.Sym.live.Cfg.Liveness.live_in.(i_r) in
  let lregs = ref Sym.RMap.empty
  and rregs = ref Sym.RMap.empty
  and slots = ref Sym.SMap.empty in
  let bind regs r t =
    let key = Sym.reg_key r in
    (match Sym.RMap.find_opt key !regs with
     | Some t' when not (Term.equal t' t) ->
       give_up "register-class aliasing at cutpoint %s" lbl
     | _ -> ());
    regs := Sym.RMap.add key t !regs
  in
  (match ctx.corr with
   | Alloc a ->
     (* every recorded slot starts unknown; corresponded ones below *)
     slots :=
       Sym.havoc_slots
         (fun _ -> fresh ctx Types.B64)
         a.Regalloc.Allocator.spilled
   | Same -> ());
  Reg.Set.iter
    (fun v ->
      match locate ctx.corr v with
      | In_reg p ->
        let shared =
          match ctx.corr with
          | Same -> Reg.Set.mem p lr
          | Alloc _ -> true
        in
        if shared then begin
          let alt =
            if Types.is_float (Reg.ty p) then None
            else Dom.Itv.singleton (A.value_at ctx.r.Sym.an i_r p).Dom.itv
          in
          let t = havoc_value ctx i_l v alt in
          bind lregs v t;
          bind rregs p t
        end
        else bind lregs v (havoc_value ctx i_l v None)
      | In_slot key ->
        let t = havoc_value ctx i_l v None in
        bind lregs v t;
        slots := Sym.SMap.add key t !slots
      | Unconstrained -> bind lregs v (havoc_value ctx i_l v None))
    ll;
  (* right-side registers live at the header but not produced by the
     correspondence (spill infrastructure, reload temps, dce'd copies) *)
  Reg.Set.iter
    (fun p ->
      if not (Sym.RMap.mem (Sym.reg_key p) !rregs) then
        bind rregs p
          (match
             if Types.is_float (Reg.ty p) then None
             else Dom.Itv.singleton (A.value_at ctx.r.Sym.an i_r p).Dom.itv
           with
          | Some c -> Term.cst_int c
          | None -> fresh ctx (Reg.ty p)))
    lr;
  ( { Sym.regs = !lregs
    ; slots = Sym.SMap.empty
    ; lhazy = true
    ; shazy = true
    ; pc = i_l
    }
  , { Sym.regs = !rregs
    ; slots = !slots
    ; lhazy = true
    ; shazy = true
    ; pc = i_r
    } )

let check_arrival ctx lbl (sl : Sym.state) (sr : Sym.state) =
  let i_l = header_pc ctx.l lbl and i_r = header_pc ctx.r lbl in
  let ll = ctx.l.Sym.live.Cfg.Liveness.live_in.(i_l)
  and lr = ctx.r.Sym.live.Cfg.Liveness.live_in.(i_r) in
  Reg.Set.iter
    (fun v ->
      let lt = term_of_regs sl.Sym.regs v in
      let laff, lsing = reg_dom ctx.l i_l v in
      match locate ctx.corr v with
      | In_reg p ->
        let relevant =
          match ctx.corr with
          | Same -> Reg.Set.mem p lr
          | Alloc _ -> true
        in
        if relevant then begin
          let rt = term_of_regs sr.Sym.regs p in
          let raff, rsing = reg_dom ctx.r i_r p in
          if not (eq_terms ctx (lt, laff, lsing) (rt, raff, rsing)) then
            mismatch "cutpoint %s: %s (left %s) vs %s (right %s)" lbl
              (Reg.name v) (Term.to_string lt) (Reg.name p)
              (Term.to_string rt)
        end
      | In_slot key -> (
        match Sym.SMap.find_opt key sr.Sym.slots with
        | Some st ->
          if
            not
              (eq_terms ctx (lt, laff, lsing) (st, Dom.aff_opaque, None))
          then
            mismatch "cutpoint %s: spilled %s (left %s) vs slot (%s)" lbl
              (Reg.name v) (Term.to_string lt) (Term.to_string st)
        | None ->
          let hazy =
            match key with
            | Sym.Lslot _ -> sr.Sym.lhazy
            | Sym.Sslot _ -> sr.Sym.shazy
          in
          if hazy then mismatch "cutpoint %s: spill slot state unknown" lbl
          else if
            not
              (eq_terms ctx (lt, laff, lsing)
                 (Term.cst 0L, Dom.aff_opaque, None))
          then
            mismatch "cutpoint %s: spilled %s vs untouched slot" lbl
              (Reg.name v))
      | Unconstrained -> ())
    ll

(* ------------------------------------------------------------------ *)
(* Lockstep co-execution of one cutpoint's segment                    *)

type path =
  { sl : Sym.state
  ; sr : Sym.state
  ; first_l : bool
  ; first_r : bool
  ; version : int
  }

let match_store ctx (a : Sym.store_ev) (b : Sym.store_ev) =
  if a.Sym.sspace <> b.Sym.sspace then
    mismatch "store space %s vs %s"
      (Types.space_to_string a.Sym.sspace)
      (Types.space_to_string b.Sym.sspace);
  if not (Types.equal_scalar a.Sym.sty b.Sym.sty) then
    mismatch "store width %s vs %s"
      (Types.scalar_to_string a.Sym.sty)
      (Types.scalar_to_string b.Sym.sty);
  if
    not
      (eq_terms ~addr:true ctx
         (a.Sym.saddr, a.Sym.saff, a.Sym.ssing)
         (b.Sym.saddr, b.Sym.saff, b.Sym.ssing))
  then
    mismatch "store address %s vs %s"
      (Term.to_string a.Sym.saddr)
      (Term.to_string b.Sym.saddr);
  if
    not
      (eq_terms ctx
         (a.Sym.svalue, a.Sym.vaff, a.Sym.vsing)
         (b.Sym.svalue, b.Sym.vaff, b.Sym.vsing))
  then
    mismatch "store value %s vs %s"
      (Term.to_string a.Sym.svalue)
      (Term.to_string b.Sym.svalue)

let decided_of (b : Sym.branch_ev) =
  match b.Sym.decided with
  | Some d -> Some d
  | None -> (
    match b.Sym.cond_sing with
    | Some c -> Some (c <> 0)
    | None -> None)

let run_cut ctx (cut : string option) ~enqueue =
  incr ctx.cuts;
  let sl0, sr0 =
    match cut with
    | None -> (Sym.entry_state, Sym.entry_state)
    | Some lbl -> cut_states ctx lbl
  in
  let stack =
    ref [ { sl = sl0; sr = sr0; first_l = true; first_r = true; version = 0 } ]
  in
  while !stack <> [] do
    let p = List.hd !stack in
    stack := List.tl !stack;
    incr ctx.paths;
    if !(ctx.paths) > ctx.max_paths then give_up "path budget exhausted";
    let fuel_l = ref ctx.max_fuel and fuel_r = ref ctx.max_fuel in
    let continue_ = ref (Some p) in
    while !continue_ <> None do
      let p = Option.get !continue_ in
      let sl, evl =
        Sym.advance ctx.l ~version:p.version ~fuel:fuel_l
          ~fresh:(fresh ctx) ~first:p.first_l p.sl
      and sr, evr =
        Sym.advance ctx.r ~version:p.version ~fuel:fuel_r
          ~fresh:(fresh ctx) ~first:p.first_r p.sr
      in
      let p = { p with sl; sr; first_l = false; first_r = false } in
      match (evl, evr) with
      | Sym.Ev_stuck m, _ | _, Sym.Ev_stuck m -> give_up "%s" m
      | Sym.Ev_ret, Sym.Ev_ret -> continue_ := None
      | Sym.Ev_barrier, Sym.Ev_barrier ->
        continue_ := Some { p with version = p.version + 1 }
      | Sym.Ev_store a, Sym.Ev_store b ->
        match_store ctx a b;
        continue_ := Some { p with version = p.version + 1 }
      | Sym.Ev_cut la, Sym.Ev_cut lb ->
        if not (String.equal la lb) then
          mismatch "cutpoint order: %s vs %s" la lb;
        check_arrival ctx la sl sr;
        enqueue la;
        continue_ := None
      | Sym.Ev_branch a, Sym.Ev_branch b -> (
        if not (String.equal a.Sym.label b.Sym.label) then
          mismatch "branch target %s vs %s" a.Sym.label b.Sym.label;
        if a.Sym.sense <> b.Sym.sense then mismatch "branch sense differs";
        let follow p (d : bool) =
          let taken_l = d = a.Sym.sense and taken_r = d = b.Sym.sense in
          { p with
            sl =
              { p.sl with
                Sym.pc = (if taken_l then a.Sym.target_pc else a.Sym.fall_pc)
              }
          ; sr =
              { p.sr with
                Sym.pc = (if taken_r then b.Sym.target_pc else b.Sym.fall_pc)
              }
          }
        in
        let conds_eq () =
          eq_terms ctx
            (a.Sym.cond, Dom.aff_opaque, a.Sym.cond_sing)
            (b.Sym.cond, Dom.aff_opaque, b.Sym.cond_sing)
        in
        match (decided_of a, decided_of b) with
        | Some x, Some y ->
          if x <> y then
            mismatch "branch at %s decided differently" a.Sym.label;
          continue_ := Some (follow p x)
        | Some x, None | None, Some x ->
          if not (conds_eq ()) then
            mismatch "branch condition %s vs %s"
              (Term.to_string a.Sym.cond)
              (Term.to_string b.Sym.cond);
          continue_ := Some (follow p x)
        | None, None ->
          if not (conds_eq ()) then
            mismatch "branch condition %s vs %s"
              (Term.to_string a.Sym.cond)
              (Term.to_string b.Sym.cond);
          record_seed ctx a.Sym.cond;
          stack := follow p true :: !stack;
          continue_ := Some (follow p false))
      | _ ->
        let kind = function
          | Sym.Ev_store _ -> "store"
          | Sym.Ev_barrier -> "barrier"
          | Sym.Ev_branch _ -> "branch"
          | Sym.Ev_cut l -> "cutpoint " ^ l
          | Sym.Ev_ret -> "return"
          | Sym.Ev_stuck _ -> "stuck"
        in
        mismatch "event mismatch: left %s vs right %s" (kind evl) (kind evr)
    done
  done

let co_run ctx =
  let processed = Hashtbl.create 8 in
  let queue = Queue.create () in
  let enqueue lbl =
    if not (Hashtbl.mem processed lbl) then begin
      Hashtbl.add processed lbl ();
      Queue.add (Some lbl) queue
    end
  in
  Queue.add None queue;
  while not (Queue.is_empty queue) do
    run_cut ctx (Queue.pop queue) ~enqueue
  done

(* ------------------------------------------------------------------ *)
(* Edge entry points                                                  *)

let make_ctx l r corr =
  { l
  ; r
  ; corr
  ; var_ctr = ref 0
  ; seeds = ref []
  ; cuts = ref 0
  ; paths = ref 0
  ; obligations = ref 0
  ; max_paths = 4096
  ; max_fuel = 200_000
  }

let finish ~edge ~kernel ~block_size ~num_blocks ~left ~right ctx result =
  let outcome verdict detail =
    { edge
    ; kernel
    ; verdict
    ; cuts = !(ctx.cuts)
    ; paths = !(ctx.paths)
    ; obligations = !(ctx.obligations)
    ; detail
    }
  in
  match result with
  | Ok () -> outcome Proved ""
  | Error detail -> (
    let params_ty =
      (Witness.kernel_of left).Kernel.params
    in
    match
      Witness.search ~left ~right ~block_size ~num_blocks ~params_ty
        ~seeds:!(ctx.seeds) ()
    with
    | Some w -> outcome (Refuted w) detail
    | None -> outcome (Unknown detail) detail)

let attempt ctx =
  match co_run ctx with
  | () -> Ok ()
  | exception Mismatch m -> Error m
  | exception Give_up m -> Error m
  | exception Sym.Unsupported m -> Error m

let check_opt ~block_size ?num_blocks ~left ~right () =
  let kernel = left.Kernel.name in
  match
    ( Sym.make_side ~block_size ?num_blocks left
    , Sym.make_side ~block_size ?num_blocks right )
  with
  | l, r ->
    let ctx = make_ctx l r Same in
    finish ~edge:"opt" ~kernel ~block_size
      ~num_blocks:(Option.value num_blocks ~default:1)
      ~left:(Witness.Run_kernel left) ~right:(Witness.Run_kernel right) ctx
      (attempt ctx)
  | exception Sym.Unsupported m ->
    { edge = "opt"
    ; kernel
    ; verdict = Unknown m
    ; cuts = 0
    ; paths = 0
    ; obligations = 0
    ; detail = m
    }

let check_alloc (a : Regalloc.Allocator.t) =
  let block_size = a.Regalloc.Allocator.block_size in
  let left_k = a.Regalloc.Allocator.original
  and right_k = a.Regalloc.Allocator.kernel in
  let kernel = left_k.Kernel.name in
  match
    (Sym.make_side ~block_size left_k, Sym.make_side ~block_size right_k)
  with
  | l, r ->
    let ctx = make_ctx l r (Alloc a) in
    finish ~edge:"alloc" ~kernel ~block_size ~num_blocks:1
      ~left:(Witness.Run_kernel left_k) ~right:(Witness.Run_kernel right_k)
      ctx (attempt ctx)
  | exception Sym.Unsupported m ->
    { edge = "alloc"
    ; kernel
    ; verdict = Unknown m
    ; cuts = 0
    ; paths = 0
    ; obligations = 0
    ; detail = m
    }

(* ------------------------------------------------------------------ *)
(* Lowering edge: per-pc comparison through the machine register map  *)

let special_term ~block_size = function
  | Reg.Tid_y | Reg.Ctaid_y -> Term.cst 0L
  | Reg.Ntid_y | Reg.Nctaid_y -> Term.cst 1L
  | Reg.Ntid_x -> Term.cst_int block_size
  | s -> Term.Special s

type action =
  | Adef of int * Term.t  (** storage key, reg-truncated value *)
  | Ast of Types.space * Types.scalar * Term.t * Term.t
  | Abra of int
  | Abrp of int * bool * int  (** cond storage key, sense, target pc *)
  | Abar
  | Aret

let action_eq a b =
  match (a, b) with
  | Adef (k1, t1), Adef (k2, t2) -> k1 = k2 && Term.equal t1 t2
  | Ast (sp1, ty1, a1, v1), Ast (sp2, ty2, a2, v2) ->
    sp1 = sp2 && Types.equal_scalar ty1 ty2 && Term.equal a1 a2
    && Term.equal v1 v2
  | Abra t1, Abra t2 -> t1 = t2
  | Abrp (k1, s1, t1), Abrp (k2, s2, t2) -> k1 = k2 && s1 = s2 && t1 = t2
  | Abar, Abar -> true
  | Aret, Aret -> true
  | _ -> false

let check_lower (m : Machine.Lower.t) =
  let a = m.Machine.Lower.alloc in
  let image = m.Machine.Lower.image in
  let k = image.Gpusim.Image.kernel in
  let flow = image.Gpusim.Image.flow in
  let block_size = a.Regalloc.Allocator.block_size in
  let outcome0 verdict detail =
    { edge = "lower"
    ; kernel = k.Kernel.name
    ; verdict
    ; cuts = 0
    ; paths = 0
    ; obligations = Array.length m.Machine.Lower.code
    ; detail
    }
  in
  let n64v, n64s = Machine.Lower.count64 a in
  let var_ctr = ref 0 in
  let vars = Hashtbl.create 64 in
  let var_of r =
    let key = Sym.reg_key r in
    match Hashtbl.find_opt vars key with
    | Some t -> t
    | None ->
      incr var_ctr;
      let t = Term.Var (!var_ctr, Reg.ty r) in
      Hashtbl.add vars key t;
      t
  in
  let inv = Hashtbl.create 64 in
  Cfg.Flow.iter_instrs flow (fun _ ins ->
    List.iter
      (fun r ->
        Hashtbl.replace inv
          (Machine.Lower.map_reg a ~n64v ~n64s r)
          r)
      (Instr.defs ins @ Instr.uses ins));
  let param_tag p =
    match List.assoc_opt p k.Kernel.params with
    | Some ty -> Types.is_float ty
    | None -> mismatch "unknown parameter %s" p
  in
  let shared_off, _ = Gpusim.Image.layout_decls k.Kernel.decls Types.Shared in
  let ptx_src = function
    | Instr.Oreg r -> var_of r
    | Instr.Oimm x -> Term.cst x
    | Instr.Ofimm f -> Term.fcst f
    | Instr.Ospecial s -> special_term ~block_size s
    | Instr.Osym s -> (
      match List.assoc_opt s shared_off with
      | Some off -> Term.cst_int off
      | None -> (
        match
          List.assoc_opt s image.Gpusim.Image.local_offsets
        with
        | Some _ -> Term.SymLocal s
        | None -> mismatch "unknown symbol %s" s))
    | Instr.Oparam p -> Term.ParamV (p, param_tag p)
  in
  let mach_src = function
    | Machine.Isa.Rsrc mr -> (
      match Hashtbl.find_opt inv mr with
      | Some r -> var_of r
      | None -> mismatch "machine register outside the allocation map")
    | Machine.Isa.Imm x -> Term.cst x
    | Machine.Isa.Fimm f -> Term.fcst f
    | Machine.Isa.Spec s -> special_term ~block_size s
    | Machine.Isa.Param idx -> (
      let p = m.Machine.Lower.params.(idx) in
      Term.ParamV (p, param_tag p))
    | Machine.Isa.Loc off -> (
      match
        List.find_opt
          (fun (_, o) -> o = off)
          image.Gpusim.Image.local_offsets
      with
      | Some (s, _) -> Term.SymLocal s
      | None -> mismatch "machine local offset %d unmapped" off)
  in
  let i64 t =
    match Term.to_i64 t with
    | Some t -> t
    | None -> mismatch "float-valued address base"
  in
  let ptx_addr (ad : Instr.address) =
    Term.mk_bin Instr.Add Types.U64 (i64 (ptx_src ad.Instr.base))
      (Term.cst_int ad.Instr.offset)
  in
  let mach_addr (ad : Machine.Isa.addr) =
    Term.mk_bin Instr.Add Types.U64
      (i64 (mach_src ad.Machine.Isa.abase))
      (Term.cst_int ad.Machine.Isa.aoffset)
  in
  let load lsp ty addr =
    Term.Load
      { Term.lsp
      ; lty = ty
      ; ver = 0
      ; addr
      ; laff = Dom.aff_opaque
      ; lsing = None
      }
  in
  let lspace_of = function
    | Types.Global | Types.Const -> Term.LGlobal
    | Types.Shared -> Term.LShared
    | Types.Local -> Term.LLocal
    | sp -> mismatch "load space %s" (Types.space_to_string sp)
  in
  let def r t = Adef (Sym.reg_key r, Term.mk_trunc (Reg.ty r) t) in
  let ptx_action ins =
    match ins with
    | Instr.Mov (ty, d, s) -> def d (Term.mk_trunc ty (ptx_src s))
    | Instr.Binop (op, ty, d, x, y) ->
      def d (Term.mk_bin op ty (ptx_src x) (ptx_src y))
    | Instr.Mad (ty, d, x, y, z) ->
      def d (Term.mk_mad ty (ptx_src x) (ptx_src y) (ptx_src z))
    | Instr.Unop (op, ty, d, x) -> def d (Term.mk_un op ty (ptx_src x))
    | Instr.Cvt (dst, src, d, x) ->
      def d (Term.mk_cvt ~dst ~src (ptx_src x))
    | Instr.Setp (c, ty, d, x, y) ->
      def d (Term.mk_cmp c ty (ptx_src x) (ptx_src y))
    | Instr.Selp (ty, d, x, y, p) ->
      def d (Term.mk_sel ty (var_of p) (ptx_src x) (ptx_src y))
    | Instr.Ld (Types.Param, ty, d, ad) -> (
      match ad.Instr.base with
      | Instr.Oparam _ -> def d (Term.mk_trunc ty (ptx_src ad.Instr.base))
      | _ -> mismatch "ld.param with a non-parameter base")
    | Instr.Ld (sp, ty, d, ad) ->
      def d (load (lspace_of sp) ty (ptx_addr ad))
    | Instr.St (sp, ty, ad, v) ->
      Ast (sp, ty, ptx_addr ad, Term.mk_trunc ty (ptx_src v))
    | Instr.Bra l -> Abra (Cfg.Flow.target_index flow l)
    | Instr.Bra_pred (p, sense, l) ->
      Abrp (Sym.reg_key p, sense, Cfg.Flow.target_index flow l)
    | Instr.Bar_sync -> Abar
    | Instr.Ret -> Aret
  in
  let inv_reg mr =
    match Hashtbl.find_opt inv mr with
    | Some r -> r
    | None -> mismatch "machine register outside the allocation map"
  in
  let mdef mr t =
    let r = inv_reg mr in
    Adef (Sym.reg_key r, Term.mk_trunc (Reg.ty r) t)
  in
  let mach_action ins =
    match ins with
    | Machine.Isa.Mov (ty, d, s) -> mdef d (Term.mk_trunc ty (mach_src s))
    | Machine.Isa.Binop (op, ty, d, x, y) ->
      mdef d (Term.mk_bin op ty (mach_src x) (mach_src y))
    | Machine.Isa.Mad (ty, d, x, y, z) ->
      mdef d (Term.mk_mad ty (mach_src x) (mach_src y) (mach_src z))
    | Machine.Isa.Unop (op, ty, d, x) ->
      mdef d (Term.mk_un op ty (mach_src x))
    | Machine.Isa.Cvt (dst, src, d, x) ->
      mdef d (Term.mk_cvt ~dst ~src (mach_src x))
    | Machine.Isa.Setp (c, ty, d, x, y) ->
      mdef d (Term.mk_cmp c ty (mach_src x) (mach_src y))
    | Machine.Isa.Selp (ty, d, x, y, p) ->
      mdef d
        (Term.mk_sel ty (var_of (inv_reg p)) (mach_src x) (mach_src y))
    | Machine.Isa.Ld (Types.Param, ty, d, ad) -> (
      match ad.Machine.Isa.abase with
      | Machine.Isa.Param _ ->
        mdef d (Term.mk_trunc ty (mach_src ad.Machine.Isa.abase))
      | _ -> mismatch "machine ld.param with a non-parameter base")
    | Machine.Isa.Ld (sp, ty, d, ad) ->
      mdef d (load (lspace_of sp) ty (mach_addr ad))
    | Machine.Isa.St (sp, ty, ad, v) ->
      Ast (sp, ty, mach_addr ad, Term.mk_trunc ty (mach_src v))
    | Machine.Isa.Bra t -> Abra t
    | Machine.Isa.Bra_pred (p, sense, t) ->
      Abrp (Sym.reg_key (inv_reg p), sense, t)
    | Machine.Isa.Bar -> Abar
    | Machine.Isa.Exit -> Aret
  in
  let result =
    try
      let n = Cfg.Flow.num_instrs flow in
      if Array.length m.Machine.Lower.code <> n then
        mismatch "instruction count %d vs %d" n
          (Array.length m.Machine.Lower.code);
      for pc = 0 to n - 1 do
        let pa = ptx_action flow.Cfg.Flow.instrs.(pc)
        and ma = mach_action m.Machine.Lower.code.(pc) in
        if not (action_eq pa ma) then
          mismatch "pc %d: lowering of %s is not semantics-preserving" pc
            (Instr.to_string flow.Cfg.Flow.instrs.(pc))
      done;
      Ok ()
    with
    | Mismatch msg -> Error msg
    | Not_found -> Error "unresolved label"
    | Invalid_argument msg -> Error msg
  in
  match result with
  | Ok () -> outcome0 Proved ""
  | Error detail -> (
    match
      Witness.search ~left:(Witness.Run_kernel k)
        ~right:(Witness.Run_machine m) ~block_size
        ~params_ty:k.Kernel.params ~seeds:[] ()
    with
    | Some w -> outcome0 (Refuted w) detail
    | None -> outcome0 (Unknown detail) detail)

let pp_outcome fmt o =
  match o.verdict with
  | Proved ->
    Format.fprintf fmt
      "%s %s: proved (%d cutpoints, %d paths, %d obligations)" o.kernel
      o.edge o.cuts o.paths o.obligations
  | Refuted w ->
    Format.fprintf fmt "%s %s: REFUTED — %s; witness %a (%s)" o.kernel
      o.edge o.detail Witness.pp_params w.Witness.params w.Witness.descr
  | Unknown d -> Format.fprintf fmt "%s %s: unknown — %s" o.kernel o.edge d
