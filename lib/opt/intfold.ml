module I = Ptx.Instr
module T = Ptx.Types
module A = Absint.Analysis
module Dom = Absint.Dom

(* An integer register operand folds to the immediate when the abstract
   interval at this program point is a singleton: every thread observes
   that one value. Float and predicate positions are never touched. *)
let foldable ty = not (T.is_float ty) && ty <> T.Pred

let run ?block_size (k : Ptx.Kernel.t) =
  match Cfg.Flow.of_kernel k with
  | exception Invalid_argument _ -> (k, 0)
  | flow ->
    let an = A.run ?block_size flow in
    let folded = ref 0 in
    let fold_op i ty op =
      match op with
      | I.Oreg r when foldable ty && not (T.is_float (Ptx.Reg.ty r)) ->
        (match Dom.Itv.singleton (A.value_at an i r).Dom.itv with
         | Some c ->
           incr folded;
           I.Oimm (Int64.of_int c)
         | None -> op)
      | _ -> op
    in
    let idx = ref 0 in
    let body =
      Array.map
        (function
          | Ptx.Kernel.L l -> Ptx.Kernel.L l
          | Ptx.Kernel.I ins ->
            let i = !idx in
            incr idx;
            let f = fold_op i in
            let ins' =
              match ins with
              | I.Mov (ty, d, a) -> I.Mov (ty, d, f ty a)
              | I.Binop (op, ty, d, a, b) -> I.Binop (op, ty, d, f ty a, f ty b)
              | I.Mad (ty, d, a, b, c) -> I.Mad (ty, d, f ty a, f ty b, f ty c)
              | I.Setp (c, ty, d, a, b) -> I.Setp (c, ty, d, f ty a, f ty b)
              | I.Selp (ty, d, a, b, p) -> I.Selp (ty, d, f ty a, f ty b, p)
              | I.Unop _ | I.Cvt _ | I.Ld _ | I.St _ | I.Bra _ | I.Bra_pred _
              | I.Bar_sync | I.Ret -> ins
            in
            Ptx.Kernel.I ins')
        k.Ptx.Kernel.body
    in
    ({ k with Ptx.Kernel.body }, !folded)
