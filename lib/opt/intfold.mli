(** Interval-driven constant folding.

    Uses the {!Absint} abstract interpretation to replace integer
    register operands whose interval is a provable singleton with the
    immediate — catching constants {!Constfold} cannot see locally, such
    as [tid & 0] or values pinned by a clamp. Sound per-thread: a
    singleton interval means every thread observes that one value, so
    uniformity is not required.

    Only value-operand positions of integer-typed ALU instructions are
    rewritten (never address bases or predicates), keeping the verifier's
    operand-kind rules (V106/V111) intact. The pass is gated off by
    default in {!Pipeline} because the fixpoint analysis costs more than
    the peephole passes. *)

val run : ?block_size:int -> Ptx.Kernel.t -> Ptx.Kernel.t * int
(** Returns the rewritten kernel and the number of folded operands. *)
