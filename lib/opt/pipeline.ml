type report =
  { folded : int
  ; propagated : int
  ; eliminated : int
  ; iterations : int
  }

(* The verifier gate is a no-op unless enabled (CRAT_VERIFY=1 or
   Verify.Gate.set); when enabled, every pass output is re-checked and a
   miscompile surfaces as Verify.Gate.Rejected at the offending stage
   instead of as a silently wrong simulation. *)
let gate stage k = Verify.Gate.check_kernel ~stage k

let run ?(intfold = false) ?block_size k =
  gate "opt:input" k;
  (* the interval-driven fold is a whole-kernel fixpoint analysis, so it
     runs once up front; the cheap peephole loop below cleans up after it *)
  let k, intfolded =
    if intfold then begin
      let k, n = Intfold.run ?block_size k in
      gate "opt:intfold" k;
      (k, n)
    end
    else (k, 0)
  in
  let rec loop k acc iters =
    let k, f = Constfold.run k in
    gate "opt:constfold" k;
    let k, p = Copyprop.run k in
    gate "opt:copyprop" k;
    let k, e = Dce.run k in
    gate "opt:dce" k;
    let acc =
      { folded = acc.folded + f
      ; propagated = acc.propagated + p
      ; eliminated = acc.eliminated + e
      ; iterations = iters
      }
    in
    if f + p + e = 0 || iters >= 8 then (k, acc) else loop k acc (iters + 1)
  in
  loop k { folded = intfolded; propagated = 0; eliminated = 0; iterations = 1 } 1

let pp_report fmt r =
  Format.fprintf fmt "%d folded, %d propagated, %d eliminated (%d iterations)"
    r.folded r.propagated r.eliminated r.iterations
