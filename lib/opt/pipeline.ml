type report =
  { folded : int
  ; propagated : int
  ; eliminated : int
  ; iterations : int
  }

(* The verifier gate is a no-op unless enabled (CRAT_VERIFY=1 or
   Verify.Gate.set); when enabled, every pass output is re-checked and a
   miscompile surfaces as Verify.Gate.Rejected at the offending stage
   instead of as a silently wrong simulation. *)
let gate stage k =
  Verify.Gate.run ~stage [ Verify.Gate.Kernel { block_size = None; kernel = k } ]

let run ?(intfold = true) ?block_size k =
  gate "opt:input" k;
  let input = k in
  (* the interval-driven fold is a whole-kernel fixpoint analysis, so it
     runs once up front; the cheap peephole loop below cleans up after
     it. It bakes launch geometry (ntid, tid ranges) into constants, so
     it only fires when the caller states the real [block_size] — the
     analysis default would be unsound for any other launch. *)
  let k, intfolded =
    if intfold && block_size <> None then begin
      let k, n = Intfold.run ?block_size k in
      gate "opt:intfold" k;
      (k, n)
    end
    else (k, 0)
  in
  let rec loop k acc iters =
    let k, f = Constfold.run k in
    gate "opt:constfold" k;
    let k, p = Copyprop.run k in
    gate "opt:copyprop" k;
    let k, e = Dce.run k in
    gate "opt:dce" k;
    let acc =
      { folded = acc.folded + f
      ; propagated = acc.propagated + p
      ; eliminated = acc.eliminated + e
      ; iterations = iters
      }
    in
    if f + p + e = 0 || iters >= 8 then (k, acc) else loop k acc (iters + 1)
  in
  let k, acc =
    loop k
      { folded = intfolded; propagated = 0; eliminated = 0; iterations = 1 }
      1
  in
  (* translation-validate the whole edge: symbolic co-execution of the
     input against the fixpoint output (E201 refutations reject) *)
  Verify.Gate.run ~stage:"opt:equiv"
    [ Verify.Gate.Equiv
        { block_size = Option.value block_size ~default:128
        ; num_blocks = None
        ; left = input
        ; right = k
        }
    ];
  (k, acc)

let pp_report fmt r =
  Format.fprintf fmt "%d folded, %d propagated, %d eliminated (%d iterations)"
    r.folded r.propagated r.eliminated r.iterations
