(** The standard cleanup pipeline run after kernel construction or spill
    insertion: constant folding, copy propagation, then dead-code
    elimination, iterated until nothing changes.

    When the verifier gate is enabled ([CRAT_VERIFY=1] or
    [Verify.Gate.set true]), the output of every pass is statically
    re-verified and {!run} raises [Verify.Gate.Rejected] if a pass
    produced an error-severity diagnostic. *)

type report =
  { folded : int
  ; propagated : int
  ; eliminated : int
  ; iterations : int
  }

(** [intfold] (default true) arms the abstract-interpretation-backed
    {!Intfold} pass as a pre-step; pass [~intfold:false] to opt out. The
    pass folds launch-geometry facts into constants, so it only fires
    when [block_size] is given — without it the analysis would assume a
    default geometry and miscompile other launches. Folded operands are
    counted in [report.folded]. When the gate is enabled the whole edge
    (input vs fixpoint output) is additionally translation-validated at
    stage ["opt:equiv"]. *)
val run : ?intfold:bool -> ?block_size:int -> Ptx.Kernel.t -> Ptx.Kernel.t * report
val pp_report : Format.formatter -> report -> unit
