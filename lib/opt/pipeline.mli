(** The standard cleanup pipeline run after kernel construction or spill
    insertion: constant folding, copy propagation, then dead-code
    elimination, iterated until nothing changes.

    When the verifier gate is enabled ([CRAT_VERIFY=1] or
    [Verify.Gate.set true]), the output of every pass is statically
    re-verified and {!run} raises [Verify.Gate.Rejected] if a pass
    produced an error-severity diagnostic. *)

type report =
  { folded : int
  ; propagated : int
  ; eliminated : int
  ; iterations : int
  }

(** [intfold] (default false) arms the abstract-interpretation-backed
    {!Intfold} pass as a pre-step; its folded operands are counted in
    [report.folded]. [block_size] sharpens that analysis. *)
val run : ?intfold:bool -> ?block_size:int -> Ptx.Kernel.t -> Ptx.Kernel.t * report
val pp_report : Format.formatter -> report -> unit
