(** SIMT functional interpreter — allocation-free fast path.

    Warps of [warp_size] lanes execute instructions in lock-step under
    an active mask; divergent branches push entries on a reconvergence
    stack whose join points come from post-dominator analysis
    ({!Image}). Memory effects are applied immediately (weak
    consistency, as on real GPUs); the timing layer only delays
    register availability.

    The interpreter runs the predecoded form ({!Dcode}) carried by the
    image: flat per-warp register files of raw bit patterns, an array
    reconvergence stack and a reusable lane-address scratch buffer, so
    the steady-state [step] allocates nothing. Semantics are defined by
    {!Refinterp} (the original boxed interpreter), with differential
    property tests keeping the two in lockstep agreement.

    The same interpreter drives both the cycle-accurate simulator
    ({!Sm}) and the reference emulator ({!Emulator}) used by the
    semantics-preservation property tests. *)

type launch_ctx =
  { image : Image.t
  ; global : Memory.t
  ; params : (string * Value.t) list
  ; block_size : int
  ; num_blocks : int
  ; san : Sancheck.runtime option
      (** armed sanitizer: shared/local lane accesses are checked
          against its per-pc mask, and violating lanes suppressed *)
  }

type block_ctx =
  { launch : launch_ctx
  ; ctaid : int
  ; shared : Memory.t
  ; nwarps : int
  ; param_bits : int64 array
      (** per {!Dcode} param index: raw value bits (internal) *)
  ; param_isf : bool array  (** float-tagged? (internal) *)
  ; param_ok : bool array  (** bound in the launch? (internal) *)
  }

type warp

val make_block : launch_ctx -> ctaid:int -> warp_size:int -> block_ctx * warp list
(** Create a block's warps. [block_size] must be a positive multiple of
    [warp_size]. *)

val is_done : warp -> bool
val pc : warp -> int
val active_mask : warp -> int
val block_of : warp -> block_ctx
val warp_id : warp -> int  (** index within the block *)

val peek : warp -> Ptx.Instr.t option
(** The instruction the next {!step} will execute; [None] when done. *)

val fetch : warp -> int
(** Non-allocating {!peek}: the normalized pc the next {!step} will
    execute, or [-1] when the warp is done (or past the end of the
    code). Index into the image's [Dcode] per-pc arrays. *)

(** What a step did, for the timing layer (= {!Dcode.exec};
    preallocated per pc, so [step] returns an existing block). *)
type exec = Dcode.exec =
  | E_alu of Ptx.Instr.op_class
      (** register-to-register work (incl. control, param/const loads) *)
  | E_mem of
      { space : Ptx.Types.space
      ; write : bool
      ; width : int
      }
      (** lane addresses are exposed via {!mem_count}/{!mem_addr}/
          {!mem_lane}, valid until the warp's next step *)
  | E_barrier
  | E_exit

val step : warp -> exec
(** Execute one instruction. @raise Failure on a divergent [ret]. *)

val mem_count : warp -> int
(** Number of (lane, address) pairs recorded by the last [E_mem] step. *)

val mem_addr : warp -> int -> int64
(** [i]-th recorded address, in ascending lane order. *)

val mem_lane : warp -> int -> int
(** [i]-th recorded lane, ascending. *)

val popcount : int -> int
(** Number of set bits — active lanes of a mask. Branch-free SWAR. *)

val read_reg_values : warp -> Ptx.Reg.t -> Value.t array
(** Current per-lane values of a register (testing/debugging). *)

val reg_key : Ptx.Reg.t -> int
(** Physical-slot key: width class and id, ignoring the scalar type —
    two allocated registers with the same colour share a slot. Used by
    the timing layer's scoreboard. *)
