(** Per-pc dynamic counters for cross-validating the static advisor.

    Runs a whole launch through the reference interpreter
    ({!Refinterp}) and records, at every flat instruction index of the
    kernel's {!Cfg.Flow}:

    - memory accesses: execution count, the maximum number of distinct
      L1-line segments a single warp access touched (global and local
      spaces, post local-interleave — exactly what {!Sm.coalesce}
      counts), and the maximum shared-memory bank-conflict degree
      (mirroring {!Sm.bank_conflict_degree});
    - conditional branches: execution count and how many executions
      actually split the warp.

    The static advisor ({!Verify.Advisor}) must cover every event
    recorded here with a "may" prediction at the same pc, and no
    dynamic maximum may exceed a static bound — the differential
    honesty check run by [crat lint --validate]. *)

type mem_stat =
  { mutable m_execs : int
  ; mutable max_segments : int  (** 0 until a global/local access fires *)
  ; mutable max_bank_degree : int  (** 0 until a shared access fires *)
  ; m_space : Ptx.Types.space
  }

type branch_stat =
  { mutable b_execs : int
  ; mutable b_divergent : int  (** executions where the warp split *)
  }

type t

val run : ?line:int -> ?banks:int -> ?sanitize:Sancheck.runtime -> Launch.t -> t
(** Execute the launch (mutating its global memory in place) and
    collect the counters. Geometry defaults match {!Config.fermi}.
    [sanitize] arms the hybrid sanitizer in the underlying
    {!Refinterp}; its counters belong to the caller. *)

val mems : t -> (int * mem_stat) list
(** Per-pc memory counters, ascending by pc. *)

val branches : t -> (int * branch_stat) list
