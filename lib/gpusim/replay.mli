(** Trace-driven replay: record a launch's dynamic trace once, replay it
    through the timing layer arbitrarily many times.

    The timing pipeline ({!Sm}'s scoreboard, LSU, coalescer, caches and
    bank-conflict model) consumes only three things per issued warp
    instruction: the pc (indexing {!Dcode}'s per-pc tables), the active
    mask, and — for shared/global/local accesses — the resolved lane
    addresses. All three are invariant across timing configurations for
    a fixed launch (kernel image, geometry, parameters, initial
    memory): this is the trace-mode decoupling of GPGPU-Sim/Accel-Sim.
    A recording run captures them per warp in flat growable arrays; a
    {!cursor} then feeds them back to the timing layer, skipping
    {!Dcode} operand evaluation and register-file writes entirely, and
    a replayed run's {!Stats.t} is bit-identical to a cold one.

    Traces are keyed by {!launch_key} — kernel image, geometry,
    parameters and a canonical {!Memory.digest} of the initial memory,
    explicitly NOT the timing {!Config.t} or TLP limit — so one
    recording serves a whole multi-config sweep ({!Store}). *)

type wtrace
(** One warp's trace: the issued pc sequence with active masks, plus
    the flat lane-address stream consumed by memory events. *)

type t
(** A whole launch's trace: per-[ctaid] per-warp {!wtrace}s, sharing
    the prepared kernel image. *)

val create : Launch.t -> t
(** Empty trace for a launch (prepares the kernel image once; replayed
    runs reuse it and skip {!Image.prepare} too). *)

val image : t -> Image.t
val block_size : t -> int
val num_blocks : t -> int
val warp_size : t -> int

val events : t -> int
(** Total recorded footprint: issued instructions plus recorded lane
    addresses — the unit of the {!Store} budget. *)

(** {2 Recording} *)

val wtrace : t -> ctaid:int -> wid:int -> wtrace
(** The warp's trace buffer. Recording appends; a warp is recorded at
    most once per launch (block ids are dispensed globally). *)

val record : wtrace -> pc:int -> mask:int -> unit
(** Append one issued instruction. For a memory instruction
    ([Dcode.exec_of.(pc)] is [E_mem]), exactly [popcount mask] lane
    addresses must follow via {!record_addr} before the next {!record}. *)

val record_addr : wtrace -> int64 -> unit

val finish : t -> unit
(** Shrink every warp buffer to its recorded length. Call once after a
    successful recording run, before storing the trace. *)

(** {2 Replay} *)

type cursor
(** A replay front-end over one warp's trace, presenting the same
    stepping surface {!Sm} consumes from a live {!Interp.warp}:
    {!fetch}/{!active_mask}/{!step}/{!mem_count}/{!mem_addr}. *)

val cursor : t -> ctaid:int -> wid:int -> cursor
val is_done : cursor -> bool
val warp_id : cursor -> int

val fetch : cursor -> int
(** Next pc to issue, or [-1] when the trace is exhausted. *)

val active_mask : cursor -> int

val step : cursor -> Dcode.exec
(** Advance one event; for [E_mem] the lane addresses become available
    through {!mem_count}/{!mem_addr} until the next {!step}. *)

val mem_count : cursor -> int
val mem_addr : cursor -> int -> int64

(** {2 Launch keys and the trace store} *)

val launch_key : ?kernel_digest:string -> Launch.t -> string
(** Content key of a launch's dynamic trace: digest over the kernel
    image (pass [kernel_digest] to reuse a memoized digest of
    [l.kernel]), block size, grid size, warp size, parameters and the
    canonical initial-memory digest. Ignores timing configuration and
    [tlp_limit] — the trace is schedule-independent for the race-free
    kernels the simulator models. *)

val to_bytes : t -> string
(** Marshal a finished trace (the whole record, prepared image
    included — all pure data) for a persistent store. *)

val of_bytes : string -> t option
(** Unmarshal a {!to_bytes} payload; [None] when the payload does not
    unmarshal. Only feed this checksummed bytes that {!to_bytes} wrote —
    unmarshalling is not type-safe. *)

(** Thread-safe bounded trace store, keyed by {!launch_key}. *)
module Store : sig
  type trace = t
  type t

  val create :
    ?max_events:int -> ?on_evict:(string -> trace -> unit) -> unit -> t
  (** [max_events] (default [1 lsl 25]) bounds the summed {!events} of
      resident traces; inserting past the budget evicts oldest-first. A
      single trace larger than the whole budget is not stored.
      [on_evict] observes each eviction (key and trace) before the trace
      is dropped — the engine uses it to spill evicted traces to the
      persistent on-disk store instead of losing them. *)

  val find : t -> string -> trace option
  val add : t -> string -> trace -> unit
  val mem : t -> string -> bool
  val length : t -> int
  val events : t -> int
  val clear : t -> unit
end
