(** Simulated GPU configurations.

    {!fermi} reproduces the paper's Table 2 (GPGPU-Sim 3.2.3, Fermi-like);
    {!kepler} is the scaled configuration of Section 7.3 (256 KB register
    file, 2048 threads per SM). *)

type t =
  { name : string
  ; num_sms : int
  ; warp_size : int
  ; max_threads_per_sm : int
  ; max_blocks_per_sm : int
  ; regfile_bytes_per_sm : int
  ; scalar_regs_per_sm : int
      (** scalar-file 32-bit registers per SM, shared per-warp by the
          machine backend; the PTX backend never touches it *)
  ; shared_bytes_per_sm : int
  ; num_schedulers : int  (** warp schedulers per SM *)
  ; max_regs_per_thread : int  (** hardware/ABI cap per thread *)
  ; l1_bytes : int
  ; l1_assoc : int
  ; l1_line : int
  ; l1_mshrs : int
  ; l1_hit_latency : int
  ; l1_ports : int  (** cache accesses accepted per cycle *)
  ; shared_latency : int
  ; shared_banks : int
      (** shared memory banks; conflicting lanes serialise *)
  ; l2_bytes : int
  ; l2_assoc : int
  ; l2_latency : int
  ; icnt_bytes_per_cycle : int
      (** L1<->L2 interconnect bandwidth per SM *)
  ; dram_latency : int
  ; dram_bytes_per_cycle : int
  ; alu_latency : int
  ; alu_heavy_latency : int
  ; sfu_latency : int
  ; const_latency : int
  }

val fermi : t
val kepler : t
val registers_per_sm : t -> int
(** 32-bit registers per SM ([regfile_bytes / 4]). *)

val min_reg : t -> int
(** The paper's MinReg: [NumRegister / MaxThreads] — allocating fewer
    registers per thread than this cannot raise the TLP. *)

val pp : Format.formatter -> t -> unit
(** Table 2-style rendering. *)
