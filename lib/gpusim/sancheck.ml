type bound =
  | Segment of
      { lo : int
      ; hi : int
      }
  | Per_thread of
      { base : int
      ; stride : int
      }

type claim =
  | Proven_safe of bound
  | Proven_oob of bound
  | Residual of bound

type t =
  { claims : claim option array
  ; force : bool
  }

let make ?(force = false) ~num_instrs claims =
  let a = Array.make (max 1 num_instrs) None in
  List.iter
    (fun (pc, c) ->
       if pc >= 0 && pc < Array.length a then a.(pc) <- Some c)
    claims;
  { claims = a; force }

let force_all t = { t with force = true }

let claim_at t pc =
  if pc < 0 || pc >= Array.length t.claims then None else t.claims.(pc)

let is_empty t = Array.for_all Option.is_none t.claims

type violation =
  { v_pc : int
  ; v_lane : int
  ; v_tid : int
  ; v_addr : int64
  }

type stat =
  { mutable seen : int
  ; mutable checked : int
  ; mutable violations : int
  ; mutable first : violation option
  }

type counters = (int, stat) Hashtbl.t

let counters () : counters = Hashtbl.create 16

let stat (c : counters) pc =
  match Hashtbl.find_opt c pc with
  | Some s -> s
  | None ->
    let s = { seen = 0; checked = 0; violations = 0; first = None } in
    Hashtbl.add c pc s;
    s

let stats (c : counters) =
  List.sort
    (fun (a, _) (b, _) -> Stdlib.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) c [])

let sum f (c : counters) = Hashtbl.fold (fun _ s acc -> acc + f s) c 0
let seen c = sum (fun s -> s.seen) c
let checked c = sum (fun s -> s.checked) c
let violations c = sum (fun s -> s.violations) c

let first_violation (c : counters) =
  Hashtbl.fold
    (fun _ s acc ->
       match (acc, s.first) with
       | None, v -> v
       | Some _, None -> acc
       | Some a, Some b -> if b.v_pc < a.v_pc then Some b else acc)
    c None

type runtime =
  { mask : t
  ; counters : counters
  }

let runtime mask = { mask; counters = counters () }

let within ~lo ~hi ~width rel =
  Int64.compare (Int64.of_int lo) rel <= 0
  && Int64.compare (Int64.add rel (Int64.of_int width)) (Int64.of_int hi) <= 0

let test b ~tid ~width rel =
  match b with
  | Segment { lo; hi } -> within ~lo ~hi ~width rel
  | Per_thread { base; stride } ->
    let lo = base + (tid * stride) in
    within ~lo ~hi:(lo + stride) ~width rel

let check rt ~pc ~lane ~tid ~width ~rel =
  match claim_at rt.mask pc with
  | None -> true
  | Some c ->
    let s = stat rt.counters pc in
    s.seen <- s.seen + 1;
    let armed_bound =
      match c with
      | Proven_safe b -> if rt.mask.force then Some b else None
      | Proven_oob b | Residual b -> Some b
    in
    (match armed_bound with
     | None -> true
     | Some b ->
       s.checked <- s.checked + 1;
       if test b ~tid ~width rel then true
       else begin
         s.violations <- s.violations + 1;
         if s.first = None then
           s.first <- Some { v_pc = pc; v_lane = lane; v_tid = tid; v_addr = rel };
         false
       end)
