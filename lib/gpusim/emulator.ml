let run_block lctx ~ctaid ~warp_size =
  let _block, warps = Interp.make_block lctx ~ctaid ~warp_size in
  let warps = Array.of_list warps in
  let waiting = Array.make (Array.length warps) false in
  let all_done () = Array.for_all Interp.is_done warps in
  (* run each warp until it blocks on a barrier or finishes; release the
     barrier when every live warp reached it *)
  let progress = ref true in
  while (not (all_done ())) && !progress do
    progress := false;
    Array.iteri
      (fun i w ->
         if (not (Interp.is_done w)) && not waiting.(i) then begin
           let stop = ref false in
           while not !stop do
             match Interp.step w with
             | Interp.E_barrier ->
               waiting.(i) <- true;
               stop := true;
               progress := true
             | Interp.E_exit ->
               stop := true;
               progress := true
             | Interp.E_alu _ | Interp.E_mem _ -> progress := true
           done
         end)
      warps;
    (* all live warps waiting -> release the barrier *)
    let live_blocked = ref true in
    Array.iteri
      (fun i w -> if (not (Interp.is_done w)) && not waiting.(i) then live_blocked := false)
      warps;
    if !live_blocked then
      Array.iteri (fun i _ -> waiting.(i) <- false) warps
  done;
  if not (all_done ()) then failwith "Emulator: barrier deadlock"

let run ?sanitize (l : Launch.t) =
  let image = Image.prepare l.Launch.kernel in
  let lctx =
    { Interp.image
    ; global = l.Launch.memory
    ; params = l.Launch.params
    ; block_size = l.Launch.block_size
    ; num_blocks = l.Launch.num_blocks
    ; san = sanitize
    }
  in
  for ctaid = 0 to l.Launch.num_blocks - 1 do
    run_block lctx ~ctaid ~warp_size:l.Launch.warp_size
  done

let run_to_memory (l : Launch.t) =
  let m = Memory.copy l.Launch.memory in
  run { l with Launch.memory = m };
  m
