type result =
  { per_sm : Stats.t array
  ; total_cycles : int
  ; dram_bytes : int
  ; l2 : Cache.stats
  }

exception Cycle_limit of result

let run ?sms ?(max_cycles = 40_000_000) ?scheduler ?record ?replay
    (cfg : Config.t) (l : Launch.t) =
  let n_sms = Option.value ~default:cfg.Config.num_sms sms in
  let shared = Sm.make_shared cfg in
  let next = ref 0 in
  let next_block () =
    if !next >= l.Launch.num_blocks then None
    else begin
      let b = !next in
      incr next;
      Some b
    end
  in
  (* block ids are dispensed globally, so each block lands on exactly
     one SM and a shared trace records (or replays) each exactly once *)
  let units =
    Array.init n_sms (fun _ ->
      Sm.create ?scheduler ?record ?replay cfg shared ~next_block l)
  in
  let cycle = ref 0 in
  let mk_result () =
    { per_sm = Array.map Sm.finalize units
    ; total_cycles = !cycle
    ; dram_bytes = Sm.shared_dram_bytes shared
    ; l2 = Sm.shared_l2_stats shared
    }
  in
  (* Per-cycle loop without per-cycle closures: a unit is stepped while
     its [running] flag holds, and the flag drops exactly when the unit
     goes idle ([Sm.busy] is monotone — the shared dispenser never
     refills a drained SM). Same step sequence as scanning [Sm.busy]
     every cycle, minus the allocation. *)
  let n = Array.length units in
  let running = Array.make n false in
  let n_running = ref 0 in
  for i = 0 to n - 1 do
    if Sm.busy units.(i) then begin
      running.(i) <- true;
      incr n_running
    end
  done;
  while !n_running > 0 do
    if !cycle > max_cycles then raise (Cycle_limit (mk_result ()));
    for i = 0 to n - 1 do
      if running.(i) then begin
        let u = units.(i) in
        Sm.step u;
        if not (Sm.busy u) then begin
          running.(i) <- false;
          decr n_running
        end
      end
    done;
    incr cycle
  done;
  mk_result ()

let aggregate_ipc r =
  if r.total_cycles = 0 then 0.
  else
    float_of_int
      (Array.fold_left (fun acc s -> acc + s.Stats.warp_instrs) 0 r.per_sm)
    /. float_of_int r.total_cycles
