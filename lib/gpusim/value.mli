(** Runtime values of the functional interpreter. Integers are carried as
    [int64] and truncated to the operation width at each step; floats are
    carried at double precision (single-precision rounding is applied for
    [f32] results). *)

type t =
  | I of int64
  | F of float

val zero : t
val to_bits : t -> int64
val of_int : int -> t
val is_f : t -> bool

val truncate : Ptx.Types.scalar -> t -> t
(** Normalise a value to the given type: mask integers to the width (with
    sign extension for signed types), round floats to [f32] when needed,
    coerce representation (bits reinterpretation between I/F). *)

val to_float : t -> float
val to_int64 : t -> int64
val to_bool : t -> bool

val binop : Ptx.Instr.binop -> Ptx.Types.scalar -> t -> t -> t
val unop : Ptx.Instr.unop -> Ptx.Types.scalar -> t -> t
val mad : Ptx.Types.scalar -> t -> t -> t -> t
val compare_values : Ptx.Instr.cmp -> Ptx.Types.scalar -> t -> t -> bool
val convert : dst:Ptx.Types.scalar -> src:Ptx.Types.scalar -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {2 Bit-pattern kernels}

    A value is equivalently a 64-bit pattern plus a constructor tag
    [isf] ([I i] ↔ pattern [i]; [F f] ↔ pattern [Int64.bits_of_float f]).
    The interpreter's allocation-free fast path stores only patterns (and
    a per-lane tag bit where the tag is observable) in flat register
    files, and evaluates instructions through these kernels. The boxed
    API above is defined in terms of them, so the two representations
    cannot drift apart. The tag is observable only through [to_int64]
    — i.e. [to_int64_bits], [to_bool_bits] and predicate truncation. *)

val of_bits : Ptx.Types.scalar -> int64 -> t
(** Box a bit pattern: [F]-tagged iff the type is a float type. *)

val to_int64_bits : isf:bool -> int64 -> int64
val to_bool_bits : isf:bool -> int64 -> bool
val truncate_bits : Ptx.Types.scalar -> isf:bool -> int64 -> int64
val binop_bits : Ptx.Instr.binop -> Ptx.Types.scalar -> int64 -> int64 -> int64
val unop_bits : Ptx.Instr.unop -> Ptx.Types.scalar -> int64 -> int64
val mad_bits : Ptx.Types.scalar -> int64 -> int64 -> int64 -> int64
val compare_bits : Ptx.Instr.cmp -> Ptx.Types.scalar -> int64 -> int64 -> bool
val convert_bits : dst:Ptx.Types.scalar -> src:Ptx.Types.scalar -> int64 -> int64
val round_f32 : float -> float
