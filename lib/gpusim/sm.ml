exception Cycle_limit of Stats.t

(* The instruction front-end: either a live functional interpreter warp
   or a replay cursor over a previously recorded trace. The timing
   machinery below consumes only the surface both share — next pc,
   active mask, step outcome and resolved lane addresses — so replay
   produces bit-identical statistics while skipping operand evaluation
   and register-file writes entirely. *)
type front =
  | Live of Interp.warp
  | Cur of Replay.cursor

let f_done = function
  | Live w -> Interp.is_done w
  | Cur c -> Replay.is_done c

let f_fetch = function
  | Live w -> Interp.fetch w
  | Cur c -> Replay.fetch c

let f_mask = function
  | Live w -> Interp.active_mask w
  | Cur c -> Replay.active_mask c

let f_wid = function
  | Live w -> Interp.warp_id w
  | Cur c -> Replay.warp_id c

let f_step = function
  | Live w -> Interp.step w
  | Cur c -> Replay.step c

let f_mem_count = function
  | Live w -> Interp.mem_count w
  | Cur c -> Replay.mem_count c

let f_mem_addr f i =
  match f with
  | Live w -> Interp.mem_addr w i
  | Cur c -> Replay.mem_addr c i

(* an in-flight load: registers become ready when all segments return *)
type pending_load =
  { defs : int array  (** scoreboard slots (shared with Dcode, read-only) *)
  ; wslot : wstate
  ; mutable remaining : int
  ; mutable ready_at : int
  }

and wstate =
  { w : front
  ; tr : Replay.wtrace option  (** recording sink, when capturing a trace *)
  ; sb : int array  (** scoreboard: register slot -> ready cycle *)
  ; mutable waiting_barrier : bool
  ; bstate : bstate
  ; age : int  (** global age for oldest-first ordering *)
  }

and bstate =
  { mutable live_warps : int
  ; mutable at_barrier : int
  ; mutable warps : wstate list
  ; mutable paused : bool
      (** dynamic throttling: a paused block's warps are not scheduled *)
  ; seq : int
  }

type blocked =
  | Ready
  | Scoreboard
  | Mem_queue
  | Barrier
  | Done

let infinity_cycle = max_int / 2

let latency_of (c : Config.t) = function
  | Ptx.Instr.Alu -> c.Config.alu_latency
  | Ptx.Instr.Alu_heavy -> c.Config.alu_heavy_latency
  | Ptx.Instr.Sfu -> c.Config.sfu_latency
  | Ptx.Instr.Mem_const_param -> c.Config.const_latency
  | Ptx.Instr.Ctrl -> c.Config.alu_latency
  | Ptx.Instr.Mem_global | Ptx.Instr.Mem_local | Ptx.Instr.Mem_shared
  | Ptx.Instr.Barrier -> c.Config.alu_latency

let lsu_capacity = 64
let lsu_headroom = 8

(* ---------- the memory hierarchy behind the L1s ---------- *)

type shared_memsys =
  { l2 : Cache.t
  ; dram : Cache.Dram.t
  }

let make_shared (cfg : Config.t) =
  let dram =
    Cache.Dram.create ~latency:cfg.Config.dram_latency
      ~bytes_per_cycle:cfg.Config.dram_bytes_per_cycle
  in
  let l2_next ~cycle ~addr =
    ignore addr;
    Cache.Miss (Cache.Dram.request dram ~cycle ~bytes:cfg.Config.l1_line)
  in
  let l2 =
    Cache.create ~name:"L2" ~bytes:cfg.Config.l2_bytes ~assoc:cfg.Config.l2_assoc
      ~line:cfg.Config.l1_line ~mshrs:1024 ~hit_latency:cfg.Config.l2_latency
      ~next:l2_next
  in
  { l2; dram }

let shared_dram_bytes m = Cache.Dram.traffic_bytes m.dram
let shared_l2_stats m = Cache.stats m.l2

(* ---------- SM state ---------- *)

type mode =
  | M_live
  | M_record of Replay.t
  | M_replay of Replay.t

(* The LSU segment queue is a ring of parallel arrays (addresses as bit
   patterns in a float array; write/write_alloc/bypass packed into flag
   bits) so the steady state pushes and pops without allocating. The
   shared [pending_load option] is allocated once per load instruction,
   not per segment. *)
type t =
  { cfg : Config.t
  ; st : Stats.t
  ; lctx : Interp.launch_ctx
  ; code : Dcode.t
  ; mode : mode
  ; nwarps : int  (* warps per block *)
  ; shared : shared_memsys
  ; l1 : Cache.t
  ; remote : cycle:int -> addr:int64 -> Cache.result
  ; bypass_global : bool
  ; dynamic_tlp : bool
  ; mutable window_mem_stall : int
  ; mutable window_replays : int
  ; scheduler : [ `Gto | `Lrr ]
  ; next_block : unit -> int option
  ; pools : wstate array array
  ; mutable pools_dirty : bool
  ; mutable live_blocks : bstate list
  ; mutable lsu_addr : float array  (* segment address bit patterns *)
  ; mutable lsu_flags : int array  (* bit0 write, bit1 write_alloc, bit2 bypass *)
  ; mutable lsu_load : pending_load option array
  ; mutable lsu_head : int
  ; mutable lsu_len : int
  ; seg_buf : int array  (* coalescing scratch: line indices *)
  ; word_buf : int array  (* bank-conflict scratch: distinct words *)
  ; bank_counts : int array  (* per signed-mod bank class *)
  ; mutable active_blocks : int
  ; mutable dispenser_dry : bool
  ; mutable age_counter : int
  ; mutable now : int
  ; greedy : wstate option array
  }

let launch_block sm =
  if not sm.dispenser_dry then begin
    match sm.next_block () with
    | None -> sm.dispenser_dry <- true
    | Some ctaid ->
      sm.active_blocks <- sm.active_blocks + 1;
      sm.st.Stats.max_concurrent_blocks <-
        max sm.st.Stats.max_concurrent_blocks sm.active_blocks;
      let fronts =
        match sm.mode with
        | M_live | M_record _ ->
          let _bctx, warps =
            Interp.make_block sm.lctx ~ctaid ~warp_size:sm.cfg.Config.warp_size
          in
          List.map (fun w -> Live w) warps
        | M_replay tr ->
          List.init sm.nwarps (fun wid -> Cur (Replay.cursor tr ~ctaid ~wid))
      in
      let bs =
        { live_warps = List.length fronts
        ; at_barrier = 0
        ; warps = []
        ; paused = false
        ; seq = ctaid
        }
      in
      let nslots = max 1 (Dcode.num_slots sm.code) in
      bs.warps <-
        List.mapi
          (fun wid w ->
             sm.age_counter <- sm.age_counter + 1;
             { w
             ; tr =
                 (match sm.mode with
                  | M_record tr -> Some (Replay.wtrace tr ~ctaid ~wid)
                  | M_live | M_replay _ -> None)
             ; sb = Array.make nslots 0
             ; waiting_barrier = false
             ; bstate = bs
             ; age = sm.age_counter
             })
          fronts;
      sm.live_blocks <- sm.live_blocks @ [ bs ];
      sm.pools_dirty <- true
  end

let rebuild_pools sm =
  let total = sm.cfg.Config.num_schedulers in
  let all =
    List.concat_map
      (fun bs -> if bs.paused then [] else bs.warps)
      sm.live_blocks
  in
  let alive = List.filter (fun ws -> not (f_done ws.w)) all in
  for s = 0 to total - 1 do
    sm.pools.(s) <-
      Array.of_list (List.filter (fun ws -> f_wid ws.w mod total = s) alive)
  done;
  (* blocks are appended in launch order and warps in wid order, so the
     pools are already oldest-first *)
  sm.pools_dirty <- false

let create ?(scheduler = `Gto) ?(dynamic_tlp = false) ?(bypass_global = false)
    ?record ?replay (cfg : Config.t) shared ~next_block (l : Launch.t) =
  if l.Launch.warp_size <> cfg.Config.warp_size then
    invalid_arg "Sm.create: launch warp_size differs from the configuration's";
  let mode, image =
    match (record, replay) with
    | Some _, Some _ -> invalid_arg "Sm.create: record and replay are exclusive"
    | Some tr, None -> (M_record tr, Replay.image tr)
    | None, Some tr ->
      if
        Replay.block_size tr <> l.Launch.block_size
        || Replay.num_blocks tr <> l.Launch.num_blocks
        || Replay.warp_size tr <> l.Launch.warp_size
      then invalid_arg "Sm.create: replay trace does not match the launch";
      (M_replay tr, Replay.image tr)
    | None, None -> (M_live, Image.prepare l.Launch.kernel)
  in
  (* each SM owns its interconnect port; the L2 and DRAM behind it are
     shared between SMs *)
  let icnt =
    Cache.Dram.create ~latency:cfg.Config.l2_latency
      ~bytes_per_cycle:cfg.Config.icnt_bytes_per_cycle
  in
  let lctx =
    { Interp.image
    ; global = l.Launch.memory
    ; params = l.Launch.params
    ; block_size = l.Launch.block_size
    ; num_blocks = l.Launch.num_blocks
    ; san = None
    }
  in
  let l1_next ~cycle ~addr =
    let t_icnt = Cache.Dram.request icnt ~cycle ~bytes:cfg.Config.l1_line in
    match Cache.access shared.l2 ~cycle ~addr ~write:false ~write_alloc:true with
    | Cache.Hit -> Cache.Miss t_icnt
    | Cache.Miss c -> Cache.Miss (max t_icnt c)
    | Cache.Reserve_fail -> Cache.Reserve_fail
  in
  let l1 =
    Cache.create ~name:"L1D" ~bytes:cfg.Config.l1_bytes ~assoc:cfg.Config.l1_assoc
      ~line:cfg.Config.l1_line ~mshrs:cfg.Config.l1_mshrs
      ~hit_latency:cfg.Config.l1_hit_latency ~next:l1_next
  in
  let lsu_cap = 128 (* > capacity + headroom slack + one warp's segments *) in
  let sm =
    { cfg
    ; st = Stats.create ()
    ; lctx
    ; code = image.Image.code
    ; mode
    ; nwarps = l.Launch.block_size / l.Launch.warp_size
    ; shared
    ; l1
    ; remote = l1_next
    ; bypass_global
    ; dynamic_tlp
    ; window_mem_stall = 0
    ; window_replays = 0
    ; scheduler
    ; next_block
    ; pools = Array.make cfg.Config.num_schedulers [||]
    ; pools_dirty = true
    ; live_blocks = []
    ; lsu_addr = Array.make lsu_cap 0.0
    ; lsu_flags = Array.make lsu_cap 0
    ; lsu_load = Array.make lsu_cap None
    ; lsu_head = 0
    ; lsu_len = 0
    ; seg_buf = Array.make cfg.Config.warp_size 0
    ; word_buf = Array.make cfg.Config.warp_size 0
    ; bank_counts = Array.make ((2 * cfg.Config.shared_banks) + 1) 0
    ; active_blocks = 0
    ; dispenser_dry = false
    ; age_counter = 0
    ; now = 0
    ; greedy = Array.make cfg.Config.num_schedulers None
    }
  in
  for _ = 1 to max 1 l.Launch.tlp_limit do
    launch_block sm
  done;
  sm

let busy sm = sm.active_blocks > 0 || not sm.dispenser_dry

(* ---------- LSU ring ---------- *)

let lsu_grow sm =
  let cap = Array.length sm.lsu_addr in
  let ncap = 2 * cap in
  let gaddr = Array.make ncap 0.0 in
  let gflags = Array.make ncap 0 in
  let gload = Array.make ncap None in
  for i = 0 to sm.lsu_len - 1 do
    let j = (sm.lsu_head + i) mod cap in
    gaddr.(i) <- sm.lsu_addr.(j);
    gflags.(i) <- sm.lsu_flags.(j);
    gload.(i) <- sm.lsu_load.(j)
  done;
  sm.lsu_addr <- gaddr;
  sm.lsu_flags <- gflags;
  sm.lsu_load <- gload;
  sm.lsu_head <- 0

let lsu_push sm addr ~write ~write_alloc ~bypass load =
  if sm.lsu_len = Array.length sm.lsu_addr then lsu_grow sm;
  let cap = Array.length sm.lsu_addr in
  let i = (sm.lsu_head + sm.lsu_len) mod cap in
  sm.lsu_addr.(i) <- Int64.float_of_bits addr;
  sm.lsu_flags.(i) <-
    (if write then 1 else 0)
    lor (if write_alloc then 2 else 0)
    lor (if bypass then 4 else 0);
  sm.lsu_load.(i) <- load;
  sm.lsu_len <- sm.lsu_len + 1

let lsu_pop sm =
  sm.lsu_load.(sm.lsu_head) <- None;
  sm.lsu_head <- (sm.lsu_head + 1) mod Array.length sm.lsu_addr;
  sm.lsu_len <- sm.lsu_len - 1

(* ---------- per-cycle machinery ---------- *)

let sb_ready sm ws pc =
  let now = sm.now in
  let sb = ws.sb in
  let ok slots =
    let n = Array.length slots in
    let rec loop i =
      i >= n
      || (Array.unsafe_get sb (Array.unsafe_get slots i) <= now && loop (i + 1))
    in
    loop 0
  in
  ok sm.code.Dcode.uses.(pc) && ok sm.code.Dcode.defs.(pc)

let set_pending ws slot ready = ws.sb.(slot) <- ready

let status sm ws : blocked =
  if f_done ws.w then Done
  else if ws.waiting_barrier then Barrier
  else begin
    let pc = f_fetch ws.w in
    if pc < 0 then Done
    else if not (sb_ready sm ws pc) then Scoreboard
    else if
      Array.unsafe_get sm.code.Dcode.is_gl_mem pc
      && sm.lsu_len + lsu_headroom > lsu_capacity
    then Mem_queue
    else Ready
  end

(* Coalescing: the warp's recorded lane addresses, reduced to the sorted
   set of distinct L1-line indices (in [seg_buf]; ascending, as the
   reference [List.sort_uniq] produced). Returns the segment count. *)
let coalesce sm (w : front) =
  let line = Int64.of_int sm.cfg.Config.l1_line in
  let n = f_mem_count w in
  let buf = sm.seg_buf in
  for i = 0 to n - 1 do
    buf.(i) <- Int64.to_int (Int64.div (f_mem_addr w i) line)
  done;
  for i = 1 to n - 1 do
    let x = buf.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && buf.(!j) > x do
      buf.(!j + 1) <- buf.(!j);
      decr j
    done;
    buf.(!j + 1) <- x
  done;
  let m = ref 0 in
  for i = 0 to n - 1 do
    if !m = 0 || buf.(i) <> buf.(!m - 1) then begin
      buf.(!m) <- buf.(i);
      incr m
    end
  done;
  !m

let release_barrier bs =
  if bs.at_barrier = bs.live_warps && bs.live_warps > 0 then begin
    bs.at_barrier <- 0;
    List.iter (fun ws -> ws.waiting_barrier <- false) bs.warps
  end

let finish_warp sm ws =
  let bs = ws.bstate in
  bs.live_warps <- bs.live_warps - 1;
  sm.pools_dirty <- true;
  if bs.live_warps = 0 then begin
    sm.st.Stats.blocks_completed <- sm.st.Stats.blocks_completed + 1;
    sm.active_blocks <- sm.active_blocks - 1;
    sm.live_blocks <- List.filter (fun b -> b != bs) sm.live_blocks;
    (* under dynamic throttling, resume a paused resident block before
       admitting a fresh one *)
    match List.find_opt (fun b -> b.paused) sm.live_blocks with
    | Some b ->
      b.paused <- false;
      sm.pools_dirty <- true
    | None -> launch_block sm
  end
  else release_barrier bs

(* Bank conflicts: lanes hitting the same bank with different word
   addresses serialise into multiple passes (same-word accesses
   broadcast for free). Degree = max distinct words on one bank — the
   bank of a word is its signed remainder, so counts index
   [bank + shared_banks] to keep negative classes distinct, as the
   reference Hashtbl keying did. *)
let bank_conflict_degree sm (w : front) =
  let n = f_mem_count w in
  let words = sm.word_buf in
  let m = ref 0 in
  for i = 0 to n - 1 do
    let word = Int64.to_int (Int64.div (f_mem_addr w i) 4L) in
    let dup = ref false in
    for j = 0 to !m - 1 do
      if words.(j) = word then dup := true
    done;
    if not !dup then begin
      words.(!m) <- word;
      incr m
    end
  done;
  let banks = sm.cfg.Config.shared_banks in
  Array.fill sm.bank_counts 0 (Array.length sm.bank_counts) 0;
  let degree = ref 1 in
  for j = 0 to !m - 1 do
    let k = (words.(j) mod banks) + banks in
    let c = sm.bank_counts.(k) + 1 in
    sm.bank_counts.(k) <- c;
    if c > !degree then degree := c
  done;
  !degree

let issue sm ws =
  let st = sm.st in
  let cfg = sm.cfg in
  let mask = f_mask ws.w in
  let lanes = Interp.popcount mask in
  let pc = f_fetch ws.w in
  let defs = sm.code.Dcode.defs.(pc) in
  let exec = f_step ws.w in
  (* recording appends to flat arrays only — it cannot perturb timing *)
  (match ws.tr with
   | Some tr ->
     Replay.record tr ~pc ~mask;
     (match (exec, ws.w) with
      | Interp.E_mem _, Live w ->
        let n = Interp.mem_count w in
        for i = 0 to n - 1 do
          Replay.record_addr tr (Interp.mem_addr w i)
        done
      | _ -> ())
   | None -> ());
  st.Stats.warp_instrs <- st.Stats.warp_instrs + 1;
  st.Stats.thread_instrs <- st.Stats.thread_instrs + lanes;
  match exec with
  | Interp.E_alu cls ->
    (match cls with
     | Ptx.Instr.Sfu -> st.Stats.sfu_instrs <- st.Stats.sfu_instrs + 1
     | Ptx.Instr.Alu | Ptx.Instr.Alu_heavy | Ptx.Instr.Ctrl
     | Ptx.Instr.Mem_const_param | Ptx.Instr.Mem_global | Ptx.Instr.Mem_local
     | Ptx.Instr.Mem_shared | Ptx.Instr.Barrier ->
       st.Stats.alu_instrs <- st.Stats.alu_instrs + 1);
    let ready = sm.now + latency_of cfg cls in
    for i = 0 to Array.length defs - 1 do
      set_pending ws defs.(i) ready
    done
  | Interp.E_mem { space = Ptx.Types.Shared; write; _ } ->
    let n = f_mem_count ws.w in
    let degree = bank_conflict_degree sm ws.w in
    st.Stats.shared_bank_conflicts <-
      st.Stats.shared_bank_conflicts + (degree - 1);
    if write then st.Stats.shared_store_lanes <- st.Stats.shared_store_lanes + n
    else begin
      st.Stats.shared_load_lanes <- st.Stats.shared_load_lanes + n;
      let ready = sm.now + cfg.Config.shared_latency + (2 * (degree - 1)) in
      for i = 0 to Array.length defs - 1 do
        set_pending ws defs.(i) ready
      done
    end
  | Interp.E_mem { space; write; _ } ->
    let local = Ptx.Types.equal_space space Ptx.Types.Local in
    let n = f_mem_count ws.w in
    (match (local, write) with
     | true, true -> st.Stats.local_store_lanes <- st.Stats.local_store_lanes + n
     | true, false -> st.Stats.local_load_lanes <- st.Stats.local_load_lanes + n
     | false, true -> st.Stats.global_store_lanes <- st.Stats.global_store_lanes + n
     | false, false -> st.Stats.global_load_lanes <- st.Stats.global_load_lanes + n);
    let nsegs = coalesce sm ws.w in
    if local then st.Stats.local_segments <- st.Stats.local_segments + nsegs
    else st.Stats.global_segments <- st.Stats.global_segments + nsegs;
    let bypass = sm.bypass_global && not local in
    let line = Int64.of_int cfg.Config.l1_line in
    if write then
      for i = 0 to nsegs - 1 do
        let a = Int64.mul (Int64.of_int sm.seg_buf.(i)) line in
        lsu_push sm a ~write:true ~write_alloc:local ~bypass None
      done
    else begin
      let pl = Some { defs; wslot = ws; remaining = nsegs; ready_at = 0 } in
      for i = 0 to Array.length defs - 1 do
        set_pending ws defs.(i) infinity_cycle
      done;
      for i = 0 to nsegs - 1 do
        let a = Int64.mul (Int64.of_int sm.seg_buf.(i)) line in
        lsu_push sm a ~write:false ~write_alloc:true ~bypass pl
      done
    end
  | Interp.E_barrier ->
    ws.waiting_barrier <- true;
    let bs = ws.bstate in
    bs.at_barrier <- bs.at_barrier + 1;
    release_barrier bs
  | Interp.E_exit -> finish_warp sm ws

let service_lsu sm =
  let ports = ref sm.cfg.Config.l1_ports in
  let blocked = ref false in
  while (not !blocked) && !ports > 0 && sm.lsu_len > 0 do
    let h = sm.lsu_head in
    let addr = Int64.bits_of_float sm.lsu_addr.(h) in
    let flags = sm.lsu_flags.(h) in
    let outcome =
      if flags land 4 <> 0 then sm.remote ~cycle:sm.now ~addr
      else
        Cache.access sm.l1 ~cycle:sm.now ~addr ~write:(flags land 1 <> 0)
          ~write_alloc:(flags land 2 <> 0)
    in
    (match outcome with
     | (Cache.Hit | Cache.Miss _) as r ->
       let load = sm.lsu_load.(h) in
       lsu_pop sm;
       (match load with
        | Some pl ->
          let c =
            match r with
            | Cache.Hit -> sm.now + sm.cfg.Config.l1_hit_latency
            | Cache.Miss c -> c
            | Cache.Reserve_fail -> assert false
          in
          pl.ready_at <- max pl.ready_at c;
          pl.remaining <- pl.remaining - 1;
          if pl.remaining = 0 then
            for i = 0 to Array.length pl.defs - 1 do
              set_pending pl.wslot pl.defs.(i) pl.ready_at
            done
        | None -> ())
     | Cache.Reserve_fail ->
       sm.st.Stats.lsu_replay_cycles <- sm.st.Stats.lsu_replay_cycles + 1;
       blocked := true);
    decr ports
  done

let schedulers_issue sm =
  let total = sm.cfg.Config.num_schedulers in
  for s = 0 to total - 1 do
    let pool = sm.pools.(s) in
    let n = Array.length pool in
    if n = 0 then sm.st.Stats.stall_idle <- sm.st.Stats.stall_idle + 1
    else begin
      let ready ws = status sm ws = Ready in
      let pick =
        match sm.scheduler with
        | `Gto ->
          let g_ok =
            match sm.greedy.(s) with
            | Some g when (not (f_done g.w)) && ready g -> Some g
            | Some _ | None -> None
          in
          (match g_ok with
           | Some g -> Some g
           | None ->
             let rec find i =
               if i >= n then None
               else if ready pool.(i) then Some pool.(i)
               else find (i + 1)
             in
             find 0)
        | `Lrr ->
          let start = sm.now mod n in
          let rec find k =
            if k >= n then None
            else
              let ws = pool.((start + k) mod n) in
              if ready ws then Some ws else find (k + 1)
          in
          find 0
      in
      match pick with
      | Some ws ->
        (match sm.greedy.(s) with
         | Some g when g == ws -> ()
         | Some _ | None -> sm.greedy.(s) <- Some ws);
        sm.st.Stats.issue_cycles <- sm.st.Stats.issue_cycles + 1;
        issue sm ws
      | None ->
        let has_mem = ref false and has_sb = ref false and has_bar = ref false in
        Array.iter
          (fun ws ->
             match status sm ws with
             | Mem_queue -> has_mem := true
             | Scoreboard -> has_sb := true
             | Barrier -> has_bar := true
             | Ready | Done -> ())
          pool;
        if !has_mem then
          sm.st.Stats.stall_mem_congestion <- sm.st.Stats.stall_mem_congestion + 1
        else if !has_sb then
          sm.st.Stats.stall_scoreboard <- sm.st.Stats.stall_scoreboard + 1
        else if !has_bar then
          sm.st.Stats.stall_barrier <- sm.st.Stats.stall_barrier + 1
        else sm.st.Stats.stall_idle <- sm.st.Stats.stall_idle + 1
    end
  done

(* DynCTA-style controller (Kayiran et al.): every window, compare the
   cache-congestion pressure against thresholds and pause the youngest
   block (or resume the oldest paused one). *)
let dynamic_window = 2048
let hi_threshold = 0.20
let lo_threshold = 0.05

let dynamic_adjust sm =
  let stalls =
    sm.st.Stats.stall_mem_congestion + sm.st.Stats.lsu_replay_cycles
  in
  let delta = stalls - (sm.window_mem_stall + sm.window_replays) in
  sm.window_mem_stall <- sm.st.Stats.stall_mem_congestion;
  sm.window_replays <- sm.st.Stats.lsu_replay_cycles;
  let frac = float_of_int delta /. float_of_int dynamic_window in
  let running = List.filter (fun b -> not b.paused) sm.live_blocks in
  if frac > hi_threshold && List.length running > 1 then begin
    (* pause the youngest running block *)
    match List.rev running with
    | newest :: _ ->
      newest.paused <- true;
      sm.pools_dirty <- true
    | [] -> ()
  end
  else if frac < lo_threshold then begin
    match List.find_opt (fun b -> b.paused) sm.live_blocks with
    | Some b ->
      b.paused <- false;
      sm.pools_dirty <- true
    | None -> ()
  end

let step sm =
  service_lsu sm;
  if sm.dynamic_tlp && sm.now > 0 && sm.now mod dynamic_window = 0 then
    dynamic_adjust sm;
  if sm.now > 0 && sm.now mod 256 = 0 then sm.pools_dirty <- true;
  if sm.pools_dirty then rebuild_pools sm;
  schedulers_issue sm;
  sm.now <- sm.now + 1

let stats sm = sm.st

let copy_cache_stats (src : Cache.stats) (dst : Cache.stats) =
  dst.Cache.reads <- src.Cache.reads;
  dst.Cache.read_hits <- src.Cache.read_hits;
  dst.Cache.writes <- src.Cache.writes;
  dst.Cache.write_hits <- src.Cache.write_hits;
  dst.Cache.reserve_fails <- src.Cache.reserve_fails;
  dst.Cache.writebacks <- src.Cache.writebacks;
  dst.Cache.fills <- src.Cache.fills

let finalize sm =
  sm.st.Stats.cycles <- sm.now;
  sm.st.Stats.dram_bytes <- Cache.Dram.traffic_bytes sm.shared.dram;
  copy_cache_stats (Cache.stats sm.l1) sm.st.Stats.l1;
  copy_cache_stats (Cache.stats sm.shared.l2) sm.st.Stats.l2;
  sm.st

let run ?(max_cycles = 40_000_000) ?scheduler ?bypass_global ?dynamic_tlp
    ?record ?replay (cfg : Config.t) (l : Launch.t) =
  let shared = make_shared cfg in
  let next = ref 0 in
  let next_block () =
    if !next >= l.Launch.num_blocks then None
    else begin
      let b = !next in
      incr next;
      Some b
    end
  in
  let sm =
    create ?scheduler ?dynamic_tlp ?bypass_global ?record ?replay cfg shared
      ~next_block l
  in
  while busy sm do
    if sm.now > max_cycles then begin
      ignore (finalize sm);
      raise (Cycle_limit sm.st)
    end;
    step sm
  done;
  finalize sm
