(* Paged flat value store.

   The simulated memory is word-granular: each 4-byte-aligned address
   holds one full value (the interpreter never splits a value across
   addresses — wide types simply stride by their width). The hot
   representation is a page table of flat chunks: 1024 word slots per
   page, each slot a raw 64-bit pattern in a [float array] (unboxed
   flat storage) plus a meta byte recording whether the slot was
   written and whether the stored value was float-tagged (the tag is
   observable only through predicate reads, see {!Value}). A one-entry
   page cache makes streaming access a couple of array ops. Unaligned
   or out-of-range addresses — absent from every shipped workload —
   fall back to a boxed side table with identical semantics. *)

let page_bits = 10
let page_slots = 1 lsl page_bits
let slot_mask = page_slots - 1

type page = {
  vals : float array; (* raw 64-bit patterns, [Int64.float_of_bits] *)
  meta : Bytes.t; (* per slot: bit0 = written, bit1 = float-tagged *)
}

type t = {
  pages : (int, page) Hashtbl.t;
  side : (int64, Value.t) Hashtbl.t; (* unaligned / negative / huge addrs *)
  mutable last_idx : int;
  mutable last_page : page;
  mutable count : int; (* distinct written locations *)
}

let new_page () =
  { vals = Array.make page_slots 0.0; meta = Bytes.make page_slots '\000' }

let create () =
  { pages = Hashtbl.create 64
  ; side = Hashtbl.create 16
  ; last_idx = -1
  ; last_page = new_page () (* dummy; never indexed (-1 can't match) *)
  ; count = 0
  }

(* fits in the page table: non-negative, below 2^62 (so the word index
   fits an OCaml int) and 4-byte aligned *)
let in_range addr =
  Int64.logand addr 0x4000_0000_0000_0003L = 0L && addr >= 0L

let word_of addr = Int64.to_int (Int64.shift_right_logical addr 2)

let find_page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p ->
    t.last_idx <- idx;
    t.last_page <- p;
    Some p
  | None -> None

let get_page t idx =
  if idx = t.last_idx then t.last_page
  else
    match find_page t idx with
    | Some p -> p
    | None ->
      let p = new_page () in
      Hashtbl.replace t.pages idx p;
      t.last_idx <- idx;
      t.last_page <- p;
      p

let load_bits t addr =
  if in_range addr then begin
    let word = word_of addr in
    let idx = word lsr page_bits in
    if idx = t.last_idx then
      Int64.bits_of_float
        (Array.unsafe_get t.last_page.vals (word land slot_mask))
    else
      match find_page t idx with
      | Some p -> Int64.bits_of_float p.vals.(word land slot_mask)
      | None -> 0L
  end
  else
    match Hashtbl.find_opt t.side addr with
    | Some v -> Value.to_bits v
    | None -> 0L

let load_isf t addr =
  if in_range addr then begin
    let word = word_of addr in
    let idx = word lsr page_bits in
    let meta_at p = Bytes.get_uint8 p.meta (word land slot_mask) land 2 <> 0 in
    if idx = t.last_idx then meta_at t.last_page
    else match find_page t idx with Some p -> meta_at p | None -> false
  end
  else
    match Hashtbl.find_opt t.side addr with
    | Some (Value.F _) -> true
    | Some (Value.I _) | None -> false

let store_bits t addr ~isf bits =
  if in_range addr then begin
    let word = word_of addr in
    let p = get_page t (word lsr page_bits) in
    let slot = word land slot_mask in
    let m = Bytes.get_uint8 p.meta slot in
    if m land 1 = 0 then t.count <- t.count + 1;
    Bytes.unsafe_set p.meta slot (Char.unsafe_chr (if isf then 3 else 1));
    Array.unsafe_set p.vals slot (Int64.float_of_bits bits)
  end
  else begin
    if not (Hashtbl.mem t.side addr) then t.count <- t.count + 1;
    Hashtbl.replace t.side addr
      (if isf then Value.F (Int64.float_of_bits bits) else Value.I bits)
  end

let read t addr ty =
  let bits = load_bits t addr in
  let isf = if ty = Ptx.Types.Pred then load_isf t addr else false in
  Value.of_bits ty (Value.truncate_bits ty ~isf bits)

let write t addr ty v =
  store_bits t addr
    ~isf:(Ptx.Types.is_float ty)
    (Value.truncate_bits ty ~isf:(Value.is_f v) (Value.to_bits v))

let copy t =
  let pages = Hashtbl.create (Hashtbl.length t.pages) in
  Hashtbl.iter
    (fun idx p ->
       Hashtbl.replace pages idx
         { vals = Array.copy p.vals; meta = Bytes.copy p.meta })
    t.pages;
  { pages
  ; side = Hashtbl.copy t.side
  ; last_idx = -1
  ; last_page = new_page ()
  ; count = t.count
  }

let value_at p slot =
  let bits = Int64.bits_of_float p.vals.(slot) in
  if Bytes.get_uint8 p.meta slot land 2 <> 0 then
    Value.F (Int64.float_of_bits bits)
  else Value.I bits

let addr_at idx slot = Int64.of_int (((idx lsl page_bits) lor slot) * 4)

let fold f t init =
  let acc = ref (Hashtbl.fold f t.side init) in
  Hashtbl.iter
    (fun idx p ->
       for slot = 0 to page_slots - 1 do
         if Bytes.get_uint8 p.meta slot land 1 <> 0 then
           acc := f (addr_at idx slot) (value_at p slot) !acc
       done)
    t.pages;
  !acc

let size t = t.count

let equal a b =
  let nonzero m =
    fold
      (fun k v acc -> if Value.equal v Value.zero then acc else (k, v) :: acc)
      m []
    |> List.sort (fun (k1, _) (k2, _) -> Int64.compare k1 k2)
  in
  let la = nonzero a and lb = nonzero b in
  List.length la = List.length lb
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && Value.equal v1 v2) la lb

(* Canonical content digest. [fold] iterates the page Hashtbl in bucket
   order, so it cannot key a content-addressed store; here pages are
   visited in sorted index order and slots ascending, and a slot
   contributes iff it is observably non-default (nonzero bits or
   float-tagged) — written-zero integer slots read back exactly like
   unwritten ones, so they must not perturb the digest. The boxed side
   table (disjoint address range) is appended in sorted address order
   under the same filter. *)
let digest t =
  let b = Buffer.create 4096 in
  let add_entry addr bits isf =
    Buffer.add_int64_le b addr;
    Buffer.add_int64_le b bits;
    Buffer.add_char b (if isf then '\001' else '\000')
  in
  let idxs =
    List.sort compare (Hashtbl.fold (fun idx _ acc -> idx :: acc) t.pages [])
  in
  List.iter
    (fun idx ->
       let p = Hashtbl.find t.pages idx in
       for slot = 0 to page_slots - 1 do
         let m = Bytes.get_uint8 p.meta slot in
         let bits = Int64.bits_of_float p.vals.(slot) in
         let isf = m land 2 <> 0 in
         if bits <> 0L || isf then add_entry (addr_at idx slot) bits isf
       done)
    idxs;
  let side =
    List.sort
      (fun (a, _) (b, _) -> Int64.compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.side [])
  in
  List.iter
    (fun (addr, v) ->
       let bits = Value.to_bits v in
       let isf = Value.is_f v in
       if bits <> 0L || isf then add_entry addr bits isf)
    side;
  Digest.string (Buffer.contents b)

let write_f32_array t ~base xs =
  Array.iteri
    (fun i x ->
       write t (Int64.add base (Int64.of_int (i * 4))) Ptx.Types.F32 (Value.F x))
    xs

let write_u32_array t ~base xs =
  Array.iteri
    (fun i x ->
       write t
         (Int64.add base (Int64.of_int (i * 4)))
         Ptx.Types.U32
         (Value.I (Int64.of_int x)))
    xs

let read_f32_array t ~base n =
  Array.init n (fun i ->
    Value.to_float (read t (Int64.add base (Int64.of_int (i * 4))) Ptx.Types.F32))

let read_u32_array t ~base n =
  Array.init n (fun i ->
    Int64.to_int
      (Value.to_int64 (read t (Int64.add base (Int64.of_int (i * 4))) Ptx.Types.U32)))
