(* Reference SIMT interpreter.

   This is the original boxed interpreter, kept verbatim as the
   semantic oracle for {!Interp}'s predecoded/unboxed fast path: it
   re-matches [Ptx.Instr.t] constructors at every step, keys registers
   through a [Hashtbl] of boxed [Value.t] arrays and resolves
   symbols/params with [List.assoc]. Slow but obviously faithful to
   the instruction definitions; the differential property tests run
   random kernels through both interpreters in lockstep and require
   bit-identical registers, control flow and memory. Not used by the
   timing simulator. *)

type launch_ctx =
  { image : Image.t
  ; global : Memory.t
  ; params : (string * Value.t) list
  ; block_size : int
  ; num_blocks : int
  ; san : Sancheck.runtime option
  }

type block_ctx =
  { launch : launch_ctx
  ; ctaid : int
  ; shared : Memory.t
  ; nwarps : int
  }

type stack_entry =
  { mutable next_pc : int
  ; reconv_pc : int
  ; mask : int
  }

type warp =
  { block : block_ctx
  ; wid : int
  ; base_tid : int
  ; nlanes : int
  ; regs : (int, Value.t array) Hashtbl.t
  ; mutable stack : stack_entry list
  ; mutable done_ : bool
  }

let reg_key r =
  let cls =
    match Ptx.Types.reg_class (Ptx.Reg.ty r) with
    | Ptx.Types.Cpred -> 0
    | Ptx.Types.C32 -> 1
    | Ptx.Types.C64 -> 2
  in
  (cls lsl 24) lor Ptx.Reg.id r

let full_mask n = (1 lsl n) - 1

let make_block launch ~ctaid ~warp_size =
  if launch.block_size <= 0 || launch.block_size mod warp_size <> 0 then
    invalid_arg "Interp.make_block: block size must be a multiple of warp size";
  let nwarps = launch.block_size / warp_size in
  let block = { launch; ctaid; shared = Memory.create (); nwarps } in
  let warps =
    List.init nwarps (fun w ->
      { block
      ; wid = w
      ; base_tid = w * warp_size
      ; nlanes = warp_size
      ; regs = Hashtbl.create 64
      ; stack =
          [ { next_pc = 0
            ; reconv_pc = -1
            ; mask = full_mask warp_size
            }
          ]
      ; done_ = false
      })
  in
  (block, warps)

let is_done w = w.done_

let tos w =
  match w.stack with
  | e :: _ -> e
  | [] -> failwith "Interp: empty SIMT stack"

let normalize w =
  let rec loop () =
    match w.stack with
    | e :: (_ :: _ as rest) when e.next_pc = e.reconv_pc ->
      w.stack <- rest;
      loop ()
    | _ :: _ | [] -> ()
  in
  loop ()

let pc w = (tos w).next_pc
let active_mask w = (tos w).mask
let block_of w = w.block
let warp_id w = w.wid

let instrs w = w.block.launch.image.Image.flow.Cfg.Flow.instrs

let peek w =
  if w.done_ then None
  else begin
    normalize w;
    let p = pc w in
    let arr = instrs w in
    if p >= Array.length arr then None else Some arr.(p)
  end

let read_reg w r =
  let key = reg_key r in
  match Hashtbl.find_opt w.regs key with
  | Some a -> a
  | None ->
    let a = Array.make w.nlanes Value.zero in
    Hashtbl.replace w.regs key a;
    a

let read_reg_values w r = Array.copy (read_reg w r)

let global_tid w lane =
  (w.block.ctaid * w.block.launch.block_size) + w.base_tid + lane

let eval_special w lane s =
  let v =
    match s with
    | Ptx.Reg.Tid_x -> w.base_tid + lane
    | Ptx.Reg.Tid_y -> 0
    | Ptx.Reg.Ctaid_x -> w.block.ctaid
    | Ptx.Reg.Ctaid_y -> 0
    | Ptx.Reg.Ntid_x -> w.block.launch.block_size
    | Ptx.Reg.Ntid_y -> 1
    | Ptx.Reg.Nctaid_x -> w.block.launch.num_blocks
    | Ptx.Reg.Nctaid_y -> 1
    | Ptx.Reg.Laneid -> lane
    | Ptx.Reg.Warpid -> w.wid
  in
  Value.of_int v

let param_value w name =
  match List.assoc_opt name w.block.launch.params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Interp: unbound parameter %s" name)

let sym_value w lane name =
  (* shared symbols resolve to an offset inside the block's shared region;
     local symbols resolve to a globally-unique per-thread address *)
  let image = w.block.launch.image in
  match List.assoc_opt name image.Image.shared_offsets with
  | Some off -> Value.of_int off
  | None ->
    (match List.assoc_opt name image.Image.local_offsets with
     | Some off ->
       Value.I (Image.local_addr image ~global_tid:(global_tid w lane) ~sym_offset:off)
     | None -> invalid_arg (Printf.sprintf "Interp: unknown symbol %s" name))

let eval w lane (op : Ptx.Instr.operand) =
  match op with
  | Ptx.Instr.Oreg r -> (read_reg w r).(lane)
  | Ptx.Instr.Oimm i -> Value.I i
  | Ptx.Instr.Ofimm f -> Value.F f
  | Ptx.Instr.Ospecial s -> eval_special w lane s
  | Ptx.Instr.Osym s -> sym_value w lane s
  | Ptx.Instr.Oparam p -> param_value w p

let addr_of w lane (a : Ptx.Instr.address) =
  Int64.add (Value.to_int64 (eval w lane a.base)) (Int64.of_int a.offset)

(* Sanitizer probes. Shared addresses are already segment-relative;
   local accesses are checked on the naive (pre-interleave) address,
   reduced to an offset into the thread's own frame — which also keeps
   [Image.remap_local] from being fed an out-of-frame address. *)

let san_shared w ~pc ~lane ~width a =
  match w.block.launch.san with
  | None -> true
  | Some rt ->
    Sancheck.check rt ~pc ~lane ~tid:(w.base_tid + lane) ~width ~rel:a

let san_local w ~pc ~lane ~width naive =
  match w.block.launch.san with
  | None -> true
  | Some rt ->
    let image = w.block.launch.image in
    let rel =
      Int64.sub naive
        (Int64.add Image.local_base
           (Int64.of_int (global_tid w lane * image.Image.local_frame_bytes)))
    in
    Sancheck.check rt ~pc ~lane ~tid:(w.base_tid + lane) ~width ~rel

type exec =
  | E_alu of Ptx.Instr.op_class
  | E_mem of
      { space : Ptx.Types.space
      ; write : bool
      ; width : int
      ; lane_addrs : (int * int64) list
      }
  | E_barrier
  | E_exit

let iter_active mask nlanes f =
  for lane = 0 to nlanes - 1 do
    if mask land (1 lsl lane) <> 0 then f lane
  done

let popcount m =
  let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
  loop m 0

let step w =
  if w.done_ then invalid_arg "Interp.step: warp already done";
  normalize w;
  let e = tos w in
  let this_pc = e.next_pc in
  let arr = instrs w in
  if this_pc >= Array.length arr then begin
    w.done_ <- true;
    E_exit
  end
  else begin
    let ins = arr.(this_pc) in
    let mask = e.mask in
    e.next_pc <- this_pc + 1;
    let set_reg r lane v =
      (read_reg w r).(lane) <- Value.truncate (Ptx.Reg.ty r) v
    in
    let result =
      match ins with
      | Ptx.Instr.Mov (ty, d, a) ->
        iter_active mask w.nlanes (fun l -> set_reg d l (Value.truncate ty (eval w l a)));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Binop (op, ty, d, a, b) ->
        iter_active mask w.nlanes (fun l ->
          set_reg d l (Value.binop op ty (eval w l a) (eval w l b)));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Mad (ty, d, a, b, c) ->
        iter_active mask w.nlanes (fun l ->
          set_reg d l (Value.mad ty (eval w l a) (eval w l b) (eval w l c)));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Unop (op, ty, d, a) ->
        iter_active mask w.nlanes (fun l -> set_reg d l (Value.unop op ty (eval w l a)));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Cvt (dt, st, d, a) ->
        iter_active mask w.nlanes (fun l ->
          set_reg d l (Value.convert ~dst:dt ~src:st (eval w l a)));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Setp (c, ty, d, a, b) ->
        iter_active mask w.nlanes (fun l ->
          let r = Value.compare_values c ty (eval w l a) (eval w l b) in
          set_reg d l (Value.I (if r then 1L else 0L)));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Selp (ty, d, a, b, p) ->
        iter_active mask w.nlanes (fun l ->
          let pv = (read_reg w p).(l) in
          let v = if Value.to_bool pv then eval w l a else eval w l b in
          set_reg d l (Value.truncate ty v));
        E_alu (Ptx.Instr.classify ins)
      | Ptx.Instr.Ld (Ptx.Types.Param, ty, d, addr) ->
        (match addr.Ptx.Instr.base with
         | Ptx.Instr.Oparam p ->
           iter_active mask w.nlanes (fun l ->
             set_reg d l (Value.truncate ty (param_value w p));
             ignore l)
         | Ptx.Instr.Oreg _ | Ptx.Instr.Oimm _ | Ptx.Instr.Ofimm _
         | Ptx.Instr.Ospecial _ | Ptx.Instr.Osym _ ->
           invalid_arg "Interp: ld.param requires a parameter base");
        E_alu Ptx.Instr.Mem_const_param
      | Ptx.Instr.Ld (Ptx.Types.Const, ty, d, addr) ->
        iter_active mask w.nlanes (fun l ->
          let a = addr_of w l addr in
          set_reg d l (Memory.read w.block.launch.global a ty));
        E_alu Ptx.Instr.Mem_const_param
      | Ptx.Instr.Ld (Ptx.Types.Shared, ty, d, addr) ->
        let lane_addrs = ref [] in
        let width = Ptx.Types.width_bytes ty in
        iter_active mask w.nlanes (fun l ->
          let a = addr_of w l addr in
          if san_shared w ~pc:this_pc ~lane:l ~width a then begin
            lane_addrs := (l, a) :: !lane_addrs;
            set_reg d l (Memory.read w.block.shared a ty)
          end);
        E_mem
          { space = Ptx.Types.Shared
          ; write = false
          ; width
          ; lane_addrs = List.rev !lane_addrs
          }
      | Ptx.Instr.Ld (((Ptx.Types.Global | Ptx.Types.Local) as sp), ty, d, addr) ->
        let lane_addrs = ref [] in
        let width = Ptx.Types.width_bytes ty in
        iter_active mask w.nlanes (fun l ->
          let a = addr_of w l addr in
          match sp with
          | Ptx.Types.Local ->
            if san_local w ~pc:this_pc ~lane:l ~width a then begin
              let a =
                Image.remap_local w.block.launch.image
                  ~global_tid:(global_tid w l) a
              in
              lane_addrs := (l, a) :: !lane_addrs;
              set_reg d l (Memory.read w.block.launch.global a ty)
            end
          | Ptx.Types.Global | Ptx.Types.Shared | Ptx.Types.Reg
          | Ptx.Types.Param | Ptx.Types.Const ->
            lane_addrs := (l, a) :: !lane_addrs;
            set_reg d l (Memory.read w.block.launch.global a ty));
        E_mem
          { space = sp
          ; write = false
          ; width
          ; lane_addrs = List.rev !lane_addrs
          }
      | Ptx.Instr.Ld ((Ptx.Types.Reg as sp), _, _, _) ->
        invalid_arg
          (Printf.sprintf "Interp: ld.%s unsupported" (Ptx.Types.space_to_string sp))
      | Ptx.Instr.St (Ptx.Types.Shared, ty, addr, v) ->
        let lane_addrs = ref [] in
        let width = Ptx.Types.width_bytes ty in
        iter_active mask w.nlanes (fun l ->
          let a = addr_of w l addr in
          if san_shared w ~pc:this_pc ~lane:l ~width a then begin
            lane_addrs := (l, a) :: !lane_addrs;
            Memory.write w.block.shared a ty (eval w l v)
          end);
        E_mem
          { space = Ptx.Types.Shared
          ; write = true
          ; width
          ; lane_addrs = List.rev !lane_addrs
          }
      | Ptx.Instr.St (((Ptx.Types.Global | Ptx.Types.Local) as sp), ty, addr, v) ->
        let lane_addrs = ref [] in
        let width = Ptx.Types.width_bytes ty in
        iter_active mask w.nlanes (fun l ->
          let a = addr_of w l addr in
          match sp with
          | Ptx.Types.Local ->
            if san_local w ~pc:this_pc ~lane:l ~width a then begin
              let a =
                Image.remap_local w.block.launch.image
                  ~global_tid:(global_tid w l) a
              in
              lane_addrs := (l, a) :: !lane_addrs;
              Memory.write w.block.launch.global a ty (eval w l v)
            end
          | Ptx.Types.Global | Ptx.Types.Shared | Ptx.Types.Reg
          | Ptx.Types.Param | Ptx.Types.Const ->
            lane_addrs := (l, a) :: !lane_addrs;
            Memory.write w.block.launch.global a ty (eval w l v));
        E_mem
          { space = sp
          ; write = true
          ; width
          ; lane_addrs = List.rev !lane_addrs
          }
      | Ptx.Instr.St ((Ptx.Types.Reg | Ptx.Types.Param | Ptx.Types.Const), _, _, _)
        -> invalid_arg "Interp: unsupported store space"
      | Ptx.Instr.Bra l ->
        e.next_pc <- Cfg.Flow.target_index w.block.launch.image.Image.flow l;
        E_alu Ptx.Instr.Ctrl
      | Ptx.Instr.Bra_pred (p, sense, l) ->
        let target = Cfg.Flow.target_index w.block.launch.image.Image.flow l in
        let taken = ref 0 in
        iter_active mask w.nlanes (fun lane ->
          let pv = Value.to_bool (read_reg w p).(lane) in
          if pv = sense then taken := !taken lor (1 lsl lane));
        let fall = mask land lnot !taken in
        if !taken = 0 then () (* next_pc already pc+1 *)
        else if fall = 0 then e.next_pc <- target
        else begin
          let reconv = w.block.launch.image.Image.reconv.(this_pc) in
          e.next_pc <- reconv;
          w.stack <-
            { next_pc = target; reconv_pc = reconv; mask = !taken }
            :: { next_pc = this_pc + 1; reconv_pc = reconv; mask = fall }
            :: w.stack
        end;
        E_alu Ptx.Instr.Ctrl
      | Ptx.Instr.Bar_sync -> E_barrier
      | Ptx.Instr.Ret ->
        if List.length w.stack > 1 then
          failwith "Interp: divergent ret is not supported";
        w.done_ <- true;
        E_exit
    in
    normalize w;
    result
  end

(* Emulator-style driver (mirrors {!Emulator.run_block}), so the
   differential tests can run whole launches through the reference
   semantics without going through [Interp]. *)

let run_block lctx ~ctaid ~warp_size =
  let _block, warps = make_block lctx ~ctaid ~warp_size in
  let warps = Array.of_list warps in
  let waiting = Array.make (Array.length warps) false in
  let all_done () = Array.for_all is_done warps in
  let progress = ref true in
  while (not (all_done ())) && !progress do
    progress := false;
    Array.iteri
      (fun i w ->
         if (not (is_done w)) && not waiting.(i) then begin
           let stop = ref false in
           while not !stop do
             match step w with
             | E_barrier ->
               waiting.(i) <- true;
               stop := true;
               progress := true
             | E_exit ->
               stop := true;
               progress := true
             | E_alu _ | E_mem _ -> progress := true
           done
         end)
      warps;
    let live_blocked = ref true in
    Array.iteri
      (fun i w -> if (not (is_done w)) && not waiting.(i) then live_blocked := false)
      warps;
    if !live_blocked then Array.iteri (fun i _ -> waiting.(i) <- false) warps
  done;
  if not (all_done ()) then failwith "Emulator: barrier deadlock"

let run ?sanitize (l : Launch.t) =
  let image = Image.prepare l.Launch.kernel in
  let lctx =
    { image
    ; global = l.Launch.memory
    ; params = l.Launch.params
    ; block_size = l.Launch.block_size
    ; num_blocks = l.Launch.num_blocks
    ; san = sanitize
    }
  in
  for ctaid = 0 to l.Launch.num_blocks - 1 do
    run_block lctx ~ctaid ~warp_size:l.Launch.warp_size
  done
