type t =
  | I of int64
  | F of float

let zero = I 0L
let of_int i = I (Int64.of_int i)

let to_bits = function
  | I i -> i
  | F f -> Int64.bits_of_float f

let to_float = function
  | I i -> Int64.to_float i
  | F f -> f

let to_int64 = function
  | I i -> i
  | F f -> Int64.of_float f

let to_bool v = to_int64 v <> 0L

let is_f = function
  | F _ -> true
  | I _ -> false

(* ---------------------------------------------------------------------
   Bit-pattern kernels.

   A value is equivalently a 64-bit pattern [bits] plus a constructor tag
   [isf]: for [I i] the pattern is [i], for [F f] it is
   [Int64.bits_of_float f]. Both the float view ([to_float_bits_aware])
   and the integer-bits view ([to_int_bits_aware]) depend only on the
   pattern, so almost every operation below is tag-insensitive; the tag
   matters solely for the *value* conversion [to_int64] (and hence
   [to_bool] and predicate truncation). The boxed API is a thin wrapper
   over these kernels, and the interpreter's unboxed fast path calls
   them directly on flat register files — keeping one source of truth
   for the simulated arithmetic. *)

let mask_width w i =
  match w with
  | 1 -> Int64.logand i 0xFFL
  | 2 -> Int64.logand i 0xFFFFL
  | 4 -> Int64.logand i 0xFFFFFFFFL
  | _ -> i

let sign_extend w i =
  match w with
  | 1 -> Int64.shift_right (Int64.shift_left i 56) 56
  | 2 -> Int64.shift_right (Int64.shift_left i 48) 48
  | 4 -> Int64.shift_right (Int64.shift_left i 32) 32
  | _ -> i

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

let to_int64_bits ~isf bits =
  if isf then Int64.of_float (Int64.float_of_bits bits) else bits

let to_bool_bits ~isf bits = to_int64_bits ~isf bits <> 0L

let truncate_bits ty ~isf bits =
  match ty with
  | Ptx.Types.F32 ->
    Int64.bits_of_float (round_f32 (Int64.float_of_bits bits))
  | Ptx.Types.F64 -> bits
  | Ptx.Types.Pred -> if to_bool_bits ~isf bits then 1L else 0L
  | Ptx.Types.S16 -> sign_extend 2 bits
  | Ptx.Types.S32 -> sign_extend 4 bits
  | Ptx.Types.S64 -> bits
  | Ptx.Types.U16 | Ptx.Types.B16 -> mask_width 2 bits
  | Ptx.Types.U32 | Ptx.Types.B32 -> mask_width 4 bits
  | Ptx.Types.U64 | Ptx.Types.B64 -> bits
  | Ptx.Types.B8 -> mask_width 1 bits

let as_signed_bits ty bits = sign_extend (Ptx.Types.width_bytes ty) bits
let as_unsigned_bits ty bits = mask_width (Ptx.Types.width_bytes ty) bits

let int_binop_bits op ty a b =
  let signed = Ptx.Types.is_signed ty in
  let x = if signed then as_signed_bits ty a else as_unsigned_bits ty a in
  let y = if signed then as_signed_bits ty b else as_unsigned_bits ty b in
  let r =
    match op with
    | Ptx.Instr.Add -> Int64.add x y
    | Ptx.Instr.Sub -> Int64.sub x y
    | Ptx.Instr.Mul_lo -> Int64.mul x y
    | Ptx.Instr.Div -> if y = 0L then 0L else Int64.div x y
    | Ptx.Instr.Rem -> if y = 0L then 0L else Int64.rem x y
    | Ptx.Instr.Min -> if x < y then x else y
    | Ptx.Instr.Max -> if x > y then x else y
    | Ptx.Instr.And -> Int64.logand x y
    | Ptx.Instr.Or -> Int64.logor x y
    | Ptx.Instr.Xor -> Int64.logxor x y
    | Ptx.Instr.Shl -> Int64.shift_left x (Int64.to_int (Int64.logand y 63L))
    | Ptx.Instr.Shr ->
      let s = Int64.to_int (Int64.logand y 63L) in
      if signed then Int64.shift_right x s else Int64.shift_right_logical x s
  in
  truncate_bits ty ~isf:false r

let float_binop_bits op ty a b =
  let x = Int64.float_of_bits a and y = Int64.float_of_bits b in
  let r =
    match op with
    | Ptx.Instr.Add -> x +. y
    | Ptx.Instr.Sub -> x -. y
    | Ptx.Instr.Mul_lo -> x *. y
    | Ptx.Instr.Div -> x /. y
    | Ptx.Instr.Rem -> Float.rem x y
    | Ptx.Instr.Min -> Float.min x y
    | Ptx.Instr.Max -> Float.max x y
    | Ptx.Instr.And | Ptx.Instr.Or | Ptx.Instr.Xor | Ptx.Instr.Shl
    | Ptx.Instr.Shr ->
      invalid_arg "Value: bitwise op on float type"
  in
  truncate_bits ty ~isf:true (Int64.bits_of_float r)

let binop_bits op ty a b =
  if Ptx.Types.is_float ty then float_binop_bits op ty a b
  else int_binop_bits op ty a b

let unop_bits op ty a =
  if Ptx.Types.is_float ty then begin
    let x = Int64.float_of_bits a in
    let r =
      match op with
      | Ptx.Instr.Neg -> -.x
      | Ptx.Instr.Abs -> Float.abs x
      | Ptx.Instr.Sqrt -> sqrt x
      | Ptx.Instr.Rcp -> 1.0 /. x
      | Ptx.Instr.Ex2 -> Float.exp2 x
      | Ptx.Instr.Lg2 -> Float.log2 x
      | Ptx.Instr.Not -> invalid_arg "Value: not on float type"
    in
    truncate_bits ty ~isf:true (Int64.bits_of_float r)
  end
  else begin
    let x = as_signed_bits ty a in
    let r =
      match op with
      | Ptx.Instr.Neg -> Int64.neg x
      | Ptx.Instr.Not -> Int64.lognot x
      | Ptx.Instr.Abs -> Int64.abs x
      | Ptx.Instr.Sqrt | Ptx.Instr.Rcp | Ptx.Instr.Ex2 | Ptx.Instr.Lg2 ->
        invalid_arg "Value: SFU op on integer type"
    in
    truncate_bits ty ~isf:false r
  end

let mad_bits ty a b c =
  if Ptx.Types.is_float ty then
    truncate_bits ty ~isf:true
      (Int64.bits_of_float
         ((Int64.float_of_bits a *. Int64.float_of_bits b)
          +. Int64.float_of_bits c))
  else binop_bits Ptx.Instr.Add ty (binop_bits Ptx.Instr.Mul_lo ty a b) c

let compare_bits cmp ty a b =
  let r =
    if Ptx.Types.is_float ty then
      Stdlib.compare (Int64.float_of_bits a) (Int64.float_of_bits b)
    else if Ptx.Types.is_signed ty then
      Int64.compare (as_signed_bits ty a) (as_signed_bits ty b)
    else Int64.unsigned_compare (as_unsigned_bits ty a) (as_unsigned_bits ty b)
  in
  match cmp with
  | Ptx.Instr.Eq -> r = 0
  | Ptx.Instr.Ne -> r <> 0
  | Ptx.Instr.Lt -> r < 0
  | Ptx.Instr.Le -> r <= 0
  | Ptx.Instr.Gt -> r > 0
  | Ptx.Instr.Ge -> r >= 0

let convert_bits ~dst ~src bits =
  match (Ptx.Types.is_float dst, Ptx.Types.is_float src) with
  | true, true -> truncate_bits dst ~isf:true bits
  | true, false ->
    let i =
      if Ptx.Types.is_signed src then as_signed_bits src bits
      else as_unsigned_bits src bits
    in
    truncate_bits dst ~isf:true (Int64.bits_of_float (Int64.to_float i))
  | false, true ->
    (* float to int: round toward zero, as PTX cvt.rzi does by default *)
    truncate_bits dst ~isf:false (Int64.of_float (Int64.float_of_bits bits))
  | false, false ->
    let i =
      if Ptx.Types.is_signed src then as_signed_bits src bits
      else as_unsigned_bits src bits
    in
    truncate_bits dst ~isf:false i

(* ---------------------------------------------------------------------
   Boxed wrappers: the original [Value.t] API, expressed through the
   bit-pattern kernels so the two can never drift apart. A result is
   [F]-tagged exactly when the operation's scalar type is a float type
   (moving a float value through an integer-typed slot, or vice versa,
   reinterprets the bits, as a real register file would). *)

let of_bits ty bits =
  if Ptx.Types.is_float ty then F (Int64.float_of_bits bits) else I bits

let truncate ty v = of_bits ty (truncate_bits ty ~isf:(is_f v) (to_bits v))
let binop op ty a b = of_bits ty (binop_bits op ty (to_bits a) (to_bits b))
let unop op ty a = of_bits ty (unop_bits op ty (to_bits a))
let mad ty a b c = of_bits ty (mad_bits ty (to_bits a) (to_bits b) (to_bits c))
let compare_values cmp ty a b = compare_bits cmp ty (to_bits a) (to_bits b)
let convert ~dst ~src v = of_bits dst (convert_bits ~dst ~src (to_bits v))

let equal a b =
  match (a, b) with
  | I x, I y -> Int64.equal x y
  | F x, F y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | I _, F _ | F _, I _ -> Int64.equal (to_bits a) (to_bits b)

let pp fmt = function
  | I i -> Format.fprintf fmt "%Ld" i
  | F f -> Format.fprintf fmt "%g" f
