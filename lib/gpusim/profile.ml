type mem_stat =
  { mutable m_execs : int
  ; mutable max_segments : int
  ; mutable max_bank_degree : int
  ; m_space : Ptx.Types.space
  }

type branch_stat =
  { mutable b_execs : int
  ; mutable b_divergent : int
  }

type t =
  { mem_tbl : (int, mem_stat) Hashtbl.t
  ; branch_tbl : (int, branch_stat) Hashtbl.t
  }

let mem_stat t pc space =
  match Hashtbl.find_opt t.mem_tbl pc with
  | Some s -> s
  | None ->
    let s = { m_execs = 0; max_segments = 0; max_bank_degree = 0; m_space = space } in
    Hashtbl.add t.mem_tbl pc s;
    s

let branch_stat t pc =
  match Hashtbl.find_opt t.branch_tbl pc with
  | Some s -> s
  | None ->
    let s = { b_execs = 0; b_divergent = 0 } in
    Hashtbl.add t.branch_tbl pc s;
    s

(* distinct L1-line indices over the lane base addresses, as
   {!Sm.coalesce} counts them *)
let segments ~line lane_addrs =
  let line = Int64.of_int line in
  let lines =
    List.sort_uniq Int64.compare
      (List.map (fun (_, a) -> Int64.div a line) lane_addrs)
  in
  List.length lines

(* max distinct 4-byte words mapping to one bank, as
   {!Sm.bank_conflict_degree}; the bank of a word is its signed
   remainder, kept distinct from the positive classes by offsetting *)
let bank_degree ~banks lane_addrs =
  let words =
    List.sort_uniq Int64.compare
      (List.map (fun (_, a) -> Int64.div a 4L) lane_addrs)
  in
  let counts = Hashtbl.create 16 in
  let degree = ref 1 in
  List.iter
    (fun w ->
       let bank = Int64.to_int (Int64.rem w (Int64.of_int banks)) + banks in
       let c = 1 + Option.value ~default:0 (Hashtbl.find_opt counts bank) in
       Hashtbl.replace counts bank c;
       if c > !degree then degree := c)
    words;
  if words = [] then 1 else !degree

let record_mem t ~line ~banks pc (space : Ptx.Types.space) lane_addrs =
  let s = mem_stat t pc space in
  s.m_execs <- s.m_execs + 1;
  match space with
  | Ptx.Types.Global | Ptx.Types.Local ->
    s.max_segments <- max s.max_segments (segments ~line lane_addrs)
  | Ptx.Types.Shared ->
    s.max_bank_degree <- max s.max_bank_degree (bank_degree ~banks lane_addrs)
  | _ -> ()

(* A conditional branch splits the warp when both the taken and the
   fall-through lane sets are non-empty; replicated from the
   interpreter's own test before stepping over it. *)
let record_branch t w =
  match Refinterp.peek w with
  | Some (Ptx.Instr.Bra_pred (p, sense, _)) ->
    let pc = Refinterp.pc w in
    let mask = Refinterp.active_mask w in
    let values = Refinterp.read_reg_values w p in
    let taken = ref 0 in
    Array.iteri
      (fun lane v ->
         if mask land (1 lsl lane) <> 0 && Value.to_bool v = sense then
           taken := !taken lor (1 lsl lane))
      values;
    let fall = mask land lnot !taken in
    let s = branch_stat t pc in
    s.b_execs <- s.b_execs + 1;
    if !taken <> 0 && fall <> 0 then s.b_divergent <- s.b_divergent + 1
  | _ -> ()

(* The barrier-waiting block driver, mirroring {!Refinterp.run_block},
   with the counters hooked around every step. *)
let run_block t ~line ~banks lctx ~ctaid ~warp_size =
  let _block, warps = Refinterp.make_block lctx ~ctaid ~warp_size in
  let warps = Array.of_list warps in
  let waiting = Array.make (Array.length warps) false in
  let all_done () = Array.for_all Refinterp.is_done warps in
  let progress = ref true in
  while (not (all_done ())) && !progress do
    progress := false;
    Array.iteri
      (fun i w ->
         if (not (Refinterp.is_done w)) && not waiting.(i) then begin
           let stop = ref false in
           while not !stop do
             record_branch t w;
             let pc = Refinterp.pc w in
             match Refinterp.step w with
             | Refinterp.E_barrier ->
               waiting.(i) <- true;
               stop := true;
               progress := true
             | Refinterp.E_exit ->
               stop := true;
               progress := true
             | Refinterp.E_mem { space; lane_addrs; _ } ->
               record_mem t ~line ~banks pc space lane_addrs;
               progress := true
             | Refinterp.E_alu _ -> progress := true
           done
         end)
      warps;
    let live_blocked = ref true in
    Array.iteri
      (fun i w ->
         if (not (Refinterp.is_done w)) && not waiting.(i) then
           live_blocked := false)
      warps;
    if !live_blocked then Array.iteri (fun i _ -> waiting.(i) <- false) warps
  done;
  if not (all_done ()) then failwith "Profile: barrier deadlock"

let run ?(line = 128) ?(banks = 32) ?sanitize (l : Launch.t) =
  let image = Image.prepare l.Launch.kernel in
  let lctx =
    { Refinterp.image
    ; global = l.Launch.memory
    ; params = l.Launch.params
    ; block_size = l.Launch.block_size
    ; num_blocks = l.Launch.num_blocks
    ; san = sanitize
    }
  in
  let t = { mem_tbl = Hashtbl.create 64; branch_tbl = Hashtbl.create 16 } in
  for ctaid = 0 to l.Launch.num_blocks - 1 do
    run_block t ~line ~banks lctx ~ctaid ~warp_size:l.Launch.warp_size
  done;
  t

let sorted tbl =
  List.sort
    (fun (a, _) (b, _) -> Stdlib.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let mems t = sorted t.mem_tbl
let branches t = sorted t.branch_tbl
