type t =
  { kernel : Ptx.Kernel.t
  ; block_size : int
  ; num_blocks : int
  ; tlp_limit : int
  ; params : (string * Value.t) list
  ; memory : Memory.t
  ; warp_size : int
  }

let make ?(warp_size = 32) ?(tlp_limit = 1) ?(params = []) ~kernel ~block_size
    ~num_blocks memory =
  if warp_size <= 0 then invalid_arg "Launch.make: warp_size must be positive";
  if block_size <= 0 || block_size mod warp_size <> 0 then
    invalid_arg "Launch.make: block_size must be a positive multiple of warp_size";
  if num_blocks <= 0 then invalid_arg "Launch.make: num_blocks must be positive";
  if tlp_limit <= 0 then invalid_arg "Launch.make: tlp_limit must be positive";
  { kernel; block_size; num_blocks; tlp_limit; params; memory; warp_size }

let with_tlp l tlp =
  if tlp <= 0 then invalid_arg "Launch.with_tlp: tlp must be positive";
  { l with tlp_limit = tlp }
