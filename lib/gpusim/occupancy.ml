type usage =
  { regs_per_thread : int
  ; sregs_per_warp : int
  ; block_size : int
  ; shared_per_block : int
  }

type limit =
  | Thread_slots
  | Block_slots
  | Registers of [ `Vector | `Scalar ]
  | Shared_memory

let limit_to_string = function
  | Thread_slots -> "threads"
  | Block_slots -> "thread blocks"
  | Registers `Vector -> "registers"
  | Registers `Scalar -> "scalar registers"
  | Shared_memory -> "shared memory"

let warps_per_block c u = (u.block_size + c.Config.warp_size - 1) / c.Config.warp_size

let max_tlp (c : Config.t) u =
  let by_threads = c.Config.max_threads_per_sm / u.block_size in
  let by_blocks = c.Config.max_blocks_per_sm in
  let by_regs =
    if u.regs_per_thread = 0 then by_blocks
    else Config.registers_per_sm c / (u.regs_per_thread * u.block_size)
  in
  let by_sregs =
    if u.sregs_per_warp = 0 then by_blocks
    else c.Config.scalar_regs_per_sm / (u.sregs_per_warp * warps_per_block c u)
  in
  let by_shared =
    if u.shared_per_block = 0 then by_blocks
    else c.Config.shared_bytes_per_sm / u.shared_per_block
  in
  max 0 (min (min by_threads by_blocks) (min (min by_regs by_sregs) by_shared))

let limiting_resource (c : Config.t) u =
  let tlp = max_tlp c u in
  let next = tlp + 1 in
  if next * u.block_size > c.Config.max_threads_per_sm then Thread_slots
  else if next > c.Config.max_blocks_per_sm then Block_slots
  else if next * u.regs_per_thread * u.block_size > Config.registers_per_sm c
  then Registers `Vector
  else if next * u.sregs_per_warp * warps_per_block c u > c.Config.scalar_regs_per_sm
  then Registers `Scalar
  else if next * u.shared_per_block > c.Config.shared_bytes_per_sm then
    Shared_memory
  else Block_slots

let register_utilization (c : Config.t) u ~tlp =
  float_of_int (tlp * u.block_size * u.regs_per_thread)
  /. float_of_int (Config.registers_per_sm c)

let scalar_register_utilization (c : Config.t) u ~tlp =
  float_of_int (tlp * warps_per_block c u * u.sregs_per_warp)
  /. float_of_int c.Config.scalar_regs_per_sm

let shared_utilization (c : Config.t) u ~tlp =
  float_of_int (tlp * u.shared_per_block)
  /. float_of_int c.Config.shared_bytes_per_sm

let spare_shared_bytes (c : Config.t) u ~tlp =
  if tlp <= 0 then 0
  else
    let per_block_budget = c.Config.shared_bytes_per_sm / tlp in
    max 0 (per_block_budget - u.shared_per_block)
