(* Predecoded kernel image.

   [Ptx.Instr.t] is convenient for construction and transformation but
   expensive to interpret: every step re-matches operand constructors,
   re-hashes register keys, walks [List.assoc] for symbols/params and
   re-resolves branch labels. This module lowers a flattened kernel
   once per {!Image} into a dense execution form the interpreter can
   run without any per-step lookups:

   - registers are renamed to consecutive slots (by [reg_key], so two
     registers with the same width class and id alias, exactly as the
     boxed interpreter's keying did);
   - branch targets and reconvergence pcs are resolved to indices;
   - shared symbols become immediates, local symbols become frame
     offsets, params become indices into a per-launch value table;
   - per-pc register use/def slot arrays and the timing classification
     are precomputed for the scoreboard;
   - the [exec] outcome the timing layer consumes is preallocated
     per pc, so the steady-state step returns an existing block.

   Statically-invalid instructions (unknown symbol, [ld.param] with a
   non-param base, unsupported spaces) are lowered to [Dbad]/[DBad]
   thunks that raise with the original interpreter's message — and only
   when executed (for operands: only when evaluated under a non-empty
   mask), preserving error timing. *)

type dop =
  | Dreg of int (* register slot *)
  | Dimm of int64 (* integer-tagged immediate *)
  | Dfimm of int64 (* float-tagged immediate (bit pattern) *)
  | Dspecial of Ptx.Reg.special
  | Dlocal of int (* local-symbol frame offset, per-lane address *)
  | Dparam of int (* index into the launch parameter table *)
  | Dbad of string (* raises [Invalid_argument] when evaluated *)

type dinstr =
  | DMov of { ty : Ptx.Types.scalar; dst : int; dty : Ptx.Types.scalar; a : dop }
  | DBinop of
      { op : Ptx.Instr.binop
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      }
  | DMad of
      { ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      ; c : dop
      }
  | DUnop of
      { op : Ptx.Instr.unop
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      }
  | DCvt of
      { dt : Ptx.Types.scalar
      ; st : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      }
  | DSetp of
      { cmp : Ptx.Instr.cmp
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      }
  | DSelp of
      { ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      ; p : int (* predicate slot *)
      }
  | DLd_param of
      { ty : Ptx.Types.scalar; dst : int; dty : Ptx.Types.scalar; pidx : int }
  | DLd of
      { space : Ptx.Types.space (* Const, Shared, Global or Local *)
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; base : dop
      ; off : int
      }
  | DSt of
      { space : Ptx.Types.space (* Shared, Global or Local *)
      ; ty : Ptx.Types.scalar
      ; base : dop
      ; off : int
      ; src : dop
      }
  | DBra of int (* resolved target pc *)
  | DBra_pred of { p : int; sense : bool; target : int; reconv : int }
  | DBar
  | DRet
  | DBad of string (* raises [Invalid_argument] when executed *)

(* What a step did, for the timing layer (re-exported as [Interp.exec]).
   Lane addresses of an [E_mem] are exposed through the warp's scratch
   buffer ([Interp.mem_count]/[mem_addr]/[mem_lane]), valid until the
   warp's next step. *)
type exec =
  | E_alu of Ptx.Instr.op_class
  | E_mem of
      { space : Ptx.Types.space
      ; write : bool
      ; width : int
      }
  | E_barrier
  | E_exit

type t =
  { code : dinstr array
  ; exec_of : exec array (* preallocated per-pc step outcome *)
  ; cls : Ptx.Instr.op_class array
  ; uses : int array array (* register slots read, per pc *)
  ; defs : int array array (* register slots written, per pc *)
  ; is_gl_mem : bool array (* goes through the global-memory LSU path *)
  ; nslots : int
  ; params : string array (* launch parameters, in first-use order *)
  ; slot_of_key : (int, int) Hashtbl.t
  }

let reg_key r =
  let cls =
    match Ptx.Types.reg_class (Ptx.Reg.ty r) with
    | Ptx.Types.Cpred -> 0
    | Ptx.Types.C32 -> 1
    | Ptx.Types.C64 -> 2
  in
  (cls lsl 24) lor Ptx.Reg.id r

let num_slots t = t.nslots
let num_params t = Array.length t.params
let param_name t i = t.params.(i)

let slot_of_reg t r = Hashtbl.find_opt t.slot_of_key (reg_key r)

let build ~(flow : Cfg.Flow.t) ~(reconv : int array)
    ~(shared_offsets : (string * int) list)
    ~(local_offsets : (string * int) list) : t =
  let instrs = flow.Cfg.Flow.instrs in
  let slot_of_key = Hashtbl.create 64 in
  let nslots = ref 0 in
  let slot_of r =
    let key = reg_key r in
    match Hashtbl.find_opt slot_of_key key with
    | Some s -> s
    | None ->
      let s = !nslots in
      incr nslots;
      Hashtbl.replace slot_of_key key s;
      s
  in
  let params = ref [] and nparams = ref 0 in
  let pindex name =
    match List.assoc_opt name !params with
    | Some i -> i
    | None ->
      let i = !nparams in
      incr nparams;
      params := (name, i) :: !params;
      i
  in
  let dop = function
    | Ptx.Instr.Oreg r -> Dreg (slot_of r)
    | Ptx.Instr.Oimm i -> Dimm i
    | Ptx.Instr.Ofimm f -> Dfimm (Int64.bits_of_float f)
    | Ptx.Instr.Ospecial s -> Dspecial s
    | Ptx.Instr.Osym s -> (
      match List.assoc_opt s shared_offsets with
      | Some off -> Dimm (Int64.of_int off)
      | None -> (
        match List.assoc_opt s local_offsets with
        | Some off -> Dlocal off
        | None -> Dbad (Printf.sprintf "Interp: unknown symbol %s" s)))
    | Ptx.Instr.Oparam p -> Dparam (pindex p)
  in
  let target l = Cfg.Flow.target_index flow l in
  let lower pc ins =
    match ins with
    | Ptx.Instr.Mov (ty, d, a) ->
      DMov { ty; dst = slot_of d; dty = Ptx.Reg.ty d; a = dop a }
    | Ptx.Instr.Binop (op, ty, d, a, b) ->
      DBinop { op; ty; dst = slot_of d; dty = Ptx.Reg.ty d; a = dop a; b = dop b }
    | Ptx.Instr.Mad (ty, d, a, b, c) ->
      DMad
        { ty; dst = slot_of d; dty = Ptx.Reg.ty d
        ; a = dop a; b = dop b; c = dop c }
    | Ptx.Instr.Unop (op, ty, d, a) ->
      DUnop { op; ty; dst = slot_of d; dty = Ptx.Reg.ty d; a = dop a }
    | Ptx.Instr.Cvt (dt, st, d, a) ->
      DCvt { dt; st; dst = slot_of d; dty = Ptx.Reg.ty d; a = dop a }
    | Ptx.Instr.Setp (cmp, ty, d, a, b) ->
      DSetp
        { cmp; ty; dst = slot_of d; dty = Ptx.Reg.ty d; a = dop a; b = dop b }
    | Ptx.Instr.Selp (ty, d, a, b, p) ->
      DSelp
        { ty; dst = slot_of d; dty = Ptx.Reg.ty d
        ; a = dop a; b = dop b; p = slot_of p }
    | Ptx.Instr.Ld (Ptx.Types.Param, ty, d, addr) -> (
      match addr.Ptx.Instr.base with
      | Ptx.Instr.Oparam p ->
        (* the byte offset is ignored for parameter loads, as in the
           boxed interpreter *)
        DLd_param { ty; dst = slot_of d; dty = Ptx.Reg.ty d; pidx = pindex p }
      | Ptx.Instr.Oreg _ | Ptx.Instr.Oimm _ | Ptx.Instr.Ofimm _
      | Ptx.Instr.Ospecial _ | Ptx.Instr.Osym _ ->
        DBad "Interp: ld.param requires a parameter base")
    | Ptx.Instr.Ld
        ( (( Ptx.Types.Const | Ptx.Types.Shared | Ptx.Types.Global
           | Ptx.Types.Local ) as space)
        , ty
        , d
        , addr ) ->
      DLd
        { space; ty; dst = slot_of d; dty = Ptx.Reg.ty d
        ; base = dop addr.Ptx.Instr.base; off = addr.Ptx.Instr.offset }
    | Ptx.Instr.Ld ((Ptx.Types.Reg as sp), _, _, _) ->
      DBad
        (Printf.sprintf "Interp: ld.%s unsupported" (Ptx.Types.space_to_string sp))
    | Ptx.Instr.St
        ( ((Ptx.Types.Shared | Ptx.Types.Global | Ptx.Types.Local) as space)
        , ty
        , addr
        , v ) ->
      DSt
        { space; ty; base = dop addr.Ptx.Instr.base
        ; off = addr.Ptx.Instr.offset; src = dop v }
    | Ptx.Instr.St ((Ptx.Types.Reg | Ptx.Types.Param | Ptx.Types.Const), _, _, _)
      -> DBad "Interp: unsupported store space"
    | Ptx.Instr.Bra l -> DBra (target l)
    | Ptx.Instr.Bra_pred (p, sense, l) ->
      DBra_pred
        { p = slot_of p; sense; target = target l; reconv = reconv.(pc) }
    | Ptx.Instr.Bar_sync -> DBar
    | Ptx.Instr.Ret -> DRet
  in
  let code = Array.mapi lower instrs in
  let exec_of =
    Array.map
      (fun ins ->
         match ins with
         | Ptx.Instr.Ld
             ((Ptx.Types.Shared | Ptx.Types.Global | Ptx.Types.Local) as sp
             , ty, _, _) ->
           E_mem { space = sp; write = false; width = Ptx.Types.width_bytes ty }
         | Ptx.Instr.St
             ((Ptx.Types.Shared | Ptx.Types.Global | Ptx.Types.Local) as sp
             , ty, _, _) ->
           E_mem { space = sp; write = true; width = Ptx.Types.width_bytes ty }
         | Ptx.Instr.Bar_sync -> E_barrier
         | Ptx.Instr.Ret -> E_exit
         | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _
         | Ptx.Instr.Unop _ | Ptx.Instr.Cvt _ | Ptx.Instr.Setp _
         | Ptx.Instr.Selp _ | Ptx.Instr.Ld _ | Ptx.Instr.St _
         | Ptx.Instr.Bra _ | Ptx.Instr.Bra_pred _ ->
           E_alu (Ptx.Instr.classify ins))
      instrs
  in
  let cls = Array.map Ptx.Instr.classify instrs in
  let slots rs = Array.of_list (List.map slot_of rs) in
  let uses = Array.map (fun ins -> slots (Ptx.Instr.uses ins)) instrs in
  let defs = Array.map (fun ins -> slots (Ptx.Instr.defs ins)) instrs in
  let is_gl_mem =
    Array.map
      (fun c ->
         match c with
         | Ptx.Instr.Mem_global | Ptx.Instr.Mem_local -> true
         | Ptx.Instr.Alu | Ptx.Instr.Alu_heavy | Ptx.Instr.Sfu
         | Ptx.Instr.Mem_shared | Ptx.Instr.Mem_const_param | Ptx.Instr.Ctrl
         | Ptx.Instr.Barrier -> false)
      cls
  in
  let param_names = Array.make !nparams "" in
  List.iter (fun (name, i) -> param_names.(i) <- name) !params;
  { code
  ; exec_of
  ; cls
  ; uses
  ; defs
  ; is_gl_mem
  ; nslots = !nslots
  ; params = param_names
  ; slot_of_key
  }
