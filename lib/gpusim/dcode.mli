(** Predecoded kernel image: the dense execution form the interpreter's
    allocation-free fast path runs. Built once per {!Image} by lowering
    the flattened [Ptx.Instr.t] array — registers renamed to
    consecutive slots, branch/reconvergence targets resolved to
    indices, symbols and params resolved to immediates/offsets/table
    indices, and per-pc use/def slot arrays plus the timing [exec]
    outcome precomputed. Statically-invalid instructions become
    [Dbad]/[DBad] thunks that raise the original interpreter's error
    at execution (not predecode) time. *)

type dop =
  | Dreg of int  (** register slot *)
  | Dimm of int64  (** integer-tagged immediate *)
  | Dfimm of int64  (** float-tagged immediate (bit pattern) *)
  | Dspecial of Ptx.Reg.special
  | Dlocal of int  (** local-symbol frame offset; address is per-lane *)
  | Dparam of int  (** index into the launch parameter table *)
  | Dbad of string  (** raises [Invalid_argument] when evaluated *)

type dinstr =
  | DMov of { ty : Ptx.Types.scalar; dst : int; dty : Ptx.Types.scalar; a : dop }
  | DBinop of
      { op : Ptx.Instr.binop
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      }
  | DMad of
      { ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      ; c : dop
      }
  | DUnop of
      { op : Ptx.Instr.unop
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      }
  | DCvt of
      { dt : Ptx.Types.scalar
      ; st : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      }
  | DSetp of
      { cmp : Ptx.Instr.cmp
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      }
  | DSelp of
      { ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; a : dop
      ; b : dop
      ; p : int
      }
  | DLd_param of
      { ty : Ptx.Types.scalar; dst : int; dty : Ptx.Types.scalar; pidx : int }
  | DLd of
      { space : Ptx.Types.space
      ; ty : Ptx.Types.scalar
      ; dst : int
      ; dty : Ptx.Types.scalar
      ; base : dop
      ; off : int
      }
  | DSt of
      { space : Ptx.Types.space
      ; ty : Ptx.Types.scalar
      ; base : dop
      ; off : int
      ; src : dop
      }
  | DBra of int
  | DBra_pred of { p : int; sense : bool; target : int; reconv : int }
  | DBar
  | DRet
  | DBad of string

(** What a step did, for the timing layer (re-exported as
    [Interp.exec]). Lane addresses of an [E_mem] are exposed through
    the warp scratch buffer ([Interp.mem_count]/[mem_addr]/[mem_lane]),
    valid until the warp's next step. *)
type exec =
  | E_alu of Ptx.Instr.op_class
  | E_mem of
      { space : Ptx.Types.space
      ; write : bool
      ; width : int
      }
  | E_barrier
  | E_exit

type t = private
  { code : dinstr array
  ; exec_of : exec array  (** preallocated per-pc step outcome *)
  ; cls : Ptx.Instr.op_class array
  ; uses : int array array  (** register slots read, per pc *)
  ; defs : int array array  (** register slots written, per pc *)
  ; is_gl_mem : bool array  (** global-memory LSU path (global/local) *)
  ; nslots : int
  ; params : string array  (** launch parameters, in first-use order *)
  ; slot_of_key : (int, int) Hashtbl.t
  }

val reg_key : Ptx.Reg.t -> int
(** Physical-slot key: width class and id, ignoring the scalar type —
    two registers with the same colour share a slot. *)

val num_slots : t -> int
val num_params : t -> int
val param_name : t -> int -> string
val slot_of_reg : t -> Ptx.Reg.t -> int option

val build :
  flow:Cfg.Flow.t ->
  reconv:int array ->
  shared_offsets:(string * int) list ->
  local_offsets:(string * int) list ->
  t
