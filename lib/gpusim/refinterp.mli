(** Reference SIMT interpreter — the original boxed implementation,
    kept as the semantic oracle for {!Interp}'s predecoded/unboxed
    fast path. The differential property tests step random kernels
    through both in lockstep and require bit-identical register
    contents, control flow and memory. Not used by the timing
    simulator. *)

type launch_ctx =
  { image : Image.t
  ; global : Memory.t
  ; params : (string * Value.t) list
  ; block_size : int
  ; num_blocks : int
  ; san : Sancheck.runtime option
      (** armed sanitizer: shared/local lane accesses are checked
          against its per-pc mask, and violating lanes suppressed *)
  }

type block_ctx =
  { launch : launch_ctx
  ; ctaid : int
  ; shared : Memory.t
  ; nwarps : int
  }

type warp

val make_block : launch_ctx -> ctaid:int -> warp_size:int -> block_ctx * warp list
val is_done : warp -> bool
val pc : warp -> int
val active_mask : warp -> int
val block_of : warp -> block_ctx
val warp_id : warp -> int
val peek : warp -> Ptx.Instr.t option

type exec =
  | E_alu of Ptx.Instr.op_class
  | E_mem of
      { space : Ptx.Types.space
      ; write : bool
      ; width : int
      ; lane_addrs : (int * int64) list
      }
  | E_barrier
  | E_exit

val step : warp -> exec
val popcount : int -> int
val read_reg_values : warp -> Ptx.Reg.t -> Value.t array
val reg_key : Ptx.Reg.t -> int

val run : ?sanitize:Sancheck.runtime -> Launch.t -> unit
(** Emulator-style whole-launch execution through the reference
    semantics, mutating the launch's global memory in place.
    [sanitize] arms the hybrid sanitizer; its counters are the
    caller's to inspect afterwards. *)
