(** Reference functional emulator: executes a launch with no timing
    model. Used to validate the timing simulator and — crucially — as
    the oracle that register allocation preserves kernel semantics
    (original and allocated kernels must leave identical global memory). *)

val run : ?sanitize:Sancheck.runtime -> Launch.t -> unit
(** Execute all blocks sequentially, mutating the launch's global
    memory in place. [sanitize] arms the hybrid sanitizer in the
    underlying {!Interp}; its counters belong to the caller.
    @raise Failure on barrier deadlock or divergent return. *)

val run_to_memory : Launch.t -> Memory.t
(** Like {!run} but on a copy of the launch's memory; returns the
    resulting memory. *)
