(** A kernel prepared for execution: flattened body, reconvergence table
    from post-dominators, and resolved offsets for shared/local array
    declarations. *)

type t =
  { kernel : Ptx.Kernel.t
  ; flow : Cfg.Flow.t
  ; reconv : int array
      (** per instruction index: the reconvergence pc of a (conditional)
          branch at that index; [num_instrs] when control only
          reconverges at kernel exit *)
  ; shared_offsets : (string * int) list
  ; shared_decl_bytes : int  (** bytes of declared shared arrays per block *)
  ; local_offsets : (string * int) list
  ; local_frame_bytes : int  (** per-thread local frame *)
  ; code : Dcode.t
      (** predecoded execution form of [flow.instrs] (see {!Dcode}) *)
  }

val prepare : Ptx.Kernel.t -> t
val num_instrs : t -> int

val layout_decls :
  Ptx.Kernel.decl list -> Ptx.Types.space -> (string * int) list * int
(** Sequential aligned layout of the declarations of one space:
    per-symbol byte offsets in declaration order, and the total segment
    bytes (rounded up to 8). This is the layout both interpreters load
    at, so static address analyses ([Absint]) may treat the offsets as
    exact. *)

val local_base : int64
(** Start of the per-thread local-memory heap in the global address
    space. *)

(** Per-thread (naive, frame-contiguous) address of a local symbol. *)
val local_addr : t -> global_tid:int -> sym_offset:int -> int64

(** Translate a naive frame address ([local_addr] base + byte offset)
    into the interleaved layout. Like real GPUs, local memory is
    interleaved: word [w] of thread [g] lives at
    [local_base + (w * stride + g) * 4], so the 32 lanes of a warp
    accessing the same spill slot touch consecutive words and coalesce
    into one or two cache lines. The kernel adds its own byte offsets to
    the symbol base, so interleaving is applied at access time. *)
val remap_local : t -> global_tid:int -> int64 -> int64
val shared_offset : t -> string -> int
val pp_summary : Format.formatter -> t -> unit
