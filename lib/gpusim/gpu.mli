(** Whole-GPU simulation: several SMs advancing in lock-step against one
    shared L2 / interconnect / DRAM, pulling thread blocks from a global
    dispatcher — the full configuration of the paper's Table 2 (15 SMs).

    The per-SM experiments use {!Sm.run} (the paper's metrics are
    per-SM); this module backs the multi-SM scalability study and shows
    that shared-bandwidth contention, not SM count, bounds throughput
    for memory-bound kernels.

    The per-cycle driver is allocation-free (flat running flags, no
    per-cycle closures), matching {!Sm}'s scratch-buffer discipline. *)

type result =
  { per_sm : Stats.t array
  ; total_cycles : int  (** cycles until the last SM finished *)
  ; dram_bytes : int
  ; l2 : Cache.stats
  }

exception Cycle_limit of result

val run :
  ?sms:int
  -> ?max_cycles:int
  -> ?scheduler:[ `Gto | `Lrr ]
  -> ?record:Replay.t
      (** capture the launch's dynamic trace while executing (block ids
          are global, so one shared trace covers all SMs) *)
  -> ?replay:Replay.t
      (** drive every SM from this recorded trace instead of executing
          functionally *)
  -> Config.t
  -> Launch.t
  -> result
(** Simulate [sms] SMs (default: the configuration's [num_sms]). Blocks
    are dispatched globally in id order as slots free up; the launch's
    [tlp_limit] bounds concurrent blocks per SM. *)

val aggregate_ipc : result -> float
(** Total warp instructions per cycle across all SMs. *)
