(* Flat per-warp trace buffers, same scratch-array discipline as Sm's
   LSU ring: ints for pcs/masks, a float array of int64 bit patterns
   for lane addresses, doubling growth during recording and a one-time
   shrink in [finish]. *)

type wtrace =
  { wid : int
  ; mutable pcs : int array
  ; mutable masks : int array
  ; mutable n : int
  ; mutable addrs : float array  (* address bit patterns *)
  ; mutable addr_n : int
  }

type t =
  { image : Image.t
  ; block_size : int
  ; num_blocks : int
  ; warp_size : int
  ; warps : wtrace array array  (* [ctaid].(wid) *)
  }

let initial_cap = 64

let make_wtrace wid =
  { wid
  ; pcs = Array.make initial_cap 0
  ; masks = Array.make initial_cap 0
  ; n = 0
  ; addrs = Array.make initial_cap 0.0
  ; addr_n = 0
  }

let create (l : Launch.t) =
  let nwarps = l.Launch.block_size / l.Launch.warp_size in
  { image = Image.prepare l.Launch.kernel
  ; block_size = l.Launch.block_size
  ; num_blocks = l.Launch.num_blocks
  ; warp_size = l.Launch.warp_size
  ; warps =
      Array.init l.Launch.num_blocks (fun _ -> Array.init nwarps make_wtrace)
  }

let image t = t.image
let block_size t = t.block_size
let num_blocks t = t.num_blocks
let warp_size t = t.warp_size

let events t =
  Array.fold_left
    (fun acc ws ->
       Array.fold_left (fun acc w -> acc + w.n + w.addr_n) acc ws)
    0 t.warps

(* ---------- recording ---------- *)

let wtrace t ~ctaid ~wid = t.warps.(ctaid).(wid)

let record w ~pc ~mask =
  let cap = Array.length w.pcs in
  if w.n = cap then begin
    let grow a = Array.append a (Array.make cap 0) in
    w.pcs <- grow w.pcs;
    w.masks <- grow w.masks
  end;
  Array.unsafe_set w.pcs w.n pc;
  Array.unsafe_set w.masks w.n mask;
  w.n <- w.n + 1

let record_addr w addr =
  let cap = Array.length w.addrs in
  if w.addr_n = cap then w.addrs <- Array.append w.addrs (Array.make cap 0.0);
  Array.unsafe_set w.addrs w.addr_n (Int64.float_of_bits addr);
  w.addr_n <- w.addr_n + 1

let finish t =
  Array.iter
    (fun ws ->
       Array.iter
         (fun w ->
            if Array.length w.pcs > w.n then begin
              w.pcs <- Array.sub w.pcs 0 w.n;
              w.masks <- Array.sub w.masks 0 w.n
            end;
            if Array.length w.addrs > w.addr_n then
              w.addrs <- Array.sub w.addrs 0 w.addr_n)
         ws)
    t.warps

(* ---------- replay ---------- *)

type cursor =
  { tr : wtrace
  ; code : Dcode.t
  ; mutable i : int  (* next event index *)
  ; mutable ai : int  (* next unconsumed address index *)
  ; mutable cur_addr_off : int  (* addresses of the last E_mem step *)
  ; mutable cur_addr_n : int
  ; mutable finished : bool
  }

let cursor t ~ctaid ~wid =
  { tr = t.warps.(ctaid).(wid)
  ; code = t.image.Image.code
  ; i = 0
  ; ai = 0
  ; cur_addr_off = 0
  ; cur_addr_n = 0
  ; finished = false
  }

let is_done c = c.finished || c.i >= c.tr.n
let warp_id c = c.tr.wid
let fetch c = if is_done c then -1 else Array.unsafe_get c.tr.pcs c.i
let active_mask c = Array.unsafe_get c.tr.masks c.i

(* branch-free SWAR popcount, as Interp.popcount (duplicated so replay
   has no interpreter dependency at all) *)
let popcount x =
  let x = x - ((x lsr 1) land 0x5555555555555555) in
  let x = (x land 0x3333333333333333) + ((x lsr 2) land 0x3333333333333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (x * 0x0101010101010101) lsr 56

let step c =
  let pc = Array.unsafe_get c.tr.pcs c.i in
  let mask = Array.unsafe_get c.tr.masks c.i in
  c.i <- c.i + 1;
  let exec = Array.unsafe_get c.code.Dcode.exec_of pc in
  (match exec with
   | Dcode.E_mem _ ->
     let n = popcount mask in
     c.cur_addr_off <- c.ai;
     c.cur_addr_n <- n;
     c.ai <- c.ai + n
   | Dcode.E_exit -> c.finished <- true
   | Dcode.E_alu _ | Dcode.E_barrier -> ());
  exec

let mem_count c = c.cur_addr_n

let mem_addr c j =
  Int64.bits_of_float (Array.unsafe_get c.tr.addrs (c.cur_addr_off + j))

(* ---------- launch keys ---------- *)

let launch_key ?kernel_digest (l : Launch.t) =
  let kd =
    match kernel_digest with
    | Some d -> d
    | None -> Digest.to_hex (Digest.string (Ptx.Printer.kernel_to_string l.Launch.kernel))
  in
  let b = Buffer.create 256 in
  Buffer.add_string b kd;
  Printf.bprintf b "|%d|%d|%d|" l.Launch.block_size l.Launch.num_blocks
    l.Launch.warp_size;
  Buffer.add_string b (Digest.string (Marshal.to_string l.Launch.params []));
  Buffer.add_string b (Memory.digest l.Launch.memory);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ---------- persistence ---------- *)

(* The whole trace record is pure data (flat arrays, the predecoded
   image's instruction forms carry no closures), so Marshal gives a
   faithful on-disk form; replaying a loaded trace reuses its embedded
   prepared image exactly like a resident one. *)
let to_bytes (t : t) = Marshal.to_string t []

let of_bytes s : t option =
  try Some (Marshal.from_string s 0) with Failure _ -> None

(* ---------- trace store ---------- *)

module Store = struct
  type trace = t

  let weight : trace -> int = events

  type t =
    { lock : Mutex.t
    ; tbl : (string, trace) Hashtbl.t
    ; order : string Queue.t  (* insertion order, for oldest-first eviction *)
    ; max_events : int
    ; on_evict : (string -> trace -> unit) option
    ; mutable total : int
    }

  let create ?(max_events = 1 lsl 25) ?on_evict () =
    { lock = Mutex.create ()
    ; tbl = Hashtbl.create 64
    ; order = Queue.create ()
    ; max_events
    ; on_evict
    ; total = 0
    }

  let locked s f =
    Mutex.lock s.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

  let find s key = locked s (fun () -> Hashtbl.find_opt s.tbl key)
  let mem s key = locked s (fun () -> Hashtbl.mem s.tbl key)
  let length s = locked s (fun () -> Hashtbl.length s.tbl)
  let events s = locked s (fun () -> s.total)

  let evict_one s =
    match Queue.take_opt s.order with
    | None -> ()
    | Some k ->
      (match Hashtbl.find_opt s.tbl k with
       | Some tr ->
         s.total <- s.total - weight tr;
         Hashtbl.remove s.tbl k;
         (* spill hook: give the evictee a chance to survive on disk *)
         (match s.on_evict with Some f -> f k tr | None -> ())
       | None -> ())

  let add s key tr =
    let w = weight tr in
    locked s (fun () ->
      if w <= s.max_events && not (Hashtbl.mem s.tbl key) then begin
        while s.total + w > s.max_events && not (Queue.is_empty s.order) do
          evict_one s
        done;
        Hashtbl.replace s.tbl key tr;
        Queue.push key s.order;
        s.total <- s.total + w
      end)

  let clear s =
    locked s (fun () ->
      Hashtbl.reset s.tbl;
      Queue.clear s.order;
      s.total <- 0)
end
