type t =
  { name : string
  ; num_sms : int
  ; warp_size : int
  ; max_threads_per_sm : int
  ; max_blocks_per_sm : int
  ; regfile_bytes_per_sm : int
  ; scalar_regs_per_sm : int
  ; shared_bytes_per_sm : int
  ; num_schedulers : int
  ; max_regs_per_thread : int
  ; l1_bytes : int
  ; l1_assoc : int
  ; l1_line : int
  ; l1_mshrs : int
  ; l1_hit_latency : int
  ; l1_ports : int
  ; shared_latency : int
  ; shared_banks : int
  ; l2_bytes : int
  ; l2_assoc : int
  ; l2_latency : int
  ; icnt_bytes_per_cycle : int
  ; dram_latency : int
  ; dram_bytes_per_cycle : int
  ; alu_latency : int
  ; alu_heavy_latency : int
  ; sfu_latency : int
  ; const_latency : int
  }

(* Table 2 of the paper: 15 SMs, 128 KB register file, 48 KB shared,
   1536 threads / 8 blocks per SM, 2 GTO schedulers, 32 KB 4-way L1 with
   128 B lines and 32 MSHRs, 768 KB L2. *)
let fermi =
  { name = "Fermi-like (Table 2)"
  ; num_sms = 15
  ; warp_size = 32
  ; max_threads_per_sm = 1536
  ; max_blocks_per_sm = 8
  ; regfile_bytes_per_sm = 128 * 1024
  ; scalar_regs_per_sm = 2048
  ; shared_bytes_per_sm = 48 * 1024
  ; num_schedulers = 2
  ; max_regs_per_thread = 63
  ; l1_bytes = 32 * 1024
  ; l1_assoc = 4
  ; l1_line = 128
  ; l1_mshrs = 32
  ; l1_hit_latency = 28
  ; l1_ports = 1
  ; shared_latency = 26
  ; shared_banks = 32
  ; l2_bytes = 768 * 1024
  ; l2_assoc = 8
  ; l2_latency = 120
  ; icnt_bytes_per_cycle = 10
  ; dram_latency = 300
  ; dram_bytes_per_cycle = 8
  ; alu_latency = 6
  ; alu_heavy_latency = 24
  ; sfu_latency = 18
  ; const_latency = 10
  }

(* Section 7.3: Kepler doubles the register file (256 KB) and raises the
   thread limit to 2048 per SM; block limit grows to 16. *)
let kepler =
  { fermi with
    name = "Kepler-like (Sec. 7.3)"
  ; regfile_bytes_per_sm = 256 * 1024
  ; scalar_regs_per_sm = 4096
  ; max_threads_per_sm = 2048
  ; max_blocks_per_sm = 16
  ; max_regs_per_thread = 255
  }

let registers_per_sm c = c.regfile_bytes_per_sm / 4
let min_reg c = registers_per_sm c / c.max_threads_per_sm

let pp fmt c =
  Format.fprintf fmt "%s@." c.name;
  Format.fprintf fmt "  SM           : %d SMs, %d warp size, %d schedulers (GTO)@."
    c.num_sms c.warp_size c.num_schedulers;
  Format.fprintf fmt "  Register     : %dKB (%d regs), max %d regs/thread@."
    (c.regfile_bytes_per_sm / 1024) (registers_per_sm c) c.max_regs_per_thread;
  Format.fprintf fmt "  Scalar regs  : %d per SM (machine backend)@."
    c.scalar_regs_per_sm;
  Format.fprintf fmt "  Shared memory: %dKB@." (c.shared_bytes_per_sm / 1024);
  Format.fprintf fmt "  TLP limits   : %d threads, %d thread blocks@."
    c.max_threads_per_sm c.max_blocks_per_sm;
  Format.fprintf fmt "  L1 data cache: %dKB, %d-way, %dB lines, LRU, %d MSHRs@."
    (c.l1_bytes / 1024) c.l1_assoc c.l1_line c.l1_mshrs;
  Format.fprintf fmt "  L2 cache     : %dKB, %d-way, %d-cycle@."
    (c.l2_bytes / 1024) c.l2_assoc c.l2_latency;
  Format.fprintf fmt "  DRAM         : %d-cycle, %dB/cycle@." c.dram_latency
    c.dram_bytes_per_cycle
