(** The one launch record shared by every execution entry point.

    Historically each front-end spelled the same launch differently —
    [Sm.launch], [Gpu.launch], the emulator's record plus a separate
    memory argument, and labelled-argument tuples on [Refinterp.run] /
    [Profile.run] / [Trace.warp_trace]. This module is the single
    spelling: kernel, geometry, parameters and the global memory image,
    with [warp_size] defaulted to 32 and the TLP knob carried along for
    the timing layer (functional front-ends ignore it). *)

type t =
  { kernel : Ptx.Kernel.t
  ; block_size : int  (** threads per block; positive multiple of [warp_size] *)
  ; num_blocks : int  (** grid size (total thread blocks) *)
  ; tlp_limit : int  (** concurrent blocks per SM (the TLP knob) *)
  ; params : (string * Value.t) list
  ; memory : Memory.t  (** global memory, mutated in place by execution *)
  ; warp_size : int
  }

val make :
  ?warp_size:int
  -> ?tlp_limit:int
  -> ?params:(string * Value.t) list
  -> kernel:Ptx.Kernel.t
  -> block_size:int
  -> num_blocks:int
  -> Memory.t
  -> t
(** [warp_size] defaults to 32, [tlp_limit] to 1, [params] to [[]].
    @raise Invalid_argument when [block_size] is not a positive multiple
    of [warp_size], or [num_blocks]/[tlp_limit] is not positive. *)

val with_tlp : t -> int -> t
(** Same launch under a different TLP limit. *)
