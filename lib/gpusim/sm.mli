(** Cycle-level SM timing simulator.

    One streaming multiprocessor executes thread blocks under a TLP
    limit (concurrent blocks), with:
    - [num_schedulers] greedy-then-oldest (GTO) warp schedulers, one
      issue per scheduler per cycle;
    - a scoreboard per warp (RAW/WAW on register slots);
    - a load/store unit with a bounded segment queue; warp accesses are
      coalesced into L1-line segments; MSHR reservation failures replay
      and are charged as cache-congestion stalls;
    - an L1 data cache backed by a (possibly shared) L2, interconnect
      and DRAM bandwidth model; shared memory has fixed latency plus
      bank-conflict serialisation;
    - block-level barriers and a block dispatcher that refills freed
      slots, mirroring the paper's thread-block-level throttling.

    The instruction front-end is pluggable: a live {!Interp} warp
    (functional execution), optionally capturing a {!Replay} trace as a
    side effect ([?record]), or a replay cursor over a previously
    recorded trace ([?replay]) that feeds the timing pipeline the same
    (pc, mask, addresses) stream while skipping operand evaluation and
    register-file writes — replayed statistics are bit-identical to a
    cold run's.

    The stepping API ({!create}/{!step}) lets {!Gpu} advance several SMs
    against one shared memory hierarchy; {!run} is the single-SM
    convenience wrapper used throughout the experiments. *)

exception Cycle_limit of Stats.t

(** The levels behind the per-SM L1: shared between SMs in a multi-SM
    simulation. *)
type shared_memsys

val make_shared : Config.t -> shared_memsys
val shared_dram_bytes : shared_memsys -> int
val shared_l2_stats : shared_memsys -> Cache.stats

type t

val create :
  ?scheduler:[ `Gto | `Lrr ]
  -> ?dynamic_tlp:bool
      (** DynCTA-style runtime throttling (Kayiran et al., the paper's
          reference [3]): a controller samples cache-congestion pressure
          each window and pauses/resumes resident thread blocks. The
          OptTLP baseline is this technique's offline-profiled optimum *)
  -> ?bypass_global:bool
      (** static L1 bypassing for global traffic (loads and stores go
          straight to the interconnect/L2); local spill traffic still
          caches. An extension hook: the paper notes CRAT composes with
          cache-bypassing techniques *)
  -> ?record:Replay.t
      (** capture the dynamic trace into this (empty) trace while
          executing functionally; exclusive with [?replay] *)
  -> ?replay:Replay.t
      (** drive the timing pipeline from this recorded trace instead of
          executing functionally; the launch's geometry must match the
          trace's, and global memory is left untouched *)
  -> Config.t
  -> shared_memsys
  -> next_block:(unit -> int option)
      (** global block dispenser: called whenever a slot frees; [None]
          when the grid is exhausted *)
  -> Launch.t
  -> t
(** [launch.num_blocks] is only used for the kernel's [%nctaid]; block
    ids come from [next_block]. The launch's [warp_size] must equal the
    configuration's. *)

val step : t -> unit
(** Advance one cycle. *)

val busy : t -> bool
(** Blocks resident or still obtainable from the dispenser. *)

val stats : t -> Stats.t
(** Live statistics (cycles updated on {!finalize}). *)

val finalize : t -> Stats.t
(** Stamp cycle count and copy L1/L2 statistics into the result. *)

val run :
  ?max_cycles:int
  -> ?scheduler:[ `Gto | `Lrr ]
  -> ?bypass_global:bool
  -> ?dynamic_tlp:bool
  -> ?record:Replay.t
  -> ?replay:Replay.t
  -> Config.t
  -> Launch.t
  -> Stats.t
(** Single-SM convenience: private memory hierarchy, sequential block
    ids [0 .. num_blocks-1]; the launch's [tlp_limit] bounds concurrent
    blocks.
    @raise Cycle_limit when [max_cycles] (default 40_000_000) elapses. *)
