(** Sparse word-addressed value store used for global, local and shared
    memory contents. Accesses are assumed naturally aligned; a read of an
    address never written returns zero of the requested type. *)

type t

val create : unit -> t
val read : t -> int64 -> Ptx.Types.scalar -> Value.t
val write : t -> int64 -> Ptx.Types.scalar -> Value.t -> unit
val copy : t -> t
val size : t -> int
(** Number of distinct locations written. *)

val equal : t -> t -> bool
(** Same written locations with equal values — the oracle of the
    "allocation preserves semantics" property tests. *)

val fold : (int64 -> Value.t -> 'a -> 'a) -> t -> 'a -> 'a

val digest : t -> Digest.t
(** Canonical content fingerprint: two memories that read back
    identically digest identically, regardless of page-table layout,
    insertion order or written-zero slots. Keys the trace-replay
    launch store. *)

(** {2 Raw accessors}

    Bit-pattern interface used by the interpreter's allocation-free
    fast path. [load_bits] returns the raw stored 64-bit pattern (zero
    for never-written locations); [load_isf] its float tag (observable
    only through predicate reads); [store_bits] stores an
    already-truncated pattern with an explicit tag. *)

val load_bits : t -> int64 -> int64
val load_isf : t -> int64 -> bool
val store_bits : t -> int64 -> isf:bool -> int64 -> unit

(** {2 Buffer helpers} *)

val write_f32_array : t -> base:int64 -> float array -> unit
val write_u32_array : t -> base:int64 -> int array -> unit
val read_f32_array : t -> base:int64 -> int -> float array
val read_u32_array : t -> base:int64 -> int -> int array
