type entry =
  { pc : int
  ; instr : Ptx.Instr.t
  ; mask : int
  ; def_value : Value.t option
  }

let warp_trace ?(max_steps = 10_000) ~ctaid ~warp (l : Launch.t) =
  let image = Image.prepare l.Launch.kernel in
  let lctx =
    { Interp.image
    ; global = l.Launch.memory
    ; params = l.Launch.params
    ; block_size = l.Launch.block_size
    ; num_blocks = l.Launch.num_blocks
    ; san = None
    }
  in
  let _block, warps =
    Interp.make_block lctx ~ctaid ~warp_size:l.Launch.warp_size
  in
  let warps = Array.of_list warps in
  if warp < 0 || warp >= Array.length warps then
    invalid_arg "Trace.warp_trace: no such warp";
  let target = warps.(warp) in
  let log = ref [] in
  let steps = ref 0 in
  (* round-robin in barrier-sized quanta, mirroring the emulator *)
  let waiting = Array.make (Array.length warps) false in
  let all_done () = Array.for_all Interp.is_done warps in
  let progress = ref true in
  while (not (all_done ())) && !progress && !steps < max_steps do
    progress := false;
    Array.iteri
      (fun i w ->
         if (not (Interp.is_done w)) && not waiting.(i) then begin
           let stop = ref false in
           while not !stop do
             let pc = Interp.pc w in
             let mask = Interp.active_mask w in
             let instr =
               if Interp.is_done w then None
               else Interp.peek w
             in
             match instr with
             | None -> stop := true
             | Some ins ->
               let exec = Interp.step w in
               progress := true;
               if w == target && !steps < max_steps then begin
                 incr steps;
                 let def_value =
                   match Ptx.Instr.defs ins with
                   | d :: _ -> Some (Interp.read_reg_values w d).(0)
                   | [] -> None
                 in
                 log := { pc; instr = ins; mask; def_value } :: !log
               end;
               (match exec with
                | Interp.E_barrier ->
                  waiting.(i) <- true;
                  stop := true
                | Interp.E_exit -> stop := true
                | Interp.E_alu _ | Interp.E_mem _ -> ())
           done
         end)
      warps;
    let live_blocked = ref true in
    Array.iteri
      (fun i w ->
         if (not (Interp.is_done w)) && not waiting.(i) then live_blocked := false)
      warps;
    if !live_blocked then Array.iteri (fun i _ -> waiting.(i) <- false) warps
  done;
  List.rev !log

let pp_entry fmt e =
  Format.fprintf fmt "%5d %08x  %a" e.pc (e.mask land 0xFFFFFFFF) Ptx.Instr.pp
    e.instr;
  match e.def_value with
  | Some v -> Format.fprintf fmt "   ; lane0 = %a" Value.pp v
  | None -> ()

let pp fmt entries =
  Format.fprintf fmt "%5s %8s  %s@." "pc" "mask" "instruction";
  List.iter (fun e -> Format.fprintf fmt "%a@." pp_entry e) entries
