(* SIMT interpreter, allocation-free fast path.

   Executes the predecoded form ({!Dcode}) built once per {!Image}:
   registers live in a flat per-warp [float array] of raw 64-bit
   patterns (plus a per-slot lane bitmask carrying the I/F constructor
   tag, which is observable only through predicate reads and
   integer-from-float conversions — see {!Value}), the reconvergence
   stack is a trio of growable int arrays, and memory-instruction lane
   addresses go into a reusable scratch buffer exposed through
   accessors instead of per-step lists. The steady-state [step] touches
   only preallocated state; the returned [exec] blocks are preallocated
   per pc at predecode time.

   Semantics are defined by {!Refinterp} (the original boxed
   interpreter); the differential property tests keep the two in
   lockstep agreement. *)

type launch_ctx =
  { image : Image.t
  ; global : Memory.t
  ; params : (string * Value.t) list
  ; block_size : int
  ; num_blocks : int
  ; san : Sancheck.runtime option
  }

type block_ctx =
  { launch : launch_ctx
  ; ctaid : int
  ; shared : Memory.t
  ; nwarps : int
  ; param_bits : int64 array (* per Dcode param index: raw value bits *)
  ; param_isf : bool array (* float-tagged? *)
  ; param_ok : bool array (* bound in the launch? (checked at use) *)
  }

type warp =
  { block : block_ctx
  ; wid : int
  ; base_tid : int
  ; nlanes : int
  ; code : Dcode.t
  ; rf : float array (* nslots × nlanes raw 64-bit patterns *)
  ; ftag : int array (* per slot: lane bitmask of float tags *)
  ; mutable stk_pc : int array (* SIMT stack, entries 0..sp *)
  ; mutable stk_reconv : int array
  ; mutable stk_mask : int array
  ; mutable sp : int
  ; addr_buf : float array (* lane-address scratch (bit patterns) *)
  ; addr_lane : int array
  ; mutable addr_n : int
  ; mutable done_ : bool
  }

let reg_key = Dcode.reg_key
let full_mask n = (1 lsl n) - 1

let make_block launch ~ctaid ~warp_size =
  if launch.block_size <= 0 || launch.block_size mod warp_size <> 0 then
    invalid_arg "Interp.make_block: block size must be a multiple of warp size";
  let nwarps = launch.block_size / warp_size in
  let code = launch.image.Image.code in
  let np = Dcode.num_params code in
  let param_bits = Array.make np 0L in
  let param_isf = Array.make np false in
  let param_ok = Array.make np false in
  for i = 0 to np - 1 do
    match List.assoc_opt (Dcode.param_name code i) launch.params with
    | Some v ->
      param_bits.(i) <- Value.to_bits v;
      param_isf.(i) <- Value.is_f v;
      param_ok.(i) <- true
    | None -> ()
  done;
  let block =
    { launch
    ; ctaid
    ; shared = Memory.create ()
    ; nwarps
    ; param_bits
    ; param_isf
    ; param_ok
    }
  in
  let nslots = Dcode.num_slots code in
  let warps =
    List.init nwarps (fun w ->
      let stk_pc = Array.make 8 0 in
      let stk_reconv = Array.make 8 0 in
      let stk_mask = Array.make 8 0 in
      stk_reconv.(0) <- -1;
      stk_mask.(0) <- full_mask warp_size;
      { block
      ; wid = w
      ; base_tid = w * warp_size
      ; nlanes = warp_size
      ; code
      ; rf = Array.make (max 1 (nslots * warp_size)) 0.0
      ; ftag = Array.make (max 1 nslots) 0
      ; stk_pc
      ; stk_reconv
      ; stk_mask
      ; sp = 0
      ; addr_buf = Array.make warp_size 0.0
      ; addr_lane = Array.make warp_size 0
      ; addr_n = 0
      ; done_ = false
      })
  in
  (block, warps)

let is_done w = w.done_

let normalize w =
  while
    w.sp > 0
    && Array.unsafe_get w.stk_pc w.sp = Array.unsafe_get w.stk_reconv w.sp
  do
    w.sp <- w.sp - 1
  done

let pc w = w.stk_pc.(w.sp)
let active_mask w = w.stk_mask.(w.sp)
let block_of w = w.block
let warp_id w = w.wid

let instrs w = w.block.launch.image.Image.flow.Cfg.Flow.instrs

let peek w =
  if w.done_ then None
  else begin
    normalize w;
    let p = pc w in
    let arr = instrs w in
    if p >= Array.length arr then None else Some arr.(p)
  end

let fetch w =
  if w.done_ then -1
  else begin
    normalize w;
    let p = pc w in
    if p >= Array.length w.code.Dcode.code then -1 else p
  end

(* ------------------------------------------------------------------ *)
(* Register file *)

let[@inline] rf_get w slot lane =
  Int64.bits_of_float (Array.unsafe_get w.rf ((slot * w.nlanes) + lane))

let[@inline] rf_isf w slot lane =
  Array.unsafe_get w.ftag slot land (1 lsl lane) <> 0

let[@inline] rf_set w slot lane ~isf bits =
  Array.unsafe_set w.rf ((slot * w.nlanes) + lane) (Int64.float_of_bits bits);
  let t = Array.unsafe_get w.ftag slot in
  let b = 1 lsl lane in
  Array.unsafe_set w.ftag slot (if isf then t lor b else t land lnot b)

let read_reg_values w r =
  match Dcode.slot_of_reg w.code r with
  | None -> Array.make w.nlanes Value.zero
  | Some s ->
    Array.init w.nlanes (fun l ->
      let bits = rf_get w s l in
      if rf_isf w s l then Value.F (Int64.float_of_bits bits) else Value.I bits)

(* ------------------------------------------------------------------ *)
(* Operand evaluation *)

let global_tid w lane =
  (w.block.ctaid * w.block.launch.block_size) + w.base_tid + lane

let special_bits w lane s =
  let v =
    match s with
    | Ptx.Reg.Tid_x -> w.base_tid + lane
    | Ptx.Reg.Tid_y -> 0
    | Ptx.Reg.Ctaid_x -> w.block.ctaid
    | Ptx.Reg.Ctaid_y -> 0
    | Ptx.Reg.Ntid_x -> w.block.launch.block_size
    | Ptx.Reg.Ntid_y -> 1
    | Ptx.Reg.Nctaid_x -> w.block.launch.num_blocks
    | Ptx.Reg.Nctaid_y -> 1
    | Ptx.Reg.Laneid -> lane
    | Ptx.Reg.Warpid -> w.wid
  in
  Int64.of_int v

let param_bits_checked w i =
  if Array.unsafe_get w.block.param_ok i then
    Array.unsafe_get w.block.param_bits i
  else
    invalid_arg
      (Printf.sprintf "Interp: unbound parameter %s"
         (Dcode.param_name w.code i))

let eval_bits w lane (op : Dcode.dop) =
  match op with
  | Dcode.Dreg s -> rf_get w s lane
  | Dcode.Dimm i | Dcode.Dfimm i -> i
  | Dcode.Dspecial s -> special_bits w lane s
  | Dcode.Dlocal off ->
    Image.local_addr w.block.launch.image ~global_tid:(global_tid w lane)
      ~sym_offset:off
  | Dcode.Dparam i -> param_bits_checked w i
  | Dcode.Dbad msg -> invalid_arg msg

let eval_isf w lane (op : Dcode.dop) =
  match op with
  | Dcode.Dreg s -> rf_isf w s lane
  | Dcode.Dfimm _ -> true
  | Dcode.Dparam i ->
    ignore (param_bits_checked w i);
    Array.unsafe_get w.block.param_isf i
  | Dcode.Dimm _ | Dcode.Dspecial _ | Dcode.Dlocal _ -> false
  | Dcode.Dbad msg -> invalid_arg msg

(* ------------------------------------------------------------------ *)
(* Memory *)

let mem_read_bits mem a ty =
  let bits = Memory.load_bits mem a in
  let isf =
    match ty with Ptx.Types.Pred -> Memory.load_isf mem a | _ -> false
  in
  Value.truncate_bits ty ~isf bits

(* Sanitizer probes, mirroring {!Refinterp}: shared addresses are
   checked as-is, local ones on the naive pre-interleave offset into
   the thread's own frame (before {!Image.remap_local} could fault). *)

let[@inline] san_shared w ~pc ~lane ~width a =
  match w.block.launch.san with
  | None -> true
  | Some rt ->
    Sancheck.check rt ~pc ~lane ~tid:(w.base_tid + lane) ~width ~rel:a

let[@inline] san_local w ~pc ~lane ~width naive =
  match w.block.launch.san with
  | None -> true
  | Some rt ->
    let image = w.block.launch.image in
    let rel =
      Int64.sub naive
        (Int64.add Image.local_base
           (Int64.of_int (global_tid w lane * image.Image.local_frame_bytes)))
    in
    Sancheck.check rt ~pc ~lane ~tid:(w.base_tid + lane) ~width ~rel

let[@inline] record_addr w lane a =
  let n = w.addr_n in
  Array.unsafe_set w.addr_lane n lane;
  Array.unsafe_set w.addr_buf n (Int64.float_of_bits a);
  w.addr_n <- n + 1

let mem_count w = w.addr_n
let mem_addr w i = Int64.bits_of_float w.addr_buf.(i)
let mem_lane w i = w.addr_lane.(i)

(* ------------------------------------------------------------------ *)
(* Execution *)

type exec = Dcode.exec =
  | E_alu of Ptx.Instr.op_class
  | E_mem of
      { space : Ptx.Types.space
      ; write : bool
      ; width : int
      }
  | E_barrier
  | E_exit

(* branch-free SWAR popcount over OCaml's 63-bit ints: pairwise, then
   nibble-wise sums, then one multiply gathers the byte counts *)
let popcount m =
  let m = m - ((m lsr 1) land 0x1555555555555555) in
  let m = (m land 0x3333333333333333) + ((m lsr 2) land 0x3333333333333333) in
  let m = (m + (m lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  (m * 0x0101010101010101) lsr 56 land 0x7F

let ensure_stack w n =
  let cap = Array.length w.stk_pc in
  if n > cap then begin
    let ncap = max (2 * cap) n in
    let grow a =
      let b = Array.make ncap 0 in
      Array.blit a 0 b 0 cap;
      b
    in
    w.stk_pc <- grow w.stk_pc;
    w.stk_reconv <- grow w.stk_reconv;
    w.stk_mask <- grow w.stk_mask
  end

let step w =
  if w.done_ then invalid_arg "Interp.step: warp already done";
  normalize w;
  let this_pc = Array.unsafe_get w.stk_pc w.sp in
  let code = w.code in
  if this_pc >= Array.length code.Dcode.code then begin
    w.done_ <- true;
    Dcode.E_exit
  end
  else begin
    let mask = Array.unsafe_get w.stk_mask w.sp in
    Array.unsafe_set w.stk_pc w.sp (this_pc + 1);
    let nlanes = w.nlanes in
    (match Array.unsafe_get code.Dcode.code this_pc with
     | Dcode.DMov { ty; dst; dty; a } ->
       let visf = Ptx.Types.is_float ty in
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           let bits =
             Value.truncate_bits ty ~isf:(eval_isf w l a) (eval_bits w l a)
           in
           rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf bits)
       done
     | Dcode.DBinop { op; ty; dst; dty; a; b } ->
       let visf = Ptx.Types.is_float ty in
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           let r = Value.binop_bits op ty (eval_bits w l a) (eval_bits w l b) in
           rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf r)
       done
     | Dcode.DMad { ty; dst; dty; a; b; c } ->
       let visf = Ptx.Types.is_float ty in
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           let r =
             Value.mad_bits ty (eval_bits w l a) (eval_bits w l b)
               (eval_bits w l c)
           in
           rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf r)
       done
     | Dcode.DUnop { op; ty; dst; dty; a } ->
       let visf = Ptx.Types.is_float ty in
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           let r = Value.unop_bits op ty (eval_bits w l a) in
           rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf r)
       done
     | Dcode.DCvt { dt; st; dst; dty; a } ->
       let visf = Ptx.Types.is_float dt in
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           let r = Value.convert_bits ~dst:dt ~src:st (eval_bits w l a) in
           rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf r)
       done
     | Dcode.DSetp { cmp; ty; dst; dty; a; b } ->
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           let r =
             Value.compare_bits cmp ty (eval_bits w l a) (eval_bits w l b)
           in
           rf_set w dst l ~isf:disf
             (Value.truncate_bits dty ~isf:false (if r then 1L else 0L))
       done
     | Dcode.DSelp { ty; dst; dty; a; b; p } ->
       let visf = Ptx.Types.is_float ty in
       let disf = Ptx.Types.is_float dty in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then begin
           (* only the selected operand is evaluated, as in Refinterp *)
           let src =
             if Value.to_bool_bits ~isf:(rf_isf w p l) (rf_get w p l) then a
             else b
           in
           let bits =
             Value.truncate_bits ty ~isf:(eval_isf w l src) (eval_bits w l src)
           in
           rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf bits)
         end
       done
     | Dcode.DLd_param { ty; dst; dty; pidx } ->
       if mask <> 0 then begin
         let visf = Ptx.Types.is_float ty in
         let disf = Ptx.Types.is_float dty in
         let pb = param_bits_checked w pidx in
         let pisf = Array.unsafe_get w.block.param_isf pidx in
         let bits =
           Value.truncate_bits dty ~isf:visf
             (Value.truncate_bits ty ~isf:pisf pb)
         in
         for l = 0 to nlanes - 1 do
           if mask land (1 lsl l) <> 0 then rf_set w dst l ~isf:disf bits
         done
       end
     | Dcode.DLd { space; ty; dst; dty; base; off } ->
       let visf = Ptx.Types.is_float ty in
       let disf = Ptx.Types.is_float dty in
       let image = w.block.launch.image in
       let off64 = Int64.of_int off in
       let width = Ptx.Types.width_bytes ty in
       w.addr_n <- 0;
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then begin
           let a =
             Int64.add
               (Value.to_int64_bits ~isf:(eval_isf w l base)
                  (eval_bits w l base))
               off64
           in
           let finish bits =
             rf_set w dst l ~isf:disf (Value.truncate_bits dty ~isf:visf bits)
           in
           match space with
           | Ptx.Types.Const -> finish (mem_read_bits w.block.launch.global a ty)
           | Ptx.Types.Shared ->
             if san_shared w ~pc:this_pc ~lane:l ~width a then begin
               record_addr w l a;
               finish (mem_read_bits w.block.shared a ty)
             end
           | Ptx.Types.Global ->
             record_addr w l a;
             finish (mem_read_bits w.block.launch.global a ty)
           | Ptx.Types.Local | Ptx.Types.Reg | Ptx.Types.Param ->
             (* only Local reaches here (see Dcode.build) *)
             if san_local w ~pc:this_pc ~lane:l ~width a then begin
               let a = Image.remap_local image ~global_tid:(global_tid w l) a in
               record_addr w l a;
               finish (mem_read_bits w.block.launch.global a ty)
             end
         end
       done
     | Dcode.DSt { space; ty; base; off; src } ->
       let sisf = Ptx.Types.is_float ty in
       let image = w.block.launch.image in
       let off64 = Int64.of_int off in
       let width = Ptx.Types.width_bytes ty in
       w.addr_n <- 0;
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then begin
           let a =
             Int64.add
               (Value.to_int64_bits ~isf:(eval_isf w l base)
                  (eval_bits w l base))
               off64
           in
           let store mem a =
             record_addr w l a;
             Memory.store_bits mem a ~isf:sisf
               (Value.truncate_bits ty ~isf:(eval_isf w l src)
                  (eval_bits w l src))
           in
           match space with
           | Ptx.Types.Shared ->
             if san_shared w ~pc:this_pc ~lane:l ~width a then
               store w.block.shared a
           | Ptx.Types.Local ->
             if san_local w ~pc:this_pc ~lane:l ~width a then
               store w.block.launch.global
                 (Image.remap_local image ~global_tid:(global_tid w l) a)
           | Ptx.Types.Global | Ptx.Types.Reg | Ptx.Types.Param
           | Ptx.Types.Const ->
             (* only Global reaches here (see Dcode.build) *)
             store w.block.launch.global a
         end
       done
     | Dcode.DBra target -> Array.unsafe_set w.stk_pc w.sp target
     | Dcode.DBra_pred { p; sense; target; reconv } ->
       let taken = ref 0 in
       for l = 0 to nlanes - 1 do
         if mask land (1 lsl l) <> 0 then
           if Value.to_bool_bits ~isf:(rf_isf w p l) (rf_get w p l) = sense
           then taken := !taken lor (1 lsl l)
       done;
       let taken = !taken in
       let fall = mask land lnot taken in
       if taken = 0 then () (* next pc already this_pc + 1 *)
       else if fall = 0 then Array.unsafe_set w.stk_pc w.sp target
       else begin
         Array.unsafe_set w.stk_pc w.sp reconv;
         ensure_stack w (w.sp + 3);
         let s = w.sp + 1 in
         w.stk_pc.(s) <- this_pc + 1;
         w.stk_reconv.(s) <- reconv;
         w.stk_mask.(s) <- fall;
         w.stk_pc.(s + 1) <- target;
         w.stk_reconv.(s + 1) <- reconv;
         w.stk_mask.(s + 1) <- taken;
         w.sp <- s + 1
       end
     | Dcode.DBar -> ()
     | Dcode.DRet ->
       if w.sp > 0 then failwith "Interp: divergent ret is not supported";
       w.done_ <- true
     | Dcode.DBad msg -> invalid_arg msg);
    normalize w;
    Array.unsafe_get code.Dcode.exec_of this_pc
  end
