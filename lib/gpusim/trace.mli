(** Execution tracing: a per-warp instruction log from the functional
    interpreter, for debugging kernels and validating transformations by
    eye. Each record carries the pc, the instruction, the active mask
    and the defined register's lane-0 value. *)

type entry =
  { pc : int
  ; instr : Ptx.Instr.t
  ; mask : int
  ; def_value : Value.t option  (** lane 0 of the defined register *)
  }

val warp_trace : ?max_steps:int -> ctaid:int -> warp:int -> Launch.t -> entry list
(** Execute block [ctaid] functionally and record warp [warp]'s steps.
    Other warps of the block run too (shared-memory staging and barriers
    behave normally). [max_steps] (default 10_000) bounds the log. *)

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> entry list -> unit
