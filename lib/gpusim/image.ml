type t =
  { kernel : Ptx.Kernel.t
  ; flow : Cfg.Flow.t
  ; reconv : int array
  ; shared_offsets : (string * int) list
  ; shared_decl_bytes : int
  ; local_offsets : (string * int) list
  ; local_frame_bytes : int
  ; code : Dcode.t
  }

let align_up x a = (x + a - 1) / a * a

let layout_decls decls space =
  let off = ref 0 in
  let offsets =
    List.filter_map
      (fun (d : Ptx.Kernel.decl) ->
         if Ptx.Types.equal_space d.dspace space then begin
           let o = align_up !off (max 1 d.dalign) in
           off := o + Ptx.Kernel.decl_bytes d;
           Some (d.dname, o)
         end
         else None)
      decls
  in
  (offsets, align_up !off 8)

let prepare (k : Ptx.Kernel.t) =
  let flow = Cfg.Flow.of_kernel k in
  let pdom = Cfg.Dominance.post_dominators flow in
  let n = Cfg.Flow.num_instrs flow in
  let reconv = Array.make (max n 1) n in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    match ins with
    | Ptx.Instr.Bra_pred _ ->
      let b = flow.Cfg.Flow.block_of_instr.(i) in
      (match Cfg.Dominance.reconvergence_point flow pdom b with
       | Some pc -> reconv.(i) <- pc
       | None -> reconv.(i) <- n)
    | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _ | Ptx.Instr.Unop _
    | Ptx.Instr.Cvt _ | Ptx.Instr.Setp _ | Ptx.Instr.Selp _ | Ptx.Instr.Ld _
    | Ptx.Instr.St _ | Ptx.Instr.Bra _ | Ptx.Instr.Bar_sync | Ptx.Instr.Ret ->
      ());
  let shared_offsets, shared_decl_bytes = layout_decls k.decls Ptx.Types.Shared in
  let local_offsets, local_frame_bytes = layout_decls k.decls Ptx.Types.Local in
  let code = Dcode.build ~flow ~reconv ~shared_offsets ~local_offsets in
  { kernel = k
  ; flow
  ; reconv
  ; shared_offsets
  ; shared_decl_bytes
  ; local_offsets
  ; local_frame_bytes
  ; code
  }

let num_instrs t = Cfg.Flow.num_instrs t.flow
let local_base = 0x4000_0000L

(* Interleave stride in 4-byte words. Two constraints: it must exceed any
   global thread id (distinct threads must never alias), and the per-slot
   stride in cache lines (stride/32) must be odd so consecutive spill
   slots spread over all cache sets instead of piling into one. *)
let interleave_stride = 321 * 32

let local_addr t ~global_tid ~sym_offset =
  Int64.add local_base
    (Int64.of_int ((global_tid * t.local_frame_bytes) + sym_offset))

let remap_local t ~global_tid naive =
  if global_tid >= interleave_stride then
    invalid_arg "Image.remap_local: thread id exceeds the interleave stride";
  let logical = Int64.to_int (Int64.sub naive local_base) in
  let off = logical - (global_tid * t.local_frame_bytes) in
  if off < 0 || off >= max 1 t.local_frame_bytes then
    invalid_arg "Image.remap_local: address outside the thread's local frame";
  let word = off / 4 and byte = off mod 4 in
  Int64.add local_base
    (Int64.of_int ((((word * interleave_stride) + global_tid) * 4) + byte))

let shared_offset t name =
  match List.assoc_opt name t.shared_offsets with
  | Some o -> o
  | None -> invalid_arg (Printf.sprintf "Image: unknown shared symbol %s" name)

let pp_summary fmt t =
  Format.fprintf fmt "kernel %s: %d instrs, %d blocks, shared %dB, local %dB/thread"
    t.kernel.Ptx.Kernel.name (num_instrs t)
    (Cfg.Flow.num_blocks t.flow)
    t.shared_decl_bytes t.local_frame_bytes
