(** Per-pc memory-safety check masks: the runtime half of the hybrid
    sanitizer.

    The static bounds pass ([Absint.Bounds]) classifies every
    shared/local/param access of a kernel as proven-safe, proven-OOB or
    unprovable, and compiles the result into a mask of per-pc {!claim}s
    over the kernel's flat instruction indices. The interpreters
    ({!Refinterp}, {!Interp}, [Machine.Exec]) consult the mask on every
    shared and local lane access: accesses whose pc carries a
    [Proven_safe] claim pay nothing beyond the lookup (the static proof
    {e discharges} the dynamic check), while [Residual] and
    [Proven_oob] pcs pay a bounds test per lane. A failing test is
    recorded in the {!counters} (per-pc, with a first-violation
    witness) and the lane's access is suppressed, so an out-of-bounds
    spill write can never corrupt a neighbouring thread's slots — or
    crash the local-memory interleaver — under a sanitized run.

    Bounds are expressed against the segment the access was resolved
    to: {b shared} bounds are absolute byte offsets into the block's
    shared region, {b local} bounds are byte offsets into the thread's
    (naive, pre-interleave) local frame. [Per_thread] bounds carry the
    TLP-dependent sub-stack layout of the shared spill region: thread
    [tid] may only touch [base + tid*stride, base + (tid+1)*stride). *)

type bound =
  | Segment of
      { lo : int
      ; hi : int
      }  (** the access footprint must fall inside [lo, hi) *)
  | Per_thread of
      { base : int
      ; stride : int
      }
      (** per-thread sub-stack: lane with in-block thread id [t] must
          stay inside [base + t*stride, base + (t+1)*stride) *)

type claim =
  | Proven_safe of bound
      (** statically proven in bounds; checked only under {!force_all} *)
  | Proven_oob of bound  (** statically proven out of bounds *)
  | Residual of bound  (** unprovable: the dynamic check remains armed *)

type t
(** An immutable per-pc check mask for one prepared kernel. *)

val make : ?force:bool -> num_instrs:int -> (int * claim) list -> t
(** [force] (default false) arms the bounds test even on [Proven_safe]
    pcs — the soundness-harness mode: a violation recorded at a
    proven-safe pc disproves the static analysis. *)

val force_all : t -> t
(** The same mask with every claim's test armed. *)

val claim_at : t -> int -> claim option
(** [None] when the pc carries no claim (not a sanitized access). *)

val is_empty : t -> bool

(** {1 Runtime counters} *)

type violation =
  { v_pc : int
  ; v_lane : int  (** lane within the warp *)
  ; v_tid : int  (** thread id within the block *)
  ; v_addr : int64  (** segment-relative byte offset of the access *)
  }

type stat =
  { mutable seen : int  (** lane accesses monitored at this pc *)
  ; mutable checked : int  (** lane accesses that paid a bounds test *)
  ; mutable violations : int
  ; mutable first : violation option  (** earliest recorded violation *)
  }

type counters

val counters : unit -> counters
val stats : counters -> (int * stat) list
(** Per-pc counters, ascending by pc. *)

val seen : counters -> int
val checked : counters -> int
val violations : counters -> int
val first_violation : counters -> violation option

(** {1 The armed sanitizer an interpreter carries} *)

type runtime =
  { mask : t
  ; counters : counters
  }

val runtime : t -> runtime
(** Fresh counters over [mask]. *)

val check :
  runtime -> pc:int -> lane:int -> tid:int -> width:int -> rel:int64 -> bool
(** Monitor one lane access: [rel] is the segment-relative byte offset
    (absolute shared offset, or the offset into the thread's local
    frame), [tid] the in-block thread id, [width] the access bytes.
    Returns [true] when the access may proceed — either the pc carries
    no armed test, or the footprint passed its bound. [false] records a
    violation; the caller must suppress the lane's access. *)
