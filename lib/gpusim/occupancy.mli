(** Occupancy calculator: the maximum number of thread blocks that can
    run concurrently on one SM ("GPU kernels launch as many thread blocks
    concurrently as possible until one or more dimension of resources are
    exhausted", Section 2.1).

    With the machine backend, a kernel also consumes the per-SM scalar
    register file at a per-{e warp} rate ([sregs_per_warp]); the PTX
    backend reports 0 there, which disables the constraint. *)

type usage =
  { regs_per_thread : int  (** vector-file 32-bit units per thread *)
  ; sregs_per_warp : int  (** scalar-file 32-bit units per warp; 0 = none *)
  ; block_size : int
  ; shared_per_block : int  (** bytes *)
  }

(** The resource dimension that binds at [max_tlp]. *)
type limit =
  | Thread_slots
  | Block_slots
  | Registers of [ `Vector | `Scalar ]
  | Shared_memory

val limit_to_string : limit -> string
(** Human spelling: "threads", "thread blocks", "registers",
    "scalar registers", "shared memory". *)

val max_tlp : Config.t -> usage -> int
(** Minimum over the threads, blocks, vector and scalar register-file
    and shared-memory constraints; 0 when a single block cannot fit. *)

val limiting_resource : Config.t -> usage -> limit
(** The dimension that would be exceeded by running [max_tlp + 1]
    blocks (checked in the order threads, blocks, vector registers,
    scalar registers, shared memory — the first violated wins);
    [Block_slots] when nothing binds below the hard block cap. *)

val register_utilization : Config.t -> usage -> tlp:int -> float
(** Fraction of the SM (vector) register file held by [tlp] concurrent
    blocks — the metric of the paper's Figures 1(b), 7 and 15. *)

val scalar_register_utilization : Config.t -> usage -> tlp:int -> float
(** Fraction of the SM scalar register file held by [tlp] blocks. *)

val shared_utilization : Config.t -> usage -> tlp:int -> float

val spare_shared_bytes : Config.t -> usage -> tlp:int -> int
(** Shared memory per block still unused when running [tlp] blocks — the
    [SpareShmSize] input of Algorithm 1. Spilling into this budget cannot
    reduce the TLP below [tlp]. *)
