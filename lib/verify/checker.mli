(** Entry points composing the five checkers. *)

val check_kernel : ?block_size:int -> Ptx.Kernel.t -> Diagnostic.t list
(** Run the kernel-level checkers (types/state-spaces, def-before-use,
    barrier divergence, shared races). [block_size] (default 128) feeds
    the cross-thread collision arithmetic of the race checker. CFG-based
    checkers are skipped when the structural (label) errors make the CFG
    unbuildable. *)

val check_allocation : Regalloc.Allocator.t -> Diagnostic.t list
(** Kernel-level checkers on the allocated kernel (at the allocation's
    recorded block size) plus the independent allocation audit. *)
