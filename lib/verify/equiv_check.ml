module Check = Equiv.Check
module Witness = Equiv.Witness

let diagnostics_of (o : Check.outcome) =
  match o.Check.verdict with
  | Check.Proved ->
    [ Diagnostic.info ~kernel:o.Check.kernel ~code:"E101"
        (Printf.sprintf
           "%s edge proved (%d cutpoints, %d paths, %d obligations)"
           o.Check.edge o.Check.cuts o.Check.paths o.Check.obligations)
    ]
  | Check.Refuted w ->
    [ Diagnostic.error ~kernel:o.Check.kernel ~code:"E201"
        (Format.asprintf
           "%s edge refuted: %s; witness block_size=%d %a; %s" o.Check.edge
           o.Check.detail w.Witness.block_size Witness.pp_params
           w.Witness.params w.Witness.descr)
    ]
  | Check.Unknown reason ->
    [ Diagnostic.warning ~kernel:o.Check.kernel ~code:"E301"
        (Printf.sprintf "%s edge unproved: %s" o.Check.edge reason)
    ]

let check_opt ~block_size ?num_blocks ~left ~right () =
  diagnostics_of (Check.check_opt ~block_size ?num_blocks ~left ~right ())

let check_alloc a = diagnostics_of (Check.check_alloc a)
let check_lower m = diagnostics_of (Check.check_lower m)
