(** Symbolic address analysis: best-effort evaluation of an operand at a
    program point into the affine form [sym + tid_coeff * tid.x + base].
    Register values are chased through the nearest preceding definition
    in the same block, falling back to a unique whole-kernel definition;
    anything else (loads, [rem], multiple reaching defs, ...) is opaque.

    [exact = false] means the form is unknown — only conservative
    conclusions may be drawn. The analysis never claims exactness
    wrongly, so disjointness proofs built on exact forms are sound. *)

type form =
  { sym : string option
  ; tid : int  (** coefficient of [tid.x] *)
  ; base : int  (** constant byte offset *)
  ; exact : bool
  }

val opaque : form

type env

val env_of : Cfg.Flow.t -> env

val eval_operand : env -> int -> Ptx.Instr.operand -> form
(** [eval_operand env i op]: the form of [op] as observed by instruction
    [i] (a flat instruction index). *)

val eval_address : env -> int -> Ptx.Instr.address -> form
(** Base form plus the constant address offset. *)
