type severity =
  | Error
  | Warning
  | Info

type t =
  { code : string
  ; severity : severity
  ; kernel : string
  ; instr : int option
  ; block : int option
  ; message : string
  }

let make severity ?instr ?block ~kernel ~code message =
  { code; severity; kernel; instr; block; message }

let error ?instr ?block ~kernel ~code message =
  make Error ?instr ?block ~kernel ~code message

let warning ?instr ?block ~kernel ~code message =
  make Warning ?instr ?block ~kernel ~code message

let info ?instr ?block ~kernel ~code message =
  make Info ?instr ?block ~kernel ~code message

let is_error d = d.severity = Error
let has_errors ds = List.exists is_error ds
let errors = List.filter is_error
let warnings ds = List.filter (fun d -> not (is_error d)) ds

let pos d =
  match d.instr with
  | Some i -> i
  | None -> max_int

let compare a b =
  Stdlib.compare
    (a.kernel, pos a, a.code, a.message)
    (b.kernel, pos b, b.code, b.message)

let sort ds = List.sort_uniq compare ds

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp fmt d =
  let loc =
    match d.instr with
    | Some i -> Printf.sprintf "[%d]" i
    | None -> ""
  in
  Format.fprintf fmt "%s%s: %s %s: %s" d.kernel loc
    (severity_to_string d.severity)
    d.code d.message

let to_string d = Format.asprintf "%a" pp d

let render ds =
  match sort ds with
  | [] -> "ok"
  | ds -> String.concat "\n" (List.map to_string ds)

let all_codes =
  [ ("V101", "operand or destination register width incompatible with the instruction type")
  ; ("V102", "setp destination / selp or branch guard is not a predicate register")
  ; ("V103", "predicate register used as an address base")
  ; ("V104", "illegal state space for this memory operation")
  ; ("V105", "reference to an undeclared symbol or unknown parameter")
  ; ("V106", "ill-formed address base operand")
  ; ("V107", "branch targets an unknown label")
  ; ("V108", "duplicate label")
  ; ("V109", "ill-formed conversion (predicate endpoint)")
  ; ("V110", "static symbol access out of the declared bounds")
  ; ("V111", "immediate kind does not match the instruction type")
  ; ("V112", "kernel can fall off the end of the body without ret")
  ; ("V201", "register may be read before initialization on some path")
  ; ("V301", "bar.sync under divergent control flow (potential deadlock)")
  ; ("V302", "ret under divergent control flow")
  ; ("V401", "whole thread block stores divergent values to a single shared address")
  ; ("V402", "shared spill-slot access breaks per-thread private addressing")
  ; ("V403", "possibly conflicting shared accesses without an intervening barrier")
  ; ("V501", "allocation assigns one physical register to simultaneously-live values")
  ; ("V502", "allocation exceeds the physical register budget")
  ; ("V503", "spill slot may be read before it is written")
  ; ("V504", "spill slot layout overlaps or access width mismatch")
  ; ("V505", "allocated kernel diverges from the audited assignment")
  ; ("V601", "machine code structurally diverges from the allocated PTX kernel")
  ; ("V602", "machine register file budget exceeded or unit ranges overlap")
  ; ("V603", "machine live ranges disagree with the PTX liveness through the register map")
  ; ("V604", "machine instruction encoding does not round-trip")
  ; ("V605", "scalar register written from a lane-dependent source")
  ; ("P101", "MAXLIVE exceeds the register budget: spilling is inevitable")
  ; ("P102", "register pressure hotspot concentrated in one block")
  ; ("P201", "global/local access may be uncoalesced (no affine address proof)")
  ; ("P202", "strided access splits each warp transaction into multiple segments")
  ; ("P301", "shared access provably causes N-way bank conflicts")
  ; ("P302", "shared access may cause bank conflicts (stride not provable)")
  ; ("P401", "possibly divergent branch inside a loop")
  ; ("P402", "possibly divergent branch")
  ; ("P501", "loop trip count not statically provable")
  ; ("P502", "loop provably never executes")
  ; ("S401", "shared access provably outside its segment or per-thread spill sub-stack")
  ; ("S402", "local-frame or parameter-bank access provably out of bounds")
  ; ("S403", "access bounds not statically provable: dynamic check retained")
  ; ("E101", "transformation edge proved equivalent by symbolic co-execution")
  ; ("E201", "transformation edge refuted: concrete replayed counterexample")
  ; ("E301", "equivalence unknown: static proof failed, no divergence found")
  ]

let describe code =
  match List.assoc_opt code all_codes with
  | Some d -> d
  | None -> "unknown diagnostic code"

let codes_listing ?prefix () =
  let selected =
    match prefix with
    | None -> all_codes
    | Some p ->
      List.filter (fun (c, _) -> String.starts_with ~prefix:p c) all_codes
  in
  String.concat "\n"
    (List.map (fun (c, d) -> Printf.sprintf "%s  %s" c d) selected)
