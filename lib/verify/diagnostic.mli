(** The uniform diagnostic currency of the verifier: every checker
    reports a list of these, and the gate / CLI / tests only ever
    consume this type. Codes are stable (documented in DESIGN.md) so
    golden tests and CI greps can rely on them. *)

type severity =
  | Error  (** the kernel is wrong: miscompiles, races or deadlocks *)
  | Warning  (** suspicious but not provably wrong *)
  | Info  (** a positive result worth surfacing, e.g. a proved edge *)

type t =
  { code : string  (** stable code, e.g. ["V101"] *)
  ; severity : severity
  ; kernel : string  (** kernel name *)
  ; instr : int option  (** flat instruction index (labels excluded) *)
  ; block : int option  (** CFG block id, when known *)
  ; message : string
  }

val error :
  ?instr:int -> ?block:int -> kernel:string -> code:string -> string -> t

val warning :
  ?instr:int -> ?block:int -> kernel:string -> code:string -> string -> t

val info :
  ?instr:int -> ?block:int -> kernel:string -> code:string -> string -> t

val is_error : t -> bool
val has_errors : t list -> bool
val errors : t list -> t list
val warnings : t list -> t list

val compare : t -> t -> int
(** Stable rendering order: kernel, instruction position (diagnostics
    without a location sort last), code, message. *)

val sort : t list -> t list
(** Sort by {!compare} and drop exact duplicates. *)

val pp : Format.formatter -> t -> unit
(** One line: [kernel[instr]: severity CODE: message]. *)

val to_string : t -> string
val render : t list -> string
(** Newline-separated {!pp} of a sorted list; ["ok"] when empty. *)

val describe : string -> string
(** One-line documentation of a diagnostic code (the DESIGN.md table). *)

val all_codes : (string * string) list
(** [(code, description)] for every documented code, in order. *)

val codes_listing : ?prefix:string -> unit -> string
(** The [--codes] table of the CLI: one ["CODE  description"] line per
    documented code, optionally restricted to codes starting with
    [prefix] (e.g. ["P"] for the lint advisories). *)
