open Ptx

type form =
  { sym : string option
  ; tid : int
  ; base : int
  ; exact : bool
  }

let opaque = { sym = None; tid = 0; base = 0; exact = false }
let const n = { sym = None; tid = 0; base = n; exact = true }

type env =
  { flow : Cfg.Flow.t
  ; defs : int list Reg.Tbl.t  (** all definition sites, ascending *)
  }

let env_of (flow : Cfg.Flow.t) =
  let defs = Reg.Tbl.create 64 in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    List.iter
      (fun r ->
         let prev = Option.value ~default:[] (Reg.Tbl.find_opt defs r) in
         Reg.Tbl.replace defs r (prev @ [ i ]))
      (Instr.defs ins));
  { flow; defs }

(* The definition of [r] whose value instruction [i] observes: nearest
   preceding def in the same block, else the unique kernel-wide def. *)
let reaching_def env i r =
  let flow = env.flow in
  let b = flow.Cfg.Flow.blocks.(flow.Cfg.Flow.block_of_instr.(i)) in
  let rec back j =
    if j < b.Cfg.Flow.first then None
    else if List.exists (Reg.equal r) (Instr.defs flow.Cfg.Flow.instrs.(j))
    then Some j
    else back (j - 1)
  in
  match back (i - 1) with
  | Some j -> Some j
  | None ->
    (match Reg.Tbl.find_opt env.defs r with
     | Some [ j ] -> Some j
     | Some _ | None -> None)

let add_form a b =
  if not (a.exact && b.exact) then opaque
  else
    match (a.sym, b.sym) with
    | Some _, Some _ -> opaque
    | s, None | None, s ->
      { sym = s; tid = a.tid + b.tid; base = a.base + b.base; exact = true }

let sub_form a b =
  if not (a.exact && b.exact) || b.sym <> None then opaque
  else { a with tid = a.tid - b.tid; base = a.base - b.base }

let scale_form a c =
  if not a.exact || a.sym <> None then opaque
  else { a with tid = a.tid * c; base = a.base * c }

let mul_form a b =
  if not (a.exact && b.exact) then opaque
  else if a.sym = None && a.tid = 0 then scale_form b a.base
  else if b.sym = None && b.tid = 0 then scale_form a b.base
  else opaque

let rec eval env i op depth =
  if depth <= 0 then opaque
  else
    match op with
    | Instr.Oimm n -> const (Int64.to_int n)
    | Instr.Ospecial Reg.Tid_x -> { sym = None; tid = 1; base = 0; exact = true }
    | Instr.Ospecial _ | Instr.Ofimm _ | Instr.Oparam _ -> opaque
    | Instr.Osym s -> { sym = Some s; tid = 0; base = 0; exact = true }
    | Instr.Oreg r ->
      (match reaching_def env i r with
       | None -> opaque
       | Some d -> eval_def env d depth)

and eval_def env d depth =
  let ev op = eval env d op (depth - 1) in
  match env.flow.Cfg.Flow.instrs.(d) with
  | Instr.Mov (_, _, a) | Instr.Cvt (_, _, _, a) -> ev a
  | Instr.Binop (Instr.Add, _, _, a, b) -> add_form (ev a) (ev b)
  | Instr.Binop (Instr.Sub, _, _, a, b) -> sub_form (ev a) (ev b)
  | Instr.Binop (Instr.Mul_lo, _, _, a, b) -> mul_form (ev a) (ev b)
  | Instr.Binop (Instr.Shl, _, _, a, b) ->
    (match ev b with
     | { sym = None; tid = 0; base = c; exact = true } when c >= 0 && c < 31 ->
       scale_form (ev a) (1 lsl c)
     | _ -> opaque)
  | Instr.Mad (_, _, a, b, c) -> add_form (mul_form (ev a) (ev b)) (ev c)
  | _ -> opaque

let eval_operand env i op = eval env i op 64

let eval_address env i (addr : Instr.address) =
  add_form (eval_operand env i addr.Instr.base) (const addr.Instr.offset)
