(** Checker 1: types and state spaces. A strictly richer, diagnostic-
    collecting version of [Ptx.Kernel.validate]: operand widths against
    the instruction signature, predicate positions, conversion shapes,
    load/store state-space legality (mirroring the reference
    interpreter's runtime rejections), symbol/parameter resolution,
    branch targets, and static out-of-bounds symbol accesses.

    Instruction locations are flat indices (labels excluded), matching
    [Cfg.Flow] instruction numbering. *)

val check : Ptx.Kernel.t -> Diagnostic.t list
