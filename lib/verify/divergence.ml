open Ptx
module Dom = Absint.Dom

type t =
  { div_in : Reg.Set.t array  (* divergent registers at entry of each instr *)
  ; div_block : bool array
  ; cdeps : int list array
  ; local_syms : string list
  ; known_syms : string list
  }

let divergent_reg t ~at r = Reg.Set.mem r t.div_in.(at)
let divergent_block t b = t.div_block.(b)
let control_deps t b = t.cdeps.(b)

(* static divergence of non-register operand kinds *)
let static_operand local_syms known_syms = function
  | Instr.Oreg _ -> false
  | Instr.Ospecial (Reg.Tid_x | Reg.Tid_y | Reg.Laneid | Reg.Warpid) -> true
  | Instr.Ospecial _ -> false
  (* local symbols resolve to per-thread addresses; unknown symbols are
     treated as divergent conservatively *)
  | Instr.Osym s -> List.mem s local_syms || not (List.mem s known_syms)
  | Instr.Oimm _ | Instr.Ofimm _ | Instr.Oparam _ -> false

let divergent_operand t ~at op =
  match op with
  | Instr.Oreg r -> divergent_reg t ~at r
  | op -> static_operand t.local_syms t.known_syms op

(* Direct control dependence from the post-dominator tree: block [x] is
   control dependent on branch block [d] iff [x] lies on the pdom-tree
   path from one of [d]'s successors up to (excluding) ipdom(d). *)
let compute_control_deps (flow : Cfg.Flow.t) pd =
  let nb = Cfg.Flow.num_blocks flow in
  let deps = Array.make nb [] in
  Array.iter
    (fun (b : Cfg.Flow.block) ->
       match b.Cfg.Flow.succs with
       | [] | [ _ ] -> ()
       | succs ->
         let stop = Cfg.Dominance.idom pd b.Cfg.Flow.bid in
         List.iter
           (fun s ->
              let rec walk x steps =
                if steps > nb then ()
                else if Some x = stop then ()
                else begin
                  if not (List.mem b.Cfg.Flow.bid deps.(x)) then
                    deps.(x) <- b.Cfg.Flow.bid :: deps.(x);
                  match Cfg.Dominance.idom pd x with
                  | None -> ()
                  | Some p -> walk p (steps + 1)
                end
              in
              walk s 0)
           succs)
    flow.Cfg.Flow.blocks;
  deps

let operands = function
  | Instr.Mov (_, _, a) | Instr.Unop (_, _, _, a) | Instr.Cvt (_, _, _, a) ->
    [ a ]
  | Instr.Binop (_, _, _, a, b) | Instr.Setp (_, _, _, a, b) -> [ a; b ]
  | Instr.Mad (_, _, a, b, c) -> [ a; b; c ]
  | Instr.Selp (_, _, a, b, p) -> [ a; b; Instr.Oreg p ]
  | Instr.Ld (_, _, _, addr) -> [ addr.Instr.base ]
  | Instr.St (_, _, addr, v) -> [ addr.Instr.base; v ]
  | Instr.Bra_pred (p, _, _) -> [ Instr.Oreg p ]
  | Instr.Bra _ | Instr.Bar_sync | Instr.Ret -> []

(* ---------- private-memory modelling ----------

   Local memory is per-thread private, and the Algorithm-1 shared spill
   sub-stack ([SpillShm + stride*tid + slot]) is private by
   construction: a load from either returns a value the *same* thread
   stored. Treating such reloads as blankly divergent (like ordinary
   shared/global loads) poisons spilled-but-uniform values — e.g. a loop
   counter that was spilled and reloaded would drag every barrier inside
   the loop into "divergent control flow". Instead, a private load is
   divergent iff some store that may write its slot stored a divergent
   value. *)

type pstore =
  { slot : (string * int * int) option  (* sym, [lo, hi) — None = opaque *)
  ; at : int  (* flat index of the store instruction *)
  }

let slots_overlap a b =
  match (a, b) with
  | Some (s1, lo1, hi1), Some (s2, lo2, hi2) ->
    s1 = s2 && lo1 < hi2 && lo2 < hi1
  | None, _ | _, None -> true (* an opaque access may touch anything *)

type pmem =
  { local_stores : pstore list
  ; shm_stores : pstore list  (* private-pattern spill-region stores *)
  ; shm_clean : bool
      (* no shared store outside the private pattern can alias the spill
         region; when false, spill-region loads stay divergent *)
  ; spill_stride : int option
  }

let shm_spill_stride ~block_size (k : Kernel.t) =
  List.find_map
    (fun d ->
       if d.Kernel.dname = Regalloc.Spill.shared_stack_sym then
         let bytes = Kernel.decl_bytes d in
         if block_size > 0 && bytes mod block_size = 0 then
           Some (bytes / block_size)
         else None
       else None)
    k.Kernel.decls

let private_shm_form ~stride (f : Dom.aff) width =
  match stride with
  | Some stride when stride > 0 ->
    f.Dom.exact
    && f.Dom.sym = Some (Dom.Sym Regalloc.Spill.shared_stack_sym)
    && f.Dom.tid = stride
    && f.Dom.cta = 0
    && f.Dom.base >= 0
    && f.Dom.base + width <= stride
  | Some _ | None -> false

(* the (sym, byte-range) slot of a thread-invariant private access;
   forms with a tid/ctaid component are treated as opaque, which is the
   conservative direction for slot overlap *)
let local_slot (f : Dom.aff) w =
  match f.Dom.sym with
  | Some (Dom.Sym s) when f.Dom.exact && f.Dom.tid = 0 && f.Dom.cta = 0 ->
    Some (s, f.Dom.base, f.Dom.base + w)
  | _ -> None

let compute_pmem ~block_size an (flow : Cfg.Flow.t) =
  let k = flow.Cfg.Flow.kernel in
  let spill_stride = shm_spill_stride ~block_size k in
  let local_stores = ref [] and shm_stores = ref [] and shm_clean = ref true in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    match ins with
    | Instr.St (Types.Local, ty, addr, _) ->
      let f = (Absint.Analysis.address_at an i addr).Dom.aff in
      let w = Types.width_bytes ty in
      local_stores := { slot = local_slot f w; at = i } :: !local_stores
    | Instr.St (Types.Shared, ty, addr, _) ->
      let f = (Absint.Analysis.address_at an i addr).Dom.aff in
      let w = Types.width_bytes ty in
      if private_shm_form ~stride:spill_stride f w then
        shm_stores :=
          { slot =
              Some
                (Regalloc.Spill.shared_stack_sym, f.Dom.base, f.Dom.base + w)
          ; at = i
          }
          :: !shm_stores
      else if
        (* an exact store to a different symbol cannot alias the region *)
        not
          (f.Dom.exact
           &&
           match f.Dom.sym with
           | Some (Dom.Sym s) -> s <> Regalloc.Spill.shared_stack_sym
           | Some (Dom.Param _) | None -> false)
      then shm_clean := false
    | _ -> ());
  { local_stores = !local_stores
  ; shm_stores = !shm_stores
  ; shm_clean = !shm_clean
  ; spill_stride
  }

(* ---------- the joint fixpoint ----------

   Register divergence is a forward dataflow: a definition is divergent
   iff its sources are divergent at that point or its block executes
   divergently, and a *uniform* redefinition kills divergence — vital on
   allocated kernels, where physical registers are recycled between
   unrelated (uniform and divergent) values. Block divergence feeds back
   through control dependence, and stored-value divergence feeds back
   into private reloads; both only ever grow, so the combined system is
   monotone and converges. *)
let compute ?(block_size = 128) ?analysis (flow : Cfg.Flow.t) =
  let k = flow.Cfg.Flow.kernel in
  let an =
    match analysis with
    | Some a -> a
    | None -> Absint.Analysis.run ~block_size flow
  in
  let pmem = compute_pmem ~block_size an flow in
  let local_syms =
    List.filter_map
      (fun d ->
         if Types.equal_space d.Kernel.dspace Types.Local then
           Some d.Kernel.dname
         else None)
      k.Kernel.decls
  in
  let known_syms = List.map (fun d -> d.Kernel.dname) k.Kernel.decls in
  let ni = Array.length flow.Cfg.Flow.instrs in
  let nb = Cfg.Flow.num_blocks flow in
  let pd = Cfg.Dominance.post_dominators flow in
  let cdeps = compute_control_deps flow pd in
  let t =
    { div_in = Array.make ni Reg.Set.empty
    ; div_block = Array.make nb false
    ; cdeps
    ; local_syms
    ; known_syms
    }
  in
  let out = Array.make nb Reg.Set.empty in
  let store_div = Array.make ni false in  (* sticky may-divergence *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (b : Cfg.Flow.block) ->
         let bid = b.Cfg.Flow.bid in
         let cur =
           ref
             (List.fold_left
                (fun acc p -> Reg.Set.union acc out.(p))
                Reg.Set.empty b.Cfg.Flow.preds)
         in
         for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
           if not (Reg.Set.equal t.div_in.(i) !cur) then begin
             t.div_in.(i) <- !cur;
             changed := true
           end;
           let ins = flow.Cfg.Flow.instrs.(i) in
           let opdiv = function
             | Instr.Oreg r -> Reg.Set.mem r !cur
             | op -> static_operand local_syms known_syms op
           in
           let stored stores slot =
             List.exists
               (fun s -> slots_overlap slot s.slot && store_div.(s.at))
               stores
           in
           let src_div =
             match ins with
             (* data loaded from memory can always differ between
                threads, except parameters (uniform by construction),
                constant loads from a uniform address, and per-thread
                private reloads (only as divergent as the stores) *)
             | Instr.Ld (Types.Global, _, _, _) -> true
             | Instr.Ld (Types.Local, ty, _, addr) ->
               let f = (Absint.Analysis.address_at an i addr).Dom.aff in
               let w = Types.width_bytes ty in
               stored pmem.local_stores (local_slot f w)
             | Instr.Ld (Types.Shared, ty, _, addr) ->
               let f = (Absint.Analysis.address_at an i addr).Dom.aff in
               let w = Types.width_bytes ty in
               if
                 pmem.shm_clean
                 && private_shm_form ~stride:pmem.spill_stride f w
               then
                 stored pmem.shm_stores
                   (Some
                      (Regalloc.Spill.shared_stack_sym, f.Dom.base,
                       f.Dom.base + w))
               else true
             | Instr.Ld (Types.Param, _, _, _) -> false
             | Instr.Mov _ | Instr.Binop _ | Instr.Mad _ | Instr.Unop _
             | Instr.Cvt _ | Instr.Setp _ | Instr.Selp _
             | Instr.Ld ((Types.Const | Types.Reg), _, _, _)
             | Instr.St _ | Instr.Bra _ | Instr.Bra_pred _ | Instr.Bar_sync
             | Instr.Ret ->
               List.exists opdiv (operands ins)
           in
           (match ins with
            | Instr.St ((Types.Local | Types.Shared), _, _, v)
              when (not store_div.(i)) && (opdiv v || t.div_block.(bid)) ->
              store_div.(i) <- true;
              changed := true
            | _ -> ());
           let def_div = src_div || t.div_block.(bid) in
           List.iter
             (fun r ->
                cur :=
                  if def_div then Reg.Set.add r !cur
                  else Reg.Set.remove r !cur)
             (Instr.defs ins)
         done;
         if not (Reg.Set.equal out.(bid) !cur) then begin
           out.(bid) <- !cur;
           changed := true
         end)
      flow.Cfg.Flow.blocks;
    for b = 0 to nb - 1 do
      if not t.div_block.(b) then begin
        let dep_divergent d =
          t.div_block.(d)
          ||
          let last = flow.Cfg.Flow.blocks.(d).Cfg.Flow.last in
          match flow.Cfg.Flow.instrs.(last) with
          | Instr.Bra_pred (p, _, _) -> Reg.Set.mem p t.div_in.(last)
          | _ -> false
        in
        if List.exists dep_divergent cdeps.(b) then begin
          t.div_block.(b) <- true;
          changed := true
        end
      end
    done
  done;
  t
