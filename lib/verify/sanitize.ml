module A = Absint.Analysis
module Bounds = Absint.Bounds

type discharge =
  { total : int
  ; safe : int
  ; oob : int
  ; residual : int
  }

type report =
  { kernel : string
  ; bounds : Bounds.t
  ; discharge : discharge
  ; diags : Diagnostic.t list
  }

let proven_pct d =
  if d.total = 0 then 100.0 else 100.0 *. float_of_int d.safe /. float_of_int d.total

let space_name = Ptx.Types.space_to_string
let op_name store = if store then "store" else "load"

let diag_of_access ~kernel (a : Bounds.access) =
  let what =
    Printf.sprintf "%dB %s %s: %s" a.Bounds.width (space_name a.Bounds.space)
      (op_name a.Bounds.store) a.Bounds.reason
  in
  match a.Bounds.verdict with
  | Bounds.Safe -> None
  | Bounds.Oob ->
    let code =
      match a.Bounds.space with
      | Ptx.Types.Shared -> "S401"
      | _ -> "S402"
    in
    Some (Diagnostic.error ~instr:a.Bounds.pc ~kernel ~code what)
  | Bounds.Unknown ->
    Some (Diagnostic.warning ~instr:a.Bounds.pc ~kernel ~code:"S403" what)

let of_analysis an =
  let k = (A.flow an).Cfg.Flow.kernel in
  let kernel = k.Ptx.Kernel.name in
  let private_strides =
    Option.to_list
      (Regalloc.Spill.shared_stride_of_kernel ~block_size:(A.block_size an) k)
  in
  let bounds = Bounds.analyze ~private_strides an in
  let safe, oob, residual = Bounds.counts bounds in
  let discharge = { total = safe + oob + residual; safe; oob; residual } in
  let diags =
    Diagnostic.sort
      (List.filter_map (diag_of_access ~kernel) bounds.Bounds.accesses)
  in
  { kernel; bounds; discharge; diags }

let sanitize_kernel ?block_size ?num_blocks ?params k =
  let flow = Cfg.Flow.of_kernel k in
  of_analysis (A.run ?block_size ?num_blocks ?params flow)

let mask ?force r = Bounds.mask ?force r.bounds
let check_kernel ?block_size k = (sanitize_kernel ?block_size k).diags
