module D = Diagnostic
module I = Machine.Isa
module L = Machine.Lower

module MRegSet = Set.Make (struct
    type t = I.reg

    let compare = Stdlib.compare
  end)

module PRegMap = Ptx.Reg.Map

let file_name = I.file_to_string

(* every source slot of an instruction, in operand order *)
let srcs_of (ins : I.insn) =
  match ins with
  | I.Mov (_, _, a) | I.Unop (_, _, _, a) | I.Cvt (_, _, _, a) -> [ a ]
  | I.Binop (_, _, _, a, b) | I.Setp (_, _, _, a, b) -> [ a; b ]
  | I.Mad (_, _, a, b, c) -> [ a; b; c ]
  | I.Selp (_, _, a, b, p) -> [ a; b; I.Rsrc p ]
  | I.Ld (_, _, _, ad) -> [ ad.I.abase ]
  | I.St (_, _, ad, v) -> [ ad.I.abase; v ]
  | I.Bra_pred (p, _, _) -> [ I.Rsrc p ]
  | I.Bra _ | I.Bar | I.Exit -> []

let check (t : L.t) =
  let a = t.L.alloc in
  let kernel = t.L.name in
  let image = t.L.image in
  let flow = image.Gpusim.Image.flow in
  let code = t.L.code in
  let diags = ref [] in
  let err ?instr code msg =
    diags := D.error ?instr ~kernel ~code msg :: !diags
  in
  (* ----- V601: structural correspondence with the allocated PTX,
     walked constructor by constructor without trusting the lowering's
     own register map; the map is rebuilt from the instruction pairing
     and checked for consistency ----- *)
  let seen_map : I.reg PRegMap.t ref = ref PRegMap.empty in
  let inverse = Hashtbl.create 64 in
  let reg_ok i (r : Ptx.Reg.t) (m : I.reg) =
    if not (Ptx.Types.equal_scalar (Ptx.Reg.ty r) m.I.ty) then
      err ~instr:i "V601"
        (Printf.sprintf "register %s lowered with type %s"
           (Ptx.Reg.name r)
           (Ptx.Types.scalar_to_string m.I.ty));
    let expected_file =
      if Ptx.Types.reg_class (Ptx.Reg.ty r) = Ptx.Types.Cpred then I.Pred
      else if Regalloc.Allocator.is_scalar_phys a r then I.Scalar
      else I.Vector
    in
    if m.I.file <> expected_file then
      err ~instr:i "V601"
        (Printf.sprintf "register %s lowered into the %s file, expected %s"
           (Ptx.Reg.name r) (file_name m.I.file) (file_name expected_file));
    (match PRegMap.find_opt r !seen_map with
     | Some m' when not (I.equal_reg m m') ->
       err ~instr:i "V601"
         (Printf.sprintf "register %s maps to both %s and %s"
            (Ptx.Reg.name r) (I.reg_name m') (I.reg_name m))
     | Some _ -> ()
     | None ->
       seen_map := PRegMap.add r m !seen_map;
       (match Hashtbl.find_opt inverse m with
        | Some r' when not (Ptx.Reg.equal r r') ->
          err ~instr:i "V601"
            (Printf.sprintf "machine register %s is the image of both %s and %s"
               (I.reg_name m) (Ptx.Reg.name r') (Ptx.Reg.name r))
        | Some _ -> ()
        | None -> Hashtbl.replace inverse m r))
  in
  let src_ok i (op : Ptx.Instr.operand) (s : I.src) =
    match (op, s) with
    | Ptx.Instr.Oreg r, I.Rsrc m -> reg_ok i r m
    | Ptx.Instr.Oimm v, I.Imm v' ->
      if not (Int64.equal v v') then
        err ~instr:i "V601" (Printf.sprintf "immediate %Ld lowered as %Ld" v v')
    | Ptx.Instr.Ofimm f, I.Fimm f' ->
      if Int64.bits_of_float f <> Int64.bits_of_float f' then
        err ~instr:i "V601" (Printf.sprintf "immediate %h lowered as %h" f f')
    | Ptx.Instr.Ospecial sp, I.Spec sp' ->
      if sp <> sp' then err ~instr:i "V601" "special register changed in lowering"
    | Ptx.Instr.Oparam p, I.Param slot ->
      if
        slot < 0
        || slot >= Array.length t.L.params
        || not (String.equal t.L.params.(slot) p)
      then
        err ~instr:i "V601"
          (Printf.sprintf "parameter %s lowered to the wrong slot" p)
    | Ptx.Instr.Osym sym, I.Imm off ->
      (match List.assoc_opt sym image.Gpusim.Image.shared_offsets with
       | Some o when Int64.of_int o = off -> ()
       | Some _ | None ->
         err ~instr:i "V601"
           (Printf.sprintf "symbol %s lowered to a wrong shared offset" sym))
    | Ptx.Instr.Osym sym, I.Loc off ->
      (match List.assoc_opt sym image.Gpusim.Image.local_offsets with
       | Some o when o = off -> ()
       | Some _ | None ->
         err ~instr:i "V601"
           (Printf.sprintf "symbol %s lowered to a wrong local offset" sym))
    | _ ->
      err ~instr:i "V601"
        (Printf.sprintf "operand kind changed in lowering: %s"
           (I.insn_to_string code.(i)))
  in
  let addr_ok i (ad : Ptx.Instr.address) (mad : I.addr) =
    src_ok i ad.Ptx.Instr.base mad.I.abase;
    if ad.Ptx.Instr.offset <> mad.I.aoffset then
      err ~instr:i "V601" "address offset changed in lowering"
  in
  let target_ok i l pc =
    if Cfg.Flow.target_index flow l <> pc then
      err ~instr:i "V601" "branch target does not match the label's index"
  in
  let n_ptx = Array.length flow.Cfg.Flow.instrs in
  if Array.length code <> n_ptx then
    err "V601"
      (Printf.sprintf "machine code has %d instructions, PTX body has %d"
         (Array.length code) n_ptx)
  else
    Array.iteri
      (fun i (p : Ptx.Instr.t) ->
         match (p, code.(i)) with
         | Ptx.Instr.Mov (ty, d, x), I.Mov (ty', d', x') when ty = ty' ->
           reg_ok i d d';
           src_ok i x x'
         | Ptx.Instr.Binop (op, ty, d, x, y), I.Binop (op', ty', d', x', y')
           when op = op' && ty = ty' ->
           reg_ok i d d';
           src_ok i x x';
           src_ok i y y'
         | Ptx.Instr.Mad (ty, d, x, y, z), I.Mad (ty', d', x', y', z')
           when ty = ty' ->
           reg_ok i d d';
           src_ok i x x';
           src_ok i y y';
           src_ok i z z'
         | Ptx.Instr.Unop (op, ty, d, x), I.Unop (op', ty', d', x')
           when op = op' && ty = ty' ->
           reg_ok i d d';
           src_ok i x x'
         | Ptx.Instr.Cvt (dt, st, d, x), I.Cvt (dt', st', d', x')
           when dt = dt' && st = st' ->
           reg_ok i d d';
           src_ok i x x'
         | Ptx.Instr.Setp (c, ty, d, x, y), I.Setp (c', ty', d', x', y')
           when c = c' && ty = ty' ->
           reg_ok i d d';
           src_ok i x x';
           src_ok i y y'
         | Ptx.Instr.Selp (ty, d, x, y, p), I.Selp (ty', d', x', y', p')
           when ty = ty' ->
           reg_ok i d d';
           src_ok i x x';
           src_ok i y y';
           reg_ok i p p'
         | Ptx.Instr.Ld (sp, ty, d, ad), I.Ld (sp', ty', d', ad')
           when sp = sp' && ty = ty' ->
           reg_ok i d d';
           addr_ok i ad ad'
         | Ptx.Instr.St (sp, ty, ad, v), I.St (sp', ty', ad', v')
           when sp = sp' && ty = ty' ->
           addr_ok i ad ad';
           src_ok i v v'
         | Ptx.Instr.Bra l, I.Bra pc -> target_ok i l pc
         | Ptx.Instr.Bra_pred (p, sense, l), I.Bra_pred (p', sense', pc)
           when sense = sense' ->
           reg_ok i p p';
           target_ok i l pc
         | Ptx.Instr.Bar_sync, I.Bar | Ptx.Instr.Ret, I.Exit -> ()
         | _, m ->
           err ~instr:i "V601"
             (Printf.sprintf "instruction lowered to a different shape: %s"
                (I.insn_to_string m)))
      flow.Cfg.Flow.instrs;
  (* ----- V602: per-file unit budgets and storage-overlap freedom,
     recounted from the machine code alone ----- *)
  let extents = Hashtbl.create 64 in
  Array.iter
    (fun ins ->
       List.iter
         (fun (r : I.reg) ->
            Hashtbl.replace extents (r.I.file, r.I.idx, I.units r) ())
         (I.defs ins @ I.uses ins))
    code;
  let per_file f =
    Hashtbl.fold
      (fun (file, idx, u) () acc -> if file = f then (idx, u) :: acc else acc)
      extents []
    |> List.sort_uniq compare
  in
  List.iter
    (fun file ->
       let exts = per_file file in
       let span = List.fold_left (fun acc (i, u) -> max acc (i + u)) 0 exts in
       let budget =
         match file with
         | I.Vector -> Some a.Regalloc.Allocator.reg_limit
         | I.Scalar ->
           if a.Regalloc.Allocator.scalar_limit > 0 then
             Some a.Regalloc.Allocator.scalar_limit
           else if span > 0 then Some 0 (* scalar file disabled: any use is over *)
           else None
         | I.Pred -> None
       in
       (match budget with
        | Some b when span > b ->
          err "V602"
            (Printf.sprintf "%s file spans %d units, budget %d"
               (file_name file) span b)
        | Some _ | None -> ());
       let rec overlaps = function
         | (i1, u1) :: ((i2, _) :: _ as rest) ->
           if i1 <> i2 && i1 + u1 > i2 then
             err "V602"
               (Printf.sprintf
                  "%s file: unit ranges at %d(+%d) and %d overlap"
                  (file_name file) i1 u1 i2);
           overlaps rest
         | [] | [ _ ] -> ()
       in
       overlaps exts)
    [ I.Vector; I.Scalar; I.Pred ];
  (* ----- V603: machine live ranges, recomputed by a backward fixpoint
     over the machine code, must agree with a fresh PTX liveness of the
     allocated kernel pushed through the register map ----- *)
  let n = Array.length code in
  if n = n_ptx && n > 0 then begin
    let live_in = Array.make n MRegSet.empty in
    let live_out = Array.make n MRegSet.empty in
    let changed = ref true in
    while !changed do
      changed := false;
      for i = n - 1 downto 0 do
        let out =
          List.fold_left
            (fun acc s -> MRegSet.union acc live_in.(s))
            MRegSet.empty
            (I.succs code.(i) ~pc:i ~code_len:n)
        in
        let inn =
          List.fold_left
            (fun acc r -> MRegSet.add r acc)
            (List.fold_left
               (fun acc r -> MRegSet.remove r acc)
               out
               (I.defs code.(i)))
            (I.uses code.(i))
        in
        if
          not (MRegSet.equal out live_out.(i) && MRegSet.equal inn live_in.(i))
        then begin
          live_out.(i) <- out;
          live_in.(i) <- inn;
          changed := true
        end
      done
    done;
    let ptx_live = Cfg.Liveness.compute flow in
    let mapped set =
      Ptx.Reg.Set.fold
        (fun r acc ->
           match PRegMap.find_opt r !seen_map with
           | Some m -> MRegSet.add m acc
           | None -> acc)
        set MRegSet.empty
    in
    Array.iteri
      (fun i _ ->
         let expect = mapped ptx_live.Cfg.Liveness.live_out.(i) in
         if not (MRegSet.equal expect live_out.(i)) then
           err ~instr:i "V603"
             (Printf.sprintf
                "machine live-out has %d registers, PTX liveness maps to %d"
                (MRegSet.cardinal live_out.(i))
                (MRegSet.cardinal expect)))
      code
  end;
  (* ----- V604: the fixed-width encoding must round-trip ----- *)
  (match Machine.Encode.decode_program t.L.encoded with
   | decoded ->
     if Array.length decoded <> Array.length code then
       err "V604"
         (Printf.sprintf "decoded %d instructions from %d encoded"
            (Array.length decoded) (Array.length code))
     else
       Array.iteri
         (fun i ins ->
            if not (I.equal_insn ins decoded.(i)) then
              err ~instr:i "V604"
                (Printf.sprintf "decodes to %s" (I.insn_to_string decoded.(i))))
         code
   | exception Invalid_argument m -> err "V604" m);
  (* ----- V605: scalar writes must not depend on the lane ----- *)
  Array.iteri
    (fun i ins ->
       if List.exists (fun (r : I.reg) -> r.I.file = I.Scalar) (I.defs ins)
       then
         List.iter
           (fun (s : I.src) ->
              match s with
              | I.Rsrc r when r.I.file = I.Vector ->
                err ~instr:i "V605"
                  (Printf.sprintf "scalar destination reads vector register %s"
                     (I.reg_name r))
              | I.Rsrc r when r.I.file = I.Pred ->
                err ~instr:i "V605"
                  (Printf.sprintf
                     "scalar destination reads per-lane predicate %s"
                     (I.reg_name r))
              | I.Spec (Ptx.Reg.Tid_x | Ptx.Reg.Laneid) ->
                err ~instr:i "V605"
                  "scalar destination reads a lane-dependent special register"
              | I.Rsrc _ | I.Imm _ | I.Fimm _ | I.Spec _ | I.Param _
              | I.Loc _ -> ())
           (srcs_of ins))
    code;
  D.sort !diags
