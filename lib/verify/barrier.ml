module D = Diagnostic

let check (flow : Cfg.Flow.t) div =
  let kernel = flow.Cfg.Flow.kernel.Ptx.Kernel.name in
  let diags = ref [] in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    let b = flow.Cfg.Flow.block_of_instr.(i) in
    if Divergence.divergent_block div b then
      match ins with
      | Ptx.Instr.Bar_sync ->
        diags :=
          D.error ~instr:i ~block:b ~kernel ~code:"V301"
            "bar.sync under divergent control flow (potential deadlock)"
          :: !diags
      | Ptx.Instr.Ret ->
        diags :=
          D.warning ~instr:i ~block:b ~kernel ~code:"V302"
            "ret under divergent control flow"
          :: !diags
      | _ -> ());
  D.sort !diags
