(** Checker 4: shared-memory races. Pairs of shared-space accesses (at
    least one a store) that can touch overlapping bytes from different
    threads with no [bar.sync] separating them.

    Addresses are classified with the {!Absint.Dom} affine forms of a
    shared abstract interpretation; per-thread-private forms —
    in particular the Algorithm-1 spill sub-stack pattern
    [SpillShm + stride * tid + slot] — are proven disjoint across
    threads and accepted silently. Severities are calibrated so that
    only definite bugs are errors:

    - V401 (error): the whole block stores divergent values to one
      provably uniform shared address — guaranteed nondeterminism;
    - V402 (error): a resolved access into the spill region that breaks
      the per-thread private addressing discipline;
    - V403 (warning): possible cross-thread conflicts that the analysis
      cannot prove disjoint (one warning per offending access). *)

val check :
  block_size:int ->
  ?analysis:Absint.Analysis.t ->
  Cfg.Flow.t ->
  Divergence.t ->
  Diagnostic.t list
(** [analysis] supplies a precomputed abstract interpretation of the
    same flow graph (it is recomputed at [block_size] otherwise). *)
