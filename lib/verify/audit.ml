open Ptx
module D = Diagnostic
module A = Regalloc.Allocator
module RMap = Reg.Map
module RSet = Reg.Set
module ISet = Set.Make (Int)

let subst (a : A.t) r =
  match RMap.find_opt r a.A.assignment with
  | Some p -> p
  | None -> r

(* slots are keyed by (space, offset); encode shared slots as odd ints *)
let slot_key space offset =
  (offset * 2) + (if Types.equal_space space Types.Shared then 1 else 0)

let slot_name key =
  Printf.sprintf "%s+%d"
    (if key land 1 = 1 then Regalloc.Spill.shared_stack_sym
     else Regalloc.Spill.local_stack_sym)
    (key asr 1)

(* a resolved access into one of the two spill stacks, if any *)
let slot_of an i ins =
  match ins with
  | Instr.Ld (((Types.Local | Types.Shared) as sp), ty, _, addr)
  | Instr.St (((Types.Local | Types.Shared) as sp), ty, addr, _) ->
    let form = (Absint.Analysis.address_at an i addr).Absint.Dom.aff in
    let stack_sym =
      match sp with
      | Types.Shared -> Regalloc.Spill.shared_stack_sym
      | _ -> Regalloc.Spill.local_stack_sym
    in
    if Absint.Dom.decl_sym form = Some stack_sym then
      Some
        ( slot_key sp form.Absint.Dom.base
        , sp
        , form.Absint.Dom.base
        , Types.width_bytes ty
        , Instr.is_store ins )
    else None
  | _ -> None

let check (a : A.t) =
  let kernel = a.A.kernel.Kernel.name in
  let vk = a.A.virtual_kernel in
  let diags = ref [] in
  let err ?instr code msg =
    diags := D.error ?instr ~kernel ~code msg :: !diags
  in
  (* ----- V505: assignment coverage, class preservation, substitution ----- *)
  let vregs = Kernel.registers vk in
  RSet.iter
    (fun r ->
       match RMap.find_opt r a.A.assignment with
       | None ->
         err "V505"
           (Printf.sprintf "virtual register %s has no physical assignment"
              (Reg.name r))
       | Some p ->
         if Types.reg_class (Reg.ty p) <> Types.reg_class (Reg.ty r) then
           err "V505"
             (Printf.sprintf "virtual register %s mapped across classes to %s"
                (Reg.name r) (Reg.name p)))
    vregs;
  let expected = Kernel.instrs (Kernel.map_instrs (Instr.map_regs (subst a)) vk) in
  let actual = Kernel.instrs a.A.kernel in
  if
    List.length expected <> List.length actual
    || not (List.for_all2 Instr.equal expected actual)
  then
    err "V505"
      "allocated kernel is not the assignment substitution of the virtual \
       kernel";
  List.iter
    (fun (p : Regalloc.Spill.placement) ->
       if RSet.mem p.Regalloc.Spill.reg vregs then
         err "V505"
           (Printf.sprintf
              "spilled register %s is still referenced by the virtual kernel"
              (Reg.name p.Regalloc.Spill.reg)))
    a.A.spilled;
  (* ----- V501: re-derived live ranges vs the assignment ----- *)
  let flow = Cfg.Flow.of_kernel vk in
  let live = Cfg.Liveness.compute flow in
  let reported = Hashtbl.create 16 in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    let out = live.Cfg.Liveness.live_out.(i) in
    let exempt =
      match ins with
      | Instr.Mov (_, d, Instr.Oreg s) -> Some (d, s)
      | _ -> None
    in
    List.iter
      (fun d ->
         RSet.iter
           (fun v ->
              let is_exempt =
                match exempt with
                | Some (d', s) -> Reg.equal d d' && Reg.equal v s
                | None -> false
              in
              if
                (not (Reg.equal v d))
                && Types.reg_class (Reg.ty v) = Types.reg_class (Reg.ty d)
                && not is_exempt
              then begin
                let pd = subst a d and pv = subst a v in
                if Reg.id pd = Reg.id pv then begin
                  let key =
                    if Reg.compare d v < 0 then (d, v) else (v, d)
                  in
                  if not (Hashtbl.mem reported key) then begin
                    Hashtbl.add reported key ();
                    err ~instr:i "V501"
                      (Printf.sprintf
                         "%s and %s are simultaneously live but share \
                          physical register %s"
                         (Reg.name d) (Reg.name v) (Reg.name pd))
                  end
                end
              end)
           out)
      (Instr.defs ins));
  (* ----- V502: independently recount the physical register budget,
     per file: vector ids sit below [reg_limit], scalar ids at or above
     it (see {!Regalloc.Allocator.scalar_color_base}) ----- *)
  let ids cls ~scalar =
    RSet.fold
      (fun r acc ->
         if
           Types.reg_class (Reg.ty r) = cls
           && A.is_scalar_phys a r = scalar
         then ISet.add (Reg.id r) acc
         else acc)
      (Kernel.registers a.A.kernel) ISet.empty
  in
  let count ~scalar =
    ISet.cardinal (ids Types.C32 ~scalar)
    + (2 * ISet.cardinal (ids Types.C64 ~scalar))
  in
  let units = count ~scalar:false in
  if units > a.A.reg_limit then
    err "V502"
      (Printf.sprintf
         "allocated kernel occupies %d vector register units, budget %d"
         units a.A.reg_limit);
  if a.A.scalar_limit > 0 then begin
    let sunits = count ~scalar:true in
    if sunits > a.A.scalar_limit then
      err "V502"
        (Printf.sprintf
           "allocated kernel occupies %d scalar register units, budget %d"
           sunits a.A.scalar_limit)
  end;
  (* ----- V503 / V504: spill slot layout and bracketing ----- *)
  let placements = a.A.spilled in
  if placements <> [] then begin
    let width_of (p : Regalloc.Spill.placement) =
      Types.width_bytes (Reg.ty p.Regalloc.Spill.reg)
    in
    (* layout: per space, sorted slots must not overlap *)
    List.iter
      (fun space ->
         let slots =
           List.filter
             (fun (p : Regalloc.Spill.placement) ->
                Types.equal_space p.Regalloc.Spill.space space)
             placements
           |> List.sort (fun (p : Regalloc.Spill.placement) q ->
             compare p.Regalloc.Spill.offset q.Regalloc.Spill.offset)
         in
         let rec overlaps = function
           | p :: (q :: _ as rest) ->
             if
               p.Regalloc.Spill.offset + width_of p > q.Regalloc.Spill.offset
             then
               err "V504"
                 (Printf.sprintf "spill slots %s+%d and %s+%d overlap"
                    (Types.space_to_string space)
                    p.Regalloc.Spill.offset
                    (Types.space_to_string space)
                    q.Regalloc.Spill.offset);
             overlaps rest
           | [] | [ _ ] -> ()
         in
         overlaps slots)
      [ Types.Local; Types.Shared ];
    let placement_at space offset =
      List.find_opt
        (fun (p : Regalloc.Spill.placement) ->
           Types.equal_space p.Regalloc.Spill.space space
           && p.Regalloc.Spill.offset = offset)
        placements
    in
    let an = Absint.Analysis.run ~block_size:a.A.block_size flow in
    let n = Cfg.Flow.num_instrs flow in
    let slot_access = Array.make (max n 1) None in
    Cfg.Flow.iter_instrs flow (fun i ins ->
      match slot_of an i ins with
      | None -> ()
      | Some (key, sp, offset, width, store) ->
        slot_access.(i) <- Some (key, store);
        (match placement_at sp offset with
         | None ->
           err ~instr:i "V504"
             (Printf.sprintf "access at %s matches no spill slot"
                (slot_name key))
         | Some p ->
           if width_of p <> width then
             err ~instr:i "V504"
               (Printf.sprintf
                  "access at %s has width %d but the slot holds %s (width %d)"
                  (slot_name key) width
                  (Reg.name p.Regalloc.Spill.reg)
                  (width_of p))));
    (* forward may-unwritten dataflow over slots *)
    let nb = Cfg.Flow.num_blocks flow in
    let all_slots =
      List.fold_left
        (fun acc (p : Regalloc.Spill.placement) ->
           ISet.add (slot_key p.Regalloc.Spill.space p.Regalloc.Spill.offset) acc)
        ISet.empty placements
    in
    let written = Array.make nb ISet.empty in
    Array.iteri
      (fun bi (b : Cfg.Flow.block) ->
         let w = ref ISet.empty in
         for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
           match slot_access.(i) with
           | Some (key, true) -> w := ISet.add key !w
           | Some (_, false) | None -> ()
         done;
         written.(bi) <- !w)
      flow.Cfg.Flow.blocks;
    let bin = Array.make nb ISet.empty and bout = Array.make nb ISet.empty in
    bin.(0) <- all_slots;
    bout.(0) <- ISet.diff all_slots written.(0);
    let changed = ref true in
    while !changed do
      changed := false;
      for bi = 0 to nb - 1 do
        let b = flow.Cfg.Flow.blocks.(bi) in
        let inn =
          List.fold_left
            (fun acc p -> ISet.union acc bout.(p))
            (if bi = 0 then all_slots else ISet.empty)
            b.Cfg.Flow.preds
        in
        let out = ISet.diff inn written.(bi) in
        if not (ISet.equal inn bin.(bi) && ISet.equal out bout.(bi)) then begin
          bin.(bi) <- inn;
          bout.(bi) <- out;
          changed := true
        end
      done
    done;
    Array.iter
      (fun (b : Cfg.Flow.block) ->
         let unwritten = ref bin.(b.Cfg.Flow.bid) in
         for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
           match slot_access.(i) with
           | Some (key, false) ->
             if ISet.mem key !unwritten then
               err ~instr:i "V503"
                 (Printf.sprintf "spill slot %s may be read before any write"
                    (slot_name key))
           | Some (key, true) -> unwritten := ISet.remove key !unwritten
           | None -> ()
         done)
      flow.Cfg.Flow.blocks
  end;
  D.sort !diags
