(** Checker 3: barrier divergence. [bar.sync] waits for every thread of
    the block, so executing one under divergent control flow (a block
    control dependent on a thread-varying branch) deadlocks the block —
    reported as V301. [ret] under divergent control flow (unsupported by
    the reference interpreter's reconvergence stack) is warned as V302. *)

val check : Cfg.Flow.t -> Divergence.t -> Diagnostic.t list
