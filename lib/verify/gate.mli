(** The optional pipeline gate. Disabled by default; enabled either
    programmatically ({!set}) or by exporting [CRAT_VERIFY=1]. When
    enabled, {!run} verifies each requested check in order and raises
    {!Rejected} at the first one carrying error-severity diagnostics;
    when disabled it is a no-op, so gated code paths cost nothing in
    production. Warnings never reject. *)

exception Rejected of string * Diagnostic.t list
(** [(stage, error diagnostics)]. A human-readable printer is
    registered with [Printexc]. *)

val enabled : unit -> bool
val set : bool -> unit
(** Overrides the environment; [clear] returns to the environment. *)

val clear : unit -> unit

(** One verification obligation. Each constructor names the checker it
    dispatches to:
    - [Kernel]: the five-checker static verifier
      ({!Checker.check_kernel}, V1xx-V4xx).
    - [Allocation]: the independent allocation audit
      ({!Checker.check_allocation}, V5xx).
    - [Machine]: the machine-backend lowering audit
      ({!Machine_audit.check}, V6xx).
    - [Sanitize]: the hybrid-sanitizer bounds proof
      ({!Sanitize.check_kernel}, S4xx); proven-OOB accesses reject,
      residual (S403) warnings never do.
    - [Equiv]: translation validation of a transformation edge
      ({!Equiv_check.check_opt}); only a refuted edge (E201, a
      concretely replayed counterexample) rejects, unknown verdicts
      (E301) never do.
    - [Equiv_alloc] / [Equiv_lower]: likewise for the allocation edge
      (original vs allocated modulo the recorded assignment and spill
      slots) and the machine-lowering edge. *)
type check =
  | Kernel of { block_size : int option; kernel : Ptx.Kernel.t }
  | Allocation of Regalloc.Allocator.t
  | Machine of Machine.Lower.t
  | Sanitize of { block_size : int option; kernel : Ptx.Kernel.t }
  | Equiv of
      { block_size : int
      ; num_blocks : int option
      ; left : Ptx.Kernel.t
      ; right : Ptx.Kernel.t
      }
  | Equiv_alloc of Regalloc.Allocator.t
  | Equiv_lower of Machine.Lower.t

val run : stage:string -> check list -> unit
(** Evaluate the checks in order when the gate is enabled; the first
    check yielding error-severity diagnostics raises [Rejected (stage,
    errors)] and the rest are skipped. A no-op when disabled. *)

val diagnostics_of : check -> Diagnostic.t list
(** Run one check unconditionally (gate state ignored) and return its
    diagnostics — the single dispatch point {!run} is built on. *)
