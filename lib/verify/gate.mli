(** The optional pipeline gate. Disabled by default; enabled either
    programmatically ({!set}) or by exporting [CRAT_VERIFY=1]. When
    enabled, {!check_kernel} / {!check_allocation} verify their subject
    and raise {!Rejected} carrying the error-severity diagnostics; when
    disabled they are no-ops, so gated code paths cost nothing in
    production. Warnings never reject. *)

exception Rejected of string * Diagnostic.t list
(** [(stage, error diagnostics)]. A human-readable printer is
    registered with [Printexc]. *)

val enabled : unit -> bool
val set : bool -> unit
(** Overrides the environment; [clear] returns to the environment. *)

val clear : unit -> unit

val check_kernel : stage:string -> ?block_size:int -> Ptx.Kernel.t -> unit
val check_allocation : stage:string -> Regalloc.Allocator.t -> unit

val check_machine : stage:string -> Machine.Lower.t -> unit
(** Run the V6xx machine-backend audit ({!Machine_audit.check}) on a
    lowered program when the gate is enabled. *)

val check_sanitize : stage:string -> ?block_size:int -> Ptx.Kernel.t -> unit
(** Run the S4xx hybrid-sanitizer bounds check ({!Sanitize.check_kernel})
    when the gate is enabled; proven-OOB accesses reject, residual
    (S403) warnings never do. *)

val check_equiv :
  stage:string ->
  block_size:int ->
  ?num_blocks:int ->
  left:Ptx.Kernel.t ->
  right:Ptx.Kernel.t ->
  unit ->
  unit
(** Translation-validate a transformation edge ({!Equiv_check.check_opt})
    when the gate is enabled. Only a refuted edge (E201, a concretely
    replayed counterexample) rejects; unknown verdicts (E301) never do. *)

val check_equiv_alloc : stage:string -> Regalloc.Allocator.t -> unit
(** Likewise for the allocation edge: [original] vs allocated [kernel]. *)

val check_equiv_lower : stage:string -> Machine.Lower.t -> unit
(** Likewise for the machine-lowering edge. *)
