open Ptx
module D = Diagnostic

let width_ok inst_ty reg_ty =
  Types.reg_class inst_ty = Types.reg_class reg_ty

let check (k : Kernel.t) =
  let kernel = k.Kernel.name in
  let diags = ref [] in
  let err ~instr code msg = diags := D.error ~instr ~kernel ~code msg :: !diags in
  let warn ~instr code msg =
    diags := D.warning ~instr ~kernel ~code msg :: !diags
  in
  (* labels *)
  let labels = Kernel.labels k in
  let rec dups seen = function
    | [] -> ()
    | l :: rest ->
      if List.mem l seen then
        diags :=
          D.error ~kernel ~code:"V108" (Printf.sprintf "duplicate label %s" l)
          :: !diags
      else ();
      dups (l :: seen) rest
  in
  dups [] labels;
  let find_decl s = List.find_opt (fun d -> d.Kernel.dname = s) k.Kernel.decls in
  let check_operand ~instr ty what op =
    match op with
    | Instr.Oreg r ->
      if not (width_ok ty (Reg.ty r)) then
        err ~instr "V101"
          (Printf.sprintf "%s: register %s of type %s used with type %s" what
             (Reg.name r)
             (Types.scalar_to_string (Reg.ty r))
             (Types.scalar_to_string ty))
    | Instr.Oimm _ ->
      if Types.is_float ty then
        warn ~instr "V111"
          (Printf.sprintf "%s: integer immediate with %s-typed instruction"
             what (Types.scalar_to_string ty))
    | Instr.Ofimm _ ->
      if not (Types.is_float ty) then
        warn ~instr "V111"
          (Printf.sprintf "%s: float immediate with %s-typed instruction" what
             (Types.scalar_to_string ty))
    | Instr.Osym s ->
      if find_decl s = None then
        err ~instr "V105" (Printf.sprintf "%s: undeclared symbol %s" what s)
    | Instr.Oparam p ->
      if not (List.mem_assoc p k.Kernel.params) then
        err ~instr "V105" (Printf.sprintf "%s: unknown parameter %s" what p)
    | Instr.Ospecial _ -> ()
  in
  let check_dst ~instr ty what d = check_operand ~instr ty what (Instr.Oreg d) in
  let check_pred ~instr what (r : Reg.t) =
    if not (Types.equal_scalar (Reg.ty r) Types.Pred) then
      err ~instr "V102"
        (Printf.sprintf "%s: %s is not a predicate register" what (Reg.name r))
  in
  let check_address ~instr space ty what (addr : Instr.address) =
    let width = Types.width_bytes ty in
    (match addr.Instr.base with
     | Instr.Oreg r ->
       (match Types.reg_class (Reg.ty r) with
        | Types.C64 | Types.C32 -> ()
        | Types.Cpred ->
          err ~instr "V103"
            (Printf.sprintf "%s: predicate register %s used as address base"
               what (Reg.name r)))
     | Instr.Osym s ->
       (match find_decl s with
        | None ->
          err ~instr "V105" (Printf.sprintf "%s: undeclared symbol %s" what s)
        | Some d ->
          if not (Types.equal_space d.Kernel.dspace space) then
            err ~instr "V104"
              (Printf.sprintf "%s: %s-space access to symbol %s declared in %s"
                 what
                 (Types.space_to_string space)
                 s
                 (Types.space_to_string d.Kernel.dspace));
          let bytes = Kernel.decl_bytes d in
          if addr.Instr.offset < 0 || addr.Instr.offset + width > bytes then
            warn ~instr "V110"
              (Printf.sprintf
                 "%s: access at %s+%d (width %d) outside the %d declared bytes"
                 what s addr.Instr.offset width bytes))
     | Instr.Oparam p ->
       if not (List.mem_assoc p k.Kernel.params) then
         err ~instr "V105" (Printf.sprintf "%s: unknown parameter %s" what p)
     | Instr.Oimm _ -> ()
     | Instr.Ofimm _ | Instr.Ospecial _ ->
       err ~instr "V106" (Printf.sprintf "%s: invalid address base operand" what));
    (* space legality mirrors Gpusim.Refinterp's runtime rejections *)
    match space with
    | Types.Param ->
      (match addr.Instr.base with
       | Instr.Oparam _ -> ()
       | Instr.Oreg _ | Instr.Oimm _ | Instr.Ofimm _ | Instr.Ospecial _
       | Instr.Osym _ ->
         err ~instr "V104"
           (Printf.sprintf "%s: ld.param requires a parameter address base" what))
    | Types.Reg | Types.Local | Types.Shared | Types.Global | Types.Const -> ()
  in
  let check_target ~instr what l =
    if not (List.mem l labels) then
      err ~instr "V107" (Printf.sprintf "%s: unknown label %s" what l)
  in
  let last_falls = ref false in
  let last_idx = ref (-1) in
  let idx = ref 0 in
  Array.iter
    (function
      | Kernel.L _ -> ()
      | Kernel.I i ->
        let instr = !idx in
        incr idx;
        last_falls := Instr.falls_through i;
        last_idx := instr;
        let what = Instr.to_string i in
        (match i with
         | Instr.Mov (ty, d, a) | Instr.Unop (_, ty, d, a) ->
           check_dst ~instr ty what d;
           check_operand ~instr ty what a
         | Instr.Binop (_, ty, d, a, b) ->
           check_dst ~instr ty what d;
           check_operand ~instr ty what a;
           check_operand ~instr ty what b
         | Instr.Mad (ty, d, a, b, c) ->
           check_dst ~instr ty what d;
           List.iter (check_operand ~instr ty what) [ a; b; c ]
         | Instr.Cvt (dst_ty, src_ty, d, a) ->
           if
             Types.equal_scalar dst_ty Types.Pred
             || Types.equal_scalar src_ty Types.Pred
           then
             err ~instr "V109"
               (Printf.sprintf "%s: conversion to or from a predicate" what)
           else begin
             check_dst ~instr dst_ty what d;
             check_operand ~instr src_ty what a
           end
         | Instr.Setp (_, ty, d, a, b) ->
           check_pred ~instr what d;
           check_operand ~instr ty what a;
           check_operand ~instr ty what b
         | Instr.Selp (ty, d, a, b, p) ->
           check_dst ~instr ty what d;
           check_operand ~instr ty what a;
           check_operand ~instr ty what b;
           check_pred ~instr what p
         | Instr.Ld (space, ty, d, addr) ->
           (match space with
            | Types.Reg ->
              err ~instr "V104"
                (Printf.sprintf "%s: ld from the register state space" what)
            | Types.Param ->
              (* the loaded width must match the declared parameter *)
              (match addr.Instr.base with
               | Instr.Oparam p ->
                 (match List.assoc_opt p k.Kernel.params with
                  | Some pty when not (width_ok ty pty) ->
                    err ~instr "V101"
                      (Printf.sprintf
                         "%s: parameter %s of type %s loaded with type %s" what
                         p
                         (Types.scalar_to_string pty)
                         (Types.scalar_to_string ty))
                  | Some _ | None -> ())
               | _ -> ())
            | Types.Local | Types.Shared | Types.Global | Types.Const -> ());
           check_dst ~instr ty what d;
           check_address ~instr space ty what addr
         | Instr.St (space, ty, addr, v) ->
           (match space with
            | Types.Reg | Types.Param | Types.Const ->
              err ~instr "V104"
                (Printf.sprintf "%s: st to the %s state space" what
                   (Types.space_to_string space))
            | Types.Local | Types.Shared | Types.Global -> ());
           check_address ~instr space ty what addr;
           check_operand ~instr ty what v
         | Instr.Bra l -> check_target ~instr what l
         | Instr.Bra_pred (p, _, l) ->
           check_pred ~instr what p;
           check_target ~instr what l
         | Instr.Bar_sync | Instr.Ret -> ()))
    k.Kernel.body;
  if !last_idx >= 0 && !last_falls then
    warn ~instr:!last_idx "V112"
      "control can fall off the end of the kernel body";
  D.sort !diags
