(** Seeded known-bad subjects: one deliberately broken kernel (or forged
    allocation) per checker, giving every checker negative coverage and
    feeding the golden rendering test. *)

type subject =
  | Kernel of Ptx.Kernel.t
  | Allocation of Regalloc.Allocator.t

type case =
  { label : string
  ; expect : string  (** the diagnostic code the checker must raise *)
  ; subject : subject
  }

val cases : unit -> case list

val diagnostics_of : case -> Diagnostic.t list
(** Run the appropriate checker (kernel checks at block size 64). *)
