(** Bridge from {!Equiv.Check} verdicts to E-code diagnostics.

    E101 (info) — the edge is proved equivalent; the message carries the
    proof statistics. E201 (error) — refuted, with the replayable
    witness input in the message. E301 (warning) — the static proof
    failed and differential fuzzing found no divergence. *)

val diagnostics_of : Equiv.Check.outcome -> Diagnostic.t list

val check_opt :
  block_size:int ->
  ?num_blocks:int ->
  left:Ptx.Kernel.t ->
  right:Ptx.Kernel.t ->
  unit ->
  Diagnostic.t list

val check_alloc : Regalloc.Allocator.t -> Diagnostic.t list
val check_lower : Machine.Lower.t -> Diagnostic.t list
