(** Checker 5: the allocation auditor — a check *on* the allocator, not
    by it. Starting from the allocator's post-spill virtual kernel and
    its virtual-to-physical assignment, it independently recomputes
    liveness and proves:

    - V501: no two simultaneously-live same-class virtual registers
      share a physical register id (the classic copy exception for
      [mov d, s] is honoured, matching what makes such sharing sound);
    - V502: the distinct physical ids fit the register budget;
    - V503: no spill slot can be read before it is written on some path;
    - V504: the spill-slot layout is non-overlapping and every resolved
      slot access matches a placement's offset and width;
    - V505: the allocated kernel is exactly the assignment substitution
      of the virtual kernel, every virtual register is mapped within its
      class, and spilled registers were rewritten away. *)

val check : Regalloc.Allocator.t -> Diagnostic.t list
