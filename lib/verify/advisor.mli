(** Static performance advisor.

    Turns the {!Absint} analyses — per-block MAXLIVE pressure, per-access
    coalescing class and bank-conflict degree, branch uniformity and
    provable loop trip counts — into advisory [P]-code diagnostics
    (always {!Diagnostic.Warning}: a performance smell is never a
    correctness error).

    Code ranges mirror the verifier's [V] ranges:
    - [P1xx] register pressure
    - [P2xx] global/local coalescing
    - [P3xx] shared-memory bank conflicts
    - [P4xx] branch divergence
    - [P5xx] loops and trip counts

    Every quantitative claim behind the diagnostics (segment bounds,
    bank-conflict degrees, uniformity) is exposed through [access] so a
    differential harness ({!Crat.Lint}) can hold the advisor to them
    against the simulator's dynamic counters. *)

type report =
  { kernel : string
  ; access : Absint.Access.t  (** per-access / per-branch static claims *)
  ; loops : Absint.Trip.loop list
  ; pressure : Absint.Pressure.t
  ; diags : Diagnostic.t list  (** the rendered P-code advisories *)
  }

val report :
  ?reg_budget:int ->
  ?warp_size:int ->
  ?line:int ->
  ?banks:int ->
  Absint.Analysis.t ->
  report
(** Build the advisor report from a completed abstract interpretation.
    [reg_budget] (per-thread 32-bit register units) arms the P101
    inevitable-spill check; the memory-geometry defaults match
    {!Gpusim.Config.fermi} (warp 32, 128-byte L1 lines, 32 banks). *)

val lint_kernel :
  ?block_size:int ->
  ?num_blocks:int ->
  ?params:(string * int64) list ->
  ?reg_budget:int ->
  ?warp_size:int ->
  ?line:int ->
  ?banks:int ->
  Ptx.Kernel.t ->
  report
(** Convenience wrapper: run {!Absint.Analysis.run} on the kernel's CFG
    and build the report. *)
