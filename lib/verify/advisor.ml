module A = Absint.Analysis
module Dom = Absint.Dom
module Access = Absint.Access
module Trip = Absint.Trip
module Pressure = Absint.Pressure

type report =
  { kernel : string
  ; access : Access.t
  ; loops : Trip.loop list
  ; pressure : Pressure.t
  ; diags : Diagnostic.t list
  }

let space_name = Ptx.Types.space_to_string

let op_name store = if store then "store" else "load"

(* P1xx — register pressure *)
let pressure_diags ~kernel ?reg_budget (flow : Cfg.Flow.t) (p : Pressure.t) =
  let budget =
    match reg_budget with
    | Some b when p.Pressure.maxlive > b ->
      [ Diagnostic.warning ~kernel ~code:"P101" ~block:p.Pressure.hot_block
          (Printf.sprintf
             "MAXLIVE %d exceeds the register budget %d (block %d): spilling \
              is inevitable at this limit"
             p.Pressure.maxlive b p.Pressure.hot_block)
      ]
    | _ -> []
  in
  (* hotspot: one block concentrates the pressure — its MAXLIVE is at
     least twice the mean over non-empty blocks (and high enough to
     matter). Shrinking live ranges there lowers the whole kernel's
     register demand. *)
  let hotspot =
    let live = ref 0 and sum = ref 0 in
    Array.iteri
      (fun b pr ->
         let blk = flow.Cfg.Flow.blocks.(b) in
         if blk.Cfg.Flow.last >= blk.Cfg.Flow.first then begin
           incr live;
           sum := !sum + pr
         end)
      p.Pressure.block_pressure;
    if
      !live > 1
      && p.Pressure.maxlive >= 16
      && p.Pressure.maxlive * !live >= 2 * !sum
    then
      [ Diagnostic.warning ~kernel ~code:"P102" ~block:p.Pressure.hot_block
          (Printf.sprintf
             "register pressure hotspot: block %d holds %d live units, at \
              least twice the kernel mean"
             p.Pressure.hot_block p.Pressure.maxlive)
      ]
    else []
  in
  budget @ hotspot

(* P2xx / P3xx — memory access quality *)
let mem_diags ~kernel ~warp_size (m : Access.mem) =
  let what = Printf.sprintf "%s %s" (space_name m.Access.space) (op_name m.Access.store) in
  match m.Access.space with
  | Ptx.Types.Shared ->
    (match m.Access.bank_bound with
     | Some d when d > 1 ->
       [ Diagnostic.warning ~kernel ~code:"P301" ~instr:m.Access.pc
           (Printf.sprintf
              "%s provably serialises into %d-way bank conflicts (lane \
               stride %d bytes)"
              what d m.Access.addr.Dom.aff.Dom.tid)
       ]
     | Some _ -> []
     | None ->
       [ Diagnostic.warning ~kernel ~code:"P302" ~instr:m.Access.pc
           (Printf.sprintf
              "%s may cause bank conflicts: the lane stride is not \
               statically provable"
              what)
       ])
  | Ptx.Types.Global | Ptx.Types.Local ->
    (match m.Access.cls with
     | Access.Coalesced _ -> []
     | Access.Strided (s, b) ->
       [ Diagnostic.warning ~kernel ~code:"P202" ~instr:m.Access.pc
           (Printf.sprintf
              "strided %s: the %d-byte lane stride splits each warp access \
               into up to %d segments"
              what s b)
       ]
     | Access.Scattered ->
       [ Diagnostic.warning ~kernel ~code:"P201" ~instr:m.Access.pc
           (Printf.sprintf
              "%s may be uncoalesced: the address is not a provable affine \
               function of the thread id (up to %d segments per warp)"
              what warp_size)
       ])
  | _ -> []

(* P4xx — branch divergence *)
let branch_diags ~kernel (b : Access.branch) =
  if b.Access.uniform then []
  else if b.Access.bdepth > 0 then
    [ Diagnostic.warning ~kernel ~code:"P401" ~instr:b.Access.bpc
        (Printf.sprintf
           "possibly divergent branch inside a loop (depth %d): the warp may \
            serialise both paths on every iteration"
           b.Access.bdepth)
    ]
  else
    [ Diagnostic.warning ~kernel ~code:"P402" ~instr:b.Access.bpc
        "possibly divergent branch: both paths may execute under partial masks"
    ]

(* P5xx — loops *)
let loop_diags ~kernel (flow : Cfg.Flow.t) (l : Trip.loop) =
  let at = flow.Cfg.Flow.blocks.(l.Trip.header).Cfg.Flow.first in
  match l.Trip.trips with
  | Some 0 ->
    [ Diagnostic.warning ~kernel ~code:"P502" ~instr:at ~block:l.Trip.header
        (Printf.sprintf "loop at block %d provably never executes" l.Trip.header)
    ]
  | Some _ -> []
  | None ->
    [ Diagnostic.warning ~kernel ~code:"P501" ~instr:at ~block:l.Trip.header
        (Printf.sprintf
           "loop at block %d: trip count not statically provable; spill \
            weights fall back to the 10^depth heuristic"
           l.Trip.header)
    ]

let report ?reg_budget ?(warp_size = 32) ?(line = 128) ?(banks = 32) an =
  let flow = A.flow an in
  let kernel = flow.Cfg.Flow.kernel.Ptx.Kernel.name in
  let access = Access.collect ~warp_size ~line ~banks an in
  let loops = Trip.loops an in
  let pressure = Pressure.compute flow in
  let diags =
    pressure_diags ~kernel ?reg_budget flow pressure
    @ List.concat_map (mem_diags ~kernel ~warp_size) access.Access.mems
    @ List.concat_map (branch_diags ~kernel) access.Access.branches
    @ List.concat_map (loop_diags ~kernel flow) loops
  in
  { kernel; access; loops; pressure; diags = Diagnostic.sort diags }

let lint_kernel ?block_size ?num_blocks ?params ?reg_budget ?warp_size ?line
    ?banks k =
  let flow = Cfg.Flow.of_kernel k in
  let an = A.run ?block_size ?num_blocks ?params flow in
  report ?reg_budget ?warp_size ?line ?banks an
