(** Checker 2: forward may-uninitialized dataflow over [Cfg.Flow],
    mirroring the iterative block-level engine of [Cfg.Liveness] but in
    the forward direction. A register read on some path before any
    definition reaches it is reported as V201. *)

val check : Cfg.Flow.t -> Diagnostic.t list
