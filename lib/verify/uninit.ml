module Set = Ptx.Reg.Set
module D = Diagnostic

let check (flow : Cfg.Flow.t) =
  let kernel = flow.Cfg.Flow.kernel.Ptx.Kernel.name in
  let nb = Cfg.Flow.num_blocks flow in
  if Cfg.Flow.num_instrs flow = 0 then []
  else begin
    let def = Array.make nb Set.empty in
    Array.iteri
      (fun i b ->
         let _, d = Cfg.Liveness.block_use_def flow b in
         def.(i) <- d)
      flow.Cfg.Flow.blocks;
    let all = Ptx.Kernel.registers flow.Cfg.Flow.kernel in
    (* may-uninitialized at block entry / exit; the entry block starts
       with every register unset, everything else grows from empty *)
    let bin = Array.make nb Set.empty and bout = Array.make nb Set.empty in
    bin.(0) <- all;
    bout.(0) <- Set.diff all def.(0);
    let changed = ref true in
    while !changed do
      changed := false;
      for bi = 0 to nb - 1 do
        let b = flow.Cfg.Flow.blocks.(bi) in
        let inn =
          List.fold_left
            (fun acc p -> Set.union acc bout.(p))
            (if bi = 0 then all else Set.empty)
            b.Cfg.Flow.preds
        in
        let out = Set.diff inn def.(bi) in
        if not (Set.equal inn bin.(bi) && Set.equal out bout.(bi)) then begin
          bin.(bi) <- inn;
          bout.(bi) <- out;
          changed := true
        end
      done
    done;
    let diags = ref [] in
    Array.iter
      (fun (b : Cfg.Flow.block) ->
         let unset = ref bin.(b.Cfg.Flow.bid) in
         for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
           let ins = flow.Cfg.Flow.instrs.(i) in
           List.iter
             (fun r ->
                if Set.mem r !unset then
                  diags :=
                    D.error ~instr:i ~block:b.Cfg.Flow.bid ~kernel ~code:"V201"
                      (Printf.sprintf
                         "register %s may be read before initialization"
                         (Ptx.Reg.name r))
                    :: !diags)
             (Ptx.Instr.uses ins);
           List.iter
             (fun r -> unset := Set.remove r !unset)
             (Ptx.Instr.defs ins)
         done)
      flow.Cfg.Flow.blocks;
    D.sort !diags
  end
