(** Independent auditor for the machine-ISA backend (codes V601-V605).

    Given a lowered program, it re-derives — without trusting
    {!Machine.Lower.run}'s own bookkeeping — the PTX-to-machine
    translation (V601), the per-file unit budgets and storage layout
    (V602), the live ranges of every machine register cross-checked
    against a fresh PTX liveness of the allocated kernel through the
    register map (V603), the fixed-width encoding round-trip (V604),
    and the soundness discipline of the scalar file: no scalar
    destination may be computed from a per-lane value (V605). *)

val check : Machine.Lower.t -> Diagnostic.t list
(** Sorted diagnostics; empty means the lowered program passed every
    machine-level audit. *)
