(** The hybrid memory-safety sanitizer's static half, as S-code
    diagnostics.

    Runs {!Absint.Bounds} over a kernel — recognising the allocator's
    shared spill stack through {!Regalloc.Spill.shared_stride_of_kernel}
    so spill traffic is held to per-thread sub-stacks — and renders the
    verdicts:

    - {b S401} (error): a shared access provably escapes its segment or
      its thread's spill sub-stack;
    - {b S402} (error): a local-frame or parameter-bank access provably
      out of bounds;
    - {b S403} (warning): bounds not statically provable — the access
      keeps its dynamic check.

    Proven-safe accesses emit nothing: their dynamic check is
    discharged. {!mask} compiles the same verdicts into the
    interpreters' {!Gpusim.Sancheck} check mask, so the diagnostics and
    the runtime residue can never disagree. *)

type discharge =
  { total : int  (** statically in-scope accesses (shared/local/param) *)
  ; safe : int  (** proven in bounds: dynamic check discharged *)
  ; oob : int  (** proven out of bounds *)
  ; residual : int  (** unprovable: dynamic check retained *)
  }

type report =
  { kernel : string
  ; bounds : Absint.Bounds.t
  ; discharge : discharge
  ; diags : Diagnostic.t list
  }

val proven_pct : discharge -> float
(** Percentage of in-scope accesses proven safe; 100 when there are
    none. *)

val sanitize_kernel :
  ?block_size:int ->
  ?num_blocks:int ->
  ?params:(string * int64) list ->
  Ptx.Kernel.t ->
  report
(** Analyse one kernel. [block_size] defaults to the analysis default
    (128); [num_blocks] and [params] specialise the proof to a concrete
    launch, which can only sharpen it. *)

val of_analysis : Absint.Analysis.t -> report
(** Reuse an existing analysis fixpoint. *)

val mask : ?force:bool -> report -> Gpusim.Sancheck.t
(** The per-pc check mask the report's verdicts compile to. *)

val check_kernel : ?block_size:int -> Ptx.Kernel.t -> Diagnostic.t list
(** The {!Gate}-shaped entry point: just the diagnostics. *)
