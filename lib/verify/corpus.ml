open Ptx

type subject =
  | Kernel of Kernel.t
  | Allocation of Regalloc.Allocator.t

type case =
  { label : string
  ; expect : string
  ; subject : subject
  }

let r id ty = Reg.make id ty
let i x = Kernel.I x

(* V101: a 64-bit register fed to a 32-bit add *)
let ill_typed () =
  { Kernel.name = "bad_type"
  ; params = []
  ; decls = []
  ; body =
      [| i (Instr.Mov (Types.U64, r 0 Types.U64, Instr.Oimm 1L))
       ; i
           (Instr.Binop
              ( Instr.Add, Types.U32, r 1 Types.U32
              , Instr.Oreg (r 0 Types.U64), Instr.Oimm 2L ))
       ; i Instr.Ret
      |]
  }

(* V201: %r0 is read but never defined *)
let uninit () =
  { Kernel.name = "bad_uninit"
  ; params = []
  ; decls = []
  ; body =
      [| i
           (Instr.Binop
              ( Instr.Add, Types.U32, r 1 Types.U32
              , Instr.Oreg (r 0 Types.U32), Instr.Oimm 1L ))
       ; i Instr.Ret
      |]
  }

(* V301: bar.sync inside a tid-guarded branch *)
let divergent_barrier () =
  let tid = r 0 Types.U32 and p = r 1 Types.Pred in
  { Kernel.name = "bad_barrier"
  ; params = []
  ; decls = []
  ; body =
      [| i (Instr.Mov (Types.U32, tid, Instr.Ospecial Reg.Tid_x))
       ; i
           (Instr.Setp
              (Instr.Lt, Types.U32, p, Instr.Oreg tid, Instr.Oimm 16L))
       ; i (Instr.Bra_pred (p, false, "skip"))
       ; i Instr.Bar_sync
       ; Kernel.L "skip"
       ; i Instr.Ret
      |]
  }

(* V401: every thread of the block stores its tid to sdata[0] *)
let shared_race () =
  let tid = r 0 Types.U32 in
  { Kernel.name = "bad_race"
  ; params = []
  ; decls =
      [ { Kernel.dname = "sdata"
        ; dspace = Types.Shared
        ; delem = Types.B32
        ; dcount = 16
        ; dalign = 4
        }
      ]
  ; body =
      [| i (Instr.Mov (Types.U32, tid, Instr.Ospecial Reg.Tid_x))
       ; i
           (Instr.St
              ( Types.Shared, Types.U32
              , { Instr.base = Instr.Osym "sdata"; offset = 0 }
              , Instr.Oreg tid ))
       ; i Instr.Ret
      |]
  }

(* V501: a forged allocation mapping two simultaneously-live virtual
   registers onto one physical id *)
let bad_coloring () =
  let v0 = r 0 Types.U32
  and v1 = r 1 Types.U32
  and v2 = r 2 Types.U32
  and v3 = r 3 Types.U64 in
  let virtual_kernel =
    { Kernel.name = "bad_coloring"
    ; params = [ ("out", Types.U64) ]
    ; decls = []
    ; body =
        [| i (Instr.Mov (Types.U32, v0, Instr.Oimm 1L))
         ; i (Instr.Mov (Types.U32, v1, Instr.Oimm 2L))
         ; i
             (Instr.Binop
                (Instr.Add, Types.U32, v2, Instr.Oreg v0, Instr.Oreg v1))
         ; i
             (Instr.Ld
                ( Types.Param, Types.U64, v3
                , { Instr.base = Instr.Oparam "out"; offset = 0 } ))
         ; i
             (Instr.St
                ( Types.Global, Types.U32
                , { Instr.base = Instr.Oreg v3; offset = 0 }
                , Instr.Oreg v2 ))
         ; i Instr.Ret
        |]
    }
  in
  (* v0 and v1 overlap (v0 is live across v1's def) yet share %r0 *)
  let assignment =
    List.fold_left
      (fun acc (v, p) -> Reg.Map.add v p acc)
      Reg.Map.empty
      [ (v0, r 0 Types.U32)
      ; (v1, r 0 Types.U32)
      ; (v2, r 1 Types.U32)
      ; (v3, r 0 Types.U64)
      ]
  in
  let lookup x =
    match Reg.Map.find_opt x assignment with
    | Some p -> p
    | None -> x
  in
  { Regalloc.Allocator.kernel =
      Kernel.map_instrs (Instr.map_regs lookup) virtual_kernel
  ; original = virtual_kernel
  ; virtual_kernel
  ; assignment
  ; block_size = 64
  ; reg_limit = 8
  ; units_used = 4
  ; pred_used = 0
  ; scalar_limit = 0
  ; scalar_units_used = 0
  ; scalarized = 0
  ; spilled = []
  ; stats = { num_local = 0; num_shared = 0; num_other = 0; num_remat = 0 }
  ; weighted_local = 0.
  ; weighted_shared = 0.
  ; spill_local_bytes = 0
  ; spill_shared_bytes_per_block = 0
  ; rounds = 1
  }

(* S401: a uniform shared store 32 bytes past the end of an 8-word array *)
let oob_shared () =
  let v = r 0 Types.U32 in
  { Kernel.name = "bad_oob_shared"
  ; params = []
  ; decls =
      [ { Kernel.dname = "sdata"
        ; dspace = Types.Shared
        ; delem = Types.B32
        ; dcount = 8
        ; dalign = 4
        }
      ]
  ; body =
      [| i (Instr.Mov (Types.U32, v, Instr.Oimm 7L))
       ; i
           (Instr.St
              ( Types.Shared, Types.U32
              , { Instr.base = Instr.Osym "sdata"; offset = 64 }
              , Instr.Oreg v ))
       ; i Instr.Ret
      |]
  }

(* S402: a local store just past the thread's 16B spill frame *)
let oob_local () =
  let v = r 0 Types.U32 in
  { Kernel.name = "bad_oob_local"
  ; params = []
  ; decls =
      [ { Kernel.dname = "lbuf"
        ; dspace = Types.Local
        ; delem = Types.B32
        ; dcount = 4
        ; dalign = 4
        }
      ]
  ; body =
      [| i (Instr.Mov (Types.U32, v, Instr.Oimm 7L))
       ; i
           (Instr.St
              ( Types.Local, Types.U32
              , { Instr.base = Instr.Osym "lbuf"; offset = 16 }
              , Instr.Oreg v ))
       ; i Instr.Ret
      |]
  }

(* S403: a shared store indexed by a runtime parameter — unprovable
   statically, so the dynamic check must stay armed (and catches the
   write when the launch passes an index past the array) *)
let unprovable_shared () =
  let idx = r 0 Types.U32
  and idx64 = r 1 Types.U64
  and off = r 2 Types.U64
  and base = r 3 Types.U64
  and addr = r 4 Types.U64
  and v = r 5 Types.U32 in
  { Kernel.name = "bad_unprovable"
  ; params = [ ("idx", Types.U32) ]
  ; decls =
      [ { Kernel.dname = "sdata"
        ; dspace = Types.Shared
        ; delem = Types.B32
        ; dcount = 8
        ; dalign = 4
        }
      ]
  ; body =
      [| i
           (Instr.Ld
              ( Types.Param, Types.U32, idx
              , { Instr.base = Instr.Oparam "idx"; offset = 0 } ))
       ; i (Instr.Cvt (Types.U64, Types.U32, idx64, Instr.Oreg idx))
       ; i
           (Instr.Binop
              (Instr.Mul_lo, Types.U64, off, Instr.Oreg idx64, Instr.Oimm 4L))
       ; i (Instr.Mov (Types.U64, base, Instr.Osym "sdata"))
       ; i
           (Instr.Binop
              (Instr.Add, Types.U64, addr, Instr.Oreg base, Instr.Oreg off))
       ; i (Instr.Mov (Types.U32, v, Instr.Oimm 7L))
       ; i
           (Instr.St
              ( Types.Shared, Types.U32
              , { Instr.base = Instr.Oreg addr; offset = 0 }
              , Instr.Oreg v ))
       ; i Instr.Ret
      |]
  }

let cases () =
  [ { label = "type"; expect = "V101"; subject = Kernel (ill_typed ()) }
  ; { label = "uninit"; expect = "V201"; subject = Kernel (uninit ()) }
  ; { label = "barrier"
    ; expect = "V301"
    ; subject = Kernel (divergent_barrier ())
    }
  ; { label = "race"; expect = "V401"; subject = Kernel (shared_race ()) }
  ; { label = "coloring"
    ; expect = "V501"
    ; subject = Allocation (bad_coloring ())
    }
  ; { label = "oob-shared"; expect = "S401"; subject = Kernel (oob_shared ()) }
  ; { label = "oob-local"; expect = "S402"; subject = Kernel (oob_local ()) }
  ; { label = "unprovable"
    ; expect = "S403"
    ; subject = Kernel (unprovable_shared ())
    }
  ]

let diagnostics_of c =
  match c.subject with
  | Kernel k ->
    if String.length c.expect > 0 && c.expect.[0] = 'S' then
      Sanitize.check_kernel ~block_size:64 k
    else Checker.check_kernel ~block_size:64 k
  | Allocation a -> Checker.check_allocation a
