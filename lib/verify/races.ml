open Ptx
module D = Diagnostic
module Dom = Absint.Dom

type access =
  { idx : int
  ; blk : int
  ; store : bool
  ; width : int
  ; form : Dom.aff
  ; addr_div : bool  (** can the address differ between threads? *)
  ; value_div : bool  (** for stores: can the stored value differ? *)
  }

(* ---------- collision arithmetic on exact affine forms ---------- *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* is there a multiple of [g] in [lo, hi]? ([g = 0] means only 0) *)
let exists_mult g lo hi =
  if lo > hi then false
  else if g = 0 then lo <= 0 && 0 <= hi
  else begin
    let g = abs g in
    let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
    fdiv hi g * g >= lo
  end

(* Can accesses [a] (by thread t1) and [b] (by thread t2), both exact and
   in the same region, overlap for two *different* threads t1 <> t2 of a
   block of [bs] threads? Overlap means da*t1 + ca ∈ (cb - wa, cb + wb)
   i.e. v = da*t1 - db*t2 ∈ [delta - wa + 1, delta + wb - 1]. *)
let cross_thread_collides bs (a : access) (b : access) =
  let da = a.form.Dom.tid and db = b.form.Dom.tid in
  let delta = b.form.Dom.base - a.form.Dom.base in
  let lo_i = delta - a.width + 1 and hi_i = delta + b.width - 1 in
  if bs <= 1 then false
  else if da = db then
    if da = 0 then
      (* all threads at one fixed address each: every pair collides iff
         the two fixed ranges overlap *)
      lo_i <= 0 && 0 <= hi_i
    else begin
      (* v = da * (t1 - t2), t1 <> t2, |t1 - t2| <= bs - 1 *)
      let m = abs da * (bs - 1) in
      exists_mult da (max lo_i (-m)) (min hi_i (-1))
      || exists_mult da (max lo_i 1) (min hi_i m)
    end
  else begin
    (* v = da*t1 - db*t2: conservatively, any multiple of gcd(da, db)
       within the achievable range (this includes the same-thread
       diagonal — acceptable over-approximation for a warning) *)
    let span c = (min 0 (c * (bs - 1)), max 0 (c * (bs - 1))) in
    let lo1, hi1 = span da and lo2, hi2 = span (-db) in
    let g = gcd da db in
    exists_mult g (max lo_i (lo1 + lo2)) (min hi_i (hi1 + hi2))
  end

(* regions can alias unless both are exact with distinct declared
   symbols; a differing ctaid coefficient leaves an unknown inter-block
   constant in the address delta, so collision must be assumed *)
let may_overlap bs (a : access) (b : access) =
  if not (a.form.Dom.exact && b.form.Dom.exact) then true
  else
    match (a.form.Dom.sym, b.form.Dom.sym) with
    | Some (Dom.Sym s1), Some (Dom.Sym s2) when s1 <> s2 -> false
    | Some (Dom.Param _), _ | _, Some (Dom.Param _) -> true
    | Some _, None | None, Some _ -> true
    | Some _, Some _ | None, None ->
      a.form.Dom.cta <> b.form.Dom.cta || cross_thread_collides bs a b

(* ---------- barrier-free / plain reachability ---------- *)

let block_has_barrier flow (b : Cfg.Flow.block) =
  let rec loop i =
    if i > b.Cfg.Flow.last then false
    else
      Instr.is_barrier flow.Cfg.Flow.instrs.(i)
      || loop (i + 1)
  in
  loop b.Cfg.Flow.first

(* reach.(a).(b): a path from the end of block [a] to the start of [b];
   when [barrier_free], interior blocks must contain no bar.sync *)
let reach_matrix flow ~barrier_free =
  let nb = Cfg.Flow.num_blocks flow in
  let has_bar =
    Array.map (block_has_barrier flow) flow.Cfg.Flow.blocks
  in
  let m = Array.make_matrix nb nb false in
  for a = 0 to nb - 1 do
    let q = Queue.create () in
    List.iter (fun s -> Queue.add s q) flow.Cfg.Flow.blocks.(a).Cfg.Flow.succs;
    let visited = Array.make nb false in
    while not (Queue.is_empty q) do
      let s = Queue.pop q in
      if not visited.(s) then begin
        visited.(s) <- true;
        m.(a).(s) <- true;
        if not (barrier_free && has_bar.(s)) then
          List.iter
            (fun s' -> if not visited.(s') then Queue.add s' q)
            flow.Cfg.Flow.blocks.(s).Cfg.Flow.succs
      end
    done
  done;
  m

let no_barrier_between flow i j =
  (* no barrier at instruction positions in (i, j) exclusive *)
  let rec loop x =
    if x >= j then true
    else (not (Instr.is_barrier flow.Cfg.Flow.instrs.(x))) && loop (x + 1)
  in
  loop (i + 1)

let check ~block_size ?analysis (flow : Cfg.Flow.t) div =
  let k = flow.Cfg.Flow.kernel in
  let kernel = k.Kernel.name in
  let bs = min block_size 4096 in
  let an =
    match analysis with
    | Some a -> a
    | None -> Absint.Analysis.run ~block_size flow
  in
  (* per-thread stride of the Algorithm-1 shared spill sub-stack *)
  let spill_stride =
    List.find_map
      (fun d ->
         if d.Kernel.dname = Regalloc.Spill.shared_stack_sym then
           let bytes = Kernel.decl_bytes d in
           if block_size > 0 && bytes mod block_size = 0 then
             Some (bytes / block_size)
           else None
         else None)
      k.Kernel.decls
  in
  let accesses = ref [] in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    match ins with
    | Instr.Ld (Types.Shared, ty, _, addr) | Instr.St (Types.Shared, ty, addr, _)
      ->
      let form = (Absint.Analysis.address_at an i addr).Dom.aff in
      let addr_div =
        if form.Dom.exact then form.Dom.tid <> 0
        else Divergence.divergent_operand div ~at:i addr.Instr.base
      in
      let store, value_div =
        match ins with
        | Instr.St (_, _, _, v) ->
          (true, Divergence.divergent_operand div ~at:i v)
        | _ -> (false, false)
      in
      accesses :=
        { idx = i
        ; blk = flow.Cfg.Flow.block_of_instr.(i)
        ; store
        ; width = Types.width_bytes ty
        ; form
        ; addr_div
        ; value_div
        }
        :: !accesses
    | _ -> ());
  let accesses = List.rev !accesses in
  if accesses = [] || bs <= 1 then []
  else begin
    let bf = reach_matrix flow ~barrier_free:true in
    let any = reach_matrix flow ~barrier_free:false in
    let diags = ref [] in
    let in_spill (a : access) =
      Dom.decl_sym a.form = Some Regalloc.Spill.shared_stack_sym
    in
    (* V402: resolved spill-region accesses must follow the private
       per-thread pattern stride*tid + slot with the slot inside the
       per-thread stride *)
    (match spill_stride with
     | Some stride when stride > 0 ->
       List.iter
         (fun a ->
            if in_spill a then begin
              let f = a.form in
              if
                f.Dom.tid <> stride
                || f.Dom.cta <> 0
                || f.Dom.base < 0
                || f.Dom.base + a.width > stride
              then
                diags :=
                  D.error ~instr:a.idx ~block:a.blk ~kernel ~code:"V402"
                    (Printf.sprintf
                       "spill-region access at %s + %d*tid + %d (width %d) is \
                        not per-thread private (stride %d)"
                       Regalloc.Spill.shared_stack_sym f.Dom.tid f.Dom.base
                       a.width stride)
                  :: !diags
            end)
         accesses
     | Some _ | None -> ());
    (* an ordered barrier-free path from access [a] to access [b] *)
    let path_free a b =
      (a.blk = b.blk && a.idx < b.idx && no_barrier_between flow a.idx b.idx)
      || (no_barrier_between flow a.idx
            (flow.Cfg.Flow.blocks.(a.blk).Cfg.Flow.last + 1)
          && no_barrier_between flow
               (flow.Cfg.Flow.blocks.(b.blk).Cfg.Flow.first - 1)
               b.idx
          && bf.(a.blk).(b.blk))
    in
    let ordered a b = (a.blk = b.blk && a.idx < b.idx) || any.(a.blk).(b.blk) in
    let conflicts = Hashtbl.create 16 in
    let note a other =
      let prev = Option.value ~default:[] (Hashtbl.find_opt conflicts a.idx) in
      Hashtbl.replace conflicts a.idx (other :: prev)
    in
    let consider a b =
      (* distinct accesses: a race needs two different threads with no
         barrier between their dynamic instances *)
      let unsynced =
        (ordered a b && path_free a b)
        || (ordered b a && path_free b a)
        || ((not (ordered a b)) && (not (ordered b a))
            && (Divergence.divergent_block div a.blk
                || Divergence.divergent_block div b.blk))
      in
      if unsynced && may_overlap bs a b then begin
        let s, o = if a.store then (a, b) else (b, a) in
        note s o.idx
      end
    in
    let rec pairs = function
      | [] -> ()
      | a :: rest ->
        (* a against itself: one dynamic instance, all threads at once *)
        if a.store then begin
          if a.form.Dom.exact then begin
            if a.form.Dom.tid = 0 then begin
              if a.value_div && not (Divergence.divergent_block div a.blk) then
                diags :=
                  D.error ~instr:a.idx ~block:a.blk ~kernel ~code:"V401"
                    "whole block stores divergent values to a single shared \
                     address"
                  :: !diags
              else if a.value_div then note a a.idx
            end
            else if cross_thread_collides bs a a then note a a.idx
          end
          else if a.addr_div || a.value_div then note a a.idx
        end;
        List.iter (fun b -> if a.store || b.store then consider a b) rest;
        pairs rest
    in
    pairs accesses;
    Hashtbl.iter
      (fun idx others ->
         let blk = flow.Cfg.Flow.block_of_instr.(idx) in
         let others = List.sort_uniq compare others in
         diags :=
           D.warning ~instr:idx ~block:blk ~kernel ~code:"V403"
             (Printf.sprintf
                "shared store may conflict with %d access(es) on a \
                 barrier-free path (instrs %s)"
                (List.length others)
                (String.concat "," (List.map string_of_int others)))
           :: !diags)
      conflicts;
    D.sort !diags
  end
