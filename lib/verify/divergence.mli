(** Intra-block-level GPU divergence analysis, shared by the barrier and
    race checkers.

    Registers are divergent when their value can differ between threads
    of one block: sources are [tid]/[laneid]/[warpid], data loaded from
    memory, per-thread local addresses, and anything defined inside a
    divergently-executing block. Blocks execute divergently when they
    are (transitively) control dependent — via the post-dominator tree —
    on a branch whose predicate is divergent, or on a block that itself
    executes divergently.

    Per-thread-private memory (local space and the Algorithm-1 shared
    spill sub-stack) is modelled precisely: a reload is only as
    divergent as the values stored to its slot, so spilling a uniform
    value — a loop counter, say — does not spuriously drag the barriers
    of its loop into divergent control flow. [block_size] (default 128)
    sizes the per-thread stride of the shared spill region.

    Register divergence is flow-sensitive — a uniform redefinition
    kills it — because allocated kernels recycle physical registers
    between unrelated uniform and divergent values; queries therefore
    take the flat instruction index [at] they are observed from. *)

type t

val compute : ?block_size:int -> ?analysis:Absint.Analysis.t -> Cfg.Flow.t -> t
(** [analysis] supplies a precomputed abstract interpretation used to
    resolve private-memory address forms; recomputed otherwise. *)

val divergent_reg : t -> at:int -> Ptx.Reg.t -> bool
val divergent_block : t -> int -> bool

val divergent_operand : t -> at:int -> Ptx.Instr.operand -> bool
(** Divergence of an operand value (specials and local symbols
    included) as read by instruction [at]. *)

val control_deps : t -> int -> int list
(** Blocks carrying a conditional branch that the given block is
    directly control dependent on. *)
