exception Rejected of string * Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Rejected (stage, ds) ->
      Some
        (Printf.sprintf "Verify.Gate.Rejected at %s:\n%s" stage
           (Diagnostic.render ds))
    | _ -> None)

let forced = ref None
let set b = forced := Some b
let clear () = forced := None

let enabled () =
  match !forced with
  | Some b -> b
  | None ->
    (match Sys.getenv_opt "CRAT_VERIFY" with
     | Some ("1" | "true" | "on" | "yes") -> true
     | Some _ | None -> false)

let reject stage ds =
  if Diagnostic.has_errors ds then
    raise (Rejected (stage, Diagnostic.errors ds))

let check_kernel ~stage ?block_size k =
  if enabled () then reject stage (Checker.check_kernel ?block_size k)

let check_allocation ~stage a =
  if enabled () then reject stage (Checker.check_allocation a)

let check_machine ~stage m =
  if enabled () then reject stage (Machine_audit.check m)

let check_sanitize ~stage ?block_size k =
  if enabled () then reject stage (Sanitize.check_kernel ?block_size k)

let check_equiv ~stage ~block_size ?num_blocks ~left ~right () =
  if enabled () then
    reject stage
      (Equiv_check.check_opt ~block_size ?num_blocks ~left ~right ())

let check_equiv_alloc ~stage a =
  if enabled () then reject stage (Equiv_check.check_alloc a)

let check_equiv_lower ~stage m =
  if enabled () then reject stage (Equiv_check.check_lower m)
