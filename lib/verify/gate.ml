exception Rejected of string * Diagnostic.t list

let () =
  Printexc.register_printer (function
    | Rejected (stage, ds) ->
      Some
        (Printf.sprintf "Verify.Gate.Rejected at %s:\n%s" stage
           (Diagnostic.render ds))
    | _ -> None)

let forced = ref None
let set b = forced := Some b
let clear () = forced := None

let enabled () =
  match !forced with
  | Some b -> b
  | None ->
    (match Sys.getenv_opt "CRAT_VERIFY" with
     | Some ("1" | "true" | "on" | "yes") -> true
     | Some _ | None -> false)

type check =
  | Kernel of { block_size : int option; kernel : Ptx.Kernel.t }
  | Allocation of Regalloc.Allocator.t
  | Machine of Machine.Lower.t
  | Sanitize of { block_size : int option; kernel : Ptx.Kernel.t }
  | Equiv of
      { block_size : int
      ; num_blocks : int option
      ; left : Ptx.Kernel.t
      ; right : Ptx.Kernel.t
      }
  | Equiv_alloc of Regalloc.Allocator.t
  | Equiv_lower of Machine.Lower.t

let diagnostics_of = function
  | Kernel { block_size; kernel } -> Checker.check_kernel ?block_size kernel
  | Allocation a -> Checker.check_allocation a
  | Machine m -> Machine_audit.check m
  | Sanitize { block_size; kernel } -> Sanitize.check_kernel ?block_size kernel
  | Equiv { block_size; num_blocks; left; right } ->
    Equiv_check.check_opt ~block_size ?num_blocks ~left ~right ()
  | Equiv_alloc a -> Equiv_check.check_alloc a
  | Equiv_lower m -> Equiv_check.check_lower m

let reject stage ds =
  if Diagnostic.has_errors ds then
    raise (Rejected (stage, Diagnostic.errors ds))

let run ~stage checks =
  if enabled () then
    List.iter (fun c -> reject stage (diagnostics_of c)) checks
