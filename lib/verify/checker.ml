let check_kernel ?(block_size = 128) (k : Ptx.Kernel.t) =
  let tds = Typecheck.check k in
  let more =
    match Cfg.Flow.of_kernel k with
    | exception Invalid_argument _ -> []
    | flow ->
      let analysis = Absint.Analysis.run ~block_size flow in
      let div = Divergence.compute ~block_size ~analysis flow in
      Uninit.check flow
      @ Barrier.check flow div
      @ Races.check ~block_size ~analysis flow div
  in
  Diagnostic.sort (tds @ more)

let check_allocation (a : Regalloc.Allocator.t) =
  Diagnostic.sort
    (check_kernel ~block_size:a.Regalloc.Allocator.block_size
       a.Regalloc.Allocator.kernel
     @ Audit.check a)
