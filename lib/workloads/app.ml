type shape =
  | Tiled
  | Streaming
  | Stencil
  | Shared_tile
  | Reduction
  | Gather

type input =
  { ilabel : string
  ; ws_words : int
  ; iters : int
  ; passes : int
  ; num_blocks : int
  ; seed : int
  }

type t =
  { abbr : string
  ; app_name : string
  ; kernel_name : string
  ; suite_name : string
  ; sensitive : bool
  ; block_size : int
  ; default_regs : int
  ; shape : shape
  ; knobs : Shapes.knobs
  ; shm_words : int
  ; inputs : input list
  }

let kernel a =
  let name = a.kernel_name in
  match a.shape with
  | Tiled -> Shapes.tiled_reuse ~name a.knobs
  | Streaming -> Shapes.streaming ~name a.knobs
  | Stencil -> Shapes.stencil3 ~name a.knobs
  | Shared_tile -> Shapes.shared_tile ~name ~shm_words:a.shm_words a.knobs
  | Reduction -> Shapes.reduction ~name ~shm_words:a.shm_words a.knobs
  | Gather -> Shapes.gather ~name a.knobs

let default_input a =
  match a.inputs with
  | i :: _ -> i
  | [] -> invalid_arg (a.abbr ^ ": no inputs")

let find_input a label =
  match List.find_opt (fun i -> i.ilabel = label) a.inputs with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "%s: unknown input %s" a.abbr label)

let uses_aux a =
  match a.shape with
  | Gather -> true
  | Tiled | Streaming | Stencil | Shared_tile | Reduction -> false

let memory a (i : input) =
  (* +32: per-block region padding (see Shapes prologue) *)
  let words = i.num_blocks * (i.ws_words + 32) in
  let m = Gpusim.Memory.create () in
  Gpusim.Memory.write_f32_array m ~base:Data.inp_base
    (Data.uniform_f32 ~seed:i.seed words);
  if uses_aux a then
    Gpusim.Memory.write_u32_array m ~base:Data.aux_base
      (Data.uniform_u32 ~seed:(i.seed + 7) ~bound:(max 1 i.ws_words) i.ws_words);
  m

let params a (i : input) =
  let base =
    [ ("inp", Gpusim.Value.I Data.inp_base)
    ; ("out", Gpusim.Value.I Data.out_base)
    ; ("ws", Gpusim.Value.of_int i.ws_words)
    ; ("iters", Gpusim.Value.of_int i.iters)
    ; ("passes", Gpusim.Value.of_int i.passes)
    ]
  in
  if uses_aux a then base @ [ ("aux", Gpusim.Value.I Data.aux_base) ] else base

let shared_decl_bytes a = Ptx.Kernel.shared_bytes (kernel a)

let output_words a (i : input) = a.block_size * i.num_blocks

let launch a ?kernel:k ?(tlp = 1) ~input () =
  let kern =
    match k with
    | Some k -> k
    | None -> kernel a
  in
  Gpusim.Launch.make ~kernel:kern ~block_size:a.block_size
    ~num_blocks:input.num_blocks ~tlp_limit:tlp ~params:(params a input)
    (memory a input)

let pp fmt a =
  Format.fprintf fmt "%-5s %-14s %-22s %-8s %s (block=%d, shm=%dB)" a.abbr
    a.app_name a.kernel_name a.suite_name
    (if a.sensitive then "sensitive" else "insensitive")
    a.block_size (a.shm_words * 4)
