(** Workload descriptors: one per application of the paper's Table 3.

    Each descriptor names a {!Shapes} combinator plus the knob settings
    that reproduce the application's published resource profile (block
    size, shared-memory use, register demand, cache working set), and a
    list of input scales (the paper's input-sensitivity study reuses the
    same kernel across inputs — sizes are runtime parameters). *)

type shape =
  | Tiled
  | Streaming
  | Stencil
  | Shared_tile
  | Reduction
  | Gather

type input =
  { ilabel : string
  ; ws_words : int  (** per-block working-set words *)
  ; iters : int
  ; passes : int
  ; num_blocks : int  (** total blocks simulated on the SM *)
  ; seed : int
  }

type t =
  { abbr : string
  ; app_name : string
  ; kernel_name : string
  ; suite_name : string
  ; sensitive : bool
  ; block_size : int
  ; default_regs : int
      (** the nvcc-like default per-thread register count used by the
          MaxTLP/OptTLP baselines *)
  ; shape : shape
  ; knobs : Shapes.knobs
  ; shm_words : int  (** application's own shared-memory tile (0 = none) *)
  ; inputs : input list  (** head = default input *)
  }

val kernel : t -> Ptx.Kernel.t
(** Build the (SSA, pre-allocation) kernel. Deterministic. *)

val default_input : t -> input
val find_input : t -> string -> input
val memory : t -> input -> Gpusim.Memory.t
val params : t -> input -> (string * Gpusim.Value.t) list
val shared_decl_bytes : t -> int
(** Shared memory declared by the application kernel itself (ShmSize). *)

val launch :
  t -> ?kernel:Ptx.Kernel.t -> ?tlp:int -> input:input -> unit -> Gpusim.Launch.t
(** Build a launch with a fresh memory image. The optional [kernel]
    substitutes an allocated kernel for the SSA one; [tlp] (default 1)
    sets the launch's TLP limit. Calling twice with the same arguments
    yields structurally identical launches (the memory image is a
    deterministic function of the input). *)

val output_words : t -> input -> int
val pp : Format.formatter -> t -> unit
