(* Client side of the crat daemon protocol: a thin, blocking wrapper
   over one Unix-domain connection. All calls return [result] rather
   than raising, so CLI/bench callers can distinguish "daemon said no"
   from transport death. *)

type t =
  { fd : Unix.file_descr
  ; ic : in_channel
  ; oc : out_channel
  }

let connect ?(socket = Protocol.default_socket) () =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    set_binary_mode_in ic true;
    set_binary_mode_out oc true;
    Ok { fd; ic; oc }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error
      (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))

(* Retry [connect] until the daemon comes up — used right after forking
   a server process. *)
let rec connect_retry ?(socket = Protocol.default_socket) ?(attempts = 100) () =
  match connect ~socket () with
  | Ok c -> Ok c
  | Error e ->
    if attempts <= 1 then Error e
    else begin
      Unix.sleepf 0.05;
      connect_retry ~socket ~attempts:(attempts - 1) ()
    end

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()

let transport_error = function
  | End_of_file -> "connection closed by daemon"
  | Protocol.Protocol_error m -> "protocol error: " ^ m
  | Sys_error m | Failure m -> m
  | Unix.Unix_error (e, _, _) -> Unix.error_message e
  | e -> Printexc.to_string e

(* Stream a simulate batch: [f index stats] fires per result frame, in
   completion order. Returns the number of results delivered. *)
let simulate_iter t pts ~f =
  match
    Protocol.write_request t.oc (Protocol.Simulate pts);
    let rec loop n =
      match Protocol.read_response t.ic with
      | Protocol.Result { index; stats } ->
        f index stats;
        loop (n + 1)
      | Protocol.Done -> Ok n
      | Protocol.Error m -> Error m
      | Protocol.Sweep_result _ | Protocol.Stats_result _ ->
        Error "unexpected frame in simulate stream"
    in
    loop 0
  with
  | r -> r
  | exception e -> Error (transport_error e)

(* Convenience: batch in, array of stats out (request order). *)
let simulate t pts =
  let out = Array.make (List.length pts) None in
  match
    simulate_iter t pts ~f:(fun i st ->
      if i >= 0 && i < Array.length out then out.(i) <- Some st)
  with
  | Error e -> Error e
  | Ok _ ->
    (try
       Ok
         (Array.map
            (function
              | Some st -> st
              | None -> failwith "daemon omitted a result")
            out)
     with Failure m -> Error m)

let server_stats t =
  match
    Protocol.write_request t.oc Protocol.Stats;
    Protocol.read_response t.ic
  with
  | Protocol.Stats_result s -> Ok s
  | Protocol.Error m -> Error m
  | _ -> Error "unexpected frame for stats request"
  | exception e -> Error (transport_error e)

let sweep t ~kind ~apps =
  match
    Protocol.write_request t.oc (Protocol.Sweep { kind; apps });
    Protocol.read_response t.ic
  with
  | Protocol.Sweep_result { text; failed } -> Ok (text, failed)
  | Protocol.Error m -> Error m
  | _ -> Error "unexpected frame for sweep request"
  | exception e -> Error (transport_error e)

let shutdown t =
  match
    Protocol.write_request t.oc Protocol.Shutdown;
    Protocol.read_response t.ic
  with
  | Protocol.Done -> Ok ()
  | Protocol.Error m -> Error m
  | _ -> Error "unexpected frame for shutdown request"
  | exception e -> Error (transport_error e)
