(* The crat daemon: a long-lived server in front of [Crat.Engine].

   Concurrency model: the listener accepts on the main thread and gives
   each connection a systhread (cheap, released around blocking IO);
   every batch of claimed simulation points is executed on a freshly
   spawned domain, so concurrent clients get real parallelism while the
   engine — already thread-safe — dedups structurally identical work
   through its content-addressed stores.

   Cross-client dedup: a connection first partitions its points against
   the session [results] table and the [inflight] set. Points nobody is
   computing are claimed (entered into [inflight]) and run as one engine
   batch; points already in flight on another connection are answered by
   waiting on the condition variable instead of recomputing — that is
   the [dedup_hits] counter of the stats endpoint. Combined with the
   engine's persistent store, each launch is recorded once ever: first
   contact records the trace to disk, every later point of the same
   launch — same client, another client, or another daemon process
   reusing the store directory — replays or reads statistics back. *)

type t =
  { engine : Crat.Engine.t
  ; store : Store.t option
  ; sweep : (kind:string -> apps:string list -> (string * bool) option) option
  ; lock : Mutex.t
  ; cond : Condition.t
  ; inflight : (string, unit) Hashtbl.t  (* sim keys being computed *)
  ; results : (string, Gpusim.Stats.t) Hashtbl.t  (* published this session *)
  ; launches : (string * int, Gpusim.Launch.t) Hashtbl.t
      (* one physical launch record per (app, regs): keeps the engine's
         physical-identity key memos hot across requests *)
  ; tlps : (string * int * bool, int) Hashtbl.t  (* occupancy default *)
  ; mutable suite_digest : string option
  ; mutable listen_fd : Unix.file_descr option
  ; socket_path : string
  ; started : float
  ; mutable stop : bool
  ; mutable handlers : int
  ; mutable connections : int
  ; mutable requests : int
  ; mutable points : int
  ; mutable dedup_hits : int
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ---------- point resolution ---------- *)

let config_of_kepler kepler =
  if kepler then Gpusim.Config.kepler else Gpusim.Config.fermi

exception Bad_request of string

let find_app abbr =
  try Workloads.Suite.find abbr
  with Not_found -> raise (Bad_request (Printf.sprintf "unknown app %S" abbr))

(* (launch, config, tlp) of one protocol point. Allocation goes through
   the engine (memoized + persistent); the launch record is memoized so
   repeated requests share one physical record. *)
let resolve t (p : Protocol.point) =
  let app = find_app p.Protocol.abbr in
  let regs =
    Option.value ~default:app.Workloads.App.default_regs p.Protocol.regs
  in
  let cfg = config_of_kepler p.Protocol.kepler in
  let launch =
    match locked t (fun () -> Hashtbl.find_opt t.launches (p.Protocol.abbr, regs)) with
    | Some l -> l
    | None ->
      let a = Crat.Engine.allocate t.engine app ~reg_limit:regs in
      let input = Workloads.App.default_input app in
      let l =
        Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~input ()
      in
      locked t (fun () ->
        match Hashtbl.find_opt t.launches (p.Protocol.abbr, regs) with
        | Some l' -> l'  (* keep the first physical record *)
        | None ->
          Hashtbl.replace t.launches (p.Protocol.abbr, regs) l;
          l)
  in
  let tlp =
    match p.Protocol.tlp with
    | Some tlp -> tlp
    | None ->
      let key = (p.Protocol.abbr, regs, p.Protocol.kepler) in
      (match locked t (fun () -> Hashtbl.find_opt t.tlps key) with
       | Some tlp -> tlp
       | None ->
         let r = Crat.Resource.analyze cfg app in
         let tlp =
           max 1 (Gpusim.Occupancy.max_tlp cfg (Crat.Resource.usage_at r ~regs))
         in
         locked t (fun () -> Hashtbl.replace t.tlps key tlp);
         tlp)
  in
  (launch, cfg, tlp)

(* ---------- compute / dedup core ---------- *)

(* Run one engine batch on its own domain so concurrent connections
   parallelise; publish results and release the claims whatever
   happens. The release + broadcast must run even if publication itself
   raises — a claim that is never released wedges every other
   connection waiting on that key in [obtain]. *)
let compute t triples skeys =
  let outcome =
    match
      Domain.join (Domain.spawn (fun () ->
        Crat.Engine.simulate_batch t.engine triples))
    with
    | stats ->
      if List.length stats = List.length skeys then Ok stats
      else
        Error
          (Printf.sprintf "engine returned %d results for %d points"
             (List.length stats) (List.length skeys))
    | exception e -> Error (Printexc.to_string e)
  in
  locked t (fun () ->
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun k -> Hashtbl.remove t.inflight k) skeys;
        Condition.broadcast t.cond)
      (fun () ->
        match outcome with
        | Ok stats ->
          List.iter2 (fun k st -> Hashtbl.replace t.results k st) skeys stats
        | Error _ -> ()));
  outcome

(* Answer one point whose key somebody else claimed: wait for the
   publication; if the computing connection died, claim and compute it
   ourselves. *)
let rec obtain t triple skey =
  let action =
    locked t (fun () ->
      match Hashtbl.find_opt t.results skey with
      | Some st -> `Ready st
      | None ->
        if Hashtbl.mem t.inflight skey then begin
          Condition.wait t.cond t.lock;
          `Retry
        end
        else begin
          Hashtbl.replace t.inflight skey ();
          `Claimed
        end)
  in
  match action with
  | `Ready st -> Ok st
  | `Retry -> obtain t triple skey
  | `Claimed ->
    (match compute t [ triple ] [ skey ] with
     | Ok [ st ] -> Ok st
     | Ok _ -> Error "engine returned a mismatched batch"
     | Error e -> Error e)

(* ---------- request handlers ---------- *)

let handle_simulate t oc pts =
  locked t (fun () -> t.points <- t.points + List.length pts);
  let resolved = List.map (resolve t) pts in
  let skeys =
    List.map (fun (l, cfg, tlp) -> Crat.Engine.sim_key t.engine l cfg ~tlp) resolved
  in
  let indexed = List.mapi (fun i (tr, k) -> (i, tr, k))
      (List.combine resolved skeys) in
  (* partition: session-ready / in-flight elsewhere / ours to claim *)
  let ready, waiting, claimed =
    locked t (fun () ->
      let ready = ref [] and waiting = ref [] and claimed = ref [] in
      List.iter
        (fun (i, tr, k) ->
           match Hashtbl.find_opt t.results k with
           | Some st -> ready := (i, st) :: !ready
           | None ->
             if
               Hashtbl.mem t.inflight k
               || List.exists (fun (_, _, k') -> k' = k) !claimed
             then begin
               t.dedup_hits <- t.dedup_hits + 1;
               waiting := (i, tr, k) :: !waiting
             end
             else begin
               Hashtbl.replace t.inflight k ();
               claimed := (i, tr, k) :: !claimed
             end)
        indexed;
      (List.rev !ready, List.rev !waiting, List.rev !claimed))
  in
  (* The claims are normally released by [compute]; until it runs, an
     exception here — e.g. the client hanging up so a ready-result write
     dies with EPIPE — must release them itself, or every other
     connection waiting on those keys blocks forever in [obtain]. Once
     [compute] returns the claims are gone (success or failure), so the
     cleanup is disarmed to avoid racing a re-claim by another
     connection. *)
  let claims = ref (List.map (fun (_, _, k) -> k) claimed) in
  let release_claims () =
    match !claims with
    | [] -> ()
    | keys ->
      claims := [];
      locked t (fun () ->
        List.iter (fun k -> Hashtbl.remove t.inflight k) keys;
        Condition.broadcast t.cond)
  in
  Fun.protect ~finally:release_claims @@ fun () ->
  List.iter
    (fun (i, st) ->
       Protocol.write_response oc (Protocol.Result { index = i; stats = st }))
    ready;
  let batch_error =
    if claimed = [] then None
    else begin
      let triples = List.map (fun (_, tr, _) -> tr) claimed in
      let keys = List.map (fun (_, _, k) -> k) claimed in
      let outcome = compute t triples keys in
      claims := [];
      match outcome with
      | Ok stats ->
        List.iter2
          (fun (i, _, _) st ->
             Protocol.write_response oc (Protocol.Result { index = i; stats = st }))
          claimed stats;
        None
      | Error e -> Some e
    end
  in
  match batch_error with
  | Some e -> Protocol.write_response oc (Protocol.Error e)
  | None ->
    let wait_error =
      List.fold_left
        (fun err (i, tr, k) ->
           match err with
           | Some _ -> err
           | None ->
             (match obtain t tr k with
              | Ok st ->
                Protocol.write_response oc
                  (Protocol.Result { index = i; stats = st });
                None
              | Error e -> Some e))
        None waiting
    in
    (match wait_error with
     | Some e -> Protocol.write_response oc (Protocol.Error e)
     | None -> Protocol.write_response oc Protocol.Done)

(* Server-side sweeps reuse the CLI's sweep driver (injected by the
   binary hosting the daemon); results are content-addressed in the
   persistent store under the suite's kernel fingerprint, so a sweep
   over unchanged kernels is answered without re-verifying anything. *)
let handle_sweep t oc ~kind ~apps =
  match t.sweep with
  | None ->
    Protocol.write_response oc
      (Protocol.Error "this daemon has no sweep driver")
  | Some sweep ->
    let suite_digest =
      match locked t (fun () -> t.suite_digest) with
      | Some d -> d
      | None ->
        let d =
          Digest.to_hex
            (Digest.string
               (String.concat "|"
                  (List.map
                     (fun (a : Workloads.App.t) ->
                        Digest.string
                          (Ptx.Printer.kernel_to_string (Workloads.App.kernel a)))
                     Workloads.Suite.all)))
        in
        locked t (fun () -> t.suite_digest <- Some d);
        d
    in
    let rkey =
      Digest.to_hex
        (Digest.string (String.concat "," (suite_digest :: kind :: apps)))
    in
    let cached : (string * bool) option =
      match t.store with
      | Some d -> Store.get_value d ~kind:"report" ~key:rkey
      | None -> None
    in
    (match cached with
     | Some (text, failed) ->
       Protocol.write_response oc (Protocol.Sweep_result { text; failed })
     | None ->
       let outcome =
         try Ok (Domain.join (Domain.spawn (fun () -> sweep ~kind ~apps)))
         with e -> Error (Printexc.to_string e)
       in
       (match outcome with
        | Ok (Some (text, failed)) ->
          (match t.store with
           | Some d -> Store.put_value d ~kind:"report" ~key:rkey (text, failed)
           | None -> ());
          Protocol.write_response oc (Protocol.Sweep_result { text; failed })
        | Ok None ->
          Protocol.write_response oc
            (Protocol.Error (Printf.sprintf "unknown sweep kind %S" kind))
        | Error e -> Protocol.write_response oc (Protocol.Error e)))

let server_stats t =
  let r = Crat.Engine.report t.engine in
  let se, sb, sbud, sh, sm, sev =
    match t.store with
    | None -> (0, 0, 0, 0, 0, 0)
    | Some d ->
      let s = Store.stats d in
      ( s.Store.entries, s.Store.bytes, s.Store.budget, s.Store.hits
      , s.Store.misses, s.Store.evictions )
  in
  locked t (fun () ->
    { Protocol.uptime_s = Unix.gettimeofday () -. t.started
    ; connections = t.connections
    ; requests = t.requests
    ; points = t.points
    ; dedup_hits = t.dedup_hits
    ; sim_runs = r.Crat.Engine.sim_runs
    ; sim_hits = r.Crat.Engine.sim_hits
    ; trace_records = r.Crat.Engine.trace_records
    ; trace_replays = r.Crat.Engine.trace_replays
    ; alloc_runs = r.Crat.Engine.alloc_runs
    ; alloc_hits = r.Crat.Engine.alloc_hits
    ; store_entries = se
    ; store_bytes = sb
    ; store_budget = sbud
    ; store_hits = sh
    ; store_misses = sm
    ; store_evictions = sev
    })

let initiate_stop t =
  locked t (fun () -> t.stop <- true);
  (* closing a listening socket does not wake a thread blocked in
     accept(2) on Linux — poke it with a throwaway connection instead *)
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | fd ->
    (try Unix.connect fd (Unix.ADDR_UNIX t.socket_path)
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let handle t oc = function
  | Protocol.Simulate pts -> handle_simulate t oc pts
  | Protocol.Sweep { kind; apps } -> handle_sweep t oc ~kind ~apps
  | Protocol.Stats ->
    Protocol.write_response oc (Protocol.Stats_result (server_stats t))
  | Protocol.Shutdown ->
    Protocol.write_response oc Protocol.Done;
    initiate_stop t

let handle_conn t fd =
  locked t (fun () -> t.handlers <- t.handlers + 1);
  let finish () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    locked t (fun () -> t.handlers <- t.handlers - 1)
  in
  Fun.protect ~finally:finish (fun () ->
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    set_binary_mode_in ic true;
    set_binary_mode_out oc true;
    let rec loop () =
      match Protocol.read_request ic with
      | req ->
        locked t (fun () -> t.requests <- t.requests + 1);
        (try handle t oc req
         with Bad_request msg ->
           Protocol.write_response oc (Protocol.Error msg));
        (match req with Protocol.Shutdown -> () | _ -> loop ())
      | exception (End_of_file | Sys_error _) -> ()
      | exception Protocol.Protocol_error _ -> ()
      | exception Unix.Unix_error _ -> ()
    in
    (* a half-broken peer must never take the daemon down *)
    try loop () with _ -> ())

(* ---------- lifecycle ---------- *)

let run ?(socket = Protocol.default_socket) ?store_dir ?budget ?(jobs = 1)
    ?(replay = true) ?trace_budget ?sweep () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  (* Never steal the endpoint of a live daemon: probe an existing socket
     file with a connect, and only sweep it away if nobody answers (a
     stale socket left by a killed daemon). Two daemons on one path
     would also end up opening the same store directory, which Store
     explicitly does not coordinate across processes. The probe runs
     before the store opens so a refused start leaves it untouched. *)
  if Sys.file_exists socket then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect probe (Unix.ADDR_UNIX socket) with
      | () -> true
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if alive then
      failwith
        (Printf.sprintf "crat serve: a daemon is already listening on %s"
           socket);
    Sys.remove socket
  end;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX socket);
  Unix.listen fd 64;
  let store = Option.map (fun d -> Store.open_ ?budget d) store_dir in
  let engine = Crat.Engine.create ~jobs ~replay ?trace_budget ?store () in
  let t =
    { engine
    ; store
    ; sweep
    ; lock = Mutex.create ()
    ; cond = Condition.create ()
    ; inflight = Hashtbl.create 64
    ; results = Hashtbl.create 256
    ; launches = Hashtbl.create 32
    ; tlps = Hashtbl.create 32
    ; suite_digest = None
    ; listen_fd = Some fd
    ; socket_path = socket
    ; started = Unix.gettimeofday ()
    ; stop = false
    ; handlers = 0
    ; connections = 0
    ; requests = 0
    ; points = 0
    ; dedup_hits = 0
    }
  in
  let rec accept_loop () =
    if not (locked t (fun () -> t.stop)) then
      match Unix.accept fd with
      | cfd, _ ->
        if locked t (fun () -> t.stop) then
          (try Unix.close cfd with Unix.Unix_error _ -> ())
        else begin
          locked t (fun () -> t.connections <- t.connections + 1);
          ignore (Thread.create (handle_conn t) cfd);
          accept_loop ()
        end
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
      | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
  in
  accept_loop ();
  (* drain: let in-flight connections finish before tearing down *)
  let rec drain n =
    if n > 0 && locked t (fun () -> t.handlers > 0) then begin
      Thread.delay 0.05;
      drain (n - 1)
    end
  in
  drain 200;
  (match t.listen_fd with
   | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
   | None -> ());
  (try Sys.remove t.socket_path with Sys_error _ -> ());
  Option.iter Store.close store
