(* Wire protocol of the crat daemon: length-prefixed frames over a
   Unix-domain socket. A frame is a 4-byte big-endian payload length
   followed by the marshalled message — all message types below are
   closure-free pure data, so [Marshal] round-trips them byte-exactly
   between any two binaries built from this source tree.

   Conversation shape: the client writes one request frame, then reads
   response frames until [Done] (or one terminal [Sweep_result] /
   [Stats_result] / [Error]). [Simulate] responses stream: one [Result]
   frame per point, in completion order (the [index] field maps a result
   back to its request position), then [Done]. *)

(* One simulation point over the built-in workload suite. [regs]
   defaults to the app's nvcc-like default register count, [tlp] to the
   occupancy maximum at that count; [kepler] selects the Kepler-like
   configuration (Fermi-like otherwise). *)
type point =
  { abbr : string
  ; regs : int option
  ; tlp : int option
  ; kepler : bool
  }

let point ?(regs = None) ?(tlp = None) ?(kepler = false) abbr =
  { abbr; regs; tlp; kepler }

type request =
  | Simulate of point list
  | Sweep of { kind : string; apps : string list }
      (** server-side report sweep: [kind] is ["verify"], ["lint"],
          ["sanitize"] or ["equiv"]; [apps = []] means the whole suite *)
  | Stats
  | Shutdown

(* The stats endpoint's payload: daemon counters + engine report +
   persistent-store footprint. *)
type server_stats =
  { uptime_s : float
  ; connections : int
  ; requests : int
  ; points : int  (** simulation points served (including dedup'd ones) *)
  ; dedup_hits : int
      (** points answered by waiting on an identical in-flight request
          from another client instead of computing *)
  ; sim_runs : int
  ; sim_hits : int
  ; trace_records : int
  ; trace_replays : int
  ; alloc_runs : int
  ; alloc_hits : int
  ; store_entries : int
  ; store_bytes : int
  ; store_budget : int
  ; store_hits : int
  ; store_misses : int
  ; store_evictions : int
  }

(* fraction of points that needed no cold functional execution *)
let hit_rate s =
  let total = s.sim_runs + s.sim_hits in
  if total = 0 then 1.0
  else
    float_of_int (s.sim_hits + s.trace_replays) /. float_of_int total

type response =
  | Result of { index : int; stats : Gpusim.Stats.t }
  | Sweep_result of { text : string; failed : bool }
  | Stats_result of server_stats
  | Done
  | Error of string

(* ---------- framing ---------- *)

let max_frame = 256 * 1024 * 1024

exception Protocol_error of string

let write_frame oc (v : 'a) =
  let s = Marshal.to_string v [] in
  output_binary_int oc (String.length s);
  output_string oc s;
  flush oc

let read_frame ic : 'a =
  let n = input_binary_int ic in
  if n < 0 || n > max_frame then
    raise (Protocol_error (Printf.sprintf "bad frame length %d" n));
  let s = really_input_string ic n in
  try (Marshal.from_string s 0 : 'a)
  with Failure msg -> raise (Protocol_error ("unmarshal: " ^ msg))

let write_request oc (r : request) = write_frame oc r
let read_request ic : request = read_frame ic
let write_response oc (r : response) = write_frame oc r
let read_response ic : response = read_frame ic

let default_socket = "crat.sock"
let default_store = "crat-store"
