(** Blocking client for the crat daemon. One [t] is one connection; a
    connection handles any number of sequential requests. Not
    thread-safe — use one connection per thread/process. *)

type t

val connect : ?socket:string -> unit -> (t, string) result

val connect_retry :
  ?socket:string -> ?attempts:int -> unit -> (t, string) result
(** Like {!connect} but polls (50 ms apart, [attempts] times, default
    100) until the daemon answers — for use right after starting one. *)

val close : t -> unit

val simulate_iter :
     t
  -> Protocol.point list
  -> f:(int -> Gpusim.Stats.t -> unit)
  -> (int, string) result
(** Stream the batch: [f index stats] per completed point (completion
    order, [index] is the request position); returns the result count. *)

val simulate :
  t -> Protocol.point list -> (Gpusim.Stats.t array, string) result
(** Batch in, statistics out, in request order. *)

val server_stats : t -> (Protocol.server_stats, string) result

val sweep :
  t -> kind:string -> apps:string list -> (string * bool, string) result
(** Run a server-side report sweep; returns the report text and whether
    it found failures. *)

val shutdown : t -> (unit, string) result
