(** The crat daemon: a long-lived server exposing a {!Crat.Engine.t}
    (optionally backed by a persistent {!Store.t}) to concurrent clients
    over a Unix-domain socket, with cross-client in-flight dedup. See
    {!Protocol} for the wire format. *)

exception Bad_request of string
(** Raised internally for malformed requests (e.g. an unknown app
    abbreviation); surfaces to the client as [Protocol.Error]. *)

val run :
     ?socket:string
  -> ?store_dir:string
  -> ?budget:int
  -> ?jobs:int
  -> ?replay:bool
  -> ?trace_budget:int
  -> ?sweep:(kind:string -> apps:string list -> (string * bool) option)
  -> unit
  -> unit
(** Serve until a [Shutdown] request arrives, then drain connections,
    remove the socket file and close the store. [socket] defaults to
    {!Protocol.default_socket}; [store_dir] (none by default) opens a
    persistent store with [budget] bytes (see {!Store.default_budget});
    [jobs]/[replay]/[trace_budget] configure the engine (daemon default
    [jobs = 1]: parallelism comes from one domain per concurrent client
    batch, not from fan-out inside a batch). [sweep] runs server-side
    report sweeps — it returns [(report_text, failed)], or [None] for an
    unknown kind; results are cached in the store under the suite's
    kernel fingerprint.
    @raise Failure if another daemon already answers on [socket] (a
    stale socket file left by a killed daemon is swept and reused). *)
