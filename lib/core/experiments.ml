let geomean xs =
  match xs with
  | [] -> 1.
  | _ ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0. xs in
    exp (s /. float_of_int (List.length xs))

type comparison =
  { app : Workloads.App.t
  ; max_tlp : Baselines.evaluated
  ; opt_tlp : Baselines.evaluated
  ; crat_local : Baselines.evaluated
  ; crat : Baselines.evaluated
  ; plan : Optimizer.plan
  }

let compare_app ?backend engine cfg app =
  let max_tlp = Baselines.max_tlp ?backend engine cfg app () in
  let opt_tlp = Baselines.opt_tlp ?backend engine cfg app () in
  let crat_local, _ =
    Baselines.crat ?backend ~shared_spilling:false engine cfg app ()
  in
  let crat, plan = Baselines.crat ?backend engine cfg app () in
  { app; max_tlp; opt_tlp; crat_local; crat; plan }

let speedup_vs_opt c e = Baselines.speedup_over ~baseline:c.opt_tlp e

(* ---------- fig 1 ---------- *)

type fig1_row =
  { abbr : string
  ; opt_over_max : float
  ; util_max : float
  ; util_opt : float
  }

let fig1 engine cfg apps =
  Engine.map engine
    (fun app ->
       let m = Baselines.max_tlp engine cfg app () in
       let o = Baselines.opt_tlp engine cfg app () in
       { abbr = app.Workloads.App.abbr
       ; opt_over_max = Baselines.speedup_over ~baseline:m o
       ; util_max = Baselines.register_utilization cfg app m
       ; util_opt = Baselines.register_utilization cfg app o
       })
    apps

let pp_fig1 fmt rows =
  Format.fprintf fmt "Fig 1: thread throttling vs MaxTLP (perf & register utilization)@.";
  Format.fprintf fmt "%-6s %12s %9s %9s@." "app" "OptTLP/Max" "util(Max)" "util(Opt)";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %12.3f %9.2f %9.2f@." r.abbr r.opt_over_max
         r.util_max r.util_opt)
    rows;
  Format.fprintf fmt "geomean speedup %.3f; mean waste %.1f%%@."
    (geomean (List.map (fun r -> r.opt_over_max) rows))
    (100.
     *. (List.fold_left (fun a r -> a +. (r.util_max -. r.util_opt)) 0. rows
         /. float_of_int (max 1 (List.length rows))))

(* ---------- fig 2 ---------- *)

type fig2_point =
  { reg2 : int
  ; tlp2 : int
  ; speedup_vs_max : float
  }

let fig2 engine cfg app =
  let r = Resource.analyze cfg app in
  let m = Baselines.max_tlp engine cfg app () in
  let base = float_of_int (Baselines.cycles m) in
  let stairs = Design_space.stairs cfg r in
  let regs = List.sort_uniq compare (List.map (fun p -> p.Design_space.reg) stairs) in
  (* the whole (reg x TLP) surface is one frontier: submit it at once *)
  let points =
    List.concat_map
      (fun reg ->
         let occ = Gpusim.Occupancy.max_tlp cfg (Resource.usage_at r ~regs:reg) in
         List.init occ (fun i -> { Design_space.reg; tlp = i + 1 }))
      regs
  in
  List.map
    (fun ((p : Design_space.point), (st : Gpusim.Stats.t)) ->
       { reg2 = p.Design_space.reg
       ; tlp2 = p.Design_space.tlp
       ; speedup_vs_max = base /. float_of_int st.Gpusim.Stats.cycles
       })
    (Design_space.evaluate engine cfg app points)

let pp_fig2 fmt points =
  Format.fprintf fmt "Fig 2: design space (speedup vs MaxTLP)@.";
  Format.fprintf fmt "%5s %4s %8s@." "reg" "TLP" "speedup";
  List.iter
    (fun p -> Format.fprintf fmt "%5d %4d %8.3f@." p.reg2 p.tlp2 p.speedup_vs_max)
    points

(* ---------- fig 3 ---------- *)

type fig3_row =
  { label3 : string
  ; reg3 : int
  ; tlp3 : int
  ; perf_vs_max : float
  ; l1_hit : float
  ; mem_stall : float
  ; reg_util : float
  }

let row_of cfg app label (e : Baselines.evaluated) base =
  { label3 = label
  ; reg3 = e.Baselines.reg
  ; tlp3 = e.Baselines.tlp
  ; perf_vs_max = base /. float_of_int (Baselines.cycles e)
  ; l1_hit = Gpusim.Stats.l1_hit_rate e.Baselines.stats
  ; mem_stall = Gpusim.Stats.mem_stall_fraction e.Baselines.stats
  ; reg_util = Baselines.register_utilization cfg app e
  }

let fig3 engine cfg app =
  let c = compare_app engine cfg app in
  let base = float_of_int (Baselines.cycles c.max_tlp) in
  let r = c.plan.Optimizer.resource in
  (* OptTLP+Reg: keep the throttled TLP, raise registers to the stair cap *)
  let opt_reg_row =
    match Design_space.max_reg_at_tlp cfg r ~tlp:c.opt_tlp.Baselines.tlp with
    | None -> []
    | Some reg ->
      let a = Engine.allocate engine app ~reg_limit:reg in
      let input = Workloads.App.default_input app in
      let stats =
        Engine.simulate engine
          (Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~input ())
          cfg ~tlp:c.opt_tlp.Baselines.tlp
      in
      let e =
        { Baselines.label = "OptTLP+Reg"
        ; reg
        ; tlp = c.opt_tlp.Baselines.tlp
        ; stats
        ; alloc = a
        ; input
        }
      in
      [ row_of cfg app "OptTLP+Reg" e base ]
  in
  [ row_of cfg app "MaxTLP" c.max_tlp base
  ; row_of cfg app "OptTLP" c.opt_tlp base
  ]
  @ opt_reg_row
  @ [ row_of cfg app "CRAT" c.crat base ]

let pp_fig3 fmt rows =
  Format.fprintf fmt "Fig 3: selected design points@.";
  Format.fprintf fmt "%-11s %5s %4s %8s %7s %7s %7s@." "solution" "reg" "TLP"
    "perf" "L1hit" "stall" "reguse";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-11s %5d %4d %8.3f %7.3f %7.3f %7.2f@." r.label3
         r.reg3 r.tlp3 r.perf_vs_max r.l1_hit r.mem_stall r.reg_util)
    rows

(* ---------- fig 5 ---------- *)

type fig5_row =
  { abbr : string
  ; hit_max : float
  ; hit_opt : float
  ; stall_max : float
  ; stall_opt : float
  }

let fig5 engine cfg apps =
  Engine.map engine
    (fun app ->
       let m = Baselines.max_tlp engine cfg app () in
       let o = Baselines.opt_tlp engine cfg app () in
       { abbr = app.Workloads.App.abbr
       ; hit_max = Gpusim.Stats.l1_hit_rate m.Baselines.stats
       ; hit_opt = Gpusim.Stats.l1_hit_rate o.Baselines.stats
       ; stall_max = Gpusim.Stats.mem_stall_fraction m.Baselines.stats
       ; stall_opt = Gpusim.Stats.mem_stall_fraction o.Baselines.stats
       })
    apps

let pp_fig5 fmt rows =
  Format.fprintf fmt "Fig 5: impact of thread throttling on L1 (hit rate & congestion stalls)@.";
  Format.fprintf fmt "%-6s %9s %9s %10s %10s@." "app" "hit(Max)" "hit(Opt)"
    "stall(Max)" "stall(Opt)";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %9.3f %9.3f %10.3f %10.3f@." r.abbr r.hit_max
         r.hit_opt r.stall_max r.stall_opt)
    rows

(* ---------- fig 6 ---------- *)

type fig6_row =
  { reg6 : int
  ; tlp6 : int
  ; instr_count : int
  }

let reg_sweep (r : Resource.t) cfg =
  let lo = r.Resource.min_reg in
  let hi = min r.Resource.max_reg cfg.Gpusim.Config.max_regs_per_thread in
  let rec collect reg acc =
    if reg > hi then List.rev acc else collect (reg + 3) (reg :: acc)
  in
  collect lo []

let fig6 engine cfg app =
  let r = Resource.analyze cfg app in
  Engine.map engine
    (fun reg ->
       let a = Engine.allocate engine app ~reg_limit:reg in
       { reg6 = reg
       ; tlp6 = Gpusim.Occupancy.max_tlp cfg (Resource.usage_at r ~regs:reg)
       ; instr_count = Ptx.Kernel.instr_count a.Regalloc.Allocator.kernel
       })
    (reg_sweep r cfg)

let pp_fig6 fmt rows =
  Format.fprintf fmt "Fig 6: register per-thread vs TLP and instruction count@.";
  Format.fprintf fmt "%5s %4s %8s@." "reg" "TLP" "instrs";
  List.iter
    (fun r -> Format.fprintf fmt "%5d %4d %8d@." r.reg6 r.tlp6 r.instr_count)
    rows

(* ---------- fig 7 ---------- *)

type fig7_row =
  { abbr : string
  ; reg_util7 : float
  ; shm_util7 : float
  }

let fig7 cfg apps =
  List.map
    (fun app ->
       let r = Resource.analyze cfg app in
       let tlp = r.Resource.max_tlp in
       let u = Resource.usage_at r ~regs:r.Resource.default_regs in
       { abbr = app.Workloads.App.abbr
       ; reg_util7 = Gpusim.Occupancy.register_utilization cfg u ~tlp
       ; shm_util7 = Gpusim.Occupancy.shared_utilization cfg u ~tlp
       })
    apps

let pp_fig7 fmt rows =
  Format.fprintf fmt "Fig 7: register vs shared-memory utilization at MaxTLP@.";
  Format.fprintf fmt "%-6s %9s %9s@." "app" "reg" "shared";
  List.iter
    (fun r -> Format.fprintf fmt "%-6s %9.2f %9.2f@." r.abbr r.reg_util7 r.shm_util7)
    rows;
  let avg f = List.fold_left (fun a r -> a +. f r) 0. rows /. float_of_int (max 1 (List.length rows)) in
  Format.fprintf fmt "mean: regs %.1f%%, shared %.1f%%@."
    (100. *. avg (fun r -> r.reg_util7))
    (100. *. avg (fun r -> r.shm_util7))

(* ---------- fig 8 ---------- *)

type fig8_row =
  { label8 : string
  ; speedup8 : float
  }

let fig8 engine cfg app =
  let r = Resource.analyze cfg app in
  let input = Workloads.App.default_input app in
  let build ?(policy = `Off) ?(preference = `Cheap_first) ~label reg =
    let tlp = Gpusim.Occupancy.max_tlp cfg (Resource.usage_at r ~regs:reg) in
    let shared_policy =
      match policy with
      | `Off -> `Off
      | `Shared ->
        `Spare
          (Gpusim.Occupancy.spare_shared_bytes cfg
             (Resource.usage_at r ~regs:reg)
             ~tlp)
    in
    let a =
      Regalloc.Allocator.allocate ~shared_policy ~spill_preference:preference
        ~block_size:app.Workloads.App.block_size ~reg_limit:reg
        (Workloads.App.kernel app)
    in
    (label, a.Regalloc.Allocator.kernel, tlp)
  in
  let base_reg = min 48 r.Resource.max_reg in
  let builds =
    [ build ~label:(Printf.sprintf "Reg=%d" base_reg) base_reg
    ; build ~label:"Reg=40" 40
    ; build ~label:"Reg=32" 32
    ; build ~policy:`Shared ~preference:`Expensive_first
        ~label:"Reg=32+shm, spill var1 (high-frequency)" 32
    ; build ~policy:`Shared ~preference:`Cheap_first
        ~label:"Reg=32+shm, spill var2 (Algorithm 1 default)" 32
    ]
  in
  let stats =
    Engine.simulate_batch engine
      (List.map
         (fun (_, kernel, tlp) ->
            (Workloads.App.launch app ~kernel ~input (), cfg, tlp))
         builds)
  in
  let rows =
    List.map2
      (fun (label, _, _) (st : Gpusim.Stats.t) -> (label, st.Gpusim.Stats.cycles))
      builds stats
  in
  match rows with
  | [] -> []
  | (_, base) :: _ ->
    List.map
      (fun (label8, c) -> { label8; speedup8 = float_of_int base /. float_of_int c })
      rows

let pp_fig8 fmt rows =
  Format.fprintf fmt "Fig 8: register limit + shared-memory spill choice (FDTD)@.";
  List.iter
    (fun r -> Format.fprintf fmt "  %-40s %8.3f@." r.label8 r.speedup8)
    rows

(* ---------- fig 11 ---------- *)

let fig11 engine cfg app =
  let r = Resource.analyze cfg app in
  let pr = Opttlp.profile engine cfg app ~max_tlp:r.Resource.max_tlp () in
  (Design_space.stairs cfg r, Design_space.prune cfg r ~opt_tlp:pr.Opttlp.opt_tlp)

let pp_fig11 fmt (stairs, pruned) =
  Format.fprintf fmt "Fig 11: design-space staircase and pruning@.";
  Format.fprintf fmt "  stairs :";
  List.iter (fun p -> Format.fprintf fmt " %a" Design_space.pp_point p) stairs;
  Format.fprintf fmt "@.  pruned :";
  List.iter (fun p -> Format.fprintf fmt " %a" Design_space.pp_point p) pruned;
  Format.fprintf fmt "@."

(* ---------- fig 12 ---------- *)

type fig12_row =
  { reg12 : int
  ; bytes_reference : int
  ; bytes_crat : int
  }

let fig12 engine cfg app =
  let r = Resource.analyze cfg app in
  Engine.map engine
    (fun reg ->
       let cb = Engine.allocate engine app ~reg_limit:reg in
       let ls =
         Engine.allocate ~strategy:Regalloc.Allocator.Linear_scan engine app
           ~reg_limit:reg
       in
       { reg12 = reg
       ; bytes_reference = Regalloc.Allocator.spill_bytes ls
       ; bytes_crat = Regalloc.Allocator.spill_bytes cb
       })
    (reg_sweep r cfg)

let pp_fig12 fmt rows =
  Format.fprintf fmt "Fig 12: spill load/store bytes, reference (linear scan) vs CRAT@.";
  Format.fprintf fmt "%5s %10s %10s@." "reg" "reference" "CRAT";
  List.iter
    (fun r -> Format.fprintf fmt "%5d %10d %10d@." r.reg12 r.bytes_reference r.bytes_crat)
    rows

(* ---------- fig 13/14/15/16 ---------- *)

type fig13_row =
  { abbr : string
  ; s_max : float
  ; s_crat_local : float
  ; s_crat : float
  }

let fig13 ?backend engine cfg apps =
  (* apps are independent: one full comparison per domain *)
  let comps = Engine.map engine (compare_app ?backend engine cfg) apps in
  let rows =
    List.map
      (fun c ->
         { abbr = c.app.Workloads.App.abbr
         ; s_max = speedup_vs_opt c c.max_tlp
         ; s_crat_local = speedup_vs_opt c c.crat_local
         ; s_crat = speedup_vs_opt c c.crat
         })
      comps
  in
  (rows, comps)

let pp_fig13 fmt rows =
  Format.fprintf fmt "Fig 13: performance normalised to OptTLP@.";
  Format.fprintf fmt "%-6s %8s %8s %11s %8s@." "app" "MaxTLP" "OptTLP" "CRAT-local" "CRAT";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %8.3f %8.3f %11.3f %8.3f@." r.abbr r.s_max 1.0
         r.s_crat_local r.s_crat)
    rows;
  Format.fprintf fmt "geomean: CRAT-local %.3f, CRAT %.3f (max %.2f)@."
    (geomean (List.map (fun r -> r.s_crat_local) rows))
    (geomean (List.map (fun r -> r.s_crat) rows))
    (List.fold_left (fun a r -> Float.max a r.s_crat) 0. rows)

type fig14_row =
  { abbr : string
  ; tlp_max : int
  ; tlp_crat : int
  }

let fig14 comps =
  List.map
    (fun c ->
       { abbr = c.app.Workloads.App.abbr
       ; tlp_max = c.max_tlp.Baselines.tlp
       ; tlp_crat = c.crat.Baselines.tlp
       })
    comps

let pp_fig14 fmt rows =
  Format.fprintf fmt "Fig 14: selected TLP@.";
  Format.fprintf fmt "%-6s %7s %6s@." "app" "MaxTLP" "CRAT";
  List.iter
    (fun r -> Format.fprintf fmt "%-6s %7d %6d@." r.abbr r.tlp_max r.tlp_crat)
    rows;
  let avg f = List.fold_left (fun a r -> a + f r) 0 rows in
  Format.fprintf fmt "mean: MaxTLP %.1f, CRAT %.1f@."
    (float_of_int (avg (fun r -> r.tlp_max)) /. float_of_int (max 1 (List.length rows)))
    (float_of_int (avg (fun r -> r.tlp_crat)) /. float_of_int (max 1 (List.length rows)))

type fig15_row =
  { abbr : string
  ; util_opt : float
  ; util_crat : float
  }

let fig15 cfg comps =
  List.map
    (fun c ->
       { abbr = c.app.Workloads.App.abbr
       ; util_opt = Baselines.register_utilization cfg c.app c.opt_tlp
       ; util_crat = Baselines.register_utilization cfg c.app c.crat
       })
    comps

let pp_fig15 fmt rows =
  Format.fprintf fmt "Fig 15: register utilization@.";
  Format.fprintf fmt "%-6s %8s %8s@." "app" "OptTLP" "CRAT";
  List.iter
    (fun r -> Format.fprintf fmt "%-6s %8.2f %8.2f@." r.abbr r.util_opt r.util_crat)
    rows

type fig16_row =
  { abbr : string
  ; local_ratio : float
  }

let fig16 comps =
  List.filter_map
    (fun c ->
       let l = Gpusim.Stats.local_accesses c.crat_local.Baselines.stats in
       let f = Gpusim.Stats.local_accesses c.crat.Baselines.stats in
       if l = 0 then None
       else
         Some
           { abbr = c.app.Workloads.App.abbr
           ; local_ratio = float_of_int f /. float_of_int l
           })
    comps

let pp_fig16 fmt rows =
  Format.fprintf fmt "Fig 16: local-memory accesses, CRAT normalised to CRAT-local@.";
  List.iter (fun r -> Format.fprintf fmt "  %-6s %8.3f@." r.abbr r.local_ratio) rows;
  if rows <> [] then
    Format.fprintf fmt "mean reduction %.0f%%@."
      (100.
       *. (1.
           -. List.fold_left (fun a r -> a +. r.local_ratio) 0. rows
              /. float_of_int (List.length rows)))

(* ---------- fig 18 ---------- *)

type fig18_row =
  { abbr : string
  ; profile_input : string
  ; eval_input : string
  ; speedup : float
  }

let fig18 engine cfg apps =
  List.concat
    (Engine.map engine
       (fun (app : Workloads.App.t) ->
          let inputs = app.Workloads.App.inputs in
          List.concat_map
            (fun pi ->
               let _, plan =
                 Baselines.crat ~profile_input:pi engine cfg app ~input:pi ()
               in
               let c = plan.Optimizer.chosen in
               (* the chosen build across every evaluation input: one batch *)
               let stats =
                 Engine.simulate_batch engine
                   (List.map
                      (fun ei ->
                         ( Workloads.App.launch app
                             ~kernel:c.Optimizer.alloc.Regalloc.Allocator.kernel
                             ~input:ei ()
                         , cfg
                         , c.Optimizer.point.Design_space.tlp ))
                      inputs)
               in
               List.map2
                 (fun ei (st : Gpusim.Stats.t) ->
                    let o = Baselines.opt_tlp engine cfg app ~input:ei () in
                    { abbr = app.Workloads.App.abbr
                    ; profile_input = pi.Workloads.App.ilabel
                    ; eval_input = ei.Workloads.App.ilabel
                    ; speedup =
                        float_of_int (Baselines.cycles o)
                        /. float_of_int st.Gpusim.Stats.cycles
                    })
                 inputs stats)
            inputs)
       apps)

let pp_fig18 fmt rows =
  Format.fprintf fmt "Fig 18: input sensitivity (CRAT/OptTLP; profile input x eval input)@.";
  Format.fprintf fmt "%-6s %-10s %-10s %8s@." "app" "profiled" "evaluated" "speedup";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %-10s %-10s %8.3f@." r.abbr r.profile_input
         r.eval_input r.speedup)
    rows

(* ---------- fig 20 ---------- *)

type fig20_row =
  { abbr : string
  ; s_profile : float
  ; s_static : float
  ; opt_profiled : int
  ; opt_static : int
  }

let fig20 engine cfg apps =
  Engine.map engine
    (fun app ->
       let o = Baselines.opt_tlp engine cfg app () in
       let cp, plan_p = Baselines.crat engine cfg app () in
       let cs, plan_s = Baselines.crat ~mode:`Static engine cfg app () in
       { abbr = app.Workloads.App.abbr
       ; s_profile = Baselines.speedup_over ~baseline:o cp
       ; s_static = Baselines.speedup_over ~baseline:o cs
       ; opt_profiled = plan_p.Optimizer.opt_tlp
       ; opt_static = plan_s.Optimizer.opt_tlp
       })
    apps

let pp_fig20 fmt rows =
  Format.fprintf fmt "Fig 20: CRAT-profile vs CRAT-static@.";
  Format.fprintf fmt "%-6s %9s %9s %7s %7s@." "app" "profile" "static" "optP" "optS";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %9.3f %9.3f %7d %7d@." r.abbr r.s_profile
         r.s_static r.opt_profiled r.opt_static)
    rows;
  Format.fprintf fmt "geomean: profile %.3f, static %.3f@."
    (geomean (List.map (fun r -> r.s_profile) rows))
    (geomean (List.map (fun r -> r.s_static) rows))

(* ---------- energy ---------- *)

type energy_row =
  { abbr : string
  ; ratio : float
  }

let energy comps =
  List.map
    (fun c ->
       let e stats = Energy.total (Energy.of_stats stats) in
       { abbr = c.app.Workloads.App.abbr
       ; ratio = e c.crat.Baselines.stats /. e c.opt_tlp.Baselines.stats
       })
    comps

let pp_energy fmt rows =
  Format.fprintf fmt "Energy: CRAT normalised to OptTLP@.";
  List.iter (fun r -> Format.fprintf fmt "  %-6s %8.3f@." r.abbr r.ratio) rows;
  Format.fprintf fmt "mean saving %.1f%%@."
    (100.
     *. (1.
         -. List.fold_left (fun a r -> a +. r.ratio) 0. rows
            /. float_of_int (max 1 (List.length rows))))

(* ---------- overhead ---------- *)

type overhead_row =
  { abbr : string
  ; profiling_runs : int
  ; profiling_seconds : float
  ; static_seconds : float
  }

let overhead engine cfg apps =
  List.map
    (fun app ->
       let r = Resource.analyze cfg app in
       let a = Engine.allocate engine app ~reg_limit:app.Workloads.App.default_regs in
       (* ~cache:false bypasses the store so the profiling cost is
          actually paid here *)
       let t0 = Sys.time () in
       let _ =
         Opttlp.profile engine cfg app ~cache:false
           ~kernel:a.Regalloc.Allocator.kernel ~max_tlp:r.Resource.max_tlp ()
       in
       let t1 = Sys.time () in
       let _ = Opttlp.estimate_static cfg app ~max_tlp:r.Resource.max_tlp () in
       let t2 = Sys.time () in
       { abbr = app.Workloads.App.abbr
       ; profiling_runs = r.Resource.max_tlp
       ; profiling_seconds = t1 -. t0
       ; static_seconds = t2 -. t1
       })
    apps

let pp_overhead fmt rows =
  Format.fprintf fmt "Overhead: OptTLP by profiling vs static analysis@.";
  Format.fprintf fmt "%-6s %6s %12s %12s@." "app" "runs" "profiling(s)" "static(s)";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %6d %12.2f %12.4f@." r.abbr r.profiling_runs
         r.profiling_seconds r.static_seconds)
    rows

(* ---------- table 1 ---------- *)

type tab1_row =
  { abbr : string
  ; resource : Resource.t
  ; opt_profiled : int
  ; opt_static : int
  }

let tab1 engine cfg apps =
  Engine.map engine
    (fun app ->
       let r = Resource.analyze cfg app in
       let p = Opttlp.profile engine cfg app ~max_tlp:r.Resource.max_tlp () in
       let s = Opttlp.estimate_static cfg app ~max_tlp:r.Resource.max_tlp () in
       { abbr = app.Workloads.App.abbr
       ; resource = r
       ; opt_profiled = p.Opttlp.opt_tlp
       ; opt_static = s
       })
    apps

let pp_tab1 fmt rows =
  Format.fprintf fmt "Table 1: collected resource-usage parameters@.";
  Format.fprintf fmt "%-6s %7s %7s %6s %8s %7s %8s %8s@." "app" "MaxReg"
    "MinReg" "Block" "ShmSize" "MaxTLP" "OptTLP" "OptTLP*";
  List.iter
    (fun r ->
       let res = r.resource in
       Format.fprintf fmt "%-6s %7d %7d %6d %8d %7d %8d %8d@." r.abbr
         res.Resource.max_reg res.Resource.min_reg res.Resource.block_size
         res.Resource.shm_size res.Resource.max_tlp r.opt_profiled r.opt_static)
    rows;
  Format.fprintf fmt "(OptTLP* = static estimate)@."

(* ---------- ablations ---------- *)

type abl_sched_row =
  { abbr : string
  ; gto_cycles : int
  ; lrr_cycles : int
  }

let ablation_scheduler engine cfg apps =
  Engine.map engine
    (fun (app : Workloads.App.t) ->
       let o = Baselines.opt_tlp engine cfg app () in
       let run scheduler =
         let launch =
           Workloads.App.launch app
             ~kernel:o.Baselines.alloc.Regalloc.Allocator.kernel
             ~tlp:o.Baselines.tlp ~input:o.Baselines.input ()
         in
         (Gpusim.Sm.run ~scheduler cfg launch).Gpusim.Stats.cycles
       in
       { abbr = app.Workloads.App.abbr
       ; gto_cycles = run `Gto
       ; lrr_cycles = run `Lrr
       })
    apps

let pp_ablation_scheduler fmt rows =
  Format.fprintf fmt "Ablation: GTO vs LRR warp scheduling at OptTLP@.";
  Format.fprintf fmt "%-6s %10s %10s %8s@." "app" "GTO" "LRR" "LRR/GTO";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %10d %10d %8.3f@." r.abbr r.gto_cycles
         r.lrr_cycles
         (float_of_int r.lrr_cycles /. float_of_int r.gto_cycles))
    rows

type abl_chunk_row =
  { chunk : int
  ; shm_insts : int
  ; local_insts : int
  ; cycles : int
  }

let ablation_chunk engine cfg (app : Workloads.App.t) ~reg =
  let r = Resource.analyze cfg app in
  let tlp = Gpusim.Occupancy.max_tlp cfg (Resource.usage_at r ~regs:reg) in
  let spare =
    Gpusim.Occupancy.spare_shared_bytes cfg (Resource.usage_at r ~regs:reg) ~tlp
  in
  let input = Workloads.App.default_input app in
  let builds =
    List.map
      (fun chunk ->
         ( chunk
         , Regalloc.Allocator.allocate ~shared_policy:(`Spare spare)
             ~shared_chunk:chunk ~block_size:app.Workloads.App.block_size
             ~reg_limit:reg (Workloads.App.kernel app) ))
      [ 1; 4; 1000 ]
  in
  let stats =
    Engine.simulate_batch engine
      (List.map
         (fun (_, a) ->
            ( Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel
                ~input ()
            , cfg
            , tlp ))
         builds)
  in
  List.map2
    (fun (chunk, a) (st : Gpusim.Stats.t) ->
       { chunk
       ; shm_insts = a.Regalloc.Allocator.stats.Regalloc.Spill.num_shared
       ; local_insts = a.Regalloc.Allocator.stats.Regalloc.Spill.num_local
       ; cycles = st.Gpusim.Stats.cycles
       })
    builds stats

let pp_ablation_chunk fmt rows =
  Format.fprintf fmt
    "Ablation: Algorithm 1 sub-stack granularity (1000 = whole-type stacks, the paper)@.";
  Format.fprintf fmt "%6s %10s %10s %10s@." "chunk" "shm-insts" "local" "cycles";
  List.iter
    (fun r ->
       Format.fprintf fmt "%6d %10d %10d %10d@." r.chunk r.shm_insts r.local_insts
         r.cycles)
    rows

type abl_type_row =
  { abbr : string
  ; colors_strict : int
  ; colors_loose : int
  ; waste_events : int
  }

let ablation_type_strict apps =
  List.map
    (fun (app : Workloads.App.t) ->
       let k = Workloads.App.kernel app in
       let flow = Cfg.Flow.of_kernel k in
       let live = Cfg.Liveness.compute flow in
       let graph = Regalloc.Interference.build flow live in
       let du = Cfg.Defuse.compute flow in
       let cost r =
         match Ptx.Reg.Map.find_opt r du with
         | Some s -> s.Cfg.Defuse.weighted
         | None -> 0.
       in
       let color strict =
         Regalloc.Coloring.color ~type_strict:strict ~graph ~cls:Ptx.Types.C32
           ~k:256 ~spill_cost:cost ()
       in
       let s = color true and l = color false in
       { abbr = app.Workloads.App.abbr
       ; colors_strict = s.Regalloc.Coloring.colors_used
       ; colors_loose = l.Regalloc.Coloring.colors_used
       ; waste_events = s.Regalloc.Coloring.type_waste
       })
    apps

let pp_ablation_type_strict fmt rows =
  Format.fprintf fmt
    "Ablation: PTX type-affinity in colouring (paper Sec. 5.2 register waste)@.";
  Format.fprintf fmt "%-6s %8s %8s %8s@." "app" "strict" "loose" "waste";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %8d %8d %8d@." r.abbr r.colors_strict
         r.colors_loose r.waste_events)
    rows

type abl_alloc_row =
  { variant : string
  ; instrs : int
  ; local_insts : int
  ; remat_insts : int
  ; cycles : int
  }

let ablation_allocator engine cfg (app : Workloads.App.t) ~reg =
  let r = Resource.analyze cfg app in
  let tlp = Gpusim.Occupancy.max_tlp cfg (Resource.usage_at r ~regs:reg) in
  let input = Workloads.App.default_input app in
  let builds =
    List.map
      (fun (variant, coalesce, remat) ->
         ( variant
         , Regalloc.Allocator.allocate ~coalesce ~remat
             ~block_size:app.Workloads.App.block_size ~reg_limit:reg
             (Workloads.App.kernel app) ))
      [ ("paper", false, false)
      ; ("+coalesce", true, false)
      ; ("+remat", false, true)
      ; ("+both", true, true)
      ]
  in
  let stats =
    Engine.simulate_batch engine
      (List.map
         (fun (_, a) ->
            ( Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel
                ~input ()
            , cfg
            , tlp ))
         builds)
  in
  List.map2
    (fun (variant, a) (st : Gpusim.Stats.t) ->
       { variant
       ; instrs = Ptx.Kernel.instr_count a.Regalloc.Allocator.kernel
       ; local_insts = a.Regalloc.Allocator.stats.Regalloc.Spill.num_local
       ; remat_insts = a.Regalloc.Allocator.stats.Regalloc.Spill.num_remat
       ; cycles = st.Gpusim.Stats.cycles
       })
    builds stats

let pp_ablation_allocator fmt rows =
  Format.fprintf fmt
    "Ablation: allocator extensions (copy coalescing, rematerialisation)@.";
  Format.fprintf fmt "%-10s %8s %8s %8s %10s@." "variant" "instrs" "local"
    "remat" "cycles";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-10s %8d %8d %8d %10d@." r.variant r.instrs
         r.local_insts r.remat_insts r.cycles)
    rows

(* ---------- multi-SM scaling ---------- *)

type gpu_scale_row =
  { sms : int
  ; cycles : int
  ; ipc : float
  }

let gpu_scaling engine cfg (app : Workloads.App.t) ~tlp =
  (* the single-SM experiments model one SM's *share* of DRAM bandwidth;
     a whole-GPU run exposes the full pipe, shared between SMs *)
  let cfg =
    { cfg with
      Gpusim.Config.dram_bytes_per_cycle =
        cfg.Gpusim.Config.dram_bytes_per_cycle * cfg.Gpusim.Config.num_sms
    }
  in
  let input = Workloads.App.default_input app in
  let kernel =
    (Engine.allocate engine app ~reg_limit:app.Workloads.App.default_regs)
      .Regalloc.Allocator.kernel
  in
  Engine.map engine
    (fun sms ->
       let grid = sms * input.Workloads.App.num_blocks in
       let mem = Workloads.App.memory app { input with Workloads.App.num_blocks = grid } in
       let r =
         Gpusim.Gpu.run ~sms cfg
           (Gpusim.Launch.make ~kernel
              ~block_size:app.Workloads.App.block_size ~num_blocks:grid
              ~tlp_limit:tlp
              ~params:
                (Workloads.App.params app
                   { input with Workloads.App.num_blocks = grid })
              mem)
       in
       { sms; cycles = r.Gpusim.Gpu.total_cycles; ipc = Gpusim.Gpu.aggregate_ipc r })
    [ 1; 2; 4; 8; 15 ]

let pp_gpu_scaling fmt rows =
  Format.fprintf fmt
    "Multi-SM scaling (work per SM held constant; shared L2/DRAM)@.";
  Format.fprintf fmt "%5s %10s %8s@." "SMs" "cycles" "IPC";
  List.iter
    (fun r -> Format.fprintf fmt "%5d %10d %8.2f@." r.sms r.cycles r.ipc)
    rows

(* ---------- cache-bypassing extension ---------- *)

type bypass_row =
  { label_b : string
  ; tlp_b : int
  ; cycles_b : int
  ; l1_hit_b : float
  }

let extension_bypass engine cfg (app : Workloads.App.t) =
  let input = Workloads.App.default_input app in
  let m = Baselines.max_tlp engine cfg app () in
  let c, _plan = Baselines.crat engine cfg app () in
  let run label (e : Baselines.evaluated) bypass =
    (* bypass runs are not memoized: they use the raw simulator hook *)
    let stats =
      if bypass then
        Gpusim.Sm.run ~bypass_global:true cfg
          (Workloads.App.launch app
             ~kernel:e.Baselines.alloc.Regalloc.Allocator.kernel
             ~tlp:e.Baselines.tlp ~input ())
      else e.Baselines.stats
    in
    { label_b = label
    ; tlp_b = e.Baselines.tlp
    ; cycles_b = stats.Gpusim.Stats.cycles
    ; l1_hit_b = Gpusim.Stats.l1_hit_rate stats
    }
  in
  [ run "MaxTLP" m false
  ; run "MaxTLP+bypass" m true
  ; run "CRAT" c false
  ; run "CRAT+bypass" c true
  ]

let pp_extension_bypass fmt rows =
  Format.fprintf fmt
    "Extension: CRAT composed with static L1 bypassing of global traffic@.";
  Format.fprintf fmt "%-15s %4s %10s %7s@." "technique" "TLP" "cycles" "L1hit";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-15s %4d %10d %7.3f@." r.label_b r.tlp_b r.cycles_b
         r.l1_hit_b)
    rows

(* ---------- dynamic throttling baseline ---------- *)

type dyn_row =
  { abbr : string
  ; max_cycles : int
  ; dyn_cycles : int
  ; opt_cycles : int
  ; crat_cycles : int
  }

let dynamic_tlp engine cfg apps =
  Engine.map engine
    (fun (app : Workloads.App.t) ->
       let m = Baselines.max_tlp engine cfg app () in
       let o = Baselines.opt_tlp engine cfg app () in
       let c, _ = Baselines.crat engine cfg app () in
       let dyn =
         Gpusim.Sm.run ~dynamic_tlp:true cfg
           (Workloads.App.launch app
              ~kernel:m.Baselines.alloc.Regalloc.Allocator.kernel
              ~tlp:m.Baselines.tlp ~input:m.Baselines.input ())
       in
       { abbr = app.Workloads.App.abbr
       ; max_cycles = Baselines.cycles m
       ; dyn_cycles = dyn.Gpusim.Stats.cycles
       ; opt_cycles = Baselines.cycles o
       ; crat_cycles = Baselines.cycles c
       })
    apps

let pp_dynamic_tlp fmt rows =
  Format.fprintf fmt
    "Dynamic throttling (DynCTA-style controller) vs offline OptTLP vs CRAT@.";
  Format.fprintf fmt "%-6s %10s %10s %10s %10s@." "app" "MaxTLP" "DynTLP"
    "OptTLP" "CRAT";
  List.iter
    (fun r ->
       Format.fprintf fmt "%-6s %10d %10d %10d %10d@." r.abbr r.max_cycles
         r.dyn_cycles r.opt_cycles r.crat_cycles)
    rows
