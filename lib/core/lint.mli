(** The [crat lint] driver: static performance advisor over the workload
    suite, plus the differential honesty check against the simulator.

    [lint] runs {!Verify.Advisor} on an application's kernel with only
    launch facts that are known statically (block size, register
    budget) — the report one would get from the PTX alone.

    [validate] re-runs the analysis with the full launch description of
    one input (grid size, parameter values), executes that launch
    through the reference interpreter with per-pc counters
    ({!Gpusim.Profile}), and holds the static claims to the observed
    behaviour:

    - every dynamic global/local/shared access and every executed
      conditional branch must have a static record at its pc;
    - a warp access never touches more L1-line segments than the static
      segment bound claims (so a "must-coalesced" access shows zero
      extra transactions);
    - a shared access never exceeds the claimed bank-conflict degree;
    - a branch the advisor proved uniform never splits the warp.

    Any violation is returned as a human-readable failure line; an empty
    list means the advisor was honest on that launch. *)

val lint :
  ?cfg:Gpusim.Config.t -> ?regs:int -> Workloads.App.t -> Verify.Advisor.report
(** Static-only advisor report. [regs] (default: the app's
    [default_regs]) arms the P101 budget check; [cfg] (default
    {!Gpusim.Config.fermi}) supplies warp size, L1-line bytes and
    shared-bank count. *)

val validate :
  ?cfg:Gpusim.Config.t ->
  ?input:Workloads.App.input ->
  Workloads.App.t ->
  Verify.Advisor.report * string list
(** Differential validation on one input (default: the app's default
    input). Returns the launch-specialised report and the list of
    violated claims (empty = honest). *)
