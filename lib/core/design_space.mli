(** The (register per-thread, TLP) design space and its pruning
    (paper Section 4.2, Figure 11).

    Points form a staircase: each TLP level admits a range of register
    counts, and only the rightmost point of each stair can be optimal
    (same TLP, more registers is never worse). Points whose TLP exceeds
    OptTLP thrash the L1 and are discarded. *)

type point =
  { reg : int
  ; tlp : int
  }

val full : Gpusim.Config.t -> Resource.t -> point list
(** Every feasible point with [MinReg <= reg <= MaxReg] and
    [1 <= TLP <= occupancy(reg)]. For plotting Figure 11. *)

val stairs : Gpusim.Config.t -> Resource.t -> point list
(** The rightmost point of each stair: for each achievable TLP, the
    largest register count that still sustains it (clamped to
    [MaxReg]). TLP descending. *)

val prune : Gpusim.Config.t -> Resource.t -> opt_tlp:int -> point list
(** {!stairs} restricted to [TLP <= opt_tlp] — the candidate solutions
    handed to register allocation. *)

val max_reg_at_tlp : Gpusim.Config.t -> Resource.t -> tlp:int -> int option
(** Largest per-thread register count sustaining [tlp] concurrent
    blocks, within [[MinReg, MaxReg]] and the hardware cap. *)

val pp_point : Format.formatter -> point -> unit

val evaluate :
  Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> ?input:Workloads.App.input
  -> point list
  -> (point * Gpusim.Stats.t) list
(** Batch-evaluate a frontier of points with the default (non-CRAT)
    allocation at each register count: allocations fan across the
    engine's domains, and all simulations are submitted as one batch.
    Results keep the input order. *)
