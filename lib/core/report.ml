type experiment =
  { id : string
  ; descr : string
  ; wall_s : float
  ; job_wall_s : float
  ; sim_runs : int
  ; sim_hits : int
  ; alloc_runs : int
  ; alloc_hits : int
  ; max_queue_depth : int
  ; batches : int
  }

type sanitizer =
  { apps : int
  ; accesses : int
  ; proven : int
  ; residual : int
  ; san_seen : int
  ; san_checked : int
  ; san_violations : int
  }

type t =
  { jobs : int
  ; total_wall_s : float
  ; engine : Engine.report
  ; sanitizer : sanitizer option
  ; experiments : experiment list
  }

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string b "\\\""
       | '\\' -> Buffer.add_string b "\\\\"
       | '\n' -> Buffer.add_string b "\\n"
       | c when Char.code c < 0x20 ->
         Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string t =
  let b = Buffer.create 1024 in
  let speedup r = if r.wall_s > 0. then r.job_wall_s /. r.wall_s else 1. in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"jobs\": %d,\n" t.jobs;
  Printf.bprintf b "  \"total_wall_s\": %.3f,\n" t.total_wall_s;
  Buffer.add_string b "  \"engine\": {\n";
  Printf.bprintf b "    \"sim_runs\": %d,\n" t.engine.Engine.sim_runs;
  Printf.bprintf b "    \"sim_hits\": %d,\n" t.engine.Engine.sim_hits;
  Printf.bprintf b "    \"trace_records\": %d,\n" t.engine.Engine.trace_records;
  Printf.bprintf b "    \"trace_replays\": %d,\n" t.engine.Engine.trace_replays;
  Printf.bprintf b "    \"alloc_runs\": %d,\n" t.engine.Engine.alloc_runs;
  Printf.bprintf b "    \"alloc_hits\": %d,\n" t.engine.Engine.alloc_hits;
  Printf.bprintf b "    \"job_wall_s\": %.3f,\n" t.engine.Engine.job_wall;
  Printf.bprintf b "    \"max_queue_depth\": %d,\n" t.engine.Engine.max_queue_depth;
  Printf.bprintf b "    \"batches\": %d\n" t.engine.Engine.batches;
  Buffer.add_string b "  },\n";
  (match t.sanitizer with
   | None -> ()
   | Some s ->
     let pct num den =
       if den > 0 then 100.0 *. float_of_int num /. float_of_int den else 0.0
     in
     Buffer.add_string b "  \"sanitizer\": {\n";
     Printf.bprintf b "    \"apps\": %d,\n" s.apps;
     Printf.bprintf b "    \"static_accesses\": %d,\n" s.accesses;
     Printf.bprintf b "    \"proven_safe\": %d,\n" s.proven;
     Printf.bprintf b "    \"residual\": %d,\n" s.residual;
     Printf.bprintf b "    \"proven_pct\": %.1f,\n" (pct s.proven s.accesses);
     Printf.bprintf b "    \"dyn_seen\": %d,\n" s.san_seen;
     Printf.bprintf b "    \"dyn_checked\": %d,\n" s.san_checked;
     Printf.bprintf b "    \"discharged_pct\": %.1f,\n"
       (pct (s.san_seen - s.san_checked) s.san_seen);
     Printf.bprintf b "    \"violations\": %d\n" s.san_violations;
     Buffer.add_string b "  },\n");
  Buffer.add_string b "  \"experiments\": [\n";
  let last = List.length t.experiments - 1 in
  List.iteri
    (fun i r ->
       Printf.bprintf b
         "    {\"id\": \"%s\", \"descr\": \"%s\", \"wall_s\": %.3f, \
          \"job_wall_s\": %.3f, \"parallel_speedup\": %.2f, \"sim_runs\": %d, \
          \"sim_hits\": %d, \"alloc_runs\": %d, \"alloc_hits\": %d, \
          \"max_queue_depth\": %d, \"batches\": %d}%s\n"
         (json_escape r.id) (json_escape r.descr) r.wall_s r.job_wall_s
         (speedup r) r.sim_runs r.sim_hits r.alloc_runs r.alloc_hits
         r.max_queue_depth r.batches
         (if i = last then "" else ","))
    t.experiments;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

(* Open_trunc matters in both paths: a report rewritten into an existing
   path must not keep the tail of a longer previous report. *)
let flags = [ Open_wronly; Open_creat; Open_trunc ]

let write path t =
  let oc = open_out_gen flags 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let probe path =
  match open_out_gen flags 0o644 path with
  | oc ->
    close_out oc;
    Ok ()
  | exception Sys_error msg -> Error msg
