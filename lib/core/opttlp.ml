type profile_result =
  { opt_tlp : int
  ; samples : (int * int) list
  }

let profile engine cfg (app : Workloads.App.t) ?input ?kernel ?cache ~max_tlp () =
  let input =
    match input with
    | Some i -> i
    | None -> Workloads.App.default_input app
  in
  let kernel =
    match kernel with
    | Some k -> k
    | None ->
      (Engine.allocate engine app ~reg_limit:app.Workloads.App.default_regs)
        .Regalloc.Allocator.kernel
  in
  (* the whole TLP ladder is one independent frontier over ONE launch:
     submit it at once, so the engine records the trace on the first
     rung and replays the rest *)
  let launch = Workloads.App.launch app ~kernel ~input () in
  let tlps = List.init (max 1 max_tlp) (fun i -> i + 1) in
  let stats =
    Engine.simulate_batch ?cache engine
      (List.map (fun tlp -> (launch, cfg, tlp)) tlps)
  in
  let samples =
    List.map2 (fun tlp st -> (tlp, st.Gpusim.Stats.cycles)) tlps stats
  in
  let opt_tlp, _ =
    List.fold_left
      (fun (bt, bc) (t, c) -> if c < bc then (t, c) else (bt, bc))
      (1, max_int) samples
  in
  { opt_tlp; samples }

(* GTO-mimicking analytical scheduler over one wave of [tlp] blocks.
   One warp's compute occupies the issue pipeline; memory segments
   overlap, paying a latency that grows with cache contention (working
   sets beyond L1 lose their reuse) and with DRAM bandwidth queueing. *)
let mimic_cycles (cfg : Gpusim.Config.t) (tr : Segments.trace) ~warps_per_block ~tlp =
  let segs = Array.of_list tr.Segments.segments in
  let nseg = Array.length segs in
  let nwarps = tlp * warps_per_block in
  if nseg = 0 || nwarps = 0 then 0.
  else begin
    let block_fp = tr.Segments.footprint_bytes * warps_per_block in
    let concurrent = float_of_int (tlp * block_fp) in
    let cap_ratio =
      if concurrent <= 0. then 1.
      else min 1. (float_of_int cfg.Gpusim.Config.l1_bytes /. concurrent)
    in
    (* convex penalty: once the concurrent working set spills out of the
       L1, LRU destroys most pass-distance reuse, not a pro-rata share *)
    let hit = tr.Segments.reuse_ratio *. (cap_ratio ** 2.) in
    let miss_lat = float_of_int (cfg.Gpusim.Config.l2_latency + (cfg.Gpusim.Config.dram_latency / 2)) in
    (* a miss line crosses the interconnect AND the DRAM pipe; under
       thrashing the queueing grows superlinearly (MSHR-limited replays),
       which the extra (1/cap) factor approximates *)
    let line_service =
      (float_of_int cfg.Gpusim.Config.l1_line
       /. float_of_int cfg.Gpusim.Config.dram_bytes_per_cycle)
      +. (float_of_int cfg.Gpusim.Config.l1_line
          /. float_of_int cfg.Gpusim.Config.icnt_bytes_per_cycle)
    in
    let line_service = line_service /. Float.max 0.6 cap_ratio in
    let avg_lat l =
      (hit *. float_of_int cfg.Gpusim.Config.l1_hit_latency)
      +. ((1. -. hit) *. (miss_lat +. (float_of_int l *. line_service)))
    in
    let idx = Array.make nwarps 0 in
    let ready = Array.make nwarps 0. in
    let server_free = ref 0. in
    let core = ref 0. in
    let last = ref 0 in
    let remaining = ref nwarps in
    while !remaining > 0 do
      (* candidate: greedy warp if ready, else oldest ready warp *)
      let ready_warp w = idx.(w) < nseg && ready.(w) <= !core in
      let pick =
        if ready_warp !last then Some !last
        else begin
          let rec find w = if w >= nwarps then None else if ready_warp w then Some w else find (w + 1) in
          find 0
        end
      in
      match pick with
      | None ->
        (* advance time to the next warp completion *)
        let next = ref infinity in
        for w = 0 to nwarps - 1 do
          if idx.(w) < nseg then next := min !next ready.(w)
        done;
        if !next = infinity then remaining := 0 else core := !next
      | Some w ->
        last := w;
        (match segs.(idx.(w)) with
         | Segments.Compute lat ->
           core := !core +. float_of_int lat;
           ready.(w) <- !core
         | Segments.Mem lines ->
           let issue = float_of_int lines in
           core := !core +. issue;
           let misses = float_of_int lines *. (1. -. hit) in
           let queue_start = max !server_free !core in
           server_free := queue_start +. (misses *. line_service);
           ready.(w) <- max (!core +. avg_lat lines) !server_free);
        idx.(w) <- idx.(w) + 1;
        if idx.(w) >= nseg then decr remaining
    done;
    let finish = ref !core in
    Array.iter (fun r -> finish := max !finish r) ready;
    !finish
  end

let estimate_static cfg (app : Workloads.App.t) ?input ~max_tlp () =
  let input =
    match input with
    | Some i -> i
    | None -> Workloads.App.default_input app
  in
  let tr = Segments.trace cfg app input in
  let wpb = app.Workloads.App.block_size / cfg.Gpusim.Config.warp_size in
  let best = ref 1 and best_cost = ref infinity in
  for tlp = 1 to max 1 max_tlp do
    let t = mimic_cycles cfg tr ~warps_per_block:wpb ~tlp in
    let per_block = t /. float_of_int tlp in
    (* prefer the higher TLP on near-ties: when the model sees a flat
       region, extra parallelism hides latencies it cannot express *)
    if per_block <= !best_cost *. 1.002 then begin
      best := tlp;
      if per_block < !best_cost then best_cost := per_block
    end
  done;
  !best
