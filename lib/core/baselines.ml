type evaluated =
  { label : string
  ; reg : int
  ; tlp : int
  ; stats : Gpusim.Stats.t
  ; alloc : Regalloc.Allocator.t
  ; input : Workloads.App.input
  }

let cycles e = e.stats.Gpusim.Stats.cycles

let speedup_over ~baseline e =
  float_of_int (cycles baseline) /. float_of_int (cycles e)

let default_build ?backend engine (app : Workloads.App.t) =
  Engine.allocate engine ?backend app
    ~reg_limit:app.Workloads.App.default_regs

let resolve_input app = function
  | Some i -> i
  | None -> Workloads.App.default_input app

let max_tlp ?backend engine cfg (app : Workloads.App.t) ?input () =
  let input = resolve_input app input in
  let alloc = default_build ?backend engine app in
  let r = Resource.analyze ?backend cfg app in
  let tlp = max 1 r.Resource.max_tlp in
  let launch =
    Workloads.App.launch app ~kernel:alloc.Regalloc.Allocator.kernel ~input ()
  in
  let stats = Engine.simulate engine launch cfg ~tlp in
  { label = "MaxTLP"
  ; reg = app.Workloads.App.default_regs
  ; tlp
  ; stats
  ; alloc
  ; input
  }

let opt_tlp ?backend engine cfg (app : Workloads.App.t) ?input () =
  let input = resolve_input app input in
  let alloc = default_build ?backend engine app in
  let r = Resource.analyze ?backend cfg app in
  let pr =
    Opttlp.profile engine cfg app ~input
      ~kernel:alloc.Regalloc.Allocator.kernel
      ~max_tlp:(max 1 r.Resource.max_tlp) ()
  in
  let tlp = pr.Opttlp.opt_tlp in
  let launch =
    Workloads.App.launch app ~kernel:alloc.Regalloc.Allocator.kernel ~input ()
  in
  let stats = Engine.simulate engine launch cfg ~tlp in
  { label = "OptTLP"
  ; reg = app.Workloads.App.default_regs
  ; tlp
  ; stats
  ; alloc
  ; input
  }

let crat ?mode ?backend ?shared_spilling ?profile_input engine cfg
    (app : Workloads.App.t) ?input () =
  let input = resolve_input app input in
  let plan =
    Optimizer.plan ?mode ?backend ?shared_spilling ?profile_input engine cfg app
  in
  let c = plan.Optimizer.chosen in
  let launch =
    Workloads.App.launch app ~kernel:c.Optimizer.alloc.Regalloc.Allocator.kernel
      ~input ()
  in
  let stats =
    Engine.simulate engine launch cfg ~tlp:c.Optimizer.point.Design_space.tlp
  in
  let label =
    match (plan.Optimizer.mode, plan.Optimizer.shared_spilling) with
    | `Profile, true -> "CRAT"
    | `Profile, false -> "CRAT-local"
    | `Static, true -> "CRAT-static"
    | `Static, false -> "CRAT-static-local"
  in
  ( { label
    ; reg = c.Optimizer.point.Design_space.reg
    ; tlp = c.Optimizer.point.Design_space.tlp
    ; stats
    ; alloc = c.Optimizer.alloc
    ; input
    }
  , plan )

let register_utilization cfg (app : Workloads.App.t) e =
  Gpusim.Occupancy.register_utilization cfg
    { Gpusim.Occupancy.regs_per_thread = e.alloc.Regalloc.Allocator.units_used
    ; sregs_per_warp = e.alloc.Regalloc.Allocator.scalar_units_used
    ; block_size = app.Workloads.App.block_size
    ; shared_per_block = Workloads.App.shared_decl_bytes app
    }
    ~tlp:e.tlp
