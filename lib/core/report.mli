(** Machine-readable run reports for the benchmark harness ([--json]):
    per-experiment wall clock and engine cache statistics. *)

type experiment =
  { id : string
  ; descr : string
  ; wall_s : float
  ; job_wall_s : float
  ; sim_runs : int
  ; sim_hits : int
  ; alloc_runs : int
  ; alloc_hits : int
  ; max_queue_depth : int
  ; batches : int
  }

type sanitizer =
  { apps : int  (** workloads swept *)
  ; accesses : int  (** static shared/local/param accesses classified *)
  ; proven : int  (** proven safe — dynamic check discharged *)
  ; residual : int  (** unprovable — dynamic check retained *)
  ; san_seen : int  (** dynamic lane accesses monitored *)
  ; san_checked : int  (** lane accesses that paid a bounds test *)
  ; san_violations : int
  }

type t =
  { jobs : int
  ; total_wall_s : float
  ; engine : Engine.report
  ; sanitizer : sanitizer option
      (** residual-check counts from a sanitized suite sweep, when the
          harness ran one *)
  ; experiments : experiment list
  }

val to_string : t -> string
(** The report as a JSON document (trailing newline included). *)

val write : string -> t -> unit
(** Write the JSON report, truncating any existing file — rewriting a
    shorter report over a longer one must not leave a stale tail.
    @raise Sys_error if the path is not writable. *)

val probe : string -> (unit, string) result
(** Check the path is writable (creating/truncating the file), so a bad
    [--json] argument fails before the run instead of after. *)
