(** The evaluation engine: an explicit, thread-safe, content-addressed
    store of allocation and simulation results, plus a work-queue
    scheduler that fans independent jobs across OCaml domains.

    Every experiment driver evaluates the same (kernel build, config,
    input, TLP) points repeatedly across figures, and the points of one
    sweep are independent of each other. The engine memoizes each
    evaluation under a structural key — a digest of the allocated kernel
    image, the simulated configuration, the application descriptor, the
    input and the TLP — so two different kernel builds can never alias
    (the old label-keyed cache could), and re-runnable batches fan out
    across [jobs] domains.

    Determinism: simulations are pure functions of their key, so the
    statistics returned for any job are bit-identical whatever [jobs]
    is; [~jobs:1] additionally executes batches serially in submission
    order, matching the historical single-threaded behaviour exactly. *)

type t

(** One simulation request: run [kernel] (usually an allocated build of
    [app]'s kernel) on [cfg] with a fresh memory image for [input],
    under a TLP limit of [tlp] concurrent blocks. *)
type job =
  { cfg : Gpusim.Config.t
  ; app : Workloads.App.t
  ; kernel : Ptx.Kernel.t
  ; input : Workloads.App.input
  ; tlp : int
  }

(** Observability counters, cumulative since {!create}/{!reset}. *)
type report =
  { jobs : int  (** configured parallelism *)
  ; sim_runs : int  (** simulations actually executed (store misses) *)
  ; sim_hits : int  (** simulations answered from the store *)
  ; alloc_runs : int
  ; alloc_hits : int
  ; job_wall : float
      (** summed per-job wall-clock seconds (the serial-equivalent cost;
          under parallel execution this exceeds elapsed time) *)
  ; max_queue_depth : int
      (** largest number of uncached jobs queued by one batch *)
  ; batches : int  (** batch submissions (single runs count as one) *)
  }

val create : ?jobs:int -> unit -> t
(** Fresh engine with empty stores. [jobs] (default 1) is the number of
    worker domains batches may fan across; [jobs = 1] never spawns a
    domain. @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int

val sim_key : t -> job -> string
(** The content-addressed store key (hex digest) — exposed for the
    key-injectivity tests. Structural: covers the kernel image (hence
    register limit and spill layout), configuration, application
    descriptor, input and TLP. *)

val allocate :
  t
  -> ?strategy:Regalloc.Allocator.strategy
  -> ?shared_spare:int
  -> Workloads.App.t
  -> reg_limit:int
  -> Regalloc.Allocator.t
(** Allocate the app's kernel at a per-thread limit, memoized on the
    pre-allocation kernel image, strategy, block size, [reg_limit] and
    [shared_spare]; [shared_spare > 0] enables Algorithm 1 with that
    many spare shared bytes per block. *)

val run :
  ?cache:bool
  -> t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> kernel:Ptx.Kernel.t
  -> input:Workloads.App.input
  -> tlp:int
  -> Gpusim.Stats.t
(** Simulate one job through the store. [~cache:false] bypasses the
    store entirely (always simulates, stores nothing) — used by the
    profiling-overhead experiment to pay the real cost. *)

val cycles :
  ?cache:bool
  -> t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> kernel:Ptx.Kernel.t
  -> input:Workloads.App.input
  -> tlp:int
  -> int

val run_batch : ?cache:bool -> t -> job list -> Gpusim.Stats.t list
(** Evaluate a whole frontier at once: results in submission order.
    Duplicate and already-stored keys are answered from the store; the
    remaining distinct jobs fan across up to [jobs] domains. Sweep-shaped
    drivers (fig2, fig13, fig18, ...) should build their full job list
    and submit it here rather than looping over {!run}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Domain-parallel [List.map] for coarse-grained independent work
    (e.g. one full app comparison per item). [f] may itself use the
    engine: nested calls detect that they already run on a worker
    domain and execute serially instead of spawning. Results keep list
    order; an exception in any [f] is re-raised after all workers
    join. *)

val report : t -> report
val reset : t -> unit
(** Drop both stores and zero all counters. *)

val pp_report : Format.formatter -> report -> unit
(** One-line summary, e.g. for the end of an experiment run. *)
