(** The evaluation engine: an explicit, thread-safe, content-addressed
    store of allocation and simulation results, plus a work-queue
    scheduler that fans independent jobs across OCaml domains.

    Every experiment driver evaluates the same (kernel build, config,
    input, TLP) points repeatedly across figures, and the points of one
    sweep are independent of each other. The engine memoizes each
    simulation under a structural key — a digest of the launch (kernel
    image, geometry, parameters, canonical initial-memory fingerprint),
    the simulated configuration and the TLP — so two different kernel
    builds can never alias, and re-runnable batches fan out across
    [jobs] domains.

    Trace-driven replay: the dynamic (pc, mask, address) trace of a
    launch is invariant across timing configurations, so the engine
    also keeps a {!Gpusim.Replay.Store} keyed by launch only (no
    config, no TLP). The first simulation of a launch records its trace
    as a side effect; every later (config, tlp) point of the same
    launch replays it through the timing layer, skipping functional
    execution. Replayed statistics are bit-identical to cold runs —
    replay is a pure caching layer. Disable with [~replay:false].

    Determinism: simulations are pure functions of their key, so the
    statistics returned for any job are bit-identical whatever [jobs]
    is and whether replay is on; [~jobs:1] additionally executes
    batches serially in submission order. *)

type t

(** Observability counters, cumulative since {!create}/{!reset}. *)
type report =
  { jobs : int  (** configured parallelism *)
  ; sim_runs : int  (** simulations actually executed (store misses) *)
  ; sim_hits : int  (** simulations answered from the stats store *)
  ; trace_records : int  (** executions that recorded a launch trace *)
  ; trace_replays : int  (** executions driven from a recorded trace *)
  ; alloc_runs : int
  ; alloc_hits : int
  ; job_wall : float
      (** summed per-job wall-clock seconds (the serial-equivalent cost;
          under parallel execution this exceeds elapsed time) *)
  ; max_queue_depth : int
      (** largest number of uncached jobs queued by one batch *)
  ; batches : int  (** batch submissions (single runs count as one) *)
  }

val create :
  ?jobs:int -> ?replay:bool -> ?trace_budget:int -> ?store:Store.t -> unit -> t
(** Fresh engine with empty stores. [jobs] (default 1) is the number of
    worker domains batches may fan across; [jobs = 1] never spawns a
    domain, and the effective width is clamped to
    [Domain.recommended_domain_count] (oversubscribing cores only adds
    GC-barrier overhead, and cannot change any answer).
    [replay] (default true) enables the trace store;
    [trace_budget] bounds its resident footprint in trace events (see
    {!Gpusim.Replay.Store.create}).

    [store] plugs in a persistent content-addressed {!Store.t}: every
    recorded trace, allocation and simulation statistic is written
    through to it (kinds ["trace"]/["alloc"]/["stats"] under the
    engine's structural keys), in-memory misses fall back to it before
    paying functional execution, and traces evicted from the in-memory
    budget spill to it instead of being dropped — so each launch is
    recorded once ever, across processes. Disk answers are bit-identical
    to in-process ones (values round-trip through [Marshal]); with the
    verify gate armed, allocations are recomputed rather than read back,
    so gate checks always run.
    @raise Invalid_argument when [jobs < 1]. *)

val jobs : t -> int
val replay_enabled : t -> bool

val store : t -> Store.t option
(** The persistent store this engine writes through to, if any. *)

val sim_key : t -> Gpusim.Launch.t -> Gpusim.Config.t -> tlp:int -> string
(** The content-addressed stats-store key (hex digest) — exposed for
    the key-injectivity tests. Structural: covers the launch (kernel
    image — hence register limit and spill layout — geometry, params,
    initial memory), configuration and TLP. *)

val launch_key : t -> Gpusim.Launch.t -> string
(** The trace-store key: like {!sim_key} but with no configuration and
    no TLP — all timing points of one launch share it. Memoized on the
    physical launch record; the engine never mutates a submitted
    launch. *)

val allocate :
  t
  -> ?strategy:Regalloc.Allocator.strategy
  -> ?backend:Machine.Backend.t
  -> ?shared_spare:int
  -> Workloads.App.t
  -> reg_limit:int
  -> Regalloc.Allocator.t
(** Allocate the app's kernel at a per-thread limit, memoized on the
    pre-allocation kernel image, strategy, backend, block size,
    [reg_limit] and [shared_spare]; [shared_spare > 0] enables
    Algorithm 1 with that many spare shared bytes per block.
    [backend] (default [Ptx]) joins the memo key; [Machine] colours the
    proven-uniform registers against the scalar file
    ({!Machine.Scalarize}, {!Machine.Backend.default_scalar_limit}) and,
    when the verify gate is on, lowers the result and runs the V6xx
    machine audit. *)

val simulate :
  ?cache:bool
  -> t
  -> Gpusim.Launch.t
  -> Gpusim.Config.t
  -> tlp:int
  -> Gpusim.Stats.t
(** Simulate one launch point through the stores: answer from the stats
    store when possible, else replay the launch's recorded trace under
    the given config/TLP, else run cold (recording the trace for next
    time). [~cache:false] bypasses both stores entirely (always
    simulates functionally, stores nothing) — used by the
    profiling-overhead experiment to pay the real cost. *)

val cycles :
  ?cache:bool
  -> t
  -> Gpusim.Launch.t
  -> Gpusim.Config.t
  -> tlp:int
  -> int

val simulate_batch :
  ?cache:bool
  -> t
  -> (Gpusim.Launch.t * Gpusim.Config.t * int) list
  -> Gpusim.Stats.t list
(** Evaluate a whole frontier at once: results in submission order
    (each triple is [(launch, config, tlp)]). Duplicate and
    already-stored keys are answered from the store; the remaining
    distinct points fan across up to [jobs] domains in two waves —
    first one recording run per distinct launch missing a trace, then
    every other point replaying. Sweep-shaped drivers (fig2, fig13,
    fig18, ...) should build their full point list and submit it here
    rather than looping over {!simulate}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Domain-parallel [List.map] for coarse-grained independent work
    (e.g. one full app comparison per item). [f] may itself use the
    engine: nested calls detect that they already run on a worker
    domain and execute serially instead of spawning. Results keep list
    order; an exception in any [f] is re-raised after all workers
    join. *)

val report : t -> report
val reset : t -> unit
(** Drop all stores (stats, traces, allocations) and zero counters. *)

val pp_report : Format.formatter -> report -> unit
(** One-line summary, e.g. for the end of an experiment run. *)
