(** Drivers that regenerate every table and figure of the paper's
    evaluation (Section 7). Each returns typed rows and has a printer
    that emits the same series the paper plots; `bench/main.exe` calls
    these, and EXPERIMENTS.md records paper-vs-measured.

    All drivers share one {!Engine.t}: each (kernel image, config,
    input, TLP) simulation runs once across the whole set, and
    sweep-shaped drivers submit their frontier as a batch so
    independent jobs fan across the engine's domains. *)

val geomean : float list -> float

(** The four techniques evaluated on one app (Section 7.2). *)
type comparison =
  { app : Workloads.App.t
  ; max_tlp : Baselines.evaluated
  ; opt_tlp : Baselines.evaluated
  ; crat_local : Baselines.evaluated
  ; crat : Baselines.evaluated
  ; plan : Optimizer.plan
  }

(** [compare_app ?backend engine cfg app] evaluates every baseline;
    [backend] (default [Ptx]) selects the register-file model for the
    resource analysis and allocations (see {!Optimizer.plan}). *)
val compare_app :
  ?backend:Machine.Backend.t
  -> Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> comparison
val speedup_vs_opt : comparison -> Baselines.evaluated -> float

(** {2 Characterisation (Section 1-2)} *)

type fig1_row =
  { abbr : string
  ; opt_over_max : float  (** OptTLP speedup over MaxTLP *)
  ; util_max : float
  ; util_opt : float
  }

val fig1 : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> fig1_row list
val pp_fig1 : Format.formatter -> fig1_row list -> unit

type fig2_point =
  { reg2 : int
  ; tlp2 : int
  ; speedup_vs_max : float
  }

val fig2 : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> fig2_point list
(** The (reg, TLP) design-space surface (stair registers x feasible
    TLPs), speedups normalised to MaxTLP. *)

val pp_fig2 : Format.formatter -> fig2_point list -> unit

type fig3_row =
  { label3 : string
  ; reg3 : int
  ; tlp3 : int
  ; perf_vs_max : float
  ; l1_hit : float
  ; mem_stall : float
  ; reg_util : float
  }

val fig3 : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> fig3_row list
(** MaxTLP / OptTLP / OptTLP+Reg / CRAT for one app (default: CFD). *)

val pp_fig3 : Format.formatter -> fig3_row list -> unit

type fig5_row =
  { abbr : string
  ; hit_max : float
  ; hit_opt : float
  ; stall_max : float
  ; stall_opt : float
  }

val fig5 : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> fig5_row list
val pp_fig5 : Format.formatter -> fig5_row list -> unit

type fig6_row =
  { reg6 : int
  ; tlp6 : int
  ; instr_count : int  (** static instructions after allocation *)
  }

val fig6 : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> fig6_row list
val pp_fig6 : Format.formatter -> fig6_row list -> unit

type fig7_row =
  { abbr : string
  ; reg_util7 : float
  ; shm_util7 : float
  }

val fig7 : Gpusim.Config.t -> Workloads.App.t list -> fig7_row list
val pp_fig7 : Format.formatter -> fig7_row list -> unit

type fig8_row =
  { label8 : string
  ; speedup8 : float  (** vs the 48-register build *)
  }

val fig8 : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> fig8_row list
(** FDTD case study: register limit sweep plus the choice of which
    sub-stack to host in shared memory (best-gain vs worst-gain). *)

val pp_fig8 : Format.formatter -> fig8_row list -> unit

(** {2 Framework internals (Sections 4-5)} *)

val fig11 : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> Design_space.point list * Design_space.point list
(** (full staircase, pruned candidates). *)

val pp_fig11 :
  Format.formatter -> Design_space.point list * Design_space.point list -> unit

type fig12_row =
  { reg12 : int
  ; bytes_reference : int  (** linear-scan allocator *)
  ; bytes_crat : int  (** Chaitin-Briggs allocator *)
  }

val fig12 : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> fig12_row list
val pp_fig12 : Format.formatter -> fig12_row list -> unit

(** {2 Evaluation (Section 7)} *)

type fig13_row =
  { abbr : string
  ; s_max : float
  ; s_crat_local : float
  ; s_crat : float  (** all normalised to OptTLP *)
  }

(** The headline sweep; [~backend:Machine] re-runs it on the machine
    ISA with split register files. *)
val fig13 :
  ?backend:Machine.Backend.t
  -> Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t list
  -> fig13_row list * comparison list
val pp_fig13 : Format.formatter -> fig13_row list -> unit

type fig14_row =
  { abbr : string
  ; tlp_max : int
  ; tlp_crat : int
  }

val fig14 : comparison list -> fig14_row list
val pp_fig14 : Format.formatter -> fig14_row list -> unit

type fig15_row =
  { abbr : string
  ; util_opt : float
  ; util_crat : float
  }

val fig15 : Gpusim.Config.t -> comparison list -> fig15_row list
val pp_fig15 : Format.formatter -> fig15_row list -> unit

type fig16_row =
  { abbr : string
  ; local_ratio : float
      (** CRAT local-memory accesses / CRAT-local local-memory accesses *)
  }

val fig16 : comparison list -> fig16_row list
val pp_fig16 : Format.formatter -> fig16_row list -> unit

type fig18_row =
  { abbr : string
  ; profile_input : string
  ; eval_input : string
  ; speedup : float
  }

val fig18 : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> fig18_row list
val pp_fig18 : Format.formatter -> fig18_row list -> unit

type fig20_row =
  { abbr : string
  ; s_profile : float
  ; s_static : float
  ; opt_profiled : int
  ; opt_static : int
  }

val fig20 : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> fig20_row list
val pp_fig20 : Format.formatter -> fig20_row list -> unit

type energy_row =
  { abbr : string
  ; ratio : float  (** CRAT energy / OptTLP energy *)
  }

val energy : comparison list -> energy_row list
val pp_energy : Format.formatter -> energy_row list -> unit

type overhead_row =
  { abbr : string
  ; profiling_runs : int
  ; profiling_seconds : float  (** engine store bypassed: the real price *)
  ; static_seconds : float
  }

val overhead : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> overhead_row list
val pp_overhead : Format.formatter -> overhead_row list -> unit

(** {2 Tables} *)

type tab1_row =
  { abbr : string
  ; resource : Resource.t
  ; opt_profiled : int
  ; opt_static : int
  }

val tab1 : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> tab1_row list
val pp_tab1 : Format.formatter -> tab1_row list -> unit

(** {2 Ablations} — design choices called out in DESIGN.md *)

type abl_sched_row =
  { abbr : string
  ; gto_cycles : int
  ; lrr_cycles : int
  }

val ablation_scheduler : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> abl_sched_row list
(** Greedy-then-oldest vs loose-round-robin warp scheduling at each
    app's OptTLP. *)

val pp_ablation_scheduler : Format.formatter -> abl_sched_row list -> unit

type abl_chunk_row =
  { chunk : int
  ; shm_insts : int  (** static spill accesses hosted in shared memory *)
  ; local_insts : int
  ; cycles : int
  }

val ablation_chunk : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> reg:int -> abl_chunk_row list
(** Algorithm 1 sub-stack granularity: whole-type stacks (the paper) vs
    finer chunks (our extension of the paper's "alternative split
    methods" future work). *)

val pp_ablation_chunk : Format.formatter -> abl_chunk_row list -> unit

type abl_type_row =
  { abbr : string
  ; colors_strict : int
  ; colors_loose : int
  ; waste_events : int
  }

val ablation_type_strict : Workloads.App.t list -> abl_type_row list
(** PTX type-affinity in colouring (paper Section 5.2): registers used
    with and without the same-type preference. *)

val pp_ablation_type_strict : Format.formatter -> abl_type_row list -> unit

type abl_alloc_row =
  { variant : string
  ; instrs : int  (** static instruction count of the build *)
  ; local_insts : int
  ; remat_insts : int
  ; cycles : int
  }

val ablation_allocator : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> reg:int -> abl_alloc_row list
(** Allocator-quality extensions over the paper: copy coalescing and
    rematerialisation, separately and together, at a spill-inducing
    register limit. *)

val pp_ablation_allocator : Format.formatter -> abl_alloc_row list -> unit

type gpu_scale_row =
  { sms : int
  ; cycles : int
  ; ipc : float  (** aggregate warp instructions per cycle *)
  }

val gpu_scaling : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> tlp:int -> gpu_scale_row list
(** Whole-GPU runs with a growing SM count sharing one L2/DRAM: shows
    bandwidth, not SM count, bounding memory-bound kernels. *)

val pp_gpu_scaling : Format.formatter -> gpu_scale_row list -> unit

type bypass_row =
  { label_b : string
  ; tlp_b : int
  ; cycles_b : int
  ; l1_hit_b : float
  }

val extension_bypass : Engine.t -> Gpusim.Config.t -> Workloads.App.t -> bypass_row list
(** CRAT composed with static L1 bypassing for global traffic (the
    paper's related-work suggestion): MaxTLP, MaxTLP+bypass, CRAT and
    CRAT+bypass. Bypassing frees the whole L1 for spill traffic. *)

val pp_extension_bypass : Format.formatter -> bypass_row list -> unit

type dyn_row =
  { abbr : string
  ; max_cycles : int
  ; dyn_cycles : int
  ; opt_cycles : int
  ; crat_cycles : int
  }

val dynamic_tlp : Engine.t -> Gpusim.Config.t -> Workloads.App.t list -> dyn_row list
(** The paper's OptTLP baseline is the offline-profiled optimum of
    block-level throttling (Kayiran et al.); this runs the *online*
    DynCTA-style controller for comparison: MaxTLP vs dynamic throttling
    vs OptTLP vs CRAT. *)

val pp_dynamic_tlp : Format.formatter -> dyn_row list -> unit
