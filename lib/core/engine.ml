type report =
  { jobs : int
  ; sim_runs : int
  ; sim_hits : int
  ; trace_records : int
  ; trace_replays : int
  ; alloc_runs : int
  ; alloc_hits : int
  ; job_wall : float
  ; max_queue_depth : int
  ; batches : int
  }

type t =
  { n_jobs : int
  ; replay : bool
  ; lock : Mutex.t
  ; disk : Store.t option
      (** persistent write-through layer under all three in-memory
          stores; answers are bit-identical (Marshal round-trips) *)
  ; sim_store : (string, Gpusim.Stats.t) Hashtbl.t
  ; traces : Gpusim.Replay.Store.t
  ; alloc_store : (string, Regalloc.Allocator.t) Hashtbl.t
  ; mutable kernel_digests : (Ptx.Kernel.t * string) list
      (** physical-identity memo: allocations are cached, so the same
          kernel value is digested many times across a sweep *)
  ; mutable launch_keys : (Gpusim.Launch.t * string) list
      (** physical-identity memo for {!launch_key}: sweep drivers reuse
          one launch record across many (config, tlp) points *)
  ; mutable sim_runs : int
  ; mutable sim_hits : int
  ; mutable trace_records : int
  ; mutable trace_replays : int
  ; mutable alloc_runs : int
  ; mutable alloc_hits : int
  ; mutable job_wall : float
  ; mutable max_queue_depth : int
  ; mutable batches : int
  }

let create ?(jobs = 1) ?(replay = true) ?trace_budget ?store () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  (* traces evicted from the in-memory event budget spill to the
     persistent store (put is a no-op when the key is already there) *)
  let on_evict =
    Option.map
      (fun d k tr ->
         Store.put d ~kind:"trace" ~key:k (Gpusim.Replay.to_bytes tr))
      store
  in
  { n_jobs = jobs
  ; replay
  ; lock = Mutex.create ()
  ; disk = store
  ; sim_store = Hashtbl.create 256
  ; traces = Gpusim.Replay.Store.create ?max_events:trace_budget ?on_evict ()
  ; alloc_store = Hashtbl.create 64
  ; kernel_digests = []
  ; launch_keys = []
  ; sim_runs = 0
  ; sim_hits = 0
  ; trace_records = 0
  ; trace_replays = 0
  ; alloc_runs = 0
  ; alloc_hits = 0
  ; job_wall = 0.
  ; max_queue_depth = 0
  ; batches = 0
  }

let jobs t = t.n_jobs
let replay_enabled t = t.replay
let store t = t.disk

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let now () = Unix.gettimeofday ()

(* ---------- content addressing ---------- *)

let digest s = Digest.to_hex (Digest.string s)

let kernel_digest t k =
  match locked t (fun () -> List.assq_opt k t.kernel_digests) with
  | Some d -> d
  | None ->
    let d = digest (Ptx.Printer.kernel_to_string k) in
    locked t (fun () ->
      (* bounded memo; dropping entries only costs a re-digest *)
      let kept =
        if List.length t.kernel_digests >= 512 then [] else t.kernel_digests
      in
      t.kernel_digests <- (k, d) :: kept);
    d

(* Config.t is a pure-data record (ints, strings, variants), so
   marshalling gives a stable structural fingerprint. *)
let data_digest v = digest (Marshal.to_string v [])

(* The launch's trace key: kernel image, geometry, params and canonical
   initial-memory digest — no Config.t, no TLP (see Replay.launch_key).
   Memoized on the physical launch record: the engine never mutates a
   submitted launch's memory (cold runs execute on a copy), so the key
   stays valid for the record's lifetime. *)
let launch_key t (l : Gpusim.Launch.t) =
  match locked t (fun () -> List.assq_opt l t.launch_keys) with
  | Some k -> k
  | None ->
    let kd = kernel_digest t l.Gpusim.Launch.kernel in
    let k = Gpusim.Replay.launch_key ~kernel_digest:kd l in
    locked t (fun () ->
      let kept = if List.length t.launch_keys >= 512 then [] else t.launch_keys in
      t.launch_keys <- (l, k) :: kept);
    k

let sim_key t (l : Gpusim.Launch.t) cfg ~tlp =
  digest
    (String.concat "|"
       [ launch_key t l; data_digest cfg; string_of_int tlp ])

let alloc_key t ~strategy ~backend ~shared_spare ~block_size ~reg_limit kernel =
  String.concat "|"
    [ kernel_digest t kernel
    ; (match (strategy : Regalloc.Allocator.strategy) with
       | Regalloc.Allocator.Chaitin_briggs -> "cb"
       | Regalloc.Allocator.Linear_scan -> "ls")
    ; Machine.Backend.to_string backend
    ; string_of_int shared_spare
    ; string_of_int block_size
    ; string_of_int reg_limit
    ]

(* ---------- persistent store plumbing ---------- *)

let disk_put_value t ~kind ~key v =
  match t.disk with
  | None -> ()
  | Some d -> Store.put_value d ~kind ~key v

let disk_get_stats t key : Gpusim.Stats.t option =
  match t.disk with
  | None -> None
  | Some d -> Store.get_value d ~kind:"stats" ~key

let disk_get_alloc t key : Regalloc.Allocator.t option =
  match t.disk with
  | None -> None
  | Some d -> Store.get_value d ~kind:"alloc" ~key

let disk_put_trace t key tr =
  match t.disk with
  | None -> ()
  | Some d -> Store.put d ~kind:"trace" ~key (Gpusim.Replay.to_bytes tr)

let disk_get_trace t key =
  match t.disk with
  | None -> None
  | Some d ->
    (match Store.get d ~kind:"trace" ~key with
     | None -> None
     | Some s -> Gpusim.Replay.of_bytes s)

let disk_mem_trace t key =
  match t.disk with
  | None -> false
  | Some d -> Store.mem d ~kind:"trace" ~key

(* ---------- domain pool ---------- *)

(* Set on worker domains (and on the main domain while it doubles as a
   worker): nested engine calls from inside a job run serially instead
   of spawning a second generation of domains. *)
let worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_key

let as_worker f =
  let saved = Domain.DLS.get worker_key in
  Domain.DLS.set worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set worker_key saved) f

(* Parallel array map: an atomic cursor feeds items to [width] workers
   (the calling domain is one of them). Order of results is by index,
   so the output is deterministic whatever the interleaving. *)
let pmap t f arr =
  let n = Array.length arr in
  (* spawning more domains than cores buys nothing and costs every GC a
     wider synchronisation barrier, so the requested width is clamped to
     the runtime's recommendation; results are ordered by index, so the
     effective width never changes an answer *)
  let width =
    min (min t.n_jobs n) (max 1 (Domain.recommended_domain_count ()))
  in
  if width <= 1 || in_worker () then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      as_worker (fun () ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && Atomic.get failure = None then begin
            (try results.(i) <- Some (f arr.(i))
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            loop ()
          end
        in
        loop ())
    in
    let domains = List.init (width - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      results
  end

let map t f xs = Array.to_list (pmap t f (Array.of_list xs))

(* ---------- allocation ---------- *)

let allocate t ?(strategy = Regalloc.Allocator.Chaitin_briggs)
    ?(backend = Machine.Backend.Ptx) ?(shared_spare = 0)
    (app : Workloads.App.t) ~reg_limit =
  let kernel = Workloads.App.kernel app in
  let block_size = app.Workloads.App.block_size in
  let key =
    alloc_key t ~strategy ~backend ~shared_spare ~block_size ~reg_limit kernel
  in
  (* the alloc key is a readable concat; the on-disk name is its digest *)
  let dkey = digest key in
  let memory_hit = locked t (fun () -> Hashtbl.find_opt t.alloc_store key) in
  (* with the gate armed, never answer allocations from disk: the gate's
     audits must run on every allocation this process hands out *)
  let disk_hit =
    match memory_hit with
    | Some _ -> None
    | None -> if Verify.Gate.enabled () then None else disk_get_alloc t dkey
  in
  match (memory_hit, disk_hit) with
  | Some a, _ ->
    locked t (fun () -> t.alloc_hits <- t.alloc_hits + 1);
    a
  | None, Some a ->
    locked t (fun () ->
      t.alloc_hits <- t.alloc_hits + 1;
      Hashtbl.replace t.alloc_store key a);
    a
  | None, None ->
    let shared_policy = if shared_spare > 0 then `Spare shared_spare else `Off in
    let scalar, scalar_limit =
      match backend with
      | Machine.Backend.Ptx -> ((fun _ -> false), 0)
      | Machine.Backend.Machine ->
        ( Machine.Scalarize.predicate ~block_size kernel
        , Machine.Backend.default_scalar_limit )
    in
    (* debug gate: verify the input kernel, then audit the allocation,
       translation-validate the allocation edge (original vs allocated
       modulo the recorded assignment and spills) and run the
       hybrid-sanitizer bounds proof over the spill code; all no-ops
       unless CRAT_VERIFY / Verify.Gate.set enables them *)
    Verify.Gate.run
      ~stage:(app.Workloads.App.abbr ^ ":pre-alloc")
      [ Verify.Gate.Kernel { block_size = Some block_size; kernel } ];
    let t0 = now () in
    let a =
      Regalloc.Allocator.allocate ~strategy ~shared_policy ~scalar
        ~scalar_limit ~block_size ~reg_limit kernel
    in
    Verify.Gate.run
      ~stage:(app.Workloads.App.abbr ^ ":post-alloc")
      [ Verify.Gate.Allocation a
      ; Verify.Gate.Equiv_alloc a
      ; Verify.Gate.Sanitize
          { block_size = Some block_size; kernel = a.Regalloc.Allocator.kernel }
      ];
    (* under the machine backend, also lower and run the V6xx audit
       (a no-op unless the gate is on) *)
    if backend = Machine.Backend.Machine && Verify.Gate.enabled () then begin
      let m = Machine.Lower.run a in
      Verify.Gate.run
        ~stage:(app.Workloads.App.abbr ^ ":post-lower")
        [ Verify.Gate.Machine m; Verify.Gate.Equiv_lower m ]
    end;
    let dt = now () -. t0 in
    locked t (fun () ->
      t.alloc_runs <- t.alloc_runs + 1;
      t.job_wall <- t.job_wall +. dt;
      Hashtbl.replace t.alloc_store key a);
    disk_put_value t ~kind:"alloc" ~key:dkey a;
    a

(* ---------- simulation ---------- *)

(* One deduplicated pending point of a batch. *)
type point =
  { launch : Gpusim.Launch.t
  ; cfg : Gpusim.Config.t
  ; tlp : int
  ; skey : string
  ; lkey : string
  ; record : bool  (** this point records the launch's trace (wave 1) *)
  }

(* The engine must not mutate a submitted launch (its memory backs the
   content key), so every functional execution runs on a copy. *)
let cold_launch (p : point) =
  { p.launch with
    Gpusim.Launch.memory = Gpusim.Memory.copy p.launch.Gpusim.Launch.memory
  ; tlp_limit = p.tlp
  }

let exec_cold p = Gpusim.Sm.run p.cfg (cold_launch p)

(* Record while running cold; store the trace only after a successful
   run (a Cycle_limit abort must not leave a truncated trace behind).
   The persistent store gets the trace too — that is what makes "record
   each launch once ever" hold across processes. *)
let exec_record t p =
  let tr = Gpusim.Replay.create p.launch in
  let st = Gpusim.Sm.run ~record:tr p.cfg (cold_launch p) in
  Gpusim.Replay.finish tr;
  Gpusim.Replay.Store.add t.traces p.lkey tr;
  disk_put_trace t p.lkey tr;
  locked t (fun () -> t.trace_records <- t.trace_records + 1);
  st

(* Replay leaves the launch memory untouched, so no copy is needed; a
   trace missing from the in-memory budget is refetched from the
   persistent store (re-resident for the rest of the sweep), and only
   a launch absent from both falls back to a cold run. *)
let exec_replay t p =
  let resident =
    match Gpusim.Replay.Store.find t.traces p.lkey with
    | Some _ as tr -> tr
    | None ->
      (match disk_get_trace t p.lkey with
       | Some tr ->
         Gpusim.Replay.Store.add t.traces p.lkey tr;
         Some tr
       | None -> None)
  in
  match resident with
  | Some tr ->
    let st =
      Gpusim.Sm.run ~replay:tr p.cfg (Gpusim.Launch.with_tlp p.launch p.tlp)
    in
    locked t (fun () -> t.trace_replays <- t.trace_replays + 1);
    st
  | None -> exec_cold p

let exec t p =
  if not t.replay then exec_cold p
  else if p.record then exec_record t p
  else exec_replay t p

let simulate_batch ?(cache = true) t items =
  let items = Array.of_list items in
  let keys =
    Array.map (fun (l, cfg, tlp) -> sim_key t l cfg ~tlp) items
  in
  (* distinct uncached keys, in first-occurrence order *)
  let seen = Hashtbl.create 16 in
  let lkeys_recording = Hashtbl.create 16 in
  let pending = ref [] in
  Array.iteri
    (fun i k ->
       if not (Hashtbl.mem seen k) then begin
         Hashtbl.add seen k ();
         let stored =
           cache
           && (locked t (fun () -> Hashtbl.mem t.sim_store k)
               ||
               (* persistent layer: statistics computed by an earlier
                  process answer without any simulation at all *)
               match disk_get_stats t k with
               | Some st ->
                 locked t (fun () -> Hashtbl.replace t.sim_store k st);
                 true
               | None -> false)
         in
         if not stored then begin
           let launch, cfg, tlp = items.(i) in
           let lkey = launch_key t launch in
           (* first pending point of a launch whose trace is absent from
              both the resident and the persistent store records it;
              later points of the same launch replay *)
           let record =
             cache && t.replay
             && (not (Hashtbl.mem lkeys_recording lkey))
             && (not (Gpusim.Replay.Store.mem t.traces lkey))
             && not (disk_mem_trace t lkey)
           in
           if record then Hashtbl.add lkeys_recording lkey ();
           pending := { launch; cfg; tlp; skey = k; lkey; record } :: !pending
         end
       end)
    keys;
  let pending = Array.of_list (List.rev !pending) in
  let depth = Array.length pending in
  locked t (fun () ->
    t.batches <- t.batches + 1;
    if depth > t.max_queue_depth then t.max_queue_depth <- depth);
  (* two waves: recorders first, so every other point of the same
     launch — possibly on another domain — replays rather than paying
     functional execution again *)
  let wave which =
    pmap t
      (fun p ->
         let t0 = now () in
         let st = exec t p in
         (p.skey, st, now () -. t0))
      (Array.of_seq
         (Seq.filter (fun p -> p.record = which) (Array.to_seq pending)))
  in
  (* the recording wave must fully finish before the replay wave starts
     (and argument evaluation order would run them backwards) *)
  let recorded = wave true in
  let replayed = wave false in
  let computed = Array.append recorded replayed in
  let fresh = Hashtbl.create (max 1 depth) in
  Array.iter
    (fun (k, st, dt) ->
       Hashtbl.replace fresh k st;
       locked t (fun () ->
         t.sim_runs <- t.sim_runs + 1;
         t.job_wall <- t.job_wall +. dt;
         if cache then Hashtbl.replace t.sim_store k st);
       if cache then disk_put_value t ~kind:"stats" ~key:k st)
    computed;
  locked t (fun () ->
    t.sim_hits <- t.sim_hits + (Array.length items - depth));
  Array.to_list
    (Array.map
       (fun k ->
          match Hashtbl.find_opt fresh k with
          | Some st -> st
          | None -> locked t (fun () -> Hashtbl.find t.sim_store k))
       keys)

let simulate ?cache t l cfg ~tlp =
  match simulate_batch ?cache t [ (l, cfg, tlp) ] with
  | [ st ] -> st
  | _ -> assert false

let cycles ?cache t l cfg ~tlp =
  (simulate ?cache t l cfg ~tlp).Gpusim.Stats.cycles

(* ---------- observability ---------- *)

let report t =
  locked t (fun () ->
    { jobs = t.n_jobs
    ; sim_runs = t.sim_runs
    ; sim_hits = t.sim_hits
    ; trace_records = t.trace_records
    ; trace_replays = t.trace_replays
    ; alloc_runs = t.alloc_runs
    ; alloc_hits = t.alloc_hits
    ; job_wall = t.job_wall
    ; max_queue_depth = t.max_queue_depth
    ; batches = t.batches
    })

let reset t =
  Gpusim.Replay.Store.clear t.traces;
  locked t (fun () ->
    Hashtbl.reset t.sim_store;
    Hashtbl.reset t.alloc_store;
    t.kernel_digests <- [];
    t.launch_keys <- [];
    t.sim_runs <- 0;
    t.sim_hits <- 0;
    t.trace_records <- 0;
    t.trace_replays <- 0;
    t.alloc_runs <- 0;
    t.alloc_hits <- 0;
    t.job_wall <- 0.;
    t.max_queue_depth <- 0;
    t.batches <- 0)

let pp_report fmt r =
  Format.fprintf fmt
    "engine: jobs=%d, %d simulations (%d store hits, %d trace records, %d \
     trace replays), %d allocations (%d hits), %.1fs job wall-clock, %d \
     batches, max queue depth %d"
    r.jobs r.sim_runs r.sim_hits r.trace_records r.trace_replays r.alloc_runs
    r.alloc_hits r.job_wall r.batches r.max_queue_depth
