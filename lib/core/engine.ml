type job =
  { cfg : Gpusim.Config.t
  ; app : Workloads.App.t
  ; kernel : Ptx.Kernel.t
  ; input : Workloads.App.input
  ; tlp : int
  }

type report =
  { jobs : int
  ; sim_runs : int
  ; sim_hits : int
  ; alloc_runs : int
  ; alloc_hits : int
  ; job_wall : float
  ; max_queue_depth : int
  ; batches : int
  }

type t =
  { n_jobs : int
  ; lock : Mutex.t
  ; sim_store : (string, Gpusim.Stats.t) Hashtbl.t
  ; alloc_store : (string, Regalloc.Allocator.t) Hashtbl.t
  ; mutable kernel_digests : (Ptx.Kernel.t * string) list
      (** physical-identity memo: allocations are cached, so the same
          kernel value is digested many times across a sweep *)
  ; mutable sim_runs : int
  ; mutable sim_hits : int
  ; mutable alloc_runs : int
  ; mutable alloc_hits : int
  ; mutable job_wall : float
  ; mutable max_queue_depth : int
  ; mutable batches : int
  }

let create ?(jobs = 1) () =
  if jobs < 1 then invalid_arg "Engine.create: jobs must be >= 1";
  { n_jobs = jobs
  ; lock = Mutex.create ()
  ; sim_store = Hashtbl.create 256
  ; alloc_store = Hashtbl.create 64
  ; kernel_digests = []
  ; sim_runs = 0
  ; sim_hits = 0
  ; alloc_runs = 0
  ; alloc_hits = 0
  ; job_wall = 0.
  ; max_queue_depth = 0
  ; batches = 0
  }

let jobs t = t.n_jobs

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let now () = Unix.gettimeofday ()

(* ---------- content addressing ---------- *)

let digest s = Digest.to_hex (Digest.string s)

let kernel_digest t k =
  match locked t (fun () -> List.assq_opt k t.kernel_digests) with
  | Some d -> d
  | None ->
    let d = digest (Ptx.Printer.kernel_to_string k) in
    locked t (fun () ->
      (* bounded memo; dropping entries only costs a re-digest *)
      let kept =
        if List.length t.kernel_digests >= 512 then [] else t.kernel_digests
      in
      t.kernel_digests <- (k, d) :: kept);
    d

(* Config.t, App.t and App.input are pure-data records (ints, strings,
   variants), so marshalling gives a stable structural fingerprint. *)
let data_digest v = digest (Marshal.to_string v [])

let sim_key t (j : job) =
  digest
    (String.concat "|"
       [ kernel_digest t j.kernel
       ; data_digest j.cfg
       ; data_digest j.app
       ; data_digest j.input
       ; string_of_int j.tlp
       ])

let alloc_key t ~strategy ~shared_spare ~block_size ~reg_limit kernel =
  String.concat "|"
    [ kernel_digest t kernel
    ; (match (strategy : Regalloc.Allocator.strategy) with
       | Regalloc.Allocator.Chaitin_briggs -> "cb"
       | Regalloc.Allocator.Linear_scan -> "ls")
    ; string_of_int shared_spare
    ; string_of_int block_size
    ; string_of_int reg_limit
    ]

(* ---------- domain pool ---------- *)

(* Set on worker domains (and on the main domain while it doubles as a
   worker): nested engine calls from inside a job run serially instead
   of spawning a second generation of domains. *)
let worker_key = Domain.DLS.new_key (fun () -> false)
let in_worker () = Domain.DLS.get worker_key

let as_worker f =
  let saved = Domain.DLS.get worker_key in
  Domain.DLS.set worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set worker_key saved) f

(* Parallel array map: an atomic cursor feeds items to [width] workers
   (the calling domain is one of them). Order of results is by index,
   so the output is deterministic whatever the interleaving. *)
let pmap t f arr =
  let n = Array.length arr in
  let width = min t.n_jobs n in
  if width <= 1 || in_worker () then Array.map f arr
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      as_worker (fun () ->
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n && Atomic.get failure = None then begin
            (try results.(i) <- Some (f arr.(i))
             with e ->
               let bt = Printexc.get_raw_backtrace () in
               ignore (Atomic.compare_and_set failure None (Some (e, bt))));
            loop ()
          end
        in
        loop ())
    in
    let domains = List.init (width - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    (match Atomic.get failure with
     | Some (e, bt) -> Printexc.raise_with_backtrace e bt
     | None -> ());
    Array.map
      (function
        | Some v -> v
        | None -> assert false)
      results
  end

let map t f xs = Array.to_list (pmap t f (Array.of_list xs))

(* ---------- allocation ---------- *)

let allocate t ?(strategy = Regalloc.Allocator.Chaitin_briggs)
    ?(shared_spare = 0) (app : Workloads.App.t) ~reg_limit =
  let kernel = Workloads.App.kernel app in
  let block_size = app.Workloads.App.block_size in
  let key = alloc_key t ~strategy ~shared_spare ~block_size ~reg_limit kernel in
  match locked t (fun () -> Hashtbl.find_opt t.alloc_store key) with
  | Some a ->
    locked t (fun () -> t.alloc_hits <- t.alloc_hits + 1);
    a
  | None ->
    let shared_policy = if shared_spare > 0 then `Spare shared_spare else `Off in
    (* debug gate: verify the input kernel and audit the allocation; both
       are no-ops unless CRAT_VERIFY / Verify.Gate.set enables them *)
    Verify.Gate.check_kernel
      ~stage:(app.Workloads.App.abbr ^ ":pre-alloc")
      ~block_size kernel;
    let t0 = now () in
    let a =
      Regalloc.Allocator.allocate ~strategy ~shared_policy ~block_size
        ~reg_limit kernel
    in
    Verify.Gate.check_allocation
      ~stage:(app.Workloads.App.abbr ^ ":post-alloc") a;
    let dt = now () -. t0 in
    locked t (fun () ->
      t.alloc_runs <- t.alloc_runs + 1;
      t.job_wall <- t.job_wall +. dt;
      Hashtbl.replace t.alloc_store key a);
    a

(* ---------- simulation ---------- *)

let simulate (j : job) =
  let launch =
    Workloads.App.sm_launch j.app ~kernel:j.kernel ~input:j.input ~tlp:j.tlp ()
  in
  Gpusim.Sm.run j.cfg launch

let run_batch ?(cache = true) t jobs_list =
  let jobs_a = Array.of_list jobs_list in
  let keys = Array.map (sim_key t) jobs_a in
  (* distinct uncached keys, in first-occurrence order *)
  let seen = Hashtbl.create 16 in
  let pending = ref [] in
  Array.iteri
    (fun i k ->
       if not (Hashtbl.mem seen k) then begin
         Hashtbl.add seen k ();
         let stored =
           cache && locked t (fun () -> Hashtbl.mem t.sim_store k)
         in
         if not stored then pending := (k, jobs_a.(i)) :: !pending
       end)
    keys;
  let pending = Array.of_list (List.rev !pending) in
  let depth = Array.length pending in
  locked t (fun () ->
    t.batches <- t.batches + 1;
    if depth > t.max_queue_depth then t.max_queue_depth <- depth);
  let computed =
    pmap t
      (fun (k, j) ->
         let t0 = now () in
         let st = simulate j in
         (k, st, now () -. t0))
      pending
  in
  let fresh = Hashtbl.create (max 1 depth) in
  Array.iter
    (fun (k, st, dt) ->
       Hashtbl.replace fresh k st;
       locked t (fun () ->
         t.sim_runs <- t.sim_runs + 1;
         t.job_wall <- t.job_wall +. dt;
         if cache then Hashtbl.replace t.sim_store k st))
    computed;
  locked t (fun () ->
    t.sim_hits <- t.sim_hits + (Array.length jobs_a - depth));
  Array.to_list
    (Array.map
       (fun k ->
          match Hashtbl.find_opt fresh k with
          | Some st -> st
          | None -> locked t (fun () -> Hashtbl.find t.sim_store k))
       keys)

let run ?cache t cfg app ~kernel ~input ~tlp =
  match run_batch ?cache t [ { cfg; app; kernel; input; tlp } ] with
  | [ st ] -> st
  | _ -> assert false

let cycles ?cache t cfg app ~kernel ~input ~tlp =
  (run ?cache t cfg app ~kernel ~input ~tlp).Gpusim.Stats.cycles

(* ---------- observability ---------- *)

let report t =
  locked t (fun () ->
    { jobs = t.n_jobs
    ; sim_runs = t.sim_runs
    ; sim_hits = t.sim_hits
    ; alloc_runs = t.alloc_runs
    ; alloc_hits = t.alloc_hits
    ; job_wall = t.job_wall
    ; max_queue_depth = t.max_queue_depth
    ; batches = t.batches
    })

let reset t =
  locked t (fun () ->
    Hashtbl.reset t.sim_store;
    Hashtbl.reset t.alloc_store;
    t.kernel_digests <- [];
    t.sim_runs <- 0;
    t.sim_hits <- 0;
    t.alloc_runs <- 0;
    t.alloc_hits <- 0;
    t.job_wall <- 0.;
    t.max_queue_depth <- 0;
    t.batches <- 0)

let pp_report fmt r =
  Format.fprintf fmt
    "engine: jobs=%d, %d simulations (%d store hits), %d allocations (%d \
     hits), %.1fs job wall-clock, %d batches, max queue depth %d"
    r.jobs r.sim_runs r.sim_hits r.alloc_runs r.alloc_hits r.job_wall
    r.batches r.max_queue_depth
