(** OptTLP determination (paper Section 4.1): by profiling — run each
    TLP in [1, MaxTLP] and keep the fastest — or statically, by
    mimicking GTO scheduling over computation/memory segments with a
    bandwidth and cache-contention model (Fig. 10b). *)

type profile_result =
  { opt_tlp : int
  ; samples : (int * int) list  (** (tlp, cycles), TLP ascending *)
  }

val profile :
  Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> ?input:Workloads.App.input
  -> ?kernel:Ptx.Kernel.t
  -> ?cache:bool
  -> max_tlp:int
  -> unit
  -> profile_result
(** Default kernel: the app's kernel allocated at its default register
    count. The TLP ladder is submitted to the engine as one batch, so
    the samples fan across domains. [~cache:false] bypasses the engine
    store (the overhead experiment pays the real profiling cost). *)

val estimate_static :
  Gpusim.Config.t -> Workloads.App.t -> ?input:Workloads.App.input -> max_tlp:int -> unit -> int
(** Static GTO-mimicking estimate: pick the TLP maximising modelled
    block throughput, where each warp is a segment sequence, memory
    segments pay a contention- and bandwidth-dependent latency, and
    one warp's compute occupies the pipeline at a time. *)

val mimic_cycles :
  Gpusim.Config.t -> Segments.trace -> warps_per_block:int -> tlp:int -> float
(** Modelled cycles for one wave of [tlp] blocks (exposed for tests and
    the analytical-model ablation). *)
