type t =
  { max_reg : int
  ; min_reg : int
  ; block_size : int
  ; shm_size : int
  ; max_tlp : int
  ; default_regs : int
  ; max_live_units : int
  ; sregs_per_warp : int
  }

(* MaxReg: the smallest limit at which allocation inserts no spill code.
   MaxLive is a lower bound; colouring (and the paper's type-sensitivity)
   can need a little more, so probe upward from MaxLive. Under the
   machine backend the scalar partition relieves vector pressure, so
   the probe starts below MaxLive and searches downward first. *)
let probe_max_reg ?(scalar = fun _ -> false) ?(scalar_limit = 0) kernel
    ~block_size ~max_live ~cap =
  let spill_free lim =
    let a =
      Regalloc.Allocator.allocate ~scalar ~scalar_limit ~block_size
        ~reg_limit:lim kernel
    in
    a.Regalloc.Allocator.spilled = []
  in
  let rec up lim = if lim >= cap || spill_free lim then min lim cap else up (lim + 1) in
  let rec down lim =
    if lim > 1 && spill_free (lim - 1) then down (lim - 1) else lim
  in
  let lo = up max_live in
  if scalar_limit > 0 && spill_free lo then down lo else lo

let analyze ?(backend = Machine.Backend.Ptx) (cfg : Gpusim.Config.t)
    (app : Workloads.App.t) =
  let kernel = Workloads.App.kernel app in
  let block_size = app.Workloads.App.block_size in
  let flow = Cfg.Flow.of_kernel kernel in
  let live = Cfg.Liveness.compute flow in
  let max_live_units = Cfg.Liveness.max_pressure live in
  let cap = cfg.Gpusim.Config.max_regs_per_thread in
  let scalar, scalar_limit =
    match backend with
    | Machine.Backend.Ptx -> ((fun _ -> false), 0)
    | Machine.Backend.Machine ->
      ( Machine.Scalarize.predicate ~block_size kernel
      , Machine.Backend.default_scalar_limit )
  in
  let max_reg =
    probe_max_reg kernel ~scalar ~scalar_limit ~block_size
      ~max_live:(min max_live_units cap) ~cap
  in
  let sregs_per_warp =
    if scalar_limit = 0 then 0
    else
      (* the scalar footprint barely moves with the vector limit (the
         uniform set is fixed by the analysis), so measure it once at
         the spill-free point *)
      (Regalloc.Allocator.allocate ~scalar ~scalar_limit ~block_size
         ~reg_limit:max_reg kernel)
        .Regalloc.Allocator.scalar_units_used
  in
  let shm_size = Workloads.App.shared_decl_bytes app in
  let max_tlp =
    Gpusim.Occupancy.max_tlp cfg
      { Gpusim.Occupancy.regs_per_thread = app.Workloads.App.default_regs
      ; sregs_per_warp
      ; block_size
      ; shared_per_block = shm_size
      }
  in
  { max_reg
  ; min_reg = Gpusim.Config.min_reg cfg
  ; block_size
  ; shm_size
  ; max_tlp
  ; default_regs = app.Workloads.App.default_regs
  ; max_live_units
  ; sregs_per_warp
  }

let usage_at t ~regs =
  { Gpusim.Occupancy.regs_per_thread = regs
  ; sregs_per_warp = t.sregs_per_warp
  ; block_size = t.block_size
  ; shared_per_block = t.shm_size
  }

let pp fmt t =
  Format.fprintf fmt
    "MaxReg=%d MinReg=%d BlockSize=%d ShmSize=%dB MaxTLP=%d (default regs=%d)"
    t.max_reg t.min_reg t.block_size t.shm_size t.max_tlp t.default_regs
