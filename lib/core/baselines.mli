(** The techniques compared in the paper's evaluation (Section 7.2):

    - [MaxTLP]: default register allocation, as many blocks as fit;
    - [OptTLP]: default registers, block-level thread throttling with the
      profiled best TLP (Kayiran et al.);
    - [CRAT-local]: full CRAT but spills only to local memory;
    - [CRAT]: coordinated register allocation + TLP with Algorithm 1;
    - [CRAT-static]: CRAT with the statically estimated OptTLP. *)

type evaluated =
  { label : string
  ; reg : int  (** per-thread register limit of the build *)
  ; tlp : int  (** concurrent blocks per SM *)
  ; stats : Gpusim.Stats.t
  ; alloc : Regalloc.Allocator.t
  ; input : Workloads.App.input
  }

val cycles : evaluated -> int
val speedup_over : baseline:evaluated -> evaluated -> float

val max_tlp :
  ?backend:Machine.Backend.t
  -> Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> ?input:Workloads.App.input
  -> unit
  -> evaluated

val opt_tlp :
  ?backend:Machine.Backend.t
  -> Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> ?input:Workloads.App.input
  -> unit
  -> evaluated
(** Profiling (and the returned evaluation) use [input]. *)

val crat :
  ?mode:Optimizer.mode
  -> ?backend:Machine.Backend.t
  -> ?shared_spilling:bool
  -> ?profile_input:Workloads.App.input
  -> Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> ?input:Workloads.App.input
  -> unit
  -> evaluated * Optimizer.plan
(** Full CRAT by default; [~shared_spilling:false] gives CRAT-local,
    [~mode:`Static] gives CRAT-static. [profile_input] (default: the
    app default) drives OptTLP profiling; [input] is evaluated. *)

val register_utilization : Gpusim.Config.t -> Workloads.App.t -> evaluated -> float
(** Fraction of the register file used by the evaluated configuration. *)
