module B = Ptx.Builder
module T = Ptx.Types

type costs =
  { cost_local : float
  ; cost_shm : float
  }

(* A loop of dependent loads from the given space; the dependence chain
   makes the measured cycles per iteration approximate the access delay. *)
let probe_kernel space =
  let b = B.create (Printf.sprintf "micro_%s" (T.space_to_string space)) in
  let _out = B.param b "out" T.U64 in
  let reps = B.param b "reps" T.U32 in
  let slots = 16 in
  let arr =
    match space with
    | T.Local -> B.decl_local b "probe" T.U32 slots
    | T.Shared -> B.decl_shared b "probe" T.U32 ((slots + 1) * 64)
    | T.Reg | T.Global | T.Param | T.Const ->
      invalid_arg "Micro.probe_kernel: local or shared only"
  in
  let base =
    match space with
    | T.Local ->
      let d = B.mov b T.U64 arr in
      d
    | T.Shared | T.Reg | T.Global | T.Param | T.Const ->
      (* per-thread slice of the shared probe, with the same odd-word
         stride padding the spill layout uses (conflict-free banking) *)
      let tid = B.special b Ptx.Reg.Tid_x in
      let off = B.mul b T.U32 (B.reg tid) (B.imm ((slots * 4) + 4)) in
      let s = B.mov b T.U32 arr in
      let a32 = B.add b T.U32 (B.reg s) (B.reg off) in
      B.cvt b T.U64 T.U32 (B.reg a32)
  in
  let r = B.ld_param b T.U32 reps in
  (* seed the chain *)
  B.st b space T.U32 (B.reg base) 0 (B.imm 1);
  let v0 = B.mov b T.U32 (B.imm 0) in
  B.for_loop b ~from:(B.imm 0) ~below:(B.reg r) ~step:1 (fun _ ->
    let x = B.ld b space T.U32 (B.reg base) 0 in
    let y = B.binop b Ptx.Instr.And T.U32 (B.reg x) (B.imm 3) in
    B.st b space T.U32 (B.reg base) 0 (B.reg y);
    B.acc_binop b Ptx.Instr.Add T.U32 v0 (B.reg y));
  let out64 = B.ld_param b T.U64 (Ptx.Instr.Oparam "out") in
  B.st b T.Global T.U32 (B.reg out64) 0 (B.reg v0);
  B.finish b

(* Per-config once-cell: the short [registry_lock] only guards cell
   lookup/creation, while each cell's own mutex serialises the (slow)
   probe runs for that config — two domains probing different configs
   no longer serialise behind one global lock. Not a [Lazy.t]: forcing
   a lazy concurrently from several domains raises [Lazy.Undefined]. *)
type cell =
  { m : Mutex.t
  ; mutable v : costs option
  }

let cells : (string, cell) Hashtbl.t = Hashtbl.create 4
let registry_lock = Mutex.create ()

let run_probe cfg space =
  let reps = 64 in
  let k = probe_kernel space in
  let mem = Gpusim.Memory.create () in
  let launch =
    Gpusim.Launch.make ~kernel:k ~block_size:cfg.Gpusim.Config.warp_size
      ~num_blocks:1
      ~warp_size:cfg.Gpusim.Config.warp_size
      ~params:
        [ ("out", Gpusim.Value.I 0x2000_0000L)
        ; ("reps", Gpusim.Value.of_int reps)
        ]
      mem
  in
  let st = Gpusim.Sm.run cfg launch in
  let accesses = 2 * reps in
  float_of_int st.Gpusim.Stats.cycles /. float_of_int accesses

let cell_of key =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
       match Hashtbl.find_opt cells key with
       | Some c -> c
       | None ->
         let c = { m = Mutex.create (); v = None } in
         Hashtbl.replace cells key c;
         c)

let measure cfg =
  let cell = cell_of cfg.Gpusim.Config.name in
  Mutex.lock cell.m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cell.m)
    (fun () ->
       match cell.v with
       | Some c -> c
       | None ->
         let c =
           { cost_local = run_probe cfg T.Local
           ; cost_shm = run_probe cfg T.Shared
           }
         in
         cell.v <- Some c;
         c)
