type point =
  { reg : int
  ; tlp : int
  }

let occupancy cfg (r : Resource.t) ~reg =
  Gpusim.Occupancy.max_tlp cfg (Resource.usage_at r ~regs:reg)

let reg_upper cfg (r : Resource.t) =
  min r.Resource.max_reg cfg.Gpusim.Config.max_regs_per_thread

(* On large register files MinReg can exceed a light kernel's MaxReg; the
   space then degenerates to the single register count MaxReg. *)
let reg_lower cfg (r : Resource.t) = min r.Resource.min_reg (reg_upper cfg r)

let full cfg (r : Resource.t) =
  let lo = reg_lower cfg r and hi = reg_upper cfg r in
  List.concat
    (List.init
       (max 0 (hi - lo + 1))
       (fun i ->
          let reg = lo + i in
          let t = occupancy cfg r ~reg in
          List.init t (fun j -> { reg; tlp = j + 1 })))

let max_reg_at_tlp cfg (r : Resource.t) ~tlp =
  let lo = reg_lower cfg r and hi = reg_upper cfg r in
  let rec scan reg best =
    if reg > hi then best
    else if occupancy cfg r ~reg >= tlp then scan (reg + 1) (Some reg)
    else best
  in
  scan lo None

(* rightmost stair points for every TLP up to [bound], keeping only the
   highest TLP among points sharing a register cap (same registers, more
   parallelism is never worse before the cache-contention bound) *)
let stairs_below cfg (r : Resource.t) ~bound =
  let rec collect tlp acc =
    if tlp < 1 then acc
    else
      match max_reg_at_tlp cfg r ~tlp with
      | Some reg ->
        let dominated = List.exists (fun p -> p.reg = reg && p.tlp > tlp) acc in
        collect (tlp - 1) (if dominated then acc else acc @ [ { reg; tlp } ])
      | None -> collect (tlp - 1) acc
  in
  collect bound []

let stairs cfg (r : Resource.t) =
  stairs_below cfg r ~bound:(occupancy cfg r ~reg:(reg_lower cfg r))

let prune cfg r ~opt_tlp = stairs_below cfg r ~bound:opt_tlp

let pp_point fmt p = Format.fprintf fmt "(reg=%d, TLP=%d)" p.reg p.tlp

(* Evaluate a whole frontier: one allocation per distinct register count
   (fanned across the engine's domains), then every simulation submitted
   as a single batch. *)
let evaluate engine cfg (app : Workloads.App.t) ?input points =
  let input =
    match input with
    | Some i -> i
    | None -> Workloads.App.default_input app
  in
  let regs = List.sort_uniq compare (List.map (fun p -> p.reg) points) in
  let allocs =
    Engine.map engine
      (fun reg -> (reg, Engine.allocate engine app ~reg_limit:reg))
      regs
  in
  (* one launch per distinct register count: every TLP point of a build
     shares the launch, so the engine records its trace once *)
  let launches =
    List.map
      (fun (reg, a) ->
         ( reg
         , Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~input
             () ))
      allocs
  in
  let stats =
    Engine.simulate_batch engine
      (List.map (fun p -> (List.assoc p.reg launches, cfg, p.tlp)) points)
  in
  List.combine points stats
