module App = Workloads.App
module Advisor = Verify.Advisor
module Access = Absint.Access
module Profile = Gpusim.Profile

let int_params ps =
  List.filter_map
    (fun (n, v) ->
       match v with
       | Gpusim.Value.I x -> Some (n, x)
       | Gpusim.Value.F _ -> None)
    ps

let geometry (cfg : Gpusim.Config.t) =
  (cfg.Gpusim.Config.warp_size, cfg.Gpusim.Config.l1_line, cfg.Gpusim.Config.shared_banks)

let lint ?(cfg = Gpusim.Config.fermi) ?regs (app : App.t) =
  let warp_size, line, banks = geometry cfg in
  let regs = Option.value ~default:app.App.default_regs regs in
  Advisor.lint_kernel ~block_size:app.App.block_size ~reg_budget:regs
    ~warp_size ~line ~banks (App.kernel app)

let validate ?(cfg = Gpusim.Config.fermi) ?input (app : App.t) =
  let warp_size, line, banks = geometry cfg in
  let input =
    match input with
    | Some i -> i
    | None -> App.default_input app
  in
  let kernel = App.kernel app in
  let params = App.params app input in
  let report =
    Advisor.lint_kernel ~block_size:app.App.block_size
      ~num_blocks:input.App.num_blocks ~params:(int_params params)
      ~reg_budget:app.App.default_regs ~warp_size ~line ~banks kernel
  in
  let prof =
    Profile.run ~line ~banks
      (Gpusim.Launch.make ~warp_size ~kernel ~block_size:app.App.block_size
         ~num_blocks:input.App.num_blocks ~params
         (App.memory app input))
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let mems = report.Advisor.access.Access.mems in
  let branches = report.Advisor.access.Access.branches in
  List.iter
    (fun (pc, (s : Profile.mem_stat)) ->
       match List.find_opt (fun (m : Access.mem) -> m.Access.pc = pc) mems with
       | None ->
         fail "%s[%d]: dynamic %s access has no static record" app.App.abbr pc
           (Ptx.Types.space_to_string s.Profile.m_space)
       | Some m ->
         (match m.Access.seg_bound with
          | Some b when s.Profile.max_segments > b ->
            fail
              "%s[%d]: claimed at most %d segments per warp access, observed %d"
              app.App.abbr pc b s.Profile.max_segments
          | _ -> ());
         (match m.Access.bank_bound with
          | Some b when s.Profile.max_bank_degree > b ->
            fail
              "%s[%d]: claimed bank-conflict degree at most %d, observed %d"
              app.App.abbr pc b s.Profile.max_bank_degree
          | _ -> ()))
    (Profile.mems prof);
  List.iter
    (fun (pc, (s : Profile.branch_stat)) ->
       match
         List.find_opt (fun (b : Access.branch) -> b.Access.bpc = pc) branches
       with
       | None ->
         fail "%s[%d]: dynamic conditional branch has no static record"
           app.App.abbr pc
       | Some b ->
         if b.Access.uniform && s.Profile.b_divergent > 0 then
           fail
             "%s[%d]: branch claimed uniform but split the warp %d time(s)"
             app.App.abbr pc s.Profile.b_divergent)
    (Profile.branches prof);
  (report, List.rev !failures)
