(** The CRAT pipeline (paper Figure 9): resource analysis → design-space
    pruning → per-candidate register allocation (with the shared-memory
    spilling optimization) → TPSC comparison → chosen solution. *)

type mode =
  [ `Profile  (** OptTLP by exhaustive TLP profiling (CRAT-profile) *)
  | `Static  (** OptTLP by static GTO-mimicking analysis (CRAT-static) *)
  ]

type candidate =
  { point : Design_space.point
  ; alloc : Regalloc.Allocator.t
  ; tpsc : float
  ; spare_shm : int  (** shared bytes per block Algorithm 1 could use *)
  }

type plan =
  { app : Workloads.App.t
  ; resource : Resource.t
  ; opt_tlp : int
  ; mode : mode
  ; backend : Machine.Backend.t
  ; shared_spilling : bool
  ; candidates : candidate list  (** TLP descending *)
  ; chosen : candidate
  }

val plan :
  ?mode:mode
  -> ?backend:Machine.Backend.t
      (** [Machine] (default [Ptx]) runs resource analysis and every
          candidate allocation with the split scalar/vector register
          files — uniform values stop counting against the per-thread
          budget, widening the feasible (reg, TLP) frontier *)
  -> ?shared_spilling:bool
  -> ?metric:[ `Static_counts | `Weighted_counts ]
      (** [`Static_counts] is the paper's TPSC exactly;
          [`Weighted_counts] (default) weights spill accesses by loop
          depth, fixing a misprediction of the static formula (see
          {!Tpsc.tpsc_weighted}) *)
  -> ?profile_input:Workloads.App.input
  -> Engine.t
  -> Gpusim.Config.t
  -> Workloads.App.t
  -> plan
(** Defaults: [`Profile] mode with shared spilling enabled — the paper's
    full CRAT. [profile_input] is the input used to determine OptTLP
    (defaults to the app's default input). Allocations and profiling
    simulations go through [engine]: memoized, and fanned across its
    domains. *)

val pp_plan : Format.formatter -> plan -> unit
