(** Suite driver for the hybrid memory-safety sanitizer.

    {!stages} proves a workload's bounds at the three compiler stages
    ([pre-opt], [post-opt], [post-alloc]) — the last one covering the
    allocator's spill code, whose shared spill stack is held to
    per-thread sub-stacks. {!validate} arms the residual checks and
    replays the default launch through the profiling interpreter: the
    dynamic counters say what fraction of lane accesses still paid a
    bounds test, and any recorded violation (or proven-OOB static
    verdict) becomes a failure line. *)

type stage_report =
  { stage : string
  ; report : Verify.Sanitize.report
  }

val stage_names : string list
(** [["pre-opt"; "post-opt"; "post-alloc"]]. *)

val stages : ?regs:int -> ?spare:int -> Workloads.App.t -> stage_report list
(** Static bounds reports at each stage. [regs] is the allocator's
    register limit (default: the app's), [spare] enables the shared
    spill policy with that many spare bytes. *)

type dynamic =
  { report : Verify.Sanitize.report
      (** launch-specialised static report for the raw kernel *)
  ; counters : Gpusim.Sancheck.counters  (** residual-check counters *)
  ; failures : string list  (** empty when the launch is clean *)
  }

val validate :
  ?cfg:Gpusim.Config.t -> ?input:Workloads.App.input -> Workloads.App.t -> dynamic
(** Execute the app's launch with the sanitizer armed (mutating a fresh
    memory image). *)
