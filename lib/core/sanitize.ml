module App = Workloads.App
module San = Verify.Sanitize
module Sancheck = Gpusim.Sancheck

type stage_report =
  { stage : string
  ; report : San.report
  }

let stage_names = [ "pre-opt"; "post-opt"; "post-alloc" ]

let stages ?regs ?(spare = 0) (app : App.t) =
  let block_size = app.App.block_size in
  let regs = Option.value ~default:app.App.default_regs regs in
  let shared_policy = if spare > 0 then `Spare spare else `Off in
  let k = App.kernel app in
  let k', _ = Ptxopt.Pipeline.run ~block_size k in
  let a =
    Regalloc.Allocator.allocate ~shared_policy ~block_size ~reg_limit:regs k
  in
  [ { stage = "pre-opt"; report = San.sanitize_kernel ~block_size k }
  ; { stage = "post-opt"; report = San.sanitize_kernel ~block_size k' }
  ; { stage = "post-alloc"
    ; report =
        San.sanitize_kernel ~block_size a.Regalloc.Allocator.kernel
    }
  ]

type dynamic =
  { report : San.report
  ; counters : Sancheck.counters
  ; failures : string list
  }

let int_params ps =
  List.filter_map
    (fun (n, v) ->
       match v with
       | Gpusim.Value.I x -> Some (n, x)
       | Gpusim.Value.F _ -> None)
    ps

let validate ?(cfg = Gpusim.Config.fermi) ?input (app : App.t) =
  let input =
    match input with
    | Some i -> i
    | None -> App.default_input app
  in
  let kernel = App.kernel app in
  let params = App.params app input in
  let report =
    San.sanitize_kernel ~block_size:app.App.block_size
      ~num_blocks:input.App.num_blocks ~params:(int_params params) kernel
  in
  let rt = Sancheck.runtime (San.mask report) in
  let (_ : Gpusim.Profile.t) =
    Gpusim.Profile.run ~line:cfg.Gpusim.Config.l1_line
      ~banks:cfg.Gpusim.Config.shared_banks ~sanitize:rt
      (Gpusim.Launch.make ~warp_size:cfg.Gpusim.Config.warp_size ~kernel
         ~block_size:app.App.block_size ~num_blocks:input.App.num_blocks
         ~params (App.memory app input))
  in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  List.iter
    (fun d ->
       if Verify.Diagnostic.is_error d then
         fail "%s: static %s" app.App.abbr (Verify.Diagnostic.to_string d))
    report.San.diags;
  List.iter
    (fun (pc, (s : Sancheck.stat)) ->
       if s.Sancheck.violations > 0 then
         match s.Sancheck.first with
         | Some v ->
           fail
             "%s[%d]: %d out-of-bounds lane access(es); first: lane %d tid \
              %d at offset %Ld"
             app.App.abbr pc s.Sancheck.violations v.Sancheck.v_lane
             v.Sancheck.v_tid v.Sancheck.v_addr
         | None ->
           fail "%s[%d]: %d out-of-bounds lane access(es)" app.App.abbr pc
             s.Sancheck.violations)
    (Sancheck.stats rt.Sancheck.counters);
  { report; counters = rt.Sancheck.counters; failures = List.rev !failures }
