type mode =
  [ `Profile
  | `Static
  ]

type candidate =
  { point : Design_space.point
  ; alloc : Regalloc.Allocator.t
  ; tpsc : float
  ; spare_shm : int
  }

type plan =
  { app : Workloads.App.t
  ; resource : Resource.t
  ; opt_tlp : int
  ; mode : mode
  ; backend : Machine.Backend.t
  ; shared_spilling : bool
  ; candidates : candidate list
  ; chosen : candidate
  }

let plan ?(mode = `Profile) ?(backend = Machine.Backend.Ptx)
    ?(shared_spilling = true) ?(metric = `Weighted_counts)
    ?profile_input engine cfg app =
  let resource = Resource.analyze ~backend cfg app in
  let max_tlp = resource.Resource.max_tlp in
  let opt_tlp =
    match mode with
    | `Profile ->
      (Opttlp.profile engine cfg app ?input:profile_input ~max_tlp ())
        .Opttlp.opt_tlp
    | `Static -> Opttlp.estimate_static cfg app ?input:profile_input ~max_tlp ()
  in
  let points = Design_space.prune cfg resource ~opt_tlp in
  let costs = Micro.measure cfg in
  (* candidate allocations are independent: fan them across domains *)
  let candidates =
    Engine.map engine
      (fun (p : Design_space.point) ->
         let spare =
           if shared_spilling then
             Gpusim.Occupancy.spare_shared_bytes cfg
               (Resource.usage_at resource ~regs:p.Design_space.reg)
               ~tlp:p.Design_space.tlp
           else 0
         in
         let alloc =
           Engine.allocate engine app ~backend ~reg_limit:p.Design_space.reg
             ~shared_spare:spare
         in
         let tpsc =
           match metric with
           | `Static_counts ->
             Tpsc.tpsc cfg costs ~block_size:resource.Resource.block_size
               ~tlp:p.Design_space.tlp alloc.Regalloc.Allocator.stats
           | `Weighted_counts ->
             Tpsc.tpsc_weighted cfg costs ~block_size:resource.Resource.block_size
               ~tlp:p.Design_space.tlp alloc
         in
         { point = p; alloc; tpsc; spare_shm = spare })
      points
  in
  let chosen =
    match candidates with
    | [] -> invalid_arg (app.Workloads.App.abbr ^ ": empty candidate set")
    | first :: rest ->
      List.fold_left (fun best c -> if c.tpsc < best.tpsc then c else best) first rest
  in
  { app; resource; opt_tlp; mode; backend; shared_spilling; candidates; chosen }

let pp_plan fmt p =
  Format.fprintf fmt "%s: %a; OptTLP=%d (%s)@." p.app.Workloads.App.abbr
    Resource.pp p.resource p.opt_tlp
    (match p.mode with
     | `Profile -> "profiled"
     | `Static -> "static");
  List.iter
    (fun c ->
       Format.fprintf fmt "  %a spare_shm=%dB spills=%d (local %d, shm %d) TPSC=%.3f%s@."
         Design_space.pp_point c.point c.spare_shm
         (List.length c.alloc.Regalloc.Allocator.spilled)
         c.alloc.Regalloc.Allocator.stats.Regalloc.Spill.num_local
         c.alloc.Regalloc.Allocator.stats.Regalloc.Spill.num_shared c.tpsc
         (if c == p.chosen then "  <== chosen" else ""))
    p.candidates
