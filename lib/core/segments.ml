type segment =
  | Compute of int
  | Mem of int

type trace =
  { segments : segment list
  ; total_line_refs : int
  ; distinct_lines : int
  ; footprint_bytes : int
  ; reuse_ratio : float
  }

let latency_of (c : Gpusim.Config.t) = function
  | Ptx.Instr.Alu | Ptx.Instr.Ctrl -> c.Gpusim.Config.alu_latency
  | Ptx.Instr.Alu_heavy -> c.Gpusim.Config.alu_heavy_latency
  | Ptx.Instr.Sfu -> c.Gpusim.Config.sfu_latency
  | Ptx.Instr.Mem_const_param -> c.Gpusim.Config.const_latency
  | Ptx.Instr.Mem_global | Ptx.Instr.Mem_local | Ptx.Instr.Mem_shared
  | Ptx.Instr.Barrier -> c.Gpusim.Config.alu_latency

let trace (cfg : Gpusim.Config.t) app input =
  let kernel = Workloads.App.kernel app in
  let image = Gpusim.Image.prepare kernel in
  let memory = Workloads.App.memory app input in
  let lctx =
    { Gpusim.Interp.image
    ; global = memory
    ; params = Workloads.App.params app input
    ; block_size = app.Workloads.App.block_size
    ; num_blocks = input.Workloads.App.num_blocks
    ; san = None
    }
  in
  let _block, warps =
    Gpusim.Interp.make_block lctx ~ctaid:0 ~warp_size:cfg.Gpusim.Config.warp_size
  in
  let w =
    match warps with
    | w :: _ -> w
    | [] -> invalid_arg "Segments.trace: empty block"
  in
  let line = cfg.Gpusim.Config.l1_line in
  let lines = Hashtbl.create 256 in
  let segments = ref [] in
  let cur = ref 0 in
  let total_refs = ref 0 in
  let flush () =
    if !cur > 0 then begin
      segments := Compute !cur :: !segments;
      cur := 0
    end
  in
  let budget = ref 2_000_000 in
  while (not (Gpusim.Interp.is_done w)) && !budget > 0 do
    decr budget;
    match Gpusim.Interp.step w with
    | Gpusim.Interp.E_alu cls -> cur := !cur + latency_of cfg cls
    | Gpusim.Interp.E_barrier -> cur := !cur + cfg.Gpusim.Config.alu_latency
    | Gpusim.Interp.E_exit -> ()
    | Gpusim.Interp.E_mem { space = Ptx.Types.Shared; _ } ->
      cur := !cur + cfg.Gpusim.Config.shared_latency
    | Gpusim.Interp.E_mem _ ->
      let line64 = Int64.of_int line in
      let segs = ref [] in
      for i = 0 to Gpusim.Interp.mem_count w - 1 do
        let ln = Int64.div (Gpusim.Interp.mem_addr w i) line64 in
        if not (List.mem ln !segs) then segs := ln :: !segs
      done;
      List.iter (fun ln -> Hashtbl.replace lines ln ()) !segs;
      let n = List.length !segs in
      total_refs := !total_refs + n;
      flush ();
      segments := Mem n :: !segments
  done;
  flush ();
  let distinct = Hashtbl.length lines in
  let reuse =
    if !total_refs = 0 then 0.
    else 1. -. (float_of_int distinct /. float_of_int !total_refs)
  in
  { segments = List.rev !segments
  ; total_line_refs = !total_refs
  ; distinct_lines = distinct
  ; footprint_bytes = distinct * line
  ; reuse_ratio = reuse
  }

let pp fmt t =
  let ncomp = List.length (List.filter (function Compute _ -> true | Mem _ -> false) t.segments) in
  let nmem = List.length t.segments - ncomp in
  Format.fprintf fmt
    "%d compute + %d memory segments; %d line refs, %d distinct (reuse %.2f), footprint %dB"
    ncomp nmem t.total_line_refs t.distinct_lines t.reuse_ratio t.footprint_bytes
