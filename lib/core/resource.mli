(** Resource-usage analysis (paper Section 4.1, Table 1).

    Collects, per kernel: [MaxReg]/[MinReg] (register usage range),
    [BlockSize]/[MaxTLP] (thread-level parallelism), and [ShmSize]
    (shared memory per block). [OptTLP] is estimated separately
    ({!Opttlp}) by profiling or static analysis. *)

type t =
  { max_reg : int
      (** registers per thread that hold every variable with no spills —
          found by data-flow analysis (MaxLive) refined by a colouring
          probe, since graph colouring can need slightly more than the
          clique bound *)
  ; min_reg : int  (** NumRegister / MaxThreads; fewer never helps TLP *)
  ; block_size : int
  ; shm_size : int  (** bytes of shared memory per block (app's own) *)
  ; max_tlp : int
      (** occupancy at the default register allocation — the TLP of the
          MaxTLP baseline *)
  ; default_regs : int
  ; max_live_units : int  (** raw MaxLive in 32-bit units *)
  ; sregs_per_warp : int
      (** scalar-file units per warp the machine backend's allocation
          occupies; 0 under the PTX backend *)
  }

val analyze : ?backend:Machine.Backend.t -> Gpusim.Config.t -> Workloads.App.t -> t
(** [backend] (default [Ptx]) selects the register-file model:
    [Machine] probes [MaxReg] with the proven-uniform registers coloured
    against the per-warp scalar file ({!Machine.Scalarize}), which can
    lower [MaxReg] below MaxLive — the backend's TLP headroom — and
    reports the resulting scalar footprint in [sregs_per_warp]. *)

val usage_at : t -> regs:int -> Gpusim.Occupancy.usage
(** Occupancy usage record for a candidate register count. *)

val pp : Format.formatter -> t -> unit
