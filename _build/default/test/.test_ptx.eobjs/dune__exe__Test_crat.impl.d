test/test_crat.ml: Alcotest Crat Energy Float Gpusim List Regalloc Workloads
