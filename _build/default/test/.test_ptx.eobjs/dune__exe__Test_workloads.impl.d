test/test_workloads.ml: Alcotest Array Cfg Float Gpusim List Ptx Workloads
