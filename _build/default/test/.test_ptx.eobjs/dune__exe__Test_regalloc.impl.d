test/test_regalloc.ml: Alcotest Array Cfg Float Gen List Ptx QCheck QCheck_alcotest Regalloc Result Testsupport Workloads
