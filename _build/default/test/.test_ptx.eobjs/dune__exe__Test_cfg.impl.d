test/test_cfg.ml: Alcotest Array Cfg Float List Ptx QCheck QCheck_alcotest Testsupport Workloads
