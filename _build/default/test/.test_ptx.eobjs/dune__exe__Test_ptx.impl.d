test/test_ptx.ml: Alcotest Array Int64 List Ptx QCheck QCheck_alcotest Result String Testsupport Workloads
