test/test_gpusim.ml: Alcotest Array Float Gpusim Int64 List Printf Ptx QCheck QCheck_alcotest Regalloc Testsupport Workloads
