test/test_opt.ml: Alcotest List Ptx Ptxopt QCheck QCheck_alcotest Regalloc Result Testsupport Workloads
