test/test_integration.ml: Alcotest Crat Gpusim List Regalloc Testsupport Workloads
