test/test_crat.mli:
