test/support/gen.mli: Ptx QCheck
