test/support/gen.ml: Array Gpusim Int64 List Ptx QCheck Workloads
