(* Tests for CFG construction, liveness, dominance/post-dominance, loop
   detection and def-use statistics. *)

module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* a diamond: entry -> (then | else) -> join *)
let diamond_kernel () =
  let b = B.create "diamond" in
  let _ = B.param b "out" T.U64 in
  let tid = B.special b Ptx.Reg.Tid_x in
  let p = B.setp b I.Lt T.U32 (B.reg tid) (B.imm 16) in
  let else_l = B.fresh_label b "Lelse" in
  let join_l = B.fresh_label b "Ljoin" in
  let acc = B.mov b T.U32 (B.imm 0) in
  B.bra_ifnot b p else_l;
  B.acc_binop b I.Add T.U32 acc (B.imm 1);
  B.bra b join_l;
  B.label b else_l;
  B.acc_binop b I.Add T.U32 acc (B.imm 2);
  B.label b join_l;
  ignore (B.add b T.U32 (B.reg acc) (B.imm 3));
  B.finish b

let loop_kernel () =
  let b = B.create "loopy" in
  let _ = B.param b "out" T.U64 in
  let acc = B.mov b T.U32 (B.imm 0) in
  B.for_loop b ~from:(B.imm 0) ~below:(B.imm 8) ~step:1 (fun i ->
    B.acc_binop b I.Add T.U32 acc (B.reg i));
  B.finish b

let test_diamond_blocks () =
  let flow = Cfg.Flow.of_kernel (diamond_kernel ()) in
  check_int "four blocks" 4 (Cfg.Flow.num_blocks flow);
  let entry = Cfg.Flow.entry flow in
  check_int "entry has two successors" 2 (List.length entry.Cfg.Flow.succs);
  (* join block has two predecessors *)
  let join =
    Array.to_list flow.Cfg.Flow.blocks
    |> List.find (fun b -> List.length b.Cfg.Flow.preds = 2)
  in
  check "join exists" true (join.Cfg.Flow.bid > 0);
  check_int "single exit" 1 (List.length (Cfg.Flow.exit_blocks flow))

let test_loop_blocks () =
  let flow = Cfg.Flow.of_kernel (loop_kernel ()) in
  (* entry, head, body, exit *)
  check_int "four blocks" 4 (Cfg.Flow.num_blocks flow);
  let edges = Cfg.Loops.back_edges flow in
  check_int "one back edge" 1 (List.length edges);
  let depths = Cfg.Loops.depths flow in
  check "body in loop" true (Array.exists (fun d -> d = 1) depths);
  check "entry not in loop" true (depths.(0) = 0)

let test_preds_consistent_with_succs () =
  let flow = Cfg.Flow.of_kernel (diamond_kernel ()) in
  Array.iter
    (fun (blk : Cfg.Flow.block) ->
       List.iter
         (fun s ->
            check "succ lists us as pred" true
              (List.mem blk.Cfg.Flow.bid flow.Cfg.Flow.blocks.(s).Cfg.Flow.preds))
         blk.Cfg.Flow.succs)
    flow.Cfg.Flow.blocks

(* ---------- liveness ---------- *)

let test_liveness_straightline () =
  (* r0 = tid; r1 = r0+1; r2 = r1+1; store r2 : r0 dies after first add *)
  let b = B.create "sl" in
  let out = B.param b "out" T.U64 in
  let t = B.special b Ptx.Reg.Tid_x in
  let a = B.add b T.U32 (B.reg t) (B.imm 1) in
  let c = B.add b T.U32 (B.reg a) (B.imm 1) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg c);
  let k = B.finish b in
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  (* at the final store, only c and base are live-in *)
  let n = Cfg.Flow.num_instrs flow in
  let last_store = n - 2 in
  check "t dead at store" false
    (Ptx.Reg.Set.mem t live.Cfg.Liveness.live_in.(last_store));
  check "c live at store" true
    (Ptx.Reg.Set.mem c live.Cfg.Liveness.live_in.(last_store));
  check "nothing live out of the end" true
    (Ptx.Reg.Set.is_empty live.Cfg.Liveness.live_out.(n - 1))

let test_liveness_loop_carried () =
  let k = loop_kernel () in
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  (* the accumulator must be live around the back edge: live-in of the
     loop-head block *)
  let found = ref false in
  Array.iteri
    (fun i ins ->
       match ins with
       | I.Setp _ ->
         if Ptx.Reg.Set.cardinal live.Cfg.Liveness.live_in.(i) >= 2 then found := true
       | _ -> ())
    flow.Cfg.Flow.instrs;
  check "accumulator and induction live at head" true !found

let test_max_pressure_monotone_subkernel () =
  let k = Workloads.App.kernel (Workloads.Suite.find "CFD") in
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  let p = Cfg.Liveness.max_pressure live in
  check "CFD pressure in plausible band" true (p > 40 && p < 120)

let test_pressure_at_counts_units () =
  let set =
    Ptx.Reg.Set.of_list
      [ Ptx.Reg.make 0 T.U32; Ptx.Reg.make 1 T.U64; Ptx.Reg.make 2 T.Pred ]
  in
  check_int "1 + 2 + 0 units" 3 (Cfg.Liveness.pressure_at set)

(* ---------- dominance ---------- *)

let test_dominators_diamond () =
  let flow = Cfg.Flow.of_kernel (diamond_kernel ()) in
  let dom = Cfg.Dominance.dominators flow in
  (* entry dominates everything *)
  for i = 0 to Cfg.Flow.num_blocks flow - 1 do
    check "entry dominates" true (Cfg.Dominance.dominates dom 0 i)
  done;
  (* then-block does not dominate join *)
  let join =
    (Array.to_list flow.Cfg.Flow.blocks
     |> List.find (fun b -> List.length b.Cfg.Flow.preds = 2)).Cfg.Flow.bid
  in
  check "then does not dominate join" false (Cfg.Dominance.dominates dom 1 join);
  Alcotest.(check (option int)) "idom of join is entry" (Some 0)
    (Cfg.Dominance.idom dom join)

let test_post_dominators_diamond () =
  let flow = Cfg.Flow.of_kernel (diamond_kernel ()) in
  let pdom = Cfg.Dominance.post_dominators flow in
  let join =
    (Array.to_list flow.Cfg.Flow.blocks
     |> List.find (fun b -> List.length b.Cfg.Flow.preds = 2)).Cfg.Flow.bid
  in
  (* the join post-dominates the entry; the reconvergence point of the
     entry block's branch is the join's first instruction *)
  check "join post-dominates entry" true (Cfg.Dominance.dominates pdom join 0);
  (match Cfg.Dominance.reconvergence_point flow pdom 0 with
   | Some pc ->
     check_int "reconverge at join head" flow.Cfg.Flow.blocks.(join).Cfg.Flow.first pc
   | None -> Alcotest.fail "no reconvergence point")

let test_post_dominators_loop () =
  let flow = Cfg.Flow.of_kernel (loop_kernel ()) in
  let pdom = Cfg.Dominance.post_dominators flow in
  (* the loop head's conditional branch reconverges at the exit block *)
  let head_block =
    (* block ending in Bra_pred *)
    Array.to_list flow.Cfg.Flow.blocks
    |> List.find (fun (b : Cfg.Flow.block) ->
      match flow.Cfg.Flow.instrs.(b.Cfg.Flow.last) with
      | I.Bra_pred _ -> true
      | _ -> false)
  in
  match Cfg.Dominance.reconvergence_point flow pdom head_block.Cfg.Flow.bid with
  | Some pc -> check "reconv beyond loop" true (pc > head_block.Cfg.Flow.last)
  | None -> Alcotest.fail "loop branch must reconverge"

(* ---------- def-use ---------- *)

let test_defuse_loop_weighting () =
  let k = loop_kernel () in
  let flow = Cfg.Flow.of_kernel k in
  let stats = Cfg.Defuse.compute flow in
  (* the accumulator (inside the loop) must have higher weighted count
     than a register of equal static count outside *)
  let max_weight =
    Ptx.Reg.Map.fold (fun _ s acc -> Float.max acc s.Cfg.Defuse.weighted) stats 0.
  in
  check "loop weighting applied" true (max_weight >= 30.)

let test_nested_loop_depths () =
  (* the workload pass_loop is a double nest: inner blocks at depth 2 *)
  let k = Workloads.App.kernel (Workloads.Suite.find "KMN") in
  let flow = Cfg.Flow.of_kernel k in
  let depths = Cfg.Loops.depths flow in
  check "depth-2 blocks exist" true (Array.exists (fun d -> d >= 2) depths);
  check_int "two back edges" 2 (List.length (Cfg.Loops.back_edges flow))

let test_defuse_exact_counts () =
  let b = B.create "du" in
  let out = B.param b "out" T.U64 in
  let x = B.mov b T.U32 (B.imm 1) in
  let y = B.add b T.U32 (B.reg x) (B.reg x) in
  let base = B.ld_param b T.U64 out in
  B.st b T.Global T.U32 (B.reg base) 0 (B.reg y);
  let k = B.finish b in
  let flow = Cfg.Flow.of_kernel k in
  let du = Cfg.Defuse.compute flow in
  let sx = Ptx.Reg.Map.find x du in
  check_int "x defined once" 1 sx.Cfg.Defuse.n_defs;
  check_int "x used twice" 2 sx.Cfg.Defuse.n_uses;
  let sy = Ptx.Reg.Map.find y du in
  check_int "y used once" 1 sy.Cfg.Defuse.n_uses

let prop_liveness_use_implies_livein =
  QCheck.Test.make ~count:40 ~name:"instruction uses are live-in"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let flow = Cfg.Flow.of_kernel k in
      let live = Cfg.Liveness.compute flow in
      let ok = ref true in
      Cfg.Flow.iter_instrs flow (fun i ins ->
        List.iter
          (fun r ->
             if not (Ptx.Reg.Set.mem r live.Cfg.Liveness.live_in.(i)) then ok := false)
          (I.uses ins));
      !ok)

let prop_liveness_fixpoint =
  QCheck.Test.make ~count:30 ~name:"live-out is union of successor live-ins"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let flow = Cfg.Flow.of_kernel k in
      let live = Cfg.Liveness.compute flow in
      Array.for_all
        (fun (blk : Cfg.Flow.block) ->
           let out = live.Cfg.Liveness.live_out.(blk.Cfg.Flow.last) in
           let expect =
             List.fold_left
               (fun acc s ->
                  Ptx.Reg.Set.union acc
                    live.Cfg.Liveness.live_in.(flow.Cfg.Flow.blocks.(s).Cfg.Flow.first))
               Ptx.Reg.Set.empty blk.Cfg.Flow.succs
           in
           Ptx.Reg.Set.equal out expect)
        flow.Cfg.Flow.blocks)

let prop_entry_dominates_all =
  QCheck.Test.make ~count:30 ~name:"entry dominates every block"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let flow = Cfg.Flow.of_kernel k in
      let dom = Cfg.Dominance.dominators flow in
      let ok = ref true in
      for i = 0 to Cfg.Flow.num_blocks flow - 1 do
        if not (Cfg.Dominance.dominates dom 0 i) then ok := false
      done;
      !ok)

let () =
  Alcotest.run "cfg"
    [ ( "flow"
      , [ Alcotest.test_case "diamond blocks" `Quick test_diamond_blocks
        ; Alcotest.test_case "loop blocks" `Quick test_loop_blocks
        ; Alcotest.test_case "preds consistent" `Quick test_preds_consistent_with_succs
        ] )
    ; ( "liveness"
      , [ Alcotest.test_case "straight line" `Quick test_liveness_straightline
        ; Alcotest.test_case "loop carried" `Quick test_liveness_loop_carried
        ; Alcotest.test_case "CFD pressure band" `Quick test_max_pressure_monotone_subkernel
        ; Alcotest.test_case "pressure units" `Quick test_pressure_at_counts_units
        ] )
    ; ( "dominance"
      , [ Alcotest.test_case "dominators (diamond)" `Quick test_dominators_diamond
        ; Alcotest.test_case "post-dominators (diamond)" `Quick test_post_dominators_diamond
        ; Alcotest.test_case "post-dominators (loop)" `Quick test_post_dominators_loop
        ] )
    ; ( "defuse"
      , [ Alcotest.test_case "loop weighting" `Quick test_defuse_loop_weighting
        ; Alcotest.test_case "nested loop depths" `Quick test_nested_loop_depths
        ; Alcotest.test_case "exact counts" `Quick test_defuse_exact_counts
        ] )
    ; ( "properties"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_liveness_use_implies_livein
          ; prop_liveness_fixpoint
          ; prop_entry_dominates_all
          ] )
    ]
