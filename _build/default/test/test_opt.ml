(* Tests for the PTX cleanup passes: dead-code elimination, local copy
   propagation and constant folding, plus the combined pipeline. The key
   property: every pass preserves kernel semantics exactly. *)

module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let store_result b out v =
  let tid = B.special b Ptx.Reg.Tid_x in
  let base = B.ld_param b T.U64 out in
  let byte = B.mul b T.U32 (B.reg tid) (B.imm 4) in
  let o = B.cvt b T.U64 T.U32 (B.reg byte) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o) in
  B.st b T.Global T.U32 (B.reg addr) 0 (B.reg v)

let test_dce_removes_dead_chain () =
  let b = B.create "dead" in
  let out = B.param b "out" T.U64 in
  (* a dead chain of three instructions *)
  let d1 = B.mov b T.U32 (B.imm 1) in
  let d2 = B.add b T.U32 (B.reg d1) (B.imm 2) in
  let _d3 = B.mul b T.U32 (B.reg d2) (B.imm 3) in
  let live = B.mov b T.U32 (B.imm 42) in
  store_result b out live;
  let k = B.finish b in
  let k', removed = Ptxopt.Dce.run k in
  check_int "three dead instructions removed" 3 removed;
  check "valid" true (Result.is_ok (Ptx.Kernel.validate k'))

let test_dce_keeps_stores () =
  let b = B.create "keep" in
  let out = B.param b "out" T.U64 in
  let v = B.mov b T.U32 (B.imm 5) in
  store_result b out v;
  let k = B.finish b in
  let _, removed = Ptxopt.Dce.run k in
  check_int "nothing to remove" 0 removed

let test_copyprop_forwards () =
  let b = B.create "cp" in
  let out = B.param b "out" T.U64 in
  let s = B.mov b T.U32 (B.imm 9) in
  let d = B.mov b T.U32 (B.reg s) in
  let e = B.add b T.U32 (B.reg d) (B.imm 1) in
  store_result b out e;
  let k = B.finish b in
  let k', n = Ptxopt.Copyprop.run k in
  check "a use was propagated" true (n >= 1);
  (* after propagation + DCE the copy disappears *)
  let k'', removed = Ptxopt.Dce.run k' in
  check "the copy became dead" true (removed >= 1);
  check "valid" true (Result.is_ok (Ptx.Kernel.validate k''))

let test_copyprop_respects_redefinition () =
  let b = B.create "cpkill" in
  let out = B.param b "out" T.U64 in
  let s = B.mov b T.U32 (B.imm 9) in
  let d = B.mov b T.U32 (B.reg s) in
  (* s is redefined: uses of d after this must NOT become s *)
  B.acc_binop b I.Add T.U32 s (B.imm 100);
  let e = B.add b T.U32 (B.reg d) (B.imm 1) in
  store_result b out e;
  let k = B.finish b in
  let k', _ = Ptxopt.Copyprop.run k in
  let before = Testsupport.Gen.run_emulated k in
  let after = Testsupport.Gen.run_emulated k' in
  check "semantics preserved around redefinition" true
    (Testsupport.Gen.outputs_equal before after)

let test_constfold_arithmetic () =
  let b = B.create "cf" in
  let out = B.param b "out" T.U64 in
  let a = B.mov b T.U32 (B.imm 6) in
  let c = B.mul b T.U32 (B.reg a) (B.imm 7) in
  let d = B.add b T.U32 (B.reg c) (B.imm 0) in
  store_result b out d;
  let k = B.finish b in
  let before = Testsupport.Gen.run_emulated k in
  let k', folded = Ptxopt.Constfold.run k in
  check "folded the chain" true (folded >= 2);
  (* the chain collapses to a single constant move *)
  let movs =
    List.length
      (List.filter
         (fun i ->
            match i with
            | I.Mov (_, _, I.Oimm 42L) -> true
            | _ -> false)
         (Ptx.Kernel.instrs k'))
  in
  check "final constant is 42" true (movs >= 1);
  check "semantics preserved" true
    (Testsupport.Gen.outputs_equal before (Testsupport.Gen.run_emulated k'))

let test_constfold_exact_float () =
  (* folding must use the simulator's own f32 semantics *)
  let b = B.create "cff" in
  let out = B.param b "out" T.U64 in
  let x = B.mov b T.F32 (B.fimm 0.1) in
  let y = B.mad b T.F32 (B.reg x) (B.fimm 3.0) (B.fimm 0.7) in
  let z = B.cvt b T.U32 T.F32 (B.reg y) in
  store_result b out z;
  let k = B.finish b in
  let before = Testsupport.Gen.run_emulated k in
  let k', _ = Ptxopt.Constfold.run k in
  let after = Testsupport.Gen.run_emulated k' in
  check "bit-exact float folding" true (Testsupport.Gen.outputs_equal before after)

let test_pipeline_on_workloads () =
  List.iter
    (fun abbr ->
       let app = Workloads.Suite.find abbr in
       let k = Workloads.App.kernel app in
       let k', report = Ptxopt.Pipeline.run k in
       check (abbr ^ " still valid") true (Result.is_ok (Ptx.Kernel.validate k'));
       check (abbr ^ " not larger") true
         (Ptx.Kernel.instr_count k' <= Ptx.Kernel.instr_count k);
       check (abbr ^ " terminated") true (report.Ptxopt.Pipeline.iterations <= 8))
    [ "CFD"; "KMN"; "SPMV"; "HST" ]

let prop_pipeline_idempotent =
  QCheck.Test.make ~count:30 ~name:"pipeline is idempotent"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let k1, _ = Ptxopt.Pipeline.run k in
      let k2, r2 = Ptxopt.Pipeline.run k1 in
      r2.Ptxopt.Pipeline.folded = 0
      && r2.Ptxopt.Pipeline.propagated = 0
      && r2.Ptxopt.Pipeline.eliminated = 0
      && Ptx.Kernel.instr_count k1 = Ptx.Kernel.instr_count k2)

let prop_dce_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"DCE preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let k', _ = Ptxopt.Dce.run k in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated k'))

let prop_copyprop_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"copy propagation preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let k', _ = Ptxopt.Copyprop.run k in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated k'))

let prop_constfold_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"constant folding preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let k', _ = Ptxopt.Constfold.run k in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated k'))

let prop_pipeline_preserves_semantics =
  QCheck.Test.make ~count:40 ~name:"pipeline preserves semantics"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let k', _ = Ptxopt.Pipeline.run k in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated k'))

let prop_pipeline_after_allocation =
  QCheck.Test.make ~count:25 ~name:"pipeline composes with allocation"
    Testsupport.Gen.arbitrary_kernel (fun k ->
      let a = Regalloc.Allocator.allocate ~block_size:64 ~reg_limit:14 k in
      let k', _ = Ptxopt.Pipeline.run a.Regalloc.Allocator.kernel in
      Testsupport.Gen.outputs_equal
        (Testsupport.Gen.run_emulated k)
        (Testsupport.Gen.run_emulated k'))

let () =
  Alcotest.run "ptxopt"
    [ ( "dce"
      , [ Alcotest.test_case "removes dead chain" `Quick test_dce_removes_dead_chain
        ; Alcotest.test_case "keeps stores" `Quick test_dce_keeps_stores
        ] )
    ; ( "copyprop"
      , [ Alcotest.test_case "forwards copies" `Quick test_copyprop_forwards
        ; Alcotest.test_case "respects redefinition" `Quick
            test_copyprop_respects_redefinition
        ] )
    ; ( "constfold"
      , [ Alcotest.test_case "folds arithmetic" `Quick test_constfold_arithmetic
        ; Alcotest.test_case "bit-exact floats" `Quick test_constfold_exact_float
        ] )
    ; ( "pipeline"
      , [ Alcotest.test_case "workload kernels" `Quick test_pipeline_on_workloads ] )
    ; ( "properties"
      , List.map QCheck_alcotest.to_alcotest
          [ prop_pipeline_idempotent
          ; prop_dce_preserves_semantics
          ; prop_copyprop_preserves_semantics
          ; prop_constfold_preserves_semantics
          ; prop_pipeline_preserves_semantics
          ; prop_pipeline_after_allocation
          ] )
    ]
