(** Conservative copy coalescing (Briggs).

    A copy [mov d, s] whose operands do not interfere can often assign
    [d] and [s] the same register, making the copy a no-op that is then
    deleted. Aggressive coalescing can make the graph uncolourable, so
    the Briggs test is applied: the merged node must have fewer than [k]
    neighbours of significant degree (>= k), which guarantees it remains
    simplifiable whenever the uncoalesced nodes were.

    This is an optional extension of the paper's allocator (their
    implementation reports copy-related register waste; coalescing
    removes it). It is exposed through
    [Allocator.allocate ~coalesce:true] and benchmarked by the
    [abl-coalesce] ablation. *)

val build_aliases :
  graph:Interference.t
  -> flow:Cfg.Flow.t
  -> k_of:(Ptx.Types.reg_class -> int)
  -> protected:Ptx.Reg.Set.t
  -> Ptx.Reg.t Ptx.Reg.Map.t
(** Map each coalesced register to its representative. [protected]
    registers (spill infrastructure) are never coalesced. The returned
    map is idempotent (representatives map to themselves or are
    absent). *)

val apply : Ptx.Kernel.t -> Ptx.Reg.t Ptx.Reg.Map.t -> Ptx.Kernel.t * int
(** Substitute representatives throughout and delete the moves that
    became [mov r, r]; returns the rewritten kernel and the number of
    copies removed. *)
