type substack =
  { sty : Ptx.Types.scalar
  ; sregs : Ptx.Reg.t list
  ; bytes_per_thread : int
  ; gain : float
  }

let align_up x a = (x + a - 1) / a * a

let rec chunks n = function
  | [] -> []
  | l ->
    let rec take k acc = function
      | rest when k = 0 -> (List.rev acc, rest)
      | [] -> (List.rev acc, [])
      | x :: rest -> take (k - 1) (x :: acc) rest
    in
    let c, rest = take n [] l in
    c :: chunks n rest

let split ?(chunk = 4) ~gain regs =
  let groups = Hashtbl.create 8 in
  List.iter
    (fun r ->
       let ty = Ptx.Reg.ty r in
       let cur = Option.value ~default:[] (Hashtbl.find_opt groups ty) in
       Hashtbl.replace groups ty (r :: cur))
    regs;
  Hashtbl.fold
    (fun ty rs acc ->
       let rs =
         List.sort (fun a b -> compare (gain b) (gain a)) (List.rev rs)
       in
       let w = Ptx.Types.width_bytes ty in
       List.fold_left
         (fun acc c ->
            let bytes = align_up (List.length c * w) 8 in
            let g = List.fold_left (fun a r -> a +. gain r) 0. c in
            { sty = ty; sregs = c; bytes_per_thread = bytes; gain = g } :: acc)
         acc (chunks (max 1 chunk) rs))
    groups []
  |> List.sort (fun a b -> compare (a.sty, List.map Ptx.Reg.id a.sregs) (b.sty, List.map Ptx.Reg.id b.sregs))

(* Exact 0-1 knapsack, DP over items x capacity with backtracking, as in
   the paper's S[i, v] / Mask[i, v] formulation. Capacity is scaled to
   4-byte units to bound the table size. *)
let knapsack ~values ~weights ~capacity =
  let n = Array.length values in
  assert (Array.length weights = n);
  if n = 0 then [||]
  else begin
    let scale = 4 in
    let cap = capacity / scale in
    let w = Array.map (fun x -> (x + scale - 1) / scale) weights in
    let s = Array.make_matrix (n + 1) (cap + 1) 0. in
    let keep = Array.make_matrix (n + 1) (cap + 1) false in
    for i = 1 to n do
      for v = 0 to cap do
        s.(i).(v) <- s.(i - 1).(v);
        if w.(i - 1) <= v then begin
          let take = s.(i - 1).(v - w.(i - 1)) +. values.(i - 1) in
          if take > s.(i).(v) then begin
            s.(i).(v) <- take;
            keep.(i).(v) <- true
          end
        end
      done
    done;
    let mask = Array.make n false in
    let v = ref cap in
    for i = n downto 1 do
      if keep.(i).(!v) then begin
        mask.(i - 1) <- true;
        v := !v - w.(i - 1)
      end
    done;
    mask
  end

let optimize ?chunk ~gain ~block_size ~spare_shm_bytes spilled =
  let subs = split ?chunk ~gain spilled in
  let n = List.length subs in
  if n = 0 || spare_shm_bytes <= 0 then fun _ -> false
  else begin
    let subs_arr = Array.of_list subs in
    let values = Array.map (fun s -> s.gain) subs_arr in
    let weights = Array.map (fun s -> s.bytes_per_thread * block_size) subs_arr in
    let mask = knapsack ~values ~weights ~capacity:spare_shm_bytes in
    let chosen = ref Ptx.Reg.Set.empty in
    Array.iteri
      (fun i s ->
         if mask.(i) then
           List.iter (fun r -> chosen := Ptx.Reg.Set.add r !chosen) s.sregs)
      subs_arr;
    fun r -> Ptx.Reg.Set.mem r !chosen
  end
