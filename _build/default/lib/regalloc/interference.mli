(** Interference graph over virtual registers (Chaitin's construction):
    at every instruction, each defined register interferes with the
    registers live-out of that instruction — except, for a move, with the
    move source (enabling the classic copy exception). Only registers of
    the same width class interfere; predicates have their own class and
    never constrain the 32/64-bit pools. *)

type t

val build : Cfg.Flow.t -> Cfg.Liveness.t -> t
val nodes : t -> Ptx.Reg.t list
val nodes_of_class : t -> Ptx.Types.reg_class -> Ptx.Reg.t list
val neighbors : t -> Ptx.Reg.t -> Ptx.Reg.Set.t
val degree : t -> Ptx.Reg.t -> int
val interferes : t -> Ptx.Reg.t -> Ptx.Reg.t -> bool
val num_edges : t -> int
(** Undirected edge count. *)

val max_live : t -> Cfg.Liveness.t -> Ptx.Types.reg_class -> int
(** Maximum number of simultaneously live registers of one class. *)
