module RSet = Ptx.Reg.Set
module RMap = Ptx.Reg.Map

(* Union-find over registers with incremental neighbour-set merging: the
   interference graph is read once and coalescing decisions use the
   merged adjacency of the current representatives. *)

type uf =
  { mutable parent : Ptx.Reg.t RMap.t
  ; mutable adj : RSet.t RMap.t
  }

let rec find uf r =
  match RMap.find_opt r uf.parent with
  | None -> r
  | Some p ->
    let root = find uf p in
    if not (Ptx.Reg.equal root p) then uf.parent <- RMap.add r root uf.parent;
    root

let neighbors uf r =
  match RMap.find_opt (find uf r) uf.adj with
  | Some s -> s
  | None -> RSet.empty

let interferes uf a b =
  let ra = find uf a and rb = find uf b in
  RSet.exists (fun n -> Ptx.Reg.equal (find uf n) rb) (neighbors uf ra)

let union uf a b =
  (* merge b's class into a's *)
  let ra = find uf a and rb = find uf b in
  if not (Ptx.Reg.equal ra rb) then begin
    uf.parent <- RMap.add rb ra uf.parent;
    let merged = RSet.union (neighbors uf ra) (neighbors uf rb) in
    uf.adj <- RMap.add ra merged (RMap.remove rb uf.adj)
  end

(* Briggs conservative test on the merged node: count distinct
   representative neighbours of significant degree. *)
let briggs_ok uf k a b =
  let ra = find uf a and rb = find uf b in
  let merged = RSet.union (neighbors uf ra) (neighbors uf rb) in
  let reps =
    RSet.fold (fun n acc -> RSet.add (find uf n) acc) merged RSet.empty
  in
  let significant =
    RSet.fold
      (fun n acc -> if RSet.cardinal (neighbors uf n) >= k then acc + 1 else acc)
      (RSet.remove ra (RSet.remove rb reps))
      0
  in
  significant < k

let build_aliases ~graph ~flow ~k_of ~protected =
  let uf = { parent = RMap.empty; adj = RMap.empty } in
  List.iter
    (fun r -> uf.adj <- RMap.add r (Interference.neighbors graph r) uf.adj)
    (Interference.nodes graph);
  let try_coalesce d s =
    let cls_d = Ptx.Types.reg_class (Ptx.Reg.ty d) in
    (* identical scalar types only: the rewrite is then a pure renaming
       (cross-type copies would need bit reinterpretation semantics) *)
    if
      Ptx.Types.equal_scalar (Ptx.Reg.ty d) (Ptx.Reg.ty s)
      && (not (RSet.mem d protected))
      && (not (RSet.mem s protected))
      && (not (Ptx.Reg.equal (find uf d) (find uf s)))
      && (not (interferes uf d s))
      && briggs_ok uf (k_of cls_d) d s
    then union uf s d
  in
  Cfg.Flow.iter_instrs flow (fun _ ins ->
    match ins with
    | Ptx.Instr.Mov (_, d, Ptx.Instr.Oreg s) -> try_coalesce d s
    | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _ | Ptx.Instr.Unop _
    | Ptx.Instr.Cvt _ | Ptx.Instr.Setp _ | Ptx.Instr.Selp _ | Ptx.Instr.Ld _
    | Ptx.Instr.St _ | Ptx.Instr.Bra _ | Ptx.Instr.Bra_pred _
    | Ptx.Instr.Bar_sync | Ptx.Instr.Ret -> ());
  (* flatten the union-find into an idempotent alias map *)
  RMap.fold
    (fun r _ acc ->
       let root = find uf r in
       if Ptx.Reg.equal root r then acc else RMap.add r root acc)
    uf.parent RMap.empty

let apply (k : Ptx.Kernel.t) aliases =
  if RMap.is_empty aliases then (k, 0)
  else begin
    let subst r =
      match RMap.find_opt r aliases with
      | Some root -> root
      | None -> r
    in
    let removed = ref 0 in
    let body =
      Array.to_list k.Ptx.Kernel.body
      |> List.filter_map (fun stmt ->
        match stmt with
        | Ptx.Kernel.L _ -> Some stmt
        | Ptx.Kernel.I ins ->
          let ins' = Ptx.Instr.map_regs subst ins in
          (match ins' with
           | Ptx.Instr.Mov (_, d, Ptx.Instr.Oreg s) when Ptx.Reg.equal d s ->
             incr removed;
             None
           | _ -> Some (Ptx.Kernel.I ins')))
    in
    ({ k with Ptx.Kernel.body = Array.of_list body }, !removed)
  end
