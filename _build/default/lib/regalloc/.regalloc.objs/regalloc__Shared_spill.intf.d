lib/regalloc/shared_spill.mli: Ptx
