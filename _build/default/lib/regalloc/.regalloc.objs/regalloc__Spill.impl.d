lib/regalloc/spill.ml: Array Either Int64 List Option Ptx
