lib/regalloc/coalesce.ml: Array Cfg Interference List Ptx
