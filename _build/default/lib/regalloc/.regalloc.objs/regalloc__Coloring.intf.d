lib/regalloc/coloring.mli: Interference Ptx
