lib/regalloc/linear_scan.ml: Cfg Coloring List Ptx
