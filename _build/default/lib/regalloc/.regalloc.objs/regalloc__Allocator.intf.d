lib/regalloc/allocator.mli: Ptx Spill
