lib/regalloc/shared_spill.ml: Array Hashtbl List Option Ptx
