lib/regalloc/allocator.ml: Cfg Coalesce Coloring Interference Linear_scan List Option Printf Ptx Shared_spill Spill
