lib/regalloc/spill.mli: Ptx
