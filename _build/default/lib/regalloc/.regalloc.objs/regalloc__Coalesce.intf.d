lib/regalloc/coalesce.mli: Cfg Interference Ptx
