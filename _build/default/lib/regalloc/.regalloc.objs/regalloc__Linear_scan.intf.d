lib/regalloc/linear_scan.mli: Cfg Coloring Ptx
