lib/regalloc/interference.mli: Cfg Ptx
