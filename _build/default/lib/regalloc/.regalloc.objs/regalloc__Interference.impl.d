lib/regalloc/interference.ml: Array Cfg List Ptx
