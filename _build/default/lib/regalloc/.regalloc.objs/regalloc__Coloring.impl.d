lib/regalloc/coloring.ml: Hashtbl Interference List Printf Ptx
