(** Spilling optimization (paper Algorithm 1).

    The spill stack is split into sub-stacks by the data type / width of
    the spilled variables; each sub-stack can be hosted in shared memory
    as a whole. The gain of moving sub-stack [i] to shared memory is the
    number of spill accesses it absorbs ([gain[i]]); the cost is its
    shared-memory footprint, [bytes_per_thread * block_size], because
    every thread of the block needs private slots. Choosing the best
    subset under the spare-shared-memory budget is a 0-1 knapsack
    problem, solved exactly by dynamic programming. *)

type substack =
  { sty : Ptx.Types.scalar
  ; sregs : Ptx.Reg.t list
  ; bytes_per_thread : int  (** aligned footprint of the sub-stack *)
  ; gain : float  (** total spill accesses absorbed *)
  }

val split : ?chunk:int -> gain:(Ptx.Reg.t -> float) -> Ptx.Reg.t list -> substack list
(** Group spilled registers into sub-stacks by scalar type (paper:
    "according to the data type and the width of the spilled variables").
    Large type groups are further divided into chunks of at most [chunk]
    registers, highest-gain first (default 4) — the finer granularity the
    paper leaves as future work; it lets the knapsack place part of a
    type's spills when the whole group does not fit. *)

val knapsack : values:float array -> weights:int array -> capacity:int -> bool array
(** Exact 0-1 knapsack: maximise total value with total weight ≤
    capacity. Items with weight 0 and positive value are always taken.
    Returns the selection mask. *)

val optimize :
  ?chunk:int
  -> gain:(Ptx.Reg.t -> float)
  -> block_size:int
  -> spare_shm_bytes:int
  -> Ptx.Reg.t list
  -> Ptx.Reg.t -> bool
(** [optimize ~gain ~block_size ~spare_shm_bytes spilled] returns the
    predicate "spill this register to shared memory" implementing
    Algorithm 1 end to end. *)
