module RSet = Ptx.Reg.Set
module RTbl = Ptx.Reg.Tbl

type t =
  { adj : RSet.t RTbl.t
  ; mutable all : RSet.t
  }

let create () = { adj = RTbl.create 256; all = RSet.empty }

let add_node g r =
  g.all <- RSet.add r g.all;
  if not (RTbl.mem g.adj r) then RTbl.replace g.adj r RSet.empty

let same_class a b =
  Ptx.Types.reg_class (Ptx.Reg.ty a) = Ptx.Types.reg_class (Ptx.Reg.ty b)

let add_edge g a b =
  if (not (Ptx.Reg.equal a b)) && same_class a b then begin
    add_node g a;
    add_node g b;
    RTbl.replace g.adj a (RSet.add b (RTbl.find g.adj a));
    RTbl.replace g.adj b (RSet.add a (RTbl.find g.adj b))
  end

let build (flow : Cfg.Flow.t) (live : Cfg.Liveness.t) =
  let g = create () in
  Cfg.Flow.iter_instrs flow (fun i ins ->
    List.iter (fun r -> add_node g r) (Ptx.Instr.uses ins);
    List.iter (fun r -> add_node g r) (Ptx.Instr.defs ins);
    let out = live.live_out.(i) in
    (* the copy exception: [mov d, s] does not make d interfere with s *)
    let exempt =
      match ins with
      | Ptx.Instr.Mov (_, _, Ptx.Instr.Oreg s) -> Some s
      | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _
      | Ptx.Instr.Unop _ | Ptx.Instr.Cvt _ | Ptx.Instr.Setp _
      | Ptx.Instr.Selp _ | Ptx.Instr.Ld _ | Ptx.Instr.St _ | Ptx.Instr.Bra _
      | Ptx.Instr.Bra_pred _ | Ptx.Instr.Bar_sync | Ptx.Instr.Ret -> None
    in
    List.iter
      (fun d ->
         RSet.iter
           (fun o ->
              let skip =
                match exempt with
                | Some s -> Ptx.Reg.equal o s
                | None -> false
              in
              if not skip then add_edge g d o)
           out)
      (Ptx.Instr.defs ins));
  g

let nodes g = RSet.elements g.all

let nodes_of_class g cls =
  nodes g |> List.filter (fun r -> Ptx.Types.reg_class (Ptx.Reg.ty r) = cls)

let neighbors g r =
  match RTbl.find_opt g.adj r with
  | Some s -> s
  | None -> RSet.empty

let degree g r = RSet.cardinal (neighbors g r)
let interferes g a b = RSet.mem b (neighbors g a)

let num_edges g =
  let total = RTbl.fold (fun _ s acc -> acc + RSet.cardinal s) g.adj 0 in
  total / 2

let max_live g (live : Cfg.Liveness.t) cls =
  ignore g;
  let count set =
    RSet.fold
      (fun r acc ->
         if Ptx.Types.reg_class (Ptx.Reg.ty r) = cls then acc + 1 else acc)
      set 0
  in
  let m = ref 0 in
  Array.iter (fun s -> m := max !m (count s)) live.live_in;
  Array.iter (fun s -> m := max !m (count s)) live.live_out;
  !m
