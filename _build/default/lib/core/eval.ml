let sim_cache : (string, Gpusim.Stats.t) Hashtbl.t = Hashtbl.create 256
let alloc_cache : (string, Regalloc.Allocator.t) Hashtbl.t = Hashtbl.create 256
let hits = ref 0
let misses = ref 0

let allocate ?(strategy = Regalloc.Allocator.Chaitin_briggs) ?(shared_spare = 0)
    (app : Workloads.App.t) ~reg_limit =
  let key =
    Printf.sprintf "%s/r%d/shm%d/%s" app.Workloads.App.abbr reg_limit shared_spare
      (match strategy with
       | Regalloc.Allocator.Chaitin_briggs -> "cb"
       | Regalloc.Allocator.Linear_scan -> "ls")
  in
  match Hashtbl.find_opt alloc_cache key with
  | Some a -> a
  | None ->
    let shared_policy = if shared_spare > 0 then `Spare shared_spare else `Off in
    let a =
      Regalloc.Allocator.allocate ~strategy ~shared_policy
        ~block_size:app.Workloads.App.block_size ~reg_limit
        (Workloads.App.kernel app)
    in
    Hashtbl.replace alloc_cache key a;
    a

let run cfg (app : Workloads.App.t) ~variant ~kernel ~input ~tlp =
  let key =
    Printf.sprintf "%s/%s/%s/%s/tlp%d" cfg.Gpusim.Config.name
      app.Workloads.App.abbr variant input.Workloads.App.ilabel tlp
  in
  match Hashtbl.find_opt sim_cache key with
  | Some st ->
    incr hits;
    st
  | None ->
    incr misses;
    let launch = Workloads.App.sm_launch app ~kernel ~input ~tlp () in
    let st = Gpusim.Sm.run cfg launch in
    Hashtbl.replace sim_cache key st;
    st

let cycles cfg app ~variant ~kernel ~input ~tlp =
  (run cfg app ~variant ~kernel ~input ~tlp).Gpusim.Stats.cycles

let clear_cache () =
  Hashtbl.reset sim_cache;
  Hashtbl.reset alloc_cache;
  hits := 0;
  misses := 0

let cache_stats () = (!hits, !misses)
