(** Kernel segmentation for the static OptTLP analysis (paper Fig. 10a).

    A single warp of block 0 is traced functionally; its instruction
    stream is chunked into computation segments (summed pipeline
    latencies) separated by global/local memory segments (coalesced
    line counts). The trace also yields the line-reuse ratio and
    per-block footprint that parameterise the cache-contention model. *)

type segment =
  | Compute of int  (** summed latency in cycles *)
  | Mem of int  (** number of coalesced line segments *)

type trace =
  { segments : segment list
  ; total_line_refs : int
  ; distinct_lines : int
  ; footprint_bytes : int  (** distinct lines touched x line size *)
  ; reuse_ratio : float
      (** 1 - distinct/total: upper bound on the L1 hit rate *)
  }

val trace : Gpusim.Config.t -> Workloads.App.t -> Workloads.App.input -> trace
(** Trace warp 0 of block 0. Barriers are ignored (a single warp cannot
    synchronise); shared-memory accesses are folded into computation
    segments at the shared-memory latency. *)

val pp : Format.formatter -> trace -> unit
