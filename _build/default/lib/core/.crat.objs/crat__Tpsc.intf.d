lib/core/tpsc.mli: Gpusim Micro Regalloc
