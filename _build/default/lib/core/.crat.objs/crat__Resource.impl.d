lib/core/resource.ml: Cfg Format Gpusim Regalloc Workloads
