lib/core/resource.mli: Format Gpusim Workloads
