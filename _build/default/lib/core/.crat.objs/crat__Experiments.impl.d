lib/core/experiments.ml: Baselines Cfg Design_space Energy Eval Float Format Gpusim List Optimizer Opttlp Printf Ptx Regalloc Resource Sys Workloads
