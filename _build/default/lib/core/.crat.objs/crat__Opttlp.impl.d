lib/core/opttlp.ml: Array Eval Float Gpusim List Printf Regalloc Segments Workloads
