lib/core/baselines.mli: Gpusim Optimizer Regalloc Workloads
