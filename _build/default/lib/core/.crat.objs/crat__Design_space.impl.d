lib/core/design_space.ml: Format Gpusim List Resource
