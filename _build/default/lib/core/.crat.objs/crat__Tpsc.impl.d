lib/core/tpsc.ml: Gpusim Micro Regalloc
