lib/core/micro.ml: Gpusim Hashtbl Printf Ptx
