lib/core/experiments.mli: Baselines Design_space Format Gpusim Optimizer Resource Workloads
