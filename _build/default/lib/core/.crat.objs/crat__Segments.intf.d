lib/core/segments.mli: Format Gpusim Workloads
