lib/core/opttlp.mli: Gpusim Ptx Segments Workloads
