lib/core/segments.ml: Format Gpusim Hashtbl Int64 List Ptx Workloads
