lib/core/micro.mli: Gpusim
