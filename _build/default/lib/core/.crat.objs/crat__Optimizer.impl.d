lib/core/optimizer.ml: Design_space Eval Format Gpusim List Micro Opttlp Printf Regalloc Resource Tpsc Workloads
