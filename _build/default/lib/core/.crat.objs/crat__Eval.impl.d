lib/core/eval.ml: Gpusim Hashtbl Printf Regalloc Workloads
