lib/core/eval.mli: Gpusim Ptx Regalloc Workloads
