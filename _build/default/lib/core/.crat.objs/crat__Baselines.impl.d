lib/core/baselines.ml: Design_space Eval Gpusim Optimizer Opttlp Printf Regalloc Resource Workloads
