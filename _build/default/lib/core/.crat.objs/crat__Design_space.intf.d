lib/core/design_space.mli: Format Gpusim Resource
