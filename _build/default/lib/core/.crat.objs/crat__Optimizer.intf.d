lib/core/optimizer.mli: Design_space Format Gpusim Regalloc Resource Workloads
