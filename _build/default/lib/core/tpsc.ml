let tlp_gain (cfg : Gpusim.Config.t) ~block_size ~tlp =
  let threads = float_of_int (tlp * block_size) in
  let max_threads = float_of_int cfg.Gpusim.Config.max_threads_per_sm in
  1. -. (threads /. (threads +. max_threads))

let spill_cost (c : Micro.costs) (s : Regalloc.Spill.stats) =
  (float_of_int s.Regalloc.Spill.num_local *. c.Micro.cost_local)
  +. (float_of_int s.Regalloc.Spill.num_shared *. c.Micro.cost_shm)
  +. float_of_int (s.Regalloc.Spill.num_other + s.Regalloc.Spill.num_remat)

let tpsc cfg costs ~block_size ~tlp stats =
  (* the +1 virtual spill instruction keeps the TLP term decisive when
     no candidate spills at all *)
  tlp_gain cfg ~block_size ~tlp *. (1. +. spill_cost costs stats)

let tpsc_weighted cfg (c : Micro.costs) ~block_size ~tlp (a : Regalloc.Allocator.t) =
  let stats = a.Regalloc.Allocator.stats in
  let cost =
    (a.Regalloc.Allocator.weighted_local *. c.Micro.cost_local)
    +. (a.Regalloc.Allocator.weighted_shared *. c.Micro.cost_shm)
    +. float_of_int (stats.Regalloc.Spill.num_other + stats.Regalloc.Spill.num_remat)
  in
  tlp_gain cfg ~block_size ~tlp *. (1. +. cost)
