(** Memoized simulation and allocation: the experiment drivers evaluate
    the same (app, kernel-variant, TLP, input) points repeatedly across
    figures, and simulations are the expensive step. *)

val allocate :
  ?strategy:Regalloc.Allocator.strategy
  -> ?shared_spare:int
  -> Workloads.App.t
  -> reg_limit:int
  -> Regalloc.Allocator.t
(** Allocate the app's kernel at a per-thread limit; [shared_spare]
    enables Algorithm 1 with that many spare shared bytes per block. *)

val run :
  Gpusim.Config.t
  -> Workloads.App.t
  -> variant:string
  -> kernel:Ptx.Kernel.t
  -> input:Workloads.App.input
  -> tlp:int
  -> Gpusim.Stats.t
(** Simulate and memoize on (config, app, variant, input label, tlp).
    [variant] must uniquely describe the kernel build (e.g.
    ["default-r32"], ["crat-r50-shm512"]). *)

val cycles :
  Gpusim.Config.t
  -> Workloads.App.t
  -> variant:string
  -> kernel:Ptx.Kernel.t
  -> input:Workloads.App.input
  -> tlp:int
  -> int

val clear_cache : unit -> unit
val cache_stats : unit -> int * int  (** hits, misses *)
