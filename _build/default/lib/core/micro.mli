(** Micro-benchmarks measuring per-access delay of local vs shared
    memory on the simulated architecture — the [Cost_local] and
    [Cost_shm] constants of the TPSC metric (paper Section 6:
    "measured on the target architecture through micro benchmarks"). *)

type costs =
  { cost_local : float
  ; cost_shm : float
  }

val measure : Gpusim.Config.t -> costs
(** Runs two pointer-free micro-kernels (a local-memory and a
    shared-memory access loop) on one warp and divides cycles by
    accesses. Memoized per configuration. *)
