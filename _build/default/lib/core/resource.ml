type t =
  { max_reg : int
  ; min_reg : int
  ; block_size : int
  ; shm_size : int
  ; max_tlp : int
  ; default_regs : int
  ; max_live_units : int
  }

(* MaxReg: the smallest limit at which allocation inserts no spill code.
   MaxLive is a lower bound; colouring (and the paper's type-sensitivity)
   can need a little more, so probe upward from MaxLive. *)
let probe_max_reg kernel ~block_size ~max_live ~cap =
  let rec probe lim =
    if lim >= cap then cap
    else
      let a = Regalloc.Allocator.allocate ~block_size ~reg_limit:lim kernel in
      if a.Regalloc.Allocator.spilled = [] then lim else probe (lim + 1)
  in
  probe max_live

let analyze (cfg : Gpusim.Config.t) (app : Workloads.App.t) =
  let kernel = Workloads.App.kernel app in
  let flow = Cfg.Flow.of_kernel kernel in
  let live = Cfg.Liveness.compute flow in
  let max_live_units = Cfg.Liveness.max_pressure live in
  let cap = cfg.Gpusim.Config.max_regs_per_thread in
  let max_reg =
    probe_max_reg kernel ~block_size:app.Workloads.App.block_size
      ~max_live:(min max_live_units cap) ~cap
  in
  let shm_size = Workloads.App.shared_decl_bytes app in
  let max_tlp =
    Gpusim.Occupancy.max_tlp cfg
      { Gpusim.Occupancy.regs_per_thread = app.Workloads.App.default_regs
      ; block_size = app.Workloads.App.block_size
      ; shared_per_block = shm_size
      }
  in
  { max_reg
  ; min_reg = Gpusim.Config.min_reg cfg
  ; block_size = app.Workloads.App.block_size
  ; shm_size
  ; max_tlp
  ; default_regs = app.Workloads.App.default_regs
  ; max_live_units
  }

let usage_at t ~regs =
  { Gpusim.Occupancy.regs_per_thread = regs
  ; block_size = t.block_size
  ; shared_per_block = t.shm_size
  }

let pp fmt t =
  Format.fprintf fmt
    "MaxReg=%d MinReg=%d BlockSize=%d ShmSize=%dB MaxTLP=%d (default regs=%d)"
    t.max_reg t.min_reg t.block_size t.shm_size t.max_tlp t.default_regs
