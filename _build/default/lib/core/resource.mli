(** Resource-usage analysis (paper Section 4.1, Table 1).

    Collects, per kernel: [MaxReg]/[MinReg] (register usage range),
    [BlockSize]/[MaxTLP] (thread-level parallelism), and [ShmSize]
    (shared memory per block). [OptTLP] is estimated separately
    ({!Opttlp}) by profiling or static analysis. *)

type t =
  { max_reg : int
      (** registers per thread that hold every variable with no spills —
          found by data-flow analysis (MaxLive) refined by a colouring
          probe, since graph colouring can need slightly more than the
          clique bound *)
  ; min_reg : int  (** NumRegister / MaxThreads; fewer never helps TLP *)
  ; block_size : int
  ; shm_size : int  (** bytes of shared memory per block (app's own) *)
  ; max_tlp : int
      (** occupancy at the default register allocation — the TLP of the
          MaxTLP baseline *)
  ; default_regs : int
  ; max_live_units : int  (** raw MaxLive in 32-bit units *)
  }

val analyze : Gpusim.Config.t -> Workloads.App.t -> t

val usage_at : t -> regs:int -> Gpusim.Occupancy.usage
(** Occupancy usage record for a candidate register count. *)

val pp : Format.formatter -> t -> unit
