(** The TPSC (Thread-level Parallelism and Spill Cost) metric of paper
    Section 6:

    {v TPSC = TLP_gain * Spill_cost v}

    where [TLP_gain = 1 - TLP*BlockSize / (TLP*BlockSize + MaxThread)]
    models the diminishing return of parallelism and [Spill_cost]
    estimates inserted spill overhead from the allocation's
    local/shared/other instruction counts and the micro-benchmarked
    per-access delays. The candidate with the smallest TPSC wins.

    The paper's product degenerates when no candidate spills (all
    TPSC = 0); we add one virtual spill instruction so the TLP term
    breaks such ties in favour of higher parallelism. *)

val tlp_gain : Gpusim.Config.t -> block_size:int -> tlp:int -> float
val spill_cost : Micro.costs -> Regalloc.Spill.stats -> float
val tpsc : Gpusim.Config.t -> Micro.costs -> block_size:int -> tlp:int -> Regalloc.Spill.stats -> float

val tpsc_weighted :
  Gpusim.Config.t -> Micro.costs -> block_size:int -> tlp:int -> Regalloc.Allocator.t -> float
(** Like {!tpsc} but with the spill access counts weighted by loop depth
    (an estimate of dynamic frequency) from the allocation result. The
    paper's static counts can prefer a high-TLP candidate whose extra
    spills sit inside hot loops; weighting fixes the misprediction we
    observed on DTC. This is the optimizer's default; the paper's static
    formula is kept as [`Static_counts]. *)
