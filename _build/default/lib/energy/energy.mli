(** GPUWattch-style event-based energy model: per-event energies for
    ALU/SFU operations, register-file, cache, shared-memory and DRAM
    accesses, plus static leakage per cycle. Absolute joules are not
    calibrated; ratios between configurations are what the paper
    reports (16.5% saving of CRAT vs OptTLP). *)

type breakdown =
  { alu : float
  ; sfu : float
  ; regfile : float
  ; l1 : float
  ; l2 : float
  ; shared : float
  ; dram : float
  ; leakage : float
  }

val total : breakdown -> float
val of_stats : Gpusim.Stats.t -> breakdown
val pp : Format.formatter -> breakdown -> unit
