type breakdown =
  { alu : float
  ; sfu : float
  ; regfile : float
  ; l1 : float
  ; l2 : float
  ; shared : float
  ; dram : float
  ; leakage : float
  }

(* Event energies in arbitrary pJ-scale units, ratios follow GPUWattch:
   a DRAM access costs ~two orders of magnitude more than an ALU op. *)
let e_alu = 1.0
let e_sfu = 4.0
let e_reg = 0.35  (* per operand access, ~3 per instruction *)
let e_l1 = 10.0
let e_l2 = 25.0
let e_shared = 6.0
let e_dram_byte = 1.6
let p_static = 18.0  (* per cycle *)

let of_stats (s : Gpusim.Stats.t) =
  let f = float_of_int in
  { alu = f s.Gpusim.Stats.alu_instrs *. e_alu *. 32.
  ; sfu = f s.Gpusim.Stats.sfu_instrs *. e_sfu *. 32.
  ; regfile = f s.Gpusim.Stats.thread_instrs *. 3. *. e_reg
  ; l1 = f (s.Gpusim.Stats.l1.Gpusim.Cache.reads + s.Gpusim.Stats.l1.Gpusim.Cache.writes) *. e_l1
  ; l2 = f (s.Gpusim.Stats.l2.Gpusim.Cache.reads + s.Gpusim.Stats.l2.Gpusim.Cache.writes) *. e_l2
  ; shared = f (s.Gpusim.Stats.shared_load_lanes + s.Gpusim.Stats.shared_store_lanes) *. e_shared
  ; dram = f s.Gpusim.Stats.dram_bytes *. e_dram_byte
  ; leakage = f s.Gpusim.Stats.cycles *. p_static
  }

let total b = b.alu +. b.sfu +. b.regfile +. b.l1 +. b.l2 +. b.shared +. b.dram +. b.leakage

let pp fmt b =
  Format.fprintf fmt
    "total=%.3g (alu %.2g, sfu %.2g, rf %.2g, l1 %.2g, l2 %.2g, shm %.2g, dram %.2g, static %.2g)"
    (total b) b.alu b.sfu b.regfile b.l1 b.l2 b.shared b.dram b.leakage
