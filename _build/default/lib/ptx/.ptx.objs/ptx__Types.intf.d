lib/ptx/types.mli: Format
