lib/ptx/instr.mli: Format Reg Types
