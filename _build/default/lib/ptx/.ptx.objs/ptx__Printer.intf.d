lib/ptx/printer.mli: Format Kernel
