lib/ptx/instr.ml: Format Reg Types
