lib/ptx/builder.ml: Array Instr Int64 Kernel List Printf Reg Types
