lib/ptx/kernel.mli: Instr Reg Types
