lib/ptx/parser.ml: Array Hashtbl Instr Int64 Kernel List Printf Reg String Types
