lib/ptx/reg.ml: Format Hashtbl List Map Printf Set Types
