lib/ptx/kernel.ml: Array Instr List Printf Reg Result Types
