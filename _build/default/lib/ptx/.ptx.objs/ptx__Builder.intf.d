lib/ptx/builder.mli: Instr Kernel Reg Types
