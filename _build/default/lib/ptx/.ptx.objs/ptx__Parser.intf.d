lib/ptx/parser.mli: Kernel
