lib/ptx/printer.ml: Array Format Instr Kernel List Reg String Types
