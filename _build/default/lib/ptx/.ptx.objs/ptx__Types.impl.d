lib/ptx/types.ml: Format List
