lib/ptx/reg.mli: Format Hashtbl Map Set Types
