exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type token =
  | Word of string
  | Int of int64
  | Float of float
  | Punct of char

let token_to_string = function
  | Word w -> w
  | Int i -> Int64.to_string i
  | Float f -> string_of_float f
  | Punct c -> String.make 1 c

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '%' || c = '$'

let is_digit c = c >= '0' && c <= '9'

(* Numbers may be decimal integers or floats in [%.17g] form (including
   exponents). A '+' or '-' is only consumed inside a number directly after
   an exponent marker, so address offsets like [%d0+4] lex correctly. *)
let lex (s : string) : token list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && s.[!i + 1] = '/' then begin
      while !i < n && s.[!i] <> '\n' do
        incr i
      done
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let start = !i in
      if c = '-' then incr i;
      let is_float = ref false in
      let continue = ref true in
      while !continue && !i < n do
        let d = s.[!i] in
        if is_digit d then incr i
        else if d = '.' && !i + 1 < n && is_digit s.[!i + 1] then begin
          is_float := true;
          incr i
        end
        else if d = 'e' || d = 'E' then begin
          is_float := true;
          incr i;
          if !i < n && (s.[!i] = '+' || s.[!i] = '-') then incr i
        end
        else continue := false
      done;
      let text = String.sub s start (!i - start) in
      if !is_float then push (Float (float_of_string text))
      else push (Int (Int64.of_string text))
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do
        incr i
      done;
      push (Word (String.sub s start (!i - start)))
    end
    else begin
      (match c with
       | ',' | ';' | '[' | ']' | '{' | '}' | '(' | ')' | '@' | '!' | '+' | ':'
         -> push (Punct c)
       | _ -> fail "unexpected character %C" c);
      incr i
    end
  done;
  List.rev !toks

type state =
  { toks : token array
  ; mutable pos : int
  ; mutable params : (string * Types.scalar) list
  ; mutable decls : Kernel.decl list
  ; regs : (string, Reg.t) Hashtbl.t
  }

let peek st = if st.pos < Array.length st.toks then Some st.toks.(st.pos) else None

let next st =
  match peek st with
  | Some t ->
    st.pos <- st.pos + 1;
    t
  | None -> fail "unexpected end of input"

let expect_punct st c =
  match next st with
  | Punct c' when c = c' -> ()
  | t -> fail "expected %C, got %s" c (token_to_string t)

let expect_word st =
  match next st with
  | Word w -> w
  | t -> fail "expected identifier, got %s" (token_to_string t)

let expect_int st =
  match next st with
  | Int i -> Int64.to_int i
  | t -> fail "expected integer, got %s" (token_to_string t)

let scalar_of_dotted w =
  (* ".u32" or "u32" *)
  let w = if String.length w > 0 && w.[0] = '.' then String.sub w 1 (String.length w - 1) else w in
  match Types.scalar_of_string w with
  | Some t -> t
  | None -> fail "unknown type %s" w

let split_dots w = String.split_on_char '.' w |> List.filter (fun s -> s <> "")

let lookup_reg st name =
  match Hashtbl.find_opt st.regs name with
  | Some r -> r
  | None -> fail "undeclared register %s" name

(* Declare registers from a [.reg .ty %a, %b;] directive: the numeric
   suffix of the printed name is the register id. *)
let reg_id_of_name name =
  let n = String.length name in
  let rec start i = if i < n && not (is_digit name.[i]) then start (i + 1) else i in
  let s = start 0 in
  if s >= n then fail "register name %s has no id" name
  else int_of_string (String.sub name s (n - s))

let parse_operand st ty : Instr.operand =
  match next st with
  | Int i ->
    if Types.is_float ty then Instr.Ofimm (Int64.to_float i) else Instr.Oimm i
  | Float f -> Instr.Ofimm f
  | Word w when String.length w > 0 && w.[0] = '%' ->
    (match Reg.special_of_string w with
     | Some s -> Instr.Ospecial s
     | None -> Instr.Oreg (lookup_reg st w))
  | Word "inf" -> Instr.Ofimm infinity
  | Word "nan" -> Instr.Ofimm nan
  | Word w ->
    if List.mem_assoc w st.params then Instr.Oparam w
    else if List.exists (fun (d : Kernel.decl) -> d.dname = w) st.decls then
      Instr.Osym w
    else fail "unknown operand %s" w
  | t -> fail "bad operand %s" (token_to_string t)

let parse_reg_operand st =
  match next st with
  | Word w when String.length w > 0 && w.[0] = '%' -> lookup_reg st w
  | t -> fail "expected register, got %s" (token_to_string t)

let parse_address st : Instr.address =
  expect_punct st '[';
  let base = parse_operand st Types.U64 in
  let offset =
    match peek st with
    | Some (Punct '+') ->
      st.pos <- st.pos + 1;
      expect_int st
    | Some _ | None -> 0
  in
  expect_punct st ']';
  { Instr.base; offset }

let binop_of_string = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "div" -> Some Instr.Div
  | "rem" -> Some Instr.Rem
  | "min" -> Some Instr.Min
  | "max" -> Some Instr.Max
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "shl" -> Some Instr.Shl
  | "shr" -> Some Instr.Shr
  | _ -> None

let unop_of_string = function
  | "neg" -> Some Instr.Neg
  | "not" -> Some Instr.Not
  | "abs" -> Some Instr.Abs
  | "sqrt" -> Some Instr.Sqrt
  | "rcp" -> Some Instr.Rcp
  | "ex2" -> Some Instr.Ex2
  | "lg2" -> Some Instr.Lg2
  | _ -> None

let cmp_of_string = function
  | "eq" -> Instr.Eq
  | "ne" -> Instr.Ne
  | "lt" -> Instr.Lt
  | "le" -> Instr.Le
  | "gt" -> Instr.Gt
  | "ge" -> Instr.Ge
  | c -> fail "unknown comparison %s" c

let space_of_string_exn s =
  match Types.space_of_string s with
  | Some sp -> sp
  | None -> fail "unknown state space %s" s

(* Parse one instruction whose opcode word has already been consumed. *)
let parse_instr st opcode : Instr.t =
  let comma () = expect_punct st ',' in
  let semi () = expect_punct st ';' in
  let parts = split_dots opcode in
  let i =
    match parts with
    | [ "mov"; ty ] ->
      let ty = scalar_of_dotted ty in
      let d = parse_reg_operand st in
      comma ();
      let a = parse_operand st ty in
      Instr.Mov (ty, d, a)
    | [ "mul"; "lo"; ty ] ->
      let ty = scalar_of_dotted ty in
      let d = parse_reg_operand st in
      comma ();
      let a = parse_operand st ty in
      comma ();
      let b = parse_operand st ty in
      Instr.Binop (Instr.Mul_lo, ty, d, a, b)
    | [ "mad"; "lo"; ty ] ->
      let ty = scalar_of_dotted ty in
      let d = parse_reg_operand st in
      comma ();
      let a = parse_operand st ty in
      comma ();
      let b = parse_operand st ty in
      comma ();
      let c = parse_operand st ty in
      Instr.Mad (ty, d, a, b, c)
    | [ "cvt"; dt; st' ] ->
      let dt = scalar_of_dotted dt and sty = scalar_of_dotted st' in
      let d = parse_reg_operand st in
      comma ();
      let a = parse_operand st sty in
      Instr.Cvt (dt, sty, d, a)
    | [ "setp"; c; ty ] ->
      let c = cmp_of_string c and ty = scalar_of_dotted ty in
      let d = parse_reg_operand st in
      comma ();
      let a = parse_operand st ty in
      comma ();
      let b = parse_operand st ty in
      Instr.Setp (c, ty, d, a, b)
    | [ "selp"; ty ] ->
      let ty = scalar_of_dotted ty in
      let d = parse_reg_operand st in
      comma ();
      let a = parse_operand st ty in
      comma ();
      let b = parse_operand st ty in
      comma ();
      let p = parse_reg_operand st in
      Instr.Selp (ty, d, a, b, p)
    | [ "ld"; sp; ty ] ->
      let sp = space_of_string_exn sp and ty = scalar_of_dotted ty in
      let d = parse_reg_operand st in
      comma ();
      let addr = parse_address st in
      Instr.Ld (sp, ty, d, addr)
    | [ "st"; sp; ty ] ->
      let sp = space_of_string_exn sp and ty = scalar_of_dotted ty in
      let addr = parse_address st in
      comma ();
      let v = parse_operand st ty in
      Instr.St (sp, ty, addr, v)
    | [ "bra" ] ->
      let l = expect_word st in
      Instr.Bra l
    | [ "bar"; "sync" ] ->
      let _ = expect_int st in
      Instr.Bar_sync
    | [ "ret" ] -> Instr.Ret
    | [ op; ty ] ->
      let sty = scalar_of_dotted ty in
      (match binop_of_string op with
       | Some bop ->
         let d = parse_reg_operand st in
         comma ();
         let a = parse_operand st sty in
         comma ();
         let b = parse_operand st sty in
         Instr.Binop (bop, sty, d, a, b)
       | None ->
         (match unop_of_string op with
          | Some uop ->
            let d = parse_reg_operand st in
            comma ();
            let a = parse_operand st sty in
            Instr.Unop (uop, sty, d, a)
          | None -> fail "unknown opcode %s" opcode))
    | _ -> fail "unknown opcode %s" opcode
  in
  semi ();
  i

let parse_guarded st : Instr.t =
  (* '@' ['!'] %p bra L ; *)
  let sense =
    match peek st with
    | Some (Punct '!') ->
      st.pos <- st.pos + 1;
      false
    | Some _ | None -> true
  in
  let p = parse_reg_operand st in
  (match next st with
   | Word "bra" -> ()
   | t -> fail "expected bra after guard, got %s" (token_to_string t));
  let l = expect_word st in
  expect_punct st ';';
  Instr.Bra_pred (p, sense, l)

let parse_decl_directive st (w : string) =
  match w with
  | ".reg" ->
    let ty = scalar_of_dotted (expect_word st) in
    let rec names () =
      let name = expect_word st in
      let r = Reg.make (reg_id_of_name name) ty in
      Hashtbl.replace st.regs name r;
      match next st with
      | Punct ',' -> names ()
      | Punct ';' -> ()
      | t -> fail "expected , or ; in .reg, got %s" (token_to_string t)
    in
    names ()
  | ".shared" | ".local" ->
    let space = space_of_string_exn (String.sub w 1 (String.length w - 1)) in
    let align_word = expect_word st in
    if align_word <> ".align" then fail "expected .align, got %s" align_word;
    let align = expect_int st in
    let elem = scalar_of_dotted (expect_word st) in
    let name = expect_word st in
    expect_punct st '[';
    let count = expect_int st in
    expect_punct st ']';
    expect_punct st ';';
    st.decls <-
      st.decls
      @ [ { Kernel.dname = name; dspace = space; delem = elem; dcount = count; dalign = align } ]
  | _ -> fail "unknown directive %s" w

let parse_kernel_exn (src : string) : Kernel.t =
  let st =
    { toks = Array.of_list (lex src)
    ; pos = 0
    ; params = []
    ; decls = []
    ; regs = Hashtbl.create 64
    }
  in
  (match next st with
   | Word ".entry" -> ()
   | t -> fail "expected .entry, got %s" (token_to_string t));
  let name = expect_word st in
  expect_punct st '(';
  let rec params () =
    match peek st with
    | Some (Punct ')') -> st.pos <- st.pos + 1
    | Some (Word ".param") ->
      st.pos <- st.pos + 1;
      let ty = scalar_of_dotted (expect_word st) in
      let pname = expect_word st in
      st.params <- st.params @ [ (pname, ty) ];
      (match peek st with
       | Some (Punct ',') -> st.pos <- st.pos + 1
       | Some _ | None -> ());
      params ()
    | Some t -> fail "expected .param or ), got %s" (token_to_string t)
    | None -> fail "unexpected end in parameter list"
  in
  params ();
  expect_punct st '{';
  let body = ref [] in
  let rec stmts () =
    match peek st with
    | Some (Punct '}') -> st.pos <- st.pos + 1
    | Some (Punct '@') ->
      st.pos <- st.pos + 1;
      body := Kernel.I (parse_guarded st) :: !body;
      stmts ()
    | Some (Word w) when String.length w > 0 && w.[0] = '.' ->
      st.pos <- st.pos + 1;
      parse_decl_directive st w;
      stmts ()
    | Some (Word w) ->
      st.pos <- st.pos + 1;
      (match peek st with
       | Some (Punct ':') ->
         st.pos <- st.pos + 1;
         body := Kernel.L w :: !body
       | Some _ | None -> body := Kernel.I (parse_instr st w) :: !body);
      stmts ()
    | Some t -> fail "unexpected token %s in body" (token_to_string t)
    | None -> fail "missing closing brace"
  in
  stmts ();
  let k =
    { Kernel.name
    ; params = st.params
    ; decls = st.decls
    ; body = Array.of_list (List.rev !body)
    }
  in
  match Kernel.validate k with
  | Ok () -> k
  | Error msg -> fail "invalid kernel: %s" msg

let parse_kernel src =
  match parse_kernel_exn src with
  | k -> Ok k
  | exception Parse_error msg -> Error msg

let parse_kernel_exn src =
  match parse_kernel src with
  | Ok k -> k
  | Error msg -> invalid_arg ("Ptx.Parser: " ^ msg)
