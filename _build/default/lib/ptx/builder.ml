type t =
  { name : string
  ; mutable next_reg : int
  ; mutable next_label : int
  ; mutable rev_body : Kernel.stmt list
  ; mutable params : (string * Types.scalar) list
  ; mutable decls : Kernel.decl list
  }

let create name =
  { name; next_reg = 0; next_label = 0; rev_body = []; params = []; decls = [] }

let param b name ty =
  b.params <- b.params @ [ (name, ty) ];
  Instr.Oparam name

let decl b name space elem count align =
  b.decls <-
    b.decls
    @ [ { Kernel.dname = name; dspace = space; delem = elem; dcount = count; dalign = align } ];
  Instr.Osym name

let decl_shared b name elem count =
  decl b name Types.Shared elem count (Types.width_bytes elem)

let decl_local b name elem count =
  decl b name Types.Local elem count (Types.width_bytes elem)

let fresh b ty =
  let r = Reg.make b.next_reg ty in
  b.next_reg <- b.next_reg + 1;
  r

let emit b i = b.rev_body <- Kernel.I i :: b.rev_body
let label b l = b.rev_body <- Kernel.L l :: b.rev_body

let fresh_label b prefix =
  let l = Printf.sprintf "%s_%d" prefix b.next_label in
  b.next_label <- b.next_label + 1;
  l

let mov b ty a =
  let d = fresh b ty in
  emit b (Instr.Mov (ty, d, a));
  d

let special b s = mov b Types.U32 (Instr.Ospecial s)

let binop b op ty x y =
  let d = fresh b ty in
  emit b (Instr.Binop (op, ty, d, x, y));
  d

let add b ty x y = binop b Instr.Add ty x y
let sub b ty x y = binop b Instr.Sub ty x y
let mul b ty x y = binop b Instr.Mul_lo ty x y

let mad b ty x y z =
  let d = fresh b ty in
  emit b (Instr.Mad (ty, d, x, y, z));
  d

let unop b op ty x =
  let d = fresh b ty in
  emit b (Instr.Unop (op, ty, d, x));
  d

let cvt b dst_ty src_ty x =
  let d = fresh b dst_ty in
  emit b (Instr.Cvt (dst_ty, src_ty, d, x));
  d

let setp b c ty x y =
  let d = fresh b Types.Pred in
  emit b (Instr.Setp (c, ty, d, x, y));
  d

let selp b ty x y p =
  let d = fresh b ty in
  emit b (Instr.Selp (ty, d, x, y, p));
  d

let ld b space ty base off =
  let d = fresh b ty in
  emit b (Instr.Ld (space, ty, d, { Instr.base; offset = off }));
  d

let st b space ty base off v =
  emit b (Instr.St (space, ty, { Instr.base; offset = off }, v))

let ld_param b ty p =
  let d = fresh b ty in
  emit b (Instr.Ld (Types.Param, ty, d, { Instr.base = p; offset = 0 }));
  d

let bra b l = emit b (Instr.Bra l)
let bra_if b p l = emit b (Instr.Bra_pred (p, true, l))
let bra_ifnot b p l = emit b (Instr.Bra_pred (p, false, l))
let bar_sync b = emit b Instr.Bar_sync
let ret b = emit b Instr.Ret
let reg r = Instr.Oreg r
let imm i = Instr.Oimm (Int64.of_int i)
let fimm f = Instr.Ofimm f

let acc_binop b op ty acc x = emit b (Instr.Binop (op, ty, acc, Instr.Oreg acc, x))

let global_tid_x b =
  let tid = special b Reg.Tid_x in
  let ctaid = special b Reg.Ctaid_x in
  let ntid = special b Reg.Ntid_x in
  mad b Types.U32 (reg ctaid) (reg ntid) (reg tid)

(* A counted loop with a head test: the induction variable is carried in a
   single (mutable across iterations, hence non-SSA) register; this is what
   nvcc emits for simple for-loops and what gives induction variables their
   long live ranges. *)
let for_loop b ~from ~below ~step body =
  let head = fresh_label b "Lhead" in
  let exit = fresh_label b "Lexit" in
  let i = mov b Types.U32 from in
  label b head;
  let p = setp b Instr.Ge Types.U32 (reg i) below in
  bra_if b p exit;
  body i;
  (* i <- i + step, writing the same register to close the loop *)
  emit b (Instr.Binop (Instr.Add, Types.U32, i, reg i, imm step));
  bra b head;
  label b exit

let finish b =
  let ends_in_ret =
    match b.rev_body with
    | Kernel.I Instr.Ret :: _ -> true
    | _ -> false
  in
  if not ends_in_ret then ret b;
  let k =
    { Kernel.name = b.name
    ; params = b.params
    ; decls = b.decls
    ; body = Array.of_list (List.rev b.rev_body)
    }
  in
  match Kernel.validate k with
  | Ok () -> k
  | Error msg -> invalid_arg (Printf.sprintf "Builder.finish %s: %s" b.name msg)
