type decl =
  { dname : string
  ; dspace : Types.space
  ; delem : Types.scalar
  ; dcount : int
  ; dalign : int
  }

type stmt =
  | L of string
  | I of Instr.t

type t =
  { name : string
  ; params : (string * Types.scalar) list
  ; decls : decl list
  ; body : stmt array
  }

let decl_bytes d = d.dcount * Types.width_bytes d.delem

let space_bytes space k =
  List.fold_left
    (fun acc d -> if Types.equal_space d.dspace space then acc + decl_bytes d else acc)
    0 k.decls

let shared_bytes k = space_bytes Types.Shared k
let local_bytes k = space_bytes Types.Local k

let instrs k =
  Array.to_list k.body
  |> List.filter_map (function
    | I i -> Some i
    | L _ -> None)

let instr_count k =
  Array.fold_left
    (fun acc s ->
       match s with
       | I _ -> acc + 1
       | L _ -> acc)
    0 k.body

let registers k =
  List.fold_left
    (fun acc i ->
       let add s r = Reg.Set.add r s in
       let acc = List.fold_left add acc (Instr.defs i) in
       List.fold_left add acc (Instr.uses i))
    Reg.Set.empty (instrs k)

let register_demand k =
  Reg.Set.fold
    (fun r acc -> acc + Types.class_units (Types.reg_class (Reg.ty r)))
    (registers k) 0

let labels k =
  Array.to_list k.body
  |> List.filter_map (function
    | L l -> Some l
    | I _ -> None)

let find_label k l =
  let n = Array.length k.body in
  let rec loop i =
    if i >= n then None
    else
      match k.body.(i) with
      | L l' when l' = l -> Some i
      | L _ | I _ -> loop (i + 1)
  in
  loop 0

let map_instrs f k =
  { k with
    body =
      Array.map
        (function
          | I i -> I (f i)
          | L l -> L l)
        k.body
  }

let fresh_reg_base k =
  Reg.Set.fold (fun r acc -> max acc (Reg.id r + 1)) (registers k) 0

let add_decl k d = { k with decls = k.decls @ [ d ] }

(* Well-formedness checking.  Width compatibility follows PTX: a register
   may carry any type of the same width class, so [mov.u32] into an [f32]
   register is rejected only when the widths differ. *)
let width_compatible inst_ty reg_ty =
  match (Types.reg_class inst_ty, Types.reg_class reg_ty) with
  | Types.Cpred, Types.Cpred -> true
  | Types.C32, Types.C32 -> true
  | Types.C64, Types.C64 -> true
  (* a narrow (sub-32-bit) access still lives in a 32-bit register *)
  | Types.C32, _ | Types.C64, _ | Types.Cpred, _ -> false

let check_operand_ty what inst_ty op =
  match op with
  | Instr.Oreg r ->
    if width_compatible inst_ty (Reg.ty r) then Ok ()
    else
      Error
        (Printf.sprintf "%s: register %s of type %s used with type %s" what
           (Reg.name r)
           (Types.scalar_to_string (Reg.ty r))
           (Types.scalar_to_string inst_ty))
  | Instr.Oimm _ | Instr.Ofimm _ | Instr.Ospecial _ | Instr.Osym _
  | Instr.Oparam _ -> Ok ()

let check_address what k addr =
  match addr.Instr.base with
  | Instr.Oreg r ->
    (match Types.reg_class (Reg.ty r) with
     | Types.C64 | Types.C32 -> Ok ()
     | Types.Cpred ->
       Error (Printf.sprintf "%s: predicate register used as address" what))
  | Instr.Osym s ->
    if List.exists (fun d -> d.dname = s) k.decls then Ok ()
    else Error (Printf.sprintf "%s: undeclared symbol %s" what s)
  | Instr.Oparam p ->
    if List.mem_assoc p k.params then Ok ()
    else Error (Printf.sprintf "%s: unknown parameter %s" what p)
  | Instr.Oimm _ -> Ok ()
  | Instr.Ofimm _ | Instr.Ospecial _ ->
    Error (Printf.sprintf "%s: invalid address base" what)

let ( let* ) = Result.bind

let rec check_all f = function
  | [] -> Ok ()
  | x :: rest ->
    let* () = f x in
    check_all f rest

let check_instr k label_set idx (i : Instr.t) =
  let what = Printf.sprintf "instr %d (%s)" idx (Instr.to_string i) in
  let check_ops ty ops = check_all (check_operand_ty what ty) ops in
  let check_dst ty d = check_operand_ty what ty (Instr.Oreg d) in
  let check_target l =
    if List.mem l label_set then Ok ()
    else Error (Printf.sprintf "%s: unknown label %s" what l)
  in
  match i with
  | Instr.Mov (ty, d, a) | Instr.Unop (_, ty, d, a) ->
    let* () = check_dst ty d in
    check_ops ty [ a ]
  | Instr.Binop (_, ty, d, a, b) ->
    let* () = check_dst ty d in
    check_ops ty [ a; b ]
  | Instr.Mad (ty, d, a, b, c) ->
    let* () = check_dst ty d in
    check_ops ty [ a; b; c ]
  | Instr.Cvt (dst_ty, src_ty, d, a) ->
    let* () = check_dst dst_ty d in
    check_ops src_ty [ a ]
  | Instr.Setp (_, ty, d, a, b) ->
    let* () =
      if Types.equal_scalar (Reg.ty d) Types.Pred then Ok ()
      else Error (Printf.sprintf "%s: setp destination must be a predicate" what)
    in
    check_ops ty [ a; b ]
  | Instr.Selp (ty, d, a, b, p) ->
    let* () = check_dst ty d in
    let* () = check_ops ty [ a; b ] in
    if Types.equal_scalar (Reg.ty p) Types.Pred then Ok ()
    else Error (Printf.sprintf "%s: selp guard must be a predicate" what)
  | Instr.Ld (_, ty, d, addr) ->
    let* () = check_dst ty d in
    check_address what k addr
  | Instr.St (_, ty, addr, v) ->
    let* () = check_address what k addr in
    check_ops ty [ v ]
  | Instr.Bra l -> check_target l
  | Instr.Bra_pred (p, _, l) ->
    let* () =
      if Types.equal_scalar (Reg.ty p) Types.Pred then Ok ()
      else Error (Printf.sprintf "%s: branch guard must be a predicate" what)
    in
    check_target l
  | Instr.Bar_sync | Instr.Ret -> Ok ()

let validate k =
  let ls = labels k in
  let rec dup = function
    | [] -> None
    | x :: rest -> if List.mem x rest then Some x else dup rest
  in
  match dup ls with
  | Some l -> Error (Printf.sprintf "duplicate label %s" l)
  | None ->
    let rec loop idx =
      if idx >= Array.length k.body then Ok ()
      else
        match k.body.(idx) with
        | L _ -> loop (idx + 1)
        | I i ->
          let* () = check_instr k ls idx i in
          loop (idx + 1)
    in
    loop 0
