(* Registers are emitted grouped by scalar type in [.reg] directives so the
   parser can rebuild the typed register environment. Float immediates are
   printed with full precision (%.17g) to round-trip exactly. *)

let pp_operand fmt = function
  | Instr.Ofimm f -> Format.fprintf fmt "%.17g" f
  | (Instr.Oreg _ | Instr.Oimm _ | Instr.Ospecial _ | Instr.Osym _
    | Instr.Oparam _) as o -> Instr.pp_operand fmt o

let pp_address fmt (a : Instr.address) =
  if a.offset = 0 then Format.fprintf fmt "[%a]" pp_operand a.base
  else Format.fprintf fmt "[%a+%d]" pp_operand a.base a.offset

let pp_instr fmt (i : Instr.t) =
  match i with
  | Instr.Mov (t, d, a) ->
    Format.fprintf fmt "mov.%a %a, %a;" Types.pp_scalar t Reg.pp d pp_operand a
  | Instr.Unop (op, t, d, a) ->
    Format.fprintf fmt "%s.%a %a, %a;"
      (match op with
       | Instr.Neg -> "neg"
       | Instr.Not -> "not"
       | Instr.Abs -> "abs"
       | Instr.Sqrt -> "sqrt"
       | Instr.Rcp -> "rcp"
       | Instr.Ex2 -> "ex2"
       | Instr.Lg2 -> "lg2")
      Types.pp_scalar t Reg.pp d pp_operand a
  | Instr.Binop (op, t, d, a, b) ->
    Format.fprintf fmt "%s.%a %a, %a, %a;"
      (match op with
       | Instr.Add -> "add"
       | Instr.Sub -> "sub"
       | Instr.Mul_lo -> "mul.lo"
       | Instr.Div -> "div"
       | Instr.Rem -> "rem"
       | Instr.Min -> "min"
       | Instr.Max -> "max"
       | Instr.And -> "and"
       | Instr.Or -> "or"
       | Instr.Xor -> "xor"
       | Instr.Shl -> "shl"
       | Instr.Shr -> "shr")
      Types.pp_scalar t Reg.pp d pp_operand a pp_operand b
  | Instr.Mad (t, d, a, b, c) ->
    Format.fprintf fmt "mad.lo.%a %a, %a, %a, %a;" Types.pp_scalar t Reg.pp d
      pp_operand a pp_operand b pp_operand c
  | Instr.Cvt (dt, st, d, a) ->
    Format.fprintf fmt "cvt.%a.%a %a, %a;" Types.pp_scalar dt Types.pp_scalar
      st Reg.pp d pp_operand a
  | Instr.Setp (c, t, d, a, b) ->
    Format.fprintf fmt "setp.%s.%a %a, %a, %a;"
      (match c with
       | Instr.Eq -> "eq"
       | Instr.Ne -> "ne"
       | Instr.Lt -> "lt"
       | Instr.Le -> "le"
       | Instr.Gt -> "gt"
       | Instr.Ge -> "ge")
      Types.pp_scalar t Reg.pp d pp_operand a pp_operand b
  | Instr.Selp (t, d, a, b, p) ->
    Format.fprintf fmt "selp.%a %a, %a, %a, %a;" Types.pp_scalar t Reg.pp d
      pp_operand a pp_operand b Reg.pp p
  | Instr.Ld (s, t, d, addr) ->
    Format.fprintf fmt "ld.%a.%a %a, %a;" Types.pp_space s Types.pp_scalar t
      Reg.pp d pp_address addr
  | Instr.St (s, t, addr, v) ->
    Format.fprintf fmt "st.%a.%a %a, %a;" Types.pp_space s Types.pp_scalar t
      pp_address addr pp_operand v
  | Instr.Bra l -> Format.fprintf fmt "bra %s;" l
  | Instr.Bra_pred (p, sense, l) ->
    Format.fprintf fmt "@%s%a bra %s;" (if sense then "" else "!") Reg.pp p l
  | Instr.Bar_sync -> Format.pp_print_string fmt "bar.sync 0;"
  | Instr.Ret -> Format.pp_print_string fmt "ret;"

let reg_groups k =
  let regs = Reg.Set.elements (Kernel.registers k) in
  List.fold_left
    (fun acc r ->
       let ty = Reg.ty r in
       let existing = try List.assoc ty acc with Not_found -> [] in
       (ty, r :: existing) :: List.remove_assoc ty acc)
    [] regs
  |> List.map (fun (ty, rs) -> (ty, List.rev rs))
  |> List.sort compare

let pp_kernel fmt (k : Kernel.t) =
  Format.fprintf fmt ".entry %s (@." k.name;
  let n = List.length k.params in
  List.iteri
    (fun i (name, ty) ->
       Format.fprintf fmt "  .param .%a %s%s@." Types.pp_scalar ty name
         (if i = n - 1 then "" else ","))
    k.params;
  Format.fprintf fmt ")@.{@.";
  List.iter
    (fun (d : Kernel.decl) ->
       Format.fprintf fmt "  .%a .align %d .%a %s[%d];@." Types.pp_space
         d.dspace d.dalign Types.pp_scalar d.delem d.dname d.dcount)
    k.decls;
  List.iter
    (fun (ty, rs) ->
       Format.fprintf fmt "  .reg .%a %s;@." Types.pp_scalar ty
         (String.concat ", " (List.map Reg.name rs)))
    (reg_groups k);
  Array.iter
    (fun s ->
       match s with
       | Kernel.L l -> Format.fprintf fmt "%s:@." l
       | Kernel.I i -> Format.fprintf fmt "  %a@." pp_instr i)
    k.body;
  Format.fprintf fmt "}@."

let kernel_to_string k = Format.asprintf "%a" pp_kernel k
