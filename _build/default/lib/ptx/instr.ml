type operand =
  | Oreg of Reg.t
  | Oimm of int64
  | Ofimm of float
  | Ospecial of Reg.special
  | Osym of string
  | Oparam of string

type address =
  { base : operand
  ; offset : int
  }

type binop =
  | Add
  | Sub
  | Mul_lo
  | Div
  | Rem
  | Min
  | Max
  | And
  | Or
  | Xor
  | Shl
  | Shr

type unop =
  | Neg
  | Not
  | Abs
  | Sqrt
  | Rcp
  | Ex2
  | Lg2

type cmp =
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge

type t =
  | Mov of Types.scalar * Reg.t * operand
  | Binop of binop * Types.scalar * Reg.t * operand * operand
  | Mad of Types.scalar * Reg.t * operand * operand * operand
  | Unop of unop * Types.scalar * Reg.t * operand
  | Cvt of Types.scalar * Types.scalar * Reg.t * operand
  | Setp of cmp * Types.scalar * Reg.t * operand * operand
  | Selp of Types.scalar * Reg.t * operand * operand * Reg.t
  | Ld of Types.space * Types.scalar * Reg.t * address
  | St of Types.space * Types.scalar * address * operand
  | Bra of string
  | Bra_pred of Reg.t * bool * string
  | Bar_sync
  | Ret

let operand_regs = function
  | Oreg r -> [ r ]
  | Oimm _ | Ofimm _ | Ospecial _ | Osym _ | Oparam _ -> []

let address_regs a = operand_regs a.base

let defs = function
  | Mov (_, d, _)
  | Binop (_, _, d, _, _)
  | Mad (_, d, _, _, _)
  | Unop (_, _, d, _)
  | Cvt (_, _, d, _)
  | Setp (_, _, d, _, _)
  | Selp (_, d, _, _, _)
  | Ld (_, _, d, _) -> [ d ]
  | St _ | Bra _ | Bra_pred _ | Bar_sync | Ret -> []

let uses = function
  | Mov (_, _, a) | Unop (_, _, _, a) | Cvt (_, _, _, a) -> operand_regs a
  | Binop (_, _, _, a, b) | Setp (_, _, _, a, b) ->
    operand_regs a @ operand_regs b
  | Mad (_, _, a, b, c) ->
    operand_regs a @ operand_regs b @ operand_regs c
  | Selp (_, _, a, b, p) -> operand_regs a @ operand_regs b @ [ p ]
  | Ld (_, _, _, addr) -> address_regs addr
  | St (_, _, addr, v) -> address_regs addr @ operand_regs v
  | Bra _ -> []
  | Bra_pred (p, _, _) -> [ p ]
  | Bar_sync | Ret -> []

let is_control = function
  | Bra _ | Bra_pred _ | Ret -> true
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Ld _ | St _
  | Bar_sync -> false

let is_barrier = function
  | Bar_sync -> true
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Ld _ | St _
  | Bra _ | Bra_pred _ | Ret -> false

let branch_target = function
  | Bra l | Bra_pred (_, _, l) -> Some l
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Ld _ | St _
  | Bar_sync | Ret -> None

let falls_through = function
  | Bra _ | Ret -> false
  | Bra_pred _ | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _
  | Ld _ | St _ | Bar_sync -> true

let is_load = function
  | Ld _ -> true
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | St _ | Bra _
  | Bra_pred _ | Bar_sync | Ret -> false

let is_store = function
  | St _ -> true
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Ld _ | Bra _
  | Bra_pred _ | Bar_sync | Ret -> false

let mem_space = function
  | Ld (s, _, _, _) | St (s, _, _, _) -> Some s
  | Mov _ | Binop _ | Mad _ | Unop _ | Cvt _ | Setp _ | Selp _ | Bra _
  | Bra_pred _ | Bar_sync | Ret -> None

let map_operand f = function
  | Oreg r -> Oreg (f r)
  | (Oimm _ | Ofimm _ | Ospecial _ | Osym _ | Oparam _) as o -> o

let map_address f a = { a with base = map_operand f a.base }

let map_regs f = function
  | Mov (t, d, a) -> Mov (t, f d, map_operand f a)
  | Binop (op, t, d, a, b) ->
    Binop (op, t, f d, map_operand f a, map_operand f b)
  | Mad (t, d, a, b, c) ->
    Mad (t, f d, map_operand f a, map_operand f b, map_operand f c)
  | Unop (op, t, d, a) -> Unop (op, t, f d, map_operand f a)
  | Cvt (dt, st, d, a) -> Cvt (dt, st, f d, map_operand f a)
  | Setp (c, t, d, a, b) -> Setp (c, t, f d, map_operand f a, map_operand f b)
  | Selp (t, d, a, b, p) -> Selp (t, f d, map_operand f a, map_operand f b, f p)
  | Ld (s, t, d, addr) -> Ld (s, t, f d, map_address f addr)
  | St (s, t, addr, v) -> St (s, t, map_address f addr, map_operand f v)
  | Bra l -> Bra l
  | Bra_pred (p, sense, l) -> Bra_pred (f p, sense, l)
  | Bar_sync -> Bar_sync
  | Ret -> Ret

let map_def f = function
  | Mov (t, d, a) -> Mov (t, f d, a)
  | Binop (op, t, d, a, b) -> Binop (op, t, f d, a, b)
  | Mad (t, d, a, b, c) -> Mad (t, f d, a, b, c)
  | Unop (op, t, d, a) -> Unop (op, t, f d, a)
  | Cvt (dt, st, d, a) -> Cvt (dt, st, f d, a)
  | Setp (c, t, d, a, b) -> Setp (c, t, f d, a, b)
  | Selp (t, d, a, b, p) -> Selp (t, f d, a, b, p)
  | Ld (s, t, d, addr) -> Ld (s, t, f d, addr)
  | (St _ | Bra _ | Bra_pred _ | Bar_sync | Ret) as i -> i

type op_class =
  | Alu
  | Alu_heavy
  | Sfu
  | Mem_global
  | Mem_local
  | Mem_shared
  | Mem_const_param
  | Ctrl
  | Barrier

let classify_binop op ty =
  match op with
  | Div | Rem -> Alu_heavy
  | Add | Sub | Mul_lo | Min | Max | And | Or | Xor | Shl | Shr ->
    (match ty with
     | Types.F64 -> Alu_heavy
     | Types.U16 | Types.U32 | Types.U64 | Types.S16 | Types.S32 | Types.S64
     | Types.F32 | Types.B8 | Types.B16 | Types.B32 | Types.B64 | Types.Pred
       -> Alu)

let classify = function
  | Mov _ | Cvt _ | Setp _ | Selp _ -> Alu
  | Binop (op, ty, _, _, _) -> classify_binop op ty
  | Mad (ty, _, _, _, _) ->
    (match ty with
     | Types.F64 -> Alu_heavy
     | Types.U16 | Types.U32 | Types.U64 | Types.S16 | Types.S32 | Types.S64
     | Types.F32 | Types.B8 | Types.B16 | Types.B32 | Types.B64 | Types.Pred
       -> Alu)
  | Unop (op, _, _, _) ->
    (match op with
     | Sqrt | Rcp | Ex2 | Lg2 -> Sfu
     | Neg | Not | Abs -> Alu)
  | Ld (s, _, _, _) | St (s, _, _, _) ->
    (match s with
     | Types.Global -> Mem_global
     | Types.Local -> Mem_local
     | Types.Shared -> Mem_shared
     | Types.Param | Types.Const -> Mem_const_param
     | Types.Reg -> Alu)
  | Bra _ | Bra_pred _ | Ret -> Ctrl
  | Bar_sync -> Barrier

let equal (a : t) (b : t) = a = b

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul_lo -> "mul.lo"
  | Div -> "div"
  | Rem -> "rem"
  | Min -> "min"
  | Max -> "max"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"

let unop_to_string = function
  | Neg -> "neg"
  | Not -> "not"
  | Abs -> "abs"
  | Sqrt -> "sqrt"
  | Rcp -> "rcp"
  | Ex2 -> "ex2"
  | Lg2 -> "lg2"

let cmp_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

let pp_operand fmt = function
  | Oreg r -> Reg.pp fmt r
  | Oimm i -> Format.fprintf fmt "%Ld" i
  | Ofimm f -> Format.fprintf fmt "%h" f
  | Ospecial s -> Reg.pp_special fmt s
  | Osym s -> Format.pp_print_string fmt s
  | Oparam p -> Format.pp_print_string fmt p

let pp_address fmt a =
  if a.offset = 0 then Format.fprintf fmt "[%a]" pp_operand a.base
  else Format.fprintf fmt "[%a+%d]" pp_operand a.base a.offset

let pp fmt = function
  | Mov (t, d, a) ->
    Format.fprintf fmt "mov.%a %a, %a;" Types.pp_scalar t Reg.pp d pp_operand a
  | Binop (op, t, d, a, b) ->
    Format.fprintf fmt "%s.%a %a, %a, %a;" (binop_to_string op)
      Types.pp_scalar t Reg.pp d pp_operand a pp_operand b
  | Mad (t, d, a, b, c) ->
    Format.fprintf fmt "mad.lo.%a %a, %a, %a, %a;" Types.pp_scalar t Reg.pp d
      pp_operand a pp_operand b pp_operand c
  | Unop (op, t, d, a) ->
    Format.fprintf fmt "%s.%a %a, %a;" (unop_to_string op) Types.pp_scalar t
      Reg.pp d pp_operand a
  | Cvt (dt, st, d, a) ->
    Format.fprintf fmt "cvt.%a.%a %a, %a;" Types.pp_scalar dt Types.pp_scalar
      st Reg.pp d pp_operand a
  | Setp (c, t, d, a, b) ->
    Format.fprintf fmt "setp.%s.%a %a, %a, %a;" (cmp_to_string c)
      Types.pp_scalar t Reg.pp d pp_operand a pp_operand b
  | Selp (t, d, a, b, p) ->
    Format.fprintf fmt "selp.%a %a, %a, %a, %a;" Types.pp_scalar t Reg.pp d
      pp_operand a pp_operand b Reg.pp p
  | Ld (s, t, d, addr) ->
    Format.fprintf fmt "ld.%a.%a %a, %a;" Types.pp_space s Types.pp_scalar t
      Reg.pp d pp_address addr
  | St (s, t, addr, v) ->
    Format.fprintf fmt "st.%a.%a %a, %a;" Types.pp_space s Types.pp_scalar t
      pp_address addr pp_operand v
  | Bra l -> Format.fprintf fmt "bra %s;" l
  | Bra_pred (p, sense, l) ->
    Format.fprintf fmt "@%s%a bra %s;" (if sense then "" else "!") Reg.pp p l
  | Bar_sync -> Format.pp_print_string fmt "bar.sync 0;"
  | Ret -> Format.pp_print_string fmt "ret;"

let to_string i = Format.asprintf "%a" pp i
