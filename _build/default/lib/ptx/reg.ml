type t =
  { id : int
  ; ty : Types.scalar
  }

let make id ty = { id; ty }
let id r = r.id
let ty r = r.ty
let equal a b = a.id = b.id && Types.equal_scalar a.ty b.ty
let compare a b = compare (a.id, a.ty) (b.id, b.ty)
let hash a = Hashtbl.hash (a.id, a.ty)

let name r =
  match Types.reg_class r.ty with
  | Types.Cpred -> Printf.sprintf "%%p%d" r.id
  | Types.C32 -> Printf.sprintf "%%r%d" r.id
  | Types.C64 -> Printf.sprintf "%%d%d" r.id

let pp fmt r = Format.pp_print_string fmt (name r)

type special =
  | Tid_x
  | Tid_y
  | Ctaid_x
  | Ctaid_y
  | Ntid_x
  | Ntid_y
  | Nctaid_x
  | Nctaid_y
  | Laneid
  | Warpid

let special_to_string = function
  | Tid_x -> "%tid.x"
  | Tid_y -> "%tid.y"
  | Ctaid_x -> "%ctaid.x"
  | Ctaid_y -> "%ctaid.y"
  | Ntid_x -> "%ntid.x"
  | Ntid_y -> "%ntid.y"
  | Nctaid_x -> "%nctaid.x"
  | Nctaid_y -> "%nctaid.y"
  | Laneid -> "%laneid"
  | Warpid -> "%warpid"

let all_specials =
  [ Tid_x; Tid_y; Ctaid_x; Ctaid_y; Ntid_x; Ntid_y; Nctaid_x; Nctaid_y
  ; Laneid; Warpid ]

let special_of_string s =
  List.find_opt (fun x -> special_to_string x = s) all_specials

let pp_special fmt s = Format.pp_print_string fmt (special_to_string s)
let equal_special (a : special) (b : special) = a = b

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Hsh = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
module Tbl = Hashtbl.Make (Hsh)
