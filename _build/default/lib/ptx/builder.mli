(** Imperative eDSL for constructing PTX kernels in SSA style.

    The builder hands out fresh virtual registers — mirroring nvcc's
    infinite-register PTX output — and accumulates statements. The
    workload generators (lib/workloads) are written against this API. *)

type t

val create : string -> t
val param : t -> string -> Types.scalar -> Instr.operand
(** Declare a kernel parameter and return the operand naming it. *)

val decl_shared : t -> string -> Types.scalar -> int -> Instr.operand
(** [decl_shared b name elem count] declares a shared array and returns
    its symbol operand. *)

val decl_local : t -> string -> Types.scalar -> int -> Instr.operand

val fresh : t -> Types.scalar -> Reg.t
(** A fresh virtual register of the given type. *)

val emit : t -> Instr.t -> unit
val label : t -> string -> unit
(** Place a label here. *)

val fresh_label : t -> string -> string
(** A unique label name with the given prefix (not yet placed). *)

(** {2 Convenience emitters} — each returns the destination register. *)

val mov : t -> Types.scalar -> Instr.operand -> Reg.t
val special : t -> Reg.special -> Reg.t
(** Read a built-in register into a fresh [U32] register. *)

val binop : t -> Instr.binop -> Types.scalar -> Instr.operand -> Instr.operand -> Reg.t
val add : t -> Types.scalar -> Instr.operand -> Instr.operand -> Reg.t
val sub : t -> Types.scalar -> Instr.operand -> Instr.operand -> Reg.t
val mul : t -> Types.scalar -> Instr.operand -> Instr.operand -> Reg.t
val mad : t -> Types.scalar -> Instr.operand -> Instr.operand -> Instr.operand -> Reg.t
val unop : t -> Instr.unop -> Types.scalar -> Instr.operand -> Reg.t
val cvt : t -> Types.scalar -> Types.scalar -> Instr.operand -> Reg.t
val setp : t -> Instr.cmp -> Types.scalar -> Instr.operand -> Instr.operand -> Reg.t
val selp : t -> Types.scalar -> Instr.operand -> Instr.operand -> Reg.t -> Reg.t
val ld : t -> Types.space -> Types.scalar -> Instr.operand -> int -> Reg.t
(** [ld b space ty base off] *)

val st : t -> Types.space -> Types.scalar -> Instr.operand -> int -> Instr.operand -> unit
val ld_param : t -> Types.scalar -> Instr.operand -> Reg.t
(** Load a kernel parameter value ([ld.param]). *)

val bra : t -> string -> unit
val bra_if : t -> Reg.t -> string -> unit
val bra_ifnot : t -> Reg.t -> string -> unit
val bar_sync : t -> unit
val ret : t -> unit

val reg : Reg.t -> Instr.operand
val imm : int -> Instr.operand
val fimm : float -> Instr.operand

val acc_binop : t -> Instr.binop -> Types.scalar -> Reg.t -> Instr.operand -> unit
(** [acc_binop b op ty acc x] emits [acc <- acc op x], writing the same
    register — the accumulation idiom that gives reduction variables
    their long, loop-carried live ranges. *)

val global_tid_x : t -> Reg.t
(** [tid.x + ctaid.x * ntid.x] — the idiom of paper Listing 1/2. *)

val for_loop : t -> from:Instr.operand -> below:Instr.operand -> step:int
  -> (Reg.t -> unit) -> unit
(** [for_loop b ~from ~below ~step body] emits a counted loop; [body]
    receives the induction register ([U32]). The loop uses a head test so
    zero-trip loops are correct. *)

val finish : t -> Kernel.t
(** Append [ret] if the body does not already end in one, and build the
    kernel. Raises [Invalid_argument] if the result fails
    {!Kernel.validate}. *)
