type scalar =
  | U16
  | U32
  | U64
  | S16
  | S32
  | S64
  | F32
  | F64
  | B8
  | B16
  | B32
  | B64
  | Pred

type space =
  | Reg
  | Local
  | Shared
  | Global
  | Param
  | Const

let width_bytes = function
  | B8 -> 1
  | U16 | S16 | B16 -> 2
  | U32 | S32 | F32 | B32 -> 4
  | U64 | S64 | F64 | B64 -> 8
  | Pred -> 1

type reg_class =
  | Cpred
  | C32
  | C64

let reg_class = function
  | Pred -> Cpred
  | U64 | S64 | F64 | B64 -> C64
  | U16 | U32 | S16 | S32 | F32 | B8 | B16 | B32 -> C32

let class_units = function
  | Cpred -> 0
  | C32 -> 1
  | C64 -> 2

let is_float = function
  | F32 | F64 -> true
  | U16 | U32 | U64 | S16 | S32 | S64 | B8 | B16 | B32 | B64 | Pred -> false

let is_signed = function
  | S16 | S32 | S64 -> true
  | U16 | U32 | U64 | F32 | F64 | B8 | B16 | B32 | B64 | Pred -> false

let scalar_to_string = function
  | U16 -> "u16"
  | U32 -> "u32"
  | U64 -> "u64"
  | S16 -> "s16"
  | S32 -> "s32"
  | S64 -> "s64"
  | F32 -> "f32"
  | F64 -> "f64"
  | B8 -> "b8"
  | B16 -> "b16"
  | B32 -> "b32"
  | B64 -> "b64"
  | Pred -> "pred"

let all_scalars =
  [ U16; U32; U64; S16; S32; S64; F32; F64; B8; B16; B32; B64; Pred ]

let scalar_of_string s =
  List.find_opt (fun t -> scalar_to_string t = s) all_scalars

let space_to_string = function
  | Reg -> "reg"
  | Local -> "local"
  | Shared -> "shared"
  | Global -> "global"
  | Param -> "param"
  | Const -> "const"

let all_spaces = [ Reg; Local; Shared; Global; Param; Const ]
let space_of_string s = List.find_opt (fun x -> space_to_string x = s) all_spaces
let pp_scalar fmt t = Format.pp_print_string fmt (scalar_to_string t)
let pp_space fmt s = Format.pp_print_string fmt (space_to_string s)

let equal_scalar (a : scalar) (b : scalar) = a = b
let equal_space (a : space) (b : space) = a = b
