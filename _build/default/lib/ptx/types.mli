(** Scalar types and state spaces of the PTX subset.

    The subset mirrors the types that appear in the paper's listings
    ([.u32], [.u64], [.b8], predicates, ...) plus the floating-point types
    needed by the workloads. *)

(** A PTX scalar type. [Pred] is the predicate type produced by [setp]. *)
type scalar =
  | U16
  | U32
  | U64
  | S16
  | S32
  | S64
  | F32
  | F64
  | B8
  | B16
  | B32
  | B64
  | Pred

(** A PTX state space. [Reg] is the register space; [Local] is per-thread
    off-chip memory (spill target); [Shared] is per-block on-chip memory;
    [Global] is device memory; [Param] holds kernel parameters. *)
type space =
  | Reg
  | Local
  | Shared
  | Global
  | Param
  | Const

val width_bytes : scalar -> int
(** Storage width in bytes. [Pred] is 1 for storage purposes. *)

(** Register width class used by the allocator: predicates are tracked
    separately; every other type is a 32-bit or 64-bit register. *)
type reg_class =
  | Cpred
  | C32
  | C64

val reg_class : scalar -> reg_class

val class_units : reg_class -> int
(** Cost of one register of the class in 32-bit register-file units:
    [Cpred] is 0, [C32] is 1, [C64] is 2. *)

val is_float : scalar -> bool
val is_signed : scalar -> bool

val scalar_to_string : scalar -> string
(** PTX spelling without the leading dot, e.g. ["u32"]. *)

val scalar_of_string : string -> scalar option
val space_to_string : space -> string
val space_of_string : string -> space option
val pp_scalar : Format.formatter -> scalar -> unit
val pp_space : Format.formatter -> space -> unit
val equal_scalar : scalar -> scalar -> bool
val equal_space : space -> space -> bool
val all_scalars : scalar list
