(** PTX kernels: parameters, array declarations and a statement body. *)

(** A declared array in local or shared memory (e.g. a spill stack,
    paper Listing 4). [count] is the element count; the byte size is
    [count * width_bytes elem]. *)
type decl =
  { dname : string
  ; dspace : Types.space
  ; delem : Types.scalar
  ; dcount : int
  ; dalign : int
  }

(** A body statement: a label or an instruction. *)
type stmt =
  | L of string
  | I of Instr.t

type t =
  { name : string
  ; params : (string * Types.scalar) list
  ; decls : decl list
  ; body : stmt array
  }

val decl_bytes : decl -> int

val shared_bytes : t -> int
(** Total bytes of [.shared] declarations (per thread block). *)

val local_bytes : t -> int
(** Total bytes of [.local] declarations (per thread). *)

val instrs : t -> Instr.t list
(** Instructions in body order, labels dropped. *)

val instr_count : t -> int

val registers : t -> Reg.Set.t
(** Every virtual register defined or used by the body. *)

val register_demand : t -> int
(** Register-file units (32-bit registers) needed to hold all virtual
    registers simultaneously, i.e. the unallocated kernel's demand. *)

val labels : t -> string list

val find_label : t -> string -> int option
(** Statement index of a label. *)

val map_instrs : (Instr.t -> Instr.t) -> t -> t

val fresh_reg_base : t -> int
(** An id strictly greater than every register id in the kernel; fresh
    registers allocated from here cannot collide. *)

val add_decl : t -> decl -> t
val validate : t -> (unit, string) result
(** Check well-formedness: branch targets exist, labels unique, operand
    types match instruction types, declared symbols referenced by [Osym]
    exist, and no instruction writes a special register. *)
