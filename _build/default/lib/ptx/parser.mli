(** Parser for the textual PTX subset emitted by {!Printer}.

    [Printer.kernel_to_string] followed by [parse_kernel] is the identity
    (up to float-immediate rounding at full precision, i.e. exact). *)

val parse_kernel : string -> (Kernel.t, string) result
val parse_kernel_exn : string -> Kernel.t
(** @raise Invalid_argument on parse errors. *)
