(** Pretty-printer producing the textual PTX subset accepted by
    {!Parser}. *)

val pp_kernel : Format.formatter -> Kernel.t -> unit
val kernel_to_string : Kernel.t -> string
