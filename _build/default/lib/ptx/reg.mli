(** Virtual registers and special (built-in) registers.

    Kernels produced by the front end are in SSA style: every new value
    gets a fresh virtual register, exactly as nvcc-emitted PTX assumes an
    infinite register set (paper, Section 5.1). The allocator later maps
    virtual registers onto a bounded physical set. *)

type t = private
  { id : int  (** unique within a kernel *)
  ; ty : Types.scalar
  }

val make : int -> Types.scalar -> t
val id : t -> int
val ty : t -> Types.scalar
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val name : t -> string
(** PTX-style spelling, determined by the width class: ["%r3"] for 32-bit,
    ["%d1"] for 64-bit, ["%p0"] for predicates. *)

val pp : Format.formatter -> t -> unit

(** Built-in read-only special registers. *)
type special =
  | Tid_x
  | Tid_y
  | Ctaid_x
  | Ctaid_y
  | Ntid_x
  | Ntid_y
  | Nctaid_x
  | Nctaid_y
  | Laneid
  | Warpid

val special_to_string : special -> string
(** PTX spelling, e.g. ["%tid.x"]. *)

val special_of_string : string -> special option
val pp_special : Format.formatter -> special -> unit
val equal_special : special -> special -> bool

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
