lib/gpusim/interp.mli: Image Memory Ptx Value
