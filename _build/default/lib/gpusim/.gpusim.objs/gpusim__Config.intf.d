lib/gpusim/config.mli: Format
