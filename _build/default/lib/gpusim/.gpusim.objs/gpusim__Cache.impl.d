lib/gpusim/cache.ml: Array Int64 List
