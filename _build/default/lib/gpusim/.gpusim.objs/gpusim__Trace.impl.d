lib/gpusim/trace.ml: Array Format Image Interp List Ptx Value
