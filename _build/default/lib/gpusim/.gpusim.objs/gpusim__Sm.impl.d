lib/gpusim/sm.ml: Array Cache Config Hashtbl Image Int64 Interp List Memory Option Ptx Queue Stats Value
