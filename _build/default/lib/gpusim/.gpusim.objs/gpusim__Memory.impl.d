lib/gpusim/memory.ml: Array Hashtbl Int64 List Ptx Value
