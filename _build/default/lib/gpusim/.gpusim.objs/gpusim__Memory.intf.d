lib/gpusim/memory.mli: Ptx Value
