lib/gpusim/emulator.ml: Array Image Interp Memory Ptx Value
