lib/gpusim/config.ml: Format
