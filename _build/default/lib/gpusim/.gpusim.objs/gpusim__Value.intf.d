lib/gpusim/value.mli: Format Ptx
