lib/gpusim/image.mli: Cfg Format Ptx
