lib/gpusim/stats.mli: Cache Format
