lib/gpusim/stats.ml: Cache Format
