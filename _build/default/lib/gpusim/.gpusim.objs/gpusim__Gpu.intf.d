lib/gpusim/gpu.mli: Cache Config Memory Ptx Stats Value
