lib/gpusim/image.ml: Array Cfg Format Int64 List Printf Ptx
