lib/gpusim/occupancy.mli: Config
