lib/gpusim/value.ml: Float Format Int32 Int64 Ptx Stdlib
