lib/gpusim/gpu.ml: Array Cache Config Memory Option Ptx Sm Stats Value
