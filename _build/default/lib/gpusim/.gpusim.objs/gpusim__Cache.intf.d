lib/gpusim/cache.mli:
