lib/gpusim/trace.mli: Format Memory Ptx Value
