lib/gpusim/sm.mli: Cache Config Memory Ptx Stats Value
