lib/gpusim/occupancy.ml: Config
