lib/gpusim/emulator.mli: Memory Ptx Value
