lib/gpusim/interp.ml: Array Cfg Hashtbl Image Int64 List Memory Printf Ptx Value
