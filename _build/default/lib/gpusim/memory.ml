type t = (int64, Value.t) Hashtbl.t

let create () : t = Hashtbl.create 1024

let read (t : t) addr ty =
  match Hashtbl.find_opt t addr with
  | Some v -> Value.truncate ty v
  | None -> Value.truncate ty Value.zero

let write (t : t) addr ty v = Hashtbl.replace t addr (Value.truncate ty v)
let copy (t : t) = Hashtbl.copy t
let size (t : t) = Hashtbl.length t

let equal (a : t) (b : t) =
  let nonzero m =
    Hashtbl.fold
      (fun k v acc -> if Value.equal v Value.zero then acc else (k, v) :: acc)
      m []
    |> List.sort compare
  in
  let la = nonzero a and lb = nonzero b in
  List.length la = List.length lb
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && Value.equal v1 v2) la lb

let fold f (t : t) init = Hashtbl.fold f t init

let write_f32_array t ~base xs =
  Array.iteri
    (fun i x ->
       write t (Int64.add base (Int64.of_int (i * 4))) Ptx.Types.F32 (Value.F x))
    xs

let write_u32_array t ~base xs =
  Array.iteri
    (fun i x ->
       write t
         (Int64.add base (Int64.of_int (i * 4)))
         Ptx.Types.U32
         (Value.I (Int64.of_int x)))
    xs

let read_f32_array t ~base n =
  Array.init n (fun i ->
    Value.to_float (read t (Int64.add base (Int64.of_int (i * 4))) Ptx.Types.F32))

let read_u32_array t ~base n =
  Array.init n (fun i ->
    Int64.to_int
      (Value.to_int64 (read t (Int64.add base (Int64.of_int (i * 4))) Ptx.Types.U32)))
