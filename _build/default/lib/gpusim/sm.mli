(** Cycle-level SM timing simulator.

    One streaming multiprocessor executes thread blocks under a TLP
    limit (concurrent blocks), with:
    - [num_schedulers] greedy-then-oldest (GTO) warp schedulers, one
      issue per scheduler per cycle;
    - a scoreboard per warp (RAW/WAW on register slots);
    - a load/store unit with a bounded segment queue; warp accesses are
      coalesced into L1-line segments; MSHR reservation failures replay
      and are charged as cache-congestion stalls;
    - an L1 data cache backed by a (possibly shared) L2, interconnect
      and DRAM bandwidth model; shared memory has fixed latency plus
      bank-conflict serialisation;
    - block-level barriers and a block dispatcher that refills freed
      slots, mirroring the paper's thread-block-level throttling.

    The stepping API ({!create}/{!step}) lets {!Gpu} advance several SMs
    against one shared memory hierarchy; {!run} is the single-SM
    convenience wrapper used throughout the experiments. *)

type launch =
  { kernel : Ptx.Kernel.t
  ; block_size : int
  ; num_blocks : int  (** total blocks executed by this SM *)
  ; tlp_limit : int  (** concurrent blocks (the TLP knob) *)
  ; params : (string * Value.t) list
  ; memory : Memory.t  (** global memory, mutated in place *)
  }

exception Cycle_limit of Stats.t

(** The levels behind the per-SM L1: shared between SMs in a multi-SM
    simulation. *)
type shared_memsys

val make_shared : Config.t -> shared_memsys
val shared_dram_bytes : shared_memsys -> int
val shared_l2_stats : shared_memsys -> Cache.stats

type t

val create :
  ?scheduler:[ `Gto | `Lrr ]
  -> ?dynamic_tlp:bool
      (** DynCTA-style runtime throttling (Kayiran et al., the paper's
          reference [3]): a controller samples cache-congestion pressure
          each window and pauses/resumes resident thread blocks. The
          OptTLP baseline is this technique's offline-profiled optimum *)
  -> ?bypass_global:bool
      (** static L1 bypassing for global traffic (loads and stores go
          straight to the interconnect/L2); local spill traffic still
          caches. An extension hook: the paper notes CRAT composes with
          cache-bypassing techniques *)
  -> Config.t
  -> shared_memsys
  -> next_block:(unit -> int option)
      (** global block dispenser: called whenever a slot frees; [None]
          when the grid is exhausted *)
  -> launch
  -> t
(** [launch.num_blocks] is only used for the kernel's [%nctaid]; block
    ids come from [next_block]. *)

val step : t -> unit
(** Advance one cycle. *)

val busy : t -> bool
(** Blocks resident or still obtainable from the dispenser. *)

val stats : t -> Stats.t
(** Live statistics (cycles updated on {!finalize}). *)

val finalize : t -> Stats.t
(** Stamp cycle count and copy L1/L2 statistics into the result. *)

val run :
  ?max_cycles:int
  -> ?scheduler:[ `Gto | `Lrr ]
  -> ?bypass_global:bool
  -> ?dynamic_tlp:bool
  -> Config.t
  -> launch
  -> Stats.t
(** Single-SM convenience: private memory hierarchy, sequential block
    ids [0 .. num_blocks-1].
    @raise Cycle_limit when [max_cycles] (default 40_000_000) elapses. *)
