type launch =
  { kernel : Ptx.Kernel.t
  ; block_size : int
  ; grid_blocks : int
  ; tlp_limit : int
  ; params : (string * Value.t) list
  ; memory : Memory.t
  }

type result =
  { per_sm : Stats.t array
  ; total_cycles : int
  ; dram_bytes : int
  ; l2 : Cache.stats
  }

exception Cycle_limit of result

let run ?sms ?(max_cycles = 40_000_000) ?scheduler (cfg : Config.t) (l : launch) =
  let n_sms = Option.value ~default:cfg.Config.num_sms sms in
  let shared = Sm.make_shared cfg in
  let next = ref 0 in
  let next_block () =
    if !next >= l.grid_blocks then None
    else begin
      let b = !next in
      incr next;
      Some b
    end
  in
  let sm_launch =
    { Sm.kernel = l.kernel
    ; block_size = l.block_size
    ; num_blocks = l.grid_blocks
    ; tlp_limit = l.tlp_limit
    ; params = l.params
    ; memory = l.memory
    }
  in
  let units = Array.init n_sms (fun _ -> Sm.create ?scheduler cfg shared ~next_block sm_launch) in
  let cycle = ref 0 in
  let mk_result () =
    { per_sm = Array.map Sm.finalize units
    ; total_cycles = !cycle
    ; dram_bytes = Sm.shared_dram_bytes shared
    ; l2 = Sm.shared_l2_stats shared
    }
  in
  let any_busy () = Array.exists Sm.busy units in
  while any_busy () do
    if !cycle > max_cycles then raise (Cycle_limit (mk_result ()));
    Array.iter (fun sm -> if Sm.busy sm then Sm.step sm) units;
    incr cycle
  done;
  mk_result ()

let aggregate_ipc r =
  if r.total_cycles = 0 then 0.
  else
    float_of_int
      (Array.fold_left (fun acc s -> acc + s.Stats.warp_instrs) 0 r.per_sm)
    /. float_of_int r.total_cycles
