type t =
  | I of int64
  | F of float

let zero = I 0L
let of_int i = I (Int64.of_int i)

let to_bits = function
  | I i -> i
  | F f -> Int64.bits_of_float f

let to_float = function
  | I i -> Int64.to_float i
  | F f -> f

let to_int64 = function
  | I i -> i
  | F f -> Int64.of_float f

let to_bool v = to_int64 v <> 0L

let mask_width w i =
  match w with
  | 1 -> Int64.logand i 0xFFL
  | 2 -> Int64.logand i 0xFFFFL
  | 4 -> Int64.logand i 0xFFFFFFFFL
  | _ -> i

let sign_extend w i =
  match w with
  | 1 -> Int64.shift_right (Int64.shift_left i 56) 56
  | 2 -> Int64.shift_right (Int64.shift_left i 48) 48
  | 4 -> Int64.shift_right (Int64.shift_left i 32) 32
  | _ -> i

let round_f32 f = Int32.float_of_bits (Int32.bits_of_float f)

(* moving a float value through an integer-typed slot (or vice versa)
   reinterprets the bits, as a real register file would *)
let to_float_bits_aware = function
  | F f -> f
  | I i -> Int64.float_of_bits i

let to_int_bits_aware = function
  | I i -> i
  | F f -> Int64.bits_of_float f

let truncate ty v =
  let w = Ptx.Types.width_bytes ty in
  match ty with
  | Ptx.Types.F32 -> F (round_f32 (to_float_bits_aware v))
  | Ptx.Types.F64 -> F (to_float_bits_aware v)
  | Ptx.Types.Pred -> I (if to_bool v then 1L else 0L)
  | Ptx.Types.S16 | Ptx.Types.S32 | Ptx.Types.S64 ->
    I (sign_extend w (to_int_bits_aware v))
  | Ptx.Types.U16 | Ptx.Types.U32 | Ptx.Types.U64 | Ptx.Types.B8
  | Ptx.Types.B16 | Ptx.Types.B32 | Ptx.Types.B64 ->
    I (mask_width w (to_int_bits_aware v))

let as_signed ty v =
  let w = Ptx.Types.width_bytes ty in
  sign_extend w (to_int_bits_aware v)

let as_unsigned ty v =
  let w = Ptx.Types.width_bytes ty in
  mask_width w (to_int_bits_aware v)

let int_binop op ty a b =
  let signed = Ptx.Types.is_signed ty in
  let x = if signed then as_signed ty a else as_unsigned ty a in
  let y = if signed then as_signed ty b else as_unsigned ty b in
  let r =
    match op with
    | Ptx.Instr.Add -> Int64.add x y
    | Ptx.Instr.Sub -> Int64.sub x y
    | Ptx.Instr.Mul_lo -> Int64.mul x y
    | Ptx.Instr.Div -> if y = 0L then 0L else Int64.div x y
    | Ptx.Instr.Rem -> if y = 0L then 0L else Int64.rem x y
    | Ptx.Instr.Min -> if x < y then x else y
    | Ptx.Instr.Max -> if x > y then x else y
    | Ptx.Instr.And -> Int64.logand x y
    | Ptx.Instr.Or -> Int64.logor x y
    | Ptx.Instr.Xor -> Int64.logxor x y
    | Ptx.Instr.Shl -> Int64.shift_left x (Int64.to_int (Int64.logand y 63L))
    | Ptx.Instr.Shr ->
      let s = Int64.to_int (Int64.logand y 63L) in
      if signed then Int64.shift_right x s else Int64.shift_right_logical x s
  in
  truncate ty (I r)

let float_binop op ty a b =
  let x = to_float_bits_aware a and y = to_float_bits_aware b in
  let r =
    match op with
    | Ptx.Instr.Add -> x +. y
    | Ptx.Instr.Sub -> x -. y
    | Ptx.Instr.Mul_lo -> x *. y
    | Ptx.Instr.Div -> x /. y
    | Ptx.Instr.Rem -> Float.rem x y
    | Ptx.Instr.Min -> Float.min x y
    | Ptx.Instr.Max -> Float.max x y
    | Ptx.Instr.And | Ptx.Instr.Or | Ptx.Instr.Xor | Ptx.Instr.Shl
    | Ptx.Instr.Shr ->
      invalid_arg "Value: bitwise op on float type"
  in
  truncate ty (F r)

let binop op ty a b =
  if Ptx.Types.is_float ty then float_binop op ty a b else int_binop op ty a b

let unop op ty a =
  if Ptx.Types.is_float ty then
    let x = to_float_bits_aware a in
    let r =
      match op with
      | Ptx.Instr.Neg -> -.x
      | Ptx.Instr.Abs -> Float.abs x
      | Ptx.Instr.Sqrt -> sqrt x
      | Ptx.Instr.Rcp -> 1.0 /. x
      | Ptx.Instr.Ex2 -> Float.exp2 x
      | Ptx.Instr.Lg2 -> Float.log2 x
      | Ptx.Instr.Not -> invalid_arg "Value: not on float type"
    in
    truncate ty (F r)
  else
    let x = as_signed ty a in
    let r =
      match op with
      | Ptx.Instr.Neg -> Int64.neg x
      | Ptx.Instr.Not -> Int64.lognot x
      | Ptx.Instr.Abs -> Int64.abs x
      | Ptx.Instr.Sqrt | Ptx.Instr.Rcp | Ptx.Instr.Ex2 | Ptx.Instr.Lg2 ->
        invalid_arg "Value: SFU op on integer type"
    in
    truncate ty (I r)

let mad ty a b c =
  if Ptx.Types.is_float ty then
    truncate ty
      (F ((to_float_bits_aware a *. to_float_bits_aware b) +. to_float_bits_aware c))
  else binop Ptx.Instr.Add ty (binop Ptx.Instr.Mul_lo ty a b) c

let compare_values cmp ty a b =
  let r =
    if Ptx.Types.is_float ty then
      Stdlib.compare (to_float_bits_aware a) (to_float_bits_aware b)
    else if Ptx.Types.is_signed ty then
      Int64.compare (as_signed ty a) (as_signed ty b)
    else Int64.unsigned_compare (as_unsigned ty a) (as_unsigned ty b)
  in
  match cmp with
  | Ptx.Instr.Eq -> r = 0
  | Ptx.Instr.Ne -> r <> 0
  | Ptx.Instr.Lt -> r < 0
  | Ptx.Instr.Le -> r <= 0
  | Ptx.Instr.Gt -> r > 0
  | Ptx.Instr.Ge -> r >= 0

let convert ~dst ~src v =
  match (Ptx.Types.is_float dst, Ptx.Types.is_float src) with
  | true, true -> truncate dst (F (to_float_bits_aware v))
  | true, false ->
    let i =
      if Ptx.Types.is_signed src then as_signed src v else as_unsigned src v
    in
    truncate dst (F (Int64.to_float i))
  | false, true ->
    (* float to int: round toward zero, as PTX cvt.rzi does by default *)
    truncate dst (I (Int64.of_float (to_float_bits_aware v)))
  | false, false ->
    let i =
      if Ptx.Types.is_signed src then as_signed src v else as_unsigned src v
    in
    truncate dst (I i)

let equal a b =
  match (a, b) with
  | I x, I y -> Int64.equal x y
  | F x, F y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | I _, F _ | F _, I _ -> Int64.equal (to_bits a) (to_bits b)

let pp fmt = function
  | I i -> Format.fprintf fmt "%Ld" i
  | F f -> Format.fprintf fmt "%g" f
