(** Set-associative cache with LRU replacement and a bounded MSHR file,
    plus a DRAM bandwidth/latency model. Misses to the same line merge
    into the outstanding MSHR; when every MSHR is busy the access fails
    reservation and must be replayed — these reservation failures are the
    "pipeline stall caused by the congestion of cache requests" the paper
    measures (Figure 5b). *)

(** Outcome of a cache access at a given cycle. *)
type result =
  | Hit
  | Miss of int  (** data available at this cycle (includes merges) *)
  | Reserve_fail  (** all MSHRs in flight — replay the access *)

type stats =
  { mutable reads : int
  ; mutable read_hits : int
  ; mutable writes : int
  ; mutable write_hits : int
  ; mutable reserve_fails : int
  ; mutable writebacks : int
  ; mutable fills : int
  }

val fresh_stats : unit -> stats
val read_hit_rate : stats -> float

(** DRAM: fixed latency plus a bandwidth queue. *)
module Dram : sig
  type t

  val create : latency:int -> bytes_per_cycle:int -> t
  val request : t -> cycle:int -> bytes:int -> int
  (** Completion cycle of a transfer issued at [cycle]. *)

  val traffic_bytes : t -> int
end

type t

val create :
  name:string
  -> bytes:int
  -> assoc:int
  -> line:int
  -> mshrs:int
  -> hit_latency:int
  -> next:(cycle:int -> addr:int64 -> result)
  -> t
(** [next] is the next level in the hierarchy: it returns the completion
    result for a line fill (a [Dram.request] wrapped as [Miss], or an L2
    access). *)

val access : t -> cycle:int -> addr:int64 -> write:bool -> write_alloc:bool -> result
(** One access to the line containing [addr]. Global stores use
    [write_alloc:false] (write-through, no allocate); local-memory spill
    traffic uses [write_alloc:true] (write-back with allocate), matching
    GPGPU-Sim's local-memory policy. *)

val stats : t -> stats
val line_size : t -> int
val as_next : t -> dirty_bytes_sink:Dram.t -> cycle:int -> addr:int64 -> result
(** Adapter so this cache can serve as the [next] level of another: reads
    the line (write:false, allocating). *)
