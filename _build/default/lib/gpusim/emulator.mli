(** Reference functional emulator: executes a launch with no timing
    model. Used to validate the timing simulator and — crucially — as
    the oracle that register allocation preserves kernel semantics
    (original and allocated kernels must leave identical global memory). *)

type launch =
  { kernel : Ptx.Kernel.t
  ; block_size : int
  ; num_blocks : int
  ; params : (string * Value.t) list
  }

val run : ?warp_size:int -> launch -> Memory.t -> unit
(** Execute all blocks sequentially, mutating the given global memory.
    @raise Failure on barrier deadlock or divergent return. *)

val run_to_memory : ?warp_size:int -> launch -> Memory.t -> Memory.t
(** Like {!run} but on a copy; returns the resulting memory. *)
