(** Occupancy calculator: the maximum number of thread blocks that can
    run concurrently on one SM ("GPU kernels launch as many thread blocks
    concurrently as possible until one or more dimension of resources are
    exhausted", Section 2.1). *)

type usage =
  { regs_per_thread : int
  ; block_size : int
  ; shared_per_block : int  (** bytes *)
  }

val max_tlp : Config.t -> usage -> int
(** Minimum over the threads, blocks, register-file and shared-memory
    constraints; 0 when a single block cannot fit. *)

val limiting_resource : Config.t -> usage -> string
(** Which dimension binds at [max_tlp] — "registers", "shared memory",
    "threads" or "thread blocks". *)

val register_utilization : Config.t -> usage -> tlp:int -> float
(** Fraction of the SM register file held by [tlp] concurrent blocks —
    the metric of the paper's Figures 1(b), 7 and 15. *)

val shared_utilization : Config.t -> usage -> tlp:int -> float

val spare_shared_bytes : Config.t -> usage -> tlp:int -> int
(** Shared memory per block still unused when running [tlp] blocks — the
    [SpareShmSize] input of Algorithm 1. Spilling into this budget cannot
    reduce the TLP below [tlp]. *)
