(** Per-SM execution statistics collected by the timing simulator; the
    raw material of every figure in the paper's evaluation. *)

type t =
  { mutable cycles : int
  ; mutable warp_instrs : int
  ; mutable thread_instrs : int
  ; mutable issue_cycles : int  (** scheduler-cycles that issued *)
  ; mutable stall_scoreboard : int
      (** scheduler-cycles blocked only by operand dependences *)
  ; mutable stall_mem_congestion : int
      (** scheduler-cycles blocked by cache-resource congestion (LSU queue
          full or MSHR reservation failure) — Figure 5(b) *)
  ; mutable stall_barrier : int
  ; mutable stall_idle : int  (** nothing to schedule *)
  ; mutable lsu_replay_cycles : int  (** L1 reservation-failure retries *)
  ; mutable global_load_lanes : int
  ; mutable global_store_lanes : int
  ; mutable local_load_lanes : int
  ; mutable local_store_lanes : int
  ; mutable shared_load_lanes : int
  ; mutable shared_store_lanes : int
  ; mutable shared_bank_conflicts : int
      (** extra serialisation passes caused by bank conflicts *)
  ; mutable global_segments : int
  ; mutable local_segments : int  (** Figure 16's local-memory accesses *)
  ; l1 : Cache.stats
  ; l2 : Cache.stats
  ; mutable dram_bytes : int
  ; mutable blocks_completed : int
  ; mutable max_concurrent_blocks : int
  ; mutable sfu_instrs : int
  ; mutable alu_instrs : int
  }

val create : unit -> t
val ipc : t -> float
val l1_hit_rate : t -> float
val mem_stall_fraction : t -> float
(** Fraction of scheduler-cycles lost to cache-resource congestion. *)

val local_accesses : t -> int
val pp : Format.formatter -> t -> unit
