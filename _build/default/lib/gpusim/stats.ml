type t =
  { mutable cycles : int
  ; mutable warp_instrs : int
  ; mutable thread_instrs : int
  ; mutable issue_cycles : int
  ; mutable stall_scoreboard : int
  ; mutable stall_mem_congestion : int
  ; mutable stall_barrier : int
  ; mutable stall_idle : int
  ; mutable lsu_replay_cycles : int
  ; mutable global_load_lanes : int
  ; mutable global_store_lanes : int
  ; mutable local_load_lanes : int
  ; mutable local_store_lanes : int
  ; mutable shared_load_lanes : int
  ; mutable shared_store_lanes : int
  ; mutable shared_bank_conflicts : int
  ; mutable global_segments : int
  ; mutable local_segments : int
  ; l1 : Cache.stats
  ; l2 : Cache.stats
  ; mutable dram_bytes : int
  ; mutable blocks_completed : int
  ; mutable max_concurrent_blocks : int
  ; mutable sfu_instrs : int
  ; mutable alu_instrs : int
  }

let create () =
  { cycles = 0
  ; warp_instrs = 0
  ; thread_instrs = 0
  ; issue_cycles = 0
  ; stall_scoreboard = 0
  ; stall_mem_congestion = 0
  ; stall_barrier = 0
  ; stall_idle = 0
  ; lsu_replay_cycles = 0
  ; global_load_lanes = 0
  ; global_store_lanes = 0
  ; local_load_lanes = 0
  ; local_store_lanes = 0
  ; shared_load_lanes = 0
  ; shared_store_lanes = 0
  ; shared_bank_conflicts = 0
  ; global_segments = 0
  ; local_segments = 0
  ; l1 = Cache.fresh_stats ()
  ; l2 = Cache.fresh_stats ()
  ; dram_bytes = 0
  ; blocks_completed = 0
  ; max_concurrent_blocks = 0
  ; sfu_instrs = 0
  ; alu_instrs = 0
  }

let ipc t =
  if t.cycles = 0 then 0. else float_of_int t.warp_instrs /. float_of_int t.cycles

let l1_hit_rate t = Cache.read_hit_rate t.l1

let mem_stall_fraction t =
  let total =
    t.issue_cycles + t.stall_scoreboard + t.stall_mem_congestion
    + t.stall_barrier + t.stall_idle
  in
  if total = 0 then 0.
  else float_of_int t.stall_mem_congestion /. float_of_int total

let local_accesses t = t.local_load_lanes + t.local_store_lanes

let pp fmt t =
  Format.fprintf fmt
    "cycles=%d instrs=%d ipc=%.3f l1_hit=%.3f mem_stall=%.3f blocks=%d@."
    t.cycles t.warp_instrs (ipc t) (l1_hit_rate t) (mem_stall_fraction t)
    t.blocks_completed;
  Format.fprintf fmt
    "  lanes: gld=%d gst=%d lld=%d lst=%d sld=%d sst=%d; segs: g=%d l=%d@."
    t.global_load_lanes t.global_store_lanes t.local_load_lanes
    t.local_store_lanes t.shared_load_lanes t.shared_store_lanes
    t.global_segments t.local_segments;
  Format.fprintf fmt
    "  stalls: sb=%d mem=%d bar=%d idle=%d replays=%d; dram=%dB bankconf=%d@."
    t.stall_scoreboard t.stall_mem_congestion t.stall_barrier t.stall_idle
    t.lsu_replay_cycles t.dram_bytes t.shared_bank_conflicts
