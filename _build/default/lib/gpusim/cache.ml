type result =
  | Hit
  | Miss of int
  | Reserve_fail

type stats =
  { mutable reads : int
  ; mutable read_hits : int
  ; mutable writes : int
  ; mutable write_hits : int
  ; mutable reserve_fails : int
  ; mutable writebacks : int
  ; mutable fills : int
  }

let fresh_stats () =
  { reads = 0
  ; read_hits = 0
  ; writes = 0
  ; write_hits = 0
  ; reserve_fails = 0
  ; writebacks = 0
  ; fills = 0
  }

let read_hit_rate s =
  if s.reads = 0 then 1.0 else float_of_int s.read_hits /. float_of_int s.reads

module Dram = struct
  type t =
    { latency : int
    ; bytes_per_cycle : int
    ; mutable next_free : int
    ; mutable bytes : int
    }

  let create ~latency ~bytes_per_cycle =
    { latency; bytes_per_cycle; next_free = 0; bytes = 0 }

  let request t ~cycle ~bytes =
    let start = max cycle t.next_free in
    let service = (bytes + t.bytes_per_cycle - 1) / t.bytes_per_cycle in
    t.next_free <- start + service;
    t.bytes <- t.bytes + bytes;
    start + service + t.latency

  let traffic_bytes t = t.bytes
end

type line =
  { mutable tag : int64
  ; mutable valid : bool
  ; mutable valid_at : int  (** fill completion cycle (in-flight if > now) *)
  ; mutable last_use : int
  ; mutable dirty : bool
  }

type t =
  { name : string
  ; sets : line array array
  ; line_bytes : int
  ; num_sets : int
  ; mshrs : int
  ; hit_latency : int
  ; next : cycle:int -> addr:int64 -> result
  ; mutable inflight : int list  (** completion cycles of outstanding fills *)
  ; st : stats
  }

let create ~name ~bytes ~assoc ~line ~mshrs ~hit_latency ~next =
  let num_sets = bytes / (assoc * line) in
  assert (num_sets > 0);
  let mk _ = { tag = -1L; valid = false; valid_at = 0; last_use = 0; dirty = false } in
  { name
  ; sets = Array.init num_sets (fun _ -> Array.init assoc mk)
  ; line_bytes = line
  ; num_sets
  ; mshrs
  ; hit_latency
  ; next
  ; inflight = []
  ; st = fresh_stats ()
  }

let line_size t = t.line_bytes
let stats t = t.st

let purge_inflight t cycle =
  t.inflight <- List.filter (fun c -> c > cycle) t.inflight

let set_and_tag t addr =
  let lineno = Int64.div addr (Int64.of_int t.line_bytes) in
  let set = Int64.to_int (Int64.rem lineno (Int64.of_int t.num_sets)) in
  (t.sets.(set), lineno)

let find_way ways tag =
  let n = Array.length ways in
  let rec loop i =
    if i >= n then None
    else if ways.(i).valid && Int64.equal ways.(i).tag tag then Some ways.(i)
    else loop (i + 1)
  in
  loop 0

let victim ways =
  let n = Array.length ways in
  let best = ref ways.(0) in
  for i = 1 to n - 1 do
    if (not ways.(i).valid) && !best.valid then best := ways.(i)
    else if ways.(i).valid = !best.valid && ways.(i).last_use < !best.last_use
    then best := ways.(i)
  done;
  !best

let count_hit t ~write =
  if write then begin
    t.st.writes <- t.st.writes + 1;
    t.st.write_hits <- t.st.write_hits + 1
  end
  else begin
    t.st.reads <- t.st.reads + 1;
    t.st.read_hits <- t.st.read_hits + 1
  end

let count_miss t ~write =
  if write then t.st.writes <- t.st.writes + 1 else t.st.reads <- t.st.reads + 1

let access t ~cycle ~addr ~write ~write_alloc =
  purge_inflight t cycle;
  let ways, tag = set_and_tag t addr in
  match find_way ways tag with
  | Some line ->
    line.last_use <- cycle;
    if write then line.dirty <- line.dirty || write_alloc;
    if line.valid_at <= cycle then begin
      count_hit t ~write;
      Hit
    end
    else begin
      (* in-flight line: merge into the pending fill (hit-under-miss) *)
      count_miss t ~write;
      Miss line.valid_at
    end
  | None ->
    if write && not write_alloc then begin
      (* write-through, no allocate: pass through to the next level's
         bandwidth without occupying an MSHR *)
      count_miss t ~write;
      match t.next ~cycle ~addr with
      | Hit -> Miss (cycle + t.hit_latency)
      | Miss c -> Miss c
      | Reserve_fail -> Reserve_fail
    end
    else if List.length t.inflight >= t.mshrs then begin
      t.st.reserve_fails <- t.st.reserve_fails + 1;
      Reserve_fail
    end
    else begin
      count_miss t ~write;
      let v = victim ways in
      if v.valid && v.dirty then t.st.writebacks <- t.st.writebacks + 1;
      (match t.next ~cycle ~addr with
       | Hit ->
         (* next level hit still pays its transfer: modelled by next *)
         v.tag <- tag;
         v.valid <- true;
         v.dirty <- write && write_alloc;
         v.last_use <- cycle;
         v.valid_at <- cycle + t.hit_latency;
         t.st.fills <- t.st.fills + 1;
         Miss v.valid_at
       | Miss c ->
         v.tag <- tag;
         v.valid <- true;
         v.dirty <- write && write_alloc;
         v.last_use <- cycle;
         v.valid_at <- c;
         t.inflight <- c :: t.inflight;
         t.st.fills <- t.st.fills + 1;
         Miss c
       | Reserve_fail ->
         t.st.reserve_fails <- t.st.reserve_fails + 1;
         Reserve_fail)
    end

let as_next t ~dirty_bytes_sink ~cycle ~addr =
  ignore dirty_bytes_sink;
  access t ~cycle ~addr ~write:false ~write_alloc:true
