(** Runtime values of the functional interpreter. Integers are carried as
    [int64] and truncated to the operation width at each step; floats are
    carried at double precision (single-precision rounding is applied for
    [f32] results). *)

type t =
  | I of int64
  | F of float

val zero : t
val to_bits : t -> int64
val of_int : int -> t

val truncate : Ptx.Types.scalar -> t -> t
(** Normalise a value to the given type: mask integers to the width (with
    sign extension for signed types), round floats to [f32] when needed,
    coerce representation (bits reinterpretation between I/F). *)

val to_float : t -> float
val to_int64 : t -> int64
val to_bool : t -> bool

val binop : Ptx.Instr.binop -> Ptx.Types.scalar -> t -> t -> t
val unop : Ptx.Instr.unop -> Ptx.Types.scalar -> t -> t
val mad : Ptx.Types.scalar -> t -> t -> t -> t
val compare_values : Ptx.Instr.cmp -> Ptx.Types.scalar -> t -> t -> bool
val convert : dst:Ptx.Types.scalar -> src:Ptx.Types.scalar -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
