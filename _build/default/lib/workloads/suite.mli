(** The paper's Table 3 benchmark suite: 11 resource-sensitive and 11
    resource-insensitive applications, each a parameterised {!Shapes}
    kernel matched to the original application's resource profile. *)

val all : App.t list
val sensitive : App.t list
val insensitive : App.t list
val find : string -> App.t
(** Look up by abbreviation (e.g. "CFD").
    @raise Not_found for unknown abbreviations. *)

val abbrs : string list
val pp_table : Format.formatter -> unit -> unit
(** Render Table 3. *)
