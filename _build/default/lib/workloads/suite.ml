(* Knob settings per application. [live] steers MaxReg (register demand),
   [ws_words] the per-block L1 footprint (cache sensitivity), [shm_words]
   the application's own shared-memory tile. [default_regs] is what the
   nvcc-like default allocation would choose — the register count the
   MaxTLP and OptTLP baselines run with. *)

let mk ~abbr ~app ~kern ~suite ~sensitive ~shape ~block ~default_regs
    ?(shm = 0) ~live ?mem_live ?(flops = 2) ?(sfu = 0) ?(naccs = 2) inputs =
  let mem_live = Option.value ~default:live mem_live in
  { App.abbr
  ; app_name = app
  ; kernel_name = kern
  ; suite_name = suite
  ; sensitive
  ; block_size = block
  ; default_regs
  ; shape
  ; knobs = { Shapes.live; mem_live; flops; sfu_every = sfu; naccs }
  ; shm_words = shm
  ; inputs
  }

let inp ?(label = "default") ~ws ~iters ~passes ~blocks ?(seed = 42) () =
  { App.ilabel = label; ws_words = ws; iters; passes; num_blocks = blocks; seed }

(* ---------- resource sensitive ---------- *)

let blk =
  mk ~abbr:"BLK" ~app:"BlackScholes" ~kern:"BlackScholesGPU" ~suite:"SDK"
    ~sensitive:true ~shape:App.Streaming ~block:128 ~default_regs:48 ~live:34
    ~mem_live:8 ~flops:4 ~sfu:4 ~naccs:4
    [ inp ~ws:8192 ~iters:3 ~passes:2 ~blocks:10 ()
    ; inp ~label:"small" ~ws:4096 ~iters:2 ~passes:1 ~blocks:8 ~seed:7 ()
    ; inp ~label:"large" ~ws:8192 ~iters:3 ~passes:2 ~blocks:12 ~seed:13 ()
    ; inp ~label:"wide" ~ws:16384 ~iters:2 ~passes:2 ~blocks:10 ~seed:21 ()
    ]

let cfd =
  mk ~abbr:"CFD" ~app:"cfd" ~kern:"cuda_compute_flux" ~suite:"Rodinia"
    ~sensitive:true ~shape:App.Tiled ~block:128 ~default_regs:54 ~live:48
    ~mem_live:4 ~flops:2 ~naccs:8
    [ inp ~ws:1024 ~iters:2 ~passes:8 ~blocks:10 ()
    ; inp ~label:"97K" ~ws:2048 ~iters:3 ~passes:3 ~blocks:8 ~seed:5 ()
    ; inp ~label:"193K" ~ws:2048 ~iters:4 ~passes:5 ~blocks:12 ~seed:9 ()
    ; inp ~label:"0.2M" ~ws:3072 ~iters:4 ~passes:4 ~blocks:10 ~seed:11 ()
    ]

let dtc =
  (* dxtc stages its block in shared memory, which leaves Algorithm 1 a
     tight spare-shared budget: its spills are only partially absorbed *)
  mk ~abbr:"DTC" ~app:"dxtc" ~kern:"compress" ~suite:"SDK" ~sensitive:true
    ~shape:App.Shared_tile ~block:64 ~default_regs:58 ~shm:1536 ~live:50
    ~mem_live:8 ~flops:6 ~naccs:6
    [ inp ~ws:2560 ~iters:5 ~passes:3 ~blocks:12 () ]

let esp =
  mk ~abbr:"ESP" ~app:"EstimatePi" ~kern:"initRNG" ~suite:"SDK" ~sensitive:true
    ~shape:App.Streaming ~block:128 ~default_regs:47 ~live:38 ~mem_live:4
    ~flops:8 ~sfu:5 ~naccs:4
    [ inp ~ws:1024 ~iters:2 ~passes:2 ~blocks:10 () ]

let fdtd =
  mk ~abbr:"FDTD" ~app:"FDTD3d" ~kern:"FiniteDifferences" ~suite:"SDK"
    ~sensitive:true ~shape:App.Stencil ~block:128 ~default_regs:58 ~live:46
    ~mem_live:8 ~flops:3 ~naccs:8
    [ inp ~ws:4096 ~iters:4 ~passes:6 ~blocks:8 ()
    ; inp ~label:"small" ~ws:4096 ~iters:3 ~passes:4 ~blocks:6 ~seed:31 ()
    ]

let hst =
  mk ~abbr:"HST" ~app:"hotspot" ~kern:"calculate_temp" ~suite:"Rodinia"
    ~sensitive:true ~shape:App.Shared_tile ~block:256 ~default_regs:44
    ~shm:2048 ~live:28 ~mem_live:8 ~flops:3 ~naccs:6
    [ inp ~ws:2048 ~iters:2 ~passes:3 ~blocks:8 () ]

let kmn =
  mk ~abbr:"KMN" ~app:"kmeans" ~kern:"invert_mapping" ~suite:"Rodinia"
    ~sensitive:true ~shape:App.Tiled ~block:256 ~default_regs:23 ~live:4
    ~mem_live:4 ~flops:1 ~naccs:4
    [ inp ~ws:7680 ~iters:5 ~passes:12 ~blocks:8 ()
    ; inp ~label:"kdd" ~ws:7680 ~iters:4 ~passes:8 ~blocks:8 ~seed:17 ()
    ; inp ~label:"819k" ~ws:7680 ~iters:5 ~passes:16 ~blocks:10 ~seed:23 ()
    ]

let lbm =
  mk ~abbr:"LBM" ~app:"lbm" ~kern:"StreamCollide" ~suite:"Parboil"
    ~sensitive:true ~shape:App.Streaming ~block:128 ~default_regs:36 ~live:18
    ~flops:2 ~naccs:4
    [ inp ~ws:16384 ~iters:4 ~passes:1 ~blocks:10 () ]

let spmv =
  mk ~abbr:"SPMV" ~app:"spmv" ~kern:"spmv_jds" ~suite:"Parboil" ~sensitive:true
    ~shape:App.Gather ~block:128 ~default_regs:34 ~live:14 ~mem_live:8 ~flops:1
    ~naccs:4
    [ inp ~ws:4096 ~iters:4 ~passes:2 ~blocks:10 ()
    ; inp ~label:"dense" ~ws:2048 ~iters:4 ~passes:3 ~blocks:10 ~seed:41 ()
    ]

let ste =
  mk ~abbr:"STE" ~app:"stencil" ~kern:"block2D" ~suite:"Parboil" ~sensitive:true
    ~shape:App.Stencil ~block:128 ~default_regs:56 ~live:46 ~mem_live:6 ~flops:2
    ~naccs:8
    [ inp ~ws:3072 ~iters:4 ~passes:3 ~blocks:10 ()
    ; inp ~label:"large" ~ws:3072 ~iters:4 ~passes:5 ~blocks:12 ~seed:37 ()
    ]

let stm =
  mk ~abbr:"STM" ~app:"streamcluster" ~kern:"compute_cost" ~suite:"Rodinia"
    ~sensitive:true ~shape:App.Reduction ~block:128 ~default_regs:36 ~shm:128
    ~live:14 ~mem_live:8 ~flops:2 ~naccs:4
    [ inp ~ws:6144 ~iters:6 ~passes:5 ~blocks:8 () ]

(* ---------- resource insensitive ---------- *)

let light_input = inp ~ws:768 ~iters:2 ~passes:2 ~blocks:8 ()

let bak =
  mk ~abbr:"BAK" ~app:"backprop" ~kern:"layerforward" ~suite:"Rodinia"
    ~sensitive:false ~shape:App.Reduction ~block:128 ~default_regs:28 ~shm:128
    ~live:10 ~naccs:2 [ light_input ]

let bfs =
  mk ~abbr:"BFS" ~app:"bfs" ~kern:"kernel" ~suite:"Rodinia" ~sensitive:false
    ~shape:App.Gather ~block:128 ~default_regs:27 ~live:8 ~flops:1
    [ light_input ]

let bt =
  mk ~abbr:"B+T" ~app:"b+tree" ~kern:"findK" ~suite:"Rodinia" ~sensitive:false
    ~shape:App.Gather ~block:128 ~default_regs:29 ~live:10 ~flops:1
    [ light_input ]

let gau =
  mk ~abbr:"GAU" ~app:"gaussian" ~kern:"Fan1" ~suite:"Rodinia" ~sensitive:false
    ~shape:App.Streaming ~block:128 ~default_regs:25 ~live:8 ~flops:2
    [ light_input ]

let lud =
  mk ~abbr:"LUD" ~app:"lud" ~kern:"diagonal" ~suite:"Rodinia" ~sensitive:false
    ~shape:App.Shared_tile ~block:64 ~default_regs:27 ~shm:512 ~live:10
    ~flops:2 [ inp ~ws:512 ~iters:2 ~passes:2 ~blocks:8 () ]

let mum =
  mk ~abbr:"MUM" ~app:"mummergpu" ~kern:"mummergpuKernel" ~suite:"Rodinia"
    ~sensitive:false ~shape:App.Gather ~block:128 ~default_regs:31 ~live:12
    ~flops:1 [ light_input ]

let need =
  mk ~abbr:"NEED" ~app:"nw" ~kern:"cuda_shared_1" ~suite:"Rodinia"
    ~sensitive:false ~shape:App.Shared_tile ~block:64 ~default_regs:27 ~shm:1024
    ~live:10 ~flops:2 [ inp ~ws:1024 ~iters:2 ~passes:2 ~blocks:8 () ]

let ptf =
  mk ~abbr:"PTF" ~app:"particlefilter" ~kern:"kernel" ~suite:"Rodinia"
    ~sensitive:false ~shape:App.Gather ~block:128 ~default_regs:29 ~live:10
    ~flops:2 [ light_input ]

let path =
  mk ~abbr:"PATH" ~app:"pathfinder" ~kern:"dynproc" ~suite:"Rodinia"
    ~sensitive:false ~shape:App.Tiled ~block:128 ~default_regs:28 ~live:10
    ~flops:2 [ light_input ]

let sgm =
  mk ~abbr:"SGM" ~app:"sgemm" ~kern:"mysgemmNT" ~suite:"Parboil"
    ~sensitive:false ~shape:App.Shared_tile ~block:128 ~default_regs:29
    ~shm:1024 ~live:12 ~flops:3 [ inp ~ws:1024 ~iters:2 ~passes:2 ~blocks:8 () ]

let srad =
  mk ~abbr:"SRAD" ~app:"srad" ~kern:"srad_cuda" ~suite:"Rodinia"
    ~sensitive:false ~shape:App.Stencil ~block:128 ~default_regs:30 ~live:10
    ~flops:2 [ light_input ]

let sensitive = [ blk; cfd; dtc; esp; fdtd; hst; kmn; lbm; spmv; ste; stm ]
let insensitive = [ bak; bfs; bt; gau; lud; mum; need; ptf; path; sgm; srad ]
let all = sensitive @ insensitive
let abbrs = List.map (fun a -> a.App.abbr) all

let find abbr =
  match List.find_opt (fun a -> a.App.abbr = abbr) all with
  | Some a -> a
  | None -> raise Not_found

let pp_table fmt () =
  Format.fprintf fmt "%-5s %-14s %-22s %-8s %s@." "abbr" "application" "kernel"
    "suite" "class";
  List.iter (fun a -> Format.fprintf fmt "%a@." App.pp a) all
