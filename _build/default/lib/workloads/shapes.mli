(** Kernel-shape combinators.

    Each of the paper's 22 applications is a parameterisation of one of
    these shapes; the knobs control exactly the properties CRAT's design
    space depends on:
    - [live]: simultaneously-live temporaries per inner iteration — sets
      the register demand (MaxReg) and therefore the spill count at a
      given register limit;
    - [ws_words] (runtime parameter "ws"): per-block working-set words —
      together with the TLP this decides L1 thrashing;
    - [flops]: arithmetic per loaded value (single-thread compute);
    - [sfu_every]: apply an SFU op to every n-th value (0 = never);
    - [shm_words]: statically declared shared memory per block.

    All shapes read [inp]/[out] (u64 pointers), [ws], [iters] and
    [passes] (u32) as kernel parameters, so one kernel serves every
    input scale. *)

type knobs =
  { live : int
  ; mem_live : int
      (** how many of the [live] values are loaded from memory; the rest
          are synthesised arithmetically. Decouples register pressure
          ([live]) from the per-block footprint
          ([iters * mem_live * ntid * 4] bytes), so a pass revisits each
          cache line exactly once and reuse is pass-separated — L1
          capacity, not miss merging, decides the hit rate *)
  ; flops : int
  ; sfu_every : int
  ; naccs : int  (** independent accumulators (long live ranges) *)
  }

val default_knobs : knobs

val tiled_reuse : name:string -> knobs -> Ptx.Kernel.t
(** Each block repeatedly sweeps its own [ws]-word region of global
    memory ([passes] passes of [iters] inner steps, [live] coalesced
    loads each). The canonical cache-sensitive shape (CFD, KMN, ...). *)

val streaming : name:string -> knobs -> Ptx.Kernel.t
(** No reuse: every load targets a fresh address ([gtid]-strided).
    Register/compute bound (BLK, ESP, ...). *)

val stencil3 : name:string -> knobs -> Ptx.Kernel.t
(** 3-point stencil over the block's tile with halo; neighbouring
    threads share cache lines and passes revisit the tile (FDTD, STE,
    HST). *)

val shared_tile : name:string -> shm_words:int -> knobs -> Ptx.Kernel.t
(** Stage the tile into a declared shared array, barrier, compute from
    shared with reuse, barrier, write back (NW, LUD, SGM). *)

val reduction : name:string -> shm_words:int -> knobs -> Ptx.Kernel.t
(** Per-thread partial accumulation over the region, then a
    shared-memory tree reduction with barriers (STM, BAK). *)

val gather : name:string -> knobs -> Ptx.Kernel.t
(** Data-dependent gather through an index array at {!Data.aux_base}
    plus a divergent branch (MUM, BFS, PTF). *)

val all_shape_names : string list
