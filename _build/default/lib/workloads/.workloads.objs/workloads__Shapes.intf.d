lib/workloads/shapes.mli: Ptx
