lib/workloads/app.mli: Format Gpusim Ptx Shapes
