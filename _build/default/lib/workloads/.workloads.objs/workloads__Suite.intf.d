lib/workloads/suite.mli: App Format
