lib/workloads/shapes.ml: List Ptx
