lib/workloads/data.ml: Array Gpusim
