lib/workloads/app.ml: Data Format Gpusim List Printf Ptx Shapes
