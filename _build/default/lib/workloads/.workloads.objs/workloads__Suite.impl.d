lib/workloads/suite.ml: App Format List Option Shapes
