lib/workloads/data.mli: Gpusim
