(** Deterministic input-data generation for the synthetic workloads. *)

val inp_base : int64
val out_base : int64
val aux_base : int64

val splitmix : int -> int -> int
(** [splitmix seed i]: the i-th value of a splitmix64-style stream —
    deterministic, no global state. *)

val uniform_f32 : seed:int -> int -> float array
(** [n] floats in [0, 1). *)

val uniform_u32 : seed:int -> bound:int -> int -> int array

val standard_memory : seed:int -> words:int -> Gpusim.Memory.t
(** A global memory image with [words] random floats at {!inp_base} and
    [words] random positive integers at {!aux_base}. *)
