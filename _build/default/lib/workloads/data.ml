let inp_base = 0x1000_0000L
let out_base = 0x2000_0000L
let aux_base = 0x3000_0000L

let splitmix seed i =
  let z = ref (seed + (i * 0x9E3779B9) land max_int) in
  z := !z lxor (!z lsr 16);
  z := !z * 0x85EBCA6B land max_int;
  z := !z lxor (!z lsr 13);
  z := !z * 0xC2B2AE35 land max_int;
  z := !z lxor (!z lsr 16);
  !z

let uniform_f32 ~seed n =
  Array.init n (fun i -> float_of_int (splitmix seed i mod 1_000_000) /. 1_000_000.)

let uniform_u32 ~seed ~bound n =
  Array.init n (fun i -> splitmix seed i mod bound)

let standard_memory ~seed ~words =
  let m = Gpusim.Memory.create () in
  Gpusim.Memory.write_f32_array m ~base:inp_base (uniform_f32 ~seed words);
  Gpusim.Memory.write_u32_array m ~base:aux_base
    (uniform_u32 ~seed:(seed + 1) ~bound:(max 1 words) words);
  m
