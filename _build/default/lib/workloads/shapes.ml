module B = Ptx.Builder
module I = Ptx.Instr
module T = Ptx.Types

type knobs =
  { live : int
  ; mem_live : int
  ; flops : int
  ; sfu_every : int
  ; naccs : int
  }

let default_knobs = { live = 8; mem_live = 8; flops = 2; sfu_every = 0; naccs = 2 }

(* Shared prologue: parameter loads, thread/block identifiers and the
   block's private region pointer [inp + ctaid*ws*4]. *)
type env =
  { b : B.t
  ; tid : Ptx.Reg.t  (** u32 *)
  ; ntid : Ptx.Reg.t
  ; ctaid : Ptx.Reg.t
  ; gtid : Ptx.Reg.t
  ; region : Ptx.Reg.t  (** u64 *)
  ; out64 : Ptx.Reg.t
  ; ws : Ptx.Reg.t  (** u32 words per block region *)
  ; iters : Ptx.Reg.t
  ; passes : Ptx.Reg.t
  }

let prologue ?(extra_params = []) name =
  let b = B.create name in
  let inp = B.param b "inp" T.U64 in
  let out = B.param b "out" T.U64 in
  let ws_p = B.param b "ws" T.U32 in
  let iters_p = B.param b "iters" T.U32 in
  let passes_p = B.param b "passes" T.U32 in
  List.iter (fun (n, ty) -> ignore (B.param b n ty)) extra_params;
  let tid = B.special b Ptx.Reg.Tid_x in
  let ctaid = B.special b Ptx.Reg.Ctaid_x in
  let ntid = B.special b Ptx.Reg.Ntid_x in
  let gtid = B.mad b T.U32 (B.reg ctaid) (B.reg ntid) (B.reg tid) in
  let inp64 = B.ld_param b T.U64 inp in
  let out64 = B.ld_param b T.U64 out in
  let ws = B.ld_param b T.U32 ws_p in
  let iters = B.ld_param b T.U32 iters_p in
  let passes = B.ld_param b T.U32 passes_p in
  (* region stride = ws + one cache line of padding, so different blocks'
     regions do not alias the same cache sets *)
  let wspad = B.add b T.U32 (B.reg ws) (B.imm 32) in
  let roff = B.mul b T.U32 (B.reg ctaid) (B.reg wspad) in
  let rbytes = B.mul b T.U32 (B.reg roff) (B.imm 4) in
  let roff64 = B.cvt b T.U64 T.U32 (B.reg rbytes) in
  let region = B.add b T.U64 (B.reg inp64) (B.reg roff64) in
  { b; tid; ntid; ctaid; gtid; region; out64; ws; iters; passes }

(* f32 load from a u32 word index off a u64 base *)
let load_f32 b base idx =
  let bytes = B.mul b T.U32 (B.reg idx) (B.imm 4) in
  let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o64) in
  B.ld b T.Global T.F32 (B.reg addr) 0

let store_f32 b base idx v =
  let bytes = B.mul b T.U32 (B.reg idx) (B.imm 4) in
  let o64 = B.cvt b T.U64 T.U32 (B.reg bytes) in
  let addr = B.add b T.U64 (B.reg base) (B.reg o64) in
  B.st b T.Global T.F32 (B.reg addr) 0 (B.reg v)

let rec flop_chain b v n =
  if n <= 0 then v
  else
    let v' = B.mad b T.F32 (B.reg v) (B.fimm 0.9990234375) (B.fimm 0.001953125) in
    flop_chain b v' (n - 1)

let sfu_step b v =
  let a = B.unop b I.Abs T.F32 (B.reg v) in
  let a1 = B.add b T.F32 (B.reg a) (B.fimm 1.0) in
  B.unop b I.Sqrt T.F32 (B.reg a1)

let fresh_accs env naccs =
  List.init naccs (fun i ->
    B.mov env.b T.F32 (B.fimm (0.03125 *. float_of_int i)))

(* fold values into the accumulators round-robin *)
let fold_into env accs vs =
  let n = List.length accs in
  List.iteri
    (fun i v ->
       B.acc_binop env.b I.Add T.F32 (List.nth accs (i mod n)) (B.reg v))
    vs

let combine_accs env accs =
  match accs with
  | [] -> B.mov env.b T.F32 (B.fimm 0.0)
  | first :: rest ->
    List.iter (fun a -> B.acc_binop env.b I.Add T.F32 first (B.reg a)) rest;
    first

let write_result env acc = store_f32 env.b env.out64 env.gtid acc

(* One unrolled group: [mem_live] loads whose indices derive from
   [base_idx] (u32), padded to [live] simultaneously-live values by
   arithmetic on the loaded ones, then flop chains, then a fold. *)
let unrolled_group env k ~mk_value accs base_idx =
  let mem_live = min k.mem_live k.live in
  let loaded =
    List.init mem_live (fun u ->
      let un = B.mul env.b T.U32 (B.reg env.ntid) (B.imm u) in
      let raw = B.add env.b T.U32 (B.reg base_idx) (B.reg un) in
      let idx = B.binop env.b I.Rem T.U32 (B.reg raw) (B.reg env.ws) in
      mk_value u idx)
  in
  let synthesised =
    List.init (max 0 (k.live - mem_live)) (fun e ->
      let src = List.nth loaded (e mod mem_live) in
      B.mad env.b T.F32 (B.reg src)
        (B.fimm (1.0 +. (0.0078125 *. float_of_int (e mod 7))))
        (B.fimm 0.0625))
  in
  let vs = loaded @ synthesised in
  let vs =
    List.mapi
      (fun u v ->
         let v = flop_chain env.b v k.flops in
         if k.sfu_every > 0 && u mod k.sfu_every = 0 then sfu_step env.b v else v)
      vs
  in
  fold_into env accs vs

(* the standard double loop: passes x iters of an unrolled group *)
let pass_loop env k ~mk_value accs =
  B.for_loop env.b ~from:(B.imm 0) ~below:(B.reg env.passes) ~step:1 (fun p ->
    B.for_loop env.b ~from:(B.imm 0) ~below:(B.reg env.iters) ~step:1 (fun j ->
      let jl = B.mul env.b T.U32 (B.reg j) (B.imm (min k.mem_live k.live)) in
      let jn = B.mul env.b T.U32 (B.reg jl) (B.reg env.ntid) in
      let base0 = B.add env.b T.U32 (B.reg env.tid) (B.reg jn) in
      let base_idx = B.add env.b T.U32 (B.reg base0) (B.reg p) in
      unrolled_group env k ~mk_value accs base_idx))

let tiled_reuse ~name k =
  let env = prologue name in
  let accs = fresh_accs env k.naccs in
  pass_loop env k ~mk_value:(fun _ idx -> load_f32 env.b env.region idx) accs;
  let r = combine_accs env accs in
  write_result env r;
  B.finish env.b

let streaming ~name k =
  let env = prologue name in
  let accs = fresh_accs env k.naccs in
  (* fresh addresses: index by gtid so nothing is revisited; region = whole
     input, still coalesced per warp *)
  B.for_loop env.b ~from:(B.imm 0) ~below:(B.reg env.passes) ~step:1 (fun p ->
    B.for_loop env.b ~from:(B.imm 0) ~below:(B.reg env.iters) ~step:1 (fun j ->
      let pj = B.mad env.b T.U32 (B.reg p) (B.reg env.iters) (B.reg j) in
      let stride = B.mul env.b T.U32 (B.reg pj) (B.imm (min k.mem_live k.live)) in
      let sn = B.mul env.b T.U32 (B.reg stride) (B.reg env.ntid) in
      let base_idx = B.add env.b T.U32 (B.reg env.gtid) (B.reg sn) in
      unrolled_group env k
        ~mk_value:(fun _ idx -> load_f32 env.b env.region idx)
        accs base_idx));
  let r = combine_accs env accs in
  write_result env r;
  B.finish env.b

let stencil3 ~name k =
  let env = prologue name in
  let accs = fresh_accs env k.naccs in
  let mk_value _ idx =
    (* neighbours idx-1, idx, idx+1 (wrapped into the region) *)
    let wsm1 = B.sub env.b T.U32 (B.reg env.ws) (B.imm 1) in
    let left_raw = B.add env.b T.U32 (B.reg idx) (B.reg wsm1) in
    let left = B.binop env.b I.Rem T.U32 (B.reg left_raw) (B.reg env.ws) in
    let right_raw = B.add env.b T.U32 (B.reg idx) (B.imm 1) in
    let right = B.binop env.b I.Rem T.U32 (B.reg right_raw) (B.reg env.ws) in
    let vl = load_f32 env.b env.region left in
    let vc = load_f32 env.b env.region idx in
    let vr = load_f32 env.b env.region right in
    let t = B.mad env.b T.F32 (B.reg vc) (B.fimm 0.5) (B.fimm 0.0) in
    let t2 = B.mad env.b T.F32 (B.reg vl) (B.fimm 0.25) (B.reg t) in
    B.mad env.b T.F32 (B.reg vr) (B.fimm 0.25) (B.reg t2)
  in
  pass_loop env k ~mk_value accs;
  let r = combine_accs env accs in
  write_result env r;
  B.finish env.b

let shared_tile ~name ~shm_words k =
  let env = prologue name in
  let sdata = B.decl_shared env.b "sdata" T.F32 shm_words in
  let sbase = B.mov env.b T.U32 sdata in
  let shared_idx_addr idx =
    let m = B.binop env.b I.Rem T.U32 (B.reg idx) (B.imm shm_words) in
    let bytes = B.mul env.b T.U32 (B.reg m) (B.imm 4) in
    B.add env.b T.U32 (B.reg sbase) (B.reg bytes)
  in
  (* stage the tile *)
  B.for_loop env.b ~from:(B.imm 0) ~below:(B.reg env.iters) ~step:1 (fun j ->
    let jn = B.mul env.b T.U32 (B.reg j) (B.reg env.ntid) in
    let raw = B.add env.b T.U32 (B.reg env.tid) (B.reg jn) in
    let idx = B.binop env.b I.Rem T.U32 (B.reg raw) (B.reg env.ws) in
    let v = load_f32 env.b env.region idx in
    let sa = shared_idx_addr raw in
    B.st env.b T.Shared T.F32 (B.reg sa) 0 (B.reg v));
  B.bar_sync env.b;
  (* compute from shared with reuse *)
  let accs = fresh_accs env k.naccs in
  let mk_value u idx =
    ignore u;
    let sa = shared_idx_addr idx in
    B.ld env.b T.Shared T.F32 (B.reg sa) 0
  in
  pass_loop env k ~mk_value accs;
  B.bar_sync env.b;
  let r = combine_accs env accs in
  write_result env r;
  B.finish env.b

let reduction ~name ~shm_words k =
  let env = prologue name in
  let sdata = B.decl_shared env.b "sdata" T.F32 shm_words in
  let sbase = B.mov env.b T.U32 sdata in
  let accs = fresh_accs env k.naccs in
  pass_loop env k ~mk_value:(fun _ idx -> load_f32 env.b env.region idx) accs;
  let partial = combine_accs env accs in
  (* sdata[tid] = partial *)
  let my_bytes = B.mul env.b T.U32 (B.reg env.tid) (B.imm 4) in
  let my_addr = B.add env.b T.U32 (B.reg sbase) (B.reg my_bytes) in
  B.st env.b T.Shared T.F32 (B.reg my_addr) 0 (B.reg partial);
  B.bar_sync env.b;
  (* tree reduction: s = ntid/2; while s > 0 { if tid < s: add; bar } *)
  let s = B.binop env.b I.Shr T.U32 (B.reg env.ntid) (B.imm 1) in
  let head = B.fresh_label env.b "Lred" in
  let exit = B.fresh_label env.b "Lred_done" in
  let skip = B.fresh_label env.b "Lred_skip" in
  B.label env.b head;
  let p_done = B.setp env.b I.Eq T.U32 (B.reg s) (B.imm 0) in
  B.bra_if env.b p_done exit;
  let p_act = B.setp env.b I.Lt T.U32 (B.reg env.tid) (B.reg s) in
  B.bra_ifnot env.b p_act skip;
  let other = B.add env.b T.U32 (B.reg env.tid) (B.reg s) in
  let ob = B.mul env.b T.U32 (B.reg other) (B.imm 4) in
  let oa = B.add env.b T.U32 (B.reg sbase) (B.reg ob) in
  let vo = B.ld env.b T.Shared T.F32 (B.reg oa) 0 in
  let vm = B.ld env.b T.Shared T.F32 (B.reg my_addr) 0 in
  let vs = B.add env.b T.F32 (B.reg vm) (B.reg vo) in
  B.st env.b T.Shared T.F32 (B.reg my_addr) 0 (B.reg vs);
  B.label env.b skip;
  B.bar_sync env.b;
  B.acc_binop env.b I.Shr T.U32 s (B.imm 1);
  B.bra env.b head;
  B.label env.b exit;
  (* thread 0 writes the block result; every thread writes its partial *)
  let p0 = B.setp env.b I.Eq T.U32 (B.reg env.tid) (B.imm 0) in
  let skip2 = B.fresh_label env.b "Lw0" in
  B.bra_ifnot env.b p0 skip2;
  let total = B.ld env.b T.Shared T.F32 (B.reg sbase) 0 in
  store_f32 env.b env.out64 env.ctaid total;
  B.label env.b skip2;
  B.finish env.b

let gather ~name k =
  let env = prologue ~extra_params:[ ("aux", T.U64) ] name in
  let aux64 = B.ld_param env.b T.U64 (I.Oparam "aux") in
  let accs = fresh_accs env k.naccs in
  let mk_value _ idx =
    (* data-dependent index: pointer-chase one level through aux; the
       scatter is bounded to a 256-word window around the structured
       index, as sparse formats keep some locality per row *)
    let ib = B.mul env.b T.U32 (B.reg idx) (B.imm 4) in
    let i64 = B.cvt env.b T.U64 T.U32 (B.reg ib) in
    let ia = B.add env.b T.U64 (B.reg aux64) (B.reg i64) in
    let link = B.ld env.b T.Global T.U32 (B.reg ia) 0 in
    let hi = B.binop env.b I.And T.U32 (B.reg idx) (B.imm 0xFFFFFF00) in
    let lo = B.binop env.b I.And T.U32 (B.reg link) (B.imm 255) in
    let mixed = B.binop env.b I.Or T.U32 (B.reg hi) (B.reg lo) in
    let idx2 = B.binop env.b I.Rem T.U32 (B.reg mixed) (B.reg env.ws) in
    load_f32 env.b env.region idx2
  in
  pass_loop env k ~mk_value accs;
  (* divergent extra work for "heavy" threads *)
  let bit = B.binop env.b I.And T.U32 (B.reg env.tid) (B.imm 3) in
  let p = B.setp env.b I.Eq T.U32 (B.reg bit) (B.imm 0) in
  let skip = B.fresh_label env.b "Lg_skip" in
  B.bra_ifnot env.b p skip;
  (match accs with
   | a :: _ ->
     let extra = sfu_step env.b a in
     B.acc_binop env.b I.Add T.F32 a (B.reg extra)
   | [] -> ());
  B.label env.b skip;
  let r = combine_accs env accs in
  write_result env r;
  B.finish env.b

let all_shape_names =
  [ "tiled_reuse"; "streaming"; "stencil3"; "shared_tile"; "reduction"; "gather" ]
