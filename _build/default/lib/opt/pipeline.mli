(** The standard cleanup pipeline run after kernel construction or spill
    insertion: constant folding, copy propagation, then dead-code
    elimination, iterated until nothing changes. *)

type report =
  { folded : int
  ; propagated : int
  ; eliminated : int
  ; iterations : int
  }

val run : Ptx.Kernel.t -> Ptx.Kernel.t * report
val pp_report : Format.formatter -> report -> unit
