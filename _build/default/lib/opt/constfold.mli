(** Constant folding: arithmetic whose operands are all immediates is
    evaluated at compile time (using the simulator's own {!Gpusim.Value}
    semantics, so folding is exact) and replaced by a [mov]. Also folds
    moves of immediates forward within a block so chains of constant
    arithmetic collapse. *)

val run : Ptx.Kernel.t -> Ptx.Kernel.t * int
(** Returns the folded kernel and the number of instructions folded. *)
