let run (k : Ptx.Kernel.t) =
  let flow = Cfg.Flow.of_kernel k in
  let changed = ref 0 in
  (* per-block available-copy map, keyed by destination register *)
  let rewritten = Hashtbl.create 64 in
  Array.iter
    (fun (b : Cfg.Flow.block) ->
       let copies : (Ptx.Reg.t * Ptx.Reg.t) list ref = ref [] in
       let kill r =
         copies :=
           List.filter
             (fun (d, s) -> not (Ptx.Reg.equal d r || Ptx.Reg.equal s r))
             !copies
       in
       for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
         let ins = flow.Cfg.Flow.instrs.(i) in
         let subst r =
           match List.find_opt (fun (d, _) -> Ptx.Reg.equal d r) !copies with
           | Some (_, s) ->
             incr changed;
             s
           | None -> r
         in
         (* rewrite uses only: defs keep their own register *)
         let defs = Ptx.Instr.defs ins in
         let ins' =
           Ptx.Instr.map_regs
             (fun r -> if List.exists (Ptx.Reg.equal r) defs then r else subst r)
             ins
         in
         Hashtbl.replace rewritten i ins';
         List.iter kill (Ptx.Instr.defs ins');
         (match ins' with
          | Ptx.Instr.Mov (_, d, Ptx.Instr.Oreg s)
            when Ptx.Types.equal_scalar (Ptx.Reg.ty d) (Ptx.Reg.ty s) ->
            copies := (d, s) :: !copies
          | _ -> ())
       done)
    flow.Cfg.Flow.blocks;
  (* rebuild the body in statement order *)
  let idx = ref (-1) in
  let body =
    Array.map
      (fun stmt ->
         match stmt with
         | Ptx.Kernel.L _ -> stmt
         | Ptx.Kernel.I _ ->
           incr idx;
           Ptx.Kernel.I (Hashtbl.find rewritten !idx))
      k.Ptx.Kernel.body
  in
  ({ k with Ptx.Kernel.body = body }, !changed)
