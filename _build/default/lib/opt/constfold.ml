let imm_of_value ty v =
  if Ptx.Types.is_float ty then Ptx.Instr.Ofimm (Gpusim.Value.to_float v)
  else Ptx.Instr.Oimm (Gpusim.Value.to_int64 v)

let value_of_operand (op : Ptx.Instr.operand) =
  match op with
  | Ptx.Instr.Oimm i -> Some (Gpusim.Value.I i)
  | Ptx.Instr.Ofimm f -> Some (Gpusim.Value.F f)
  | Ptx.Instr.Oreg _ | Ptx.Instr.Ospecial _ | Ptx.Instr.Osym _
  | Ptx.Instr.Oparam _ -> None

let run (k : Ptx.Kernel.t) =
  let flow = Cfg.Flow.of_kernel k in
  let folded = ref 0 in
  let rewritten = Hashtbl.create 64 in
  Array.iter
    (fun (b : Cfg.Flow.block) ->
       (* constants known in this block, keyed by register *)
       let env : (Ptx.Reg.t * Gpusim.Value.t) list ref = ref [] in
       let kill r =
         env := List.filter (fun (d, _) -> not (Ptx.Reg.equal d r)) !env
       in
       let lookup op =
         match op with
         | Ptx.Instr.Oreg r ->
           (match List.find_opt (fun (d, _) -> Ptx.Reg.equal d r) !env with
            | Some (_, v) -> Some v
            | None -> None)
         | _ -> value_of_operand op
       in
       for i = b.Cfg.Flow.first to b.Cfg.Flow.last do
         let ins = flow.Cfg.Flow.instrs.(i) in
         let fold_to d ty v =
           incr folded;
           List.iter kill (Ptx.Instr.defs ins);
           env := (d, v) :: !env;
           Ptx.Instr.Mov (ty, d, imm_of_value ty v)
         in
         let ins' =
           match ins with
           | Ptx.Instr.Binop (op, ty, d, a, b') ->
             (match (lookup a, lookup b') with
              | Some va, Some vb -> fold_to d ty (Gpusim.Value.binop op ty va vb)
              | _ -> ins)
           | Ptx.Instr.Mad (ty, d, a, b', c) ->
             (match (lookup a, lookup b', lookup c) with
              | Some va, Some vb, Some vc -> fold_to d ty (Gpusim.Value.mad ty va vb vc)
              | _ -> ins)
           | Ptx.Instr.Unop (op, ty, d, a) ->
             (match lookup a with
              | Some va -> fold_to d ty (Gpusim.Value.unop op ty va)
              | None -> ins)
           | Ptx.Instr.Cvt (dt, st, d, a) ->
             (match lookup a with
              | Some va -> fold_to d dt (Gpusim.Value.convert ~dst:dt ~src:st va)
              | None -> ins)
           | _ -> ins
         in
         (* track constant moves; any other def kills its register *)
         (match ins' with
          | Ptx.Instr.Mov (ty, d, src) ->
            kill d;
            (match value_of_operand src with
             | Some v -> env := (d, Gpusim.Value.truncate ty v) :: !env
             | None -> ())
          | _ ->
            if not (List.exists (fun (d, _) -> List.exists (Ptx.Reg.equal d) (Ptx.Instr.defs ins')) !env)
            then List.iter kill (Ptx.Instr.defs ins')
            else List.iter kill (Ptx.Instr.defs ins'));
         Hashtbl.replace rewritten i ins'
       done)
    flow.Cfg.Flow.blocks;
  let idx = ref (-1) in
  let body =
    Array.map
      (fun stmt ->
         match stmt with
         | Ptx.Kernel.L _ -> stmt
         | Ptx.Kernel.I _ ->
           incr idx;
           Ptx.Kernel.I (Hashtbl.find rewritten !idx))
      k.Ptx.Kernel.body
  in
  ({ k with Ptx.Kernel.body = body }, !folded)
