type report =
  { folded : int
  ; propagated : int
  ; eliminated : int
  ; iterations : int
  }

let run k =
  let rec loop k acc iters =
    let k, f = Constfold.run k in
    let k, p = Copyprop.run k in
    let k, e = Dce.run k in
    let acc =
      { folded = acc.folded + f
      ; propagated = acc.propagated + p
      ; eliminated = acc.eliminated + e
      ; iterations = iters
      }
    in
    if f + p + e = 0 || iters >= 8 then (k, acc) else loop k acc (iters + 1)
  in
  loop k { folded = 0; propagated = 0; eliminated = 0; iterations = 1 } 1

let pp_report fmt r =
  Format.fprintf fmt "%d folded, %d propagated, %d eliminated (%d iterations)"
    r.folded r.propagated r.eliminated r.iterations
