(** Local copy propagation: within a basic block, a use of [d] after
    [mov d, s] is rewritten to use [s] directly, as long as neither [d]
    nor [s] has been redefined in between. Run {!Dce} afterwards to
    delete the copies that became dead. *)

val run : Ptx.Kernel.t -> Ptx.Kernel.t * int
(** Returns the rewritten kernel and the number of uses propagated. *)
