(** Dead-code elimination: removes instructions whose only effect is
    writing a register that is never live afterwards. Loads are removed
    too (the simulated memory has no side-effecting reads); stores,
    barriers and control flow are always kept. Iterates to a fixpoint:
    removing one dead definition can kill its operands' last uses. *)

val run : Ptx.Kernel.t -> Ptx.Kernel.t * int
(** Returns the cleaned kernel and the number of instructions removed. *)
