lib/opt/copyprop.ml: Array Cfg Hashtbl List Ptx
