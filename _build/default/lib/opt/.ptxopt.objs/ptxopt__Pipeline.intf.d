lib/opt/pipeline.mli: Format Ptx
