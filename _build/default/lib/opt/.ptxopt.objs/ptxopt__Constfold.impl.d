lib/opt/constfold.ml: Array Cfg Gpusim Hashtbl List Ptx
