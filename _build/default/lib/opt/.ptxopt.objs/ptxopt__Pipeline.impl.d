lib/opt/pipeline.ml: Constfold Copyprop Dce Format
