lib/opt/dce.mli: Ptx
