lib/opt/dce.ml: Array Cfg List Ptx
