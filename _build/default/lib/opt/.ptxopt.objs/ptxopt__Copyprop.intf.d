lib/opt/copyprop.mli: Ptx
