lib/opt/constfold.mli: Ptx
