let is_removable (i : Ptx.Instr.t) =
  match i with
  | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _ | Ptx.Instr.Unop _
  | Ptx.Instr.Cvt _ | Ptx.Instr.Setp _ | Ptx.Instr.Selp _ | Ptx.Instr.Ld _ ->
    true
  | Ptx.Instr.St _ | Ptx.Instr.Bra _ | Ptx.Instr.Bra_pred _
  | Ptx.Instr.Bar_sync | Ptx.Instr.Ret -> false

let one_pass (k : Ptx.Kernel.t) =
  let flow = Cfg.Flow.of_kernel k in
  let live = Cfg.Liveness.compute flow in
  (* map body statement positions to flat instruction indices *)
  let removed = ref 0 in
  let idx = ref (-1) in
  let body =
    Array.to_list k.Ptx.Kernel.body
    |> List.filter (fun stmt ->
      match stmt with
      | Ptx.Kernel.L _ -> true
      | Ptx.Kernel.I i ->
        incr idx;
        let dead =
          is_removable i
          &&
          match Ptx.Instr.defs i with
          | [ d ] -> not (Ptx.Reg.Set.mem d live.Cfg.Liveness.live_out.(!idx))
          | [] | _ :: _ :: _ -> false
        in
        if dead then incr removed;
        not dead)
  in
  ({ k with Ptx.Kernel.body = Array.of_list body }, !removed)

let run k =
  let rec fix k total =
    let k', n = one_pass k in
    if n = 0 then (k', total) else fix k' (total + n)
  in
  fix k 0
