(** Control-flow graph over a flattened kernel body.

    Statements are flattened to an instruction array (labels resolved to
    indices); basic blocks are contiguous index ranges. Block 0 is the
    entry. A virtual exit is materialised for post-dominance queries. *)

type block =
  { bid : int
  ; first : int  (** index of the first instruction, inclusive *)
  ; last : int  (** index of the last instruction, inclusive *)
  ; succs : int list
  ; preds : int list
  }

type t =
  { kernel : Ptx.Kernel.t
  ; instrs : Ptx.Instr.t array  (** flattened body, labels removed *)
  ; blocks : block array
  ; block_of_instr : int array  (** instruction index -> block id *)
  ; label_index : (string * int) list  (** label -> instruction index *)
  }

val of_kernel : Ptx.Kernel.t -> t

val entry : t -> block
val num_blocks : t -> int
val num_instrs : t -> int
val block_instrs : t -> block -> Ptx.Instr.t list
val exit_blocks : t -> int list
(** Blocks ending in [Ret] (or with no successor). *)

val iter_instrs : t -> (int -> Ptx.Instr.t -> unit) -> unit
val target_index : t -> string -> int
(** Instruction index a label resolves to.
    @raise Not_found for unknown labels. *)

val pp : Format.formatter -> t -> unit
