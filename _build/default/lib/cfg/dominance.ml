(* The iterative algorithm of Cooper, Harvey & Kennedy, "A Simple, Fast
   Dominance Algorithm". We run it on an abstract graph so the same code
   serves dominators (forward CFG) and post-dominators (reversed CFG with
   a virtual exit). *)

type t =
  { idoms : int array  (** index by node; root maps to itself *)
  ; root : int
  ; virtual_node : int option  (** hidden from queries *)
  }

let compute ~num_nodes ~root ~preds ~succs =
  (* reverse postorder from root *)
  let visited = Array.make num_nodes false in
  let order = ref [] in
  let rec dfs n =
    if not visited.(n) then begin
      visited.(n) <- true;
      List.iter dfs (succs n);
      order := n :: !order
    end
  in
  dfs root;
  let rpo = Array.of_list !order in
  let rpo_num = Array.make num_nodes (-1) in
  Array.iteri (fun i n -> rpo_num.(n) <- i) rpo;
  let idoms = Array.make num_nodes (-1) in
  idoms.(root) <- root;
  let rec intersect a b =
    if a = b then a
    else if rpo_num.(a) > rpo_num.(b) then intersect idoms.(a) b
    else intersect a idoms.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun n ->
         if n <> root then begin
           let processed =
             List.filter (fun p -> idoms.(p) <> -1 && rpo_num.(p) <> -1) (preds n)
           in
           match processed with
           | [] -> ()
           | first :: rest ->
             let new_idom = List.fold_left intersect first rest in
             if idoms.(n) <> new_idom then begin
               idoms.(n) <- new_idom;
               changed := true
             end
         end)
      rpo
  done;
  idoms

let dominators (flow : Flow.t) =
  let nb = Flow.num_blocks flow in
  let idoms =
    compute ~num_nodes:nb ~root:0
      ~preds:(fun n -> flow.blocks.(n).preds)
      ~succs:(fun n -> flow.blocks.(n).succs)
  in
  { idoms; root = 0; virtual_node = None }

let post_dominators (flow : Flow.t) =
  let nb = Flow.num_blocks flow in
  let vexit = nb in
  let exits = Flow.exit_blocks flow in
  (* reversed graph: succ/pred swapped; virtual exit precedes all exits *)
  let succs n =
    if n = vexit then exits
    else flow.blocks.(n).preds
  in
  let preds n =
    if n = vexit then []
    else
      flow.blocks.(n).succs @ (if List.mem n exits then [ vexit ] else [])
  in
  let idoms = compute ~num_nodes:(nb + 1) ~root:vexit ~preds ~succs in
  { idoms; root = vexit; virtual_node = Some vexit }

let idom t n =
  if n = t.root then None
  else
    let d = t.idoms.(n) in
    if d = -1 then None
    else
      match t.virtual_node with
      | Some v when d = v -> None
      | Some _ | None -> Some d

let rec dominates t a b =
  if a = b then true
  else if b = t.root then false
  else
    let d = t.idoms.(b) in
    if d = -1 || d = b then false else dominates t a d

let reconvergence_point (flow : Flow.t) t block =
  match idom t block with
  | None -> None
  | Some pd -> Some flow.blocks.(pd).first
