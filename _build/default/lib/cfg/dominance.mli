(** Dominator and post-dominator trees (Cooper-Harvey-Kennedy iterative
    algorithm). Post-dominance drives the SIMT reconvergence points used
    by the simulator's divergence stack. *)

type t

val dominators : Flow.t -> t
val post_dominators : Flow.t -> t
(** Computed on the reversed CFG with a virtual exit joining all [Ret]
    blocks; the virtual node is hidden from the query API. *)

val idom : t -> int -> int option
(** Immediate (post-)dominator of a block; [None] for the root or for
    blocks whose only (post-)dominator is the virtual exit. *)

val dominates : t -> int -> int -> bool
(** [dominates t a b] — does [a] (post-)dominate [b]? Reflexive. *)

val reconvergence_point : Flow.t -> t -> int -> int option
(** [reconvergence_point flow pdom block]: instruction index of the first
    instruction of the immediate post-dominator block — where a warp
    diverging at the end of [block] reconverges. [None] when control
    reconverges only at kernel exit. *)
