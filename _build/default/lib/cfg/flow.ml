type block =
  { bid : int
  ; first : int
  ; last : int
  ; succs : int list
  ; preds : int list
  }

type t =
  { kernel : Ptx.Kernel.t
  ; instrs : Ptx.Instr.t array
  ; blocks : block array
  ; block_of_instr : int array
  ; label_index : (string * int) list
  }

let flatten (k : Ptx.Kernel.t) =
  let instrs = ref [] in
  let labels = ref [] in
  let count = ref 0 in
  Array.iter
    (fun s ->
       match s with
       | Ptx.Kernel.L l -> labels := (l, !count) :: !labels
       | Ptx.Kernel.I i ->
         instrs := i :: !instrs;
         incr count)
    k.Ptx.Kernel.body;
  (Array.of_list (List.rev !instrs), List.rev !labels)

let of_kernel (k : Ptx.Kernel.t) =
  let instrs, label_index = flatten k in
  let n = Array.length instrs in
  let target l =
    match List.assoc_opt l label_index with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Cfg.Flow: unknown label %s" l)
  in
  (* leaders *)
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun i ins ->
       if Ptx.Instr.is_control ins then begin
         if i + 1 < n then leader.(i + 1) <- true;
         match Ptx.Instr.branch_target ins with
         | Some l ->
           let t = target l in
           if t < n then leader.(t) <- true
         | None -> ()
       end)
    instrs;
  (* block ranges *)
  let ranges = ref [] in
  let start = ref 0 in
  for i = 1 to n - 1 do
    if leader.(i) then begin
      ranges := (!start, i - 1) :: !ranges;
      start := i
    end
  done;
  if n > 0 then ranges := (!start, n - 1) :: !ranges;
  let ranges = Array.of_list (List.rev !ranges) in
  let nb = Array.length ranges in
  let block_of_instr = Array.make (max n 1) 0 in
  Array.iteri
    (fun bid (first, last) ->
       for i = first to last do
         block_of_instr.(i) <- bid
       done)
    ranges;
  let succs_of bid =
    let _, last = ranges.(bid) in
    let ins = instrs.(last) in
    let fall = if last + 1 < n then [ block_of_instr.(last + 1) ] else [] in
    match ins with
    | Ptx.Instr.Ret -> []
    | Ptx.Instr.Bra l ->
      let t = target l in
      if t < n then [ block_of_instr.(t) ] else []
    | Ptx.Instr.Bra_pred (_, _, l) ->
      let t = target l in
      let tb = if t < n then [ block_of_instr.(t) ] else [] in
      (* dedupe when the branch targets the fall-through block *)
      tb @ List.filter (fun b -> not (List.mem b tb)) fall
    | Ptx.Instr.Mov _ | Ptx.Instr.Binop _ | Ptx.Instr.Mad _ | Ptx.Instr.Unop _
    | Ptx.Instr.Cvt _ | Ptx.Instr.Setp _ | Ptx.Instr.Selp _ | Ptx.Instr.Ld _
    | Ptx.Instr.St _ | Ptx.Instr.Bar_sync -> fall
  in
  let succs = Array.init nb succs_of in
  let preds = Array.make nb [] in
  Array.iteri
    (fun bid ss -> List.iter (fun s -> preds.(s) <- bid :: preds.(s)) ss)
    succs;
  let blocks =
    Array.init nb (fun bid ->
      let first, last = ranges.(bid) in
      { bid; first; last; succs = succs.(bid); preds = List.rev preds.(bid) })
  in
  { kernel = k; instrs; blocks; block_of_instr; label_index }

let entry t = t.blocks.(0)
let num_blocks t = Array.length t.blocks
let num_instrs t = Array.length t.instrs

let block_instrs t b =
  let rec loop i acc = if i < b.first then acc else loop (i - 1) (t.instrs.(i) :: acc) in
  loop b.last []

let exit_blocks t =
  Array.to_list t.blocks
  |> List.filter_map (fun b -> if b.succs = [] then Some b.bid else None)

let iter_instrs t f = Array.iteri f t.instrs

let target_index t l =
  match List.assoc_opt l t.label_index with
  | Some i -> i
  | None -> raise Not_found

let pp fmt t =
  Array.iter
    (fun b ->
       Format.fprintf fmt "B%d [%d..%d] -> %s@." b.bid b.first b.last
         (String.concat "," (List.map string_of_int b.succs));
       List.iter
         (fun i -> Format.fprintf fmt "  %a@." Ptx.Instr.pp i)
         (block_instrs t b))
    t.blocks
