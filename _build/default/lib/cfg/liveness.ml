module Set = Ptx.Reg.Set

type t =
  { live_in : Set.t array
  ; live_out : Set.t array
  }

(* Block-level use/def: [use] is registers read before any write in the
   block; [def] is registers written. *)
let block_use_def (flow : Flow.t) (b : Flow.block) =
  let use = ref Set.empty and def = ref Set.empty in
  for i = b.first to b.last do
    let ins = flow.instrs.(i) in
    List.iter
      (fun r -> if not (Set.mem r !def) then use := Set.add r !use)
      (Ptx.Instr.uses ins);
    List.iter (fun r -> def := Set.add r !def) (Ptx.Instr.defs ins)
  done;
  (!use, !def)

let compute (flow : Flow.t) =
  let nb = Flow.num_blocks flow in
  let n = Flow.num_instrs flow in
  let use = Array.make nb Set.empty and def = Array.make nb Set.empty in
  Array.iteri
    (fun i b ->
       let u, d = block_use_def flow b in
       use.(i) <- u;
       def.(i) <- d)
    flow.blocks;
  let bin = Array.make nb Set.empty and bout = Array.make nb Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* reverse order converges quickly for backward problems *)
    for bi = nb - 1 downto 0 do
      let b = flow.blocks.(bi) in
      let out =
        List.fold_left (fun acc s -> Set.union acc bin.(s)) Set.empty b.succs
      in
      let inn = Set.union use.(bi) (Set.diff out def.(bi)) in
      if not (Set.equal out bout.(bi) && Set.equal inn bin.(bi)) then begin
        bout.(bi) <- out;
        bin.(bi) <- inn;
        changed := true
      end
    done
  done;
  let live_in = Array.make (max n 1) Set.empty in
  let live_out = Array.make (max n 1) Set.empty in
  Array.iter
    (fun (b : Flow.block) ->
       let live = ref bout.(b.bid) in
       for i = b.last downto b.first do
         live_out.(i) <- !live;
         let ins = flow.instrs.(i) in
         let after_def =
           List.fold_left (fun acc r -> Set.remove r acc) !live
             (Ptx.Instr.defs ins)
         in
         live :=
           List.fold_left (fun acc r -> Set.add r acc) after_def
             (Ptx.Instr.uses ins);
         live_in.(i) <- !live
       done)
    flow.blocks;
  { live_in; live_out }

let pressure_at set =
  Set.fold
    (fun r acc ->
       acc + Ptx.Types.class_units (Ptx.Types.reg_class (Ptx.Reg.ty r)))
    set 0

let max_pressure t =
  let m = ref 0 in
  Array.iter (fun s -> m := max !m (pressure_at s)) t.live_in;
  Array.iter (fun s -> m := max !m (pressure_at s)) t.live_out;
  !m

let live_ranges (flow : Flow.t) t =
  let tbl = Ptx.Reg.Tbl.create 64 in
  let touch r i =
    match Ptx.Reg.Tbl.find_opt tbl r with
    | None -> Ptx.Reg.Tbl.replace tbl r (i, i)
    | Some (lo, hi) -> Ptx.Reg.Tbl.replace tbl r (min lo i, max hi i)
  in
  Flow.iter_instrs flow (fun i ins ->
    List.iter (fun r -> touch r i) (Ptx.Instr.defs ins);
    List.iter (fun r -> touch r i) (Ptx.Instr.uses ins));
  Array.iteri (fun i s -> Set.iter (fun r -> touch r i) s) t.live_in;
  Array.iteri (fun i s -> Set.iter (fun r -> touch r i) s) t.live_out;
  Ptx.Reg.Tbl.fold (fun r range acc -> (r, range) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Ptx.Reg.compare a b)
