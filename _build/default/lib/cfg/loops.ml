let back_edges (flow : Flow.t) =
  let dom = Dominance.dominators flow in
  Array.to_list flow.blocks
  |> List.concat_map (fun (b : Flow.block) ->
    List.filter_map
      (fun s -> if Dominance.dominates dom s b.bid then Some (b.bid, s) else None)
      b.succs)

(* Natural loop of a back edge (u, v): v plus all nodes reaching u without
   passing through v. *)
let natural_loop (flow : Flow.t) (u, v) =
  let in_loop = Array.make (Flow.num_blocks flow) false in
  in_loop.(v) <- true;
  let rec visit n =
    if not in_loop.(n) then begin
      in_loop.(n) <- true;
      List.iter visit flow.blocks.(n).preds
    end
  in
  visit u;
  in_loop

let depths (flow : Flow.t) =
  let nb = Flow.num_blocks flow in
  let d = Array.make nb 0 in
  List.iter
    (fun e ->
       let in_loop = natural_loop flow e in
       Array.iteri (fun i inl -> if inl then d.(i) <- d.(i) + 1) in_loop)
    (back_edges flow);
  d

let instr_depths (flow : Flow.t) =
  let bd = depths flow in
  Array.init (Flow.num_instrs flow) (fun i -> bd.(flow.block_of_instr.(i)))
