lib/cfg/defuse.ml: Array Flow List Loops Option Ptx
