lib/cfg/dominance.mli: Flow
