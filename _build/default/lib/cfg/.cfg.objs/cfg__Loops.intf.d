lib/cfg/loops.mli: Flow
