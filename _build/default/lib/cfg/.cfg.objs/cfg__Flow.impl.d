lib/cfg/flow.ml: Array Format List Printf Ptx String
