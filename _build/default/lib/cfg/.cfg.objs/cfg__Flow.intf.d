lib/cfg/flow.mli: Format Ptx
