lib/cfg/liveness.ml: Array Flow List Ptx
