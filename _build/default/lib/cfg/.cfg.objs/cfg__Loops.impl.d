lib/cfg/loops.ml: Array Dominance Flow List
