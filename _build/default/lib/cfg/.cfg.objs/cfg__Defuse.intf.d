lib/cfg/defuse.mli: Flow Ptx
