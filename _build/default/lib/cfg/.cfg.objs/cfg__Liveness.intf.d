lib/cfg/liveness.mli: Flow Ptx
