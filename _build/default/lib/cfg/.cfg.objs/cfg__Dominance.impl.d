lib/cfg/dominance.ml: Array Flow List
