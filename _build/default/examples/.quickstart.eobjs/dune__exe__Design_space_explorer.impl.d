examples/design_space_explorer.ml: Array Crat Format Gpusim List Printf Sys Workloads
