examples/design_space_explorer.mli:
