examples/multi_sm.mli:
