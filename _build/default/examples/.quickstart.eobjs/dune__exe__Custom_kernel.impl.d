examples/custom_kernel.ml: Array Format Gpusim List Ptx Regalloc
