examples/multi_sm.ml: Array Format Gpusim List Regalloc Sys Workloads
