examples/spill_tuning.ml: Array Cfg Crat Format Gpusim List Ptx Regalloc Sys Workloads
