examples/quickstart.ml: Array Crat Format Gpusim Ptx String Sys Workloads
