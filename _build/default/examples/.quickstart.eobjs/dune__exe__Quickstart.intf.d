examples/quickstart.mli:
