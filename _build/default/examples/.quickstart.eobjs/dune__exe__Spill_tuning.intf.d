examples/spill_tuning.mli:
