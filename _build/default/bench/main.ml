(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (default mode), or times the library's hot paths and
   scaled-down experiments with Bechamel (--bechamel).

   Usage:
     dune exec bench/main.exe                 # all experiments, full size
     dune exec bench/main.exe -- --fast       # reduced app sets
     dune exec bench/main.exe -- --only fig13,tab1
     dune exec bench/main.exe -- --bechamel   # Bechamel timings *)

let fermi = Gpusim.Config.fermi
let kepler = Gpusim.Config.kepler

type ctx =
  { sensitive : Workloads.App.t list
  ; insensitive : Workloads.App.t list
  ; input_apps : Workloads.App.t list  (** fig18 *)
  }

let full_ctx =
  { sensitive = Workloads.Suite.sensitive
  ; insensitive = Workloads.Suite.insensitive
  ; input_apps = [ Workloads.Suite.find "CFD"; Workloads.Suite.find "BLK" ]
  }

let fast_ctx =
  { sensitive =
      List.map Workloads.Suite.find [ "CFD"; "KMN"; "FDTD"; "STM"; "BLK" ]
  ; insensitive = List.map Workloads.Suite.find [ "PATH"; "GAU"; "BFS" ]
  ; input_apps = [ Workloads.Suite.find "BLK" ]
  }

let fmt = Format.std_formatter

(* fig13 and its companions share one set of comparisons *)
let comparisons = ref None

let get_comparisons ctx =
  match !comparisons with
  | Some c -> c
  | None ->
    let _, comps = Crat.Experiments.fig13 fermi ctx.sensitive in
    comparisons := Some comps;
    comps

let experiments : (string * string * (ctx -> unit)) list =
  [ ( "tab2"
    , "Table 2: simulated configuration"
    , fun _ ->
        Format.fprintf fmt "Table 2: simulated GPGPU-Sim-like configuration@.%a@."
          Gpusim.Config.pp fermi )
  ; ( "tab3"
    , "Table 3: applications"
    , fun _ -> Format.fprintf fmt "Table 3: applications@.%a@." Workloads.Suite.pp_table () )
  ; ( "tab1"
    , "Table 1: resource-usage parameters"
    , fun ctx ->
        Crat.Experiments.pp_tab1 fmt (Crat.Experiments.tab1 fermi ctx.sensitive) )
  ; ( "fig1"
    , "Fig 1: throttling benefit and register waste"
    , fun ctx -> Crat.Experiments.pp_fig1 fmt (Crat.Experiments.fig1 fermi ctx.sensitive) )
  ; ( "fig2"
    , "Fig 2: (reg, TLP) design space for CFD"
    , fun _ ->
        Crat.Experiments.pp_fig2 fmt
          (Crat.Experiments.fig2 fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig3"
    , "Fig 3: selected design points for CFD"
    , fun _ ->
        Crat.Experiments.pp_fig3 fmt
          (Crat.Experiments.fig3 fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig5"
    , "Fig 5: throttling impact on the L1"
    , fun ctx -> Crat.Experiments.pp_fig5 fmt (Crat.Experiments.fig5 fermi ctx.sensitive) )
  ; ( "fig6"
    , "Fig 6: registers vs TLP and instruction count (CFD)"
    , fun _ ->
        Crat.Experiments.pp_fig6 fmt
          (Crat.Experiments.fig6 fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig7"
    , "Fig 7: register vs shared-memory utilization"
    , fun ctx ->
        Crat.Experiments.pp_fig7 fmt
          (Crat.Experiments.fig7 fermi (ctx.sensitive @ ctx.insensitive)) )
  ; ( "fig8"
    , "Fig 8: FDTD register/shared exploration"
    , fun _ ->
        Crat.Experiments.pp_fig8 fmt
          (Crat.Experiments.fig8 fermi (Workloads.Suite.find "FDTD")) )
  ; ( "fig11"
    , "Fig 11: design-space staircase and pruning (CFD)"
    , fun _ ->
        Crat.Experiments.pp_fig11 fmt
          (Crat.Experiments.fig11 fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig12"
    , "Fig 12: spill-bytes validation (CFD)"
    , fun _ ->
        Crat.Experiments.pp_fig12 fmt
          (Crat.Experiments.fig12 fermi (Workloads.Suite.find "CFD")) )
  ; ( "fig13"
    , "Fig 13: headline performance comparison"
    , fun ctx ->
        let rows, comps = Crat.Experiments.fig13 fermi ctx.sensitive in
        comparisons := Some comps;
        Crat.Experiments.pp_fig13 fmt rows )
  ; ( "fig14"
    , "Fig 14: selected TLP"
    , fun ctx -> Crat.Experiments.pp_fig14 fmt (Crat.Experiments.fig14 (get_comparisons ctx)) )
  ; ( "fig15"
    , "Fig 15: register utilization"
    , fun ctx ->
        Crat.Experiments.pp_fig15 fmt
          (Crat.Experiments.fig15 fermi (get_comparisons ctx)) )
  ; ( "fig16"
    , "Fig 16: local-memory access reduction"
    , fun ctx -> Crat.Experiments.pp_fig16 fmt (Crat.Experiments.fig16 (get_comparisons ctx)) )
  ; ( "fig17"
    , "Fig 17: Kepler-like scalability"
    , fun ctx ->
        let rows, _ = Crat.Experiments.fig13 kepler ctx.sensitive in
        Format.fprintf fmt "Fig 17: Kepler-like architecture@.";
        Crat.Experiments.pp_fig13 fmt rows )
  ; ( "fig18"
    , "Fig 18: input sensitivity"
    , fun ctx -> Crat.Experiments.pp_fig18 fmt (Crat.Experiments.fig18 fermi ctx.input_apps) )
  ; ( "fig19"
    , "Fig 19: resource-insensitive applications"
    , fun ctx ->
        let rows, _ = Crat.Experiments.fig13 fermi ctx.insensitive in
        Format.fprintf fmt "Fig 19: resource-insensitive applications@.";
        Crat.Experiments.pp_fig13 fmt rows )
  ; ( "fig20"
    , "Fig 20: CRAT-profile vs CRAT-static"
    , fun ctx -> Crat.Experiments.pp_fig20 fmt (Crat.Experiments.fig20 fermi ctx.sensitive) )
  ; ( "energy"
    , "Energy: CRAT vs OptTLP"
    , fun ctx -> Crat.Experiments.pp_energy fmt (Crat.Experiments.energy (get_comparisons ctx)) )
  ; ( "overhead"
    , "Overhead: profiling vs static analysis"
    , fun ctx ->
        Crat.Experiments.pp_overhead fmt (Crat.Experiments.overhead fermi ctx.sensitive) )
  ; ( "dyn-tlp"
    , "Baseline: online DynCTA-style throttling"
    , fun _ ->
        Crat.Experiments.pp_dynamic_tlp fmt
          (Crat.Experiments.dynamic_tlp fermi
             (List.map Workloads.Suite.find [ "KMN"; "STM"; "SPMV"; "CFD" ])) )
  ; ( "ext-bypass"
    , "Extension: CRAT + static L1 bypassing (CFD)"
    , fun _ ->
        Crat.Experiments.pp_extension_bypass fmt
          (Crat.Experiments.extension_bypass fermi (Workloads.Suite.find "CFD")) )
  ; ( "abl-sched"
    , "Ablation: GTO vs LRR warp scheduling"
    , fun _ ->
        Crat.Experiments.pp_ablation_scheduler fmt
          (Crat.Experiments.ablation_scheduler fermi
             (List.map Workloads.Suite.find [ "CFD"; "KMN"; "STM" ])) )
  ; ( "abl-chunk"
    , "Ablation: Algorithm 1 sub-stack granularity"
    , fun _ ->
        Crat.Experiments.pp_ablation_chunk fmt
          (Crat.Experiments.ablation_chunk fermi (Workloads.Suite.find "STE") ~reg:40) )
  ; ( "gpu-scale"
    , "Multi-SM scaling (KMN, shared memory system)"
    , fun _ ->
        Crat.Experiments.pp_gpu_scaling fmt
          (Crat.Experiments.gpu_scaling fermi (Workloads.Suite.find "KMN") ~tlp:2) )
  ; ( "abl-alloc"
    , "Ablation: allocator extensions (coalescing, remat)"
    , fun _ ->
        Crat.Experiments.pp_ablation_allocator fmt
          (Crat.Experiments.ablation_allocator fermi (Workloads.Suite.find "CFD") ~reg:48) )
  ; ( "abl-type"
    , "Ablation: type-affine colouring (register waste)"
    , fun ctx ->
        Crat.Experiments.pp_ablation_type_strict fmt
          (Crat.Experiments.ablation_type_strict (ctx.sensitive @ ctx.insensitive)) )
  ]

(* ---------- Bechamel mode ---------- *)

let bechamel_mode () =
  let open Bechamel in
  let open Toolkit in
  let mini = List.map Workloads.Suite.find [ "PATH"; "GAU" ] in
  let cfd = Workloads.Suite.find "CFD" in
  let cfd_kernel = Workloads.App.kernel cfd in
  let cfd_flow = Cfg.Flow.of_kernel cfd_kernel in
  let cfd_live = Cfg.Liveness.compute cfd_flow in
  let small = Workloads.Suite.find "PATH" in
  let small_input = Workloads.App.default_input small in
  let test name f = Test.make ~name (Staged.stage f) in
  (* one Test.make per table/figure (scaled-down app set) plus the
     library's hot paths *)
  let tests =
    [ test "tab1" (fun () ->
        Crat.Eval.clear_cache ();
        ignore (Crat.Experiments.tab1 fermi mini))
    ; test "fig1" (fun () ->
        Crat.Eval.clear_cache ();
        ignore (Crat.Experiments.fig1 fermi mini))
    ; test "fig5" (fun () ->
        Crat.Eval.clear_cache ();
        ignore (Crat.Experiments.fig5 fermi mini))
    ; test "fig6" (fun () -> ignore (Crat.Experiments.fig6 fermi small))
    ; test "fig12" (fun () -> ignore (Crat.Experiments.fig12 fermi small))
    ; test "fig13" (fun () ->
        Crat.Eval.clear_cache ();
        ignore (Crat.Experiments.fig13 fermi mini))
    ; test "liveness" (fun () -> ignore (Cfg.Liveness.compute cfd_flow))
    ; test "interference" (fun () ->
        ignore (Regalloc.Interference.build cfd_flow cfd_live))
    ; test "allocate-cfd-r32" (fun () ->
        ignore
          (Regalloc.Allocator.allocate ~block_size:128 ~reg_limit:32 cfd_kernel))
    ; test "knapsack-64x12k" (fun () ->
        let values = Array.init 64 (fun i -> float_of_int ((i * 37) mod 97)) in
        let weights = Array.init 64 (fun i -> 128 + (i * 93 mod 1024)) in
        ignore (Regalloc.Shared_spill.knapsack ~values ~weights ~capacity:12288))
    ; test "ptx-roundtrip" (fun () ->
        ignore (Ptx.Parser.parse_kernel_exn (Ptx.Printer.kernel_to_string cfd_kernel)))
    ; test "static-opttlp" (fun () ->
        ignore (Crat.Opttlp.estimate_static fermi small ~max_tlp:8 ()))
    ; test "sim-small" (fun () ->
        let launch =
          Workloads.App.sm_launch small
            ~input:{ small_input with Workloads.App.num_blocks = 2 }
            ~tlp:2 ()
        in
        ignore (Gpusim.Sm.run fermi launch))
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg_b =
    Benchmark.cfg ~limit:8 ~quota:(Time.second 3.0) ~stabilize:false ()
  in
  let raw =
    Benchmark.all cfg_b instances (Test.make_grouped ~name:"crat" tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name result ->
       let ns =
         match Analyze.OLS.estimates result with
         | Some (e :: _) -> e
         | Some [] | None -> nan
       in
       Printf.printf "%-28s %14.0f ns/run\n" name ns)
    results

(* ---------- driver ---------- *)

let () =
  let bechamel = ref false in
  let fast = ref false in
  let only = ref [] in
  let spec =
    [ ("--bechamel", Arg.Set bechamel, " run Bechamel timing benchmarks")
    ; ("--fast", Arg.Set fast, " reduced application sets")
    ; ( "--only"
      , Arg.String (fun s -> only := String.split_on_char ',' s)
      , "IDS comma-separated experiment ids (e.g. fig13,tab1)" )
    ]
  in
  Arg.parse spec (fun _ -> ()) "bench/main.exe [--bechamel] [--fast] [--only ids]";
  if !bechamel then bechamel_mode ()
  else begin
    let ctx = if !fast then fast_ctx else full_ctx in
    let wanted (id, _, _) = !only = [] || List.mem id !only in
    let t_all = Unix.gettimeofday () in
    List.iter
      (fun ((id, descr, run) as e) ->
         if wanted e then begin
           let t0 = Unix.gettimeofday () in
           Format.fprintf fmt "==== %s: %s ====@." id descr;
           run ctx;
           Format.fprintf fmt "(%.1fs)@.@." (Unix.gettimeofday () -. t0)
         end)
      experiments;
    let hits, misses = Crat.Eval.cache_stats () in
    Format.fprintf fmt "total %.1fs; %d simulations (%d cache hits)@."
      (Unix.gettimeofday () -. t_all)
      misses hits
  end
