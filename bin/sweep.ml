(* The sweep driver shared by `crat verify|lint|sanitize|equiv` and by
   the daemon's server-side sweeps: one place that owns app selection
   (APP | --all | --corpus | --codes), report rendering, report-file
   tee-writing (--out), and the per-kind exit semantics. The CLI builds
   its four commands through [command]; `crat serve` answers [Sweep]
   requests through [serve_sweep] (same drivers, rendered to a buffer,
   never exiting). *)

open Cmdliner

let config_of_kepler kepler =
  if kepler then Gpusim.Config.kepler else Gpusim.Config.fermi

(* CLI-facing lookup: bad names are a usage error. *)
let find_app abbr =
  try Workloads.Suite.find abbr
  with Not_found ->
    Format.eprintf "unknown application %S; known: %s@." abbr
      (String.concat " " Workloads.Suite.abbrs);
    exit 2

type kind = Verify | Lint | Sanitize | Equiv

let kind_to_string = function
  | Verify -> "verify"
  | Lint -> "lint"
  | Sanitize -> "sanitize"
  | Equiv -> "equiv"

let kind_of_string = function
  | "verify" -> Some Verify
  | "lint" -> Some Lint
  | "sanitize" -> Some Sanitize
  | "equiv" -> Some Equiv
  | _ -> None

(* diagnostic-code namespace of each sweep (None = the full listing) *)
let codes_prefix = function
  | Verify -> None
  | Lint -> Some "P"
  | Sanitize -> Some "S"
  | Equiv -> Some "E"

let has_corpus = function Verify | Equiv -> true | Lint | Sanitize -> false

(* Union of the per-kind knobs; each kind reads the ones it documents. *)
type options =
  { kepler : bool
  ; regs : int option
  ; spare : int
  ; linear_scan : bool
  ; validate : bool
  }

let default_options =
  { kepler = false; regs = None; spare = 0; linear_scan = false
  ; validate = false }

(* ---------- report rendering (all output goes through [fmt]) ---------- *)

let print_diags fmt diags =
  List.iter
    (fun d -> Format.fprintf fmt "    %s@." (Verify.Diagnostic.to_string d))
    (Verify.Diagnostic.sort diags)

(* Verify one stage; prints a one-line summary (plus the diagnostics when
   there are any) and returns whether an error-severity one fired. *)
let verify_stage fmt abbr stage diags =
  let errs = List.length (Verify.Diagnostic.errors diags) in
  let warns = List.length (Verify.Diagnostic.warnings diags) in
  if diags = [] then Format.fprintf fmt "%-5s %-10s ok@." abbr stage
  else begin
    Format.fprintf fmt "%-5s %-10s %d error(s), %d warning(s)@." abbr stage
      errs warns;
    print_diags fmt diags
  end;
  errs > 0

let strategy_of o =
  if o.linear_scan then Regalloc.Allocator.Linear_scan
  else Regalloc.Allocator.Chaitin_briggs

let shared_policy_of o = if o.spare > 0 then `Spare o.spare else `Off

let verify_app fmt o (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let block_size = app.Workloads.App.block_size in
  let regs = Option.value ~default:app.Workloads.App.default_regs o.regs in
  let k = Workloads.App.kernel app in
  let pre =
    verify_stage fmt abbr "pre-opt" (Verify.Checker.check_kernel ~block_size k)
  in
  let k', _ = Ptxopt.Pipeline.run ~block_size k in
  let post =
    verify_stage fmt abbr "post-opt" (Verify.Checker.check_kernel ~block_size k')
  in
  let a =
    Regalloc.Allocator.allocate ~strategy:(strategy_of o)
      ~shared_policy:(shared_policy_of o) ~block_size ~reg_limit:regs k
  in
  let alloc =
    verify_stage fmt abbr "post-alloc" (Verify.Checker.check_allocation a)
  in
  pre || post || alloc

let verify_corpus fmt () =
  List.fold_left
    (fun bad (c : Verify.Corpus.case) ->
       let diags = Verify.Corpus.diagnostics_of c in
       let hit =
         List.exists
           (fun d -> d.Verify.Diagnostic.code = c.Verify.Corpus.expect)
           diags
       in
       Format.fprintf fmt "corpus %-9s expecting %s: %s@." c.Verify.Corpus.label
         c.Verify.Corpus.expect
         (if hit then "caught as expected" else "NOT CAUGHT");
       print_diags fmt diags;
       bad || not hit)
    false
    (Verify.Corpus.cases ())

let lint_app fmt o (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let cfg = config_of_kepler o.kepler in
  let report, failures =
    if o.validate then Crat.Lint.validate ~cfg app
    else (Crat.Lint.lint ~cfg ?regs:o.regs app, [])
  in
  let n = List.length report.Verify.Advisor.diags in
  Format.fprintf fmt "%-5s %d advisory(s), MAXLIVE %d%s@." abbr n
    report.Verify.Advisor.pressure.Absint.Pressure.maxlive
    (if o.validate then
       if failures = [] then ", claims validated" else ", CLAIMS VIOLATED"
     else "");
  print_diags fmt report.Verify.Advisor.diags;
  List.iter (fun f -> Format.fprintf fmt "    validation: %s@." f) failures;
  failures <> []

let sanitize_app fmt o (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let bad = ref false in
  let total = ref 0 and safe = ref 0 in
  List.iter
    (fun (sr : Crat.Sanitize.stage_report) ->
       let r = sr.Crat.Sanitize.report in
       let d = r.Verify.Sanitize.discharge in
       total := !total + d.Verify.Sanitize.total;
       safe := !safe + d.Verify.Sanitize.safe;
       Format.fprintf fmt
         "%-5s %-10s %3d access(es): %3d safe, %d oob, %d residual (%.1f%% proven)@."
         abbr sr.Crat.Sanitize.stage d.Verify.Sanitize.total
         d.Verify.Sanitize.safe d.Verify.Sanitize.oob
         d.Verify.Sanitize.residual
         (Verify.Sanitize.proven_pct d);
       print_diags fmt r.Verify.Sanitize.diags;
       if Verify.Diagnostic.has_errors r.Verify.Sanitize.diags then bad := true)
    (Crat.Sanitize.stages ?regs:o.regs ~spare:o.spare app);
  if o.validate then begin
    let dyn = Crat.Sanitize.validate ~cfg:(config_of_kepler o.kepler) app in
    let c = dyn.Crat.Sanitize.counters in
    let seen = Gpusim.Sancheck.seen c in
    let checked = Gpusim.Sancheck.checked c in
    let discharged =
      if seen = 0 then 100.0
      else 100.0 *. float_of_int (seen - checked) /. float_of_int seen
    in
    Format.fprintf fmt
      "%-5s %-10s %d lane access(es) monitored, %d checked (%.1f%% discharged), %d violation(s)@."
      abbr "dynamic" seen checked discharged
      (Gpusim.Sancheck.violations c);
    List.iter
      (fun f -> Format.fprintf fmt "    sanitize: %s@." f)
      dyn.Crat.Sanitize.failures;
    if dyn.Crat.Sanitize.failures <> [] then bad := true
  end;
  (!bad, (!total, !safe))

(* Translation-validate the three transformation edges of one app:
   pre-opt vs post-opt, post-opt input vs allocated kernel, allocated
   PTX vs lowered machine code. Returns (refuted, unproved). *)
let equiv_app fmt o (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let block_size = app.Workloads.App.block_size in
  let regs = Option.value ~default:app.Workloads.App.default_regs o.regs in
  let refuted = ref false and unproved = ref false in
  let report (out : Equiv.Check.outcome) =
    (match out.Equiv.Check.verdict with
     | Equiv.Check.Proved -> ()
     | Equiv.Check.Refuted _ -> refuted := true
     | Equiv.Check.Unknown _ -> unproved := true);
    Format.fprintf fmt "%-5s %a@." abbr Equiv.Check.pp_outcome out
  in
  let k = Workloads.App.kernel app in
  let k', _ = Ptxopt.Pipeline.run ~block_size k in
  report (Equiv.Check.check_opt ~block_size ~left:k ~right:k' ());
  let a =
    Regalloc.Allocator.allocate ~strategy:(strategy_of o)
      ~shared_policy:(shared_policy_of o) ~block_size ~reg_limit:regs k
  in
  report (Equiv.Check.check_alloc a);
  report (Equiv.Check.check_lower (Machine.Lower.run a));
  (!refuted, !unproved)

let equiv_corpus fmt () =
  List.fold_left
    (fun bad (c : Equiv.Corpus.case) ->
       let o = Equiv.Corpus.outcome_of c in
       let diags = Verify.Equiv_check.diagnostics_of o in
       let hit =
         List.exists
           (fun d -> d.Verify.Diagnostic.code = c.Equiv.Corpus.expect)
           diags
       in
       let replayed =
         match o.Equiv.Check.verdict with
         | Equiv.Check.Refuted w ->
           let left, right = Equiv.Corpus.runners c in
           Equiv.Witness.replay ~left ~right w <> None
         | _ -> false
       in
       Format.fprintf fmt "corpus %-17s expecting %s: %s@." c.Equiv.Corpus.label
         c.Equiv.Corpus.expect
         (if hit && replayed then "refuted, witness replays"
          else if hit then "refuted, but witness does NOT replay"
          else "NOT REFUTED");
       print_diags fmt diags;
       bad || not (hit && replayed))
    false
    (Equiv.Corpus.cases ())

(* ---------- the driver ---------- *)

(* Run one sweep over [apps]; returns whether the process should exit
   nonzero. [all] tightens equiv's exit condition (an unproved edge only
   fails a whole-suite sweep, matching the CI gate). *)
let run kind ~fmt ~options:o ~corpus ~all apps =
  match kind with
  | Verify ->
    let bad =
      List.fold_left (fun acc app -> verify_app fmt o app || acc) false apps
    in
    if corpus then verify_corpus fmt () || bad else bad
  | Lint ->
    List.fold_left (fun acc app -> lint_app fmt o app || acc) false apps
  | Sanitize ->
    let bad, total, safe =
      List.fold_left
        (fun (acc, t, sf) app ->
           let b, (t', sf') = sanitize_app fmt o app in
           (b || acc, t + t', sf + sf'))
        (false, 0, 0) apps
    in
    if all && total > 0 then
      Format.fprintf fmt "suite: %d static access(es), %d proven safe (%.1f%%)@."
        total safe
        (100.0 *. float_of_int safe /. float_of_int total);
    bad
  | Equiv ->
    let refuted, unproved =
      List.fold_left
        (fun (r, u) app ->
           let r', u' = equiv_app fmt o app in
           (r || r', u || u'))
        (false, false) apps
    in
    let bad = if corpus then equiv_corpus fmt () else false in
    refuted || bad || (all && unproved)

(* Daemon entry point: same drivers, rendered into a buffer, never
   exiting. [apps = []] means the whole suite; an unknown abbreviation
   raises (the daemon turns it into a protocol error); an unknown kind
   returns [None]. *)
let serve_sweep ~kind ~apps =
  match kind_of_string kind with
  | None -> None
  | Some k ->
    let resolved, all =
      match apps with
      | [] -> (Workloads.Suite.all, true)
      | l ->
        ( List.map
            (fun a ->
               try Workloads.Suite.find a
               with Not_found -> failwith (Printf.sprintf "unknown app %S" a))
            l
        , false )
    in
    let buf = Buffer.create 4096 in
    let fmt = Format.formatter_of_buffer buf in
    let failed = run k ~fmt ~options:default_options ~corpus:false ~all resolved in
    Format.pp_print_flush fmt ();
    Some (Buffer.contents buf, failed)

(* ---------- report-file tee ---------- *)

(* A formatter that streams to stdout while capturing everything for
   --out FILE (replacing the Makefile's `| tee` shell plumbing). *)
let with_report_fmt out f =
  match out with
  | None -> f Format.std_formatter
  | Some path ->
    let buf = Buffer.create 4096 in
    let fmt =
      Format.make_formatter
        (fun s pos len ->
           output_substring stdout s pos len;
           Buffer.add_substring buf s pos len)
        (fun () -> flush stdout)
    in
    let r = f fmt in
    Format.pp_print_flush fmt ();
    Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
    r

(* ---------- the shared cmdliner surface ---------- *)

let app_opt =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"APP"
         ~doc:"Application abbreviation; omit with $(b,--all).")

let all_arg ~doc = Arg.(value & flag & info [ "all" ] ~doc)

let codes_arg =
  Arg.(value & flag & info [ "codes" ]
         ~doc:"List the documented diagnostic codes and exit.")

let out_arg =
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
         ~doc:"Also write the report to $(docv) (tee: output still goes to \
               stdout).")

(* Build one sweep command. [options_term] supplies the kind-specific
   knobs; [all_doc] keeps each command's historical --all wording. *)
let command kind ~doc ~all_doc ~corpus_doc options_term =
  let name = kind_to_string kind in
  let corpus_term =
    if has_corpus kind then
      Arg.(value & flag & info [ "corpus" ] ~doc:corpus_doc)
    else Term.const false
  in
  let run_cmd abbr all corpus codes out options =
    if codes then
      print_endline
        (Verify.Diagnostic.codes_listing ?prefix:(codes_prefix kind) ())
    else begin
      let apps =
        if all then Workloads.Suite.all
        else
          match abbr with
          | Some a -> [ find_app a ]
          | None ->
            if corpus then []
            else begin
              Format.eprintf "%s: name an APP or pass --all@." name;
              exit 2
            end
      in
      let bad =
        with_report_fmt out (fun fmt ->
          run kind ~fmt ~options ~corpus ~all apps)
      in
      if bad then exit 1
    end
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(const run_cmd $ app_opt $ all_arg ~doc:all_doc $ corpus_term
          $ codes_arg $ out_arg $ options_term)
