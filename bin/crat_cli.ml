(* crat — command-line driver for the CRAT framework.

   Subcommands:
     apps                         list the workload suite (Table 3)
     config [--kepler]            show the simulated architecture (Table 2)
     analyze APP                  resource-usage analysis (Table 1 row)
     allocate APP -r N [...]      run the register allocator, dump PTX
     allocate-file FILE -r N      allocate an external PTX kernel
     simulate APP [-t TLP] [...]  one timing-simulator run with statistics
     optimize APP [...]           the full CRAT pipeline + comparison
     trace APP [-w N] [-n N]      per-warp execution trace
     passes APP                   run the ptxopt cleanup pipeline
     verify APP | --all [...]     static verifier / allocation auditor
     lint APP | --all [...]       static performance advisor (P-codes)
     sanitize APP | --all [...]   hybrid memory-safety sanitizer (S-codes)

   The allocate/simulate/optimize/passes commands also take [--verify],
   which arms the in-pipeline verifier gate (same as CRAT_VERIFY=1). *)

open Cmdliner

let config_of_kepler kepler =
  if kepler then Gpusim.Config.kepler else Gpusim.Config.fermi

let find_app abbr =
  try Workloads.Suite.find abbr
  with Not_found ->
    Format.eprintf "unknown application %S; known: %s@." abbr
      (String.concat " " Workloads.Suite.abbrs);
    exit 2

(* ---------- shared args ---------- *)

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP"
         ~doc:"Application abbreviation from Table 3 (e.g. CFD, KMN).")

let kepler_arg =
  Arg.(value & flag & info [ "kepler" ] ~doc:"Use the Kepler-like configuration.")

let regs_arg =
  Arg.(value & opt (some int) None & info [ "r"; "regs" ] ~docv:"N"
         ~doc:"Per-thread register limit (default: the app's default).")

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected a positive integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(value & opt positive_int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Fan independent allocations/simulations over $(docv) domains.")

(* Trace-driven replay is the default; [--no-replay] forces every
   simulation to run cold through the functional front-end. *)
let replay_arg =
  let no_replay =
    Arg.(value & flag & info [ "no-replay" ]
           ~doc:"Disable the trace-replay cache: re-execute every \
                 simulation functionally instead of replaying the \
                 launch's recorded trace.")
  in
  Term.(const not $ no_replay)

let backend_arg =
  let backend_conv =
    let parse s =
      match Machine.Backend.of_string s with
      | Some b -> Ok b
      | None -> Error (`Msg "expected 'ptx' or 'machine'")
    in
    Arg.conv
      ( parse
      , fun fmt b -> Format.pp_print_string fmt (Machine.Backend.to_string b) )
  in
  Arg.(value & opt backend_conv Machine.Backend.Ptx
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Register-file model: $(b,ptx) (one per-thread file, the \
                 paper's setup) or $(b,machine) (lower to the SASS-like ISA \
                 with split per-thread vector and per-warp scalar files; \
                 proven warp-uniform values are scalarized).")

let gate_arg =
  let doc =
    "Arm the static-verifier gate: every pipeline stage is re-verified and \
     the command aborts on the first error-severity diagnostic (same as \
     setting CRAT_VERIFY=1)."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let arm_gate enabled = if enabled then Verify.Gate.set true

(* ---------- apps ---------- *)

let apps_cmd =
  let doc = "List the benchmark suite (paper Table 3)." in
  let run () = Format.printf "%a" Workloads.Suite.pp_table () in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

(* ---------- config ---------- *)

let config_cmd =
  let doc = "Show the simulated GPU configuration (paper Table 2)." in
  let run kepler = Format.printf "%a" Gpusim.Config.pp (config_of_kepler kepler) in
  Cmd.v (Cmd.info "config" ~doc) Term.(const run $ kepler_arg)

(* ---------- analyze ---------- *)

let analyze_cmd =
  let doc = "Resource-usage analysis: MaxReg/MinReg/MaxTLP/ShmSize + OptTLP." in
  let run kepler abbr backend static jobs replay =
    let cfg = config_of_kepler kepler in
    let app = find_app abbr in
    let r = Crat.Resource.analyze ~backend cfg app in
    Format.printf "%s [%s]: %a@." abbr
      (Machine.Backend.to_string backend)
      Crat.Resource.pp r;
    if backend = Machine.Backend.Machine then
      Format.printf "scalar file: %d units/warp@." r.Crat.Resource.sregs_per_warp;
    let opt =
      if static then Crat.Opttlp.estimate_static cfg app ~max_tlp:r.Crat.Resource.max_tlp ()
      else
        let engine = Crat.Engine.create ~jobs ~replay () in
        (Crat.Opttlp.profile engine cfg app ~max_tlp:r.Crat.Resource.max_tlp ())
          .Crat.Opttlp.opt_tlp
    in
    Format.printf "OptTLP (%s): %d@." (if static then "static" else "profiled") opt;
    let stairs = Crat.Design_space.stairs cfg r in
    Format.printf "staircase:";
    List.iter (fun p -> Format.printf " %a" Crat.Design_space.pp_point p) stairs;
    Format.printf "@."
  in
  let static =
    Arg.(value & flag & info [ "static" ] ~doc:"Estimate OptTLP statically instead of profiling.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ kepler_arg $ app_arg $ backend_arg $ static $ jobs_arg
          $ replay_arg)

(* ---------- allocate ---------- *)

let do_allocate ?(backend = Machine.Backend.Ptx) kernel ~block_size ~regs
    ~spare ~linear_scan ~dump =
  let strategy =
    if linear_scan then Regalloc.Allocator.Linear_scan
    else Regalloc.Allocator.Chaitin_briggs
  in
  let shared_policy = if spare > 0 then `Spare spare else `Off in
  let scalar, scalar_limit =
    match backend with
    | Machine.Backend.Ptx -> ((fun _ -> false), 0)
    | Machine.Backend.Machine ->
      ( Machine.Scalarize.predicate ~block_size kernel
      , Machine.Backend.default_scalar_limit )
  in
  Verify.Gate.check_kernel ~stage:"cli:pre-alloc" ~block_size kernel;
  Verify.Gate.check_sanitize ~stage:"cli:pre-alloc" ~block_size kernel;
  let a =
    Regalloc.Allocator.allocate ~strategy ~shared_policy ~scalar ~scalar_limit
      ~block_size ~reg_limit:regs kernel
  in
  Verify.Gate.check_allocation ~stage:"cli:post-alloc" a;
  Format.printf
    "allocated at limit %d: %d vector units used, %d predicates, %d spilled@."
    regs a.Regalloc.Allocator.units_used a.Regalloc.Allocator.pred_used
    (List.length a.Regalloc.Allocator.spilled);
  Format.printf
    "spill code: %d local + %d shared accesses, %d setup instrs; %dB local/thread, %dB shared/block@."
    a.Regalloc.Allocator.stats.Regalloc.Spill.num_local
    a.Regalloc.Allocator.stats.Regalloc.Spill.num_shared
    a.Regalloc.Allocator.stats.Regalloc.Spill.num_other
    a.Regalloc.Allocator.spill_local_bytes
    a.Regalloc.Allocator.spill_shared_bytes_per_block;
  match backend with
  | Machine.Backend.Ptx ->
    if dump then
      print_string (Ptx.Printer.kernel_to_string a.Regalloc.Allocator.kernel)
  | Machine.Backend.Machine ->
    Format.printf "scalar file: %d units/warp (%d registers scalarized)@."
      a.Regalloc.Allocator.scalar_units_used a.Regalloc.Allocator.scalarized;
    let m = Machine.Lower.run a in
    Verify.Gate.check_machine ~stage:"cli:post-lower" m;
    Format.printf
      "machine code: %d insns (%d bytes), V=%d S=%d P=%d@."
      (Array.length m.Machine.Lower.code)
      (Array.length m.Machine.Lower.encoded * 8)
      m.Machine.Lower.vector_units m.Machine.Lower.scalar_units
      m.Machine.Lower.pred_count;
    if dump then Format.printf "%a" Machine.Lower.pp m

let spare_arg =
  Arg.(value & opt int 0 & info [ "shared-spare" ] ~docv:"BYTES"
         ~doc:"Spare shared memory per block for Algorithm 1 (0 = local only).")

let ls_arg =
  Arg.(value & flag & info [ "linear-scan" ] ~doc:"Use the linear-scan reference allocator.")

let dump_arg =
  Arg.(value & flag & info [ "dump" ] ~doc:"Print the allocated PTX kernel.")

let allocate_cmd =
  let doc = "Allocate registers for a suite kernel at a per-thread limit." in
  let run abbr backend regs spare linear_scan dump gate =
    arm_gate gate;
    let app = find_app abbr in
    let regs = Option.value ~default:app.Workloads.App.default_regs regs in
    do_allocate ~backend (Workloads.App.kernel app)
      ~block_size:app.Workloads.App.block_size ~regs ~spare ~linear_scan ~dump
  in
  Cmd.v (Cmd.info "allocate" ~doc)
    Term.(const run $ app_arg $ backend_arg $ regs_arg $ spare_arg $ ls_arg
          $ dump_arg $ gate_arg)

let allocate_file_cmd =
  let doc = "Allocate registers for an external PTX kernel file." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"PTX source file.")
  in
  let regs =
    Arg.(value & opt int 16 & info [ "r"; "regs" ] ~docv:"N" ~doc:"Register limit.")
  in
  let block =
    Arg.(value & opt int 128 & info [ "block" ] ~docv:"N" ~doc:"Thread-block size.")
  in
  let run file regs block spare linear_scan dump gate =
    arm_gate gate;
    let src = In_channel.with_open_text file In_channel.input_all in
    match Ptx.Parser.parse_kernel src with
    | Error msg ->
      Format.eprintf "parse error: %s@." msg;
      exit 1
    | Ok kernel ->
      do_allocate kernel ~block_size:block ~regs ~spare ~linear_scan ~dump
  in
  Cmd.v (Cmd.info "allocate-file" ~doc)
    Term.(const run $ file $ regs $ block $ spare_arg $ ls_arg $ dump_arg
          $ gate_arg)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let doc = "Run one configuration on the timing simulator and print statistics." in
  let tlp_arg =
    Arg.(value & opt (some int) None & info [ "t"; "tlp" ] ~docv:"N"
           ~doc:"Concurrent thread blocks (default: occupancy maximum).")
  in
  let input_arg =
    Arg.(value & opt string "default" & info [ "input" ] ~docv:"LABEL"
           ~doc:"Input label (see the app's descriptor).")
  in
  let run kepler abbr regs tlp input_label gate =
    arm_gate gate;
    let cfg = config_of_kepler kepler in
    let app = find_app abbr in
    let regs = Option.value ~default:app.Workloads.App.default_regs regs in
    let input = Workloads.App.find_input app input_label in
    let a =
      Regalloc.Allocator.allocate ~block_size:app.Workloads.App.block_size
        ~reg_limit:regs (Workloads.App.kernel app)
    in
    Verify.Gate.check_allocation
      ~stage:(abbr ^ ":post-alloc") a;
    let r = Crat.Resource.analyze cfg app in
    let occ = Gpusim.Occupancy.max_tlp cfg (Crat.Resource.usage_at r ~regs) in
    let tlp = Option.value ~default:occ tlp in
    let launch =
      Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~tlp ~input ()
    in
    Format.printf "%s at reg=%d TLP=%d on %s@." abbr regs tlp cfg.Gpusim.Config.name;
    let st = Gpusim.Sm.run cfg launch in
    Format.printf "%a" Gpusim.Stats.pp st;
    Format.printf "energy: %a@." Energy.pp (Energy.of_stats st)
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ kepler_arg $ app_arg $ regs_arg $ tlp_arg $ input_arg
          $ gate_arg)

(* ---------- passes ---------- *)

let passes_cmd =
  let doc = "Run the cleanup pipeline (const-fold, copy-prop, DCE) on a kernel." in
  let run abbr dump gate =
    arm_gate gate;
    let app = find_app abbr in
    let k = Workloads.App.kernel app in
    let k', report =
      Ptxopt.Pipeline.run ~block_size:app.Workloads.App.block_size k
    in
    Format.printf "%s: %d -> %d instructions (%a)@." abbr
      (Ptx.Kernel.instr_count k) (Ptx.Kernel.instr_count k')
      Ptxopt.Pipeline.pp_report report;
    if dump then print_string (Ptx.Printer.kernel_to_string k')
  in
  Cmd.v (Cmd.info "passes" ~doc)
    Term.(const run $ app_arg $ dump_arg $ gate_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let doc = "Print a per-warp execution trace from the functional interpreter." in
  let warp_arg =
    Arg.(value & opt int 0 & info [ "w"; "warp" ] ~docv:"N" ~doc:"Warp index within the block.")
  in
  let block_arg =
    Arg.(value & opt int 0 & info [ "b"; "block" ] ~docv:"N" ~doc:"Thread-block id.")
  in
  let steps_arg =
    Arg.(value & opt int 120 & info [ "n"; "steps" ] ~docv:"N" ~doc:"Maximum steps to log.")
  in
  let run abbr warp block steps =
    let app = find_app abbr in
    let input = Workloads.App.default_input app in
    let entries =
      Gpusim.Trace.warp_trace ~max_steps:steps ~ctaid:block ~warp
        (Workloads.App.launch app ~input ())
    in
    Format.printf "%a" Gpusim.Trace.pp entries
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ app_arg $ warp_arg $ block_arg $ steps_arg)

(* ---------- optimize ---------- *)

let optimize_cmd =
  let doc = "Run the full CRAT pipeline and compare against MaxTLP/OptTLP." in
  let static_arg =
    Arg.(value & flag & info [ "static" ] ~doc:"Use the static OptTLP estimate (CRAT-static).")
  in
  let no_shared_arg =
    Arg.(value & flag & info [ "no-shared-spill" ] ~doc:"Disable Algorithm 1 (CRAT-local).")
  in
  let report_arg =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Print the engine's job/cache statistics after the run.")
  in
  let run kepler abbr backend static no_shared jobs report gate replay =
    arm_gate gate;
    let cfg = config_of_kepler kepler in
    let app = find_app abbr in
    let mode = if static then `Static else `Profile in
    let engine = Crat.Engine.create ~jobs ~replay () in
    let m = Crat.Baselines.max_tlp ~backend engine cfg app () in
    let o = Crat.Baselines.opt_tlp ~backend engine cfg app () in
    let c, plan =
      Crat.Baselines.crat ~mode ~backend ~shared_spilling:(not no_shared)
        engine cfg app ()
    in
    Format.printf "%a@." Crat.Optimizer.pp_plan plan;
    if backend = Machine.Backend.Machine then
      Format.printf
        "machine backend: %d registers scalarized, %d scalar units/warp@."
        c.Crat.Baselines.alloc.Regalloc.Allocator.scalarized
        c.Crat.Baselines.alloc.Regalloc.Allocator.scalar_units_used;
    let show (e : Crat.Baselines.evaluated) =
      Format.printf "  %-12s reg=%2d TLP=%d %9d cycles (%.3fx vs OptTLP)@."
        e.Crat.Baselines.label e.Crat.Baselines.reg e.Crat.Baselines.tlp
        (Crat.Baselines.cycles e)
        (Crat.Baselines.speedup_over ~baseline:o e)
    in
    show m;
    show o;
    show c;
    if report then
      Format.printf "%a@." Crat.Engine.pp_report (Crat.Engine.report engine)
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run $ kepler_arg $ app_arg $ backend_arg $ static_arg
          $ no_shared_arg $ jobs_arg $ report_arg $ gate_arg $ replay_arg)

(* ---------- verify ---------- *)

let print_diags diags =
  List.iter
    (fun d -> Format.printf "    %s@." (Verify.Diagnostic.to_string d))
    (Verify.Diagnostic.sort diags)

(* Verify one stage; prints a one-line summary (plus the diagnostics when
   there are any) and returns whether an error-severity one fired. *)
let verify_stage abbr stage diags =
  let errs = List.length (Verify.Diagnostic.errors diags) in
  let warns = List.length (Verify.Diagnostic.warnings diags) in
  if diags = [] then Format.printf "%-5s %-10s ok@." abbr stage
  else begin
    Format.printf "%-5s %-10s %d error(s), %d warning(s)@." abbr stage errs
      warns;
    print_diags diags
  end;
  errs > 0

let verify_app ~regs ~linear_scan ~spare (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let block_size = app.Workloads.App.block_size in
  let regs = Option.value ~default:app.Workloads.App.default_regs regs in
  let strategy =
    if linear_scan then Regalloc.Allocator.Linear_scan
    else Regalloc.Allocator.Chaitin_briggs
  in
  let shared_policy = if spare > 0 then `Spare spare else `Off in
  let k = Workloads.App.kernel app in
  let pre = verify_stage abbr "pre-opt" (Verify.Checker.check_kernel ~block_size k) in
  let k', _ = Ptxopt.Pipeline.run ~block_size k in
  let post =
    verify_stage abbr "post-opt" (Verify.Checker.check_kernel ~block_size k')
  in
  let a =
    Regalloc.Allocator.allocate ~strategy ~shared_policy ~block_size
      ~reg_limit:regs k
  in
  let alloc =
    verify_stage abbr "post-alloc" (Verify.Checker.check_allocation a)
  in
  pre || post || alloc

let verify_corpus () =
  List.fold_left
    (fun bad (c : Verify.Corpus.case) ->
       let diags = Verify.Corpus.diagnostics_of c in
       let hit =
         List.exists
           (fun d -> d.Verify.Diagnostic.code = c.Verify.Corpus.expect)
           diags
       in
       Format.printf "corpus %-9s expecting %s: %s@." c.Verify.Corpus.label
         c.Verify.Corpus.expect
         (if hit then "caught as expected" else "NOT CAUGHT");
       print_diags diags;
       bad || not hit)
    false
    (Verify.Corpus.cases ())

let verify_cmd =
  let doc =
    "Statically verify a kernel at every compiler stage (pre-opt, post-opt, \
     post-allocation) and audit the register allocation."
  in
  let app_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP"
           ~doc:"Application abbreviation; omit with $(b,--all).")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Sweep every suite kernel; exit 1 on any error diagnostic.")
  in
  let corpus_arg =
    Arg.(value & flag & info [ "corpus" ]
           ~doc:"Also run the seeded known-bad corpus; each case must be \
                 rejected with its documented code.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ]
           ~doc:"List the documented diagnostic codes and exit.")
  in
  let run abbr all corpus codes regs linear_scan spare =
    if codes then
      print_endline (Verify.Diagnostic.codes_listing ())
    else begin
      let apps =
        if all then Workloads.Suite.all
        else
          match abbr with
          | Some a -> [ find_app a ]
          | None ->
            if corpus then []
            else begin
              Format.eprintf "verify: name an APP or pass --all@.";
              exit 2
            end
      in
      let bad =
        List.fold_left
          (fun acc app -> verify_app ~regs ~linear_scan ~spare app || acc)
          false apps
      in
      let bad = if corpus then verify_corpus () || bad else bad in
      if bad then exit 1
    end
  in
  Cmd.v (Cmd.info "verify" ~doc)
    Term.(const run $ app_opt $ all_arg $ corpus_arg $ codes_arg $ regs_arg
          $ ls_arg $ spare_arg)

(* ---------- lint ---------- *)

let lint_app ~kepler ~regs ~validate (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let cfg = config_of_kepler kepler in
  let report, failures =
    if validate then Crat.Lint.validate ~cfg app
    else (Crat.Lint.lint ~cfg ?regs app, [])
  in
  let n = List.length report.Verify.Advisor.diags in
  Format.printf "%-5s %d advisory(s), MAXLIVE %d%s@." abbr n
    report.Verify.Advisor.pressure.Absint.Pressure.maxlive
    (if validate then
       if failures = [] then ", claims validated" else ", CLAIMS VIOLATED"
     else "");
  print_diags report.Verify.Advisor.diags;
  List.iter (fun f -> Format.printf "    validation: %s@." f) failures;
  failures <> []

let lint_cmd =
  let doc =
    "Static performance advisor: abstract interpretation over the kernel \
     emits P-code advisories (pressure, coalescing, bank conflicts, \
     divergence, loops); $(b,--validate) cross-checks every static claim \
     against the reference interpreter's dynamic counters."
  in
  let app_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP"
           ~doc:"Application abbreviation; omit with $(b,--all).")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Sweep every suite kernel; exit 1 on any violated claim.")
  in
  let validate_arg =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Run the default input through the reference interpreter and \
                 check every static claim against the dynamic counters.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ]
           ~doc:"List the advisory P-codes and exit.")
  in
  let run kepler abbr all validate codes regs =
    if codes then
      print_endline (Verify.Diagnostic.codes_listing ~prefix:"P" ())
    else begin
      let apps =
        if all then Workloads.Suite.all
        else
          match abbr with
          | Some a -> [ find_app a ]
          | None ->
            Format.eprintf "lint: name an APP or pass --all@.";
            exit 2
      in
      let bad =
        List.fold_left
          (fun acc app -> lint_app ~kepler ~regs ~validate app || acc)
          false apps
      in
      if bad then exit 1
    end
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ kepler_arg $ app_opt $ all_arg $ validate_arg $ codes_arg
          $ regs_arg)

(* ---------- sanitize ---------- *)

let sanitize_app ~kepler ~regs ~spare ~validate (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let bad = ref false in
  let total = ref 0 and safe = ref 0 in
  List.iter
    (fun (sr : Crat.Sanitize.stage_report) ->
       let r = sr.Crat.Sanitize.report in
       let d = r.Verify.Sanitize.discharge in
       total := !total + d.Verify.Sanitize.total;
       safe := !safe + d.Verify.Sanitize.safe;
       Format.printf
         "%-5s %-10s %3d access(es): %3d safe, %d oob, %d residual (%.1f%% proven)@."
         abbr sr.Crat.Sanitize.stage d.Verify.Sanitize.total
         d.Verify.Sanitize.safe d.Verify.Sanitize.oob
         d.Verify.Sanitize.residual
         (Verify.Sanitize.proven_pct d);
       print_diags r.Verify.Sanitize.diags;
       if Verify.Diagnostic.has_errors r.Verify.Sanitize.diags then bad := true)
    (Crat.Sanitize.stages ?regs ~spare app);
  if validate then begin
    let dyn = Crat.Sanitize.validate ~cfg:(config_of_kepler kepler) app in
    let c = dyn.Crat.Sanitize.counters in
    let seen = Gpusim.Sancheck.seen c in
    let checked = Gpusim.Sancheck.checked c in
    let discharged =
      if seen = 0 then 100.0
      else 100.0 *. float_of_int (seen - checked) /. float_of_int seen
    in
    Format.printf
      "%-5s %-10s %d lane access(es) monitored, %d checked (%.1f%% discharged), %d violation(s)@."
      abbr "dynamic" seen checked discharged
      (Gpusim.Sancheck.violations c);
    List.iter
      (fun f -> Format.printf "    sanitize: %s@." f)
      dyn.Crat.Sanitize.failures;
    if dyn.Crat.Sanitize.failures <> [] then bad := true
  end;
  (!bad, (!total, !safe))

let sanitize_cmd =
  let doc =
    "Hybrid memory-safety sanitizer: static bounds proofs over every      shared/local/param access (S-codes), a per-stage discharge table, and      with $(b,--validate) a sanitized run of the default input where only      the unproven accesses pay a dynamic bounds check."
  in
  let app_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP"
           ~doc:"Application abbreviation; omit with $(b,--all).")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Sweep every suite kernel; exit 1 on any proven-OOB access                  or dynamic violation.")
  in
  let validate_arg =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Run the default input through the reference interpreter                  with the residual checks armed; report what fraction of                  dynamic lane accesses the static proofs discharged.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ]
           ~doc:"List the sanitizer S-codes and exit.")
  in
  let run kepler abbr all validate codes regs spare =
    if codes then
      print_endline (Verify.Diagnostic.codes_listing ~prefix:"S" ())
    else begin
      let apps =
        if all then Workloads.Suite.all
        else
          match abbr with
          | Some a -> [ find_app a ]
          | None ->
            Format.eprintf "sanitize: name an APP or pass --all@.";
            exit 2
      in
      let bad, total, safe =
        List.fold_left
          (fun (acc, t, sf) app ->
             let b, (t', sf') = sanitize_app ~kepler ~regs ~spare ~validate app in
             (b || acc, t + t', sf + sf'))
          (false, 0, 0) apps
      in
      if all && total > 0 then
        Format.printf "suite: %d static access(es), %d proven safe (%.1f%%)@."
          total safe
          (100.0 *. float_of_int safe /. float_of_int total);
      if bad then exit 1
    end
  in
  Cmd.v (Cmd.info "sanitize" ~doc)
    Term.(const run $ kepler_arg $ app_opt $ all_arg $ validate_arg
          $ codes_arg $ regs_arg $ spare_arg)

(* ---------- equiv ---------- *)

(* Translation-validate the three transformation edges of one app:
   pre-opt vs post-opt, post-opt input vs allocated kernel, allocated
   PTX vs lowered machine code. Returns (refuted, unproved). *)
let equiv_app ~regs ~linear_scan ~spare (app : Workloads.App.t) =
  let abbr = app.Workloads.App.abbr in
  let block_size = app.Workloads.App.block_size in
  let regs = Option.value ~default:app.Workloads.App.default_regs regs in
  let strategy =
    if linear_scan then Regalloc.Allocator.Linear_scan
    else Regalloc.Allocator.Chaitin_briggs
  in
  let shared_policy = if spare > 0 then `Spare spare else `Off in
  let refuted = ref false and unproved = ref false in
  let report (o : Equiv.Check.outcome) =
    (match o.Equiv.Check.verdict with
     | Equiv.Check.Proved -> ()
     | Equiv.Check.Refuted _ -> refuted := true
     | Equiv.Check.Unknown _ -> unproved := true);
    Format.printf "%-5s %a@." abbr Equiv.Check.pp_outcome o
  in
  let k = Workloads.App.kernel app in
  let k', _ = Ptxopt.Pipeline.run ~block_size k in
  report (Equiv.Check.check_opt ~block_size ~left:k ~right:k' ());
  let a =
    Regalloc.Allocator.allocate ~strategy ~shared_policy ~block_size
      ~reg_limit:regs k
  in
  report (Equiv.Check.check_alloc a);
  report (Equiv.Check.check_lower (Machine.Lower.run a));
  (!refuted, !unproved)

let equiv_corpus () =
  List.fold_left
    (fun bad (c : Equiv.Corpus.case) ->
       let o = Equiv.Corpus.outcome_of c in
       let diags = Verify.Equiv_check.diagnostics_of o in
       let hit =
         List.exists
           (fun d -> d.Verify.Diagnostic.code = c.Equiv.Corpus.expect)
           diags
       in
       let replayed =
         match o.Equiv.Check.verdict with
         | Equiv.Check.Refuted w ->
           let left, right = Equiv.Corpus.runners c in
           Equiv.Witness.replay ~left ~right w <> None
         | _ -> false
       in
       Format.printf "corpus %-17s expecting %s: %s@." c.Equiv.Corpus.label
         c.Equiv.Corpus.expect
         (if hit && replayed then "refuted, witness replays"
          else if hit then "refuted, but witness does NOT replay"
          else "NOT REFUTED");
       print_diags diags;
       bad || not (hit && replayed))
    false
    (Equiv.Corpus.cases ())

let equiv_cmd =
  let doc =
    "Translation validation: symbolically prove each compiler edge      (optimization, register allocation, machine lowering) equivalent,      refute miscompiles with a concrete replayed counterexample, and      report everything else as unknown."
  in
  let app_opt =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP"
           ~doc:"Application abbreviation; omit with $(b,--all).")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ]
           ~doc:"Sweep every suite kernel; exit 1 unless every edge of every \
                 kernel is proved.")
  in
  let corpus_arg =
    Arg.(value & flag & info [ "corpus" ]
           ~doc:"Also run the seeded miscompile corpus; each case must be \
                 refuted (E201) with a witness that replays as a genuine \
                 divergence.")
  in
  let codes_arg =
    Arg.(value & flag & info [ "codes" ]
           ~doc:"List the documented E-codes and exit.")
  in
  let run abbr all corpus codes regs linear_scan spare =
    if codes then
      print_endline (Verify.Diagnostic.codes_listing ~prefix:"E" ())
    else begin
      let apps =
        if all then Workloads.Suite.all
        else
          match abbr with
          | Some a -> [ find_app a ]
          | None ->
            if corpus then []
            else begin
              Format.eprintf "equiv: name an APP or pass --all@.";
              exit 2
            end
      in
      let refuted, unproved =
        List.fold_left
          (fun (r, u) app ->
             let r', u' = equiv_app ~regs ~linear_scan ~spare app in
             (r || r', u || u'))
          (false, false) apps
      in
      let bad = if corpus then equiv_corpus () else false in
      if refuted || bad || (all && unproved) then exit 1
    end
  in
  Cmd.v (Cmd.info "equiv" ~doc)
    Term.(const run $ app_opt $ all_arg $ corpus_arg $ codes_arg $ regs_arg
          $ ls_arg $ spare_arg)

let () =
  let doc = "CRAT: coordinated register allocation and TLP optimization for GPUs" in
  let info = Cmd.info "crat" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ apps_cmd; config_cmd; analyze_cmd; allocate_cmd; allocate_file_cmd
      ; simulate_cmd; optimize_cmd; trace_cmd; passes_cmd; verify_cmd
      ; lint_cmd; sanitize_cmd; equiv_cmd ]
  in
  exit (Cmd.eval group)
