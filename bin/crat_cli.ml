(* crat — command-line driver for the CRAT framework.

   Subcommands:
     apps                         list the workload suite (Table 3)
     config [--kepler]            show the simulated architecture (Table 2)
     analyze APP                  resource-usage analysis (Table 1 row)
     allocate APP -r N [...]      run the register allocator, dump PTX
     allocate-file FILE -r N      allocate an external PTX kernel
     simulate APP [-t TLP] [...]  one timing-simulator run with statistics
     optimize APP [...]           the full CRAT pipeline + comparison
     trace APP [-w N] [-n N]      per-warp execution trace
     passes APP                   run the ptxopt cleanup pipeline
     verify APP | --all [...]     static verifier / allocation auditor
     lint APP | --all [...]       static performance advisor (P-codes)
     sanitize APP | --all [...]   hybrid memory-safety sanitizer (S-codes)
     equiv APP | --all [...]      translation validation (E-codes)
     serve [--socket --store]     the crat daemon (persistent store, dedup)
     client [APP...]              talk to a running daemon

   The four report sweeps share one driver (see sweep.ml); the
   allocate/simulate/optimize/passes commands also take [--verify],
   which arms the in-pipeline verifier gate (same as CRAT_VERIFY=1). *)

open Cmdliner

let config_of_kepler = Sweep.config_of_kepler
let find_app = Sweep.find_app

(* ---------- shared args ---------- *)

let app_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP"
         ~doc:"Application abbreviation from Table 3 (e.g. CFD, KMN).")

let kepler_arg =
  Arg.(value & flag & info [ "kepler" ] ~doc:"Use the Kepler-like configuration.")

let regs_arg =
  Arg.(value & opt (some int) None & info [ "r"; "regs" ] ~docv:"N"
         ~doc:"Per-thread register limit (default: the app's default).")

let positive_int =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | _ -> Error (`Msg "expected a positive integer")
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(value & opt positive_int 1 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Fan independent allocations/simulations over $(docv) domains.")

(* Trace-driven replay is the default; [--no-replay] forces every
   simulation to run cold through the functional front-end. *)
let replay_arg =
  let no_replay =
    Arg.(value & flag & info [ "no-replay" ]
           ~doc:"Disable the trace-replay cache: re-execute every \
                 simulation functionally instead of replaying the \
                 launch's recorded trace.")
  in
  Term.(const not $ no_replay)

let backend_arg =
  let backend_conv =
    let parse s =
      match Machine.Backend.of_string s with
      | Some b -> Ok b
      | None -> Error (`Msg "expected 'ptx' or 'machine'")
    in
    Arg.conv
      ( parse
      , fun fmt b -> Format.pp_print_string fmt (Machine.Backend.to_string b) )
  in
  Arg.(value & opt backend_conv Machine.Backend.Ptx
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Register-file model: $(b,ptx) (one per-thread file, the \
                 paper's setup) or $(b,machine) (lower to the SASS-like ISA \
                 with split per-thread vector and per-warp scalar files; \
                 proven warp-uniform values are scalarized).")

let gate_arg =
  let doc =
    "Arm the static-verifier gate: every pipeline stage is re-verified and \
     the command aborts on the first error-severity diagnostic (same as \
     setting CRAT_VERIFY=1)."
  in
  Arg.(value & flag & info [ "verify" ] ~doc)

let arm_gate enabled = if enabled then Verify.Gate.set true

(* ---------- apps ---------- *)

let apps_cmd =
  let doc = "List the benchmark suite (paper Table 3)." in
  let run () = Format.printf "%a" Workloads.Suite.pp_table () in
  Cmd.v (Cmd.info "apps" ~doc) Term.(const run $ const ())

(* ---------- config ---------- *)

let config_cmd =
  let doc = "Show the simulated GPU configuration (paper Table 2)." in
  let run kepler = Format.printf "%a" Gpusim.Config.pp (config_of_kepler kepler) in
  Cmd.v (Cmd.info "config" ~doc) Term.(const run $ kepler_arg)

(* ---------- analyze ---------- *)

let analyze_cmd =
  let doc = "Resource-usage analysis: MaxReg/MinReg/MaxTLP/ShmSize + OptTLP." in
  let run kepler abbr backend static jobs replay =
    let cfg = config_of_kepler kepler in
    let app = find_app abbr in
    let r = Crat.Resource.analyze ~backend cfg app in
    Format.printf "%s [%s]: %a@." abbr
      (Machine.Backend.to_string backend)
      Crat.Resource.pp r;
    if backend = Machine.Backend.Machine then
      Format.printf "scalar file: %d units/warp@." r.Crat.Resource.sregs_per_warp;
    let opt =
      if static then Crat.Opttlp.estimate_static cfg app ~max_tlp:r.Crat.Resource.max_tlp ()
      else
        let engine = Crat.Engine.create ~jobs ~replay () in
        (Crat.Opttlp.profile engine cfg app ~max_tlp:r.Crat.Resource.max_tlp ())
          .Crat.Opttlp.opt_tlp
    in
    Format.printf "OptTLP (%s): %d@." (if static then "static" else "profiled") opt;
    let stairs = Crat.Design_space.stairs cfg r in
    Format.printf "staircase:";
    List.iter (fun p -> Format.printf " %a" Crat.Design_space.pp_point p) stairs;
    Format.printf "@."
  in
  let static =
    Arg.(value & flag & info [ "static" ] ~doc:"Estimate OptTLP statically instead of profiling.")
  in
  Cmd.v (Cmd.info "analyze" ~doc)
    Term.(const run $ kepler_arg $ app_arg $ backend_arg $ static $ jobs_arg
          $ replay_arg)

(* ---------- allocate ---------- *)

let do_allocate ?(backend = Machine.Backend.Ptx) kernel ~block_size ~regs
    ~spare ~linear_scan ~dump =
  let strategy =
    if linear_scan then Regalloc.Allocator.Linear_scan
    else Regalloc.Allocator.Chaitin_briggs
  in
  let shared_policy = if spare > 0 then `Spare spare else `Off in
  let scalar, scalar_limit =
    match backend with
    | Machine.Backend.Ptx -> ((fun _ -> false), 0)
    | Machine.Backend.Machine ->
      ( Machine.Scalarize.predicate ~block_size kernel
      , Machine.Backend.default_scalar_limit )
  in
  Verify.Gate.run ~stage:"cli:pre-alloc"
    [ Verify.Gate.Kernel { block_size = Some block_size; kernel }
    ; Verify.Gate.Sanitize { block_size = Some block_size; kernel }
    ];
  let a =
    Regalloc.Allocator.allocate ~strategy ~shared_policy ~scalar ~scalar_limit
      ~block_size ~reg_limit:regs kernel
  in
  Verify.Gate.run ~stage:"cli:post-alloc" [ Verify.Gate.Allocation a ];
  Format.printf
    "allocated at limit %d: %d vector units used, %d predicates, %d spilled@."
    regs a.Regalloc.Allocator.units_used a.Regalloc.Allocator.pred_used
    (List.length a.Regalloc.Allocator.spilled);
  Format.printf
    "spill code: %d local + %d shared accesses, %d setup instrs; %dB local/thread, %dB shared/block@."
    a.Regalloc.Allocator.stats.Regalloc.Spill.num_local
    a.Regalloc.Allocator.stats.Regalloc.Spill.num_shared
    a.Regalloc.Allocator.stats.Regalloc.Spill.num_other
    a.Regalloc.Allocator.spill_local_bytes
    a.Regalloc.Allocator.spill_shared_bytes_per_block;
  match backend with
  | Machine.Backend.Ptx ->
    if dump then
      print_string (Ptx.Printer.kernel_to_string a.Regalloc.Allocator.kernel)
  | Machine.Backend.Machine ->
    Format.printf "scalar file: %d units/warp (%d registers scalarized)@."
      a.Regalloc.Allocator.scalar_units_used a.Regalloc.Allocator.scalarized;
    let m = Machine.Lower.run a in
    Verify.Gate.run ~stage:"cli:post-lower" [ Verify.Gate.Machine m ];
    Format.printf
      "machine code: %d insns (%d bytes), V=%d S=%d P=%d@."
      (Array.length m.Machine.Lower.code)
      (Array.length m.Machine.Lower.encoded * 8)
      m.Machine.Lower.vector_units m.Machine.Lower.scalar_units
      m.Machine.Lower.pred_count;
    if dump then Format.printf "%a" Machine.Lower.pp m

let spare_arg =
  Arg.(value & opt int 0 & info [ "shared-spare" ] ~docv:"BYTES"
         ~doc:"Spare shared memory per block for Algorithm 1 (0 = local only).")

let ls_arg =
  Arg.(value & flag & info [ "linear-scan" ] ~doc:"Use the linear-scan reference allocator.")

let dump_arg =
  Arg.(value & flag & info [ "dump" ] ~doc:"Print the allocated PTX kernel.")

let allocate_cmd =
  let doc = "Allocate registers for a suite kernel at a per-thread limit." in
  let run abbr backend regs spare linear_scan dump gate =
    arm_gate gate;
    let app = find_app abbr in
    let regs = Option.value ~default:app.Workloads.App.default_regs regs in
    do_allocate ~backend (Workloads.App.kernel app)
      ~block_size:app.Workloads.App.block_size ~regs ~spare ~linear_scan ~dump
  in
  Cmd.v (Cmd.info "allocate" ~doc)
    Term.(const run $ app_arg $ backend_arg $ regs_arg $ spare_arg $ ls_arg
          $ dump_arg $ gate_arg)

let allocate_file_cmd =
  let doc = "Allocate registers for an external PTX kernel file." in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"PTX source file.")
  in
  let regs =
    Arg.(value & opt int 16 & info [ "r"; "regs" ] ~docv:"N" ~doc:"Register limit.")
  in
  let block =
    Arg.(value & opt int 128 & info [ "block" ] ~docv:"N" ~doc:"Thread-block size.")
  in
  let run file regs block spare linear_scan dump gate =
    arm_gate gate;
    let src = In_channel.with_open_text file In_channel.input_all in
    match Ptx.Parser.parse_kernel src with
    | Error msg ->
      Format.eprintf "parse error: %s@." msg;
      exit 1
    | Ok kernel ->
      do_allocate kernel ~block_size:block ~regs ~spare ~linear_scan ~dump
  in
  Cmd.v (Cmd.info "allocate-file" ~doc)
    Term.(const run $ file $ regs $ block $ spare_arg $ ls_arg $ dump_arg
          $ gate_arg)

(* ---------- simulate ---------- *)

let simulate_cmd =
  let doc = "Run one configuration on the timing simulator and print statistics." in
  let tlp_arg =
    Arg.(value & opt (some int) None & info [ "t"; "tlp" ] ~docv:"N"
           ~doc:"Concurrent thread blocks (default: occupancy maximum).")
  in
  let input_arg =
    Arg.(value & opt string "default" & info [ "input" ] ~docv:"LABEL"
           ~doc:"Input label (see the app's descriptor).")
  in
  let run kepler abbr regs tlp input_label gate =
    arm_gate gate;
    let cfg = config_of_kepler kepler in
    let app = find_app abbr in
    let regs = Option.value ~default:app.Workloads.App.default_regs regs in
    let input = Workloads.App.find_input app input_label in
    let a =
      Regalloc.Allocator.allocate ~block_size:app.Workloads.App.block_size
        ~reg_limit:regs (Workloads.App.kernel app)
    in
    Verify.Gate.run ~stage:(abbr ^ ":post-alloc")
      [ Verify.Gate.Allocation a ];
    let r = Crat.Resource.analyze cfg app in
    let occ = Gpusim.Occupancy.max_tlp cfg (Crat.Resource.usage_at r ~regs) in
    let tlp = Option.value ~default:occ tlp in
    let launch =
      Workloads.App.launch app ~kernel:a.Regalloc.Allocator.kernel ~tlp ~input ()
    in
    Format.printf "%s at reg=%d TLP=%d on %s@." abbr regs tlp cfg.Gpusim.Config.name;
    let st = Gpusim.Sm.run cfg launch in
    Format.printf "%a" Gpusim.Stats.pp st;
    Format.printf "energy: %a@." Energy.pp (Energy.of_stats st)
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(const run $ kepler_arg $ app_arg $ regs_arg $ tlp_arg $ input_arg
          $ gate_arg)

(* ---------- passes ---------- *)

let passes_cmd =
  let doc = "Run the cleanup pipeline (const-fold, copy-prop, DCE) on a kernel." in
  let run abbr dump gate =
    arm_gate gate;
    let app = find_app abbr in
    let k = Workloads.App.kernel app in
    let k', report =
      Ptxopt.Pipeline.run ~block_size:app.Workloads.App.block_size k
    in
    Format.printf "%s: %d -> %d instructions (%a)@." abbr
      (Ptx.Kernel.instr_count k) (Ptx.Kernel.instr_count k')
      Ptxopt.Pipeline.pp_report report;
    if dump then print_string (Ptx.Printer.kernel_to_string k')
  in
  Cmd.v (Cmd.info "passes" ~doc)
    Term.(const run $ app_arg $ dump_arg $ gate_arg)

(* ---------- trace ---------- *)

let trace_cmd =
  let doc = "Print a per-warp execution trace from the functional interpreter." in
  let warp_arg =
    Arg.(value & opt int 0 & info [ "w"; "warp" ] ~docv:"N" ~doc:"Warp index within the block.")
  in
  let block_arg =
    Arg.(value & opt int 0 & info [ "b"; "block" ] ~docv:"N" ~doc:"Thread-block id.")
  in
  let steps_arg =
    Arg.(value & opt int 120 & info [ "n"; "steps" ] ~docv:"N" ~doc:"Maximum steps to log.")
  in
  let run abbr warp block steps =
    let app = find_app abbr in
    let input = Workloads.App.default_input app in
    let entries =
      Gpusim.Trace.warp_trace ~max_steps:steps ~ctaid:block ~warp
        (Workloads.App.launch app ~input ())
    in
    Format.printf "%a" Gpusim.Trace.pp entries
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ app_arg $ warp_arg $ block_arg $ steps_arg)

(* ---------- optimize ---------- *)

let optimize_cmd =
  let doc = "Run the full CRAT pipeline and compare against MaxTLP/OptTLP." in
  let static_arg =
    Arg.(value & flag & info [ "static" ] ~doc:"Use the static OptTLP estimate (CRAT-static).")
  in
  let no_shared_arg =
    Arg.(value & flag & info [ "no-shared-spill" ] ~doc:"Disable Algorithm 1 (CRAT-local).")
  in
  let report_arg =
    Arg.(value & flag & info [ "report" ]
           ~doc:"Print the engine's job/cache statistics after the run.")
  in
  let run kepler abbr backend static no_shared jobs report gate replay =
    arm_gate gate;
    let cfg = config_of_kepler kepler in
    let app = find_app abbr in
    let mode = if static then `Static else `Profile in
    let engine = Crat.Engine.create ~jobs ~replay () in
    let m = Crat.Baselines.max_tlp ~backend engine cfg app () in
    let o = Crat.Baselines.opt_tlp ~backend engine cfg app () in
    let c, plan =
      Crat.Baselines.crat ~mode ~backend ~shared_spilling:(not no_shared)
        engine cfg app ()
    in
    Format.printf "%a@." Crat.Optimizer.pp_plan plan;
    if backend = Machine.Backend.Machine then
      Format.printf
        "machine backend: %d registers scalarized, %d scalar units/warp@."
        c.Crat.Baselines.alloc.Regalloc.Allocator.scalarized
        c.Crat.Baselines.alloc.Regalloc.Allocator.scalar_units_used;
    let show (e : Crat.Baselines.evaluated) =
      Format.printf "  %-12s reg=%2d TLP=%d %9d cycles (%.3fx vs OptTLP)@."
        e.Crat.Baselines.label e.Crat.Baselines.reg e.Crat.Baselines.tlp
        (Crat.Baselines.cycles e)
        (Crat.Baselines.speedup_over ~baseline:o e)
    in
    show m;
    show o;
    show c;
    if report then
      Format.printf "%a@." Crat.Engine.pp_report (Crat.Engine.report engine)
  in
  Cmd.v (Cmd.info "optimize" ~doc)
    Term.(const run $ kepler_arg $ app_arg $ backend_arg $ static_arg
          $ no_shared_arg $ jobs_arg $ report_arg $ gate_arg $ replay_arg)

(* ---------- report sweeps (shared driver, see sweep.ml) ---------- *)

let verify_options =
  let mk regs linear_scan spare =
    { Sweep.default_options with Sweep.regs; linear_scan; spare }
  in
  Term.(const mk $ regs_arg $ ls_arg $ spare_arg)

let verify_cmd =
  Sweep.command Sweep.Verify
    ~doc:
      "Statically verify a kernel at every compiler stage (pre-opt, post-opt, \
       post-allocation) and audit the register allocation."
    ~all_doc:"Sweep every suite kernel; exit 1 on any error diagnostic."
    ~corpus_doc:
      "Also run the seeded known-bad corpus; each case must be rejected with \
       its documented code."
    verify_options

let lint_options =
  let validate_arg =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Run the default input through the reference interpreter and \
                 check every static claim against the dynamic counters.")
  in
  let mk kepler regs validate =
    { Sweep.default_options with Sweep.kepler; regs; validate }
  in
  Term.(const mk $ kepler_arg $ regs_arg $ validate_arg)

let lint_cmd =
  Sweep.command Sweep.Lint
    ~doc:
      "Static performance advisor: abstract interpretation over the kernel \
       emits P-code advisories (pressure, coalescing, bank conflicts, \
       divergence, loops); $(b,--validate) cross-checks every static claim \
       against the reference interpreter's dynamic counters."
    ~all_doc:"Sweep every suite kernel; exit 1 on any violated claim."
    ~corpus_doc:"" lint_options

let sanitize_options =
  let validate_arg =
    Arg.(value & flag & info [ "validate" ]
           ~doc:"Run the default input through the reference interpreter \
                 with the residual checks armed; report what fraction of \
                 dynamic lane accesses the static proofs discharged.")
  in
  let mk kepler regs spare validate =
    { Sweep.default_options with Sweep.kepler; regs; spare; validate }
  in
  Term.(const mk $ kepler_arg $ regs_arg $ spare_arg $ validate_arg)

let sanitize_cmd =
  Sweep.command Sweep.Sanitize
    ~doc:
      "Hybrid memory-safety sanitizer: static bounds proofs over every \
       shared/local/param access (S-codes), a per-stage discharge table, and \
       with $(b,--validate) a sanitized run of the default input where only \
       the unproven accesses pay a dynamic bounds check."
    ~all_doc:
      "Sweep every suite kernel; exit 1 on any proven-OOB access or dynamic \
       violation."
    ~corpus_doc:"" sanitize_options

let equiv_cmd =
  Sweep.command Sweep.Equiv
    ~doc:
      "Translation validation: symbolically prove each compiler edge \
       (optimization, register allocation, machine lowering) equivalent, \
       refute miscompiles with a concrete replayed counterexample, and \
       report everything else as unknown."
    ~all_doc:
      "Sweep every suite kernel; exit 1 unless every edge of every kernel is \
       proved."
    ~corpus_doc:
      "Also run the seeded miscompile corpus; each case must be refuted \
       (E201) with a witness that replays as a genuine divergence."
    verify_options

(* ---------- serve ---------- *)

let socket_arg =
  Arg.(value & opt string Serve.Protocol.default_socket
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket path of the daemon.")

let serve_cmd =
  let doc =
    "Run the crat daemon: a long-lived engine behind a Unix-domain socket \
     with a persistent content-addressed store. Concurrent clients share \
     in-flight work (identical requests are computed once) and every \
     recorded launch trace, allocation and statistic survives restarts in \
     $(b,--store)."
  in
  let store_arg =
    Arg.(value & opt string Serve.Protocol.default_store
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Persistent store directory (created on demand).")
  in
  let no_store_arg =
    Arg.(value & flag & info [ "no-store" ]
           ~doc:"Serve from memory only; nothing survives a restart.")
  in
  let budget_arg =
    Arg.(value & opt int Store.default_budget
         & info [ "budget" ] ~docv:"BYTES"
             ~doc:"Store byte budget; least-recently-used entries are \
                   evicted past it.")
  in
  let run socket store no_store budget jobs replay =
    let store_dir = if no_store then None else Some store in
    Format.printf "crat daemon listening on %s (store: %s)@." socket
      (match store_dir with None -> "none" | Some d -> d);
    try
      Serve.Daemon.run ~socket ?store_dir ~budget ~jobs ~replay
        ~sweep:Sweep.serve_sweep ()
    with Failure msg ->
      Format.eprintf "%s@." msg;
      exit 1
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(const run $ socket_arg $ store_arg $ no_store_arg $ budget_arg
          $ jobs_arg $ replay_arg)

(* ---------- client ---------- *)

let client_cmd =
  let doc =
    "Talk to a running crat daemon: simulate suite points ($(i,APP)... or \
     $(b,--all)), run a server-side report sweep ($(b,--sweep)), print \
     daemon statistics ($(b,--stats)) or stop it ($(b,--shutdown))."
  in
  let apps_arg =
    Arg.(value & pos_all string [] & info [] ~docv:"APP"
           ~doc:"Applications to simulate (default: none).")
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Simulate the whole suite.")
  in
  let tlp_arg =
    Arg.(value & opt (some int) None & info [ "t"; "tlp" ] ~docv:"N"
           ~doc:"Concurrent thread blocks (default: occupancy maximum).")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print the daemon's counters.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ] ~doc:"Ask the daemon to exit.")
  in
  let sweep_arg =
    Arg.(value & opt (some string) None & info [ "sweep" ] ~docv:"KIND"
           ~doc:"Run a server-side report sweep: $(b,verify), $(b,lint), \
                 $(b,sanitize) or $(b,equiv) (over $(i,APP)... or the whole \
                 suite).")
  in
  let fail msg = Format.eprintf "client: %s@." msg; exit 1 in
  let print_stats (s : Serve.Protocol.server_stats) =
    Format.printf
      "uptime %.1fs, %d connection(s), %d request(s), %d point(s), %d dedup \
       hit(s)@."
      s.Serve.Protocol.uptime_s s.Serve.Protocol.connections
      s.Serve.Protocol.requests s.Serve.Protocol.points
      s.Serve.Protocol.dedup_hits;
    Format.printf
      "engine: %d sim run(s), %d sim hit(s), %d trace record(s), %d trace \
       replay(s), %d alloc run(s), %d alloc hit(s)@."
      s.Serve.Protocol.sim_runs s.Serve.Protocol.sim_hits
      s.Serve.Protocol.trace_records s.Serve.Protocol.trace_replays
      s.Serve.Protocol.alloc_runs s.Serve.Protocol.alloc_hits;
    Format.printf
      "store: %d entry(ies), %d / %d bytes, %d hit(s), %d miss(es), %d \
       eviction(s)@."
      s.Serve.Protocol.store_entries s.Serve.Protocol.store_bytes
      s.Serve.Protocol.store_budget s.Serve.Protocol.store_hits
      s.Serve.Protocol.store_misses s.Serve.Protocol.store_evictions;
    Format.printf "hit rate: %.3f@." (Serve.Protocol.hit_rate s)
  in
  let run socket apps all kepler regs tlp stats shutdown sweep =
    match Serve.Client.connect ~socket () with
    | Error e -> fail e
    | Ok c ->
      Fun.protect ~finally:(fun () -> Serve.Client.close c) @@ fun () ->
      (match sweep with
       | Some kind ->
         (match Serve.Client.sweep c ~kind ~apps with
          | Error e -> fail e
          | Ok (text, failed) ->
            print_string text;
            if failed then exit 1)
       | None ->
         let abbrs =
           if all then Workloads.Suite.abbrs
           else (List.iter (fun a -> ignore (find_app a)) apps; apps)
         in
         if abbrs <> [] then begin
           let points =
             List.map
               (fun abbr -> Serve.Protocol.point ~regs ~tlp ~kepler abbr)
               abbrs
           in
           let names = Array.of_list abbrs in
           match
             Serve.Client.simulate_iter c points ~f:(fun i st ->
               Format.printf "%-5s %9d cycles, IPC %.3f@." names.(i)
                 st.Gpusim.Stats.cycles (Gpusim.Stats.ipc st))
           with
           | Error e -> fail e
           | Ok _ -> ()
         end;
         if stats then
           (match Serve.Client.server_stats c with
            | Error e -> fail e
            | Ok s -> print_stats s);
         if shutdown then
           (match Serve.Client.shutdown c with
            | Error e -> fail e
            | Ok () -> Format.printf "daemon stopped@.");
         if abbrs = [] && not stats && not shutdown then
           fail "nothing to do: name APPs or pass --all, --stats, --sweep or --shutdown")
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(const run $ socket_arg $ apps_arg $ all_arg $ kepler_arg $ regs_arg
          $ tlp_arg $ stats_arg $ shutdown_arg $ sweep_arg)


let () =
  let doc = "CRAT: coordinated register allocation and TLP optimization for GPUs" in
  let info = Cmd.info "crat" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [ apps_cmd; config_cmd; analyze_cmd; allocate_cmd; allocate_file_cmd
      ; simulate_cmd; optimize_cmd; trace_cmd; passes_cmd; verify_cmd
      ; lint_cmd; sanitize_cmd; equiv_cmd; serve_cmd; client_cmd ]
  in
  exit (Cmd.eval group)
